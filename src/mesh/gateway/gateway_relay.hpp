#pragma once
// GatewayRelay: barrier-synced frame handoff between collision domains.
//
// A gateway node's full protocol stack (routing, metrics, app) lives in its
// home domain; for every foreign domain it owns a *port* — an extra
// Radio+Mac80211 pair constructed against that domain's simulator and
// attached to its channel. Ports make the node audible on every channel;
// the relay carries frames between the node's home stack and its ports.
//
// Determinism contract. Domains run in lock-step epochs under the
// DomainScheduler; a frame emitted in epoch e on domain A may only affect
// domain B from the next epoch on. Both directions therefore *stage*:
//
//  * outbound — the home MeshNode's send tap fires on the home domain's
//    worker thread and appends to a per-source-domain staging lane;
//  * inbound  — a port MAC's rx callback fires on the port domain's worker
//    thread and appends to that domain's lane.
//
// Lanes are strictly thread-confined between barriers (one writer each).
// At each scheduler barrier — all workers joined, every domain clock at
// the barrier time — drainAtBarrier() merges the lanes in (capture time,
// source domain, sequence) order and injects each frame into its
// destination domain(s). That total order is a pure function of the
// simulation, never of the worker count, so gateway runs are byte-identical
// across `domain_workers` — the same argument as the scheduler itself.
//
// Pool discipline. Packets are slab-allocated from per-domain pools with
// non-atomic refcounts (safe only because a packet never leaves its
// domain). A frame crossing domains is therefore REBUILT — byte-copied via
// Packet::make into the destination domain's pool (preserving kind,
// origin, creation time and rate hint; fresh uid) — never shared. The
// barrier thread briefly installs the destination pool around each
// injection because barrier callbacks run outside any Simulator run scope.
//
// Tracing. Each injection emits a GatewayHandoff record into the
// destination collector carrying the source domain and source-local pid,
// emitted before the rebuilt copy's first other record; the merged export
// uses it to alias the rebuilt pid back to the original packet, so a
// delivery two channels away still pairs with its birth record.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/mac/mac80211.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/net/pool.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/phy/radio.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/trace/counter_registry.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::gateway {

// Per-gateway lifetime counters, surfaced through RunResults and the
// runner JSONL (`gw<id>_handoff`, `gw<id>_residual`).
struct GatewayCounters {
  net::NodeId node{0};
  std::uint64_t captured{0};  // frames staged at the relay, either direction
  std::uint64_t injected{0};  // copies rebuilt+injected across a boundary
  std::uint64_t residual{0};  // staged but still undrained at run end
};

class GatewayRelay {
 public:
  struct DomainContext {
    sim::Simulator* sim{nullptr};
    phy::Channel* channel{nullptr};
    net::PacketPool* pool{nullptr};        // null when pooling is disabled
    trace::TraceCollector* trace{nullptr}; // null when tracing is off
  };
  // Hands an inbound (port -> home stack) frame to the gateway's dispatch
  // layer; `from` is the foreign-domain transmitter.
  using InjectFn =
      std::function<void(const net::PacketPtr& packet, net::NodeId from)>;

  explicit GatewayRelay(std::vector<DomainContext> domains);

  // Registers `node` (home domain `home`) as a gateway: one port per
  // foreign domain, in ascending domain order (part of the deterministic
  // channel attach order). Must run before any domain transmits — channel
  // attach closes at the first reachability build. Returns the gateway's
  // index for captureOutbound.
  std::size_t addGateway(net::NodeId node, std::size_t home,
                         const phy::PhyParams& phyParams,
                         const mac::MacParams& macParams, Rng rng,
                         InjectFn inject);

  // Stages one outbound broadcast from the gateway's home stack. Runs on
  // the home domain's worker thread.
  void captureOutbound(std::size_t gatewayIndex, const net::PacketPtr& packet);

  // Drains every staging lane in (capture time, source domain, seq) order
  // and injects the frames. Must run on a DomainScheduler barrier (workers
  // joined, all domain clocks at the barrier time).
  void drainAtBarrier();

  // Registers the radio and MAC counters of every port living on `domain`
  // into `registry`, mirroring MeshNode's phy.* / mac.* taxonomy. Per-
  // channel frame accounting must include port traffic or the counters
  // disagree with the channel-tagged trace records. `rateAware` matches the
  // node-side conditional so fixed-rate counter exports keep their shape.
  void registerPortCounters(std::size_t domain, trace::CounterRegistry& registry,
                            bool rateAware) const;

  std::size_t gatewayCount() const { return gateways_.size(); }
  std::uint64_t totalInjected() const;
  // Snapshot with `residual` filled from the still-staged lanes.
  std::vector<GatewayCounters> counters() const;

 private:
  struct Port {
    std::size_t domain{0};
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<mac::Mac80211> mac;
  };
  struct Gateway {
    net::NodeId node{0};
    std::size_t home{0};
    InjectFn inject;
    std::vector<Port> ports;  // ascending foreign-domain order
    GatewayCounters counters;
  };
  struct Staged {
    SimTime at{SimTime::zero()};  // capture time, source domain's clock
    std::uint64_t seq{0};         // per-source-domain arrival counter
    std::uint32_t gateway{0};
    std::uint32_t srcDomain{0};
    bool inbound{false};  // true: port -> home stack; false: home -> ports
    net::NodeId from{net::kInvalidNode};  // transmitter (inbound only)
    net::PacketPtr packet;
  };

  void captureInbound(std::size_t gatewayIndex, std::size_t domain,
                      const net::PacketPtr& packet, net::NodeId from);
  void injectStaged(const Staged& staged);
  void injectInto(Gateway& gateway, std::size_t dst, const Staged& staged,
                  std::uint32_t srcPid, Port* port);

  std::vector<DomainContext> domains_;
  std::vector<Gateway> gateways_;
  // One staging lane + sequence counter per source domain; single writer
  // (that domain's worker) between barriers, drained on the barrier thread.
  std::vector<std::vector<Staged>> staged_;
  std::vector<std::uint64_t> seq_;
  std::vector<Staged> drain_;  // barrier-merge scratch
};

}  // namespace mesh::gateway
