#pragma once
// Channel: the shared wireless medium.
//
// One Channel connects all radios of one collision domain. In the default
// single-channel scenario that is every radio; under a multi-channel plan
// (harness `channels` key, DESIGN §11) each orthogonal channel gets its
// own Channel — carrier sense, NAV, busy-power sums, reachability rows
// and the spatial grid are all per-instance state, so domains cannot
// interact. On each transmission it
// samples per-receiver received power from the LinkModel (mean propagation
// × per-packet fading) and delivers the energy to every radio whose mean
// power is non-negligible, after the speed-of-light propagation delay.
//
// A static "reachability" cache keeps the fan-out per transmission bounded:
// a receiver is skipped when even a generous fading up-swing (configurable
// headroom, default 32×, P(Exp(1) ≥ 32) ≈ 1e-14) could not lift its mean
// power to the carrier-sense threshold. This is an optimization only — it
// cannot change which frames are decodable.
//
// For link models whose geometry is pure per pair (everything except
// mobility), the cache also freezes each reachable link's mean rx power
// and propagation delay at build time, so the per-transmission loop makes
// zero virtual LinkModel calls except the per-frame sampling hook
// (LinkModel::samplePowerGivenMeanW) — which keeps RNG draw order, and
// therefore every result, bit-identical to the uncached path.
//
// Reachability builds use a uniform spatial grid (phy/spatial_grid) when
// the link model exposes geometry: instead of testing all n² ordered
// pairs, each transmitter's row enumerates only grid candidates within
// the model's conservative maximum reach radius, then applies the exact
// mean-power predicate in ascending radio-index order — so the rows (and
// every downstream RNG draw) stay bit-identical to the full scan while
// build cost drops to O(n·k). Single-radio invalidations (fail/recover)
// rebuild only the affected rows. MESH_SPATIAL_INDEX=off restores the
// full-scan path.
//
// Because a build draws no RNG and (for static geometry) is a pure
// function of positions and radio parameters, the built state can be
// frozen into an immutable ReachSnapshot and shared across simulations of
// the same topology (DESIGN §14): freezeAndShare() moves the rows/grid
// behind a shared_ptr, adoptReachability() splices them into an
// identically built channel, and the per-row view table makes every
// mutation copy-on-write — a rebuilt row lands in channel-local storage
// while untouched rows keep reading the shared slab.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/phy/frame.hpp"
#include "mesh/phy/link_model.hpp"
#include "mesh/phy/radio.hpp"
#include "mesh/phy/spatial_grid.hpp"
#include "mesh/rate/rate_table.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::phy {

struct ChannelStats {
  std::uint64_t transmissions{0};
  std::uint64_t deliveriesScheduled{0};
  // Reachability/link-cache rebuilds (1 for static runs; mobility benches
  // report this as cache churn). Always cachedRebuilds + liveRebuilds.
  std::uint64_t reachabilityRebuilds{0};
  // Rebuilds that froze per-pair means/delays into the link cache
  // (meansCacheable() true) vs. reachability-only rebuilds that left the
  // per-pair fields to live queries (mobility).
  std::uint64_t cachedRebuilds{0};
  std::uint64_t liveRebuilds{0};
  // Deliveries suppressed by a fault-injected link blackout or loss ramp.
  std::uint64_t faultSuppressedDeliveries{0};
  // Incremental reachability passes (applyDirtyRadios) and the rows they
  // re-derived. Deliberately NOT folded into reachabilityRebuilds, which
  // keeps its full-rebuild meaning (== cachedRebuilds + liveRebuilds).
  std::uint64_t incrementalRebuilds{0};
  std::uint64_t rowsRebuilt{0};
  // Invalidations that found a rebuild already pending (or the same radio
  // already dirty) and therefore cost nothing — the churn-coalescing win.
  std::uint64_t coalescedInvalidations{0};
  // Reachability state adopted from a shared snapshot instead of built
  // (adoptReachability). Deliberately not folded into reachabilityRebuilds:
  // an adopt derives nothing.
  std::uint64_t snapshotAdopts{0};
};

class Channel {
 public:
  // One reachable receiver of a transmitter: the slab the per-transmission
  // loop iterates. meanPowerW/propagation are only read when the link
  // model's means are cacheable; under mobility they are sampled live.
  struct CachedLink {
    std::uint32_t rxIndex;
    double meanPowerW;
    SimTime propagation;
  };

  // An immutable freeze of one channel's built reachability state: the
  // per-transmitter receiver rows plus the spatial-index state needed to
  // rebuild individual rows against it (the copy-on-write path). Produced
  // by freezeAndShare() on a channel with cacheable (static-geometry)
  // means; adopted by adoptReachability() on channels built identically —
  // same radios in the same attach order over the same geometry. Strictly
  // read-only after construction: concurrent simulations share one
  // instance without synchronization.
  struct ReachSnapshot {
    std::vector<std::vector<CachedLink>> rows;
    SpatialGrid grid;               // over `positions`; unused when
    std::vector<Vec2> positions;    // !spatialActive
    double reachRadiusM{0.0};
    bool spatialActive{false};
    std::size_t approxBytes() const;
  };

  // `fadingHeadroom`: see file comment. The link model must outlive the
  // channel if passed by reference; here we take ownership.
  Channel(sim::Simulator& simulator, std::unique_ptr<LinkModel> linkModel,
          Rng rng, double fadingHeadroom = 32.0);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Register a radio. All radios must be attached before the first
  // transmission (the reachability cache is built lazily on first use).
  void attach(Radio& radio);

  // For time-varying link models (mobility): rebuild the reachability
  // cache whenever it is older than `interval`. The per-link fading
  // headroom already provides distance slack; keep the interval small
  // enough that maxSpeed x interval stays well inside it.
  void enableReachabilityRefresh(SimTime interval) {
    refreshInterval_ = interval;
  }

  // Called by Radio::transmit.
  void transmit(Radio& sender, const PhyFramePtr& frame, SimTime airtime);

  // --- fault injection (mesh/fault) ---------------------------------------

  // Force every delivery on the (undirected) pair to be lost with
  // probability `loss` (1.0 = blackout, suppressed without an RNG draw).
  // Layered on top of the link model: fading and the reachability cache are
  // untouched, so clearing the override restores the exact pre-fault link.
  void overrideLinkLoss(net::NodeId a, net::NodeId b, double loss);
  void clearLinkLoss(net::NodeId a, net::NodeId b);

  // Drop the reachability/link cache; the next transmission rebuilds every
  // row. When a rebuild is already pending the call coalesces (counted in
  // ChannelStats::coalescedInvalidations) and a pending dirty set is
  // absorbed by the full rebuild.
  void invalidateReachability();

  // Invalidate only the rows `node` can affect. Radio::setFailed calls
  // this on every fail/recover, so the cached receiver sets track the
  // injected topology without the fault injector having to know about the
  // cache. With the spatial index active on a static-geometry model, the
  // next transmission rebuilds just the rows within the reach radius of
  // `node` (an exact subset — see DESIGN §8.5); otherwise this degrades to
  // invalidateReachability(). Repeat invalidations of an already-dirty
  // radio coalesce.
  void invalidateRadio(net::NodeId node);

  // Force a full rebuild immediately (benches time it in isolation; tests
  // use it to pin rebuild points). Also flushes any pending dirty set.
  void rebuildReachabilityNow() { buildReachability(); }

  // --- shared topology snapshots (DESIGN §14) -----------------------------

  // Builds (if pending) and moves the reachability state into an immutable
  // snapshot, which this channel then adopts itself — the builder run reads
  // the very rows it froze, through the same shared path every adopter
  // uses, at zero copy cost. Requires cacheable means (static geometry), no
  // mobility refresh, and that no snapshot is already adopted; call at most
  // once, before any post-build mutation.
  std::shared_ptr<const ReachSnapshot> freezeAndShare();

  // Adopts a previously frozen snapshot in place of the first build: marks
  // reachability built and closes attach. The snapshot must come from an
  // identically constructed channel (the row count is checked; geometric
  // identity is the caller's contract — the runner's SnapshotCache keys on
  // every topology-relevant config field). Later mutations copy-on-write:
  // invalidateRadio/applyDirtyRadios rebuild affected rows into local
  // storage, a full invalidation detaches from the snapshot entirely, and
  // overrideLinkLoss never touches rows at all — so a sibling run sharing
  // the snapshot can never observe this run's faults.
  void adoptReachability(std::shared_ptr<const ReachSnapshot> snapshot);

  // True while any rows are still read from an adopted/frozen snapshot.
  bool sharesSnapshot() const { return shared_ != nullptr; }

  // Enable/disable the spatial-index fast path for reachability builds and
  // incremental invalidation. Takes effect at the next (re)build. The
  // MESH_SPATIAL_INDEX environment variable ("on"/"off", "1"/"0") wins
  // over this knob — an escape hatch for bisecting perf regressions.
  void setSpatialIndex(bool enabled) { spatialKnob_ = enabled; }

  // True when the last reachability build actually used the grid (model
  // indexable, knob/env on, finite reach radius). Meaningful after the
  // first build only.
  bool spatialIndexActive() const { return spatialActive_; }

  // O(1) hash lookup by node id — fault-application time only, never per
  // frame.
  Radio* findRadio(net::NodeId node) const;

  // Optional drop records for fault-suppressed deliveries.
  void setTrace(trace::TraceCollector* collector) { trace_ = collector; }

  // Arms the per-rate SNR→PER error model: frames carrying a rate-aware
  // TxVector (code != 0) are killed per receiver with the table's PER at
  // the sampled SNR. Null (the default) — and every code-0 frame — keeps
  // the legacy behavior with zero extra RNG draws, which is what makes
  // rate_control=fixed bit-identical to the pre-rate simulator.
  void setRateTable(const rate::RateTable* table) { rateTable_ = table; }

  const LinkModel& linkModel() const { return *linkModel_; }
  const ChannelStats& stats() const { return stats_; }
  std::size_t radioCount() const { return radios_.size(); }
  // Attach-ordered radio list. Build/inspection time only (the Genie rate
  // controller's oracle enumerates neighbors through it), never per frame.
  const std::vector<Radio*>& radios() const { return radios_; }

 private:
  void buildReachability();
  // Decide whether the grid path applies and (re)build the grid over a
  // position snapshot. Sets spatialActive_.
  void prepareSpatialIndex();
  // Derive one transmitter's receiver row — via grid candidates when
  // spatialActive_, else the full O(n) scan. Bit-identical results either
  // way (superset contract + exact predicate + ascending-index order).
  void buildRow(std::size_t tx);
  // Rebuild exactly the rows a dirty radio can appear in.
  void applyDirtyRadios();
  // Returns true when a loss override says this delivery must be
  // suppressed (drawing from rng_ for partial loss rates).
  bool lossSuppressed(net::NodeId tx, net::NodeId rx, const PhyFramePtr& frame);
  // Per-rate error model: true when the frame fails its PER draw at this
  // receiver. Never draws for legacy (code 0) frames.
  bool perCorrupted(const Radio& receiver, const PhyFramePtr& frame,
                    double powerW);

  sim::Simulator& simulator_;
  std::unique_ptr<LinkModel> linkModel_;
  Rng rng_;
  double fadingHeadroom_;
  bool cacheMeans_{true};  // linkModel_->meansCacheable(), hoisted

  // Specialization of the cached-means fading draw, classified once at
  // construction from linkModel_->meanScaledFading(): Rayleigh and unity
  // gains are drawn inline (identical draws, no virtual dispatch per
  // receiver); anything else falls back to the generic sampling hook.
  enum class FadingPath : std::uint8_t { Generic, Virtual, Unity, Rayleigh };
  FadingPath fadingPath_{FadingPath::Generic};
  const FadingModel* scaledFading_{nullptr};

  std::vector<Radio*> radios_;                 // indexed by attach order
  std::unordered_map<net::NodeId, std::uint32_t> nodeIndex_;  // id -> index
  // Channel-owned receiver rows. Under a shared snapshot these start empty
  // and only fill as rows are copy-on-write rebuilt; the hot path never
  // reads them directly — it goes through rowView_.
  std::vector<std::vector<CachedLink>> reachable_;
  // Per-transmitter row indirection: rowView_[tx] points at either the
  // shared snapshot's row or the channel-local rebuild in reachable_. One
  // extra dereference per transmission buys zero-copy world sharing.
  std::vector<const std::vector<CachedLink>*> rowView_;
  // Non-null while any rowView_ entry still points into an adopted/frozen
  // snapshot; keeps the shared rows (and grid/positions) alive.
  std::shared_ptr<const ReachSnapshot> shared_;

  // --- spatial index state (see DESIGN §8.5) ------------------------------
  bool spatialKnob_{true};
  std::optional<bool> spatialEnvOverride_;  // MESH_SPATIAL_INDEX, parsed once
  bool spatialActive_{false};               // last build used the grid
  double reachRadiusM_{0.0};                // conservative pruning radius
  SpatialGrid grid_;
  std::vector<Vec2> gridPositions_;         // build-time position snapshot
  // Grid/positions the row builders consult: the channel-owned pair above
  // after a local build, the snapshot's frozen pair while adopted.
  const SpatialGrid* activeGrid_{&grid_};
  const std::vector<Vec2>* activePositions_{&gridPositions_};
  std::vector<std::uint32_t> dirtyRadios_;  // pending row invalidations
  std::vector<std::uint64_t> dirtyMask_;    // bit per radio: already in
                                            // dirtyRadios_ — O(1) dedup
                                            // (mirrors rowMask_)
  std::vector<std::uint32_t> dirtyScratch_; // affected-row buffer, reused
  std::vector<std::uint32_t> rowScratch_;   // candidate buffer for buildRow
  std::vector<std::uint64_t> rowMask_;      // candidate bitmap: ascending
                                            // iteration without a sort
  // Directed-pair loss overrides; overrideLinkLoss installs both
  // directions. Empty in fault-free runs (one .empty() test per tx).
  std::unordered_map<net::LinkKey, double, net::LinkKeyHash> linkLoss_;
  trace::TraceCollector* trace_{nullptr};
  const rate::RateTable* rateTable_{nullptr};
  bool reachabilityBuilt_{false};
  bool attachClosed_{false};  // set at first build; attach() forbidden after
  SimTime refreshInterval_{SimTime::zero()};  // zero: never refresh
  SimTime reachabilityBuiltAt_{SimTime::zero()};
  ChannelStats stats_;
};

}  // namespace mesh::phy
