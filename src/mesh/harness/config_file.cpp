#include "mesh/harness/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace mesh::harness {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  ConfigParseResult run() {
    ScenarioConfig config;
    // meshsim scenarios default to the paper's radio/MAC/ODMRP parameters.
    config.groups.clear();

    std::string section;
    GroupSpec* group = nullptr;

    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos <= text_.size()) {
      const std::size_t eol = text_.find('\n', pos);
      std::string_view line = text_.substr(
          pos, eol == std::string_view::npos ? text_.size() - pos : eol - pos);
      pos = eol == std::string_view::npos ? text_.size() + 1 : eol + 1;
      ++lineNo;

      const std::size_t hash = line.find('#');
      if (hash != std::string_view::npos) line = line.substr(0, hash);
      line = trim(line);
      if (line.empty()) continue;

      if (line.front() == '[') {
        if (line.back() != ']') return fail(lineNo, "unterminated section header");
        section = lower(trim(line.substr(1, line.size() - 2)));
        group = nullptr;
        if (section.rfind("group", 0) == 0) {
          const std::string_view idText = trim(std::string_view{section}.substr(5));
          int id = 0;
          if (idText.empty() ||
              std::from_chars(idText.data(), idText.data() + idText.size(), id).ec !=
                  std::errc{}) {
            return fail(lineNo, "group section needs a numeric id, e.g. [group 1]");
          }
          config.groups.push_back(GroupSpec{static_cast<net::GroupId>(id), {}, {}});
          group = &config.groups.back();
        } else if (section != "scenario" && section != "protocol" &&
                   section != "traffic" && section != "faults") {
          return fail(lineNo, "unknown section [" + section + "]");
        }
        continue;
      }

      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) return fail(lineNo, "expected key = value");
      const std::string key = lower(trim(line.substr(0, eq)));
      const std::string_view value = trim(line.substr(eq + 1));
      if (key.empty() || value.empty()) return fail(lineNo, "empty key or value");

      std::string error;
      if (section == "scenario") {
        error = scenarioKey(config, key, value);
      } else if (section == "protocol") {
        error = protocolKey(config, key, value);
      } else if (section == "traffic") {
        error = trafficKey(config, key, value);
      } else if (section == "faults") {
        error = faultsKey(config, key, value);
      } else if (group != nullptr) {
        error = groupKey(*group, key, value);
      } else {
        error = "key outside of any section";
      }
      if (!error.empty()) return fail(lineNo, error);
    }

    if (config.groups.empty()) {
      return {std::nullopt, "config error: no [group N] sections"};
    }
    for (const GroupSpec& g : config.groups) {
      for (const net::NodeId id : g.sources) {
        if (id >= config.nodeCount) {
          return {std::nullopt, "config error: source id out of range"};
        }
      }
      for (const net::NodeId id : g.members) {
        if (id >= config.nodeCount) {
          return {std::nullopt, "config error: member id out of range"};
        }
      }
    }
    for (const fault::FaultEvent& event : config.faults.events()) {
      if (event.node >= config.nodeCount ||
          (event.peer != net::kInvalidNode && event.peer >= config.nodeCount)) {
        return {std::nullopt, "config error: fault node id out of range"};
      }
    }
    for (const net::NodeId id : config.gatewayNodes) {
      if (id >= config.nodeCount) {
        return {std::nullopt, "config error: gateway node id out of range"};
      }
    }
    for (const net::NodeId id : config.churnVictims) {
      if (id >= config.nodeCount) {
        return {std::nullopt, "config error: churn victim id out of range"};
      }
    }
    return {std::move(config), {}};
  }

 private:
  static ConfigParseResult fail(std::size_t line, const std::string& what) {
    std::ostringstream out;
    out << "config error at line " << line << ": " << what;
    return {std::nullopt, out.str()};
  }

  static std::optional<double> number(std::string_view v) {
    // from_chars(double) needs contiguous chars; value is already trimmed.
    double out{};
    const auto result = std::from_chars(v.data(), v.data() + v.size(), out);
    if (result.ec != std::errc{} || result.ptr != v.data() + v.size()) {
      return std::nullopt;
    }
    return out;
  }

  static std::optional<bool> boolean(std::string_view v) {
    const std::string s = lower(v);
    if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
    if (s == "false" || s == "0" || s == "no" || s == "off") return false;
    return std::nullopt;
  }

  static std::optional<std::vector<net::NodeId>> idList(std::string_view v) {
    std::vector<net::NodeId> out;
    std::size_t i = 0;
    while (i < v.size()) {
      while (i < v.size() && std::isspace(static_cast<unsigned char>(v[i]))) ++i;
      if (i >= v.size()) break;
      std::size_t j = i;
      while (j < v.size() && !std::isspace(static_cast<unsigned char>(v[j]))) ++j;
      int id{};
      if (std::from_chars(v.data() + i, v.data() + j, id).ec != std::errc{} ||
          id < 0 || id > 0xFFFF) {
        return std::nullopt;
      }
      out.push_back(static_cast<net::NodeId>(id));
      i = j;
    }
    return out;
  }

  std::string scenarioKey(ScenarioConfig& config, const std::string& key,
                          std::string_view value) {
    if (key == "nodes") {
      const auto n = number(value);
      if (!n || *n < 1) return "nodes must be a positive integer";
      config.nodeCount = static_cast<std::size_t>(*n);
      return {};
    }
    if (key == "area") {
      const std::size_t x = value.find('x');
      if (x == std::string_view::npos) return "area must look like 1000x1000";
      const auto w = number(trim(value.substr(0, x)));
      const auto h = number(trim(value.substr(x + 1)));
      if (!w || !h || *w <= 0 || *h <= 0) return "bad area dimensions";
      config.areaWidthM = *w;
      config.areaHeightM = *h;
      return {};
    }
    if (key == "duration_s") {
      const auto d = number(value);
      if (!d || *d <= 0) return "duration_s must be positive";
      config.duration = SimTime::seconds(*d);
      return {};
    }
    if (key == "fading") {
      const std::string f = lower(value);
      if (f == "rayleigh") config.rayleighFading = true;
      else if (f == "none") config.rayleighFading = false;
      else return "fading must be rayleigh or none";
      return {};
    }
    if (key == "seed") {
      const auto s = number(value);
      if (!s || *s < 0) return "seed must be a non-negative integer";
      config.seed = static_cast<std::uint64_t>(*s);
      return {};
    }
    if (key == "connected") {
      const auto b = boolean(value);
      if (!b) return "connected must be a boolean";
      config.ensureConnected = *b;
      return {};
    }
    if (key == "spatial_index") {
      const auto b = boolean(value);
      if (!b) return "spatial_index must be a boolean";
      config.spatialIndex = *b;
      return {};
    }
    if (key == "rate_control") {
      const std::string r = lower(value);
      if (!rate::controlKindFromString(r.c_str(), config.rateControl)) {
        return "rate_control must be fixed, minstrel, or genie";
      }
      return {};
    }
    if (key == "rate_set") {
      const std::string r = lower(value);
      if (!rate::rateSetFromString(r.c_str(), config.rateSet)) {
        return "rate_set must be basic, 11b, or 11bg";
      }
      return {};
    }
    if (key == "channels") {
      const auto n = number(value);
      if (!n || *n < 1 || *n > 255) return "channels must be 1..255";
      config.channels = static_cast<std::size_t>(*n);
      return {};
    }
    if (key == "channel_assign") {
      const std::string a = lower(value);
      if (!channelplan::assignStrategyFromString(a.c_str(),
                                                 config.channelAssign)) {
        return "channel_assign must be static or least-congested";
      }
      return {};
    }
    if (key == "domain_workers") {
      const auto n = number(value);
      if (!n || *n < 1) return "domain_workers must be a positive integer";
      config.domainWorkers = static_cast<std::size_t>(*n);
      return {};
    }
    if (key == "gateways") {
      const auto n = number(value);
      if (!n || *n < 0) return "gateways must be a non-negative count";
      config.gateways = static_cast<std::size_t>(*n);
      return {};
    }
    if (key == "gateway_select") {
      const std::string s = lower(value);
      if (!gateway::gatewaySelectFromString(s, config.gatewaySelect)) {
        return "gateway_select must be every-k, boundary, or explicit";
      }
      return {};
    }
    if (key == "gateway_nodes") {
      const auto ids = idList(value);
      if (!ids || ids->empty()) return "gateway_nodes must be a list of node ids";
      config.gatewayNodes = *ids;
      return {};
    }
    if (key == "switch_slot_ms") {
      const auto n = number(value);
      if (!n || *n <= 0) return "switch_slot_ms must be positive";
      config.switchSlot = SimTime::milliseconds(static_cast<std::int64_t>(*n));
      if (config.switchSlot.isZero()) return "switch_slot_ms must be >= 1";
      return {};
    }
    if (key == "placement") {
      const std::string p = lower(value);
      if (p == "uniform") config.placement = Placement::UniformRejection;
      else if (p == "grid") config.placement = Placement::Grid;
      else return "placement must be uniform or grid";
      return {};
    }
    return "unknown [scenario] key '" + key + "'";
  }

  std::string protocolKey(ScenarioConfig& config, const std::string& key,
                          std::string_view value) {
    if (key == "routing") {
      const std::string r = lower(value);
      if (r == "odmrp") config.protocol.routing = Routing::Odmrp;
      else if (r == "tree") config.protocol.routing = Routing::Tree;
      else return "routing must be odmrp or tree";
      return {};
    }
    if (key == "metric") {
      const std::string m = lower(value);
      if (m == "none") {
        config.protocol.metric.reset();
        return {};
      }
      for (const auto kind :
           {metrics::MetricKind::Hop, metrics::MetricKind::Etx,
            metrics::MetricKind::Ett, metrics::MetricKind::Pp,
            metrics::MetricKind::Metx, metrics::MetricKind::Spp,
            metrics::MetricKind::BiEtx}) {
        if (m == lower(metrics::toString(kind))) {
          config.protocol.metric = kind;
          return {};
        }
      }
      return "unknown metric '" + std::string{value} + "'";
    }
    if (key == "probe_rate") {
      const auto r = number(value);
      if (!r || *r <= 0) return "probe_rate must be positive";
      config.protocol.probeRateScale = *r;
      return {};
    }
    if (key == "adaptive") {
      const auto b = boolean(value);
      if (!b) return "adaptive must be a boolean";
      config.protocol.adaptiveProbing = *b;
      return {};
    }
    return "unknown [protocol] key '" + key + "'";
  }

  std::string trafficKey(ScenarioConfig& config, const std::string& key,
                         std::string_view value) {
    if (key == "payload") {
      const auto n = number(value);
      if (!n || *n < 1) return "payload must be a positive byte count";
      config.traffic.payloadBytes = static_cast<std::size_t>(*n);
      return {};
    }
    if (key == "rate_pps") {
      const auto n = number(value);
      if (!n || *n <= 0) return "rate_pps must be positive";
      config.traffic.packetsPerSecond = *n;
      return {};
    }
    if (key == "start_s") {
      const auto n = number(value);
      if (!n || *n < 0) return "start_s must be non-negative";
      config.traffic.start = SimTime::seconds(*n);
      return {};
    }
    if (key == "stop_s") {
      const auto n = number(value);
      if (!n || *n <= 0) return "stop_s must be positive";
      config.traffic.stop = SimTime::seconds(*n);
      return {};
    }
    return "unknown [traffic] key '" + key + "'";
  }

  // --- [faults] -----------------------------------------------------------
  //
  //   event = crash <node> @ <start_s> [+<dur_s>]
  //   event = blackout <a>-<b> @ <start_s> [+<dur_s>]
  //   event = loss <a>-<b> <rate> @ <start_s> [+<dur_s>]
  //   event = burst <node> <dbm> @ <start_s> +<dur_s>
  //   event = blackhole <node> @ <start_s> [+<dur_s>]
  //   event = queue_drop <node> @ <start_s> [+<dur_s>]
  //
  // plus seed-defined churn (merged with the explicit events at build):
  //
  //   crashes_per_minute / blackouts_per_minute / bursts_per_minute
  //   mean_outage_s, mean_burst_s, burst_power_dbm, warmup_s
  //   churn_victims = <id list>   (explicit victim roster override)

  static std::vector<std::string_view> splitTokens(std::string_view v) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < v.size()) {
      while (i < v.size() && std::isspace(static_cast<unsigned char>(v[i]))) ++i;
      if (i >= v.size()) break;
      std::size_t j = i;
      while (j < v.size() && !std::isspace(static_cast<unsigned char>(v[j]))) ++j;
      out.push_back(v.substr(i, j - i));
      i = j;
    }
    return out;
  }

  static std::optional<net::NodeId> nodeId(std::string_view v) {
    int id{};
    if (std::from_chars(v.data(), v.data() + v.size(), id).ec != std::errc{} ||
        id < 0 || id > 0xFFFF) {
      return std::nullopt;
    }
    return static_cast<net::NodeId>(id);
  }

  std::string faultEventSpec(ScenarioConfig& config, std::string_view value) {
    const std::vector<std::string_view> toks = splitTokens(value);
    if (toks.empty()) return "empty fault event";
    fault::FaultEvent event;
    const std::string kindWord = lower(toks[0]);
    if (!trace::faultKindFromString(kindWord.c_str(), event.kind)) {
      return "unknown fault kind '" + kindWord +
             "' (crash/blackout/loss/burst/blackhole/queue_drop)";
    }

    std::size_t i = 1;
    const auto takePair = [&]() -> std::string {
      if (i >= toks.size()) return "expected <a>-<b> node pair";
      const std::size_t dash = toks[i].find('-');
      if (dash == std::string_view::npos) return "expected <a>-<b> node pair";
      const auto a = nodeId(toks[i].substr(0, dash));
      const auto b = nodeId(toks[i].substr(dash + 1));
      if (!a || !b || *a == *b) return "bad node pair '" + std::string{toks[i]} + "'";
      event.node = *a;
      event.peer = *b;
      ++i;
      return {};
    };
    const auto takeNode = [&]() -> std::string {
      if (i >= toks.size()) return "expected a node id";
      const auto id = nodeId(toks[i]);
      if (!id) return "bad node id '" + std::string{toks[i]} + "'";
      event.node = *id;
      ++i;
      return {};
    };

    std::string error;
    switch (event.kind) {
      case trace::FaultKind::NodeCrash:
      case trace::FaultKind::ProbeBlackhole:
      case trace::FaultKind::MacQueueDrop:
        error = takeNode();
        break;
      case trace::FaultKind::LinkBlackout:
        error = takePair();
        break;
      case trace::FaultKind::LossRamp: {
        error = takePair();
        if (error.empty()) {
          if (i >= toks.size()) return "loss needs a rate in [0, 1]";
          const auto rate = number(toks[i]);
          if (!rate || *rate < 0.0 || *rate > 1.0) {
            return "loss rate must be in [0, 1]";
          }
          event.lossRate = *rate;
          ++i;
        }
        break;
      }
      case trace::FaultKind::InterferenceBurst: {
        error = takeNode();
        if (error.empty()) {
          if (i >= toks.size()) return "burst needs a power in dBm";
          const auto dbm = number(toks[i]);
          if (!dbm) return "bad burst power '" + std::string{toks[i]} + "'";
          event.powerDbm = *dbm;
          ++i;
        }
        break;
      }
    }
    if (!error.empty()) return error;

    if (i >= toks.size() || toks[i] != "@") return "expected '@ <start_s>'";
    ++i;
    if (i >= toks.size()) return "expected a start time after '@'";
    const auto start = number(toks[i]);
    if (!start || *start < 0.0) return "start time must be non-negative";
    event.start = SimTime::seconds(*start);
    ++i;

    if (i < toks.size()) {
      if (toks[i].front() != '+') return "expected '+<dur_s>' after the start";
      const auto dur = number(toks[i].substr(1));
      if (!dur || *dur <= 0.0) return "duration must be positive";
      event.duration = SimTime::seconds(*dur);
      ++i;
    }
    if (i != toks.size()) return "trailing tokens in fault event";
    if (event.kind == trace::FaultKind::InterferenceBurst &&
        event.duration.isZero()) {
      return "burst requires a '+<dur_s>' window";
    }
    config.faults.add(event);
    return {};
  }

  static fault::ChurnSpec& churnOf(ScenarioConfig& config) {
    if (!config.churn) config.churn.emplace();
    return *config.churn;
  }

  std::string faultsKey(ScenarioConfig& config, const std::string& key,
                        std::string_view value) {
    if (key == "event") return faultEventSpec(config, value);
    if (key == "crashes_per_minute" || key == "blackouts_per_minute" ||
        key == "bursts_per_minute") {
      const auto n = number(value);
      if (!n || *n < 0) return key + " must be non-negative";
      if (key == "crashes_per_minute") churnOf(config).crashesPerMinute = *n;
      else if (key == "blackouts_per_minute") churnOf(config).blackoutsPerMinute = *n;
      else churnOf(config).burstsPerMinute = *n;
      return {};
    }
    if (key == "mean_outage_s") {
      const auto n = number(value);
      if (!n || *n <= 0) return "mean_outage_s must be positive";
      churnOf(config).meanOutage = SimTime::seconds(*n);
      return {};
    }
    if (key == "mean_burst_s") {
      const auto n = number(value);
      if (!n || *n <= 0) return "mean_burst_s must be positive";
      churnOf(config).meanBurst = SimTime::seconds(*n);
      return {};
    }
    if (key == "burst_power_dbm") {
      const auto n = number(value);
      if (!n) return "burst_power_dbm must be a number";
      churnOf(config).burstPowerDbm = *n;
      return {};
    }
    if (key == "warmup_s") {
      const auto n = number(value);
      if (!n || *n < 0) return "warmup_s must be non-negative";
      churnOf(config).warmup = SimTime::seconds(*n);
      return {};
    }
    if (key == "churn_victims") {
      const auto ids = idList(value);
      if (!ids || ids->empty()) {
        return "churn_victims must be a list of node ids";
      }
      config.churnVictims = *ids;
      return {};
    }
    return "unknown [faults] key '" + key + "'";
  }

  std::string groupKey(GroupSpec& group, const std::string& key,
                       std::string_view value) {
    if (key == "sources") {
      const auto ids = idList(value);
      if (!ids || ids->empty()) return "sources must be a list of node ids";
      group.sources = *ids;
      return {};
    }
    if (key == "members") {
      const auto ids = idList(value);
      if (!ids || ids->empty()) return "members must be a list of node ids";
      group.members = *ids;
      return {};
    }
    return "unknown group key '" + key + "'";
  }

  std::string_view text_;
};

}  // namespace

ConfigParseResult parseScenarioConfig(std::string_view text) {
  return Parser{text}.run();
}

ConfigParseResult loadScenarioConfig(const std::string& path) {
  std::ifstream in{path};
  if (!in) return {std::nullopt, "cannot open '" + path + "'"};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseScenarioConfig(buffer.str());
}

}  // namespace mesh::harness
