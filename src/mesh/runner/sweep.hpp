#pragma once
// Parallel comparison sweeps: shard (topology seed, protocol) simulation
// runs across a work-stealing thread pool while keeping the aggregate
// ComparisonRows bit-identical to the serial path.
//
// Determinism by construction: every Simulation owns an Rng forked from
// its run seed, so a run's RunResults depend only on its RunPlan, never on
// scheduling. The runner's only obligations are (a) building plans — and
// hence calling the user's scenario factory — serially on the submitting
// thread, (b) folding results in the serial loop's (topology, protocol)
// order via the Aggregator, and (c) serializing progress/log output.
//
// Per-run exceptions are captured into the RunRecord: one diverging
// simulation marks its cell failed and the sweep report says so, instead
// of the whole sweep aborting.

#include <functional>
#include <vector>

#include "mesh/harness/experiment.hpp"
#include "mesh/runner/run_plan.hpp"
#include "mesh/runner/result_sink.hpp"
#include "mesh/runner/snapshot_cache.hpp"

namespace mesh::runner {

struct SweepReport {
  // Deterministic aggregates, one row per protocol (failed runs excluded).
  std::vector<harness::ComparisonRow> rows;
  // Every run's record in (topology, protocol) order.
  std::vector<RunRecord> records;
  std::size_t failures{0};
  double wallSeconds{0.0};   // whole-sweep wall clock
  std::size_t jobs{1};       // worker count actually used
  // Topology-snapshot cache telemetry (DESIGN §14): runs that built and
  // published a world vs runs that adopted a cached one, and the summed
  // per-run setup_seconds (the quantity the cache amortizes). Both counts
  // zero when the cache is off or every scenario was ineligible.
  std::size_t snapshotsBuilt{0};
  std::size_t snapshotsReused{0};
  double setupSeconds{0.0};
};

// Expands the sweep matrix into per-run plans, invoking `makeScenario`
// serially, once per *topology* (the config is topology-determined;
// protocol/seed/duration are stamped onto a copy per cell) — so stateful
// factories stay deterministic, need not be thread-safe, and are not
// re-run per protocol.
std::vector<RunPlan> buildComparisonPlans(
    const std::vector<harness::ProtocolSpec>& protocols,
    const std::function<harness::ScenarioConfig(std::uint64_t topologySeed)>&
        makeScenario,
    const harness::BenchOptions& options);

// Executes one plan on the current thread, capturing results, telemetry,
// and any escaped exception. With a non-null `cache` and a
// snapshot-eligible scenario, the run builds-or-adopts the shared world
// (byte-identical results either way) and records which in
// RunRecord::snapshot.
RunRecord executePlan(const RunPlan& plan, SnapshotCache* cache);
inline RunRecord executePlan(const RunPlan& plan) {
  return executePlan(plan, nullptr);
}

// The full sweep: plan, shard across `options.jobs` workers (0 = one per
// hardware thread, 1 = serial on the calling thread), stream each
// completed run into `sink` (optional), and fold deterministically.
SweepReport runComparisonSweep(
    const std::vector<harness::ProtocolSpec>& protocols,
    const std::function<harness::ScenarioConfig(std::uint64_t topologySeed)>&
        makeScenario,
    const harness::BenchOptions& options, ResultSink* sink = nullptr);

}  // namespace mesh::runner
