#include "mesh/phy/radio.hpp"

#include <algorithm>

#include "mesh/common/log.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::phy {

Radio::Radio(sim::Simulator& simulator, net::NodeId node, PhyParams params)
    : simulator_{simulator}, node_{node}, params_{params} {}

bool Radio::mediumBusy() const {
  if (failed_) return false;  // powered off: senses nothing
  if (isTransmitting() || lockedActive_) return true;
  return totalInbandPowerW() >= params_.csThresholdW;
}

void Radio::setFailed(bool failed) {
  if (failed == failed_) return;
  if (failed && lockedActive_) {
    // The reception in progress dies with the radio.
    lockedActive_ = false;
    lockedCorrupted_ = false;
    ++stats_.framesLostFailed;
    if (trace_ != nullptr) {
      const auto it = std::find_if(
          arrivals_.begin(), arrivals_.end(),
          [this](const Arrival& a) { return a.key == lockedKey_; });
      if (it != arrivals_.end()) {
        traceDrop(it->frame, trace::DropReason::FaultNodeDown);
      }
    }
  }
  failed_ = failed;
  // An in-flight own transmission is not truncated: its energy is already
  // scheduled at every receiver. Crash granularity is one frame.
  // The channel's cached receiver sets mention this radio; tell it so the
  // affected rows are rebuilt before the next transmission. Self-reporting
  // here (rather than in the fault injector) keeps the cache correct for
  // every setFailed caller.
  if (channel_ != nullptr) channel_->invalidateRadio(node_);
  notifyMediumIfChanged();
}

void Radio::injectNoise(double powerW, SimTime duration) {
  MESH_REQUIRE(powerW > 0.0 && duration > SimTime::zero());
  const std::uint64_t key = ++nextArrivalKey_;
  arrivals_.push_back(Arrival{key, nullptr, net::kInvalidNode, powerW,
                              simulator_.now() + duration});
  inbandPowerW_ += powerW;
  ++stats_.noiseBursts;
  simulator_.schedule(duration, [this, key] { endArrival(key); });
  if (lockedActive_) reevaluateLockedSinr();
  notifyMediumIfChanged();
}

// Exact re-sum in vector order; called whenever an arrival is removed so
// the running total never accumulates cancellation error (subtracting the
// departed term would drift bitwise from the naive left fold).
void Radio::resumInbandPower() {
  double sum = 0.0;
  for (const auto& a : arrivals_) sum += a.rxPowerW;
  inbandPowerW_ = sum;
}

double Radio::interferenceFor(std::uint64_t excludedKey) const {
  double sum = 0.0;
  for (const auto& a : arrivals_) {
    if (a.key != excludedKey) sum += a.rxPowerW;
  }
  return sum;
}

void Radio::traceDrop(const PhyFramePtr& frame, trace::DropReason reason) {
  trace_->drop(simulator_.now(), node_, frame->payload.get(),
               frame->payload != nullptr ? frame->payload->kind()
                                         : net::PacketKind::MacControl,
               static_cast<std::uint32_t>(frame->sizeBytes()), reason);
}

void Radio::transmit(const PhyFramePtr& frame, SimTime airtime) {
  MESH_REQUIRE(channel_ != nullptr);
  MESH_REQUIRE(!isTransmitting());
  if (failed_) {
    // Crashed node: the MAC's state machine keeps running, but nothing
    // reaches the air.
    ++stats_.framesLostFailed;
    if (trace_ != nullptr) traceDrop(frame, trace::DropReason::FaultNodeDown);
    return;
  }
  // Transmission preempts any in-progress reception: the locked frame is
  // lost (half-duplex). The MAC avoids this by deferring, but a JOIN REPLY
  // scheduled with zero jitter can race a reception; model the loss rather
  // than forbid it.
  if (lockedActive_) {
    lockedActive_ = false;
    lockedCorrupted_ = false;
    ++stats_.framesMissedBusy;
    if (trace_ != nullptr) {
      const auto it = std::find_if(
          arrivals_.begin(), arrivals_.end(),
          [this](const Arrival& a) { return a.key == lockedKey_; });
      if (it != arrivals_.end()) {
        traceDrop(it->frame, trace::DropReason::PhyRadioBusy);
      }
    }
  }
  txUntil_ = simulator_.now() + airtime;
  txFrame_ = frame;
  ++stats_.framesSent;
  stats_.bytesSent += frame->sizeBytes();
  stats_.airtimeTx += airtime;
  if (trace_ != nullptr) {
    trace_->txStart(simulator_.now(), node_, frame->payload.get(),
                    static_cast<std::uint32_t>(frame->sizeBytes()),
                    frame->tx.code);
  }
  simulator_.schedule(airtime, [this] { endTransmit(); });
  channel_->transmit(*this, frame, airtime);
  notifyMediumIfChanged();
}

void Radio::endTransmit() {
  // txUntil_ reached; medium may have gone idle.
  if (trace_ != nullptr && txFrame_ != nullptr && !isTransmitting()) {
    trace_->txEnd(simulator_.now(), node_, txFrame_->payload.get(),
                  static_cast<std::uint32_t>(txFrame_->sizeBytes()));
  }
  if (!isTransmitting()) txFrame_ = nullptr;
  notifyMediumIfChanged();
}

void Radio::beginArrival(const PhyFramePtr& frame, net::NodeId transmitter,
                         double rxPowerW, SimTime airtime,
                         bool perCorrupted) {
  if (failed_) {
    // Powered off: the energy never enters the receive chain (and never
    // counts for carrier sense), so recovery starts from a clean radio.
    ++stats_.framesLostFailed;
    if (trace_ != nullptr) traceDrop(frame, trace::DropReason::FaultNodeDown);
    return;
  }
  const std::uint64_t key = ++nextArrivalKey_;
  arrivals_.push_back(Arrival{key, frame, transmitter, rxPowerW,
                              simulator_.now() + airtime, perCorrupted});
  // Appending extends the left-fold sum by one term: still bit-exact.
  inbandPowerW_ += rxPowerW;
  simulator_.schedule(airtime, [this, key] { endArrival(key); });

  const bool decodable = rxPowerW >= params_.rxThresholdW;
  if (decodable && !isTransmitting() && !lockedActive_) {
    // Lock onto this frame.
    lockedActive_ = true;
    lockedKey_ = key;
    lockedCorrupted_ = false;
    reevaluateLockedSinr();
  } else if (decodable) {
    // Strong enough to decode, but the radio is occupied.
    ++stats_.framesMissedBusy;
    if (trace_ != nullptr) traceDrop(frame, trace::DropReason::PhyRadioBusy);
    if (lockedActive_) reevaluateLockedSinr();
  } else {
    ++stats_.framesBelowThreshold;
    if (trace_ != nullptr) {
      traceDrop(frame, trace::DropReason::PhyBelowSensitivity);
    }
    if (lockedActive_) reevaluateLockedSinr();
  }
  notifyMediumIfChanged();
}

void Radio::endArrival(std::uint64_t key) {
  const auto it = std::find_if(arrivals_.begin(), arrivals_.end(),
                               [key](const Arrival& a) { return a.key == key; });
  MESH_ASSERT(it != arrivals_.end());
  const Arrival arrival = std::move(*it);
  arrivals_.erase(it);
  resumInbandPower();

  if (lockedActive_ && lockedKey_ == key) {
    lockedActive_ = false;
    if (lockedCorrupted_) {
      ++stats_.framesCorrupted;
      if (trace_ != nullptr) {
        traceDrop(arrival.frame, trace::DropReason::PhyCollision);
      }
    } else if (arrival.perCorrupted) {
      // The channel's SNR→PER model failed this frame at its chosen rate.
      ++stats_.framesRateCorrupted;
      if (trace_ != nullptr) {
        traceDrop(arrival.frame, trace::DropReason::PhyRateDecode);
      }
    } else {
      ++stats_.framesDelivered;
      stats_.bytesDelivered += arrival.frame->sizeBytes();
      if (rxCallback_) {
        RxInfo info;
        info.transmitter = arrival.transmitter;
        info.rxPowerW = arrival.rxPowerW;
        const double denom = params_.noiseFloorW + interferenceFor(key);
        info.sinr = arrival.rxPowerW / denom;
        rxCallback_(arrival.frame, info);
      }
    }
    lockedCorrupted_ = false;
  } else if (lockedActive_) {
    // Some other signal ended; the locked frame's SINR just improved, but
    // corruption is latched, so only re-evaluate for logging symmetry.
    reevaluateLockedSinr();
  }
  notifyMediumIfChanged();
}

void Radio::reevaluateLockedSinr() {
  MESH_ASSERT(lockedActive_);
  if (lockedCorrupted_) return;
  const auto it = std::find_if(arrivals_.begin(), arrivals_.end(),
                               [this](const Arrival& a) { return a.key == lockedKey_; });
  MESH_ASSERT(it != arrivals_.end());
  const double sinr =
      it->rxPowerW / (params_.noiseFloorW + interferenceFor(lockedKey_));
  if (sinr < params_.sinrCaptureThreshold) {
    lockedCorrupted_ = true;
    MESH_TRACE("phy", "node %u: locked frame corrupted (sinr=%.2f)", node_, sinr);
  }
}

void Radio::notifyMediumIfChanged() {
  const bool busy = mediumBusy();
  if (busy != lastReportedBusy_) {
    if (busy) {
      busySince_ = simulator_.now();
    } else {
      busyAccum_ += simulator_.now() - busySince_;
    }
    lastReportedBusy_ = busy;
    if (mediumCallback_) mediumCallback_(busy);
  }
}

}  // namespace mesh::phy
