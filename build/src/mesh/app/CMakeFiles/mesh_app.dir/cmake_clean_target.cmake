file(REMOVE_RECURSE
  "libmesh_app.a"
)
