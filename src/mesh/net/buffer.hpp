#pragma once
// Byte-order-explicit serialization primitives.
//
// Protocol headers (MAC frames, probes, ODMRP messages) are serialized to
// real bytes rather than carried as C++ structs: packet sizes must be
// accurate because airtime — and therefore contention, probing overhead
// (Table 1) and the ETT-vs-ETX result — depends on them. All fields are
// little-endian.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "mesh/common/assert.hpp"

namespace mesh::net {

class ByteWriter {
 public:
  // Growable mode: appends to `out`.
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_{&out} {}
  // Fixed-capacity mode: writes into `buf` in place, no allocation ever.
  // Overflow is a programming error (writers reserve their exact wire
  // size), enforced by MESH_ASSERT.
  explicit ByteWriter(std::span<std::uint8_t> buf)
      : buf_{buf.data()}, cap_{buf.size()} {}

  void u8(std::uint8_t v) {
    if (out_ != nullptr) {
      out_->push_back(v);
    } else {
      MESH_ASSERT(pos_ < cap_);
      buf_[pos_++] = v;
    }
  }
  void u16(std::uint16_t v) { appendLe(v); }
  void u32(std::uint32_t v) { appendLe(v); }
  void u64(std::uint64_t v) { appendLe(v); }
  void i64(std::int64_t v) { appendLe(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    appendLe(bits);
  }
  void bytes(std::span<const std::uint8_t> data) {
    if (out_ != nullptr) {
      out_->insert(out_->end(), data.begin(), data.end());
    } else {
      MESH_ASSERT(cap_ - pos_ >= data.size());
      if (!data.empty()) std::memcpy(buf_ + pos_, data.data(), data.size());
      pos_ += data.size();
    }
  }
  // Reserve `n` zero bytes (padding / payload placeholder).
  void zeros(std::size_t n) {
    if (out_ != nullptr) {
      out_->insert(out_->end(), n, 0);
    } else {
      MESH_ASSERT(cap_ - pos_ >= n);
      std::memset(buf_ + pos_, 0, n);
      pos_ += n;
    }
  }

  // Bytes written so far (vector size in growable mode).
  std::size_t size() const { return out_ != nullptr ? out_->size() : pos_; }

 private:
  template <typename T>
  void appendLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t>* out_{nullptr};
  std::uint8_t* buf_{nullptr};
  std::size_t cap_{0};
  std::size_t pos_{0};
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  std::uint8_t u8() { return takeLe<std::uint8_t>(); }
  std::uint16_t u16() { return takeLe<std::uint16_t>(); }
  std::uint32_t u32() { return takeLe<std::uint32_t>(); }
  std::uint64_t u64() { return takeLe<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(takeLe<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = takeLe<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    MESH_REQUIRE(remaining() >= n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    MESH_REQUIRE(remaining() >= n);
    pos_ += n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool atEnd() const { return remaining() == 0; }

 private:
  template <typename T>
  T takeLe() {
    MESH_REQUIRE(remaining() >= sizeof(T));
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

}  // namespace mesh::net
