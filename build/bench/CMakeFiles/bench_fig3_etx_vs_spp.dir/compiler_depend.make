# Empty compiler generated dependencies file for bench_fig3_etx_vs_spp.
# This may be replaced when dependencies are built.
