// Engineering bench — the simulator past the paper's 50-node scale.
//
// The paper stops at 50 nodes (Section 4.1); the spatial channel index
// (DESIGN §8.5) exists so the same per-node density can be pushed to 500+
// nodes without the O(n²) reachability build dominating. This bench runs
// ODMRP and ODMRP_SPP at 50 / 200 / 500 nodes with the area scaled to
// keep the paper's 50 nodes/km² density, and reports protocol metrics so
// a sane PDR at 500 nodes is part of the perf story, not assumed.
//
// Quick by default (1 topology × 40 s). MESH_BENCH_* overrides apply;
// MESH_SPATIAL_INDEX=off reruns the sweep on the O(n²) path for an
// end-to-end A/B.

#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::bench;

  const harness::BenchOptions options = benchOptions(argc, argv, 1, 40);

  const std::size_t nodeCounts[] = {50, 200, 500};

  std::printf("Engineering — ODMRP vs ODMRP_SPP at constant density, scaled node count\n");
  std::printf("%6s  %10s  %12s  %10s  %12s\n", "nodes", "ODMRP pdr",
              "ODMRP thrpt", "SPP pdr", "SPP thrpt");
  for (const std::size_t n : nodeCounts) {
    const auto rows = harness::runProtocolComparison(
        {harness::ProtocolSpec::original(),
         harness::ProtocolSpec::with(metrics::MetricKind::Spp)},
        [n](std::uint64_t seed) {
          harness::ScenarioConfig config = harness::scaledSimulationScenario(n);
          config.seed = seed;
          config.traffic.start = SimTime::seconds(std::int64_t{5});
          Rng groupRng = Rng{seed}.fork("groups");
          config.groups =
              harness::makeRandomGroups(config.nodeCount, 2, 10, 1, groupRng);
          return config;
        },
        options);
    std::printf("%6zu  %10.4f  %10.0f b/s  %10.4f  %10.0f b/s\n", n,
                rows[0].pdr.mean(), rows[0].throughputBps.mean(),
                rows[1].pdr.mean(), rows[1].throughputBps.mean());
  }
  // Multi-channel extension (DESIGN §11): the same footprint packed to 3x
  // the paper's density, carried by one shared channel vs. three
  // orthogonal collision domains. Groups are striped per channel
  // (channel-local multicast) and identical in both runs, so the offered
  // load matches; the single channel has to absorb every JOIN-QUERY flood
  // and CBR frame in one collision domain while channels=3 splits them
  // across independent domains driven by parallel domain workers. The
  // delivered-throughput gap is the subsystem's reason to exist.
  const std::size_t denseCounts[] = {2000, 5000};
  std::printf(
      "\nMulti-channel — 3x density footprint, 1 vs 3 orthogonal channels "
      "(ODMRP_SPP)\n");
  std::printf("%6s  %12s  %10s  %12s  %10s\n", "nodes", "1ch thrpt",
              "1ch pdr", "3ch thrpt", "3ch pdr");
  for (const std::size_t n : denseCounts) {
    const auto denseScenario = [n](std::size_t channels) {
      return [n, channels](std::uint64_t seed) {
        harness::ScenarioConfig config = harness::scaledSimulationScenario(n);
        // Shrink the area by the channel budget: each of the 3 collision
        // domains then sits at the paper's 50 nodes/km².
        config.areaWidthM /= std::sqrt(3.0);
        config.areaHeightM /= std::sqrt(3.0);
        config.seed = seed;
        config.channels = channels;
        config.domainWorkers = channels;
        config.traffic.start = SimTime::seconds(std::int64_t{5});
        Rng groupRng = Rng{seed}.fork("groups");
        config.groups =
            harness::makeStripedGroups(config.nodeCount, 3, 1, 10, 1, groupRng);
        return config;
      };
    };
    const std::vector<harness::ProtocolSpec> spp = {
        harness::ProtocolSpec::with(metrics::MetricKind::Spp)};
    const auto one = harness::runProtocolComparison(spp, denseScenario(1), options);
    const auto three =
        harness::runProtocolComparison(spp, denseScenario(3), options);
    std::printf("%6zu  %10.0f b/s  %10.4f  %10.0f b/s  %10.4f\n", n,
                one[0].throughputBps.mean(), one[0].pdr.mean(),
                three[0].throughputBps.mean(), three[0].pdr.mean());
  }
  printPaperReference(
      "Section 4.1 (scale extension)",
      "the paper's density is 50 nodes/km²; at 500 nodes the mesh spans "
      "~3.2 km × 3.2 km and multicast routes cross many more hops, so PDR "
      "below the 50-node value is expected — it must stay well above zero; "
      "the multi-channel rows must show channels=3 delivering measurably "
      "more than channels=1 at the same dense footprint");
  return 0;
}
