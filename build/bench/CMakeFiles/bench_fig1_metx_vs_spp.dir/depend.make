# Empty dependencies file for bench_fig1_metx_vs_spp.
# This may be replaced when dependencies are built.
