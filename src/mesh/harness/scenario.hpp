#pragma once
// Scenario description and the Simulation that executes it.
//
// A ScenarioConfig captures everything Section 4.1 specifies: 50 static
// nodes placed uniformly at random in 1000 m × 1000 m, TwoRay propagation,
// Rayleigh fading, 2 Mbps, two multicast groups of ten members with CBR
// 512 B × 20 pkt/s sources, 400 s duration, δ = 30 ms, α = 20 ms — plus
// the knobs the paper sweeps (metric, probing rate, number of sources).
//
// The same Simulation also runs the testbed emulation: a custom link-model
// factory replaces random geometry with the Figure 4 floor graph.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mesh/channelplan/channel_plan.hpp"
#include "mesh/common/rng.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/fault/fault_injector.hpp"
#include "mesh/fault/recovery_analyzer.hpp"
#include "mesh/gateway/gateway_relay.hpp"
#include "mesh/gateway/gateway_set.hpp"
#include "mesh/harness/mesh_node.hpp"
#include "mesh/harness/topology_snapshot.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/net/pool.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/phy/link_model.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::harness {

struct GroupSpec {
  net::GroupId group{1};
  std::vector<net::NodeId> sources;
  std::vector<net::NodeId> members;
};

// Which protocol variant runs: the mesh-based ODMRP or the tree-based
// MAODV-inspired protocol (Section 4.3), each original or with a metric.
enum class Routing : std::uint8_t { Odmrp = 0, Tree = 1 };

struct ProtocolSpec {
  // nullopt -> original protocol (no probing, first-query-wins).
  std::optional<metrics::MetricKind> metric;
  double probeRateScale{1.0};
  Routing routing{Routing::Odmrp};
  bool adaptiveProbing{false};

  static ProtocolSpec original() { return {}; }
  static ProtocolSpec with(metrics::MetricKind kind, double rateScale = 1.0) {
    return {kind, rateScale, Routing::Odmrp};
  }
  static ProtocolSpec treeOriginal() {
    return {std::nullopt, 1.0, Routing::Tree};
  }
  static ProtocolSpec tree(metrics::MetricKind kind, double rateScale = 1.0) {
    return {kind, rateScale, Routing::Tree};
  }
  static ProtocolSpec adaptive(metrics::MetricKind kind, double rateScale = 1.0) {
    return {kind, rateScale, Routing::Odmrp, /*adaptiveProbing=*/true};
  }
  std::string name() const {
    std::string base = routing == Routing::Tree ? "TREE" : "ODMRP";
    std::string name;
    if (!metric) {
      name = base;
    } else if (routing == Routing::Tree) {
      name = "T-" + std::string{metrics::toString(*metric)};
    } else {
      name = metrics::toString(*metric);
    }
    if (adaptiveProbing) name += "*";  // adaptive probing marker
    return name;
  }
};

// How random geometric scenarios place their nodes.
//
//  * UniformRejection — the paper's method: uniform positions, re-drawn
//    until the 250 m disk graph is connected. O(n²) per attempt and the
//    acceptance probability drops with n, so it does not scale.
//  * Grid — O(n): one node per cell of a ceil(sqrt(n))-column grid (cells
//    shuffled so node ids carry no spatial information), jittered within
//    the central half of its cell. Adjacent occupied cells stay within
//    250 m at the paper's density (50 nodes/km²: worst case ~224 m), so
//    the disk graph is connected by construction — no rejection loop.
enum class Placement : std::uint8_t { UniformRejection = 0, Grid = 1 };

struct ScenarioConfig {
  std::size_t nodeCount{50};
  double areaWidthM{1000.0};
  double areaHeightM{1000.0};
  bool rayleighFading{true};
  // Reject random placements whose 250 m disk graph is disconnected, so
  // every topology can in principle deliver to every member. Only
  // meaningful with Placement::UniformRejection (Grid is connected by
  // construction).
  bool ensureConnected{true};
  Placement placement{Placement::UniformRejection};
  // 0 = static mesh (the paper's premise). > 0: random-waypoint mobility
  // with speeds in [max/2, max] and short pauses — the MANET regime the
  // bench_mobility extension explores.
  double mobilityMaxSpeedMps{0.0};

  // Use the channel's uniform-grid reachability path (DESIGN §8.5). Results
  // are bit-identical either way; off restores the O(n²) pair scan for
  // A/B timing and regression bisection. The MESH_SPATIAL_INDEX environment
  // variable overrides this knob.
  bool spatialIndex{true};

  std::vector<GroupSpec> groups;
  app::CbrConfig traffic;  // group id is overridden per GroupSpec

  // Rate adaptation: which controller runs on every node and which 802.11
  // rate set the shared RateTable holds. The defaults (Fixed + Basic) keep
  // the simulator on the legacy single-rate path, bit-identical to the
  // pre-rate code. The MESH_RATE_CONTROL environment variable
  // ("fixed"/"minstrel"/"genie") overrides `rateControl` at build time.
  rate::ControlKind rateControl{rate::ControlKind::Fixed};
  rate::RateSetKind rateSet{rate::RateSetKind::Basic};

  // Multi-channel mesh (src/mesh/channelplan): > 1 partitions the PHY into
  // `channels` orthogonal collision domains — one phy::Channel and one
  // event queue per domain, frames only interact within a domain. Requires
  // a static geometric scenario (no mobility, no custom link model), and
  // note that multicast traffic only flows inside a domain unless gateways
  // carry it across: pick groups channel-locally (makeStripedGroups), or
  // configure `gateways` below and let spanning groups ride the handoff
  // path. 1 (the default) is the legacy single-channel simulator,
  // byte-identical to pre-channelplan builds. The MESH_CHANNELS
  // environment variable overrides this knob at build time.
  std::size_t channels{1};
  channelplan::AssignStrategy channelAssign{channelplan::AssignStrategy::Static};
  // Worker threads driving the collision domains in parallel (clamped to
  // [1, channels]). Purely a wall-clock knob: traces, counters and every
  // aggregate are byte-identical for any worker count — the determinism
  // tests pin this. The MESH_DOMAIN_WORKERS environment variable
  // overrides it.
  std::size_t domainWorkers{1};
  // Test-only: run the multi-domain build/run machinery even when
  // channels == 1 (one domain). Exists so the byte-identity of the
  // channelplan path against the legacy path is directly testable; no
  // config key maps to it.
  bool forceChannelPlan{false};

  // Cross-domain gateways (src/mesh/gateway): `gateways` nodes get one
  // extra radio per foreign collision domain and relay frames between
  // domains at epoch barriers every `switchSlot`. 0 (the default) builds no
  // relay at all — the channels>1 path stays byte-identical to the
  // gateway-less simulator. `gatewaySelect` picks which nodes serve
  // (ignored when `gatewayNodes` names them explicitly). The MESH_GATEWAYS
  // environment variable overrides the count at build time.
  std::size_t gateways{0};
  gateway::GatewaySelect gatewaySelect{gateway::GatewaySelect::EveryK};
  std::vector<net::NodeId> gatewayNodes;  // explicit roster (forces Explicit)
  SimTime switchSlot{SimTime::milliseconds(50)};

  ProtocolSpec protocol;
  SimTime duration{SimTime::seconds(std::int64_t{400})};
  std::uint64_t seed{1};

  // Empty = tracing disabled (hook sites cost one pointer test). Non-empty:
  // every packet-lifecycle event is recorded and exported to this JSONL
  // path when run() finishes; parent directories are created on demand.
  std::string tracePath;

  MeshNodeConfig node;  // phy / mac / odmrp parameter blocks

  // Fault injection (src/mesh/fault). `faults` is an explicit timeline;
  // `churn` additionally generates a seed-defined random schedule at build
  // time (merged into the timeline). Churn victims exclude every source
  // and member so a crash breaks *routes*, not endpoints — the recovery
  // metrics would be meaningless otherwise. Both empty: zero overhead.
  fault::FaultSchedule faults;
  std::optional<fault::ChurnSpec> churn;
  // Non-empty: churn draws victims from this explicit list instead of the
  // complement-of-endpoints default — the §4.1 churn figure uses it to
  // crash actual forwarding-group members discovered in a pilot run.
  std::vector<net::NodeId> churnVictims;

  // Optional: replace geometric placement entirely (testbed emulation).
  // When set, positions are taken from `fixedPositions` (may be empty for
  // display-free models) and the factory's model is used as-is. The
  // simulator reference lets time-varying models read the clock.
  std::function<std::unique_ptr<phy::LinkModel>(sim::Simulator&, Rng&)>
      linkModelFactory;
  std::vector<Vec2> fixedPositions;
};

// Convenience: the paper's Section 4.1 base scenario (before choosing a
// protocol, seed, or source count).
ScenarioConfig paperSimulationScenario();

// The paper scenario scaled to `nodeCount` nodes at the paper's density:
// the area side grows as 1000 m × sqrt(n / 50), so per-node degree matches
// the 50-node baseline. Uses Placement::Grid — O(n) and connected by
// construction, where the paper's rejection sampling becomes hopeless at
// thousands of nodes (set `placement = Placement::UniformRejection` to
// restore the old path). The scale benches and the 500-node robustness
// tests build on this.
ScenarioConfig scaledSimulationScenario(std::size_t nodeCount);

// Picks `groupCount` groups of `membersPerGroup` members and
// `sourcesPerGroup` sources (sources are distinct from members, like the
// paper's testbed setup) uniformly at random.
std::vector<GroupSpec> makeRandomGroups(std::size_t nodeCount,
                                        std::size_t groupCount,
                                        std::size_t membersPerGroup,
                                        std::size_t sourcesPerGroup, Rng& rng);

// Channel-local groups for multi-channel runs with the Static (id mod C)
// assignment: `groupsPerChannel` groups per channel, each drawn from one
// residue class mod `channels` so every group lives inside one collision
// domain. Group ids interleave channels (group g -> channel (g-1) mod C).
// With channels == 1 this degenerates to makeRandomGroups' shape over all
// ids. Draws from `rng` sequentially, so the result is deterministic.
std::vector<GroupSpec> makeStripedGroups(std::size_t nodeCount,
                                         std::size_t channels,
                                         std::size_t groupsPerChannel,
                                         std::size_t membersPerGroup,
                                         std::size_t sourcesPerGroup, Rng& rng);

// Aggregated outcome of one simulation run.
struct RunResults {
  std::uint64_t packetsSent{0};        // CBR packets across all sources
  std::uint64_t expectedDeliveries{0}; // packetsSent × member fan-out
  std::uint64_t packetsDelivered{0};
  double pdr{0.0};                     // delivered / expected
  double throughputBps{0.0};           // payload bits delivered per second
  double meanDelayS{0.0};
  std::uint64_t probeBytesReceived{0};
  std::uint64_t dataBytesReceived{0};
  std::uint64_t controlBytesReceived{0};
  double probeOverheadPct{0.0};        // 100 × probe / data bytes received
  std::uint64_t macBroadcastsSent{0};
  std::uint64_t radioFramesCorrupted{0};
  std::uint64_t eventsExecuted{0};

  // Fault/churn metrics (RecoveryAnalyzer); all zero on fault-free runs.
  std::uint64_t faultsApplied{0};
  std::uint64_t faultsCleared{0};
  double faultWindowS{0.0};
  double inWindowPdr{0.0};
  double outWindowPdr{0.0};
  double overheadInflation{0.0};
  double meanTimeToRepairS{0.0};
  std::uint64_t repairsObserved{0};
  std::uint64_t repairsUnresolved{0};

  // Per-collision-domain counters, indexed by channel. Empty unless the
  // run used channels > 1. Sourced from each domain's own counter
  // registry; `meshtrace verify` cross-checks them against the trace's
  // channel-tagged TxStart/Deliver records.
  std::vector<std::uint64_t> channelFrames;     // phy.frames_sent
  std::vector<std::uint64_t> channelDelivered;  // app.packets_delivered

  // Gateway relay totals; zero/empty unless the run configured gateways.
  // `handoffFrames` counts frames injected across a domain boundary;
  // per-gateway counters include the residual still staged at teardown
  // (frames captured after the last barrier).
  std::uint64_t gatewayCount{0};
  std::uint64_t handoffFrames{0};
  std::vector<gateway::GatewayCounters> gatewayStats;
};

// True when `config` describes a world the topology-snapshot cache can
// capture and re-adopt (DESIGN §14): static geometric placement whose
// link means are cacheable — no mobility, no custom link-model factory.
// Ineligible scenarios always build from scratch; the runner reports
// them as snapshot "off".
bool snapshotEligible(const ScenarioConfig& config);

class Simulation {
 public:
  explicit Simulation(ScenarioConfig config);

  // Adopt-snapshot construction (DESIGN §14): skips placement, the channel
  // plan, gateway selection and every reachability build by splicing in
  // the frozen world. `snapshot` must have been captured from a scenario
  // with identical topology-relevant keys (same seed, node count, area,
  // placement, phy params, channels, gateways — the runner's SnapshotCache
  // keys on exactly that subset); protocol, traffic, duration, faults and
  // rate control may differ freely. Results are byte-identical to a
  // from-scratch build: reachability builds draw no RNG and Rng::fork is
  // const, so skipping work never perturbs any stream.
  Simulation(ScenarioConfig config, TopologySnapshotPtr snapshot);

  // Freezes this simulation's immutable world for reuse. Valid only on
  // snapshot-eligible scenarios built from scratch, at most once, before
  // run(); returns null when the scenario is ineligible. Zero-copy: the
  // channels move their built rows into the snapshot and keep reading
  // them through the shared path every adopter uses.
  TopologySnapshotPtr captureSnapshot();

  // True when this simulation was constructed by adopting a snapshot.
  bool adoptedSnapshot() const { return adopted_ != nullptr; }

  // Runs to the configured duration (plus a small drain window) and
  // returns the aggregated results.
  RunResults run();

  // On multi-channel builds these return collision domain 0's objects;
  // use domainChannel()/domainCounters() to reach the others.
  sim::Simulator& simulator() {
    return multiChannel_ ? *domainSims_[0] : simulator_;
  }
  phy::Channel& channel() {
    return multiChannel_ ? *channels_[0] : *channel_;
  }
  // Per-run counter taxonomy, summed across nodes (always populated; on
  // multi-channel builds every node registers here *and* in its domain
  // registry, so the totals span all domains).
  const trace::CounterRegistry& counters() const { return registry_; }
  // Non-null only when config.tracePath was set. Multi-channel builds
  // keep one collector per domain; this returns domain 0's.
  const trace::TraceCollector* trace() const {
    if (!multiChannel_) return trace_.get();
    return domainTraces_.empty() ? nullptr : domainTraces_[0].get();
  }

  // Multi-channel introspection. channelCount() is 1 on legacy builds;
  // plan() is null unless the channelplan path built this simulation.
  std::size_t channelCount() const { return multiChannel_ ? plan_.channels : 1; }
  const channelplan::ChannelPlan* plan() const {
    return multiChannel_ ? &plan_ : nullptr;
  }
  phy::Channel& domainChannel(std::size_t channel) {
    return multiChannel_ ? *channels_.at(channel) : *channel_;
  }
  const trace::CounterRegistry* domainCounters(std::size_t channel) const {
    return multiChannel_ ? domainRegistries_.at(channel).get() : &registry_;
  }
  MeshNode& node(net::NodeId id) { return *nodes_.at(id); }
  std::size_t nodeCount() const { return nodes_.size(); }
  // Gateway roster (empty unless the run configured gateways) and the
  // relay carrying frames between domains (null likewise).
  const gateway::GatewaySet& gatewaySet() const { return gatewaySet_; }
  const gateway::GatewayRelay* gatewayRelay() const { return relay_.get(); }
  // Non-null only when the scenario carries faults (explicit or churn).
  fault::FaultInjector* faultInjector() { return injector_.get(); }
  const fault::RecoveryAnalyzer* recovery() const { return recovery_.get(); }
  const std::vector<Vec2>& positions() const { return positions_; }
  const ScenarioConfig& config() const { return config_; }

  // Union of per-node data-edge counts (for the Figure 5 tree dump).
  std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash>
  dataEdgeCounts() const;

 private:
  void build();
  void buildMultiChannel(Rng& rng);
  RunResults runMultiChannel();
  // Shared post-run accounting: headline aggregates from nodes_ and
  // registry_ (identical arithmetic on both the legacy and the
  // multi-channel path — the cross-path byte-identity tests rely on it).
  void aggregateTraffic(RunResults& results);
  std::string traceMetaLine() const;
  std::vector<Vec2> placeNodes(Rng& rng) const;
  std::vector<Vec2> placeNodesGrid(Rng& rng) const;
  std::vector<Vec2> placePositions(Rng& rng) const;
  static bool diskGraphConnected(const std::vector<Vec2>& positions,
                                 double rangeM);

  // Installs a fresh PacketPool scoped to `sim`'s run loop (DESIGN §12):
  // the pool becomes the thread's active pool for exactly the events that
  // simulator executes, so concurrent domain simulators never share one.
  void installPool(sim::Simulator& sim);

  ScenarioConfig config_;
  // One slab pool per simulator (legacy: one; multi-channel: one per
  // domain). Pool impls are refcounted by their live packets, so member
  // order relative to packet holders below is immaterial.
  std::vector<std::unique_ptr<net::PacketPool>> pools_;
  sim::Simulator simulator_;
  trace::CounterRegistry registry_;
  std::unique_ptr<trace::TraceCollector> trace_;  // null unless tracePath set
  std::unique_ptr<metrics::Metric> metric_;  // null for original ODMRP
  std::unique_ptr<rate::RateTable> rateTable_;  // null on the legacy path
  std::unique_ptr<phy::Channel> channel_;

  // Multi-channel state (channels > 1 or forceChannelPlan): one simulator,
  // channel, trace collector and counter registry per collision domain;
  // faults are scoped per domain too. The legacy members above stay unset
  // (except registry_/metric_/rateTable_/nodes_/positions_, shared).
  // Declared BEFORE nodes_/injectors so anything holding a Simulator& or
  // Channel& (node timers cancel against their domain simulator on
  // destruction) is torn down first.
  bool multiChannel_{false};
  channelplan::ChannelPlan plan_;
  std::vector<std::unique_ptr<sim::Simulator>> domainSims_;
  std::vector<std::unique_ptr<phy::Channel>> channels_;
  std::vector<std::unique_ptr<trace::TraceCollector>> domainTraces_;
  std::vector<std::unique_ptr<trace::CounterRegistry>> domainRegistries_;

  // Gateway relay: its ports hold Radio/Mac instances referencing the
  // domain simulators and channels above, so like nodes_ it must be
  // declared after them (torn down first).
  gateway::GatewaySet gatewaySet_;
  std::unique_ptr<gateway::GatewayRelay> relay_;

  std::vector<std::unique_ptr<MeshNode>> nodes_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::RecoveryAnalyzer> recovery_;
  std::vector<std::unique_ptr<fault::FaultInjector>> domainInjectors_;
  std::vector<std::unique_ptr<fault::RecoveryAnalyzer>> domainRecovery_;
  std::vector<Vec2> positions_;
  // Non-null when constructed by adoption; keeps the shared world alive
  // for the channels' row views (they also hold their own ReachSnapshot
  // refs, but positions/plan copies here read from it during build).
  TopologySnapshotPtr adopted_;
};

}  // namespace mesh::harness
