#pragma once
// Exponentially Weighted Moving Average.
//
// The paper's PP and ETT metrics smooth packet-pair delay samples with an
// EWMA that gives 90% weight to the accumulated average and 10% to the new
// sample, and impose a 20% multiplicative penalty when a probe of the pair
// is lost (Section 2.2). Ewma implements the generic estimator; the penalty
// is applied by the caller via `scale()` so the class stays policy-free.

#include "mesh/common/assert.hpp"

namespace mesh {

class Ewma {
 public:
  // `historyWeight` is the weight of the accumulated average (0.9 in the
  // paper); the new sample gets (1 - historyWeight).
  explicit Ewma(double historyWeight = 0.9) : historyWeight_{historyWeight} {
    MESH_REQUIRE(historyWeight >= 0.0 && historyWeight < 1.0);
  }

  bool hasValue() const { return initialized_; }
  double value() const {
    MESH_REQUIRE(initialized_);
    return value_;
  }
  double valueOr(double fallback) const { return initialized_ ? value_ : fallback; }

  // Feed a new sample. The first sample initializes the average directly.
  void update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = historyWeight_ * value_ + (1.0 - historyWeight_) * sample;
    }
  }

  // Multiplicative adjustment of the current average (e.g. the PP metric's
  // 20% loss penalty: scale(1.2)). A no-op until the first sample arrives.
  void scale(double factor) {
    if (initialized_) value_ *= factor;
  }

  void reset() {
    initialized_ = false;
    value_ = 0.0;
  }

  double historyWeight() const { return historyWeight_; }

 private:
  double historyWeight_;
  double value_{0.0};
  bool initialized_{false};
};

}  // namespace mesh
