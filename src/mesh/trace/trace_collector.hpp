#pragma once
// TraceCollector: the per-run sink for packet-lifecycle records.
//
// One collector serves one collision domain (one Simulation owns one
// collector per channel; each domain's event loop is single-threaded, so no
// locking). Components hold a cached `trace::TraceCollector*` that is null
// when tracing is off — every hook site compiles down to one pointer test,
// which the trace-overhead bench guards at <2% of the event loop.
// Multi-channel runs merge their per-domain collectors into one file with
// `exportMergedJsonl()`, ordered by (time, channel index).
//
// Records buffer in memory as 32-byte PODs; past a threshold they spill to
// `<path>.spill` so paper-scale runs stay bounded. `exportJsonl()` streams
// meta line + records + counter totals to a JSONL file and removes the
// spill. Packet uids (per-pool counters, so two domains can emit the same
// uid) are normalized to dense per-trace pids at record time, so the export
// bytes depend only on the run's seed.

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mesh/common/simtime.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/trace/trace_event.hpp"

namespace mesh::trace {

class TraceCollector {
 public:
  // ~32 MiB of buffered records before spilling to disk.
  static constexpr std::size_t kDefaultSpillThreshold = std::size_t{1} << 20;

  // `spillPath` empty disables spilling (everything stays in memory —
  // fine for tests; paper runs pass the export path so spill lands
  // alongside it).
  explicit TraceCollector(std::string spillPath = {},
                          std::size_t spillThreshold = kDefaultSpillThreshold);
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // --- hot-path emitters (call sites guard on a cached non-null pointer) --
  void packetBirth(SimTime t, net::NodeId node, const net::Packet& pkt,
                   net::GroupId group);
  void memberJoin(SimTime t, net::NodeId node, net::GroupId group);
  void enqueue(SimTime t, net::NodeId node, const net::Packet& pkt);
  // `pkt` may be null for MAC control frames (RTS/CTS/ACK). `rate` is the
  // frame's TxVector code (0 = legacy/basic path, omitted from the JSONL).
  void txStart(SimTime t, net::NodeId node, const net::Packet* pkt,
               std::uint32_t frameBytes, std::uint8_t rate = 0);
  void txEnd(SimTime t, net::NodeId node, const net::Packet* pkt,
             std::uint32_t frameBytes);
  void rxOk(SimTime t, net::NodeId node, const net::Packet& pkt);
  void probeTx(SimTime t, net::NodeId node, const net::Packet& pkt);
  void probeRx(SimTime t, net::NodeId node, const net::Packet& pkt);
  void forward(SimTime t, net::NodeId node, const net::Packet& pkt);
  void deliver(SimTime t, net::NodeId node, const net::Packet& pkt,
               std::uint32_t payloadBytes, net::NodeId source,
               net::GroupId group);
  void drop(SimTime t, net::NodeId node, const net::Packet* pkt,
            net::PacketKind kind, std::uint32_t sizeBytes, DropReason reason);
  // Fault subsystem: `type` is FaultInject or FaultClear; `peer` is the
  // second link endpoint for link faults (kInvalidNode otherwise).
  // `lossRate` (LossRamp) and `powerDbm` (InterferenceBurst) are recorded
  // on inject events only — they make the trace a complete fault timeline
  // that `meshtrace faults` can turn back into a [faults] config section.
  void faultEvent(SimTime t, EventType type, FaultKind kind, net::NodeId node,
                  net::NodeId peer, double lossRate = 0.0,
                  double powerDbm = 0.0);
  // Gateway handoff: `rebuilt` is the copy just built into THIS collector's
  // domain; `srcDomain`/`srcPid` identify the original packet in the source
  // domain's collector. Emitted before the rebuilt copy's first other
  // record, so `exportMergedJsonl` can alias the rebuilt pid to the
  // original's merged pid — cross-domain deliveries keep the birth pid.
  void gatewayHandoff(SimTime t, net::NodeId gateway, const net::Packet& rebuilt,
                      std::uint8_t srcDomain, std::uint32_t srcPid);

  // Public pid lookup (assigning on first sight, like every emitter): the
  // gateway relay uses it to capture a packet's source-domain pid before
  // rebuilding it into the destination domain.
  std::uint32_t pidFor(const net::Packet& pkt) { return pidOf(pkt); }

  std::uint64_t recordCount() const { return total_; }

  // Collision-domain tag stamped on txStart/drop/deliver records: 1 +
  // channel index. 0 (the default) means single-channel — record bytes are
  // unchanged from legacy traces, which byte-identity tests rely on.
  void setChannelTag(std::uint8_t tag) { channelTag_ = tag; }
  std::uint8_t channelTag() const { return channelTag_; }

  // Streams `metaJson` (a complete one-line JSON object), every record in
  // emission order, then one `{"counter":...,"value":...}` line per entry
  // of `counters`. Creates parent directories. Returns false (and keeps
  // the buffered records) if any file operation fails.
  bool exportJsonl(
      const std::string& path, const std::string& metaJson,
      const std::vector<std::pair<std::string, std::uint64_t>>& counters);

  // Multi-channel export: k-way merges the records of `parts` (one
  // collector per collision domain, each internally time-sorted) into one
  // JSONL file. Global order is (timeNs, part index); packet pids are
  // renumbered densely in merged first-appearance order so the output is a
  // function of the run alone, not of per-domain pid allocation. With one
  // part this is exactly exportJsonl. On success every part's records are
  // drained, as with exportJsonl.
  static bool exportMergedJsonl(
      const std::string& path, const std::string& metaJson,
      const std::vector<std::pair<std::string, std::uint64_t>>& counters,
      const std::vector<TraceCollector*>& parts);

 private:
  std::uint32_t pidOf(const net::Packet& pkt);
  void append(const TraceRecord& record);
  void emitPacketEvent(EventType type, SimTime t, net::NodeId node,
                       const net::Packet& pkt);
  bool spillBuffered();

  std::string spillPath_;
  std::size_t spillThreshold_;
  std::FILE* spill_{nullptr};
  std::uint64_t spilled_{0};
  std::uint64_t total_{0};
  std::vector<TraceRecord> buffer_;
  std::unordered_map<std::uint64_t, std::uint32_t> pids_;
  std::uint32_t nextPid_{1};  // 0 means "no packet"
  std::uint8_t channelTag_{0};
};

// Formats one record as a single JSON line (no trailing newline).
// Shared with nothing hot — used by export and by tests.
std::string toJsonLine(const TraceRecord& record);

}  // namespace mesh::trace
