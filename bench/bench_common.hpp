#pragma once
// Shared scenario factories for the bench binaries.
//
// Quick-by-default: benches run a reduced sweep (3 topologies × 150 s)
// so `for b in build/bench/*; do $b; done` finishes in minutes. Paper
// scale (10 topologies × 400 s, Section 4.1) via MESH_BENCH_FULL=1 or the
// MESH_BENCH_TOPOLOGIES / MESH_BENCH_DURATION_S overrides. The testbed
// benches always run at full scale (8 nodes is cheap).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mesh/harness/experiment.hpp"
#include "mesh/harness/report.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/testbed/loss_link_model.hpp"

namespace mesh::bench {

inline constexpr std::size_t kQuickTopologies = 3;
inline constexpr std::int64_t kQuickDurationS = 150;

// Environment defaults (MESH_BENCH_*) plus the runner flags every bench
// accepts: --jobs N (0 = all hardware threads), --jsonl FILE (one
// structured record per run), and --trace DIR (one packet-lifecycle trace
// per run, for `meshtrace verify`). Unrecognized arguments are left for
// the bench's own flag handling.
//
// Each JSONL record carries per-run engine telemetry alongside the
// protocol metrics — `events`, `wall_s`, and `events_per_sec` — so the
// trajectory files capture end-to-end simulator throughput; bench_micro +
// tools/bench_compare (the perf-smoke gate) track the same hot paths at
// micro scale.
inline harness::BenchOptions benchOptions(int argc, char** argv,
                                          std::size_t defaultTopologies,
                                          std::int64_t defaultDurationS) {
  harness::BenchOptions options =
      harness::BenchOptions::fromEnvironment(defaultTopologies, defaultDurationS);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      errno = 0;
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (errno != 0 || end == argv[i] || *end != '\0' || v < 0) {
        std::fprintf(stderr, "--jobs needs a non-negative integer (0 = auto)\n");
        std::exit(2);
      }
      options.jobs = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--jsonl") == 0 && i + 1 < argc) {
      options.jsonlPath = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      options.traceDir = argv[++i];
    }
  }
  return options;
}

// The Section 4.1 scenario: 50 nodes, 1000 m², Rayleigh, 2 groups × 10
// members, 1 source each (unless overridden), CBR 512 B × 20 pkt/s.
inline harness::ScenarioConfig simulationScenario(std::uint64_t topologySeed,
                                                  std::size_t sourcesPerGroup = 1,
                                                  bool rayleigh = true) {
  harness::ScenarioConfig config = harness::paperSimulationScenario();
  config.rayleighFading = rayleigh;
  Rng groupRng = Rng{topologySeed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 2, 10,
                                            sourcesPerGroup, groupRng);
  return config;
}

// The Section 5 testbed scenario: Purdue floor, 2 groups (src 2 -> {3,5};
// src 4 -> {1,7}), CBR 512 B × 20 pkt/s, 400 s.
inline harness::ScenarioConfig testbedScenario(std::uint64_t runSeed) {
  harness::ScenarioConfig config;
  config.nodeCount = testbed::kNodeCount;
  config.duration = SimTime::seconds(std::int64_t{400});
  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 20.0;
  config.traffic.start = SimTime::seconds(std::int64_t{30});
  config.traffic.stop = SimTime::seconds(std::int64_t{400});
  config.seed = runSeed;
  config.fixedPositions = testbed::Floorplan::positions();
  config.linkModelFactory = [](sim::Simulator& simulator, Rng& rng) {
    return testbed::makePurdueFloorModel(simulator, testbed::LossModelParams{},
                                         rng);
  };
  for (const auto& group : testbed::Floorplan::paperGroups()) {
    config.groups.push_back(
        harness::GroupSpec{group.group, group.sources, group.members});
  }
  return config;
}

inline void printPaperReference(const char* what, const char* values) {
  std::printf("\npaper reference — %s:\n  %s\n", what, values);
}

}  // namespace mesh::bench
