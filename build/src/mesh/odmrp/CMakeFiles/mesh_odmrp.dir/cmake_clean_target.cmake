file(REMOVE_RECURSE
  "libmesh_odmrp.a"
)
