file(REMOVE_RECURSE
  "CMakeFiles/bench_probing_rate_sweep.dir/bench_probing_rate_sweep.cpp.o"
  "CMakeFiles/bench_probing_rate_sweep.dir/bench_probing_rate_sweep.cpp.o.d"
  "bench_probing_rate_sweep"
  "bench_probing_rate_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probing_rate_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
