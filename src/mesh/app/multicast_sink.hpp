#pragma once
// MulticastSink: per-member delivery accounting.
//
// Records every packet ODMRP delivers to this member: count, bytes, and
// end-to-end delay (delivery time minus the packet's creation time at the
// source). These feed the paper's three measures: throughput (Figure 2
// columns 1, 2, 4), delay (column 3), and — via the per-kind byte counts
// kept by the node — probing overhead (Table 1).

#include <cstdint>
#include <unordered_map>

#include "mesh/common/simtime.hpp"
#include "mesh/common/stats.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::app {

class MulticastSink {
 public:
  explicit MulticastSink(sim::Simulator& simulator) : simulator_{simulator} {}

  // Observability: a Deliver record per packet handed to this member. The
  // sink does not otherwise know which node owns it, so the id rides along.
  void setTrace(trace::TraceCollector* collector, net::NodeId self) {
    trace_ = collector;
    self_ = self;
  }

  // Wire as the Odmrp deliver callback.
  void onDeliver(net::GroupId group, net::NodeId source, std::uint32_t seq,
                 const net::PacketPtr& packet,
                 std::span<const std::uint8_t> payload) {
    (void)seq;
    ++packetsReceived_;
    payloadBytesReceived_ += payload.size();
    delayS_.add((simulator_.now() - packet->createdAt()).toSeconds());
    if (trace_ != nullptr) {
      trace_->deliver(simulator_.now(), self_, *packet,
                      static_cast<std::uint32_t>(payload.size()), source,
                      group);
    }
  }

  std::uint64_t packetsReceived() const { return packetsReceived_; }
  std::uint64_t payloadBytesReceived() const { return payloadBytesReceived_; }

  // Counter slots for CounterRegistry registration (stable for the sink's
  // lifetime).
  const std::uint64_t* packetsReceivedSlot() const { return &packetsReceived_; }
  const std::uint64_t* payloadBytesReceivedSlot() const {
    return &payloadBytesReceived_;
  }
  const OnlineStats& delayStats() const { return delayS_; }

 private:
  sim::Simulator& simulator_;
  trace::TraceCollector* trace_{nullptr};
  net::NodeId self_{net::kInvalidNode};
  std::uint64_t packetsReceived_{0};
  std::uint64_t payloadBytesReceived_{0};
  OnlineStats delayS_;
};

}  // namespace mesh::app
