#pragma once
// StaticLinkModel: an explicit link-budget matrix.
//
// Used by unit tests (exact control over which links exist and how strong
// they are) and as the base of the testbed emulation (where per-link loss
// rates, not geometry, define quality). Each directed link has a mean
// received power; optionally a Bernoulli loss rate, in which case a "lost"
// frame arrives at `lostPowerW` instead (below the reception threshold but
// typically above carrier sense, like a deeply faded but still audible
// frame).

#include <functional>
#include <vector>

#include "mesh/common/assert.hpp"
#include "mesh/phy/link_model.hpp"

namespace mesh::phy {

class StaticLinkModel : public LinkModel {
 public:
  explicit StaticLinkModel(std::size_t nodeCount, double defaultPowerW = 0.0)
      : n_{nodeCount},
        power_(nodeCount * nodeCount, defaultPowerW),
        lossRate_(nodeCount * nodeCount, 0.0) {}

  void setLink(net::NodeId from, net::NodeId to, double powerW) {
    power_[index(from, to)] = powerW;
  }
  void setSymmetric(net::NodeId a, net::NodeId b, double powerW) {
    setLink(a, b, powerW);
    setLink(b, a, powerW);
  }
  void setLossRate(net::NodeId from, net::NodeId to, double rate) {
    MESH_REQUIRE(rate >= 0.0 && rate <= 1.0);
    lossRate_[index(from, to)] = rate;
  }
  void setSymmetricLossRate(net::NodeId a, net::NodeId b, double rate) {
    setLossRate(a, b, rate);
    setLossRate(b, a, rate);
  }
  void setLostPowerW(double powerW) { lostPowerW_ = powerW; }
  void setDistanceM(double d) { distanceM_ = d; }

  double meanRxPowerW(net::NodeId from, net::NodeId to) const override {
    return power_[index(from, to)];
  }

  double sampleRxPowerW(net::NodeId from, net::NodeId to, Rng& rng) const override {
    const double rate = lossRateNow(from, to);
    if (rate > 0.0 && rng.bernoulli(rate)) return lostPowerW_;
    return power_[index(from, to)];
  }

  // The link budget itself is static (the cached mean IS power_[from][to]);
  // only the Bernoulli loss draw — which may be time-varying in subclasses
  // — happens per frame. Same draws and same returned bits as
  // sampleRxPowerW.
  double samplePowerGivenMeanW(net::NodeId from, net::NodeId to,
                               double meanPowerW, Rng& rng) const override {
    const double rate = lossRateNow(from, to);
    if (rate > 0.0 && rng.bernoulli(rate)) return lostPowerW_;
    return meanPowerW;
  }

  double distanceM(net::NodeId, net::NodeId) const override { return distanceM_; }

  std::size_t nodeCount() const { return n_; }

 protected:
  // Subclasses (the testbed's time-varying model) override the effective
  // loss rate; the base class uses the static matrix.
  virtual double lossRateNow(net::NodeId from, net::NodeId to) const {
    return lossRate_[index(from, to)];
  }

  std::size_t index(net::NodeId from, net::NodeId to) const {
    MESH_REQUIRE(from < n_ && to < n_);
    return static_cast<std::size_t>(from) * n_ + to;
  }

 private:
  std::size_t n_;
  std::vector<double> power_;
  std::vector<double> lossRate_;
  double lostPowerW_{0.0};
  double distanceM_{0.0};
};

}  // namespace mesh::phy
