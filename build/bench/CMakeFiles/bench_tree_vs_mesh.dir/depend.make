# Empty dependencies file for bench_tree_vs_mesh.
# This may be replaced when dependencies are built.
