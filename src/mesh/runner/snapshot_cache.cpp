#include "mesh/runner/snapshot_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mesh/common/assert.hpp"

namespace mesh::runner {
namespace {

void appendDouble(std::string& out, const char* name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", name, value);
  out += buf;
}

void appendUint(std::string& out, const char* name, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%llu;", name,
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

std::string SnapshotCache::keyFor(const harness::ScenarioConfig& config) {
  // Exact serialization, not a hash: collisions would silently hand a run
  // the wrong world, and the handful of sweep keys makes string compares
  // free. Anything the snapshot's contents depend on must appear here —
  // placement inputs, the channel plan, gateway selection, and every phy
  // parameter the reachability rows are a function of.
  std::string key;
  key.reserve(256);
  appendUint(key, "seed", config.seed);
  appendUint(key, "n", config.nodeCount);
  appendDouble(key, "w", config.areaWidthM);
  appendDouble(key, "h", config.areaHeightM);
  appendUint(key, "fading", config.rayleighFading ? 1 : 0);
  appendUint(key, "conn", config.ensureConnected ? 1 : 0);
  appendUint(key, "place", static_cast<std::uint64_t>(config.placement));
  appendUint(key, "sgrid", config.spatialIndex ? 1 : 0);
  appendUint(key, "ch", config.channels);
  appendUint(key, "assign", static_cast<std::uint64_t>(config.channelAssign));
  appendUint(key, "forceplan", config.forceChannelPlan ? 1 : 0);
  appendUint(key, "gw", config.gateways);
  appendUint(key, "gwsel", static_cast<std::uint64_t>(config.gatewaySelect));
  key += "gwnodes=";
  for (net::NodeId id : config.gatewayNodes) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u,", static_cast<unsigned>(id));
    key += buf;
  }
  key += ';';
  const phy::PhyParams& phy = config.node.phy;
  appendDouble(key, "txp", phy.txPowerW);
  appendDouble(key, "gtx", phy.antennaGainTx);
  appendDouble(key, "grx", phy.antennaGainRx);
  appendDouble(key, "sysl", phy.systemLoss);
  appendDouble(key, "ah", phy.antennaHeightM);
  appendDouble(key, "freq", phy.frequencyHz);
  appendDouble(key, "rxthr", phy.rxThresholdW);
  appendDouble(key, "csthr", phy.csThresholdW);
  return key;
}

std::size_t SnapshotCache::defaultBudgetBytes() {
  constexpr std::size_t kDefaultMb = 512;
  std::size_t mb = kDefaultMb;
  if (const char* env = std::getenv("MESH_TOPOLOGY_CACHE_MB")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      mb = static_cast<std::size_t>(parsed);
    }
  }
  return mb * std::size_t{1024} * std::size_t{1024};
}

std::optional<bool> SnapshotCache::enabledFromEnvironment() {
  const char* env = std::getenv("MESH_TOPOLOGY_CACHE");
  if (env == nullptr) return std::nullopt;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "false") == 0) {
    return false;
  }
  if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0 ||
      std::strcmp(env, "true") == 0) {
    return true;
  }
  return std::nullopt;
}

SnapshotCache::SnapshotCache(std::size_t budgetBytes)
    : budgetBytes_{budgetBytes} {}

TopologySnapshotPtr SnapshotCache::acquire(const std::string& key,
                                           bool& shouldBuild) {
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // First claimant: insert a Building entry and let the caller build.
      entries_.emplace(key, Entry{});
      shouldBuild = true;
      return nullptr;
    }
    if (it->second.ready) {
      lru_.splice(lru_.begin(), lru_, it->second.lruPos);
      ++stats_.reused;
      shouldBuild = false;
      return it->second.snapshot;
    }
    // A builder owns the key; wait for publish (notifies) or abandon
    // (erases + notifies, in which case the loop re-claims).
    ready_.wait(lock);
  }
}

void SnapshotCache::publish(const std::string& key,
                            TopologySnapshotPtr snapshot) {
  MESH_REQUIRE(snapshot != nullptr);
  std::lock_guard<std::mutex> lock{mutex_};
  auto it = entries_.find(key);
  MESH_REQUIRE(it != entries_.end() && !it->second.ready);
  it->second.ready = true;
  it->second.snapshot = std::move(snapshot);
  it->second.bytes = it->second.snapshot->approxBytes();
  lru_.push_front(key);
  it->second.lruPos = lru_.begin();
  stats_.bytes += it->second.bytes;
  ++stats_.built;
  evictOverBudget();
  ready_.notify_all();
}

void SnapshotCache::abandon(const std::string& key) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto it = entries_.find(key);
  MESH_REQUIRE(it != entries_.end() && !it->second.ready);
  entries_.erase(it);
  ++stats_.failed;
  ready_.notify_all();
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

void SnapshotCache::evictOverBudget() {
  // Keep at least the newest entry resident regardless of budget — a
  // single oversized world must still be shareable within its own seed.
  while (stats_.bytes > budgetBytes_ && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    MESH_REQUIRE(it != entries_.end() && it->second.ready);
    stats_.bytes -= it->second.bytes;
    ++stats_.evicted;
    entries_.erase(it);  // adopters' shared_ptrs keep the world alive
    lru_.pop_back();
  }
}

}  // namespace mesh::runner
