#pragma once
// Scenario configuration files for the meshsim driver.
//
// A small INI dialect — sections, key = value, '#' comments — mapping
// 1:1 onto ScenarioConfig, so whole experiments are runnable without
// writing C++:
//
//   # fifty.ini
//   [scenario]
//   nodes = 50
//   area = 1000x1000
//   duration_s = 400
//   fading = rayleigh        # or: none
//   seed = 7
//
//   [protocol]
//   routing = odmrp          # or: tree
//   metric = SPP             # HOP ETX ETT PP METX SPP BiETX, or: none
//   probe_rate = 1.0
//   adaptive = false
//
//   [traffic]
//   payload = 512
//   rate_pps = 20
//   start_s = 30
//   stop_s = 400
//
//   [group 1]                # one section per multicast group
//   sources = 0
//   members = 10 11 12 13 14
//
// Parsing reports errors with line numbers; unknown keys are errors (a
// typo silently ignored is how experiments go wrong).

#include <optional>
#include <string>
#include <string_view>

#include "mesh/harness/scenario.hpp"

namespace mesh::harness {

struct ConfigParseResult {
  std::optional<ScenarioConfig> config;
  std::string error;  // empty on success

  bool ok() const { return config.has_value(); }
};

// Parses the text of a scenario file.
ConfigParseResult parseScenarioConfig(std::string_view text);

// Reads and parses a file from disk.
ConfigParseResult loadScenarioConfig(const std::string& path);

}  // namespace mesh::harness
