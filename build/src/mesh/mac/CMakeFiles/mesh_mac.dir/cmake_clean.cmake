file(REMOVE_RECURSE
  "CMakeFiles/mesh_mac.dir/frames.cpp.o"
  "CMakeFiles/mesh_mac.dir/frames.cpp.o.d"
  "CMakeFiles/mesh_mac.dir/mac80211.cpp.o"
  "CMakeFiles/mesh_mac.dir/mac80211.cpp.o.d"
  "libmesh_mac.a"
  "libmesh_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
