#pragma once
// SimTime: the simulation clock type.
//
// All simulation time is kept as a signed 64-bit count of *nanoseconds*.
// Integer time makes every experiment a pure, bit-exact function of its
// seed: there is no floating-point drift in event ordering, so a run can be
// replayed on any platform and produce the same packet-level trace.
//
// The type is a strong wrapper (not an alias) so that times, durations and
// plain integers cannot be mixed up silently.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace mesh {

class SimTime {
 public:
  constexpr SimTime() = default;

  // Named constructors. Fractional inputs are rounded to the nearest ns.
  static constexpr SimTime nanoseconds(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime microseconds(std::int64_t us) { return SimTime{us * 1000}; }
  static constexpr SimTime milliseconds(std::int64_t ms) { return SimTime{ms * 1'000'000}; }
  static constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1'000'000'000}; }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr SimTime microseconds(double us) {
    return SimTime{static_cast<std::int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5))};
  }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double toSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double toMilliseconds() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double toMicroseconds() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr bool isZero() const { return ns_ == 0; }
  constexpr bool isNegative() const { return ns_ < 0; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns_ / k}; }
  // Ratio of two durations.
  constexpr double ratio(SimTime o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

  // Scale a duration by a floating factor (rounds to nearest ns).
  constexpr SimTime scaled(double f) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * f + 0.5)};
  }

  // "12.345678s" — human-readable, used by the logger and traces.
  std::string str() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

inline namespace time_literals {
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::milliseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::microseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::nanoseconds(static_cast<std::int64_t>(v));
}
}  // namespace time_literals

}  // namespace mesh
