file(REMOVE_RECURSE
  "libmesh_mac.a"
)
