#include "mesh/harness/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "mesh/common/assert.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/phy/propagation.hpp"

namespace mesh::harness {

ScenarioConfig paperSimulationScenario() {
  ScenarioConfig config;
  config.nodeCount = 50;
  config.areaWidthM = 1000.0;
  config.areaHeightM = 1000.0;
  config.rayleighFading = true;
  config.duration = SimTime::seconds(std::int64_t{400});
  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 20.0;
  config.traffic.start = SimTime::seconds(std::int64_t{30});
  config.traffic.stop = SimTime::seconds(std::int64_t{400});
  return config;
}

ScenarioConfig scaledSimulationScenario(std::size_t nodeCount) {
  MESH_REQUIRE(nodeCount > 0);
  ScenarioConfig config = paperSimulationScenario();
  config.nodeCount = nodeCount;
  // Constant density (50 nodes per km²): area grows linearly with n.
  const double side =
      1000.0 * std::sqrt(static_cast<double>(nodeCount) / 50.0);
  config.areaWidthM = side;
  config.areaHeightM = side;
  return config;
}

std::vector<GroupSpec> makeRandomGroups(std::size_t nodeCount,
                                        std::size_t groupCount,
                                        std::size_t membersPerGroup,
                                        std::size_t sourcesPerGroup, Rng& rng) {
  MESH_REQUIRE(groupCount * (membersPerGroup + sourcesPerGroup) <= nodeCount);
  std::vector<net::NodeId> ids(nodeCount);
  std::iota(ids.begin(), ids.end(), net::NodeId{0});
  // Fisher-Yates with our deterministic Rng.
  for (std::size_t i = nodeCount - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniformInt(std::uint64_t{i + 1}));
    std::swap(ids[i], ids[j]);
  }
  std::vector<GroupSpec> groups;
  std::size_t next = 0;
  for (std::size_t g = 0; g < groupCount; ++g) {
    GroupSpec spec;
    spec.group = static_cast<net::GroupId>(g + 1);
    for (std::size_t s = 0; s < sourcesPerGroup; ++s) spec.sources.push_back(ids[next++]);
    for (std::size_t m = 0; m < membersPerGroup; ++m) spec.members.push_back(ids[next++]);
    groups.push_back(std::move(spec));
  }
  return groups;
}

Simulation::Simulation(ScenarioConfig config) : config_{std::move(config)} {
  build();
}

std::vector<Vec2> Simulation::placeNodes(Rng& rng) const {
  std::vector<Vec2> positions;
  positions.reserve(config_.nodeCount);
  for (std::size_t i = 0; i < config_.nodeCount; ++i) {
    positions.push_back(Vec2{rng.uniform(0.0, config_.areaWidthM),
                             rng.uniform(0.0, config_.areaHeightM)});
  }
  return positions;
}

bool Simulation::diskGraphConnected(const std::vector<Vec2>& positions,
                                    double rangeM) {
  if (positions.empty()) return true;
  std::vector<std::size_t> parent(positions.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const double range2 = rangeM * rangeM;
  for (std::size_t a = 0; a < positions.size(); ++a) {
    for (std::size_t b = a + 1; b < positions.size(); ++b) {
      if (positions[a].distanceSquaredTo(positions[b]) <= range2) {
        parent[find(a)] = find(b);
      }
    }
  }
  const std::size_t root = find(0);
  for (std::size_t i = 1; i < positions.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

void Simulation::build() {
  Rng rng{config_.seed};

  // MESH_RATE_CONTROL overrides the configured controller — the same
  // escape hatch pattern as MESH_SPATIAL_INDEX, for A/B runs without
  // touching configs.
  if (const char* env = std::getenv("MESH_RATE_CONTROL");
      env != nullptr && *env != '\0') {
    rate::ControlKind parsed;
    if (rate::controlKindFromString(env, parsed)) {
      config_.rateControl = parsed;
    } else {
      std::fprintf(stderr,
                   "MESH_RATE_CONTROL=%s ignored (fixed/minstrel/genie)\n",
                   env);
    }
  }

  if (!config_.tracePath.empty()) {
    trace_ = std::make_unique<trace::TraceCollector>(config_.tracePath +
                                                     ".spill");
  }

  if (config_.protocol.metric) {
    metric_ = metrics::makeMetric(*config_.protocol.metric,
                                  config_.traffic.payloadBytes);
  }

  std::unique_ptr<phy::LinkModel> linkModel;
  if (config_.linkModelFactory) {
    Rng modelRng = rng.fork("linkmodel");
    linkModel = config_.linkModelFactory(simulator_, modelRng);
    positions_ = config_.fixedPositions;
    if (config_.nodeCount == 0 && !positions_.empty()) {
      config_.nodeCount = positions_.size();
    }
  } else if (config_.mobilityMaxSpeedMps > 0.0) {
    phy::RandomWaypointMobility::Params mobilityParams;
    mobilityParams.areaWidthM = config_.areaWidthM;
    mobilityParams.areaHeightM = config_.areaHeightM;
    mobilityParams.minSpeedMps = config_.mobilityMaxSpeedMps / 2.0;
    mobilityParams.maxSpeedMps = config_.mobilityMaxSpeedMps;
    mobilityParams.maxPause = SimTime::seconds(std::int64_t{5});
    mobilityParams.horizon = config_.duration + SimTime::seconds(std::int64_t{10});
    auto mobility = std::make_unique<phy::RandomWaypointMobility>(
        config_.nodeCount, mobilityParams, rng.fork("mobility"));
    positions_ = mobility->initialPositions();
    std::unique_ptr<phy::FadingModel> fading;
    if (config_.rayleighFading) {
      fading = std::make_unique<phy::RayleighFading>();
    } else {
      fading = std::make_unique<phy::NoFading>();
    }
    linkModel = std::make_unique<phy::MobileGeometricLinkModel>(
        simulator_, config_.node.phy, std::move(mobility),
        std::make_unique<phy::TwoRayGroundModel>(), std::move(fading));
  } else {
    Rng placeRng = rng.fork("placement");
    positions_ = placeNodes(placeRng);
    if (config_.ensureConnected) {
      // 250 m is the nominal (fading-free) reception range.
      int attempts = 0;
      while (!diskGraphConnected(positions_, 250.0)) {
        positions_ = placeNodes(placeRng);
        MESH_REQUIRE(++attempts < 1000);
      }
    }
    std::unique_ptr<phy::FadingModel> fading;
    if (config_.rayleighFading) {
      fading = std::make_unique<phy::RayleighFading>();
    } else {
      fading = std::make_unique<phy::NoFading>();
    }
    linkModel = std::make_unique<phy::GeometricLinkModel>(
        config_.node.phy, positions_, std::make_unique<phy::TwoRayGroundModel>(),
        std::move(fading));
  }

  channel_ = std::make_unique<phy::Channel>(simulator_, std::move(linkModel),
                                            rng.fork("channel"));
  channel_->setSpatialIndex(config_.spatialIndex);
  if (trace_ != nullptr) channel_->setTrace(trace_.get());
  // Rate subsystem: build the shared table when anything rate-aware is
  // configured. The basic rate tracks the PHY bitrate so code-0 and
  // basic-code airtimes agree.
  if (config_.rateControl != rate::ControlKind::Fixed ||
      config_.rateSet != rate::RateSetKind::Basic) {
    rateTable_ = std::make_unique<rate::RateTable>(rate::RateTable::forSet(
        config_.rateSet, config_.node.phy.bitRateBps));
    channel_->setRateTable(rateTable_.get());
  }
  if (config_.mobilityMaxSpeedMps > 0.0) {
    // Fading headroom gives the cache ~3.4x distance slack over the CS
    // range (~1.3 km); refresh every 2 s so even 30 m/s nodes cannot
    // outrun it.
    channel_->enableReachabilityRefresh(SimTime::seconds(std::int64_t{2}));
  }

  MeshNodeConfig nodeConfig = config_.node;
  nodeConfig.probeRateScale = config_.protocol.probeRateScale;
  nodeConfig.treeRouting = config_.protocol.routing == Routing::Tree;
  nodeConfig.adaptiveProbing.enabled = config_.protocol.adaptiveProbing;
  nodeConfig.rateControl = config_.rateControl;
  nodeConfig.rateTable = rateTable_.get();
  nodes_.reserve(config_.nodeCount);
  for (std::size_t i = 0; i < config_.nodeCount; ++i) {
    nodes_.push_back(std::make_unique<MeshNode>(
        simulator_, *channel_, static_cast<net::NodeId>(i), nodeConfig,
        metric_.get(), rng.fork("node", i), trace_.get()));
    nodes_.back()->registerCounters(registry_);
  }

  for (const GroupSpec& spec : config_.groups) {
    for (const net::NodeId member : spec.members) {
      nodes_.at(member)->joinGroup(spec.group);
    }
    for (const net::NodeId source : spec.sources) {
      app::CbrConfig cbr = config_.traffic;
      cbr.group = spec.group;
      nodes_.at(source)->addCbrSource(cbr);
    }
  }

  for (auto& node : nodes_) node->start();

  // Faults last: the schedule is merged (explicit + generated churn) and
  // armed against the fully built simulation.
  fault::FaultSchedule schedule = config_.faults;
  if (config_.churn) {
    // Churn victims: every node that is neither a source nor a member.
    std::vector<bool> excluded(config_.nodeCount, false);
    for (const GroupSpec& spec : config_.groups) {
      for (const net::NodeId s : spec.sources) excluded.at(s) = true;
      for (const net::NodeId m : spec.members) excluded.at(m) = true;
    }
    std::vector<net::NodeId> eligible;
    for (std::size_t i = 0; i < config_.nodeCount; ++i) {
      if (!excluded[i]) eligible.push_back(static_cast<net::NodeId>(i));
    }
    const fault::FaultSchedule generated = fault::FaultSchedule::generate(
        *config_.churn, config_.duration, eligible, rng.fork("faults"));
    for (const fault::FaultEvent& event : generated.events()) {
      schedule.add(event);
    }
  }
  if (!schedule.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(simulator_, *channel_,
                                                       std::move(schedule));
    injector_->setTrace(trace_.get());
    injector_->setBlackholeHook([this](net::NodeId node, bool active) {
      nodes_.at(node)->setProbeBlackhole(active);
    });
    injector_->arm();

    // Mean fan-out per originated data packet: the factor that turns the
    // analyzer's originated-counter deltas into expected deliveries.
    double fanout = 0.0;
    std::size_t sources = 0;
    for (const GroupSpec& spec : config_.groups) {
      for (const net::NodeId source : spec.sources) {
        std::uint64_t f = 0;
        for (const net::NodeId member : spec.members) {
          if (member != source) ++f;
        }
        fanout += static_cast<double>(f);
        ++sources;
      }
    }
    if (sources > 0) fanout /= static_cast<double>(sources);
    recovery_ = std::make_unique<fault::RecoveryAnalyzer>(
        simulator_, registry_, injector_->schedule(), config_.duration,
        fanout);
    recovery_->arm();
  }
}

RunResults Simulation::run() {
  // A short drain window lets in-flight frames land before accounting.
  simulator_.run(config_.duration + SimTime::seconds(std::int64_t{1}));

  RunResults results;
  results.eventsExecuted = simulator_.eventsExecuted();

  for (const GroupSpec& spec : config_.groups) {
    for (const net::NodeId source : spec.sources) {
      const app::CbrSource* cbr = nodes_.at(source)->cbr();
      MESH_ASSERT(cbr != nullptr);
      results.packetsSent += cbr->packetsSent();
      // Every member except the source itself (a source may be a member)
      // should receive each packet.
      std::uint64_t fanout = 0;
      for (const net::NodeId member : spec.members) {
        if (member != source) ++fanout;
      }
      results.expectedDeliveries += cbr->packetsSent() * fanout;
    }
    for (const net::NodeId member : spec.members) {
      const auto& sink = nodes_.at(member)->sink();
      results.packetsDelivered += sink.packetsReceived();
    }
  }

  // Byte/frame totals come from the counter registry — the same slots every
  // protocol variant registers under one taxonomy, so these aggregates and
  // a `meshtrace` replay read identical numbers.
  results.probeBytesReceived = registry_.value("app.rx_bytes.probe");
  results.dataBytesReceived = registry_.value("app.rx_bytes.data");
  results.controlBytesReceived = registry_.value("app.rx_bytes.control");
  results.macBroadcastsSent = registry_.value("mac.broadcast_sent");
  results.radioFramesCorrupted = registry_.value("phy.frames_corrupted");

  OnlineStats delay;
  for (const auto& node : nodes_) delay.merge(node->sink().delayStats());

  results.pdr = results.expectedDeliveries > 0
                    ? static_cast<double>(results.packetsDelivered) /
                          static_cast<double>(results.expectedDeliveries)
                    : 0.0;
  const double activeS =
      (config_.traffic.stop - config_.traffic.start).toSeconds();
  std::uint64_t payloadBits = 0;
  for (const GroupSpec& spec : config_.groups) {
    for (const net::NodeId member : spec.members) {
      payloadBits += nodes_.at(member)->sink().payloadBytesReceived() * 8;
    }
  }
  results.throughputBps =
      activeS > 0.0 ? static_cast<double>(payloadBits) / activeS : 0.0;
  results.meanDelayS = delay.mean();
  results.probeOverheadPct =
      results.dataBytesReceived > 0
          ? 100.0 * static_cast<double>(results.probeBytesReceived) /
                static_cast<double>(results.dataBytesReceived)
          : 0.0;

  if (recovery_ != nullptr) {
    const fault::RecoveryReport recovered = recovery_->report();
    results.faultsApplied = recovered.faultsApplied;
    results.faultsCleared = recovered.faultsCleared;
    results.faultWindowS = recovered.faultWindowS;
    results.inWindowPdr = recovered.inWindowPdr;
    results.outWindowPdr = recovered.outWindowPdr;
    results.overheadInflation = recovered.overheadInflation;
    results.meanTimeToRepairS = recovered.meanTimeToRepairS;
    results.repairsObserved = recovered.repairsObserved;
    results.repairsUnresolved = recovered.repairsUnresolved;
  }

  if (trace_ != nullptr) {
    char meta[256];
    std::snprintf(meta, sizeof(meta),
                  "{\"seed\":%llu,\"protocol\":\"%s\",\"nodes\":%zu,"
                  "\"active_s\":%.17g}",
                  static_cast<unsigned long long>(config_.seed),
                  config_.protocol.name().c_str(), nodes_.size(), activeS);
    if (!trace_->exportJsonl(config_.tracePath, meta, registry_.snapshot())) {
      throw std::runtime_error("trace export failed: cannot write " +
                               config_.tracePath);
    }
  }
  return results;
}

std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash>
Simulation::dataEdgeCounts() const {
  std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash> edges;
  for (const auto& node : nodes_) {
    for (const auto& [edge, count] : node->odmrp().dataEdgeCounts()) {
      edges[edge] += count;
    }
  }
  return edges;
}

}  // namespace mesh::harness
