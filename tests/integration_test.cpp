// Cross-module integration tests: full-stack invariants, failure
// injection, and robustness of every parser against corrupted bytes.

#include <gtest/gtest.h>

#include <memory>

#include "mesh/harness/scenario.hpp"
#include "mesh/mac/frames.hpp"
#include "mesh/metrics/probe_messages.hpp"
#include "mesh/odmrp/messages.hpp"
#include "mesh/phy/static_link_model.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;
using harness::GroupSpec;
using harness::ProtocolSpec;
using harness::ScenarioConfig;
using harness::Simulation;

constexpr double kGoodPower = 1e-8;

// Diamond topology with a mutable link model (retained pointer) so tests
// can inject faults mid-run.
struct FaultRig {
  phy::StaticLinkModel* links{nullptr};
  std::unique_ptr<Simulation> sim;

  explicit FaultRig(ProtocolSpec protocol, std::uint64_t seed = 21) {
    ScenarioConfig config;
    config.nodeCount = 4;
    config.protocol = protocol;
    config.seed = seed;
    config.duration = 180_s;
    config.traffic.start = 30_s;
    config.traffic.stop = 170_s;
    config.groups = {GroupSpec{1, {0}, {3}}};
    config.linkModelFactory = [this](sim::Simulator&, Rng&) {
      // Diamond: 0 -> {1, 2} -> 3 (no direct 0-3 link). The relays hear
      // each other, so CSMA serializes their rebroadcasts; without the
      // 1-2 link they would be hidden terminals and collide at node 3 —
      // a real ODMRP pathology, tested separately below.
      auto model = std::make_unique<phy::StaticLinkModel>(4);
      model->setSymmetric(0, 1, kGoodPower);
      model->setSymmetric(0, 2, kGoodPower);
      model->setSymmetric(1, 3, kGoodPower);
      model->setSymmetric(2, 3, kGoodPower);
      model->setSymmetric(1, 2, kGoodPower);
      links = model.get();
      return model;
    };
    sim = std::make_unique<Simulation>(std::move(config));
  }
};

// ------------------------------------------------------------ invariants

TEST(Invariants, AcceptedDataEdgesComeFromSourceOrForwarders) {
  ScenarioConfig config;
  config.nodeCount = 6;
  config.protocol = ProtocolSpec::with(metrics::MetricKind::Spp);
  config.seed = 5;
  config.duration = 120_s;
  config.traffic.start = 30_s;
  config.traffic.stop = 110_s;
  config.groups = {GroupSpec{1, {0}, {4, 5}}};
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(6);
    model->setSymmetric(0, 1, kGoodPower);
    model->setSymmetric(0, 2, kGoodPower);
    model->setSymmetric(1, 3, kGoodPower);
    model->setSymmetric(2, 3, kGoodPower);
    model->setSymmetric(3, 4, kGoodPower);
    model->setSymmetric(3, 5, kGoodPower);
    return model;
  };
  Simulation sim{std::move(config)};
  sim.run();

  // Every directed edge that carried an accepted data packet must start at
  // the source or at a node that acted as a forwarding-group member.
  for (const auto& [edge, count] : sim.dataEdgeCounts()) {
    (void)count;
    const bool fromSource = edge.from == 0;
    const bool fromForwarder =
        sim.node(edge.from).odmrp().stats().dataForwarded > 0;
    EXPECT_TRUE(fromSource || fromForwarder)
        << "edge " << edge.from << "->" << edge.to;
  }
}

TEST(Invariants, DeliveriesNeverExceedExpectedAndDupsAreCounted) {
  FaultRig rig{ProtocolSpec::original()};
  const auto results = rig.sim->run();
  EXPECT_LE(results.packetsDelivered, results.expectedDeliveries);
  // The diamond guarantees duplicate arrivals at node 3; they must be
  // suppressed and counted, not delivered twice.
  EXPECT_EQ(rig.sim->node(3).sink().packetsReceived(),
            results.packetsDelivered);
  EXPECT_GT(rig.sim->node(3).odmrp().stats().dataDuplicates, 0u);
}

TEST(Invariants, DelayRespectsPhysicalLowerBound) {
  FaultRig rig{ProtocolSpec::original()};
  rig.sim->run();
  // Two hops minimum: 2 × (preamble + 556 B at 2 Mbps) ≈ 4.8 ms airtime.
  const double minTwoHopS =
      2.0 * phy::PhyParams{}.frameAirtime(mac::dataFrameBytes(512 + 16)).toSeconds();
  EXPECT_GE(rig.sim->node(3).sink().delayStats().min(), minTwoHopS * 0.99);
}

TEST(Invariants, ProbeBytesScaleWithNeighborCount) {
  // Probe overhead % is per received bytes: more neighbors -> more probe
  // bytes heard, but the ratio to data stays in the same ballpark.
  FaultRig rig{ProtocolSpec::with(metrics::MetricKind::Etx)};
  const auto results = rig.sim->run();
  EXPECT_GT(results.probeBytesReceived, 0u);
  EXPECT_LT(results.probeOverheadPct, 3.0);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjection, ReroutesAfterPathDies) {
  FaultRig rig{ProtocolSpec::with(metrics::MetricKind::Spp)};
  auto& simulator = rig.sim->simulator();
  // At t = 90 s, relay 1's links die completely. The metric variant must
  // shift to relay 2 within a few probe windows and keep delivering.
  simulator.schedule(90_s, [&rig] {
    rig.links->setSymmetricLossRate(0, 1, 1.0);
    rig.links->setSymmetricLossRate(1, 3, 1.0);
  });
  rig.sim->run();

  // Count deliveries in the last 60 s by comparing against a no-fault run.
  const auto& sink = rig.sim->node(3).sink();
  // 140 s of traffic at 20 pkt/s = 2800 expected; allow the re-route gap.
  EXPECT_GT(sink.packetsReceived(), 2400u);
  // Relay 2 must have carried data.
  EXPECT_GT(rig.sim->node(2).odmrp().stats().dataForwarded, 100u);
}

TEST(FaultInjection, TotalPartitionStopsDeliveryGracefully) {
  FaultRig rig{ProtocolSpec::with(metrics::MetricKind::Etx)};
  auto& simulator = rig.sim->simulator();
  simulator.schedule(60_s, [&rig] {
    rig.links->setSymmetricLossRate(0, 1, 1.0);
    rig.links->setSymmetricLossRate(0, 2, 1.0);
  });
  const auto results = rig.sim->run();
  // No crash, no livelock; deliveries happened before the partition and
  // stopped after (30..60 s of traffic ≈ 600 packets, plus FG drain).
  EXPECT_GT(results.packetsDelivered, 400u);
  EXPECT_LT(results.packetsDelivered, 900u);
}

TEST(FaultInjection, HiddenForwardersCollideWithoutCarrierSense) {
  // The same diamond but with relays 1 and 2 hidden from each other: when
  // both are in the forwarding group their rebroadcasts overlap at the
  // member and both die — broadcast data has no RTS/CTS protection
  // (Section 2.1). The CSMA diamond above delivers essentially everything;
  // this one must lose a large fraction.
  ScenarioConfig config;
  config.nodeCount = 4;
  config.protocol = ProtocolSpec::original();
  config.seed = 21;
  config.duration = 180_s;
  config.traffic.start = 30_s;
  config.traffic.stop = 170_s;
  config.groups = {GroupSpec{1, {0}, {3}}};
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(4);
    model->setSymmetric(0, 1, kGoodPower);
    model->setSymmetric(0, 2, kGoodPower);
    model->setSymmetric(1, 3, kGoodPower);
    model->setSymmetric(2, 3, kGoodPower);
    return model;  // no 1-2 link: hidden terminals
  };
  Simulation sim{std::move(config)};
  const auto results = sim.run();
  EXPECT_LT(results.pdr, 0.85);
  EXPECT_GT(results.pdr, 0.2);  // rounds with a single forwarder still work
  EXPECT_GT(sim.node(3).radio().stats().framesCorrupted, 100u);
}

TEST(FaultInjection, SilentSourceProducesNoTraffic) {
  ScenarioConfig config;
  config.nodeCount = 2;
  config.protocol = ProtocolSpec::original();
  config.seed = 1;
  config.duration = 30_s;
  config.groups = {GroupSpec{1, {}, {1}}};  // members but no source
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(2);
    model->setSymmetric(0, 1, kGoodPower);
    return model;
  };
  Simulation sim{std::move(config)};
  const auto results = sim.run();
  EXPECT_EQ(results.packetsSent, 0u);
  EXPECT_EQ(results.packetsDelivered, 0u);
  EXPECT_EQ(sim.node(0).mac().stats().broadcastSent, 0u);
}

// ------------------------------------------------------ parser robustness

class CorruptionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionTest, AllParsersSurviveRandomBytes) {
  Rng rng{GetParam() * 1337 + 11};
  const auto len = static_cast<std::size_t>(rng.uniformInt(0, 1500));
  std::vector<std::uint8_t> junk(len);
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniformInt(std::uint64_t{256}));

  // None of these may crash or assert; parse failures are std::nullopt.
  (void)mac::Frame::parseHeader(junk);
  (void)metrics::ProbeMessage::parse(junk);
  (void)odmrp::peekType(junk);
  (void)odmrp::JoinQuery::parse(junk);
  (void)odmrp::JoinReply::parse(junk);
  std::span<const std::uint8_t> payload;
  (void)odmrp::DataHeader::parse(junk, &payload);
}

TEST_P(CorruptionTest, TruncatedRealMessagesAreRejectedOrParsed) {
  Rng rng{GetParam() * 77 + 3};
  odmrp::JoinQuery query;
  query.group = 1;
  query.source = 2;
  query.seq = 42;
  query.pathCost = 1.5;
  auto bytes = query.serialize();
  bytes.resize(static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(bytes.size()))));
  const auto parsed = odmrp::JoinQuery::parse(bytes);
  if (parsed) {
    // Only possible when enough prefix survived; fields must match.
    EXPECT_EQ(parsed->seq, 42u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomJunk, CorruptionTest,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(CorruptionInjection, OdmrpIgnoresJunkPackets) {
  // Feed corrupted control packets straight into a live node's dispatch:
  // the run must proceed and deliver normally.
  FaultRig rig{ProtocolSpec::original()};
  auto& simulator = rig.sim->simulator();
  Rng rng{99};
  for (int i = 0; i < 50; ++i) {
    simulator.schedule(SimTime::seconds(std::int64_t{40 + i}), [&rig, &rng, i] {
      std::vector<std::uint8_t> junk(48);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniformInt(std::uint64_t{256}));
      auto packet = net::Packet::make(net::PacketKind::Control, 99, junk,
                                      rig.sim->simulator().now());
      rig.sim->node(3).odmrp().onPacket(packet, static_cast<net::NodeId>(i % 4));
    });
  }
  const auto results = rig.sim->run();
  EXPECT_GT(results.pdr, 0.98);
}

// ----------------------------------------------------------- determinism

TEST(EndToEndDeterminism, FullScenarioIsSeedPure) {
  auto fingerprint = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.nodeCount = 15;
    config.areaWidthM = 500.0;
    config.areaHeightM = 500.0;
    config.protocol = ProtocolSpec::with(metrics::MetricKind::Pp);
    config.seed = seed;
    config.duration = 60_s;
    config.traffic.start = 20_s;
    config.traffic.stop = 55_s;
    config.groups = {GroupSpec{1, {0}, {10, 11, 12}}};
    Simulation sim{std::move(config)};
    const auto r = sim.run();
    return std::tuple{r.packetsDelivered, r.probeBytesReceived,
                      r.controlBytesReceived, r.eventsExecuted};
  };
  EXPECT_EQ(fingerprint(31), fingerprint(31));
  EXPECT_NE(fingerprint(31), fingerprint(32));
}

}  // namespace
}  // namespace mesh
