#pragma once
// Reads a trace JSONL export back into memory, plus the small flat-JSON
// field scanners shared with `meshtrace` (which also scans the runner's
// results JSONL). The scanners only handle the flat one-line objects this
// codebase emits — keys are unique per line and values are numbers,
// booleans, or strings without nested objects.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mesh/net/addr.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/trace/trace_event.hpp"

namespace mesh::trace {

// --- flat-JSON scanners ----------------------------------------------------
// Each returns false when `key` is absent or its value has the wrong shape.
bool jsonFindInt(std::string_view line, std::string_view key, std::int64_t& out);
bool jsonFindUint(std::string_view line, std::string_view key, std::uint64_t& out);
bool jsonFindDouble(std::string_view line, std::string_view key, double& out);
bool jsonFindBool(std::string_view line, std::string_view key, bool& out);
bool jsonFindString(std::string_view line, std::string_view key, std::string& out);

// --- parsed trace ----------------------------------------------------------
struct ParsedRecord {
  std::int64_t timeNs{0};
  EventType type{EventType::PktBirth};
  net::NodeId node{0};
  std::uint32_t pid{0};
  net::PacketKind kind{net::PacketKind::Data};
  std::uint32_t bytes{0};
  net::NodeId origin{net::kInvalidNode};
  net::GroupId group{0};
  DropReason reason{DropReason::Unknown};
  // FaultInject/FaultClear records only.
  FaultKind fault{FaultKind::NodeCrash};
  net::NodeId peer{net::kInvalidNode};
  double loss{0.0};  // LossRamp target (inject records)
  double dbm{0.0};   // InterferenceBurst power (inject records)
  // TxStart only: the frame's TxVector code (0 = legacy/basic).
  std::uint8_t rate{0};
  // TxStart/Drop/Deliver on multi-channel runs: collision-domain index.
  // -1 when the record carries no channel (single-channel trace).
  std::int16_t channel{-1};
  // GatewayHandoff only: the domain the frame was captured in (`channel`
  // is the domain it was injected into). -1 otherwise.
  std::int16_t srcChannel{-1};
};

struct ParsedTrace {
  // Meta line.
  std::uint64_t seed{0};
  std::string protocol;
  std::uint64_t nodes{0};
  double activeS{0.0};
  std::vector<ParsedRecord> records;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

struct TraceReadResult {
  std::optional<ParsedTrace> trace;
  std::string error;  // set when trace is empty
};

TraceReadResult readTraceFile(const std::string& path);

// Reconstructs a ready-to-paste `[faults]` config section from the trace's
// FaultInject/FaultClear records: each inject is paired with the first
// later clear of the same (kind, node, peer) to recover its window; an
// unpaired inject is emitted as permanent (no `+<dur_s>`). Returns the
// section text ("[faults]\n" plus one `event = ...` line per fault, lines
// matching the config grammar exactly), or just the header when the trace
// recorded no faults.
std::string faultSectionFromTrace(const ParsedTrace& trace);

}  // namespace mesh::trace
