// Observability subsystem: trace records, counter registry, collector
// export/read round trips, and — the load-bearing checks — trace exports
// that are byte-identical across sweep job counts, and a replay that
// recomputes the paper's headline metrics bit-for-bit equal to the
// harness aggregates.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/harness/experiment.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/runner/result_sink.hpp"
#include "mesh/runner/sweep.hpp"
#include "mesh/trace/counter_registry.hpp"
#include "mesh/trace/replay.hpp"
#include "mesh/trace/trace_collector.hpp"
#include "mesh/trace/trace_event.hpp"
#include "mesh/trace/trace_reader.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;
using harness::BenchOptions;
using harness::ProtocolSpec;
using harness::ScenarioConfig;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------ registry

TEST(CounterRegistry, SumsEverySlotRegisteredUnderOneName) {
  std::uint64_t a = 3, b = 39, other = 7;
  trace::CounterRegistry registry;
  registry.add("phy.frames_corrupted", &a);
  registry.add("phy.frames_corrupted", &b);
  registry.add("mac.enqueued", &other);

  EXPECT_EQ(registry.nameCount(), 2u);
  EXPECT_EQ(registry.value("phy.frames_corrupted"), 42u);
  EXPECT_EQ(registry.value("mac.enqueued"), 7u);
  EXPECT_EQ(registry.value("no.such.counter"), 0u);

  a = 100;  // live slots: value() reads the current counter state
  EXPECT_EQ(registry.value("phy.frames_corrupted"), 139u);

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "mac.enqueued");  // name-sorted
  EXPECT_EQ(snapshot[1].first, "phy.frames_corrupted");
  EXPECT_EQ(snapshot[1].second, 139u);
}

// ------------------------------------------------------------ event strings

TEST(TraceEvent, EventTypeStringsRoundTrip) {
  for (std::uint8_t i = 0; i <= 10; ++i) {
    const auto type = static_cast<trace::EventType>(i);
    trace::EventType back{};
    ASSERT_TRUE(trace::eventTypeFromString(trace::toString(type), back))
        << trace::toString(type);
    EXPECT_EQ(back, type);
  }
  trace::EventType out{};
  EXPECT_FALSE(trace::eventTypeFromString("not_an_event", out));
}

TEST(TraceEvent, DropReasonStringsRoundTripAndNoneIsUnknown) {
  for (std::uint8_t i = 0; i <= 12; ++i) {
    const auto reason = static_cast<trace::DropReason>(i);
    trace::DropReason back{};
    ASSERT_TRUE(trace::dropReasonFromString(trace::toString(reason), back))
        << trace::toString(reason);
    EXPECT_EQ(back, reason);
    if (reason != trace::DropReason::Unknown) {
      EXPECT_STRNE(trace::toString(reason), "unknown");
    }
  }
  trace::DropReason out{};
  EXPECT_FALSE(trace::dropReasonFromString("cosmic_rays", out));
}

// ------------------------------------------------------------ collector

TEST(TraceCollector, ExportRoundTripsThroughTheReader) {
  const std::string path = testing::TempDir() + "trace_roundtrip.jsonl";
  trace::TraceCollector collector;

  const auto pkt = net::Packet::make(net::PacketKind::Data, net::NodeId{3},
                                     std::vector<std::uint8_t>(64, 0xAB),
                                     SimTime::milliseconds(std::int64_t{5}));
  collector.memberJoin(SimTime::zero(), net::NodeId{7}, net::GroupId{1});
  collector.packetBirth(SimTime::milliseconds(std::int64_t{5}), net::NodeId{3}, *pkt,
                        net::GroupId{1});
  collector.rxOk(SimTime::milliseconds(std::int64_t{9}), net::NodeId{7}, *pkt);
  collector.deliver(SimTime::milliseconds(std::int64_t{9}), net::NodeId{7}, *pkt, 64,
                    net::NodeId{3}, net::GroupId{1});
  collector.drop(SimTime::milliseconds(std::int64_t{11}), net::NodeId{4}, pkt.get(),
                 pkt->kind(), static_cast<std::uint32_t>(pkt->sizeBytes()),
                 trace::DropReason::PhyCollision);
  EXPECT_EQ(collector.recordCount(), 5u);

  ASSERT_TRUE(collector.exportJsonl(
      path, R"({"seed":42,"protocol":"ODMRP","nodes":10,"active_s":5})",
      {{"mac.enqueued", 17u}}));

  const trace::TraceReadResult read = trace::readTraceFile(path);
  ASSERT_TRUE(read.trace.has_value()) << read.error;
  EXPECT_EQ(read.trace->seed, 42u);
  EXPECT_EQ(read.trace->protocol, "ODMRP");
  EXPECT_EQ(read.trace->nodes, 10u);
  EXPECT_EQ(read.trace->activeS, 5.0);
  ASSERT_EQ(read.trace->counters.size(), 1u);
  EXPECT_EQ(read.trace->counters[0].first, "mac.enqueued");
  EXPECT_EQ(read.trace->counters[0].second, 17u);

  ASSERT_EQ(read.trace->records.size(), 5u);
  const auto& records = read.trace->records;
  EXPECT_EQ(records[0].type, trace::EventType::MemberJoin);
  EXPECT_EQ(records[0].group, net::GroupId{1});
  EXPECT_EQ(records[1].type, trace::EventType::PktBirth);
  EXPECT_EQ(records[1].pid, 1u);  // dense per-trace pid, not the global uid
  EXPECT_EQ(records[1].origin, net::NodeId{3});
  EXPECT_EQ(records[2].type, trace::EventType::RxOk);
  EXPECT_EQ(records[2].pid, 1u);
  EXPECT_EQ(records[3].type, trace::EventType::Deliver);
  EXPECT_EQ(records[3].timeNs, SimTime::milliseconds(std::int64_t{9}).ns());
  EXPECT_EQ(records[4].type, trace::EventType::Drop);
  EXPECT_EQ(records[4].reason, trace::DropReason::PhyCollision);
  std::remove(path.c_str());
}

TEST(TraceCollector, SpillPreservesRecordOrderAndCleansUp) {
  const std::string path = testing::TempDir() + "trace_spill.jsonl";
  const std::string spill = path + ".spill";
  // Threshold of 4 forces several spill flushes across 25 records.
  trace::TraceCollector collector{spill, 4};
  for (int i = 0; i < 25; ++i) {
    collector.memberJoin(SimTime::microseconds(std::int64_t{i}),
                         static_cast<net::NodeId>(i), net::GroupId{2});
  }
  EXPECT_EQ(collector.recordCount(), 25u);
  ASSERT_TRUE(collector.exportJsonl(
      path, R"({"seed":1,"protocol":"ODMRP","nodes":25,"active_s":1})", {}));

  const trace::TraceReadResult read = trace::readTraceFile(path);
  ASSERT_TRUE(read.trace.has_value()) << read.error;
  ASSERT_EQ(read.trace->records.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(read.trace->records[static_cast<std::size_t>(i)].timeNs,
              SimTime::microseconds(std::int64_t{i}).ns());
    EXPECT_EQ(read.trace->records[static_cast<std::size_t>(i)].node,
              static_cast<net::NodeId>(i));
  }
  // The spill file is consumed by the export.
  std::ifstream leftover{spill};
  EXPECT_FALSE(leftover.good());
  std::remove(path.c_str());
}

TEST(TraceCollector, ExportCreatesMissingParentDirectories) {
  const std::string dir = testing::TempDir() + "trace_mkdir/nested";
  const std::string path = dir + "/out.jsonl";
  trace::TraceCollector collector;
  collector.memberJoin(SimTime::zero(), net::NodeId{0}, net::GroupId{1});
  ASSERT_TRUE(collector.exportJsonl(
      path, R"({"seed":1,"protocol":"ODMRP","nodes":1,"active_s":1})", {}));
  EXPECT_TRUE(trace::readTraceFile(path).trace.has_value());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ replay

// Small but real: 10 nodes, Rayleigh fading (so PHY drops occur), one
// group, a few seconds — the runner_test sweep scenario.
ScenarioConfig smallScenario(std::uint64_t topologySeed) {
  ScenarioConfig config;
  config.nodeCount = 10;
  config.areaWidthM = 300.0;
  config.areaHeightM = 300.0;
  config.rayleighFading = true;
  config.duration = 6_s;
  config.traffic.payloadBytes = 128;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 1_s;
  config.traffic.stop = 6_s;
  Rng groupRng = Rng{topologySeed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 1, 3, 1, groupRng);
  return config;
}

TEST(TraceReplay, RecomputesHarnessMetricsBitForBit) {
  for (const ProtocolSpec& protocol :
       {ProtocolSpec::original(), ProtocolSpec::with(metrics::MetricKind::Etx)}) {
    const std::string path = testing::TempDir() + "trace_replay_" +
                             protocol.name() + ".jsonl";
    ScenarioConfig config = smallScenario(7);
    config.protocol = protocol;
    config.seed = 7;
    config.tracePath = path;

    harness::Simulation sim{config};
    const harness::RunResults results = sim.run();

    const trace::TraceReadResult read = trace::readTraceFile(path);
    ASSERT_TRUE(read.trace.has_value()) << read.error;
    const trace::TraceSummary summary = trace::summarizeTrace(*read.trace);

    // Bit-exact, not approximate: the replay replicates the harness
    // arithmetic expression-for-expression.
    EXPECT_EQ(summary.packetsSent, results.packetsSent);
    EXPECT_EQ(summary.expectedDeliveries, results.expectedDeliveries);
    EXPECT_EQ(summary.packetsDelivered, results.packetsDelivered);
    EXPECT_EQ(summary.pdr, results.pdr);
    EXPECT_EQ(summary.meanDelayS, results.meanDelayS);
    EXPECT_EQ(summary.throughputBps, results.throughputBps);
    EXPECT_EQ(summary.probeBytesReceived, results.probeBytesReceived);
    EXPECT_EQ(summary.dataBytesReceived, results.dataBytesReceived);
    EXPECT_EQ(summary.controlBytesReceived, results.controlBytesReceived);
    EXPECT_EQ(summary.probeOverheadPct, results.probeOverheadPct);

    // A lossy channel produced drops, and every one carries a real reason.
    EXPECT_GT(summary.dropCount, 0u);
    EXPECT_EQ(summary.unknownReasonDrops, 0u);
    EXPECT_EQ(summary.deliversWithoutBirth, 0u);
    std::remove(path.c_str());
  }
}

// ------------------------------------------------------------ sweeps

BenchOptions traceSweepOptions(std::size_t jobs, const std::string& traceDir) {
  BenchOptions options;
  options.topologies = 2;
  options.duration = SimTime::zero();  // keep the scenario's 6 s
  options.baseSeed = 1000;
  options.verbose = false;
  options.jobs = jobs;
  options.traceDir = traceDir;
  return options;
}

TEST(TraceSweep, ExportsAreByteIdenticalAcrossJobCounts) {
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::original(), ProtocolSpec::with(metrics::MetricKind::Spp)};
  const std::string dirSerial = testing::TempDir() + "trace_jobs1";
  const std::string dirParallel = testing::TempDir() + "trace_jobs4";

  const runner::SweepReport serial = runner::runComparisonSweep(
      protocols, smallScenario, traceSweepOptions(1, dirSerial), nullptr);
  const runner::SweepReport parallel = runner::runComparisonSweep(
      protocols, smallScenario, traceSweepOptions(4, dirParallel), nullptr);
  ASSERT_EQ(serial.failures, 0u);
  ASSERT_EQ(parallel.failures, 0u);
  ASSERT_EQ(serial.records.size(), 4u);

  // Same deterministic file name per (topology, protocol, seed) cell, and
  // byte-identical contents: packet ids are normalized per trace, so the
  // nondeterministic global uid order under 4 workers cannot leak in.
  for (const runner::RunRecord& record : serial.records) {
    ASSERT_FALSE(record.tracePath.empty());
    const std::string name =
        record.tracePath.substr(record.tracePath.find_last_of('/') + 1);
    const std::string serialBytes = slurp(dirSerial + "/" + name);
    const std::string parallelBytes = slurp(dirParallel + "/" + name);
    EXPECT_FALSE(serialBytes.empty());
    EXPECT_EQ(serialBytes, parallelBytes) << name;
    std::remove((dirSerial + "/" + name).c_str());
    std::remove((dirParallel + "/" + name).c_str());
  }
}

TEST(TraceSweep, VerifyAgainstResultsCrossChecksEveryRun) {
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::original(), ProtocolSpec::with(metrics::MetricKind::Etx)};
  const std::string dir = testing::TempDir() + "trace_verify";
  const std::string results = dir + "/results.jsonl";

  {
    runner::JsonlResultSink sink{results};
    const runner::SweepReport report = runner::runComparisonSweep(
        protocols, smallScenario, traceSweepOptions(2, dir), &sink);
    ASSERT_EQ(report.failures, 0u);
  }

  const trace::VerifyReport report = trace::verifyAgainstResults(results);
  EXPECT_TRUE(report.error.empty()) << report.error;
  ASSERT_EQ(report.runs.size(), 4u);
  for (const trace::VerifyRunResult& run : report.runs) {
    EXPECT_TRUE(run.ok) << run.tracePath << ": " << run.error;
    EXPECT_TRUE(run.mismatches.empty());
    EXPECT_GT(run.records, 0u);
  }
  EXPECT_TRUE(report.ok());

  // A falsified results row must be caught: perturb one recorded pdr and
  // re-verify. The join still works; the diff fires.
  std::string text = slurp(results);
  const std::size_t at = text.find("\"pdr\":");
  ASSERT_NE(at, std::string::npos);
  text.insert(at + 6, "9");  // prepend a digit: 0.83 -> 90.83
  const std::string tampered = dir + "/tampered.jsonl";
  {
    std::ofstream out{tampered, std::ios::binary};
    out << text;
  }
  const trace::VerifyReport caught = trace::verifyAgainstResults(tampered);
  EXPECT_FALSE(caught.ok());
  std::size_t failing = 0;
  for (const trace::VerifyRunResult& run : caught.runs) {
    if (run.ok) continue;
    ++failing;
    ASSERT_FALSE(run.mismatches.empty());
    EXPECT_EQ(run.mismatches[0].field, "pdr");
  }
  EXPECT_EQ(failing, 1u);
}

}  // namespace
}  // namespace mesh
