#include "mesh/phy/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

namespace mesh::phy {

void SpatialGrid::build(const std::vector<Vec2>& positions, double cellSizeM) {
  MESH_REQUIRE(cellSizeM > 0.0);
  MESH_REQUIRE(!positions.empty());
  cellSizeM_ = cellSizeM;

  Vec2 lo = positions[0];
  Vec2 hi = positions[0];
  for (const Vec2& p : positions) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  origin_ = lo;
  // floor() of the max corner is a valid column/row (a point exactly on
  // the bounding-box edge must land inside), hence the +1.
  cols_ = static_cast<std::size_t>(
              std::floor((hi.x - lo.x) / cellSizeM_)) + 1;
  rows_ = static_cast<std::size_t>(
              std::floor((hi.y - lo.y) / cellSizeM_)) + 1;

  cellOf_.resize(positions.size());
  cellStart_.assign(cols_ * rows_ + 1, 0);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::size_t cell = cellIndexOf(positions[i]);
    cellOf_[i] = static_cast<std::uint32_t>(cell);
    ++cellStart_[cell + 1];
  }
  for (std::size_t c = 1; c < cellStart_.size(); ++c) {
    cellStart_[c] += cellStart_[c - 1];
  }
  // Counting sort, stable in radio-index order: each cell's bucket lists
  // its radios ascending, which downstream sorts rely on being cheap.
  // `next_` is a reused member so periodic rebuilds (mobility refresh)
  // stay allocation-free once buffers hit their high-water marks.
  bucketed_.resize(positions.size());
  next_.assign(cellStart_.begin(), cellStart_.end() - 1);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    bucketed_[next_[cellOf_[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::size_t SpatialGrid::cellIndexOf(Vec2 p) const {
  // Positions outside the bounding box (possible only for query centers,
  // never for built radios) are clamped by the caller; built positions
  // always floor() into range.
  const auto cx = static_cast<std::size_t>(
      std::floor((p.x - origin_.x) / cellSizeM_));
  const auto cy = static_cast<std::size_t>(
      std::floor((p.y - origin_.y) / cellSizeM_));
  MESH_ASSERT(cx < cols_ && cy < rows_);
  return cy * cols_ + cx;
}

void SpatialGrid::candidatesWithin(Vec2 center, double radiusM,
                                   std::vector<std::uint32_t>& out) const {
  MESH_REQUIRE(built());
  MESH_REQUIRE(radiusM >= 0.0);
  // Cell ranges covering [center - r, center + r], clamped to the grid.
  // floor() on the raw offsets (which may be negative / past the edge)
  // before clamping keeps boundary points conservative.
  const auto clampCell = [](double raw, std::size_t count) {
    if (raw < 0.0) return std::size_t{0};
    const double f = std::floor(raw);
    if (f >= static_cast<double>(count)) return count - 1;
    return static_cast<std::size_t>(f);
  };
  const std::size_t cx0 =
      clampCell((center.x - radiusM - origin_.x) / cellSizeM_, cols_);
  const std::size_t cx1 =
      clampCell((center.x + radiusM - origin_.x) / cellSizeM_, cols_);
  const std::size_t cy0 =
      clampCell((center.y - radiusM - origin_.y) / cellSizeM_, rows_);
  const std::size_t cy1 =
      clampCell((center.y + radiusM - origin_.y) / cellSizeM_, rows_);

  const double radius2 = radiusM * radiusM;
  for (std::size_t cy = cy0; cy <= cy1; ++cy) {
    // Closest y of this cell row to the center (0 when the center's own
    // row): cells entirely beyond the radius contribute nothing.
    const double cellLoY = origin_.y + static_cast<double>(cy) * cellSizeM_;
    const double dy = center.y < cellLoY ? cellLoY - center.y
                      : center.y > cellLoY + cellSizeM_
                          ? center.y - (cellLoY + cellSizeM_)
                          : 0.0;
    for (std::size_t cx = cx0; cx <= cx1; ++cx) {
      const double cellLoX = origin_.x + static_cast<double>(cx) * cellSizeM_;
      const double dx = center.x < cellLoX ? cellLoX - center.x
                        : center.x > cellLoX + cellSizeM_
                            ? center.x - (cellLoX + cellSizeM_)
                            : 0.0;
      if (dx * dx + dy * dy > radius2) continue;  // cell fully outside
      const std::size_t cell = cy * cols_ + cx;
      out.insert(out.end(), bucketed_.begin() + cellStart_[cell],
                 bucketed_.begin() + cellStart_[cell + 1]);
    }
  }
}

}  // namespace mesh::phy
