// Spatial channel index guarantees (DESIGN §8.5).
//
// The uniform grid must be invisible except for speed:
//  * SpatialGrid superset contract — candidatesWithin never misses a
//    radio inside the query radius, including positions exactly on cell
//    boundaries, everything collapsed into one cell, and nodes at the
//    world origin/extent.
//  * Channel rows bit-identical grid vs. scan, for static geometry, for
//    Rayleigh-fading delivery statistics, and for a moving node crossing
//    cells mid-run under the frozen-refresh mobility model.
//  * Incremental invalidation (Radio::setFailed -> invalidateRadio)
//    produces exactly the rows a full rebuild would, and repeated
//    invalidations coalesce.
//  * A full 50-node ODMRP simulation writes byte-identical traces with
//    the index on and off.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/harness/scenario.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/phy/link_model.hpp"
#include "mesh/phy/propagation.hpp"
#include "mesh/phy/spatial_grid.hpp"

namespace mesh::phy {
namespace {

using namespace mesh::time_literals;

// ------------------------------------------------ SpatialGrid unit tests

std::vector<std::uint32_t> sortedCandidates(const SpatialGrid& grid,
                                            Vec2 center, double radius) {
  std::vector<std::uint32_t> out;
  grid.candidatesWithin(center, radius, out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SpatialGrid, BoundaryPositionsLandInExactlyOneCell) {
  // Positions exactly on cell boundaries (multiples of the cell size) and
  // on the bounding-box max corner must each be bucketed exactly once.
  std::vector<Vec2> positions = {{0, 0},     {100, 0},  {200, 0},
                                 {100, 100}, {0, 200},  {200, 200},
                                 {150, 50},  {100, 200}};
  SpatialGrid grid;
  grid.build(positions, 100.0);
  EXPECT_EQ(grid.radioCount(), positions.size());

  // A query covering everything returns every radio exactly once.
  const auto all = sortedCandidates(grid, {100, 100}, 1000.0);
  ASSERT_EQ(all.size(), positions.size());
  for (std::uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(SpatialGrid, AllRadiosInOneCellStillEnumerate) {
  std::vector<Vec2> positions(17, Vec2{5.0, 5.0});  // duplicates too
  SpatialGrid grid;
  grid.build(positions, 1000.0);
  EXPECT_EQ(grid.cellCount(), 1u);
  const auto all = sortedCandidates(grid, {5, 5}, 1.0);
  ASSERT_EQ(all.size(), positions.size());
  for (std::uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(SpatialGrid, QueryCenterOutsideTheGridIsValid) {
  std::vector<Vec2> positions = {{0, 0}, {50, 50}, {100, 100}};
  SpatialGrid grid;
  grid.build(positions, 30.0);
  // Center far outside the bounding box: clamping must not crash and the
  // superset must still contain the radios actually within the radius.
  const auto hits = sortedCandidates(grid, {-500, -500}, 710.0);
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 0u) != hits.end());
  // A tiny query nowhere near the grid returns nothing inside the radius
  // once the exact distance filter is applied; the superset may or may
  // not be empty, but must not contain out-of-range cells' radios when
  // the whole grid is beyond the radius.
  std::vector<std::uint32_t> far;
  grid.candidatesWithin({-500, -500}, 10.0, far);
  EXPECT_TRUE(far.empty());
}

TEST(SpatialGrid, RandomizedSupersetProperty) {
  // The load-bearing contract: for random geometry, cell sizes, and query
  // radii, candidatesWithin ⊇ { i : |p_i - c| <= r }.
  Rng rng{2024};
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(
                                  rng.uniformInt(std::uint64_t{200}));
    const double side = 10.0 + rng.uniform(0.0, 5000.0);
    std::vector<Vec2> positions;
    positions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back(
          {rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    SpatialGrid grid;
    const double cell = 1.0 + rng.uniform(0.0, side);
    grid.build(positions, cell);
    for (int q = 0; q < 10; ++q) {
      const Vec2 center{rng.uniform(-side * 0.2, side * 1.2),
                        rng.uniform(-side * 0.2, side * 1.2)};
      const double radius = rng.uniform(0.0, side);
      const auto candidates = sortedCandidates(grid, center, radius);
      const std::set<std::uint32_t> got(candidates.begin(), candidates.end());
      for (std::uint32_t i = 0; i < n; ++i) {
        if (center.distanceTo(positions[i]) <= radius) {
          EXPECT_TRUE(got.count(i))
              << "round " << round << " query " << q << " missed radio " << i;
        }
      }
    }
  }
}

// ------------------------------------- conservative reach-radius contract

TEST(Propagation, MaxRangeIsAConservativeUpperBound) {
  PhyParams params;
  const TwoRayGroundModel model;
  for (const double floorW : {1e-9, 1e-11, 1e-13, 1e-15}) {
    const double reach = maxRangeForMeanPowerM(model, params, floorW);
    ASSERT_TRUE(reach > 0.0);
    // Strictly below the floor just past the returned radius...
    EXPECT_LT(model.rxPowerW(params, {0, 0}, {reach * 1.0001, 0}), floorW);
    // ...and at/above it a touch inside.
    EXPECT_GE(model.rxPowerW(params, {0, 0}, {reach * 0.999, 0}), floorW);
  }
}

// ------------------------------------------------ channel row equivalence

struct Rig {
  sim::Simulator simulator;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Radio>> radios;

  Rig(const std::vector<Vec2>& positions, bool spatial, bool rayleigh = false,
      std::uint64_t seed = 99) {
    PhyParams params;
    std::unique_ptr<FadingModel> fading;
    if (rayleigh) {
      fading = std::make_unique<RayleighFading>();
    } else {
      fading = std::make_unique<NoFading>();
    }
    auto model = std::make_unique<GeometricLinkModel>(
        params, positions, std::make_unique<TwoRayGroundModel>(),
        std::move(fading));
    channel = std::make_unique<Channel>(simulator, std::move(model),
                                        Rng{seed}.fork("channel"));
    channel->setSpatialIndex(spatial);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      radios.push_back(std::make_unique<Radio>(
          simulator, static_cast<net::NodeId>(i), params));
      channel->attach(*radios.back());
    }
  }

  PhyFramePtr frame(std::size_t bytes = 100) {
    return makeFrame(std::vector<std::uint8_t>(bytes, 0xAB), nullptr);
  }
  SimTime airtime(std::size_t bytes = 100) {
    return radios[0]->params().frameAirtime(bytes);
  }
};

std::vector<Vec2> randomPositions(std::size_t n, double side,
                                  std::uint64_t seed) {
  Rng rng{seed};
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return positions;
}

// Deliveries observed per receiver for one broadcast from each radio.
std::vector<std::uint64_t> broadcastDeliveryCounts(Rig& rig) {
  std::vector<std::uint64_t> delivered(rig.radios.size(), 0);
  for (std::size_t i = 0; i < rig.radios.size(); ++i) {
    rig.radios[i]->setReceiveCallback(
        [&delivered, i](const PhyFramePtr&, const RxInfo&) {
          ++delivered[i];
        });
  }
  for (auto& radio : rig.radios) {
    radio->transmit(rig.frame(), rig.airtime());
    rig.simulator.run();
  }
  return delivered;
}

TEST(SpatialChannel, GridAndScanDeliverIdenticallyUnderRayleigh) {
  // Wide sparse area (the regime where the grid actually prunes): every
  // radio broadcasts once; per-receiver delivery counts — which depend on
  // receiver-set contents AND RNG draw order — must match bit-for-bit.
  const auto positions = randomPositions(120, 7000.0, 31);
  Rig gridRig{positions, /*spatial=*/true, /*rayleigh=*/true};
  Rig scanRig{positions, /*spatial=*/false, /*rayleigh=*/true};
  const auto viaGrid = broadcastDeliveryCounts(gridRig);
  const auto viaScan = broadcastDeliveryCounts(scanRig);
  EXPECT_TRUE(gridRig.channel->spatialIndexActive());
  EXPECT_FALSE(scanRig.channel->spatialIndexActive());
  EXPECT_EQ(viaGrid, viaScan);
  EXPECT_EQ(gridRig.channel->stats().deliveriesScheduled,
            scanRig.channel->stats().deliveriesScheduled);
  // The comparison is not vacuous.
  std::uint64_t total = 0;
  for (const auto d : viaGrid) total += d;
  EXPECT_GT(total, 0u);
}

TEST(SpatialChannel, NodeAtWorldOriginAndExtentMatchScan) {
  // Corner nodes exercise the grid's boundary rows/columns.
  std::vector<Vec2> positions = randomPositions(40, 3000.0, 32);
  positions.push_back({0.0, 0.0});
  positions.push_back({3000.0, 3000.0});
  positions.push_back({0.0, 3000.0});
  positions.push_back({3000.0, 0.0});
  Rig gridRig{positions, true, true};
  Rig scanRig{positions, false, true};
  EXPECT_EQ(broadcastDeliveryCounts(gridRig),
            broadcastDeliveryCounts(scanRig));
}

TEST(SpatialChannel, IncrementalInvalidationMatchesFullRebuild) {
  // Fail and recover radios one at a time; after each step the grid
  // channel (incremental row rebuilds) and the scan channel (full
  // rebuilds) must deliver identically.
  const auto positions = randomPositions(60, 5000.0, 33);
  Rig gridRig{positions, true};
  Rig scanRig{positions, false};
  // Prime both caches.
  gridRig.channel->rebuildReachabilityNow();
  scanRig.channel->rebuildReachabilityNow();

  Rng pick{77};
  for (int step = 0; step < 12; ++step) {
    const auto victim =
        static_cast<std::size_t>(pick.uniformInt(std::uint64_t{60}));
    const bool fail = (step % 3) != 2;  // mostly fail, sometimes recover
    gridRig.radios[victim]->setFailed(fail);
    scanRig.radios[victim]->setFailed(fail);
    EXPECT_EQ(broadcastDeliveryCounts(gridRig),
              broadcastDeliveryCounts(scanRig))
        << "diverged after step " << step;
  }
  // The grid side actually took the incremental path.
  EXPECT_GT(gridRig.channel->stats().incrementalRebuilds, 0u);
  EXPECT_GT(gridRig.channel->stats().rowsRebuilt, 0u);
  // Incremental passes rebuild fewer rows than n * passes would.
  EXPECT_LT(gridRig.channel->stats().rowsRebuilt,
            gridRig.channel->stats().incrementalRebuilds * 60);
  // The scan side fell back to full rebuilds.
  EXPECT_GT(scanRig.channel->stats().reachabilityRebuilds, 1u);
}

TEST(SpatialChannel, RepeatInvalidationsCoalesce) {
  const auto positions = randomPositions(30, 2000.0, 34);
  Rig rig{positions, true};
  rig.channel->rebuildReachabilityNow();
  ASSERT_EQ(rig.channel->stats().coalescedInvalidations, 0u);

  // Same radio invalidated twice before the next transmit: the second is
  // coalesced (the rows it would dirty are already pending).
  rig.radios[3]->setFailed(true);
  rig.channel->invalidateRadio(rig.radios[3]->nodeId());
  EXPECT_EQ(rig.channel->stats().coalescedInvalidations, 1u);

  // A full invalidation absorbs the dirty set; further invalidations of
  // any kind coalesce against the pending full rebuild.
  rig.channel->invalidateReachability();
  rig.channel->invalidateReachability();
  rig.channel->invalidateRadio(rig.radios[7]->nodeId());
  EXPECT_EQ(rig.channel->stats().coalescedInvalidations, 3u);

  // The pending rebuild happens once, on the next transmission.
  const auto rebuildsBefore = rig.channel->stats().reachabilityRebuilds;
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_EQ(rig.channel->stats().reachabilityRebuilds, rebuildsBefore + 1);
}

TEST(SpatialChannel, MovingNodeCrossingCellsMatchesScanBitForBit) {
  // Random-waypoint mobility with the periodic frozen-refresh: positions
  // cross grid cells between rebuilds. The grid is rebuilt from live
  // positions at every refresh, so delivery behavior must stay identical
  // to the scan path throughout.
  const std::size_t n = 40;
  const auto run = [&](bool spatial) {
    PhyParams params;
    sim::Simulator simulator;
    RandomWaypointMobility::Params mp;
    mp.areaWidthM = 4000.0;
    mp.areaHeightM = 4000.0;
    mp.minSpeedMps = 10.0;
    mp.maxSpeedMps = 20.0;
    mp.maxPause = 1_s;
    mp.horizon = 30_s;
    auto mobility = std::make_unique<RandomWaypointMobility>(
        n, mp, Rng{55}.fork("mobility"));
    auto model = std::make_unique<MobileGeometricLinkModel>(
        simulator, params, std::move(mobility),
        std::make_unique<TwoRayGroundModel>(),
        std::make_unique<RayleighFading>());
    Channel channel{simulator, std::move(model), Rng{56}.fork("channel")};
    channel.setSpatialIndex(spatial);
    channel.enableReachabilityRefresh(2_s);
    std::vector<std::unique_ptr<Radio>> radios;
    std::vector<std::uint64_t> delivered(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<Radio>(
          simulator, static_cast<net::NodeId>(i), params));
      channel.attach(*radios.back());
      radios.back()->setReceiveCallback(
          [&delivered, i](const PhyFramePtr&, const RxInfo&) {
            ++delivered[i];
          });
    }
    // One broadcast per second per node for 20 s: many refreshes, nodes
    // cross cells between them.
    auto frame = makeFrame(std::vector<std::uint8_t>(100, 0xCD), nullptr);
    const SimTime airtime = params.frameAirtime(100);
    for (int second = 0; second < 20; ++second) {
      for (std::size_t i = 0; i < n; ++i) {
        simulator.schedule(
            SimTime::seconds(std::int64_t{second}) +
                SimTime::milliseconds(static_cast<std::int64_t>(i * 7)) -
                simulator.now(),
            [&radios, i, frame, airtime] {
              if (!radios[i]->isTransmitting()) {
                radios[i]->transmit(frame, airtime);
              }
            });
      }
    }
    simulator.run();
    return std::pair{delivered, channel.stats().reachabilityRebuilds};
  };

  const auto [viaGrid, gridRebuilds] = run(true);
  const auto [viaScan, scanRebuilds] = run(false);
  EXPECT_EQ(viaGrid, viaScan);
  EXPECT_EQ(gridRebuilds, scanRebuilds);
  EXPECT_GT(gridRebuilds, 5u);  // the refresh actually cycled
  std::uint64_t total = 0;
  for (const auto d : viaGrid) total += d;
  EXPECT_GT(total, 0u);
}

// --------------------------------------------- end-to-end byte identity

std::string fileBytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(SpatialChannel, FiftyNodeOdmrpTraceIsByteIdenticalWithIndexOnAndOff) {
  // The tentpole acceptance: the paper-scale scenario produces the exact
  // same packet-lifecycle trace bytes with the spatial index on and off.
  const std::string dir = ::testing::TempDir();
  const auto makeConfig = [&](bool spatial, const std::string& tracePath) {
    harness::ScenarioConfig config = harness::paperSimulationScenario();
    config.seed = 12345;
    config.duration = 25_s;
    config.traffic.start = 5_s;
    config.traffic.stop = 25_s;
    Rng groupRng = Rng{config.seed}.fork("groups");
    config.groups =
        harness::makeRandomGroups(config.nodeCount, 2, 10, 1, groupRng);
    config.protocol = harness::ProtocolSpec::with(metrics::MetricKind::Spp);
    config.spatialIndex = spatial;
    config.tracePath = tracePath;
    return config;
  };

  const std::string traceOn = dir + "/spatial_on.trace.jsonl";
  const std::string traceOff = dir + "/spatial_off.trace.jsonl";
  harness::Simulation simOn{makeConfig(true, traceOn)};
  const harness::RunResults on = simOn.run();
  harness::Simulation simOff{makeConfig(false, traceOff)};
  const harness::RunResults off = simOff.run();

  EXPECT_TRUE(simOn.channel().spatialIndexActive());
  EXPECT_FALSE(simOff.channel().spatialIndexActive());
  EXPECT_EQ(on.packetsSent, off.packetsSent);
  EXPECT_EQ(on.packetsDelivered, off.packetsDelivered);
  EXPECT_EQ(on.eventsExecuted, off.eventsExecuted);
  EXPECT_EQ(on.pdr, off.pdr);
  EXPECT_EQ(on.meanDelayS, off.meanDelayS);

  const std::string bytesOn = fileBytes(traceOn);
  const std::string bytesOff = fileBytes(traceOff);
  ASSERT_FALSE(bytesOn.empty());
  EXPECT_TRUE(bytesOn == bytesOff) << "traces diverged between index on/off";
  EXPECT_GT(on.eventsExecuted, 50000u);
}

}  // namespace
}  // namespace mesh::phy
