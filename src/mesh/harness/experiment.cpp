#include "mesh/harness/experiment.hpp"

#include <cerrno>
#include <cstdlib>

namespace mesh::harness {
namespace {

// Strict positive-integer parse for environment knobs: rejects garbage,
// trailing characters, and out-of-range values instead of silently
// reading 0.
bool parsePositive(const char* text, long& out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v <= 0) return false;
  out = v;
  return true;
}

}  // namespace

BenchOptions BenchOptions::fromEnvironment(std::size_t defaultTopologies,
                                           std::int64_t defaultDurationS) {
  BenchOptions options;
  options.topologies = defaultTopologies;
  options.duration = SimTime::seconds(defaultDurationS);

  const char* full = std::getenv("MESH_BENCH_FULL");
  const bool forceFull = full != nullptr && full[0] == '1';
  if (forceFull) {
    // Paper scale (Section 4.1): 10 topologies × 400 s.
    options.topologies = 10;
    options.duration = SimTime::seconds(std::int64_t{400});
  } else {
    long v = 0;
    if (parsePositive(std::getenv("MESH_BENCH_TOPOLOGIES"), v)) {
      options.topologies = static_cast<std::size_t>(v);
    }
    if (parsePositive(std::getenv("MESH_BENCH_DURATION_S"), v)) {
      options.duration = SimTime::seconds(std::int64_t{v});
    }
  }
  long jobs = 0;
  if (parsePositive(std::getenv("MESH_BENCH_JOBS"), jobs)) {
    options.jobs = static_cast<std::size_t>(jobs);
  }
  if (const char* jsonl = std::getenv("MESH_BENCH_JSONL")) {
    if (jsonl[0] != '\0') options.jsonlPath = jsonl;
  }
  if (const char* trace = std::getenv("MESH_BENCH_TRACE")) {
    if (trace[0] != '\0') options.traceDir = trace;
  }
  return options;
}

std::vector<ProtocolSpec> figure2Protocols(double probeRateScale) {
  return {
      ProtocolSpec::original(),
      ProtocolSpec::with(metrics::MetricKind::Ett, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Etx, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Metx, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Pp, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Spp, probeRateScale),
  };
}

}  // namespace mesh::harness
