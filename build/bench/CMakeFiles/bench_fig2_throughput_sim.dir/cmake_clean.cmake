file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_throughput_sim.dir/bench_fig2_throughput_sim.cpp.o"
  "CMakeFiles/bench_fig2_throughput_sim.dir/bench_fig2_throughput_sim.cpp.o.d"
  "bench_fig2_throughput_sim"
  "bench_fig2_throughput_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_throughput_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
