# Empty compiler generated dependencies file for bench_delta_alpha_sweep.
# This may be replaced when dependencies are built.
