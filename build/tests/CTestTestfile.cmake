# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(phy_test "/root/repo/build/tests/phy_test")
set_tests_properties(phy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mac_test "/root/repo/build/tests/mac_test")
set_tests_properties(mac_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(metrics_test "/root/repo/build/tests/metrics_test")
set_tests_properties(metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(odmrp_test "/root/repo/build/tests/odmrp_test")
set_tests_properties(odmrp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(app_harness_test "/root/repo/build/tests/app_harness_test")
set_tests_properties(app_harness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(testbed_test "/root/repo/build/tests/testbed_test")
set_tests_properties(testbed_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(config_test "/root/repo/build/tests/config_test")
set_tests_properties(config_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mobility_test "/root/repo/build/tests/mobility_test")
set_tests_properties(mobility_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;mesh_test;/root/repo/tests/CMakeLists.txt;0;")
