// Microbenchmarks of the simulator's hot paths (google-benchmark).
//
// These are engineering benches, not paper experiments: they track the
// cost of the primitives the 29-million-event Figure 2 runs are made of.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "mesh/channelplan/channel_plan.hpp"
#include "mesh/common/rng.hpp"
#include "mesh/gateway/gateway_relay.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/mac/frames.hpp"
#include "mesh/mac/mac80211.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/net/pool.hpp"
#include "mesh/metrics/loss_window.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/metrics/neighbor_table.hpp"
#include "mesh/odmrp/messages.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/phy/link_model.hpp"
#include "mesh/phy/propagation.hpp"
#include "mesh/rate/rate_controller.hpp"
#include "mesh/rate/rate_table.hpp"
#include "mesh/runner/snapshot_cache.hpp"
#include "mesh/sim/event_queue.hpp"
#include "mesh/sim/simulator.hpp"

namespace {

using namespace mesh;
using namespace mesh::time_literals;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  Rng rng{1};
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.push(SimTime::nanoseconds(t + rng.uniformInt(std::int64_t{0},
                                                         std::int64_t{1000000})),
                 [] {});
    }
    for (int i = 0; i < 64; ++i) {
      auto popped = queue.pop();
      benchmark::DoNotOptimize(popped.time);
      t = popped.time.ns();
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueuePushPop);

// Timer-restart workload: half of all scheduled events are cancelled
// before firing (MAC backoff and protocol-window timers behave this way).
// Exercises the O(1) generation-tagged tombstone path plus the lazy
// discard of tombstones surfacing at the heap root.
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  sim::EventQueue queue;
  Rng rng{7};
  std::int64_t t = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(64);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 64; ++i) {
      ids.push_back(queue.push(
          SimTime::nanoseconds(t + rng.uniformInt(std::int64_t{0},
                                                  std::int64_t{1000000})),
          [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) queue.cancel(ids[i]);
    while (!queue.empty()) {
      auto popped = queue.pop();
      benchmark::DoNotOptimize(popped.time);
      t = popped.time.ns();
    }
  }
  state.SetItemsProcessed(state.iterations() * 96);  // 64 pushes + 32 pops
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule(SimTime::microseconds(std::int64_t{i}), [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_RngUniform(benchmark::State& state) {
  Rng rng{2};
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_RayleighGain(benchmark::State& state) {
  Rng rng{3};
  phy::RayleighFading fading;
  for (auto _ : state) benchmark::DoNotOptimize(fading.powerGain(rng));
}
BENCHMARK(BM_RayleighGain);

void BM_TwoRayPropagation(benchmark::State& state) {
  phy::PhyParams params;
  phy::TwoRayGroundModel model;
  double d = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.rxPowerW(params, {0, 0}, {d, 0}));
    d = d < 1000.0 ? d + 1.0 : 10.0;
  }
}
BENCHMARK(BM_TwoRayPropagation);

void BM_MetricAccumulate(benchmark::State& state) {
  const auto metric =
      metrics::makeMetric(static_cast<metrics::MetricKind>(state.range(0)));
  metrics::LinkMeasurement m;
  m.df = 0.7;
  m.hasDelay = true;
  m.delayS = 0.005;
  m.hasBandwidth = true;
  m.bandwidthBps = 1.5e6;
  for (auto _ : state) {
    double cost = metric->initialPathCost();
    for (int hop = 0; hop < 8; ++hop) {
      cost = metric->accumulate(cost, metric->linkCost(m));
    }
    benchmark::DoNotOptimize(cost);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MetricAccumulate)
    ->Arg(static_cast<int>(metrics::MetricKind::Etx))
    ->Arg(static_cast<int>(metrics::MetricKind::Metx))
    ->Arg(static_cast<int>(metrics::MetricKind::Spp))
    ->Arg(static_cast<int>(metrics::MetricKind::Pp));

void BM_LossWindowUpdateAndQuery(benchmark::State& state) {
  metrics::LossWindow window{10};
  std::uint32_t seq = 0;
  SimTime t = SimTime::zero();
  for (auto _ : state) {
    window.onProbe(seq++, t);
    t += 5_s;
    benchmark::DoNotOptimize(window.df(t, 5_s));
  }
}
BENCHMARK(BM_LossWindowUpdateAndQuery);

void BM_NeighborTableProbe(benchmark::State& state) {
  metrics::NeighborTable table{5_s};
  std::uint32_t seq = 0;
  SimTime t = SimTime::zero();
  for (auto _ : state) {
    metrics::ProbeMessage probe;
    probe.type = metrics::ProbeType::Single;
    probe.sender = static_cast<net::NodeId>(seq % 30);
    probe.seq = seq / 30;
    table.onProbe(probe, t);
    ++seq;
    t += 100_ms;
    benchmark::DoNotOptimize(
        table.measure(static_cast<net::NodeId>(seq % 30), t).df);
  }
}
BENCHMARK(BM_NeighborTableProbe);

void BM_TxVectorAirtime(benchmark::State& state) {
  // Per-frame rate-aware airtime lookup: the cost Mac80211::airtime adds
  // over the legacy PhyParams path on every multi-rate transmission.
  const rate::RateTable table =
      rate::RateTable::forSet(rate::RateSetKind::DsssOfdm);
  std::uint8_t code = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.frameAirtime(540, code));
    code = static_cast<std::uint8_t>(code % table.size() + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxVectorAirtime);

void BM_MinstrelDecision(benchmark::State& state) {
  // Worst-case Minstrel broadcast pick: every feedback dirties the cache,
  // so each dataVector() call recomputes the bitrate × coverage-quantile
  // argmax over a warm 10-neighbor × full-ladder state.
  const rate::RateTable table =
      rate::RateTable::forSet(rate::RateSetKind::DsssOfdm);
  rate::MinstrelController minstrel{table};
  Rng rng{42};
  for (net::NodeId n = 1; n <= 10; ++n) {
    for (std::uint8_t c = 1; c <= table.size(); ++c) {
      minstrel.onRateFeedback(n, c, rng.uniform());
    }
  }
  net::NodeId neighbor = 1;
  std::uint8_t code = 1;
  for (auto _ : state) {
    minstrel.onRateFeedback(neighbor, code, 0.9);
    benchmark::DoNotOptimize(minstrel.dataVector().code);
    neighbor = static_cast<net::NodeId>(neighbor % 10 + 1);
    code = static_cast<std::uint8_t>(code % table.size() + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinstrelDecision);

void BM_JoinQuerySerializeParse(benchmark::State& state) {
  odmrp::JoinQuery query;
  query.group = 1;
  query.source = 10;
  query.seq = 1234;
  query.hopCount = 3;
  query.prevHop = 7;
  query.pathCost = 0.456;
  for (auto _ : state) {
    const auto bytes = query.serialize();
    benchmark::DoNotOptimize(odmrp::JoinQuery::parse(bytes));
  }
}
BENCHMARK(BM_JoinQuerySerializeParse);

// The pooled serialization path every data transmission pays (DESIGN §12):
// build the ODMRP data packet straight into its slab slot (exact-size
// writer, no temporary vector), serialize the MAC header into a stack
// buffer, and wrap both in a pooled PhyFrame. What the old
// make_shared + vector-building Frame::serialize path cost per frame is
// now this row.
void BM_FrameSerialize(benchmark::State& state) {
  odmrp::DataHeader h;
  h.group = 1;
  h.source = 3;
  std::uint32_t seq = 0;
  for (auto _ : state) {
    h.seq = ++seq;
    auto payload = net::Packet::build(
        net::PacketKind::Data, 3, odmrp::kDataHeaderBytes + 512,
        SimTime::zero(), 0, [&h](net::ByteWriter& w) {
          h.writeTo(w);
          w.zeros(512);
        });
    mac::Frame f;
    f.header.type = mac::FrameType::Data;
    f.header.src = 3;
    f.header.seq = static_cast<std::uint16_t>(seq);
    f.payload = payload;
    std::uint8_t buf[phy::PhyFrame::kMaxHeaderBytes];
    const std::size_t headerLen = f.serializeHeader(buf);
    auto frame = phy::makeFrame(std::span<const std::uint8_t>{buf, headerLen},
                                f.sizeBytes(), std::move(payload));
    benchmark::DoNotOptimize(frame->sizeBytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameSerialize);

// End-to-end pooled frame round trip: node 0's MAC broadcasts an ODMRP
// data packet, the channel fans it out, every receiver's MAC delivers the
// payload, and the rx callback decodes the header through the packet's
// view cache (one parse per frame, not per receiver). hotpath_test pins
// this path's zero-alloc property; this row tracks its cost.
void BM_PacketRoundTrip(benchmark::State& state) {
  sim::Simulator simulator;
  phy::PhyParams params;
  const int n = 12;
  std::vector<Vec2> positions;
  Rng place{17};
  for (int i = 0; i < n; ++i) {
    positions.push_back({place.uniform(0.0, 300.0), place.uniform(0.0, 300.0)});
  }
  auto model = std::make_unique<phy::GeometricLinkModel>(
      params, positions, std::make_unique<phy::TwoRayGroundModel>(),
      std::make_unique<phy::RayleighFading>());
  phy::Channel channel{simulator, std::move(model), Rng{18}};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::Mac80211>> macs;
  std::uint64_t decoded = 0;
  for (int i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        simulator, static_cast<net::NodeId>(i), params));
    channel.attach(*radios.back());
    macs.push_back(std::make_unique<mac::Mac80211>(
        simulator, *radios.back(), mac::MacParams{},
        Rng{19}.fork("mac", static_cast<std::uint64_t>(i))));
    macs.back()->setReceiveCallback(
        [&decoded](const net::PacketPtr& p, net::NodeId) {
          if (odmrp::DataHeader::decode(*p) != nullptr) ++decoded;
        });
  }
  odmrp::DataHeader h;
  h.group = 1;
  h.source = 0;
  std::uint32_t seq = 0;
  for (auto _ : state) {
    h.seq = ++seq;
    auto p = net::Packet::build(
        net::PacketKind::Data, 0, odmrp::kDataHeaderBytes + 512,
        simulator.now(), 0, [&h](net::ByteWriter& w) {
          h.writeTo(w);
          w.zeros(512);
        });
    macs[0]->send(std::move(p), net::kBroadcastNode);
    simulator.run(simulator.now() + 10_ms);  // drain the exchange
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decoded));
}
BENCHMARK(BM_PacketRoundTrip);

void BM_ChannelBroadcastFanout(benchmark::State& state) {
  // 50 radios in the paper's area; one broadcast per iteration.
  sim::Simulator simulator;
  phy::PhyParams params;
  std::vector<Vec2> positions;
  Rng place{5};
  for (int i = 0; i < 50; ++i) {
    positions.push_back({place.uniform(0, 1000), place.uniform(0, 1000)});
  }
  auto model = std::make_unique<phy::GeometricLinkModel>(
      params, positions, std::make_unique<phy::TwoRayGroundModel>(),
      std::make_unique<phy::RayleighFading>());
  phy::Channel channel{simulator, std::move(model), Rng{6}};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (int i = 0; i < 50; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        simulator, static_cast<net::NodeId>(i), params));
    channel.attach(*radios.back());
  }
  auto frame = phy::makeFrame(std::vector<std::uint8_t>(540, 0), nullptr);
  const SimTime airtime = params.frameAirtime(540);
  std::size_t tx = 0;
  for (auto _ : state) {
    radios[tx % 50]->transmit(frame, airtime);
    ++tx;
    simulator.run();  // drain all arrivals
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelBroadcastFanout);

// The per-transmission channel loop in isolation: Channel::transmit over
// the precomputed link cache (fading draw + delivery scheduling), then a
// drain of the scheduled arrivals. Tracks the zero-virtual-call hot path
// that every simulated frame funnels through.
void BM_ChannelTransmit(benchmark::State& state) {
  sim::Simulator simulator;
  phy::PhyParams params;
  std::vector<Vec2> positions;
  Rng place{8};
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    positions.push_back({place.uniform(0, 1500), place.uniform(0, 1500)});
  }
  auto model = std::make_unique<phy::GeometricLinkModel>(
      params, positions, std::make_unique<phy::TwoRayGroundModel>(),
      std::make_unique<phy::RayleighFading>());
  phy::Channel channel{simulator, std::move(model), Rng{9}};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (int i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        simulator, static_cast<net::NodeId>(i), params));
    channel.attach(*radios.back());
  }
  auto frame = phy::makeFrame(std::vector<std::uint8_t>(540, 0), nullptr);
  const SimTime airtime = params.frameAirtime(540);
  std::size_t tx = 0;
  for (auto _ : state) {
    channel.transmit(*radios[tx % n], frame, airtime);
    ++tx;
    simulator.run();  // drain the scheduled arrivals
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(channel.stats().deliveriesScheduled));
}
BENCHMARK(BM_ChannelTransmit);

// Shared rig for the reachability-build and fan-out benches: n radios
// placed uniformly at a given density, spatial index forced on or off.
// (If MESH_SPATIAL_INDEX is set in the environment it overrides the knob,
// so clear it before trusting a Grid-vs-Scan comparison.)
struct ReachabilityRig {
  sim::Simulator simulator;
  phy::PhyParams params;
  std::unique_ptr<phy::Channel> channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;

  ReachabilityRig(std::int64_t n, double nodesPerKm2, bool spatial) {
    const double side =
        1000.0 * std::sqrt(static_cast<double>(n) / nodesPerKm2);
    std::vector<Vec2> positions;
    Rng place{11};
    for (std::int64_t i = 0; i < n; ++i) {
      positions.push_back(
          {place.uniform(0.0, side), place.uniform(0.0, side)});
    }
    auto model = std::make_unique<phy::GeometricLinkModel>(
        params, positions, std::make_unique<phy::TwoRayGroundModel>(),
        std::make_unique<phy::RayleighFading>());
    channel =
        std::make_unique<phy::Channel>(simulator, std::move(model), Rng{12});
    channel->setSpatialIndex(spatial);
    for (std::int64_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(
          simulator, static_cast<net::NodeId>(i), params));
      channel->attach(*radios.back());
    }
  }
};

// Full reachability rebuild cost, grid vs. exhaustive pair scan, across
// the 50 -> 1000 node sweep. Density is fixed well below the paper's
// 50/km² (2/km²: the ~1.3 km reach disk then holds ~10 nodes) so the
// per-row candidate count k stays small and constant while n grows — the
// regime where O(n·k) visibly separates from O(n²). At the paper's own
// density the reach disk covers most of a 50-node area and the two paths
// converge; the win there comes from scale (bench_scale), not per-row
// sparsity.
void BM_BuildReachabilityGrid(benchmark::State& state) {
  ReachabilityRig rig{state.range(0), 2.0, /*spatial=*/true};
  for (auto _ : state) {
    rig.channel->rebuildReachabilityNow();
    benchmark::DoNotOptimize(rig.channel->stats().reachabilityRebuilds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildReachabilityGrid)->Arg(50)->Arg(200)->Arg(500)->Arg(1000);

void BM_BuildReachabilityScan(benchmark::State& state) {
  ReachabilityRig rig{state.range(0), 2.0, /*spatial=*/false};
  for (auto _ : state) {
    rig.channel->rebuildReachabilityNow();
    benchmark::DoNotOptimize(rig.channel->stats().reachabilityRebuilds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildReachabilityScan)->Arg(50)->Arg(200)->Arg(500)->Arg(1000);

// Per-transmission cost at the paper's density as the mesh scales. The
// cached receiver row holds the nodes inside one ~1.3 km reach disk —
// about 270 at 50 nodes/km² — so per-transmit cost grows until the area
// outgrows the disk (n ≈ 300) and must stay flat from there to 1000
// nodes: O(k) in disk occupancy, not O(n) in mesh size.
void BM_TransmitFanout(benchmark::State& state) {
  ReachabilityRig rig{state.range(0), 50.0, /*spatial=*/true};
  const auto n = static_cast<std::size_t>(state.range(0));
  auto frame = phy::makeFrame(std::vector<std::uint8_t>(540, 0), nullptr);
  const SimTime airtime = rig.params.frameAirtime(540);
  std::size_t tx = 0;
  for (auto _ : state) {
    rig.channel->transmit(*rig.radios[tx % n], frame, airtime);
    ++tx;
    rig.simulator.run();  // drain the scheduled arrivals
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(rig.channel->stats().deliveriesScheduled));
}
BENCHMARK(BM_TransmitFanout)->Arg(50)->Arg(200)->Arg(500)->Arg(1000);

// Frame dispatch across orthogonal collision domains. 150 radios at the
// paper's density are striped over `channels` domains (one Channel +
// Simulator each); every iteration transmits one frame per domain and
// drains the arrivals. At channels=1 this is BM_ChannelTransmit plus the
// plan overhead; at channels=3 each frame fans out to a third of the
// receivers, so per-frame cost must drop — that gap is the mechanism the
// multi-channel scaling win (bench_scale) is made of.
void BM_MultiChannelTransmit(benchmark::State& state) {
  const auto channelCount = static_cast<std::size_t>(state.range(0));
  const int n = 150;
  phy::PhyParams params;
  const double side = 1000.0 * std::sqrt(n / 50.0);
  std::vector<Vec2> positions;
  Rng place{13};
  for (int i = 0; i < n; ++i) {
    positions.push_back({place.uniform(0.0, side), place.uniform(0.0, side)});
  }
  const channelplan::ChannelPlan plan = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::Static, channelCount, positions, 250.0);

  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<std::unique_ptr<phy::Channel>> channels;
  std::vector<std::vector<std::unique_ptr<phy::Radio>>> radios(channelCount);
  for (std::size_t d = 0; d < channelCount; ++d) {
    sims.push_back(std::make_unique<sim::Simulator>());
    auto model = std::make_unique<phy::GeometricLinkModel>(
        params, positions, std::make_unique<phy::TwoRayGroundModel>(),
        std::make_unique<phy::RayleighFading>());
    channels.push_back(std::make_unique<phy::Channel>(
        *sims[d], std::move(model), Rng{14}.fork("channel", d)));
    for (const net::NodeId id : plan.domainNodes(d)) {
      radios[d].push_back(
          std::make_unique<phy::Radio>(*sims[d], id, params));
      channels[d]->attach(*radios[d].back());
    }
  }
  auto frame = phy::makeFrame(std::vector<std::uint8_t>(540, 0), nullptr);
  const SimTime airtime = params.frameAirtime(540);
  std::size_t tx = 0;
  for (auto _ : state) {
    for (std::size_t d = 0; d < channelCount; ++d) {
      channels[d]->transmit(*radios[d][tx % radios[d].size()], frame,
                            airtime);
      sims[d]->run();  // drain the scheduled arrivals
    }
    ++tx;
  }
  std::uint64_t delivered = 0;
  for (const auto& channel : channels) {
    delivered += channel->stats().deliveriesScheduled;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_MultiChannelTransmit)->Arg(1)->Arg(3);

// Full scaled-topology construction at the sizes the multi-channel
// subsystem exists for: grid placement (O(n), no rejection loop), a
// 3-channel plan, and per-domain channel/node wiring. This is the
// bench_scale setup path under the perf-smoke gate — a reintroduced
// O(n²) placement or plan pass shows up here long before anyone runs a
// 5000-node sweep by hand.
void BM_ScaleTopologyBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::ScenarioConfig config = harness::scaledSimulationScenario(n);
    config.seed = 15;
    config.channels = 3;
    Rng groupRng = Rng{config.seed}.fork("groups");
    config.groups = harness::makeStripedGroups(n, 3, 1, 10, 1, groupRng);
    harness::Simulation sim{config};
    benchmark::DoNotOptimize(sim.plan()->maxSameChannelNeighbors);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScaleTopologyBuild)->Arg(2000)->Arg(5000);

// Snapshot adoption (DESIGN §14): the construction cost a sweep run pays
// when the topology world is already cached. Same 3-channel scaled
// scenarios as BM_ScaleTopologyBuild, but the placement, channel plan and
// every reachability build are spliced in from a frozen snapshot — the
// remaining cost is node/protocol wiring. The gap between this row and
// BM_ScaleTopologyBuild at the same n is the per-run win the sweep-level
// cache converts into wall-clock.
void BM_SnapshotAdopt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::ScenarioConfig config = harness::scaledSimulationScenario(n);
  config.seed = 15;
  config.channels = 3;
  Rng groupRng = Rng{config.seed}.fork("groups");
  config.groups = harness::makeStripedGroups(n, 3, 1, 10, 1, groupRng);
  harness::TopologySnapshotPtr snapshot;
  {
    harness::Simulation builder{config};
    snapshot = builder.captureSnapshot();
  }
  for (auto _ : state) {
    harness::Simulation sim{config, snapshot};
    benchmark::DoNotOptimize(sim.adoptedSnapshot());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotAdopt)->Arg(500)->Arg(2000);

// The sweep's setup path end to end through the SnapshotCache, cold vs
// warm: cold pays the full world build plus the freeze/publish; warm is
// acquire + adopt. One 500-node single-channel world per iteration (the
// cache is re-created each time on the cold row so every iteration truly
// builds).
void BM_SweepSetupCold(benchmark::State& state) {
  harness::ScenarioConfig config = harness::scaledSimulationScenario(500);
  config.seed = 16;
  Rng groupRng = Rng{config.seed}.fork("groups");
  config.groups = harness::makeRandomGroups(500, 2, 10, 1, groupRng);
  const std::string key = runner::SnapshotCache::keyFor(config);
  for (auto _ : state) {
    runner::SnapshotCache cache;
    bool shouldBuild = false;
    cache.acquire(key, shouldBuild);
    harness::Simulation sim{config};
    cache.publish(key, sim.captureSnapshot());
    benchmark::DoNotOptimize(cache.stats().built);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweepSetupCold);

void BM_SweepSetupWarm(benchmark::State& state) {
  harness::ScenarioConfig config = harness::scaledSimulationScenario(500);
  config.seed = 16;
  Rng groupRng = Rng{config.seed}.fork("groups");
  config.groups = harness::makeRandomGroups(500, 2, 10, 1, groupRng);
  const std::string key = runner::SnapshotCache::keyFor(config);
  runner::SnapshotCache cache;
  bool shouldBuild = false;
  cache.acquire(key, shouldBuild);
  {
    harness::Simulation builder{config};
    cache.publish(key, builder.captureSnapshot());
  }
  for (auto _ : state) {
    harness::TopologySnapshotPtr snapshot = cache.acquire(key, shouldBuild);
    harness::Simulation sim{config, std::move(snapshot)};
    benchmark::DoNotOptimize(sim.adoptedSnapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweepSetupWarm);

// The cross-domain handoff path (DESIGN §13): stage one epoch's worth of
// outbound broadcasts at a gateway, then drain the barrier — merge-sort
// the lanes, rebuild every frame into the destination domain's pool, hand
// it to the port MAC, and drain the foreign domain's transmission. This
// is the per-frame cost a spanning multicast group pays on top of the
// intra-domain forwarding that BM_PacketRoundTrip tracks.
void BM_GatewayHandoff(benchmark::State& state) {
  const std::size_t domains = 2;
  phy::PhyParams params;
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<std::unique_ptr<phy::Channel>> channels;
  std::vector<std::unique_ptr<net::PacketPool>> pools;
  std::vector<std::vector<std::unique_ptr<phy::Radio>>> radios(domains);
  // One position per node id across both domains (the link model indexes
  // positions by id, like the harness' shared node roster).
  Rng place{21};
  std::vector<Vec2> positions;
  for (std::size_t i = 0; i < domains * 10; ++i) {
    positions.push_back({place.uniform(0.0, 400.0), place.uniform(0.0, 400.0)});
  }
  for (std::size_t d = 0; d < domains; ++d) {
    sims.push_back(std::make_unique<sim::Simulator>());
    pools.push_back(std::make_unique<net::PacketPool>());
    auto model = std::make_unique<phy::GeometricLinkModel>(
        params, positions, std::make_unique<phy::TwoRayGroundModel>(),
        std::make_unique<phy::RayleighFading>());
    channels.push_back(std::make_unique<phy::Channel>(
        *sims[d], std::move(model), Rng{22}.fork("channel", d)));
    // Disjoint id ranges per domain, as a channel plan would assign them —
    // the port radio reuses the gateway's id on the foreign channel.
    for (int i = 0; i < 10; ++i) {
      radios[d].push_back(std::make_unique<phy::Radio>(
          *sims[d], static_cast<net::NodeId>(d * 10 + i), params));
      channels[d]->attach(*radios[d].back());
    }
  }
  std::vector<gateway::GatewayRelay::DomainContext> contexts;
  for (std::size_t d = 0; d < domains; ++d) {
    contexts.push_back(gateway::GatewayRelay::DomainContext{
        sims[d].get(), channels[d].get(), pools[d].get(), nullptr});
  }
  gateway::GatewayRelay relay{std::move(contexts)};
  std::uint64_t inbound = 0;
  const std::size_t gw = relay.addGateway(
      0, /*home=*/0, params, mac::MacParams{}, Rng{23},
      [&inbound](const net::PacketPtr&, net::NodeId) { ++inbound; });

  net::PacketPool* prev = net::PacketPool::setCurrent(pools[0].get());
  auto packet = net::Packet::make(net::PacketKind::Data, 0,
                                  std::vector<std::uint8_t>(540, 0), 0_s);
  net::PacketPool::setCurrent(prev);
  constexpr int kPerEpoch = 32;
  for (auto _ : state) {
    for (int i = 0; i < kPerEpoch; ++i) relay.captureOutbound(gw, packet);
    relay.drainAtBarrier();
    for (auto& sim : sims) sim->run();  // drain the foreign transmissions
  }
  benchmark::DoNotOptimize(inbound);
  state.SetItemsProcessed(state.iterations() * kPerEpoch);
}
BENCHMARK(BM_GatewayHandoff);

// Carrier-sense query cost with N concurrent arrivals: the MAC polls
// mediumBusy() far more often than the arrival set changes, so this must
// be O(1) on the running in-band power sum, not O(arrivals).
void BM_RadioMediumBusy(benchmark::State& state) {
  sim::Simulator simulator;
  phy::PhyParams params;
  phy::Radio radio{simulator, 0, params};
  auto frame = phy::makeFrame(std::vector<std::uint8_t>(64, 0), nullptr);
  // Park N weak (non-locking) arrivals on the radio; their end events are
  // scheduled but never run inside the timed loop.
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    radio.beginArrival(frame, static_cast<net::NodeId>(i + 1),
                       params.rxThresholdW * 0.1, SimTime::seconds(std::int64_t{3600}));
  }
  for (auto _ : state) benchmark::DoNotOptimize(radio.mediumBusy());
}
BENCHMARK(BM_RadioMediumBusy)->Arg(1)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
