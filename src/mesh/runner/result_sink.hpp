#pragma once
// Structured result sinks for the experiment runner.
//
// A ResultSink receives one RunRecord per completed simulation run. Sinks
// must be thread-safe: under a parallel sweep, workers call write() from
// many threads as runs finish (so a sink file records completion order —
// every record carries its topology/protocol indices for re-sorting).
//
// JsonlResultSink emits one self-contained JSON object per line — the
// bench "trajectory" format: cheap to append, trivially greppable, and
// streamable into pandas/jq while a long sweep is still running.

#include <cstdio>
#include <mutex>
#include <string>

#include "mesh/runner/run_plan.hpp"

namespace mesh::runner {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  // Must be safe to call concurrently from worker threads.
  virtual void write(const RunRecord& record) = 0;
};

class JsonlResultSink final : public ResultSink {
 public:
  // Truncates `path`. Throws std::runtime_error when the file can't open.
  explicit JsonlResultSink(const std::string& path);
  ~JsonlResultSink() override;

  JsonlResultSink(const JsonlResultSink&) = delete;
  JsonlResultSink& operator=(const JsonlResultSink&) = delete;

  void write(const RunRecord& record) override;

  // Raw JSON fields (e.g. `"failure_rate":0.5`) spliced into every
  // subsequent record — sweeps over an external parameter tag their rows
  // without reopening the sink (the constructor truncates). Not
  // thread-safe against concurrent write(); set it between sweeps.
  void setExtra(std::string rawJsonFields) { extra_ = std::move(rawJsonFields); }

  // The one-line JSON encoding of a record (no trailing newline).
  static std::string toJson(const RunRecord& record);

 private:
  std::mutex mutex_;
  std::string extra_;
  std::FILE* file_{nullptr};
};

}  // namespace mesh::runner
