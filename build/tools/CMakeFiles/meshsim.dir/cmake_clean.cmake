file(REMOVE_RECURSE
  "CMakeFiles/meshsim.dir/meshsim.cpp.o"
  "CMakeFiles/meshsim.dir/meshsim.cpp.o.d"
  "meshsim"
  "meshsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
