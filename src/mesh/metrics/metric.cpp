#include "mesh/metrics/metric.hpp"

#include <limits>

#include "mesh/common/assert.hpp"

namespace mesh::metrics {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using namespace mesh::time_literals;

class HopMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::Hop; }
  double initialPathCost() const override { return 0.0; }
  double linkCost(const LinkMeasurement&) const override { return 1.0; }
  double accumulate(double path, double link) const override { return path + link; }
  ProbeConfig probeConfig() const override { return {ProbeMode::None, SimTime::zero(), 0}; }
};

class EtxMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::Etx; }
  double initialPathCost() const override { return 0.0; }
  double linkCost(const LinkMeasurement& m) const override {
    // Forward direction only: ETX = 1/df (Section 2.2). No reverse term.
    return m.df > 0.0 ? 1.0 / m.df : kInf;
  }
  double accumulate(double path, double link) const override { return path + link; }
  ProbeConfig probeConfig() const override { return {ProbeMode::Single, 5_s, 10}; }
};

class EttMetric final : public Metric {
 public:
  explicit EttMetric(std::size_t nominalPayloadBytes)
      : nominalBits_{static_cast<double>(nominalPayloadBytes) * 8.0} {}

  MetricKind kind() const override { return MetricKind::Ett; }
  double initialPathCost() const override { return 0.0; }
  double linkCost(const LinkMeasurement& m) const override {
    // ETT = ETX · S/B: expected airtime to get one data packet across.
    // ETX comes from the pair's small probes; B from the pair dispersion.
    if (m.df <= 0.0 || !m.hasBandwidth || m.bandwidthBps <= 0.0) return kInf;
    return (1.0 / m.df) * (nominalBits_ / m.bandwidthBps);
  }
  double accumulate(double path, double link) const override { return path + link; }
  ProbeConfig probeConfig() const override { return {ProbeMode::Pair, 10_s, 10}; }

 private:
  double nominalBits_;
};

class PpMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::Pp; }
  double initialPathCost() const override { return 0.0; }
  double linkCost(const LinkMeasurement& m) const override {
    // The EWMA'd pair delay, including the multiplicative 20% penalties
    // already applied by the estimator on probe loss. On a very lossy link
    // the repeated penalty makes this blow up exponentially over time —
    // the aggressiveness Sections 4.2.1/5.3 attribute PP's wins to.
    return m.hasDelay ? m.delayS : kInf;
  }
  double accumulate(double path, double link) const override { return path + link; }
  ProbeConfig probeConfig() const override { return {ProbeMode::Pair, 10_s, 10}; }
};

class MetxMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::Metx; }
  double initialPathCost() const override { return 0.0; }
  double linkCost(const LinkMeasurement& m) const override { return m.df; }
  double accumulate(double path, double link) const override {
    // Eq. (1) with W = 1: every failure on this link forces the *entire*
    // upstream path to deliver again, so the upstream expectation divides
    // by this link's success probability too.
    return link > 0.0 ? (path + 1.0) / link : kInf;
  }
  ProbeConfig probeConfig() const override { return {ProbeMode::Single, 5_s, 10}; }
};

class SppMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::Spp; }
  double initialPathCost() const override { return 1.0; }
  double linkCost(const LinkMeasurement& m) const override { return m.df; }
  double accumulate(double path, double link) const override { return path * link; }
  // Probability: higher is better — the one maximize-direction metric.
  bool better(double a, double b) const override { return a > b; }
  double worstPathCost() const override { return -1.0; }  // below any probability
  ProbeConfig probeConfig() const override { return {ProbeMode::Single, 5_s, 10}; }
};

class BiEtxMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::BiEtx; }
  double initialPathCost() const override { return 0.0; }
  double linkCost(const LinkMeasurement& m) const override {
    // The unicast ETX of De Couto et al.: expected DATA+ACK transmissions
    // = 1 / (df · dr). Under link-layer broadcast there is no ACK, so the
    // dr factor only *distorts* the forward-path quality (Section 2.1).
    if (m.df <= 0.0 || !m.hasReverse || m.reverseDf <= 0.0) return kInf;
    return 1.0 / (m.df * m.reverseDf);
  }
  double accumulate(double path, double link) const override { return path + link; }
  ProbeConfig probeConfig() const override {
    return {ProbeMode::Single, 5_s, 10, /*neighborReports=*/true};
  }
};

}  // namespace

const char* toString(MetricKind kind) {
  switch (kind) {
    case MetricKind::Hop: return "HOP";
    case MetricKind::Etx: return "ETX";
    case MetricKind::Ett: return "ETT";
    case MetricKind::Pp: return "PP";
    case MetricKind::Metx: return "METX";
    case MetricKind::Spp: return "SPP";
    case MetricKind::BiEtx: return "BiETX";
  }
  return "?";
}

double Metric::worstPathCost() const { return kInf; }

std::unique_ptr<Metric> makeMetric(MetricKind kind, std::size_t nominalPayloadBytes) {
  switch (kind) {
    case MetricKind::Hop: return std::make_unique<HopMetric>();
    case MetricKind::Etx: return std::make_unique<EtxMetric>();
    case MetricKind::Ett: return std::make_unique<EttMetric>(nominalPayloadBytes);
    case MetricKind::Pp: return std::make_unique<PpMetric>();
    case MetricKind::Metx: return std::make_unique<MetxMetric>();
    case MetricKind::Spp: return std::make_unique<SppMetric>();
    case MetricKind::BiEtx: return std::make_unique<BiEtxMetric>();
  }
  MESH_REQUIRE(false);
  return nullptr;
}

}  // namespace mesh::metrics
