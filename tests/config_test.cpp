// Tests for the meshsim scenario-file parser.

#include <gtest/gtest.h>

#include "mesh/harness/config_file.hpp"

namespace mesh::harness {
namespace {

constexpr const char* kValid = R"(
# comment
[scenario]
nodes = 25
area = 800x600
duration_s = 120
fading = none
seed = 42
connected = false
spatial_index = off

[protocol]
routing = tree
metric = METX
probe_rate = 2.5
adaptive = true

[traffic]
payload = 256
rate_pps = 10
start_s = 15
stop_s = 100

[group 1]
sources = 0 1
members = 5 6 7

[group 2]
sources = 2
members = 8
)";

TEST(ConfigFile, ParsesEveryField) {
  const auto result = parseScenarioConfig(kValid);
  ASSERT_TRUE(result.ok()) << result.error;
  const ScenarioConfig& c = *result.config;
  EXPECT_EQ(c.nodeCount, 25u);
  EXPECT_DOUBLE_EQ(c.areaWidthM, 800.0);
  EXPECT_DOUBLE_EQ(c.areaHeightM, 600.0);
  EXPECT_EQ(c.duration, SimTime::seconds(std::int64_t{120}));
  EXPECT_FALSE(c.rayleighFading);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_FALSE(c.ensureConnected);
  EXPECT_FALSE(c.spatialIndex);

  EXPECT_EQ(c.protocol.routing, Routing::Tree);
  ASSERT_TRUE(c.protocol.metric.has_value());
  EXPECT_EQ(*c.protocol.metric, metrics::MetricKind::Metx);
  EXPECT_DOUBLE_EQ(c.protocol.probeRateScale, 2.5);
  EXPECT_TRUE(c.protocol.adaptiveProbing);

  EXPECT_EQ(c.traffic.payloadBytes, 256u);
  EXPECT_DOUBLE_EQ(c.traffic.packetsPerSecond, 10.0);
  EXPECT_EQ(c.traffic.start, SimTime::seconds(std::int64_t{15}));
  EXPECT_EQ(c.traffic.stop, SimTime::seconds(std::int64_t{100}));

  ASSERT_EQ(c.groups.size(), 2u);
  EXPECT_EQ(c.groups[0].group, 1);
  EXPECT_EQ(c.groups[0].sources, (std::vector<net::NodeId>{0, 1}));
  EXPECT_EQ(c.groups[0].members, (std::vector<net::NodeId>{5, 6, 7}));
  EXPECT_EQ(c.groups[1].group, 2);
}

TEST(ConfigFile, DefaultsWhenKeysOmitted) {
  const auto result = parseScenarioConfig(R"(
[group 1]
sources = 0
members = 1
)");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.config->nodeCount, 50u);  // paper defaults
  EXPECT_TRUE(result.config->rayleighFading);
  EXPECT_EQ(result.config->protocol.routing, Routing::Odmrp);
  EXPECT_FALSE(result.config->protocol.metric.has_value());
}

TEST(ConfigFile, MetricNoneMeansOriginal) {
  const auto result = parseScenarioConfig(R"(
[protocol]
metric = none
[group 1]
sources = 0
members = 1
)");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.config->protocol.metric.has_value());
}

TEST(ConfigFile, AllMetricNamesParse) {
  for (const char* name : {"HOP", "ETX", "ETT", "PP", "METX", "SPP", "BiETX",
                           "spp", "etx"}) {
    std::string text = "[protocol]\nmetric = ";
    text += name;
    text += "\n[group 1]\nsources = 0\nmembers = 1\n";
    const auto result = parseScenarioConfig(text);
    EXPECT_TRUE(result.ok()) << name << ": " << result.error;
  }
}

struct BadCase {
  const char* text;
  const char* expectInError;
};

class ConfigErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ConfigErrorTest, ReportsLineAndReason) {
  const auto result = parseScenarioConfig(GetParam().text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find(GetParam().expectInError), std::string::npos)
      << "error was: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, ConfigErrorTest,
    ::testing::Values(
        BadCase{"[scenario\nnodes = 5", "unterminated"},
        BadCase{"[bogus]\n", "unknown section"},
        BadCase{"nodes = 5\n", "outside of any section"},
        BadCase{"[scenario]\nnodes five\n", "expected key = value"},
        BadCase{"[scenario]\nnodes = -3\n", "positive"},
        BadCase{"[scenario]\narea = 1000\n", "1000x1000"},
        BadCase{"[scenario]\nfading = fog\n", "rayleigh or none"},
        BadCase{"[scenario]\nwidgets = 9\n", "unknown [scenario] key"},
        BadCase{"[scenario]\nspatial_index = maybe\n", "boolean"},
        BadCase{"[protocol]\nmetric = WCETT\n", "unknown metric"},
        BadCase{"[protocol]\nrouting = ring\n", "odmrp or tree"},
        BadCase{"[traffic]\nrate_pps = 0\n", "positive"},
        BadCase{"[group]\nsources = 0\n", "numeric id"},
        BadCase{"[group 1]\nsources = x\n", "list of node ids"},
        BadCase{"[group 1]\nsources = 0\nmembers = 1\n[group 2]\ncolor = red\n",
                "unknown group key"},
        BadCase{"[scenario]\nnodes = 5\n", "no [group N] sections"},
        BadCase{"[scenario]\nnodes = 3\n[group 1]\nsources = 0\nmembers = 9\n",
                "member id out of range"}));

TEST(ConfigFile, ErrorsIncludeLineNumbers) {
  const auto result = parseScenarioConfig("[scenario]\nnodes = 5\nbad line\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 3"), std::string::npos) << result.error;
}

TEST(ConfigFile, LoadFromDiskReportsMissingFile) {
  const auto result = loadScenarioConfig("/nonexistent/file.ini");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

TEST(ConfigFile, ParsedScenarioActuallyRuns) {
  const auto result = parseScenarioConfig(R"(
[scenario]
nodes = 6
area = 300x300
duration_s = 40
seed = 5
[protocol]
metric = SPP
[traffic]
rate_pps = 10
start_s = 10
stop_s = 35
[group 1]
sources = 0
members = 3 4
)");
  ASSERT_TRUE(result.ok()) << result.error;
  Simulation sim{*result.config};
  const RunResults r = sim.run();
  EXPECT_GT(r.packetsSent, 200u);
  EXPECT_GT(r.pdr, 0.3);  // tiny dense area: should mostly deliver
}

}  // namespace
}  // namespace mesh::harness
