#include "mesh/fault/fault_injector.hpp"

#include "mesh/common/assert.hpp"
#include "mesh/common/units.hpp"

namespace mesh::fault {
namespace {
// A loss ramp reaches its target rate in this many equal steps spread over
// the first half of its window, then holds until cleared — "the link is
// going bad" rather than a step function.
constexpr int kRampSteps = 4;
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simulator, phy::Channel& channel,
                             FaultSchedule schedule)
    : simulator_{simulator},
      channel_{channel},
      schedule_{std::move(schedule)} {}

void FaultInjector::arm() {
  MESH_REQUIRE(!armed_);
  armed_ = true;
  for (const FaultEvent& event : schedule_.events()) {
    MESH_REQUIRE(event.start >= simulator_.now());
    simulator_.scheduleAt(event.start, [this, event] { apply(event); });
    if (!event.duration.isZero()) {
      simulator_.scheduleAt(event.start + event.duration,
                            [this, event] { clear(event); });
    }
  }
}

void FaultInjector::traceFault(trace::EventType type,
                               const FaultEvent& event) {
  // Foreign-domain copies of a multi-radio fault apply silently — only the
  // victim's home-domain injector records the timeline (FaultEvent::traced).
  if (trace_ == nullptr || !event.traced) return;
  trace_->faultEvent(simulator_.now(), type, event.kind, event.node,
                     event.peer, event.lossRate, event.powerDbm);
}

void FaultInjector::apply(const FaultEvent& event) {
  ++stats_.applied;
  switch (event.kind) {
    case trace::FaultKind::NodeCrash: {
      ++stats_.crashes;
      phy::Radio* radio = channel_.findRadio(event.node);
      MESH_REQUIRE(radio != nullptr);
      // setFailed notifies the channel itself (invalidateRadio), which
      // rebuilds only the affected reachability rows.
      radio->setFailed(true);
      break;
    }
    case trace::FaultKind::LinkBlackout:
      ++stats_.blackouts;
      channel_.overrideLinkLoss(event.node, event.peer, 1.0);
      break;
    case trace::FaultKind::LossRamp:
      ++stats_.lossRamps;
      if (event.duration.isZero()) {
        // Permanent: no window to ramp across.
        channel_.overrideLinkLoss(event.node, event.peer, event.lossRate);
      } else {
        rampStep(event, 1);
      }
      break;
    case trace::FaultKind::InterferenceBurst: {
      ++stats_.bursts;
      MESH_REQUIRE(!event.duration.isZero());
      phy::Radio* radio = channel_.findRadio(event.node);
      MESH_REQUIRE(radio != nullptr);
      radio->injectNoise(dbmToWatts(event.powerDbm), event.duration);
      break;
    }
    case trace::FaultKind::ProbeBlackhole:
      ++stats_.blackholes;
      if (blackhole_) blackhole_(event.node, true);
      break;
    case trace::FaultKind::MacQueueDrop:
      ++stats_.queueDrops;
      if (queueDrop_) queueDrop_(event.node, true);
      break;
  }
  traceFault(trace::EventType::FaultInject, event);
}

void FaultInjector::rampStep(const FaultEvent& event, int step) {
  const double loss =
      event.lossRate * static_cast<double>(step) / kRampSteps;
  channel_.overrideLinkLoss(event.node, event.peer, loss);
  if (step < kRampSteps) {
    // Steps are spread over the first half of the window; the second half
    // holds at the target rate.
    simulator_.schedule(event.duration / (2 * kRampSteps),
                        [this, event, step] { rampStep(event, step + 1); });
  }
}

void FaultInjector::clear(const FaultEvent& event) {
  ++stats_.cleared;
  switch (event.kind) {
    case trace::FaultKind::NodeCrash: {
      phy::Radio* radio = channel_.findRadio(event.node);
      MESH_REQUIRE(radio != nullptr);
      radio->setFailed(false);
      break;
    }
    case trace::FaultKind::LinkBlackout:
    case trace::FaultKind::LossRamp:
      channel_.clearLinkLoss(event.node, event.peer);
      break;
    case trace::FaultKind::InterferenceBurst:
      // The injected noise drains itself at the end of the burst; the
      // clearance exists for the trace/window accounting only.
      break;
    case trace::FaultKind::ProbeBlackhole:
      if (blackhole_) blackhole_(event.node, false);
      break;
    case trace::FaultKind::MacQueueDrop:
      if (queueDrop_) queueDrop_(event.node, false);
      break;
  }
  traceFault(trace::EventType::FaultClear, event);
}

}  // namespace mesh::fault
