#include "mesh/maodv/tree_multicast.hpp"

#include <utility>

#include "mesh/common/assert.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::maodv {

using odmrp::DataHeader;
using odmrp::JoinQuery;
using odmrp::JoinReply;
using odmrp::JoinReplyEntry;
using odmrp::MessageType;

TreeMulticast::TreeMulticast(sim::Simulator& simulator, net::NodeId self,
                             TreeParams params, const metrics::Metric* metric,
                             const metrics::NeighborTable* neighbors,
                             SendFn send, Rng rng)
    : simulator_{simulator},
      self_{self},
      params_{params},
      metric_{metric},
      neighbors_{neighbors},
      send_{std::move(send)},
      rng_{rng} {
  MESH_REQUIRE(send_ != nullptr);
  if (metric_ != nullptr) MESH_REQUIRE(neighbors_ != nullptr);
}

void TreeMulticast::joinGroup(net::GroupId group) {
  members_.insert(group);
  if (trace_ != nullptr) {
    trace_->memberJoin(simulator_.now(), self_, group);
  }
}

void TreeMulticast::traceDrop(const net::PacketPtr& packet,
                              trace::DropReason reason) {
  trace_->drop(simulator_.now(), self_, packet.get(), packet->kind(),
               static_cast<std::uint32_t>(packet->sizeBytes()), reason);
}

void TreeMulticast::startSource(net::GroupId group) {
  if (queryTimers_.contains(group)) return;
  auto timer = std::make_unique<sim::PeriodicTimer>(simulator_);
  timer->start(
      [this, first = true]() mutable -> SimTime {
        if (first) {
          first = false;
          return params_.queryInterval.scaled(rng_.uniform(0.01, 0.2));
        }
        return params_.queryInterval.scaled(rng_.uniform(0.95, 1.05));
      },
      [this, group] { originateQuery(group); });
  queryTimers_.emplace(group, std::move(timer));
}

void TreeMulticast::stopSource(net::GroupId group) { queryTimers_.erase(group); }

void TreeMulticast::originateQuery(net::GroupId group) {
  const std::uint32_t seq = querySeq_[group]++;
  JoinQuery q;
  q.group = group;
  q.source = self_;
  q.seq = seq;
  q.metricKind = metric_ ? static_cast<std::uint8_t>(metric_->kind()) : 0;
  q.prevHop = self_;
  q.pathCost = metric_ ? metric_->initialPathCost() : 0.0;

  RoundState& rs = rounds_[key(group, self_)];
  rs = RoundState{};
  rs.valid = true;
  rs.seq = seq;
  rs.treeReplySent = true;
  rs.memberReplySent = true;

  ++stats_.queriesOriginated;
  auto packet = q.toPacket(simulator_.now());
  stats_.controlBytesSent += packet->sizeBytes();
  send_(std::move(packet));
}

void TreeMulticast::handleQuery(const JoinQuery& query,
                                const net::PacketPtr& packet,
                                net::NodeId from) {
  if (query.source == self_) return;
  if (query.hopCount >= params_.maxHops) {
    ++stats_.queriesDropped;
    if (trace_ != nullptr) {
      traceDrop(packet, trace::DropReason::RouteTtlExpired);
    }
    return;
  }

  double cost = 0.0;
  if (metric_ != nullptr) {
    const metrics::LinkMeasurement m = neighbors_->measure(from, simulator_.now());
    cost = metric_->accumulate(query.pathCost, metric_->linkCost(m));
  }

  RoundState& rs = rounds_[key(query.group, query.source)];
  if (rs.valid && query.seq < rs.seq) {
    ++stats_.queriesDropped;
    if (trace_ != nullptr) {
      traceDrop(packet, trace::DropReason::RouteStaleRound);
    }
    return;
  }
  const bool newRound = !rs.valid || query.seq > rs.seq;

  if (newRound) {
    rs = RoundState{};
    rs.valid = true;
    rs.seq = query.seq;
    rs.bestCost = cost;
    rs.upstream = from;
    rs.alphaDeadline = simulator_.now() + params_.dupForwardAlpha;
    forwardQuery(query, cost, /*duplicate=*/false);

    if (members_.contains(query.group)) {
      if (metric_ != nullptr) {
        const net::GroupId group = query.group;
        const net::NodeId source = query.source;
        const std::uint32_t seq = query.seq;
        simulator_.schedule(params_.memberWindowDelta, [this, group, source, seq] {
          auto it = rounds_.find(key(group, source));
          if (it == rounds_.end() || !it->second.valid || it->second.seq != seq) return;
          if (it->second.memberReplySent) return;
          sendMemberReply(group, source);
        });
      } else {
        sendMemberReply(query.group, query.source);
      }
    }
    return;
  }

  if (metric_ != nullptr && metric_->better(cost, rs.bestCost)) {
    rs.bestCost = cost;
    rs.upstream = from;
    if (simulator_.now() <= rs.alphaDeadline) {
      forwardQuery(query, cost, /*duplicate=*/true);
    } else {
      ++stats_.queriesDropped;
      if (trace_ != nullptr) {
        traceDrop(packet, trace::DropReason::RouteAlphaExpired);
      }
    }
  } else {
    ++stats_.queriesDropped;
    if (trace_ != nullptr) {
      traceDrop(packet, metric_ != nullptr
                            ? trace::DropReason::RouteWorseCost
                            : trace::DropReason::RouteDupSuppress);
    }
  }
}

void TreeMulticast::forwardQuery(const JoinQuery& received, double newCost,
                                 bool duplicate) {
  JoinQuery out = received;
  out.hopCount = static_cast<std::uint8_t>(received.hopCount + 1);
  out.prevHop = self_;
  if (metric_ != nullptr) out.pathCost = newCost;
  if (duplicate) {
    ++stats_.duplicateQueriesForwarded;
  } else {
    ++stats_.queriesForwarded;
  }
  auto packet = out.toPacket(simulator_.now());
  stats_.controlBytesSent += packet->sizeBytes();
  sendControl(std::move(packet), params_.queryJitterMax);
}

void TreeMulticast::sendMemberReply(net::GroupId group, net::NodeId source) {
  RoundState& rs = rounds_[key(group, source)];
  MESH_ASSERT(rs.valid);
  if (rs.upstream == net::kInvalidNode) {
    if (trace_ != nullptr) {
      trace_->drop(simulator_.now(), self_, nullptr, net::PacketKind::Control,
                   0, trace::DropReason::RouteNoRoute);
    }
    return;
  }
  rs.memberReplySent = true;

  JoinReply reply;
  reply.group = group;
  reply.sender = self_;
  reply.seq = rs.seq;
  reply.entries.push_back(JoinReplyEntry{source, rs.upstream});

  ++stats_.repliesOriginated;
  auto packet = reply.toPacket(simulator_.now());
  stats_.controlBytesSent += packet->sizeBytes();
  sendControl(std::move(packet), params_.replyJitterMax);
}

void TreeMulticast::handleReply(const JoinReply& reply, net::NodeId from) {
  (void)from;
  JoinReply out;
  out.group = reply.group;
  out.sender = self_;
  out.seq = reply.seq;

  for (const JoinReplyEntry& entry : reply.entries) {
    if (entry.nextHop != self_) continue;
    if (entry.source == self_) {
      ++stats_.routeEstablished;
      continue;
    }
    auto it = rounds_.find(key(reply.group, entry.source));
    if (it == rounds_.end() || !it->second.valid || it->second.seq != reply.seq) {
      continue;
    }
    RoundState& rs = it->second;
    // Per-(group, source) tree membership, single-round lifetime: the
    // defining difference from ODMRP's per-group forwarding mesh.
    treeExpiry_[key(reply.group, entry.source)] =
        simulator_.now() + params_.forwarderTimeout;
    if (!rs.treeReplySent && rs.upstream != net::kInvalidNode) {
      rs.treeReplySent = true;
      out.entries.push_back(JoinReplyEntry{entry.source, rs.upstream});
    }
  }

  if (!out.entries.empty()) {
    ++stats_.repliesForwarded;
    auto packet = out.toPacket(simulator_.now());
    stats_.controlBytesSent += packet->sizeBytes();
    sendControl(std::move(packet), params_.replyJitterMax);
  }
}

bool TreeMulticast::isTreeForwarder(net::GroupId group, net::NodeId source) const {
  const auto it = treeExpiry_.find(key(group, source));
  return it != treeExpiry_.end() && it->second > simulator_.now();
}

bool TreeMulticast::isForwarder(net::GroupId group) const {
  for (const auto& [k, expiry] : treeExpiry_) {
    if (static_cast<net::GroupId>(k >> 16) == group && expiry > simulator_.now()) {
      return true;
    }
  }
  return false;
}

void TreeMulticast::sendData(net::GroupId group,
                             std::span<const std::uint8_t> payload) {
  DataHeader header;
  header.group = group;
  header.source = self_;
  header.seq = dataSeq_[group]++;
  dataDupCache_.checkAndInsert(group, self_, header.seq);

  auto packet = net::Packet::build(
      net::PacketKind::Data, self_, odmrp::kDataHeaderBytes + payload.size(),
      simulator_.now(), 0, [&](net::ByteWriter& w) {
        header.writeTo(w);
        w.bytes(payload);
      });
  ++stats_.dataOriginated;
  stats_.dataBytesSent += packet->sizeBytes();
  if (trace_ != nullptr) {
    trace_->packetBirth(simulator_.now(), self_, *packet, group);
  }
  send_(packet);
}

void TreeMulticast::handleData(const net::PacketPtr& packet, net::NodeId from) {
  // Decode-once: every receiver of this broadcast shares one cached parse.
  const DataHeader* header = DataHeader::decode(*packet);
  if (header == nullptr) return;
  if (header->source == self_) return;

  if (!dataDupCache_.checkAndInsert(header->group, header->source, header->seq)) {
    ++stats_.dataDuplicates;
    if (trace_ != nullptr) {
      traceDrop(packet, trace::DropReason::RouteDupSuppress);
    }
    return;
  }
  ++dataEdges_[net::LinkKey{from, self_}];

  if (members_.contains(header->group)) {
    ++stats_.dataDelivered;
    if (deliver_) {
      deliver_(header->group, header->source, header->seq, packet,
               packet->bytes().subspan(odmrp::kDataHeaderBytes));
    }
  }

  // Forward only on this source's tree — no per-group mesh.
  if (isTreeForwarder(header->group, header->source)) {
    ++stats_.dataForwarded;
    stats_.dataBytesSent += packet->sizeBytes();
    if (trace_ != nullptr) {
      trace_->forward(simulator_.now(), self_, *packet);
    }
    if (params_.dataJitterMax.isZero()) {
      send_(packet);
    } else {
      const SimTime jitter = params_.dataJitterMax.scaled(rng_.uniform(0.0, 1.0));
      simulator_.schedule(jitter, [this, packet] { send_(packet); });
    }
  }
}

void TreeMulticast::onPacket(const net::PacketPtr& packet, net::NodeId from) {
  const auto type = odmrp::peekType(packet->bytes());
  if (!type) return;
  switch (*type) {
    case MessageType::JoinQuery: {
      const JoinQuery* query = JoinQuery::decode(*packet);
      if (query != nullptr) handleQuery(*query, packet, from);
      break;
    }
    case MessageType::JoinReply: {
      const JoinReply* reply = JoinReply::decode(*packet);
      if (reply != nullptr) handleReply(*reply, from);
      break;
    }
    case MessageType::Data:
      handleData(packet, from);
      break;
  }
}

void TreeMulticast::sendControl(net::PacketPtr packet, SimTime jitterMax) {
  if (jitterMax.isZero()) {
    send_(std::move(packet));
    return;
  }
  const SimTime jitter = jitterMax.scaled(rng_.uniform(0.0, 1.0));
  simulator_.schedule(jitter, [this, packet = std::move(packet)] { send_(packet); });
}

}  // namespace mesh::maodv
