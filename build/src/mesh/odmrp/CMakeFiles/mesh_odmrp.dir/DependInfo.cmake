
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/odmrp/messages.cpp" "src/mesh/odmrp/CMakeFiles/mesh_odmrp.dir/messages.cpp.o" "gcc" "src/mesh/odmrp/CMakeFiles/mesh_odmrp.dir/messages.cpp.o.d"
  "/root/repo/src/mesh/odmrp/odmrp.cpp" "src/mesh/odmrp/CMakeFiles/mesh_odmrp.dir/odmrp.cpp.o" "gcc" "src/mesh/odmrp/CMakeFiles/mesh_odmrp.dir/odmrp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/common/CMakeFiles/mesh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/sim/CMakeFiles/mesh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/net/CMakeFiles/mesh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/metrics/CMakeFiles/mesh_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
