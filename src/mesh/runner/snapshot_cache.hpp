#pragma once
// SnapshotCache: build-once, copy-on-write topology worlds for sweeps
// (DESIGN §14).
//
// A comparison sweep runs N protocols × T topology seeds; everything the
// topology seed alone determines — placement, the spatial grid, the frozen
// per-pair link rows, the channel plan, the gateway roster — used to be
// rebuilt N times per seed. The cache keys harness::TopologySnapshot
// instances by the serialized topology-relevant config subset (seed
// included): the first run of a key builds the world, captures it, and
// publishes; concurrent runs of the same key block until the snapshot is
// ready, then adopt it without copying. Runs whose scenario is ineligible
// (mobility, custom link models — see harness::snapshotEligible) bypass
// the cache entirely and are reported as snapshot "off".
//
// Results are byte-identical with the cache on or off: reachability
// builds draw no RNG, Rng::fork is const (skipping placement draws
// perturbs no other stream), and the Channel's copy-on-write row views
// keep one run's faults invisible to siblings. MESH_TOPOLOGY_CACHE=off is
// the escape hatch (same pattern as MESH_SPATIAL_INDEX/MESH_PACKET_POOL);
// MESH_TOPOLOGY_CACHE_MB bounds resident snapshot bytes — least recently
// used Ready entries are evicted once the budget is exceeded (adopters
// holding the shared_ptr keep evicted worlds alive until they finish).

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "mesh/harness/scenario.hpp"
#include "mesh/harness/topology_snapshot.hpp"

namespace mesh::runner {

// The issue-facing name: the snapshot type itself lives in harness
// (Simulation must adopt it, and runner sits above harness in the link
// order), aliased here so runner code reads as specified.
using TopologySnapshot = harness::TopologySnapshot;
using TopologySnapshotPtr = harness::TopologySnapshotPtr;

class SnapshotCache {
 public:
  struct Stats {
    std::uint64_t built{0};    // worlds built and published
    std::uint64_t reused{0};   // acquire() hits (including wait-for-build)
    std::uint64_t failed{0};   // builder abandoned (construction threw)
    std::uint64_t evicted{0};  // Ready entries dropped for the budget
    std::size_t bytes{0};      // resident snapshot bytes
  };

  explicit SnapshotCache(std::size_t budgetBytes = defaultBudgetBytes());

  // Serializes the topology-relevant config subset — every field the
  // snapshot's contents are a function of, seed included. Equal keys imply
  // identical worlds; differing protocol/traffic/duration/faults/rate
  // fields deliberately do not enter the key, which is the whole point of
  // sharing. Note the MESH_CHANNELS/MESH_GATEWAYS env overrides apply
  // inside Simulation::build(), after keying — they are process-global, so
  // every run of a key still builds the same effective world.
  static std::string keyFor(const harness::ScenarioConfig& config);

  // ~512 MiB unless MESH_TOPOLOGY_CACHE_MB overrides it.
  static std::size_t defaultBudgetBytes();
  // MESH_TOPOLOGY_CACHE: "off"/"0"/"false" disables, "on"/"1"/"true"
  // enables; nullopt when unset/unrecognized (caller falls back to the
  // BenchOptions knob).
  static std::optional<bool> enabledFromEnvironment();

  // Returns the snapshot for `key`, blocking while another worker builds
  // it. When the key is absent the caller becomes the builder:
  // `shouldBuild` is set and null is returned — the caller MUST then
  // publish() or abandon() exactly once, or every later acquire() of the
  // key deadlocks.
  TopologySnapshotPtr acquire(const std::string& key, bool& shouldBuild);
  void publish(const std::string& key, TopologySnapshotPtr snapshot);
  // Builder's failure path: drops the claim so waiters (and retries) each
  // proceed to build standalone — a broken config fails per-run, exactly
  // like the rebuild-every-run path.
  void abandon(const std::string& key);

  Stats stats() const;

 private:
  struct Entry {
    bool ready{false};  // false: a builder owns it, waiters block
    TopologySnapshotPtr snapshot;
    std::size_t bytes{0};
    std::list<std::string>::iterator lruPos;  // valid when ready
  };

  void evictOverBudget();  // caller holds mutex_

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used, Ready only
  std::size_t budgetBytes_;
  Stats stats_;
};

}  // namespace mesh::runner
