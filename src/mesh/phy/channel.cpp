#include "mesh/phy/channel.hpp"

#include "mesh/common/log.hpp"

namespace mesh::phy {
namespace {
constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
}

Channel::Channel(sim::Simulator& simulator, std::unique_ptr<LinkModel> linkModel,
                 Rng rng, double fadingHeadroom)
    : simulator_{simulator},
      linkModel_{std::move(linkModel)},
      rng_{rng},
      fadingHeadroom_{fadingHeadroom} {
  MESH_REQUIRE(linkModel_ != nullptr);
  MESH_REQUIRE(fadingHeadroom_ >= 1.0);
}

void Channel::attach(Radio& radio) {
  MESH_REQUIRE(!reachabilityBuilt_);
  radios_.push_back(&radio);
  radio.attachChannel(this);
}

void Channel::buildReachability() {
  reachable_.assign(radios_.size(), {});
  for (std::size_t tx = 0; tx < radios_.size(); ++tx) {
    const double csThreshold = radios_[tx]->params().csThresholdW;
    for (std::size_t rx = 0; rx < radios_.size(); ++rx) {
      if (rx == tx) continue;
      const double mean = linkModel_->meanRxPowerW(radios_[tx]->nodeId(),
                                                   radios_[rx]->nodeId());
      if (mean * fadingHeadroom_ >= csThreshold) {
        reachable_[tx].push_back(rx);
      }
    }
  }
  reachabilityBuilt_ = true;
  reachabilityBuiltAt_ = simulator_.now();
}

void Channel::transmit(Radio& sender, const PhyFramePtr& frame,
                       SimTime airtime) {
  if (reachabilityBuilt_ && !refreshInterval_.isZero() &&
      simulator_.now() - reachabilityBuiltAt_ > refreshInterval_) {
    reachabilityBuilt_ = false;  // stale under mobility: rebuild below
  }
  if (!reachabilityBuilt_) buildReachability();
  ++stats_.transmissions;

  // Locate the sender's index (radios are few; linear scan is fine and
  // avoids a map — attach order is stable).
  std::size_t txIndex = radios_.size();
  for (std::size_t i = 0; i < radios_.size(); ++i) {
    if (radios_[i] == &sender) {
      txIndex = i;
      break;
    }
  }
  MESH_REQUIRE(txIndex < radios_.size());

  for (const std::size_t rxIndex : reachable_[txIndex]) {
    Radio& receiver = *radios_[rxIndex];
    const double powerW = linkModel_->sampleRxPowerW(
        sender.nodeId(), receiver.nodeId(), rng_);
    // Signals with no carrier-sense significance are not worth an event.
    if (powerW < receiver.params().csThresholdW * 1e-3) continue;

    const double distance =
        linkModel_->distanceM(sender.nodeId(), receiver.nodeId());
    const SimTime propagation = SimTime::seconds(distance / kSpeedOfLight);
    ++stats_.deliveriesScheduled;
    simulator_.schedule(
        propagation,
        [&receiver, frame, tx = sender.nodeId(), powerW, airtime] {
          receiver.beginArrival(frame, tx, powerW, airtime);
        });
  }
}

}  // namespace mesh::phy
