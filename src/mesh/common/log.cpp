#include "mesh/common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace mesh::log {
namespace {

Level g_level = Level::Warn;
std::function<SimTime()> g_timeSource;

const char* levelName(Level level) {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void setLevel(Level level) { g_level = level; }
Level level() { return g_level; }

void initFromEnvironment() {
  const char* env = std::getenv("MESH_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "trace") == 0) g_level = Level::Trace;
  else if (std::strcmp(env, "debug") == 0) g_level = Level::Debug;
  else if (std::strcmp(env, "info") == 0) g_level = Level::Info;
  else if (std::strcmp(env, "warn") == 0) g_level = Level::Warn;
  else if (std::strcmp(env, "error") == 0) g_level = Level::Error;
  else if (std::strcmp(env, "off") == 0) g_level = Level::Off;
}

void setTimeSource(std::function<SimTime()> source) { g_timeSource = std::move(source); }
void clearTimeSource() { g_timeSource = nullptr; }

bool enabled(Level lvl) { return static_cast<int>(lvl) >= static_cast<int>(g_level); }

void vwrite(Level lvl, const char* component, const char* fmt, std::va_list args) {
  char msg[1024];
  std::vsnprintf(msg, sizeof msg, fmt, args);
  if (g_timeSource) {
    std::fprintf(stderr, "[%s] %s %-10s %s\n", g_timeSource().str().c_str(),
                 levelName(lvl), component, msg);
  } else {
    std::fprintf(stderr, "%s %-10s %s\n", levelName(lvl), component, msg);
  }
}

void write(Level lvl, const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vwrite(lvl, component, fmt, args);
  va_end(args);
}

}  // namespace mesh::log
