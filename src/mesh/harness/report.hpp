#pragma once
// Report printers: emit the same rows/series the paper's tables and
// figures show, normalized against the original ODMRP where the paper
// normalizes.

#include <span>
#include <string>

#include "mesh/harness/experiment.hpp"

namespace mesh::harness {

// One Figure 2 column: normalized throughput (PDR relative to the ODMRP
// row, which must be rows[0]) with 95% CI from the per-topology spread.
void printNormalizedThroughput(const std::string& title,
                               std::span<const ComparisonRow> rows);

// Figure 2 "Delay" column: normalized mean end-to-end delay.
void printNormalizedDelay(const std::string& title,
                          std::span<const ComparisonRow> rows);

// Table 1: probe overhead percentage per metric (the ODMRP row is skipped
// — it has no probes).
void printOverheadTable(const std::string& title,
                        std::span<const ComparisonRow> rows);

// Raw absolute values, for EXPERIMENTS.md appendices.
void printAbsolute(const std::string& title, std::span<const ComparisonRow> rows);

}  // namespace mesh::harness
