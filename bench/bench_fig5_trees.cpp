// Figure 5 — the multicast trees built by ODMRP vs ODMRP_PP on the testbed.
//
// Runs both protocols on the Purdue floor and dumps the heavily used
// directed data edges (by share of accepted, non-duplicate data packets),
// in the paper's node labels. The paper's reading: ODMRP leans on the
// lossy one-hop links (2->5, 4->7, 3->1/1->3, 9->3), while ODMRP_PP takes
// the clean two-hop detours (2->10->5, 4->9->7, ...).

#include <algorithm>

#include "bench_common.hpp"

namespace {

void dumpTree(const char* name, mesh::harness::Simulation& sim) {
  using mesh::testbed::Floorplan;
  std::printf("\n%s — heavily used data edges (label -> label, share of accepted packets)\n",
              name);
  const auto edges = sim.dataEdgeCounts();
  std::uint64_t total = 0;
  for (const auto& [edge, count] : edges) total += count;
  std::vector<std::pair<mesh::net::LinkKey, std::uint64_t>> sorted(edges.begin(),
                                                                   edges.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [edge, count] : sorted) {
    const double share = total ? 100.0 * static_cast<double>(count) /
                                     static_cast<double>(total)
                               : 0.0;
    if (share < 2.0) continue;  // the figure shows only the heavy edges
    std::printf("  %2d -> %-2d   %6.1f%%  (%llu packets)\n",
                Floorplan::labelFor(edge.from), Floorplan::labelFor(edge.to),
                share, static_cast<unsigned long long>(count));
  }
}

}  // namespace

int main() {
  using namespace mesh;
  using namespace mesh::bench;

  const std::uint64_t seed = 2024;

  harness::ScenarioConfig original = testbedScenario(seed);
  original.protocol = harness::ProtocolSpec::original();
  harness::Simulation simOriginal{std::move(original)};
  const auto resultsOriginal = simOriginal.run();

  harness::ScenarioConfig pp = testbedScenario(seed);
  pp.protocol = harness::ProtocolSpec::with(metrics::MetricKind::Pp);
  harness::Simulation simPp{std::move(pp)};
  const auto resultsPp = simPp.run();

  std::printf("Figure 5 — trees constructed by ODMRP and ODMRP_PP (same floor, same seed)\n");
  std::printf("lossy (dashed) links in the floorplan: 2-5, 4-7, 1-3, 9-3\n");
  dumpTree("ODMRP", simOriginal);
  dumpTree("ODMRP_PP", simPp);
  std::printf("\nPDR: ODMRP %.4f, ODMRP_PP %.4f\n", resultsOriginal.pdr,
              resultsPp.pdr);
  printPaperReference(
      "Figure 5",
      "ODMRP uses the lossy 1-hop links (2->5, 4->7); ODMRP_PP detours via 10 and 9");
  return 0;
}
