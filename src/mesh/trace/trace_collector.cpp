#include "mesh/trace/trace_collector.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace mesh::trace {
namespace {

// Creates the parent directory of `path` if it has one. Returns false on
// filesystem errors (never throws — callers print and carry on).
bool ensureParentDir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path{path}.parent_path();
  if (parent.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  return !ec;
}

}  // namespace

TraceCollector::TraceCollector(std::string spillPath,
                               std::size_t spillThreshold)
    : spillPath_{std::move(spillPath)},
      spillThreshold_{spillThreshold == 0 ? 1 : spillThreshold} {}

TraceCollector::~TraceCollector() {
  if (spill_ != nullptr) std::fclose(spill_);
  if (!spillPath_.empty() && spilled_ > 0) std::remove(spillPath_.c_str());
}

std::uint32_t TraceCollector::pidOf(const net::Packet& pkt) {
  const auto [it, inserted] = pids_.try_emplace(pkt.uid(), nextPid_);
  if (inserted) ++nextPid_;
  return it->second;
}

void TraceCollector::append(const TraceRecord& record) {
  buffer_.push_back(record);
  ++total_;
  if (!spillPath_.empty() && buffer_.size() >= spillThreshold_) spillBuffered();
}

bool TraceCollector::spillBuffered() {
  if (spill_ == nullptr) {
    if (!ensureParentDir(spillPath_)) return false;
    spill_ = std::fopen(spillPath_.c_str(), "w+b");
    if (spill_ == nullptr) return false;
  }
  const std::size_t wrote = std::fwrite(buffer_.data(), sizeof(TraceRecord),
                                        buffer_.size(), spill_);
  if (wrote != buffer_.size()) return false;
  spilled_ += wrote;
  buffer_.clear();
  return true;
}

void TraceCollector::emitPacketEvent(EventType type, SimTime t,
                                     net::NodeId node,
                                     const net::Packet& pkt) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.pid = pidOf(pkt);
  record.sizeBytes = static_cast<std::uint32_t>(pkt.sizeBytes());
  record.node = node;
  record.type = static_cast<std::uint8_t>(type);
  record.kind = static_cast<std::uint8_t>(pkt.kind());
  append(record);
}

void TraceCollector::packetBirth(SimTime t, net::NodeId node,
                                 const net::Packet& pkt, net::GroupId group) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.pid = pidOf(pkt);
  record.sizeBytes = static_cast<std::uint32_t>(pkt.sizeBytes());
  record.node = node;
  record.origin = pkt.origin();
  record.group = group;
  record.type = static_cast<std::uint8_t>(EventType::PktBirth);
  record.kind = static_cast<std::uint8_t>(pkt.kind());
  append(record);
}

void TraceCollector::memberJoin(SimTime t, net::NodeId node,
                                net::GroupId group) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.node = node;
  record.group = group;
  record.type = static_cast<std::uint8_t>(EventType::MemberJoin);
  append(record);
}

void TraceCollector::enqueue(SimTime t, net::NodeId node,
                             const net::Packet& pkt) {
  emitPacketEvent(EventType::Enqueue, t, node, pkt);
}

void TraceCollector::txStart(SimTime t, net::NodeId node,
                             const net::Packet* pkt, std::uint32_t frameBytes,
                             std::uint8_t rate) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.pid = pkt != nullptr ? pidOf(*pkt) : 0;
  record.sizeBytes = frameBytes;
  record.node = node;
  record.type = static_cast<std::uint8_t>(EventType::TxStart);
  record.kind = static_cast<std::uint8_t>(
      pkt != nullptr ? pkt->kind() : net::PacketKind::MacControl);
  record.rate = rate;
  record.channel = channelTag_;
  append(record);
}

void TraceCollector::txEnd(SimTime t, net::NodeId node, const net::Packet* pkt,
                           std::uint32_t frameBytes) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.pid = pkt != nullptr ? pidOf(*pkt) : 0;
  record.sizeBytes = frameBytes;
  record.node = node;
  record.type = static_cast<std::uint8_t>(EventType::TxEnd);
  record.kind = static_cast<std::uint8_t>(
      pkt != nullptr ? pkt->kind() : net::PacketKind::MacControl);
  append(record);
}

void TraceCollector::rxOk(SimTime t, net::NodeId node, const net::Packet& pkt) {
  emitPacketEvent(EventType::RxOk, t, node, pkt);
}

void TraceCollector::probeTx(SimTime t, net::NodeId node,
                             const net::Packet& pkt) {
  emitPacketEvent(EventType::ProbeTx, t, node, pkt);
}

void TraceCollector::probeRx(SimTime t, net::NodeId node,
                             const net::Packet& pkt) {
  emitPacketEvent(EventType::ProbeRx, t, node, pkt);
}

void TraceCollector::forward(SimTime t, net::NodeId node,
                             const net::Packet& pkt) {
  emitPacketEvent(EventType::Forward, t, node, pkt);
}

void TraceCollector::deliver(SimTime t, net::NodeId node,
                             const net::Packet& pkt,
                             std::uint32_t payloadBytes, net::NodeId source,
                             net::GroupId group) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.pid = pidOf(pkt);
  record.sizeBytes = payloadBytes;
  record.node = node;
  record.origin = source;
  record.group = group;
  record.type = static_cast<std::uint8_t>(EventType::Deliver);
  record.kind = static_cast<std::uint8_t>(pkt.kind());
  record.channel = channelTag_;
  append(record);
}

void TraceCollector::drop(SimTime t, net::NodeId node, const net::Packet* pkt,
                          net::PacketKind kind, std::uint32_t sizeBytes,
                          DropReason reason) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.pid = pkt != nullptr ? pidOf(*pkt) : 0;
  record.sizeBytes = sizeBytes;
  record.node = node;
  record.type = static_cast<std::uint8_t>(EventType::Drop);
  record.kind = static_cast<std::uint8_t>(kind);
  record.reason = static_cast<std::uint8_t>(reason);
  record.channel = channelTag_;
  append(record);
}

void TraceCollector::faultEvent(SimTime t, EventType type, FaultKind kind,
                                net::NodeId node, net::NodeId peer,
                                double lossRate, double powerDbm) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.node = node;
  record.origin = peer;
  record.type = static_cast<std::uint8_t>(type);
  record.reason = static_cast<std::uint8_t>(kind);
  // Fault records carry no packet, so sizeBytes is free to hold the one
  // numeric fault parameter, fixed-point encoded: LossRamp target loss in
  // millionths, InterferenceBurst power in milli-dBm offset by +300 dBm to
  // stay unsigned. Inject only — clears have no parameters.
  if (type == EventType::FaultInject) {
    if (kind == FaultKind::LossRamp) {
      record.sizeBytes =
          static_cast<std::uint32_t>(std::lround(lossRate * 1e6));
    } else if (kind == FaultKind::InterferenceBurst) {
      record.sizeBytes =
          static_cast<std::uint32_t>(std::lround((powerDbm + 300.0) * 1e3));
    }
  }
  append(record);
}

void TraceCollector::gatewayHandoff(SimTime t, net::NodeId gateway,
                                    const net::Packet& rebuilt,
                                    std::uint8_t srcDomain,
                                    std::uint32_t srcPid) {
  TraceRecord record;
  record.timeNs = t.ns();
  record.pid = pidOf(rebuilt);
  // No packet bytes to report — the field carries the source domain's
  // local pid so exportMergedJsonl can alias this record's pid chain back
  // to the original packet (reason holds the source domain index).
  record.sizeBytes = srcPid;
  record.node = gateway;
  record.origin = rebuilt.origin();
  record.type = static_cast<std::uint8_t>(EventType::GatewayHandoff);
  record.kind = static_cast<std::uint8_t>(rebuilt.kind());
  record.reason = srcDomain;
  record.channel = channelTag_;
  append(record);
}

std::string toJsonLine(const TraceRecord& record) {
  const auto type = static_cast<EventType>(record.type);
  const auto kind = static_cast<net::PacketKind>(record.kind);
  char buf[256];
  int n = 0;
  // Collision-domain tag; only stamped (txStart/drop/deliver) on
  // multi-channel runs, so single-channel trace bytes are unchanged.
  char chan[20];
  chan[0] = '\0';
  if (record.channel != 0) {
    std::snprintf(chan, sizeof(chan), R"(,"channel":%u)", record.channel - 1);
  }
  if (type == EventType::FaultInject || type == EventType::FaultClear) {
    const auto fault = static_cast<FaultKind>(record.reason);
    // Inject records of parameterized kinds decode their fixed-point
    // payload (see faultEvent) back into the natural unit.
    char extra[48];
    extra[0] = '\0';
    if (type == EventType::FaultInject) {
      if (fault == FaultKind::LossRamp) {
        std::snprintf(extra, sizeof(extra), R"(,"loss":%.6g)",
                      record.sizeBytes / 1e6);
      } else if (fault == FaultKind::InterferenceBurst) {
        std::snprintf(extra, sizeof(extra), R"(,"dbm":%.3f)",
                      record.sizeBytes / 1e3 - 300.0);
      }
    }
    if (record.origin != net::kInvalidNode) {
      n = std::snprintf(
          buf, sizeof(buf),
          R"({"t":%)" PRId64 R"(,"ev":"%s","node":%u,"fault":"%s","peer":%u%s})",
          record.timeNs, toString(type), record.node, toString(fault),
          record.origin, extra);
    } else {
      n = std::snprintf(
          buf, sizeof(buf),
          R"({"t":%)" PRId64 R"(,"ev":"%s","node":%u,"fault":"%s"%s})",
          record.timeNs, toString(type), record.node, toString(fault), extra);
    }
  } else if (type == EventType::MemberJoin) {
    n = std::snprintf(buf, sizeof(buf),
                      R"({"t":%)" PRId64 R"(,"ev":"%s","node":%u,"group":%u})",
                      record.timeNs, toString(type), record.node, record.group);
  } else if (type == EventType::PktBirth || type == EventType::Deliver) {
    n = std::snprintf(
        buf, sizeof(buf),
        R"({"t":%)" PRId64
        R"(,"ev":"%s","node":%u,"pid":%u,"kind":"%s","bytes":%u,"origin":%u,"group":%u%s})",
        record.timeNs, toString(type), record.node, record.pid,
        net::toString(kind), record.sizeBytes, record.origin, record.group,
        chan);
  } else if (type == EventType::GatewayHandoff) {
    // sizeBytes holds the source-domain pid (merge bookkeeping, see
    // gatewayHandoff) — not packet bytes, so it is not emitted. `src_ch`
    // is the source collision domain; `channel` the destination.
    n = std::snprintf(
        buf, sizeof(buf),
        R"({"t":%)" PRId64
        R"(,"ev":"%s","node":%u,"pid":%u,"kind":"%s","src_ch":%u%s})",
        record.timeNs, toString(type), record.node, record.pid,
        net::toString(kind), record.reason, chan);
  } else if (type == EventType::Drop) {
    n = std::snprintf(
        buf, sizeof(buf),
        R"({"t":%)" PRId64
        R"(,"ev":"%s","node":%u,"pid":%u,"kind":"%s","bytes":%u,"reason":"%s"%s})",
        record.timeNs, toString(type), record.node, record.pid,
        net::toString(kind), record.sizeBytes,
        toString(static_cast<DropReason>(record.reason)), chan);
  } else if (record.rate != 0) {
    // Only TxStart records of rate-aware frames set `rate`; fixed-rate
    // traces never reach this branch, keeping their bytes unchanged.
    n = std::snprintf(
        buf, sizeof(buf),
        R"({"t":%)" PRId64
        R"(,"ev":"%s","node":%u,"pid":%u,"kind":"%s","bytes":%u,"rate":%u%s})",
        record.timeNs, toString(type), record.node, record.pid,
        net::toString(kind), record.sizeBytes, record.rate, chan);
  } else {
    n = std::snprintf(
        buf, sizeof(buf),
        R"({"t":%)" PRId64 R"(,"ev":"%s","node":%u,"pid":%u,"kind":"%s","bytes":%u%s})",
        record.timeNs, toString(type), record.node, record.pid,
        net::toString(kind), record.sizeBytes, chan);
  }
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

bool TraceCollector::exportJsonl(
    const std::string& path, const std::string& metaJson,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  if (!ensureParentDir(path)) return false;
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  bool ok = std::fputs(metaJson.c_str(), out) >= 0 && std::fputc('\n', out) != EOF;

  // Spilled records first (they precede everything in the buffer).
  if (ok && spill_ != nullptr && spilled_ > 0) {
    std::fflush(spill_);
    ok = std::fseek(spill_, 0, SEEK_SET) == 0;
    TraceRecord chunk[1024];
    std::uint64_t remaining = spilled_;
    while (ok && remaining > 0) {
      const std::size_t want = remaining < 1024 ? static_cast<std::size_t>(remaining) : 1024;
      const std::size_t got = std::fread(chunk, sizeof(TraceRecord), want, spill_);
      if (got != want) {
        ok = false;
        break;
      }
      for (std::size_t i = 0; i < got && ok; ++i) {
        const std::string line = toJsonLine(chunk[i]);
        ok = std::fputs(line.c_str(), out) >= 0 && std::fputc('\n', out) != EOF;
      }
      remaining -= got;
    }
  }
  for (const TraceRecord& record : buffer_) {
    if (!ok) break;
    const std::string line = toJsonLine(record);
    ok = std::fputs(line.c_str(), out) >= 0 && std::fputc('\n', out) != EOF;
  }
  for (const auto& [name, value] : counters) {
    if (!ok) break;
    ok = std::fprintf(out, R"({"counter":"%s","value":%)" PRIu64 "}\n",
                      name.c_str(), value) > 0;
  }
  ok = std::fclose(out) == 0 && ok;
  if (ok) {
    // Drain: the export consumed everything, so the spill file goes away
    // now rather than at destruction. Records emitted after this point
    // would start a new trace segment (no caller does).
    if (spill_ != nullptr) {
      std::fclose(spill_);
      spill_ = nullptr;
      std::remove(spillPath_.c_str());
    }
    spilled_ = 0;
    buffer_.clear();
  }
  return ok;
}

bool TraceCollector::exportMergedJsonl(
    const std::string& path, const std::string& metaJson,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::vector<TraceCollector*>& parts) {
  if (parts.empty()) return false;
  if (parts.size() == 1) return parts[0]->exportJsonl(path, metaJson, counters);

  // Streaming cursor over one part: spilled records first (they precede
  // the buffer in emission order), then the in-memory buffer, re-read in
  // 1024-record chunks so merging k paper-scale parts stays bounded.
  struct Cursor {
    TraceCollector* part{nullptr};
    std::uint64_t spillRemaining{0};
    std::size_t bufferIndex{0};
    std::vector<TraceRecord> chunk;
    std::size_t chunkIndex{0};
    bool failed{false};

    bool refill() {
      chunk.clear();
      chunkIndex = 0;
      if (spillRemaining > 0) {
        const std::size_t want =
            spillRemaining < 1024 ? static_cast<std::size_t>(spillRemaining)
                                  : 1024;
        chunk.resize(want);
        const std::size_t got =
            std::fread(chunk.data(), sizeof(TraceRecord), want, part->spill_);
        if (got != want) {
          failed = true;
          return false;
        }
        spillRemaining -= got;
        return true;
      }
      const std::size_t left = part->buffer_.size() - bufferIndex;
      if (left == 0) return false;
      const std::size_t want = left < 1024 ? left : 1024;
      chunk.assign(part->buffer_.begin() + static_cast<std::ptrdiff_t>(bufferIndex),
                   part->buffer_.begin() + static_cast<std::ptrdiff_t>(bufferIndex + want));
      bufferIndex += want;
      return true;
    }

    // Returns the head record, or nullptr when the part is exhausted (or
    // a spill read failed, flagged in `failed`).
    const TraceRecord* peek() {
      if (chunkIndex >= chunk.size() && !refill()) return nullptr;
      return &chunk[chunkIndex];
    }
    void pop() { ++chunkIndex; }
  };

  std::vector<Cursor> cursors(parts.size());
  bool ok = true;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    cursors[i].part = parts[i];
    if (parts[i]->spill_ != nullptr && parts[i]->spilled_ > 0) {
      std::fflush(parts[i]->spill_);
      if (std::fseek(parts[i]->spill_, 0, SEEK_SET) != 0) ok = false;
      cursors[i].spillRemaining = parts[i]->spilled_;
    }
  }

  if (!ensureParentDir(path)) return false;
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  ok = ok && std::fputs(metaJson.c_str(), out) >= 0 &&
       std::fputc('\n', out) != EOF;

  // Per-part records are time-sorted (each domain's sim clock is
  // monotone), so a k-way head merge yields the global (timeNs, part)
  // order. Pids are renumbered in merged first-appearance order: local
  // (part, pid) pairs map to one dense global sequence, making the merged
  // bytes independent of how packets were numbered inside each domain.
  std::unordered_map<std::uint64_t, std::uint32_t> pidMap;
  std::uint32_t nextPid = 1;
  while (ok) {
    std::size_t best = parts.size();
    const TraceRecord* bestRecord = nullptr;
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      const TraceRecord* head = cursors[i].peek();
      if (cursors[i].failed) {
        ok = false;
        break;
      }
      if (head == nullptr) continue;
      // Strict less-than on time keeps equal-time ties on the lowest part
      // index — the documented merge order.
      if (bestRecord == nullptr || head->timeNs < bestRecord->timeNs) {
        best = i;
        bestRecord = head;
      }
    }
    if (!ok || bestRecord == nullptr) break;
    TraceRecord record = *bestRecord;
    cursors[best].pop();
    if (record.pid != 0) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(best) << 32) | record.pid;
      if (record.type == static_cast<std::uint8_t>(EventType::GatewayHandoff) &&
          record.sizeBytes != 0 && record.reason < parts.size()) {
        // A handoff record is the rebuilt copy's first appearance in its
        // destination part; (reason, sizeBytes) name the original packet
        // in the source part. Alias the rebuilt (part, pid) to the
        // original's global pid so one packet keeps one pid across
        // domains — chained handoffs resolve because the source pid is
        // itself already aliased. Assigning the source eagerly (it may
        // not have surfaced yet at equal merge time) keeps numbering in
        // merged first-appearance order.
        const std::uint64_t srcKey =
            (static_cast<std::uint64_t>(record.reason) << 32) |
            record.sizeBytes;
        const auto [sit, srcInserted] = pidMap.try_emplace(srcKey, nextPid);
        if (srcInserted) ++nextPid;
        pidMap.insert_or_assign(key, sit->second);
        record.pid = sit->second;
      } else {
        const auto [it, inserted] = pidMap.try_emplace(key, nextPid);
        if (inserted) ++nextPid;
        record.pid = it->second;
      }
    }
    const std::string line = toJsonLine(record);
    ok = std::fputs(line.c_str(), out) >= 0 && std::fputc('\n', out) != EOF;
  }
  for (const auto& [name, value] : counters) {
    if (!ok) break;
    ok = std::fprintf(out, R"({"counter":"%s","value":%)" PRIu64 "}\n",
                      name.c_str(), value) > 0;
  }
  ok = std::fclose(out) == 0 && ok;
  if (ok) {
    for (TraceCollector* part : parts) {
      if (part->spill_ != nullptr) {
        std::fclose(part->spill_);
        part->spill_ = nullptr;
        std::remove(part->spillPath_.c_str());
      }
      part->spilled_ = 0;
      part->buffer_.clear();
    }
  }
  return ok;
}

}  // namespace mesh::trace
