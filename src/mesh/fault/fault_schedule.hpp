#pragma once
// FaultSchedule: a deterministic timeline of typed fault events.
//
// A schedule is either written out explicitly (config `[faults]` section,
// tests) or generated from a ChurnSpec + seed. Either way it is a plain
// sorted vector of FaultEvent values — no clocks, no side effects — so the
// same schedule object drives the FaultInjector, the RecoveryAnalyzer's
// window accounting, and any offline tooling, and two runs given the same
// schedule and seed replay the identical fault timeline.

#include <cstdint>
#include <utility>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/trace/trace_event.hpp"

namespace mesh::fault {

// One typed fault. Field meaning by kind:
//   NodeCrash          `node` powered off at start, back after `duration`
//   LinkBlackout       node--peer loses every frame inside the window
//   LossRamp           node--peer loss ramps up to `lossRate` across window
//   InterferenceBurst  `powerDbm` of undecodable in-band noise at `node`
//   ProbeBlackhole     `node` silently eats incoming probes for the window
//   MacQueueDrop       `node`'s MAC swallows every payload at enqueue
// duration == 0 means permanent (never cleared); bursts require a window.
struct FaultEvent {
  trace::FaultKind kind{trace::FaultKind::NodeCrash};
  net::NodeId node{net::kInvalidNode};
  net::NodeId peer{net::kInvalidNode};  // link faults only
  SimTime start{SimTime::zero()};
  SimTime duration{SimTime::zero()};
  double lossRate{1.0};    // LossRamp target
  double powerDbm{-55.0};  // InterferenceBurst strength at the victim
  // Multi-channel scoping: a gateway has a radio in several domains, so
  // one configured fault becomes one scoped copy per domain. Only the copy
  // in the victim's home domain records FaultInject/FaultClear — the
  // others set traced=false so the merged trace carries each fault once.
  bool traced{true};
};

// Seed-defined churn: expected events per minute across the whole network,
// per category. Outage/burst lengths are exponential around the means. A
// given (spec, horizon, node set, seed) always yields the same timeline.
struct ChurnSpec {
  double crashesPerMinute{0.0};
  double blackoutsPerMinute{0.0};
  double burstsPerMinute{0.0};
  SimTime meanOutage{SimTime::seconds(std::int64_t{5})};
  SimTime meanBurst{SimTime::milliseconds(500)};
  double burstPowerDbm{-55.0};
  // No faults before this point: routes must exist before they can break.
  SimTime warmup{SimTime::seconds(std::int64_t{10})};
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  static FaultSchedule fromEvents(std::vector<FaultEvent> events);

  // Poisson arrivals per category over [warmup, horizon). Crashes and
  // bursts pick a victim from `nodes`; blackouts pick an unordered pair.
  // `nodes` lists eligible victims (callers exclude sources/members when
  // crashing them would make the metric meaningless).
  static FaultSchedule generate(const ChurnSpec& spec, SimTime horizon,
                                const std::vector<net::NodeId>& nodes,
                                Rng rng);

  void add(FaultEvent event);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  // Sorted by (start, kind, node, peer): arming order == timeline order.
  const std::vector<FaultEvent>& events() const { return events_; }

  // Merged [start, end) windows, clamped to `horizon`; permanent faults
  // extend to the horizon. The RecoveryAnalyzer's in/out-window split.
  std::vector<std::pair<SimTime, SimTime>> mergedWindows(SimTime horizon) const;
  // Total length of the merged windows.
  SimTime faultWindow(SimTime horizon) const;

 private:
  std::vector<FaultEvent> events_;  // kept sorted by add()
};

}  // namespace mesh::fault
