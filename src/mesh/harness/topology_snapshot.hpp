#pragma once
// TopologySnapshot: the immutable, protocol-independent world of one
// topology seed, built once and shared across sweep runs (DESIGN §14).
//
// Every (seed, protocol) cell of a comparison sweep rebuilds the same
// world before diverging on protocol state: node placement, the spatial
// grid, the frozen per-pair {rxIndex, meanPowerW, propagation} link rows,
// the channel-plan domain assignment and the gateway roster are all pure
// functions of the topology-relevant config subset. This struct freezes
// exactly that subset's outputs behind shared_ptr-to-const so concurrent
// runs adopt it without copying:
//
//   Simulation a{config};                    // builds the world
//   auto snap = a.captureSnapshot();         // freezes it (zero-copy)
//   Simulation b{config2, snap};             // adopts it (same topology
//                                            // keys, any protocol)
//
// Mutation stays safe through the Channel's copy-on-write row views: a
// fault run rebuilds only the rows its failures touch, in channel-local
// storage — snapshot rows are never written, so sibling runs can never
// observe each other. Eligibility (harness::snapshotEligible) is the
// static-geometry subset: no mobility, no custom link-model factory.

#include <cstddef>
#include <memory>
#include <vector>

#include "mesh/channelplan/channel_plan.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/gateway/gateway_set.hpp"
#include "mesh/phy/channel.hpp"

namespace mesh::harness {

struct TopologySnapshot {
  std::vector<Vec2> positions;     // node id -> placement
  channelplan::ChannelPlan plan;   // meaningful on multi-channel builds
  gateway::GatewaySet gatewaySet;  // empty unless gateways configured
  // One frozen reachability state per collision domain, in channel order
  // (size 1 on the legacy single-channel path). Rows include gateway port
  // radios, which attach after the domain's own nodes.
  std::vector<std::shared_ptr<const phy::Channel::ReachSnapshot>> reach;

  // Resident size estimate for the snapshot cache's memory budget.
  std::size_t approxBytes() const {
    std::size_t bytes = sizeof(TopologySnapshot);
    bytes += positions.capacity() * sizeof(Vec2);
    bytes += plan.assignment.capacity() * sizeof(std::uint8_t);
    bytes += plan.domainSizes.capacity() * sizeof(std::uint32_t);
    bytes += gatewaySet.nodes.capacity() * sizeof(net::NodeId);
    for (const auto& r : reach) {
      if (r != nullptr) bytes += r->approxBytes();
    }
    return bytes;
  }
};

using TopologySnapshotPtr = std::shared_ptr<const TopologySnapshot>;

}  // namespace mesh::harness
