#include "mesh/fault/fault_schedule.hpp"

#include <algorithm>

#include "mesh/common/assert.hpp"

namespace mesh::fault {
namespace {

// Strict weak order giving every schedule one canonical timeline; ties at
// the same instant resolve by kind, then victim, so generation order never
// leaks into the injector's arming order.
bool before(const FaultEvent& a, const FaultEvent& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
  if (a.node != b.node) return a.node < b.node;
  return a.peer < b.peer;
}

}  // namespace

FaultSchedule FaultSchedule::fromEvents(std::vector<FaultEvent> events) {
  FaultSchedule schedule;
  schedule.events_ = std::move(events);
  std::stable_sort(schedule.events_.begin(), schedule.events_.end(), before);
  return schedule;
}

void FaultSchedule::add(FaultEvent event) {
  MESH_REQUIRE(!event.start.isNegative());
  const auto at =
      std::upper_bound(events_.begin(), events_.end(), event, before);
  events_.insert(at, event);
}

FaultSchedule FaultSchedule::generate(const ChurnSpec& spec, SimTime horizon,
                                      const std::vector<net::NodeId>& nodes,
                                      Rng rng) {
  MESH_REQUIRE(horizon > SimTime::zero());
  FaultSchedule schedule;
  if (nodes.empty() || horizon <= spec.warmup) return schedule;
  const double activeS = (horizon - spec.warmup).toSeconds();

  // One independent Poisson process per category, drawn in a fixed
  // category order from forked streams so changing one rate never shifts
  // another category's draws.
  struct Category {
    const char* stream;
    trace::FaultKind kind;
    double perMinute;
  };
  const Category categories[] = {
      {"crash", trace::FaultKind::NodeCrash, spec.crashesPerMinute},
      {"blackout", trace::FaultKind::LinkBlackout, spec.blackoutsPerMinute},
      {"burst", trace::FaultKind::InterferenceBurst, spec.burstsPerMinute},
  };
  for (const Category& cat : categories) {
    if (cat.perMinute <= 0.0) continue;
    Rng stream = rng.fork(cat.stream);
    const double meanGapS = 60.0 / cat.perMinute;
    double tS = spec.warmup.toSeconds() + stream.exponential(meanGapS);
    while (tS < spec.warmup.toSeconds() + activeS) {
      FaultEvent event;
      event.kind = cat.kind;
      event.start = SimTime::seconds(tS);
      switch (cat.kind) {
        case trace::FaultKind::NodeCrash:
          event.node = nodes[stream.uniformInt(std::uint64_t{nodes.size()})];
          event.duration =
              SimTime::seconds(stream.exponential(spec.meanOutage.toSeconds()));
          break;
        case trace::FaultKind::LinkBlackout: {
          if (nodes.size() < 2) break;
          const auto a = stream.uniformInt(std::uint64_t{nodes.size()});
          auto b = stream.uniformInt(std::uint64_t{nodes.size() - 1});
          if (b >= a) ++b;  // distinct endpoints, uniform over pairs
          event.node = nodes[a];
          event.peer = nodes[b];
          event.duration =
              SimTime::seconds(stream.exponential(spec.meanOutage.toSeconds()));
          break;
        }
        case trace::FaultKind::InterferenceBurst:
          event.node = nodes[stream.uniformInt(std::uint64_t{nodes.size()})];
          event.duration =
              SimTime::seconds(stream.exponential(spec.meanBurst.toSeconds()));
          if (event.duration.isZero()) {
            event.duration = SimTime::milliseconds(1);
          }
          event.powerDbm = spec.burstPowerDbm;
          break;
        default:
          break;
      }
      if (event.node != net::kInvalidNode) schedule.add(event);
      tS += stream.exponential(meanGapS);
    }
  }
  return schedule;
}

std::vector<std::pair<SimTime, SimTime>> FaultSchedule::mergedWindows(
    SimTime horizon) const {
  std::vector<std::pair<SimTime, SimTime>> windows;
  for (const FaultEvent& event : events_) {
    if (event.start >= horizon) continue;
    SimTime end = event.duration.isZero() ? horizon
                                          : event.start + event.duration;
    if (end > horizon) end = horizon;
    if (end <= event.start) continue;
    windows.emplace_back(event.start, end);
  }
  std::sort(windows.begin(), windows.end());
  std::vector<std::pair<SimTime, SimTime>> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

SimTime FaultSchedule::faultWindow(SimTime horizon) const {
  SimTime total = SimTime::zero();
  for (const auto& [start, end] : mergedWindows(horizon)) {
    total += end - start;
  }
  return total;
}

}  // namespace mesh::fault
