file(REMOVE_RECURSE
  "CMakeFiles/mesh_odmrp.dir/messages.cpp.o"
  "CMakeFiles/mesh_odmrp.dir/messages.cpp.o.d"
  "CMakeFiles/mesh_odmrp.dir/odmrp.cpp.o"
  "CMakeFiles/mesh_odmrp.dir/odmrp.cpp.o.d"
  "libmesh_odmrp.a"
  "libmesh_odmrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_odmrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
