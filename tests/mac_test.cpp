// Unit and integration tests for the 802.11 DCF MAC.
//
// The key behaviours under test mirror Section 2.1 of the paper:
// broadcast = one shot, no ACK/RTS/retry, forward-direction only;
// unicast = RTS/CTS + ACK + retransmissions, bidirectional.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mesh/mac/frames.hpp"
#include "mesh/mac/mac80211.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/phy/static_link_model.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::mac {
namespace {

using namespace mesh::time_literals;

constexpr double kGoodPower = 1e-8;  // far above rxThreshold (3.652e-10)

net::PacketPtr makePayload(std::size_t bytes, net::NodeId origin = 0,
                           SimTime created = SimTime::zero()) {
  return net::Packet::make(net::PacketKind::Data, origin,
                           std::vector<std::uint8_t>(bytes, 0x5A), created);
}

// A rig of N MACs over a StaticLinkModel (full control of connectivity).
struct MacRig {
  sim::Simulator simulator;
  phy::StaticLinkModel* links{nullptr};  // owned by channel
  std::unique_ptr<phy::Channel> channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<Mac80211>> macs;
  std::vector<std::vector<std::pair<net::NodeId, std::uint64_t>>> received;

  explicit MacRig(std::size_t n, MacParams params = MacParams{},
                  std::uint64_t seed = 5) {
    auto model = std::make_unique<phy::StaticLinkModel>(n);
    links = model.get();
    channel = std::make_unique<phy::Channel>(simulator, std::move(model),
                                             Rng{seed}.fork("channel"));
    received.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(
          simulator, static_cast<net::NodeId>(i), phy::PhyParams{}));
      channel->attach(*radios.back());
      macs.push_back(std::make_unique<Mac80211>(
          simulator, *radios.back(), params, Rng{seed}.fork("mac", i)));
      macs.back()->setReceiveCallback(
          [this, i](const net::PacketPtr& p, net::NodeId from) {
            received[i].push_back({from, p->uid()});
          });
    }
  }

  void connect(net::NodeId a, net::NodeId b, double power = kGoodPower) {
    links->setSymmetric(a, b, power);
  }
};

// -------------------------------------------------------------- framing

TEST(Frames, SizesMatchStandard) {
  EXPECT_EQ(Frame::headerBytes(FrameType::Data), 28u);
  EXPECT_EQ(Frame::headerBytes(FrameType::Rts), 20u);
  EXPECT_EQ(Frame::headerBytes(FrameType::Cts), 14u);
  EXPECT_EQ(Frame::headerBytes(FrameType::Ack), 14u);
  EXPECT_EQ(dataFrameBytes(512), 540u);
}

TEST(Frames, HeaderRoundTrip) {
  Frame f;
  f.header.type = FrameType::Rts;
  f.header.retry = true;
  f.header.durationUs = 1234;
  f.header.dst = 7;
  f.header.src = 3;
  f.header.seq = 999;
  const auto bytes = f.serialize();
  EXPECT_EQ(bytes.size(), kRtsBytes);
  const auto parsed = Frame::parseHeader(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, FrameType::Rts);
  EXPECT_TRUE(parsed->retry);
  EXPECT_EQ(parsed->durationUs, 1234);
  EXPECT_EQ(parsed->dst, 7);
  EXPECT_EQ(parsed->src, 3);
  EXPECT_EQ(parsed->seq, 999);
}

TEST(Frames, DataCarriesPayloadBytes) {
  Frame f;
  f.header.type = FrameType::Data;
  f.payload = makePayload(512);
  const auto bytes = f.serialize();
  EXPECT_EQ(bytes.size(), 540u);
  EXPECT_EQ(f.sizeBytes(), 540u);
}

TEST(Frames, ParseRejectsGarbage) {
  std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_FALSE(Frame::parseHeader(tiny).has_value());
  std::vector<std::uint8_t> badType(kCtsBytes, 0);
  badType[0] = 0x7F;
  EXPECT_FALSE(Frame::parseHeader(badType).has_value());
}

// ------------------------------------------------------------- broadcast

TEST(MacBroadcast, DeliversToAllNeighbors) {
  MacRig rig{3};
  rig.connect(0, 1);
  rig.connect(0, 2);
  rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  rig.simulator.run();
  EXPECT_EQ(rig.received[1].size(), 1u);
  EXPECT_EQ(rig.received[2].size(), 1u);
  EXPECT_EQ(rig.macs[0]->stats().broadcastSent, 1u);
}

TEST(MacBroadcast, NoAckNoRtsNoRetry) {
  MacRig rig{2};
  rig.connect(0, 1);
  rig.macs[0]->send(makePayload(1000), net::kBroadcastNode);  // above RTS thr.
  rig.simulator.run();
  const MacStats& s = rig.macs[0]->stats();
  EXPECT_EQ(s.broadcastSent, 1u);
  EXPECT_EQ(s.rtsSent, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(rig.macs[1]->stats().ackSent, 0u);
  EXPECT_EQ(rig.macs[1]->stats().ctsSent, 0u);
}

TEST(MacBroadcast, OneShotEvenWhenNobodyReceives) {
  MacRig rig{2};  // no links at all
  rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  rig.simulator.run();
  EXPECT_EQ(rig.macs[0]->stats().broadcastSent, 1u);
  EXPECT_EQ(rig.macs[0]->stats().retries, 0u);
  EXPECT_TRUE(rig.received[1].empty());
}

TEST(MacBroadcast, ForwardDirectionOnly) {
  // A->B works, B->A is dead. Broadcast from A must still go through:
  // link-layer broadcast needs no reverse path (Section 2.1).
  MacRig rig{2};
  rig.links->setLink(0, 1, kGoodPower);
  rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  rig.simulator.run();
  EXPECT_EQ(rig.received[1].size(), 1u);
}

TEST(MacBroadcast, BackToBackFramesAllDelivered) {
  MacRig rig{2};
  rig.connect(0, 1);
  for (int i = 0; i < 10; ++i) {
    rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  }
  rig.simulator.run();
  EXPECT_EQ(rig.received[1].size(), 10u);
  EXPECT_EQ(rig.macs[0]->stats().broadcastSent, 10u);
}

TEST(MacBroadcast, QueueOverflowDropsTail) {
  MacParams params;
  params.queueLimit = 4;
  MacRig rig{2, params};
  rig.connect(0, 1);
  for (int i = 0; i < 10; ++i) {
    rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  }
  rig.simulator.run();
  EXPECT_GT(rig.macs[0]->stats().queueDrops, 0u);
  EXPECT_EQ(rig.received[1].size(),
            rig.macs[0]->stats().enqueued);
}

// --------------------------------------------------------------- unicast

TEST(MacUnicast, SmallFrameUsesDataAck) {
  MacRig rig{2};
  rig.connect(0, 1);
  bool ok = false;
  rig.macs[0]->setTxStatusCallback(
      [&](const net::PacketPtr&, net::NodeId, bool success) { ok = success; });
  rig.macs[0]->send(makePayload(100), 1);  // below rtsThreshold (256)
  rig.simulator.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(rig.received[1].size(), 1u);
  EXPECT_EQ(rig.macs[0]->stats().rtsSent, 0u);
  EXPECT_EQ(rig.macs[1]->stats().ackSent, 1u);
}

TEST(MacUnicast, LargeFrameUsesRtsCtsDataAck) {
  MacRig rig{2};
  rig.connect(0, 1);
  rig.macs[0]->send(makePayload(512), 1);
  rig.simulator.run();
  EXPECT_EQ(rig.received[1].size(), 1u);
  EXPECT_EQ(rig.macs[0]->stats().rtsSent, 1u);
  EXPECT_EQ(rig.macs[1]->stats().ctsSent, 1u);
  EXPECT_EQ(rig.macs[0]->stats().unicastSent, 1u);
  EXPECT_EQ(rig.macs[1]->stats().ackSent, 1u);
}

TEST(MacUnicast, RetriesThenDropsWhenReceiverUnreachable) {
  MacRig rig{2};  // no link
  bool reported = true;
  rig.macs[0]->setTxStatusCallback(
      [&](const net::PacketPtr&, net::NodeId, bool success) { reported = success; });
  rig.macs[0]->send(makePayload(100), 1);
  rig.simulator.run();
  EXPECT_FALSE(reported);
  const MacStats& s = rig.macs[0]->stats();
  EXPECT_EQ(s.retryDrops, 1u);
  // shortRetryLimit (7) failures after the first attempt.
  EXPECT_EQ(s.retries, 8u);
  EXPECT_EQ(s.ackTimeouts, 8u);
}

TEST(MacUnicast, RtsRetriesUseShortLimit) {
  MacRig rig{2};  // no link: RTS never answered
  rig.macs[0]->send(makePayload(512), 1);
  rig.simulator.run();
  const MacStats& s = rig.macs[0]->stats();
  EXPECT_EQ(s.retryDrops, 1u);
  EXPECT_EQ(s.ctsTimeouts, 8u);
  EXPECT_EQ(s.unicastSent, 0u);  // data never got a chance
}

TEST(MacUnicast, AsymmetricLinkFailsDespiteGoodForwardDirection) {
  // Forward A->B perfect, reverse dead: data arrives but ACKs cannot come
  // back, so unicast eventually *drops* — while broadcast on the same link
  // succeeds (previous test). This is the paper's core observation about
  // unicast needing bidirectional quality.
  MacRig rig{2};
  rig.links->setLink(0, 1, kGoodPower);
  bool ok = true;
  rig.macs[0]->setTxStatusCallback(
      [&](const net::PacketPtr&, net::NodeId, bool success) { ok = success; });
  rig.macs[0]->send(makePayload(100), 1);
  rig.simulator.run();
  EXPECT_FALSE(ok);
  // The receiver got the data (possibly many copies), delivered once.
  EXPECT_EQ(rig.received[1].size(), 1u);
  EXPECT_GT(rig.macs[0]->stats().retries, 0u);
  EXPECT_GT(rig.macs[1]->stats().dupSuppressed, 0u);
}

TEST(MacUnicast, LossyLinkEventuallySucceedsViaRetries) {
  MacRig rig{2};
  rig.connect(0, 1);
  rig.links->setSymmetricLossRate(0, 1, 0.5);
  int okCount = 0, failCount = 0;
  rig.macs[0]->setTxStatusCallback(
      [&](const net::PacketPtr&, net::NodeId, bool success) {
        success ? ++okCount : ++failCount;
      });
  for (int i = 0; i < 40; ++i) rig.macs[0]->send(makePayload(100), 1);
  rig.simulator.run();
  // With 50% loss and 8 attempts, nearly everything gets through.
  EXPECT_GT(okCount, 35);
  EXPECT_GT(rig.macs[0]->stats().retries, 0u);
  EXPECT_EQ(rig.received[1].size(), static_cast<std::size_t>(okCount));
}

// ------------------------------------------------------ medium contention

TEST(MacContention, TwoSendersShareTheMedium) {
  MacRig rig{3};
  rig.connect(0, 2);
  rig.connect(1, 2);
  rig.connect(0, 1);  // they hear each other -> CSMA applies
  for (int i = 0; i < 20; ++i) {
    rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
    rig.macs[1]->send(makePayload(512), net::kBroadcastNode);
  }
  rig.simulator.run();
  // Carrier sense + backoff should avoid nearly all collisions.
  EXPECT_GE(rig.received[2].size(), 38u);
}

TEST(MacContention, HiddenTerminalsCollideWithoutRts) {
  // 0 and 1 cannot hear each other but both reach 2. Simultaneous
  // broadcast storms collide at 2 far more than in the CSMA case above.
  MacRig rig{3};
  rig.connect(0, 2);
  rig.connect(1, 2);
  for (int i = 0; i < 20; ++i) {
    rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
    rig.macs[1]->send(makePayload(512), net::kBroadcastNode);
  }
  rig.simulator.run();
  EXPECT_LT(rig.received[2].size(), 20u);  // heavy losses
  EXPECT_GT(rig.radios[2]->stats().framesCorrupted, 5u);
}

TEST(MacContention, RtsCtsProtectsAgainstHiddenTerminal) {
  // Same hidden-terminal geometry, but unicast with RTS/CTS: node 1 hears
  // 2's CTS and defers (NAV), so node 0's data survives.
  MacRig rig{3};
  rig.connect(0, 2);
  rig.connect(1, 2);
  int ok0 = 0, ok1 = 0;
  rig.macs[0]->setTxStatusCallback(
      [&](const net::PacketPtr&, net::NodeId, bool s) { ok0 += s; });
  rig.macs[1]->setTxStatusCallback(
      [&](const net::PacketPtr&, net::NodeId, bool s) { ok1 += s; });
  for (int i = 0; i < 20; ++i) {
    rig.macs[0]->send(makePayload(512), 2);
    rig.macs[1]->send(makePayload(512), 2);
  }
  rig.simulator.run();
  EXPECT_EQ(ok0 + ok1, 40);
  EXPECT_EQ(rig.received[2].size(), 40u);
}

TEST(MacContention, NavSetByOverheardCts) {
  MacRig rig{3};
  rig.connect(0, 2);
  rig.connect(1, 2);
  rig.macs[0]->send(makePayload(512), 2);
  bool navSeen = false;
  // Poll node 1's NAV during the exchange.
  for (int t = 1; t < 100; ++t) {
    rig.simulator.schedule(SimTime::microseconds(std::int64_t{t * 100}), [&] {
      navSeen |= rig.macs[1]->navUntil() > rig.simulator.now();
    });
  }
  rig.simulator.run();
  EXPECT_TRUE(navSeen);
}

TEST(MacContention, ImmediateAccessWhenIdle) {
  // A single frame on an idle medium goes out after exactly DIFS-bounded
  // latency: airtime(540B) + propagation ~= delivery time.
  MacRig rig{2};
  rig.connect(0, 1);
  SimTime deliveredAt = SimTime::zero();
  rig.macs[1]->setReceiveCallback(
      [&](const net::PacketPtr&, net::NodeId) { deliveredAt = rig.simulator.now(); });
  rig.simulator.schedule(1_s, [&] {
    rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  });
  rig.simulator.run();
  const SimTime airtime = phy::PhyParams{}.frameAirtime(dataFrameBytes(512));
  // Sent immediately at 1 s (medium idle >= DIFS since t=0).
  EXPECT_EQ(deliveredAt, 1_s + airtime);
}

TEST(MacTiming, BroadcastAirtimeMatchesDsssFormula) {
  // 540 B MAC frame at 2 Mbps + 192 us PLCP preamble = 2352 us.
  const phy::PhyParams params;
  EXPECT_EQ(params.frameAirtime(dataFrameBytes(512)).ns(), 2'352'000);
  // Control frames: CTS/ACK 14 B -> 248 us; RTS 20 B -> 272 us.
  EXPECT_EQ(params.frameAirtime(kCtsBytes).ns(), 248'000);
  EXPECT_EQ(params.frameAirtime(kRtsBytes).ns(), 272'000);
}

TEST(MacTiming, RadioAirtimeAccountingMatchesFramesSent) {
  MacRig rig{2};
  rig.connect(0, 1);
  for (int i = 0; i < 5; ++i) {
    rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  }
  rig.simulator.run();
  const auto& stats = rig.radios[0]->stats();
  EXPECT_EQ(stats.framesSent, 5u);
  EXPECT_EQ(stats.airtimeTx.ns(), 5 * 2'352'000);
}

TEST(MacTiming, RtsReservationCoversWholeExchange) {
  // The NAV a bystander picks up from an overheard RTS must cover the
  // CTS + DATA + ACK that follow (3 SIFS + their airtimes).
  MacRig rig{3};
  rig.connect(0, 1);
  rig.connect(0, 2);  // node 2 overhears the RTS only
  SimTime navSeen = SimTime::zero();
  rig.simulator.schedule(SimTime::milliseconds(1), [&] {
    rig.macs[0]->send(makePayload(512), 1);
  });
  // Sample node 2's NAV shortly after the RTS should have landed.
  rig.simulator.schedule(SimTime::milliseconds(2), [&] {
    navSeen = rig.macs[2]->navUntil();
  });
  rig.simulator.run();
  const phy::PhyParams params;
  const SimTime exchange = params.frameAirtime(kCtsBytes) +
                           params.frameAirtime(dataFrameBytes(512)) +
                           params.frameAirtime(kAckBytes);
  EXPECT_GT(navSeen.ns(), 0);
  // NAV end must be at least the remaining exchange duration after the
  // sample point.
  EXPECT_GE(navSeen - SimTime::milliseconds(2), exchange - SimTime::milliseconds(1));
}

TEST(MacTiming, PostTxBackoffSeparatesBackToBackFrames) {
  // Two queued broadcasts: the second must wait at least DIFS after the
  // first completes (post-transmission backoff), never less.
  MacRig rig{2};
  rig.connect(0, 1);
  std::vector<SimTime> deliveries;
  rig.macs[1]->setReceiveCallback(
      [&](const net::PacketPtr&, net::NodeId) {
        deliveries.push_back(rig.simulator.now());
      });
  rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
  rig.simulator.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const SimTime gap = deliveries[1] - deliveries[0];
  const phy::PhyParams params;
  const SimTime airtime = params.frameAirtime(dataFrameBytes(512));
  EXPECT_GE(gap, airtime + MacParams{}.difs);
}

TEST(MacContention, DeterministicAcrossRuns) {
  auto runOnce = [] {
    MacRig rig{3, MacParams{}, /*seed=*/123};
    rig.connect(0, 2);
    rig.connect(1, 2);
    rig.connect(0, 1);
    for (int i = 0; i < 10; ++i) {
      rig.macs[0]->send(makePayload(512), net::kBroadcastNode);
      rig.macs[1]->send(makePayload(512), net::kBroadcastNode);
    }
    rig.simulator.run();
    return std::make_tuple(rig.received[2].size(),
                           rig.radios[2]->stats().framesCorrupted,
                           rig.simulator.eventsExecuted());
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace mesh::mac
