#include "mesh/net/pool.hpp"

#include <cstdlib>
#include <string_view>

namespace mesh::net {

void PacketPool::refill(Impl& im, std::uint32_t cls) {
  const std::size_t slotSize = sizeof(SlotHeader) + kClassBytes[cls];
  const std::size_t count = kSlabBytes / slotSize > 0 ? kSlabBytes / slotSize : 1;
  const std::size_t slabSize = count * slotSize;
  auto* slab = static_cast<unsigned char*>(::operator new(slabSize));
  im.slabs.push_back(slab);
  im.slabBytes += slabSize;
  im.slotsCarved += count;
  for (std::size_t i = 0; i < count; ++i) {
    auto* h = reinterpret_cast<SlotHeader*>(slab + i * slotSize);
    h->impl = &im;
    h->cls = cls;
    void* obj = h + 1;
    *static_cast<void**>(obj) = im.freeHead[cls];
    im.freeHead[cls] = obj;
  }
}

PacketPool& PacketPool::fallbackPool() {
  thread_local PacketPool pool;
  return pool;
}

bool& PacketPool::enabledFlag() {
  static bool enabled = [] {
    const char* env = std::getenv("MESH_PACKET_POOL");
    if (env == nullptr) return true;
    const std::string_view v{env};
    return !(v == "off" || v == "0" || v == "false" || v == "OFF");
  }();
  return enabled;
}

}  // namespace mesh::net
