# Empty compiler generated dependencies file for mesh_maodv.
# This may be replaced when dependencies are built.
