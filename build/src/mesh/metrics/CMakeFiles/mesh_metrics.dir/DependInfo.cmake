
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/metrics/metric.cpp" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/metric.cpp.o" "gcc" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/metric.cpp.o.d"
  "/root/repo/src/mesh/metrics/neighbor_table.cpp" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/neighbor_table.cpp.o" "gcc" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/neighbor_table.cpp.o.d"
  "/root/repo/src/mesh/metrics/probe_messages.cpp" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/probe_messages.cpp.o" "gcc" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/probe_messages.cpp.o.d"
  "/root/repo/src/mesh/metrics/probe_service.cpp" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/probe_service.cpp.o" "gcc" "src/mesh/metrics/CMakeFiles/mesh_metrics.dir/probe_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/common/CMakeFiles/mesh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/sim/CMakeFiles/mesh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/net/CMakeFiles/mesh_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
