file(REMOVE_RECURSE
  "CMakeFiles/testbed_floor.dir/testbed_floor.cpp.o"
  "CMakeFiles/testbed_floor.dir/testbed_floor.cpp.o.d"
  "testbed_floor"
  "testbed_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
