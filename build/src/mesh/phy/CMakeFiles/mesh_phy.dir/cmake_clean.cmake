file(REMOVE_RECURSE
  "CMakeFiles/mesh_phy.dir/channel.cpp.o"
  "CMakeFiles/mesh_phy.dir/channel.cpp.o.d"
  "CMakeFiles/mesh_phy.dir/mobility.cpp.o"
  "CMakeFiles/mesh_phy.dir/mobility.cpp.o.d"
  "CMakeFiles/mesh_phy.dir/propagation.cpp.o"
  "CMakeFiles/mesh_phy.dir/propagation.cpp.o.d"
  "CMakeFiles/mesh_phy.dir/radio.cpp.o"
  "CMakeFiles/mesh_phy.dir/radio.cpp.o.d"
  "libmesh_phy.a"
  "libmesh_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
