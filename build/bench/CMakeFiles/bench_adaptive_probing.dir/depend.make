# Empty dependencies file for bench_adaptive_probing.
# This may be replaced when dependencies are built.
