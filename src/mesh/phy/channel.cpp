#include "mesh/phy/channel.hpp"

#include "mesh/common/log.hpp"

namespace mesh::phy {
namespace {
constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
}

Channel::Channel(sim::Simulator& simulator, std::unique_ptr<LinkModel> linkModel,
                 Rng rng, double fadingHeadroom)
    : simulator_{simulator},
      linkModel_{std::move(linkModel)},
      rng_{rng},
      fadingHeadroom_{fadingHeadroom},
      cacheMeans_{linkModel_ != nullptr && linkModel_->meansCacheable()} {
  MESH_REQUIRE(linkModel_ != nullptr);
  MESH_REQUIRE(fadingHeadroom_ >= 1.0);
}

void Channel::attach(Radio& radio) {
  MESH_REQUIRE(!reachabilityBuilt_);
  radios_.push_back(&radio);
  radio.attachChannel(this, radios_.size() - 1);
}

void Channel::buildReachability() {
  reachable_.assign(radios_.size(), {});
  for (std::size_t tx = 0; tx < radios_.size(); ++tx) {
    const double csThreshold = radios_[tx]->params().csThresholdW;
    for (std::size_t rx = 0; rx < radios_.size(); ++rx) {
      if (rx == tx) continue;
      const double mean = linkModel_->meanRxPowerW(radios_[tx]->nodeId(),
                                                   radios_[rx]->nodeId());
      if (mean * fadingHeadroom_ >= csThreshold) {
        const double distance =
            linkModel_->distanceM(radios_[tx]->nodeId(), radios_[rx]->nodeId());
        reachable_[tx].push_back(
            CachedLink{static_cast<std::uint32_t>(rx), mean,
                       SimTime::seconds(distance / kSpeedOfLight)});
      }
    }
  }
  reachabilityBuilt_ = true;
  reachabilityBuiltAt_ = simulator_.now();
  ++stats_.reachabilityRebuilds;
}

void Channel::transmit(Radio& sender, const PhyFramePtr& frame,
                       SimTime airtime) {
  // Staleness first, before anything can consult the cache — and inclusive
  // (>=), so a refresh interval of exactly the elapsed delta rebuilds
  // instead of sliding one transmission past its deadline.
  if (reachabilityBuilt_ && !refreshInterval_.isZero() &&
      simulator_.now() - reachabilityBuiltAt_ >= refreshInterval_) {
    reachabilityBuilt_ = false;  // stale under mobility: rebuild below
  }
  if (!reachabilityBuilt_) buildReachability();
  ++stats_.transmissions;

  const std::size_t txIndex = sender.channelIndex();
  MESH_ASSERT(txIndex < radios_.size() && radios_[txIndex] == &sender);
  const net::NodeId txNode = sender.nodeId();

  if (cacheMeans_) {
    // Hot path: flat slab of precomputed (receiver, mean, delay); the only
    // virtual call left is the per-frame sampling draw.
    for (const CachedLink& link : reachable_[txIndex]) {
      Radio& receiver = *radios_[link.rxIndex];
      const double powerW = linkModel_->samplePowerGivenMeanW(
          txNode, receiver.nodeId(), link.meanPowerW, rng_);
      // Signals with no carrier-sense significance are not worth an event.
      if (powerW < receiver.params().csThresholdW * 1e-3) continue;
      ++stats_.deliveriesScheduled;
      simulator_.schedule(link.propagation,
                          [&receiver, frame, txNode, powerW, airtime] {
                            receiver.beginArrival(frame, txNode, powerW, airtime);
                          });
    }
    return;
  }

  // Mobility: positions change between rebuilds, so power and delay are
  // queried live (the cache still bounds the fan-out via its headroom).
  for (const CachedLink& link : reachable_[txIndex]) {
    Radio& receiver = *radios_[link.rxIndex];
    const double powerW =
        linkModel_->sampleRxPowerW(txNode, receiver.nodeId(), rng_);
    if (powerW < receiver.params().csThresholdW * 1e-3) continue;

    const double distance = linkModel_->distanceM(txNode, receiver.nodeId());
    const SimTime propagation = SimTime::seconds(distance / kSpeedOfLight);
    ++stats_.deliveriesScheduled;
    simulator_.schedule(propagation,
                        [&receiver, frame, txNode, powerW, airtime] {
                          receiver.beginArrival(frame, txNode, powerW, airtime);
                        });
  }
}

}  // namespace mesh::phy
