// Guard: disabled tracing must be free.
//
// Every trace hook site in the simulator is `if (trace_ != nullptr)
// trace_->emit(...)` on a pointer cached at build time — when tracing is
// off the hook is one load + one never-taken branch. This bench times an
// event loop whose handler does representative work, with and without
// that exact hook pattern in the handler, and fails (exit 1) if the
// hooked variant's best-of-N time exceeds the plain one by more than 2%.
//
// The pointer is read through `volatile` so the optimizer cannot prove it
// null and fold the branch away — the measured loop keeps the same shape
// as the real hook sites.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>

#include "mesh/common/rng.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace {

using namespace mesh;

// Never set: the guard measures the disabled path only. `volatile` forces
// a real load + test per event, exactly what a cached member pointer
// costs at the hook sites.
trace::TraceCollector* volatile g_trace = nullptr;

constexpr int kEventsPerRun = 2'000'000;
constexpr int kRepetitions = 7;

double runEventLoop(bool hooked) {
  sim::Simulator simulator;
  Rng rng{42};
  std::uint64_t acc = 0;
  int remaining = kEventsPerRun;
  std::function<void()> step = [&] {
    // Representative handler work: one RNG draw and some integer mixing,
    // roughly the cost scale of the MAC/PHY bookkeeping real events do.
    acc += rng.uniformInt(std::uint64_t{1024});
    acc ^= acc << 7;
    if (hooked) {
      trace::TraceCollector* trace = g_trace;
      if (trace != nullptr) {
        trace->memberJoin(simulator.now(), net::NodeId{1}, net::GroupId{1});
      }
    }
    if (--remaining > 0) {
      simulator.schedule(SimTime::nanoseconds(std::int64_t{50}), step);
    }
  };
  simulator.schedule(SimTime::zero(), step);

  const auto start = std::chrono::steady_clock::now();
  simulator.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (acc == 0xdeadbeef) std::printf("~");  // keep `acc` observable
  return seconds;
}

}  // namespace

int main() {
  double plainBest = 1e9;
  double hookedBest = 1e9;
  // Interleave the variants so thermal / frequency drift hits both alike;
  // best-of-N rejects scheduler noise.
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const double plain = runEventLoop(false);
    const double hooked = runEventLoop(true);
    if (plain < plainBest) plainBest = plain;
    if (hooked < hookedBest) hookedBest = hooked;
  }

  const double ratio = hookedBest / plainBest;
  const double overheadPct = (ratio - 1.0) * 100.0;
  std::printf("trace hook overhead (disabled collector)\n");
  std::printf("  plain   %.1f Mev/s (%.3fs best of %d)\n",
              kEventsPerRun / plainBest / 1e6, plainBest, kRepetitions);
  std::printf("  hooked  %.1f Mev/s (%.3fs best of %d)\n",
              kEventsPerRun / hookedBest / 1e6, hookedBest, kRepetitions);
  std::printf("  overhead %.2f%% (budget 2%%)\n", overheadPct);
  if (overheadPct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: disabled trace hooks cost %.2f%% of the event loop\n",
                 overheadPct);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
