file(REMOVE_RECURSE
  "libmesh_harness.a"
)
