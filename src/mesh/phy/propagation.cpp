#include "mesh/phy/propagation.hpp"

#include <cmath>
#include <limits>

namespace mesh::phy {
namespace {
constexpr double kPi = 3.14159265358979323846;
// Co-located radios would yield infinite Friis power; clamp distance.
constexpr double kMinDistanceM = 0.1;
}  // namespace

double FriisModel::atDistance(const PhyParams& p, double d) {
  d = std::max(d, kMinDistanceM);
  const double lambda = p.wavelengthM();
  const double denom = 4.0 * kPi * d;
  return p.txPowerW * p.antennaGainTx * p.antennaGainRx * lambda * lambda /
         (denom * denom * p.systemLoss);
}

double FriisModel::rxPowerW(const PhyParams& p, Vec2 tx, Vec2 rx) const {
  return atDistance(p, tx.distanceTo(rx));
}

double TwoRayGroundModel::crossoverDistanceM(const PhyParams& p) {
  return 4.0 * kPi * p.antennaHeightM * p.antennaHeightM / p.wavelengthM();
}

double TwoRayGroundModel::atDistance(const PhyParams& p, double d) {
  d = std::max(d, kMinDistanceM);
  if (d < crossoverDistanceM(p)) return FriisModel::atDistance(p, d);
  const double ht = p.antennaHeightM;
  const double hr = p.antennaHeightM;
  return p.txPowerW * p.antennaGainTx * p.antennaGainRx * ht * ht * hr * hr /
         (d * d * d * d * p.systemLoss);
}

double TwoRayGroundModel::rxPowerW(const PhyParams& p, Vec2 tx, Vec2 rx) const {
  return atDistance(p, tx.distanceTo(rx));
}

double maxRangeForMeanPowerM(const PropagationModel& model,
                             const PhyParams& params, double minPowerW,
                             double maxM) {
  MESH_REQUIRE(minPowerW > 0.0);
  MESH_REQUIRE(maxM > 0.0);
  const auto powerAt = [&](double d) {
    return model.rxPowerW(params, Vec2{0.0, 0.0}, Vec2{d, 0.0});
  };
  if (powerAt(maxM) >= minPowerW) {
    return std::numeric_limits<double>::infinity();
  }
  double lo = 0.0;  // models clamp co-located radios to a finite power
  if (powerAt(lo) < minPowerW) return 0.0;  // nothing is ever reachable
  double hi = 1.0;
  while (powerAt(hi) >= minPowerW) {
    lo = hi;
    hi *= 2.0;
    if (hi >= maxM) {
      hi = maxM;
      break;
    }
  }
  // Invariant: powerAt(lo) >= minPowerW > powerAt(hi). 60 halvings put
  // hi within machine precision of the true cutoff from above.
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (powerAt(mid) >= minPowerW) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double LogDistanceModel::rxPowerW(const PhyParams& p, Vec2 tx, Vec2 rx) const {
  const double d = std::max(tx.distanceTo(rx), kMinDistanceM);
  const double pr0 = FriisModel::atDistance(p, referenceDistanceM_);
  if (d <= referenceDistanceM_) return pr0;
  return pr0 / std::pow(d / referenceDistanceM_, exponent_);
}

}  // namespace mesh::phy
