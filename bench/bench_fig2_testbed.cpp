// Figure 2, column "Throughput-testbed".
//
// The 8-node Purdue floor (Figure 4) emulated as a time-varying loss
// channel: dashed links lose 40-60%, solid links 0-10%, rates wander over
// time. Two groups: source 2 -> {3, 5}, source 4 -> {1, 7}; CBR 512 B ×
// 20 pkt/s for 400 s, 5 runs ("the same experiment was run five times").
//
// Paper: PP +17.5%, SPP +14%, ETX +8%, METX +7.5%, ETT +7% over ODMRP.
// PP's win is its long EWMA memory: once a dashed link's cost explodes it
// is never picked again, while windowed metrics re-try such links when
// their loss temporarily dips.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::bench;

  // Full scale by default: 8-node runs are cheap.
  harness::BenchOptions options =
      benchOptions(argc, argv, /*defaultTopologies=*/5, /*defaultDurationS=*/400);

  const auto rows = harness::runProtocolComparison(
      harness::figure2Protocols(),
      [](std::uint64_t seed) { return testbedScenario(seed); }, options);

  harness::printNormalizedThroughput(
      "Figure 2 — Throughput-testbed (8-node Purdue floor, normalized to ODMRP)",
      rows);
  harness::printAbsolute("absolute values", rows);
  printPaperReference("Figure 2, Throughput-testbed",
                      "ETT +7%  ETX +8%  METX +7.5%  PP +17.5%  SPP +14%");
  return 0;
}
