#include "mesh/harness/experiment.hpp"

#include <cstdio>
#include <cstdlib>

namespace mesh::harness {

BenchOptions BenchOptions::fromEnvironment(std::size_t defaultTopologies,
                                           std::int64_t defaultDurationS) {
  BenchOptions options;
  options.topologies = defaultTopologies;
  options.duration = SimTime::seconds(defaultDurationS);

  const char* full = std::getenv("MESH_BENCH_FULL");
  const bool forceFull = full != nullptr && full[0] == '1';
  if (forceFull) {
    // Paper scale (Section 4.1): 10 topologies × 400 s.
    options.topologies = 10;
    options.duration = SimTime::seconds(std::int64_t{400});
  } else {
    if (const char* t = std::getenv("MESH_BENCH_TOPOLOGIES")) {
      const long v = std::strtol(t, nullptr, 10);
      if (v > 0) options.topologies = static_cast<std::size_t>(v);
    }
    if (const char* d = std::getenv("MESH_BENCH_DURATION_S")) {
      const long v = std::strtol(d, nullptr, 10);
      if (v > 0) options.duration = SimTime::seconds(std::int64_t{v});
    }
  }
  return options;
}

std::vector<ComparisonRow> runProtocolComparison(
    const std::vector<ProtocolSpec>& protocols,
    const std::function<ScenarioConfig(std::uint64_t topologySeed)>& makeScenario,
    const BenchOptions& options) {
  std::vector<ComparisonRow> rows;
  rows.reserve(protocols.size());
  for (const ProtocolSpec& protocol : protocols) {
    ComparisonRow row;
    row.protocol = protocol;
    row.name = protocol.name();
    rows.push_back(std::move(row));
  }

  for (std::size_t t = 0; t < options.topologies; ++t) {
    const std::uint64_t seed = options.baseSeed + t;
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      ScenarioConfig config = makeScenario(seed);
      config.protocol = protocols[p];
      config.seed = seed;
      if (options.duration > SimTime::zero()) {
        config.duration = options.duration;
        if (config.traffic.stop > config.duration) {
          config.traffic.stop = config.duration;
        }
      }
      if (options.verbose) {
        std::fprintf(stderr, "[bench] topology %zu/%zu  protocol %-6s ...",
                     t + 1, options.topologies, rows[p].name.c_str());
        std::fflush(stderr);
      }
      Simulation sim{std::move(config)};
      const RunResults r = sim.run();
      if (options.verbose) {
        std::fprintf(stderr, " pdr=%.4f delay=%.4fs overhead=%.2f%%\n", r.pdr,
                     r.meanDelayS, r.probeOverheadPct);
      }
      rows[p].pdr.add(r.pdr);
      rows[p].throughputBps.add(r.throughputBps);
      rows[p].delayS.add(r.meanDelayS);
      rows[p].overheadPct.add(r.probeOverheadPct);
      rows[p].controlBytes.add(static_cast<double>(r.controlBytesReceived));
    }
  }
  return rows;
}

std::vector<ProtocolSpec> figure2Protocols(double probeRateScale) {
  return {
      ProtocolSpec::original(),
      ProtocolSpec::with(metrics::MetricKind::Ett, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Etx, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Metx, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Pp, probeRateScale),
      ProtocolSpec::with(metrics::MetricKind::Spp, probeRateScale),
  };
}

}  // namespace mesh::harness
