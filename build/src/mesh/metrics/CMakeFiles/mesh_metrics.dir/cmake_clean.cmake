file(REMOVE_RECURSE
  "CMakeFiles/mesh_metrics.dir/metric.cpp.o"
  "CMakeFiles/mesh_metrics.dir/metric.cpp.o.d"
  "CMakeFiles/mesh_metrics.dir/neighbor_table.cpp.o"
  "CMakeFiles/mesh_metrics.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/mesh_metrics.dir/probe_messages.cpp.o"
  "CMakeFiles/mesh_metrics.dir/probe_messages.cpp.o.d"
  "CMakeFiles/mesh_metrics.dir/probe_service.cpp.o"
  "CMakeFiles/mesh_metrics.dir/probe_service.cpp.o.d"
  "libmesh_metrics.a"
  "libmesh_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
