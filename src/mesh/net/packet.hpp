#pragma once
// Packet: the unit of data exchanged between layers.
//
// A Packet carries serialized bytes plus simulation metadata (a unique id,
// creation time, a coarse kind tag used for byte accounting). Packets are
// immutable once handed to the channel and shared by pointer so that a
// broadcast frame fanning out to twenty receivers copies nothing.
//
// Byte accounting matters: Table 1 reports probe bytes as a percentage of
// data bytes received, so every header contributes its true size.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "mesh/common/simtime.hpp"
#include "mesh/net/addr.hpp"

namespace mesh::net {

// Coarse classification for statistics (what Table 1 and the throughput
// columns count). The wire format carries its own finer-grained types.
enum class PacketKind : std::uint8_t {
  Data = 0,       // application payload (CBR)
  Probe = 1,      // metric probe (single or packet-pair)
  Control = 2,    // ODMRP JOIN QUERY / JOIN REPLY
  MacControl = 3  // RTS / CTS / ACK
};

const char* toString(PacketKind kind);

class Packet;
using PacketPtr = std::shared_ptr<const Packet>;

class Packet {
 public:
  // Creates a packet owning `bytes`. `origin` is the node that *created*
  // the packet (not the current transmitter — that is MAC-level state).
  // `rateHint` pins the MAC's rate choice for this packet (RateTable code;
  // 0 = let the rate controller decide): probes stamped with a lookaround
  // rate must actually transmit at it.
  static PacketPtr make(PacketKind kind, NodeId origin,
                        std::vector<std::uint8_t> bytes, SimTime created,
                        std::uint8_t rateHint = 0) {
    return std::make_shared<const Packet>(PrivateTag{}, kind, origin,
                                          std::move(bytes), created, rateHint);
  }

  struct PrivateTag {};  // make_shared needs a public ctor; keep it unusable
  Packet(PrivateTag, PacketKind kind, NodeId origin,
         std::vector<std::uint8_t> bytes, SimTime created,
         std::uint8_t rateHint = 0)
      : uid_{nextUid()},
        kind_{kind},
        rateHint_{rateHint},
        origin_{origin},
        created_{created},
        bytes_{std::move(bytes)} {}

  std::uint64_t uid() const { return uid_; }
  PacketKind kind() const { return kind_; }
  std::uint8_t rateHint() const { return rateHint_; }
  NodeId origin() const { return origin_; }
  SimTime createdAt() const { return created_; }
  std::size_t sizeBytes() const { return bytes_.size(); }
  std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  static std::uint64_t nextUid() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
  }

  std::uint64_t uid_;
  PacketKind kind_;
  std::uint8_t rateHint_;
  NodeId origin_;
  SimTime created_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace mesh::net
