#pragma once
// Packet: the unit of data exchanged between layers.
//
// A Packet carries serialized bytes plus simulation metadata (a unique id,
// creation time, a coarse kind tag used for byte accounting). Packets are
// immutable once handed to the channel and shared by pointer so that a
// broadcast frame fanning out to twenty receivers copies nothing.
//
// Storage: Packet objects live in PacketPool slots with the payload bytes
// inline after the object (no separate vector), refcounted intrusively via
// PacketPtr (= RefPtr<const Packet>). Writers serialize straight into the
// pooled buffer through build()'s exact-size ByteWriter, and receivers share
// one decode per frame through the view<>() cache — see DESIGN §12.
//
// Byte accounting matters: Table 1 reports probe bytes as a percentage of
// data bytes received, so every header contributes its true size.

#include <cstdint>
#include <new>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "mesh/common/assert.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/buffer.hpp"
#include "mesh/net/pool.hpp"

namespace mesh::net {

// Coarse classification for statistics (what Table 1 and the throughput
// columns count). The wire format carries its own finer-grained types.
enum class PacketKind : std::uint8_t {
  Data = 0,       // application payload (CBR)
  Probe = 1,      // metric probe (single or packet-pair)
  Control = 2,    // ODMRP JOIN QUERY / JOIN REPLY
  MacControl = 3  // RTS / CTS / ACK
};

const char* toString(PacketKind kind);

class Packet;
using PacketPtr = RefPtr<const Packet>;

class Packet {
 public:
  // Serialize-into-slab factory: allocates a pooled packet whose payload is
  // exactly `sizeBytes` long and hands `fill` a fixed-capacity ByteWriter
  // over that buffer. `fill` must write exactly `sizeBytes` bytes (asserted)
  // — message writers know their wire size up front, so no temporary vector
  // is ever built. `origin` is the node that *created* the packet (not the
  // current transmitter — that is MAC-level state). `rateHint` pins the
  // MAC's rate choice for this packet (RateTable code; 0 = let the rate
  // controller decide): probes stamped with a lookaround rate must actually
  // transmit at it.
  template <typename FillFn>
  static PacketPtr build(PacketKind kind, NodeId origin, std::size_t sizeBytes,
                         SimTime created, std::uint8_t rateHint,
                         FillFn&& fill) {
    PacketPool& pool = PacketPool::active();
    void* slot = pool.allocate(sizeof(Packet) + sizeBytes);
    auto* p = new (slot)
        Packet{kind, origin, rateHint, created,
               static_cast<std::uint32_t>(sizeBytes), pool.nextUid()};
    ByteWriter w{std::span<std::uint8_t>{p->payloadData(), sizeBytes}};
    fill(w);
    MESH_ASSERT(w.size() == sizeBytes);
    return PacketPtr::adopt(p);
  }

  // Copying factories for call sites that already hold serialized bytes
  // (tests, cold paths). Same pooled storage underneath.
  static PacketPtr make(PacketKind kind, NodeId origin,
                        std::span<const std::uint8_t> bytes, SimTime created,
                        std::uint8_t rateHint = 0) {
    return build(kind, origin, bytes.size(), created, rateHint,
                 [&](ByteWriter& w) { w.bytes(bytes); });
  }
  static PacketPtr make(PacketKind kind, NodeId origin,
                        std::vector<std::uint8_t> bytes, SimTime created,
                        std::uint8_t rateHint = 0) {
    return make(kind, origin, std::span<const std::uint8_t>{bytes}, created,
                rateHint);
  }

  std::uint64_t uid() const { return uid_; }
  PacketKind kind() const { return kind_; }
  std::uint8_t rateHint() const { return rateHint_; }
  NodeId origin() const { return origin_; }
  SimTime createdAt() const { return created_; }
  std::size_t sizeBytes() const { return size_; }
  std::span<const std::uint8_t> bytes() const {
    return {payloadData(), size_};
  }

  // --- decode-once view cache ----------------------------------------------
  // Parses this packet's bytes at most once per view type V and caches the
  // result in an inline buffer, so a broadcast fanning out to k receivers
  // decodes once instead of k times. `parse` takes the payload bytes and
  // returns std::optional<V>; a failed parse is cached too (nullptr).
  // The cache is logically part of decoding immutable bytes, hence usable
  // through PacketPtr; packets never cross collision domains, so the mutable
  // slots are single-threaded (same argument as the refcount).
  static constexpr std::size_t kViewBytes = 96;

  template <typename V, typename ParseFn>
  const V* view(ParseFn&& parse) const {
    static_assert(sizeof(V) <= kViewBytes,
                  "raise Packet::kViewBytes for this view type");
    static_assert(alignof(V) <= alignof(std::max_align_t));
    const void* tag = viewTagFor<V>();
    if (viewTag_ != tag) {
      destroyView();
      viewTag_ = tag;
      std::optional<V> parsed = parse(bytes());
      if (parsed.has_value()) {
        new (static_cast<void*>(viewBuf_)) V{std::move(*parsed)};
        if constexpr (!std::is_trivially_destructible_v<V>) {
          viewDestroy_ = [](void* p) noexcept { static_cast<V*>(p)->~V(); };
        }
        viewValid_ = true;
      }
    }
    return viewValid_ ? std::launder(reinterpret_cast<const V*>(viewBuf_))
                      : nullptr;
  }

  // --- intrusive refcount (driven by RefPtr) -------------------------------
  void retain() const noexcept { ++refs_; }
  void release() const noexcept {
    if (--refs_ == 0) {
      Packet* self = const_cast<Packet*>(this);
      self->~Packet();
      PacketPool::release(self);
    }
  }

 private:
  Packet(PacketKind kind, NodeId origin, std::uint8_t rateHint,
         SimTime created, std::uint32_t size, std::uint64_t uid)
      : refs_{1},
        size_{size},
        uid_{uid},
        created_{created},
        origin_{origin},
        kind_{kind},
        rateHint_{rateHint} {}
  ~Packet() { destroyView(); }

  // Payload bytes live immediately after the object in the pool slot.
  std::uint8_t* payloadData() {
    return reinterpret_cast<std::uint8_t*>(this + 1);
  }
  const std::uint8_t* payloadData() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }

  template <typename V>
  static const void* viewTagFor() {
    static constexpr char tag = 0;  // unique address per V
    return &tag;
  }

  void destroyView() const noexcept {
    if (viewDestroy_ != nullptr) {
      viewDestroy_(viewBuf_);
      viewDestroy_ = nullptr;
    }
    viewValid_ = false;
    viewTag_ = nullptr;
  }

  mutable std::uint32_t refs_;
  std::uint32_t size_;
  std::uint64_t uid_;
  SimTime created_;
  NodeId origin_;
  PacketKind kind_;
  std::uint8_t rateHint_;
  // View cache (see above). Mutable: decoding is logically const.
  mutable const void* viewTag_{nullptr};
  mutable void (*viewDestroy_)(void*) noexcept {nullptr};
  mutable bool viewValid_{false};
  alignas(alignof(std::max_align_t)) mutable unsigned char viewBuf_[kViewBytes];
};

}  // namespace mesh::net
