#pragma once
// Power and data-rate unit helpers.
//
// The PHY works internally in watts (linear domain) because interference
// accumulation is a sum of powers; configuration and logging use dBm.

#include <cmath>
#include <cstdint>

#include "mesh/common/simtime.hpp"

namespace mesh {

constexpr double kBoltzmann = 1.380649e-23;  // J/K

inline double dbmToWatts(double dbm) { return std::pow(10.0, (dbm - 30.0) / 10.0); }
inline double wattsToDbm(double w) { return 10.0 * std::log10(w) + 30.0; }
inline double dbToLinear(double db) { return std::pow(10.0, db / 10.0); }
inline double linearToDb(double lin) { return 10.0 * std::log10(lin); }

// Time on air for `bytes` of payload at `bitsPerSecond` (payload only; PHY
// preamble/header time is added by the MAC from its PhyTiming).
inline SimTime transmissionTime(std::size_t bytes, double bitsPerSecond) {
  const double seconds = static_cast<double>(bytes) * 8.0 / bitsPerSecond;
  return SimTime::seconds(seconds);
}

// Thermal noise floor in watts for a given bandwidth (Hz) and noise figure (dB).
inline double thermalNoiseWatts(double bandwidthHz, double noiseFigureDb = 10.0,
                                double temperatureK = 290.0) {
  return kBoltzmann * temperatureK * bandwidthHz * dbToLinear(noiseFigureDb);
}

}  // namespace mesh
