// Tests for the traffic layer (CbrSource, MulticastSink) and the harness
// (scenario builder, MeshNode composition, Simulation accounting).

#include <gtest/gtest.h>

#include <set>

#include "mesh/harness/experiment.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/phy/static_link_model.hpp"

namespace mesh::harness {
namespace {

using namespace mesh::time_literals;

ScenarioConfig tinyScenario(ProtocolSpec protocol, std::uint64_t seed = 3) {
  ScenarioConfig config;
  config.nodeCount = 2;
  config.protocol = protocol;
  config.seed = seed;
  config.duration = 60_s;
  config.traffic.start = 10_s;
  config.traffic.stop = 50_s;
  config.groups = {GroupSpec{1, {0}, {1}}};
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(2);
    model->setSymmetric(0, 1, 1e-8);
    return model;
  };
  return config;
}

// ------------------------------------------------------------------- CBR

TEST(CbrSource, SendsAtConfiguredRate) {
  Simulation sim{tinyScenario(ProtocolSpec::original())};
  const auto results = sim.run();
  // 40 s of traffic at 20 pkt/s = 800 packets (first packet phase-shifted).
  EXPECT_NEAR(static_cast<double>(results.packetsSent), 800.0, 2.0);
  const app::CbrSource* cbr = sim.node(0).cbr();
  ASSERT_NE(cbr, nullptr);
  EXPECT_EQ(cbr->packetsSent(), results.packetsSent);
  EXPECT_EQ(cbr->bytesSent(), results.packetsSent * 512);
}

TEST(CbrSource, StopsAtStopTime) {
  ScenarioConfig config = tinyScenario(ProtocolSpec::original());
  config.traffic.stop = 20_s;  // only 10 s of traffic
  Simulation sim{std::move(config)};
  const auto results = sim.run();
  EXPECT_NEAR(static_cast<double>(results.packetsSent), 200.0, 2.0);
}

TEST(MulticastSinkTest, DelayIsPositiveAndSmallOnOneHop) {
  Simulation sim{tinyScenario(ProtocolSpec::original())};
  sim.run();
  const auto& sink = sim.node(1).sink();
  EXPECT_GT(sink.packetsReceived(), 700u);
  EXPECT_GT(sink.delayStats().min(), 0.0);
  // One hop at 2 Mbps: ~2.5 ms airtime + queueing.
  EXPECT_LT(sink.delayStats().mean(), 0.01);
  EXPECT_EQ(sink.payloadBytesReceived(), sink.packetsReceived() * 512);
}

// ------------------------------------------------------------- scenarios

TEST(ScenarioBuilder, PaperScenarioMatchesSection41) {
  const ScenarioConfig config = paperSimulationScenario();
  EXPECT_EQ(config.nodeCount, 50u);
  EXPECT_DOUBLE_EQ(config.areaWidthM, 1000.0);
  EXPECT_DOUBLE_EQ(config.areaHeightM, 1000.0);
  EXPECT_TRUE(config.rayleighFading);
  EXPECT_EQ(config.duration, 400_s);
  EXPECT_EQ(config.traffic.payloadBytes, 512u);
  EXPECT_DOUBLE_EQ(config.traffic.packetsPerSecond, 20.0);
  EXPECT_EQ(config.node.odmrp.memberWindowDelta, 30_ms);
  EXPECT_EQ(config.node.odmrp.dupForwardAlpha, 20_ms);
}

TEST(ScenarioBuilder, RandomGroupsAreDisjointAndComplete) {
  Rng rng{9};
  const auto groups = makeRandomGroups(50, 2, 10, 1, rng);
  ASSERT_EQ(groups.size(), 2u);
  std::set<net::NodeId> seen;
  for (const auto& g : groups) {
    EXPECT_EQ(g.sources.size(), 1u);
    EXPECT_EQ(g.members.size(), 10u);
    for (const auto id : g.sources) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate node role";
    }
    for (const auto id : g.members) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate node role";
      EXPECT_LT(id, 50);
    }
  }
  EXPECT_EQ(groups[0].group, 1);
  EXPECT_EQ(groups[1].group, 2);
}

TEST(ScenarioBuilder, RandomGroupsDeterministicPerSeed) {
  Rng a{4}, b{4}, c{5};
  const auto ga = makeRandomGroups(30, 2, 5, 2, a);
  const auto gb = makeRandomGroups(30, 2, 5, 2, b);
  const auto gc = makeRandomGroups(30, 2, 5, 2, c);
  EXPECT_EQ(ga[0].members, gb[0].members);
  EXPECT_EQ(ga[1].sources, gb[1].sources);
  EXPECT_NE(ga[0].members, gc[0].members);
}

TEST(ScenarioBuilder, ConnectedPlacementIsConnected) {
  // With ensureConnected, every built topology's 250 m disk graph links
  // all nodes; verify via the positions the simulation exposes.
  ScenarioConfig config = paperSimulationScenario();
  config.groups = {GroupSpec{1, {0}, {1}}};
  config.seed = 77;
  Simulation sim{config};
  const auto& positions = sim.positions();
  ASSERT_EQ(positions.size(), 50u);
  // Spot-check: every node has at least one neighbor within 250 m.
  for (std::size_t i = 0; i < positions.size(); ++i) {
    bool hasNeighbor = false;
    for (std::size_t j = 0; j < positions.size() && !hasNeighbor; ++j) {
      if (i != j && positions[i].distanceTo(positions[j]) <= 250.0) {
        hasNeighbor = true;
      }
    }
    EXPECT_TRUE(hasNeighbor) << "node " << i << " is isolated";
  }
}

// ---------------------------------------------------------- composition

TEST(MeshNodeTest, ByteCountersSeparateKinds) {
  ScenarioConfig config = tinyScenario(ProtocolSpec::with(metrics::MetricKind::Etx));
  Simulation sim{std::move(config)};
  sim.run();
  const auto& counters = sim.node(1).byteCounters();
  EXPECT_GT(counters.dataBytesReceived, 0u);
  EXPECT_GT(counters.probeBytesReceived, 0u);
  EXPECT_GT(counters.controlBytesReceived, 0u);
  // Data dwarfs probes at 20 pkt/s vs one probe per 5 s.
  EXPECT_GT(counters.dataBytesReceived, counters.probeBytesReceived * 10);
}

TEST(MeshNodeTest, OriginalProtocolHasNoProbeTraffic) {
  Simulation sim{tinyScenario(ProtocolSpec::original())};
  sim.run();
  EXPECT_EQ(sim.node(0).probes().stats().probesSent, 0u);
  EXPECT_EQ(sim.node(1).byteCounters().probeBytesReceived, 0u);
  EXPECT_EQ(sim.node(0).metric(), nullptr);
}

TEST(MeshNodeTest, MetricVariantWiresNeighborTable) {
  ScenarioConfig config = tinyScenario(ProtocolSpec::with(metrics::MetricKind::Spp));
  Simulation sim{std::move(config)};
  sim.run();
  // After 60 s of 5 s probes both tables know their neighbor well.
  EXPECT_NEAR(sim.node(1).neighborTable().measure(0, 60_s).df, 1.0, 0.11);
  ASSERT_NE(sim.node(0).metric(), nullptr);
  EXPECT_EQ(sim.node(0).metric()->kind(), metrics::MetricKind::Spp);
}

// ------------------------------------------------------------ experiment

TEST(ExperimentRunner, PairsProtocolsOverSameSeeds) {
  BenchOptions options;
  options.topologies = 2;
  options.duration = 40_s;
  options.verbose = false;

  int built = 0;
  std::set<std::uint64_t> seeds;
  const auto rows = runProtocolComparison(
      {ProtocolSpec::original(), ProtocolSpec::with(metrics::MetricKind::Etx)},
      [&](std::uint64_t seed) {
        ++built;
        seeds.insert(seed);
        ScenarioConfig config = tinyScenario(ProtocolSpec::original(), seed);
        config.duration = 40_s;
        config.traffic.stop = 35_s;
        return config;
      },
      options);

  EXPECT_EQ(built, 2);          // once per topology, not per (topology,
                                // protocol) — plans copy the base config
  EXPECT_EQ(seeds.size(), 2u);  // both protocols saw the same seeds
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "ODMRP");
  EXPECT_EQ(rows[1].name, "ETX");
  EXPECT_EQ(rows[0].pdr.count(), 2u);
  EXPECT_GT(rows[0].pdr.mean(), 0.9);
  EXPECT_GT(rows[1].pdr.mean(), 0.9);
}

TEST(ExperimentRunner, EnvDefaultsComeFromArguments) {
  const BenchOptions options = BenchOptions::fromEnvironment(7, 123);
  // (No MESH_BENCH_* set in the test environment.)
  EXPECT_EQ(options.topologies, 7u);
  EXPECT_EQ(options.duration, SimTime::seconds(std::int64_t{123}));
}

TEST(ExperimentRunner, Figure2ProtocolListOrder) {
  const auto protocols = figure2Protocols();
  ASSERT_EQ(protocols.size(), 6u);
  EXPECT_FALSE(protocols[0].metric.has_value());
  EXPECT_EQ(*protocols[1].metric, metrics::MetricKind::Ett);
  EXPECT_EQ(*protocols[5].metric, metrics::MetricKind::Spp);
}

}  // namespace
}  // namespace mesh::harness
