#include "mesh/metrics/probe_messages.hpp"

#include <algorithm>
#include <cmath>

#include "mesh/common/assert.hpp"

namespace mesh::metrics {

std::uint8_t ReportEntry::quantize(double df) {
  const double clamped = std::clamp(df, 0.0, 1.0);
  return static_cast<std::uint8_t>(clamped * 255.0 + 0.5);
}

namespace {
// First byte of the rate extension. Legacy probes pad with zeros, so a
// non-zero marker makes the extension's presence unambiguous to parse().
constexpr std::uint8_t kRateExtMarker = 0xA5;
}  // namespace

void ProbeMessage::writeTo(net::ByteWriter& w) const {
  MESH_REQUIRE(report.size() <= 255);
  MESH_REQUIRE(rateReport.size() <= 255);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(sender);
  w.u32(seq);
  w.u8(static_cast<std::uint8_t>(report.size()));
  for (const ReportEntry& entry : report) {
    w.u16(entry.neighbor);
    w.u8(entry.dfQuantized);
  }
  if (txCode != 0) {
    w.u8(kRateExtMarker);
    w.u8(txCode);
    w.u32(perRateSeq);
    w.u8(static_cast<std::uint8_t>(rateReport.size()));
    for (const rate::RateFeedbackEntry& entry : rateReport) {
      w.u16(entry.neighbor);
      w.u8(entry.code);
      w.u8(entry.dfQ);
    }
  }
  const std::size_t total = wireBytes();
  MESH_ASSERT(w.size() <= total);
  if (w.size() < total) w.zeros(total - w.size());
}

std::vector<std::uint8_t> ProbeMessage::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wireBytes());
  net::ByteWriter w{out};
  writeTo(w);
  return out;
}

std::optional<ProbeMessage> ProbeMessage::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) return std::nullopt;
  net::ByteReader r{bytes};
  ProbeMessage m;
  const std::uint8_t rawType = r.u8();
  if (rawType > static_cast<std::uint8_t>(ProbeType::PairLarge)) return std::nullopt;
  m.type = static_cast<ProbeType>(rawType);
  m.sender = r.u16();
  m.seq = r.u32();
  const std::uint8_t count = r.u8();
  if (r.remaining() < static_cast<std::size_t>(count) * 3) return std::nullopt;
  m.report.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    ReportEntry entry;
    entry.neighbor = r.u16();
    entry.dfQuantized = r.u8();
    m.report.push_back(entry);
  }
  // Optional rate extension; anything else here is legacy zero padding.
  if (r.remaining() >= 7 && bytes[bytes.size() - r.remaining()] == 0xA5) {
    r.skip(1);  // marker
    m.txCode = r.u8();
    if (m.txCode == 0) return std::nullopt;
    m.perRateSeq = r.u32();
    const std::uint8_t rrCount = r.u8();
    if (r.remaining() < static_cast<std::size_t>(rrCount) * 4) {
      return std::nullopt;
    }
    m.rateReport.reserve(rrCount);
    for (std::uint8_t i = 0; i < rrCount; ++i) {
      rate::RateFeedbackEntry entry;
      entry.neighbor = r.u16();
      entry.code = r.u8();
      entry.dfQ = r.u8();
      m.rateReport.push_back(entry);
    }
  }
  return m;
}

}  // namespace mesh::metrics
