# Empty compiler generated dependencies file for campus_webcast.
# This may be replaced when dependencies are built.
