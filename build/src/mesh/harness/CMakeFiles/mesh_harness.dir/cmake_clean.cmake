file(REMOVE_RECURSE
  "CMakeFiles/mesh_harness.dir/config_file.cpp.o"
  "CMakeFiles/mesh_harness.dir/config_file.cpp.o.d"
  "CMakeFiles/mesh_harness.dir/experiment.cpp.o"
  "CMakeFiles/mesh_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/mesh_harness.dir/mesh_node.cpp.o"
  "CMakeFiles/mesh_harness.dir/mesh_node.cpp.o.d"
  "CMakeFiles/mesh_harness.dir/report.cpp.o"
  "CMakeFiles/mesh_harness.dir/report.cpp.o.d"
  "CMakeFiles/mesh_harness.dir/scenario.cpp.o"
  "CMakeFiles/mesh_harness.dir/scenario.cpp.o.d"
  "libmesh_harness.a"
  "libmesh_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
