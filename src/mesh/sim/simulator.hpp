#pragma once
// The discrete-event simulator core (our Glomosim replacement).
//
// A Simulator owns the virtual clock and the pending-event set. Components
// schedule callbacks relative to `now()`; `run()` drains events in
// timestamp order until the horizon, the event set empties, or `stop()`.
//
// The simulator is an explicit object — never a global — so tests and the
// harness can run many independent simulations in one process (the Figure 2
// benches run 60+ back-to-back simulations).

#include <cstdint>
#include <functional>
#include <utility>

#include "mesh/common/assert.hpp"
#include "mesh/common/log.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/sim/event_queue.hpp"

namespace mesh::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule `cb` to run `delay` after now. Negative delays are clamped to
  // zero (fire "immediately", still in deterministic order).
  EventId schedule(SimTime delay, EventQueue::Callback cb) {
    if (delay.isNegative()) delay = SimTime::zero();
    return queue_.push(now_ + delay, std::move(cb));
  }

  // Schedule at an absolute time (must not be in the past).
  EventId scheduleAt(SimTime when, EventQueue::Callback cb) {
    MESH_REQUIRE(when >= now_);
    return queue_.push(when, std::move(cb));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  // Run until the event set drains or the clock would pass `until`.
  // Events scheduled exactly at `until` still fire. Returns the number of
  // events executed.
  std::uint64_t run(SimTime until = SimTime::max()) {
    log::setTimeSource([this] { return now_; });
    running_ = true;
    std::uint64_t executed = 0;
    while (running_ && !queue_.empty()) {
      if (queue_.nextTime() > until) break;
      auto [time, callback] = queue_.pop();
      MESH_ASSERT(time >= now_);
      now_ = time;
      callback();
      ++executed;
    }
    // If we stopped on the horizon, advance the clock to it so that a
    // subsequent run() resumes from a well-defined instant.
    if (running_ && now_ < until && until != SimTime::max()) now_ = until;
    running_ = false;
    log::clearTimeSource();
    eventsExecuted_ += executed;
    return executed;
  }

  // Stop the run loop after the current event returns.
  void stop() { running_ = false; }

  bool hasPendingEvents() const { return !queue_.empty(); }
  std::size_t pendingEventCount() const { return queue_.size(); }
  std::uint64_t eventsExecuted() const { return eventsExecuted_; }

 private:
  EventQueue queue_;
  SimTime now_{SimTime::zero()};
  bool running_{false};
  std::uint64_t eventsExecuted_{0};
};

}  // namespace mesh::sim
