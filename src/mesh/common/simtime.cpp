#include "mesh/common/simtime.hpp"

#include <cinttypes>
#include <cstdio>

namespace mesh {

std::string SimTime::str() const {
  char buf[40];
  const std::int64_t whole = ns_ / 1'000'000'000;
  std::int64_t frac = ns_ % 1'000'000'000;
  if (frac < 0) frac = -frac;
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%09" PRId64 "s", whole, frac);
  return buf;
}

}  // namespace mesh
