file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_multisource.dir/bench_sec43_multisource.cpp.o"
  "CMakeFiles/bench_sec43_multisource.dir/bench_sec43_multisource.cpp.o.d"
  "bench_sec43_multisource"
  "bench_sec43_multisource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_multisource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
