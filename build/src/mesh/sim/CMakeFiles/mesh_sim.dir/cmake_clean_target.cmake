file(REMOVE_RECURSE
  "libmesh_sim.a"
)
