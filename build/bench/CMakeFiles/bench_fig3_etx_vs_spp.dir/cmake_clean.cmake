file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_etx_vs_spp.dir/bench_fig3_etx_vs_spp.cpp.o"
  "CMakeFiles/bench_fig3_etx_vs_spp.dir/bench_fig3_etx_vs_spp.cpp.o.d"
  "bench_fig3_etx_vs_spp"
  "bench_fig3_etx_vs_spp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_etx_vs_spp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
