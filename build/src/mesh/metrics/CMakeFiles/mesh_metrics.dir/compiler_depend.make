# Empty compiler generated dependencies file for mesh_metrics.
# This may be replaced when dependencies are built.
