#pragma once
// RateTable: the set of 802.11b/g transmission rates available to a run,
// with per-rate airtime and SNR→PER curves.
//
// The paper pins the PHY at the 2 Mbps DSSS basic rate; the bandwidth-aware
// metrics it proposes (ETT, PP, METX) only separate from ETX when links can
// run at *different* rates. The table models the classic b/g ladder:
// 1/2/5.5/11 Mbps DSSS behind the 192 µs long preamble and 6–54 Mbps
// ERP-OFDM behind a 26 µs preamble.
//
// The error model is a logistic raw-BER curve per rate,
//   ber(snr) = ½·erfc((snr_dB − mid_dB) / slope_dB),
//   per(snr, bytes) = 1 − (1 − ber)^(8·bytes),
// calibrated to this simulator's SNR scale: a 250 m TwoRay link locks at
// ≈36.6 dB SNR, so the 2 Mbps midpoint sits at 25 dB — lossless across the
// paper's whole 250 m reception range, exactly like the legacy PHY — while
// 54 Mbps needs ≈51 dB (≈110 m) before its PER clears 50%. Midpoints are
// strictly increasing with bitrate inside each modulation family, so PER is
// monotone in both SNR and rate (rate_test pins both properties).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mesh/common/simtime.hpp"
#include "mesh/rate/airtime.hpp"

namespace mesh::rate {

// Which rate ladder a scenario enables. Basic keeps the paper's single
// 2 Mbps entry (the default); Dsss is 802.11b; DsssOfdm is the full b/g set.
enum class RateSetKind : std::uint8_t { Basic = 0, Dsss = 1, DsssOfdm = 2 };

const char* toString(RateSetKind set);
// Accepts "basic"/"2mbps", "b"/"11b", "bg"/"g"/"11bg". Returns false on
// unknown text.
bool rateSetFromString(const char* text, RateSetKind& out);

enum class Modulation : std::uint8_t { Dsss = 0, Ofdm = 1 };

struct RateInfo {
  double bitRateBps;
  Modulation modulation;
  // Logistic raw-BER midpoint (dB) on this simulator's SNR scale.
  double berMidDb;
  const char* name;
};

class RateTable {
 public:
  // Builds the table for `set`. `basicRateBps` selects which entry is the
  // basic/broadcast-control rate (must be present in the set).
  static RateTable forSet(RateSetKind set, double basicRateBps = 2e6);

  // Entries are 1-based: valid codes are 1..size(); 0 is the legacy
  // sentinel and never appears in the table.
  std::uint8_t size() const { return static_cast<std::uint8_t>(entries_.size()); }
  const RateInfo& info(std::uint8_t code) const;
  std::uint8_t basicCode() const { return basic_; }

  SimTime frameAirtime(std::size_t bytes, std::uint8_t code) const;
  // Packet error rate for a frame of `bytes` received at `snrDb`.
  double per(std::uint8_t code, double snrDb, std::size_t bytes) const;

 private:
  std::vector<RateInfo> entries_;
  std::uint8_t basic_{1};
};

}  // namespace mesh::rate
