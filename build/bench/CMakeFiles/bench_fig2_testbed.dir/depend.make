# Empty dependencies file for bench_fig2_testbed.
# This may be replaced when dependencies are built.
