#include "mesh/phy/mobility.hpp"

#include <algorithm>

namespace mesh::phy {

RandomWaypointMobility::RandomWaypointMobility(std::size_t nodeCount,
                                               Params params, Rng rng)
    : params_{params} {
  MESH_REQUIRE(params_.minSpeedMps > 0.0);
  MESH_REQUIRE(params_.maxSpeedMps >= params_.minSpeedMps);
  MESH_REQUIRE(params_.maxPause >= params_.minPause);

  legs_.resize(nodeCount);
  for (std::size_t n = 0; n < nodeCount; ++n) {
    Rng nodeRng = rng.fork("waypoint", n);
    Vec2 here{nodeRng.uniform(0.0, params_.areaWidthM),
              nodeRng.uniform(0.0, params_.areaHeightM)};
    SimTime t = SimTime::zero();
    while (t < params_.horizon) {
      const Vec2 dest{nodeRng.uniform(0.0, params_.areaWidthM),
                      nodeRng.uniform(0.0, params_.areaHeightM)};
      const double speed =
          nodeRng.uniform(params_.minSpeedMps, params_.maxSpeedMps);
      const double distance = here.distanceTo(dest);
      const SimTime travel = SimTime::seconds(distance / speed);
      const SimTime pause = params_.minPause +
                            (params_.maxPause - params_.minPause)
                                .scaled(nodeRng.uniform(0.0, 1.0));
      Leg leg;
      leg.start = t;
      leg.arrive = t + travel;
      leg.departNext = leg.arrive + pause;
      leg.from = here;
      leg.to = dest;
      legs_[n].push_back(leg);
      here = dest;
      t = leg.departNext;
    }
  }
}

Vec2 RandomWaypointMobility::positionAt(net::NodeId node, SimTime at) const {
  MESH_REQUIRE(node < legs_.size());
  const auto& legs = legs_[node];
  MESH_ASSERT(!legs.empty());
  // Find the last leg whose departure is <= at (legs are time-ordered).
  const auto it = std::upper_bound(
      legs.begin(), legs.end(), at,
      [](SimTime t, const Leg& leg) { return t < leg.start; });
  if (it == legs.begin()) return legs.front().from;
  const Leg& leg = *(it - 1);
  if (at >= leg.arrive) return leg.to;  // walking done (possibly pausing)
  const double progress = (at - leg.start).ratio(leg.arrive - leg.start);
  return leg.from + (leg.to - leg.from) * progress;
}

std::vector<Vec2> RandomWaypointMobility::initialPositions() const {
  std::vector<Vec2> out;
  out.reserve(legs_.size());
  for (std::size_t n = 0; n < legs_.size(); ++n) {
    out.push_back(positionAt(static_cast<net::NodeId>(n), SimTime::zero()));
  }
  return out;
}

}  // namespace mesh::phy
