#pragma once
// TxVector: the per-frame transmission parameters handed from the rate
// controller to the PHY.
//
// `code` indexes the run's RateTable (1-based). Code 0 is the *legacy*
// path: airtime comes from PhyParams exactly as before the rate subsystem
// existed and the channel draws no per-frame error — rate_control=fixed
// rides this code everywhere, which is what keeps its traces bit-identical
// to the pre-rate simulator.

#include <cstdint>

namespace mesh::rate {

struct TxVector {
  std::uint8_t code{0};

  bool rateAware() const { return code != 0; }
};

}  // namespace mesh::rate
