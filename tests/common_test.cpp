// Unit tests for mesh/common: SimTime, Rng, Ewma, statistics, Vec2, units.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "mesh/common/ewma.hpp"
#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/common/stats.hpp"
#include "mesh/common/units.hpp"
#include "mesh/common/vec2.hpp"

namespace mesh {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTime, ConstructorsAgree) {
  EXPECT_EQ(SimTime::seconds(std::int64_t{1}).ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::milliseconds(3).ns(), 3'000'000);
  EXPECT_EQ(SimTime::microseconds(std::int64_t{7}).ns(), 7'000);
  EXPECT_EQ(SimTime::nanoseconds(42).ns(), 42);
  EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::seconds(-1.5).ns(), -1'500'000'000);
}

TEST(SimTime, LiteralsAndArithmetic) {
  using namespace time_literals;
  EXPECT_EQ((2_s + 500_ms).ns(), 2'500'000'000);
  EXPECT_EQ((1_s - 1_us).ns(), 999'999'000);
  EXPECT_EQ((10_ms * 3).ns(), 30'000'000);
  EXPECT_EQ((10_ms / 2).ns(), 5'000'000);
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
}

TEST(SimTime, RoundTripSeconds) {
  const SimTime t = SimTime::seconds(123.456789);
  EXPECT_NEAR(t.toSeconds(), 123.456789, 1e-9);
}

TEST(SimTime, ScaledRounds) {
  using namespace time_literals;
  EXPECT_EQ((100_ns).scaled(1.5).ns(), 150);
  EXPECT_EQ((3_ns).scaled(0.5).ns(), 2);  // 1.5 + 0.5 rounds to 2
}

TEST(SimTime, StrFormatsWholeAndFraction) {
  using namespace time_literals;
  EXPECT_EQ((1_s + 500_ms).str(), "1.500000000s");
  EXPECT_EQ(SimTime::zero().str(), "0.000000000s");
}

TEST(SimTime, RatioOfDurations) {
  using namespace time_literals;
  EXPECT_DOUBLE_EQ((3_s).ratio(2_s), 1.5);
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.nextU64() == b.nextU64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsStableAndIndependent) {
  Rng parent{7};
  Rng f1 = parent.fork("fading", 3);
  Rng f2 = Rng{7}.fork("fading", 3);
  EXPECT_EQ(f1.nextU64(), f2.nextU64());
  // A different label or index gives a different stream.
  Rng g = parent.fork("fading", 4);
  Rng h = parent.fork("backoff", 3);
  EXPECT_NE(parent.fork("fading", 3).nextU64(), g.nextU64());
  EXPECT_NE(parent.fork("fading", 3).nextU64(), h.nextU64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a{9}, b{9};
  (void)a.fork("x");
  EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng{13};
  OnlineStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntRangeInclusive) {
  Rng rng{17};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit in 1000 draws
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{19};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng{23};
  OnlineStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, RayleighPowerGainUnitMean) {
  Rng rng{29};
  OnlineStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.rayleighPowerGain());
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
  // P(gain >= 1) = e^-1 for Exp(1).
  int ge1 = 0;
  Rng rng2{31};
  for (int i = 0; i < 100'000; ++i) ge1 += (rng2.rayleighPowerGain() >= 1.0);
  EXPECT_NEAR(ge1 / 100'000.0, std::exp(-1.0), 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng{37};
  OnlineStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

// ------------------------------------------------------------------- Ewma

TEST(Ewma, FirstSampleInitializes) {
  Ewma e{0.9};
  EXPECT_FALSE(e.hasValue());
  e.update(10.0);
  EXPECT_TRUE(e.hasValue());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, PaperWeighting) {
  // Paper: 90% weight to the accumulated average, 10% to the current one.
  Ewma e{0.9};
  e.update(10.0);
  e.update(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.9 * 10.0 + 0.1 * 20.0);
}

TEST(Ewma, ScaleAppliesPenalty) {
  Ewma e{0.9};
  e.update(5.0);
  e.scale(1.2);  // the PP 20% loss penalty
  EXPECT_DOUBLE_EQ(e.value(), 6.0);
}

TEST(Ewma, ScaleBeforeFirstSampleIsNoop) {
  Ewma e{0.9};
  e.scale(1.2);
  EXPECT_FALSE(e.hasValue());
}

TEST(Ewma, RepeatedPenaltyGrowsExponentially) {
  // Section 4.2.1: at high loss rates the PP link cost grows as an
  // exponential function of time. 20 consecutive penalties ≈ 1.2^20.
  Ewma e{0.9};
  e.update(1.0);
  for (int i = 0; i < 20; ++i) e.scale(1.2);
  EXPECT_NEAR(e.value(), std::pow(1.2, 20), 1e-9);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e{0.9};
  for (int i = 0; i < 500; ++i) e.update(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Ewma, ResetClears) {
  Ewma e{0.5};
  e.update(1.0);
  e.reset();
  EXPECT_FALSE(e.hasValue());
  EXPECT_DOUBLE_EQ(e.valueOr(-1.0), -1.0);
}

// ------------------------------------------------------------------ Stats

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  Rng rng{41};
  OnlineStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    if (i % 2 == 0) a.add(x); else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  Rng rng{43};
  OnlineStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95HalfWidth(), large.ci95HalfWidth());
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90.0), 90.1, 1e-9);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.0);
}

// ------------------------------------------------------------------- Vec2

TEST(Vec2, DistanceAndAlgebra) {
  const Vec2 a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.distanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(a.distanceSquaredTo(b), 25.0);
  EXPECT_EQ((a + b), b);
  EXPECT_EQ((b - b), a);
  EXPECT_EQ((b * 2.0), (Vec2{6.0, 8.0}));
  EXPECT_DOUBLE_EQ(b.dot(Vec2{1.0, 1.0}), 7.0);
}

// ------------------------------------------------------------------ Units

TEST(Units, DbmWattsRoundTrip) {
  EXPECT_NEAR(dbmToWatts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbmToWatts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(wattsToDbm(1e-3), 0.0, 1e-9);
  for (double dbm : {-90.0, -30.0, 0.0, 15.0}) {
    EXPECT_NEAR(wattsToDbm(dbmToWatts(dbm)), dbm, 1e-9);
  }
}

TEST(Units, DbLinearRoundTrip) {
  EXPECT_NEAR(dbToLinear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(linearToDb(100.0), 20.0, 1e-12);
}

TEST(Units, TransmissionTime) {
  // 512 bytes at 2 Mbps = 2048 us.
  EXPECT_EQ(transmissionTime(512, 2e6).ns(), 2'048'000);
  // 1 byte at 1 Mbps = 8 us.
  EXPECT_EQ(transmissionTime(1, 1e6).ns(), 8'000);
}

TEST(Units, ThermalNoiseMagnitude) {
  // ~2 MHz bandwidth, 10 dB noise figure: around -100 dBm.
  const double n = thermalNoiseWatts(2e6, 10.0);
  const double dbm = wattsToDbm(n);
  EXPECT_GT(dbm, -115.0);
  EXPECT_LT(dbm, -95.0);
}

}  // namespace
}  // namespace mesh
