#pragma once
// Addressing primitives.
//
// Nodes are identified by a dense 16-bit id (the testbed's IP addresses and
// Glomosim's node numbers both map onto this). Multicast groups get their
// own id space, mirroring the class-D addresses the odmrpd daemon keys on.

#include <cstdint>
#include <functional>

namespace mesh::net {

using NodeId = std::uint16_t;
using GroupId = std::uint16_t;

inline constexpr NodeId kBroadcastNode = 0xFFFF;
inline constexpr NodeId kInvalidNode = 0xFFFE;

// A directed link (transmitter -> receiver); hashable for neighbor tables.
struct LinkKey {
  NodeId from{kInvalidNode};
  NodeId to{kInvalidNode};
  friend constexpr bool operator==(LinkKey, LinkKey) = default;
};

struct LinkKeyHash {
  std::size_t operator()(LinkKey k) const {
    return std::hash<std::uint32_t>{}(
        (static_cast<std::uint32_t>(k.from) << 16) | k.to);
  }
};

}  // namespace mesh::net
