# Empty dependencies file for testbed_floor.
# This may be replaced when dependencies are built.
