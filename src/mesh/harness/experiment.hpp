#pragma once
// Experiment runner: protocol comparisons over common topology sets.
//
// Every evaluation in the paper is "run ODMRP and ODMRP_<metric> over the
// same topologies/workload, then report values normalized to ODMRP". This
// header provides that loop plus the environment knobs that let bench
// binaries run quickly by default and at full paper scale on demand:
//
//   MESH_BENCH_TOPOLOGIES  (default: experiment-specific, paper uses 10)
//   MESH_BENCH_DURATION_S  (default: experiment-specific, paper uses 400)
//   MESH_BENCH_JOBS        (default: hardware_concurrency; 1 = serial)
//   MESH_BENCH_JSONL       (path: write one JSONL record per run)
//   MESH_BENCH_TRACE       (dir: write one packet-lifecycle trace per run)
//
// Set MESH_BENCH_FULL=1 to force the paper-scale defaults.
//
// The comparison sweep executes on the mesh::runner thread pool — one job
// per (topology seed, protocol) cell — with deterministic aggregation:
// results are bit-identical to the serial path for any job count.
// runProtocolComparison() is implemented in src/mesh/runner/sweep.cpp
// (link mesh::mesh or mesh::runner).

#include <functional>
#include <string>
#include <vector>

#include "mesh/common/stats.hpp"
#include "mesh/harness/scenario.hpp"

namespace mesh::harness {

struct BenchOptions {
  std::size_t topologies{10};
  SimTime duration{SimTime::seconds(std::int64_t{400})};
  std::uint64_t baseSeed{1000};
  bool verbose{true};  // progress lines on stderr

  // Worker threads for the sweep: 0 = one per hardware thread,
  // 1 = legacy serial path (run on the calling thread, no pool).
  std::size_t jobs{0};

  // When non-empty, every completed run appends one JSON record (seed,
  // protocol, pdr, throughput, delay, overhead, wall time, ...) here.
  std::string jsonlPath;

  // When non-empty, every run writes a packet-lifecycle trace into this
  // directory (created on demand). File names are derived from the run's
  // (topology, protocol, seed) cell, so parallel sweeps never collide and
  // re-running the same sweep overwrites deterministically.
  std::string traceDir;

  // Topology-snapshot cache (DESIGN §14): build each topology seed's
  // immutable world once and share it across that seed's protocol runs.
  // Results are byte-identical either way; off restores rebuild-every-run
  // for A/B timing and bisection. The MESH_TOPOLOGY_CACHE environment
  // variable ("on"/"off") overrides this knob at sweep time, and
  // MESH_TOPOLOGY_CACHE_MB bounds resident snapshot memory (default 512).
  bool topologyCache{true};

  // Applies MESH_BENCH_* environment overrides on top of the given
  // defaults (which should be the paper-scale values).
  static BenchOptions fromEnvironment(std::size_t defaultTopologies = 10,
                                      std::int64_t defaultDurationS = 400);
};

// Per-protocol aggregation across topologies.
struct ComparisonRow {
  ProtocolSpec protocol;
  std::string name;
  OnlineStats pdr;
  OnlineStats throughputBps;
  OnlineStats delayS;
  OnlineStats overheadPct;
  OnlineStats controlBytes;
};

// Runs each protocol over `options.topologies` topologies. The scenario
// factory receives the topology seed and returns a fully-specified
// scenario (groups, traffic, duration); the runner fills in the protocol.
// All protocols see identical topology seeds — paired comparison, like
// the paper's normalization.
//
// The factory is always invoked on the calling thread, once per topology
// seed in topology order, before any simulation starts (its output is
// copied per protocol cell); only the simulations themselves run on pool
// workers. A run that throws is reported on stderr and excluded from the
// aggregates instead of aborting the sweep.
std::vector<ComparisonRow> runProtocolComparison(
    const std::vector<ProtocolSpec>& protocols,
    const std::function<ScenarioConfig(std::uint64_t topologySeed)>& makeScenario,
    const BenchOptions& options);

// The protocol list of Figure 2: original ODMRP first (the normalization
// baseline), then the five metrics in the paper's legend order.
std::vector<ProtocolSpec> figure2Protocols(double probeRateScale = 1.0);

}  // namespace mesh::harness
