#include "mesh/net/packet.hpp"

namespace mesh::net {

const char* toString(PacketKind kind) {
  switch (kind) {
    case PacketKind::Data: return "data";
    case PacketKind::Probe: return "probe";
    case PacketKind::Control: return "control";
    case PacketKind::MacControl: return "mac-control";
  }
  return "unknown";
}

}  // namespace mesh::net
