#pragma once
// Job descriptions for the parallel experiment runner.
//
// A RunPlan is one fully-specified simulation run — one (topology seed,
// protocol) cell of a comparison sweep — built eagerly on the submitting
// thread so scenario factories never execute concurrently. A RunRecord is
// the outcome: the simulation's aggregate results plus per-run telemetry
// (wall clock, event count) and, when the run threw, the captured error.

#include <cstddef>
#include <cstdint>
#include <string>

#include "mesh/harness/scenario.hpp"

namespace mesh::runner {

struct RunPlan {
  std::size_t topologyIndex{0};
  std::size_t protocolIndex{0};
  std::uint64_t seed{0};
  std::string protocolName;
  harness::ScenarioConfig config;  // protocol/seed/duration already applied
};

struct RunRecord {
  std::size_t topologyIndex{0};
  std::size_t protocolIndex{0};
  std::uint64_t seed{0};
  std::string protocolName;

  bool ok{false};
  std::string error;  // what() of the escaped exception when !ok

  // Path of the packet-lifecycle trace this run exported (empty when
  // tracing was off). Echoed into the JSONL record so `meshtrace verify`
  // can join each result row to its trace.
  std::string tracePath;

  harness::RunResults results;  // zeroed when !ok

  // Telemetry.
  double wallSeconds{0.0};
  std::uint64_t eventsExecuted{0};
  // World-construction time (Simulation ctor: placement, channel plan,
  // reachability builds or snapshot adoption) — the share the topology
  // snapshot cache amortizes. Subset of wallSeconds.
  double setupSeconds{0.0};
  // How this run obtained its world: "built" (constructed from scratch and
  // published to the cache), "reused" (adopted a cached snapshot), or
  // "off" (cache disabled or scenario ineligible).
  std::string snapshot{"off"};
};

}  // namespace mesh::runner
