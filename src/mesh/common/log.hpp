#pragma once
// Minimal leveled logger.
//
// Log lines are prefixed with the current simulation time when a time
// source has been registered (the Simulator registers itself). Logging is
// off by default (Warn level) so experiment runs stay quiet; tests and the
// examples raise the level explicitly or via MESH_LOG=debug|trace.
//
// Thread safety: the level is atomic, the time source is thread-local
// (each parallel-sweep worker runs its own Simulator, which installs its
// own clock), and sink writes are line-buffered and serialized by a mutex
// so interleaved worker logs stay readable.

#include <cstdarg>
#include <functional>

#include "mesh/common/simtime.hpp"

namespace mesh::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

void setLevel(Level level);
Level level();

// Reads MESH_LOG from the environment ("trace", "debug", "info", ...).
void initFromEnvironment();

// The simulator installs a time source so every line carries sim time.
// The source is per-thread: it only affects log calls made on the
// installing thread.
void setTimeSource(std::function<SimTime()> source);
void clearTimeSource();

bool enabled(Level level);
void vwrite(Level level, const char* component, const char* fmt, std::va_list args);
void write(Level level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace mesh::log

#define MESH_LOG_AT(lvl, component, ...)                        \
  do {                                                          \
    if (::mesh::log::enabled(lvl)) {                            \
      ::mesh::log::write(lvl, component, __VA_ARGS__);          \
    }                                                           \
  } while (0)

#define MESH_TRACE(component, ...) MESH_LOG_AT(::mesh::log::Level::Trace, component, __VA_ARGS__)
#define MESH_DEBUG(component, ...) MESH_LOG_AT(::mesh::log::Level::Debug, component, __VA_ARGS__)
#define MESH_INFO(component, ...)  MESH_LOG_AT(::mesh::log::Level::Info, component, __VA_ARGS__)
#define MESH_WARN(component, ...)  MESH_LOG_AT(::mesh::log::Level::Warn, component, __VA_ARGS__)
#define MESH_ERROR(component, ...) MESH_LOG_AT(::mesh::log::Level::Error, component, __VA_ARGS__)
