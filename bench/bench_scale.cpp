// Engineering bench — the simulator past the paper's 50-node scale.
//
// The paper stops at 50 nodes (Section 4.1); the spatial channel index
// (DESIGN §8.5) exists so the same per-node density can be pushed to 500+
// nodes without the O(n²) reachability build dominating. This bench runs
// ODMRP and ODMRP_SPP at 50 / 200 / 500 nodes with the area scaled to
// keep the paper's 50 nodes/km² density, and reports protocol metrics so
// a sane PDR at 500 nodes is part of the perf story, not assumed.
//
// Quick by default (1 topology × 40 s). MESH_BENCH_* overrides apply;
// MESH_SPATIAL_INDEX=off reruns the sweep on the O(n²) path for an
// end-to-end A/B.

#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::bench;

  const harness::BenchOptions options = benchOptions(argc, argv, 1, 40);

  const std::size_t nodeCounts[] = {50, 200, 500};

  std::printf("Engineering — ODMRP vs ODMRP_SPP at constant density, scaled node count\n");
  std::printf("%6s  %10s  %12s  %10s  %12s\n", "nodes", "ODMRP pdr",
              "ODMRP thrpt", "SPP pdr", "SPP thrpt");
  for (const std::size_t n : nodeCounts) {
    const auto rows = harness::runProtocolComparison(
        {harness::ProtocolSpec::original(),
         harness::ProtocolSpec::with(metrics::MetricKind::Spp)},
        [n](std::uint64_t seed) {
          harness::ScenarioConfig config = harness::scaledSimulationScenario(n);
          config.seed = seed;
          config.traffic.start = SimTime::seconds(std::int64_t{5});
          Rng groupRng = Rng{seed}.fork("groups");
          config.groups =
              harness::makeRandomGroups(config.nodeCount, 2, 10, 1, groupRng);
          return config;
        },
        options);
    std::printf("%6zu  %10.4f  %10.0f b/s  %10.4f  %10.0f b/s\n", n,
                rows[0].pdr.mean(), rows[0].throughputBps.mean(),
                rows[1].pdr.mean(), rows[1].throughputBps.mean());
  }
  // Multi-channel extension (DESIGN §11): the same footprint packed to 3x
  // the paper's density, carried by one shared channel vs. three
  // orthogonal collision domains. Groups are striped per channel
  // (channel-local multicast) and identical in both runs, so the offered
  // load matches; the single channel has to absorb every JOIN-QUERY flood
  // and CBR frame in one collision domain while channels=3 splits them
  // across independent domains driven by parallel domain workers. The
  // delivered-throughput gap is the subsystem's reason to exist.
  const std::size_t denseCounts[] = {2000, 5000};
  std::printf(
      "\nMulti-channel — 3x density footprint, 1 vs 3 orthogonal channels "
      "(ODMRP_SPP)\n");
  std::printf("%6s  %12s  %10s  %12s  %10s\n", "nodes", "1ch thrpt",
              "1ch pdr", "3ch thrpt", "3ch pdr");
  for (const std::size_t n : denseCounts) {
    const auto denseScenario = [n](std::size_t channels) {
      return [n, channels](std::uint64_t seed) {
        harness::ScenarioConfig config = harness::scaledSimulationScenario(n);
        // Shrink the area by the channel budget: each of the 3 collision
        // domains then sits at the paper's 50 nodes/km².
        config.areaWidthM /= std::sqrt(3.0);
        config.areaHeightM /= std::sqrt(3.0);
        config.seed = seed;
        config.channels = channels;
        config.domainWorkers = channels;
        config.traffic.start = SimTime::seconds(std::int64_t{5});
        Rng groupRng = Rng{seed}.fork("groups");
        config.groups =
            harness::makeStripedGroups(config.nodeCount, 3, 1, 10, 1, groupRng);
        return config;
      };
    };
    const std::vector<harness::ProtocolSpec> spp = {
        harness::ProtocolSpec::with(metrics::MetricKind::Spp)};
    const auto one = harness::runProtocolComparison(spp, denseScenario(1), options);
    const auto three =
        harness::runProtocolComparison(spp, denseScenario(3), options);
    std::printf("%6zu  %10.0f b/s  %10.4f  %10.0f b/s  %10.4f\n", n,
                one[0].throughputBps.mean(), one[0].pdr.mean(),
                three[0].throughputBps.mean(), three[0].pdr.mean());
  }
  // Cross-domain gateways (DESIGN §13): the same 3x-density footprint, but
  // the groups now *span* the domains (drawn over the whole id space, so
  // roughly 2/3 of every group's members sit on a foreign channel). Three
  // rows: one shared channel (every frame contends in one domain), three
  // sealed domains (foreign members are unreachable — PDR caps at the
  // intra-domain fraction), and three domains bridged by boundary-selected
  // gateways relaying at the epoch barriers. The bridged row must beat the
  // sealed row decisively (it reaches foreign members at all — measured
  // ~4x delivered throughput at 5000 nodes). The shared-channel row is the
  // honest upper bound on this fully-global workload: every gateway
  // re-injects every captured flood frame into every foreign domain, so
  // the relay funnels roughly the global control load through 12 nodes —
  // closing that gap (handoff filtering, more gateways) is the top
  // ROADMAP open item, and the row is printed so progress is visible.
  {
    const std::size_t n = 5000;
    const auto spanningScenario = [n](std::size_t channels,
                                      std::size_t gateways) {
      return [n, channels, gateways](std::uint64_t seed) {
        harness::ScenarioConfig config = harness::scaledSimulationScenario(n);
        config.areaWidthM /= std::sqrt(3.0);
        config.areaHeightM /= std::sqrt(3.0);
        config.seed = seed;
        config.channels = channels;
        config.domainWorkers = channels;
        config.gateways = gateways;
        config.gatewaySelect = gateway::GatewaySelect::Boundary;
        config.traffic.start = SimTime::seconds(std::int64_t{5});
        Rng groupRng = Rng{seed}.fork("spangroups");
        config.groups =
            harness::makeRandomGroups(config.nodeCount, 3, 10, 1, groupRng);
        return config;
      };
    };
    const std::vector<harness::ProtocolSpec> spp = {
        harness::ProtocolSpec::with(metrics::MetricKind::Spp)};
    const auto oneCh = harness::runProtocolComparison(
        spp, spanningScenario(1, 0), options);
    const auto sealed = harness::runProtocolComparison(
        spp, spanningScenario(3, 0), options);
    const auto bridged = harness::runProtocolComparison(
        spp, spanningScenario(3, 12), options);
    std::printf(
        "\nGateways — %zu nodes at 3x density, domain-spanning groups "
        "(ODMRP_SPP)\n", n);
    std::printf("%22s  %10s  %12s\n", "variant", "pdr", "thrpt");
    std::printf("%22s  %10.4f  %10.0f b/s\n", "1 channel",
                oneCh[0].pdr.mean(), oneCh[0].throughputBps.mean());
    std::printf("%22s  %10.4f  %10.0f b/s\n", "3 channels, sealed",
                sealed[0].pdr.mean(), sealed[0].throughputBps.mean());
    std::printf("%22s  %10.4f  %10.0f b/s\n", "3 channels + gateways",
                bridged[0].pdr.mean(), bridged[0].throughputBps.mean());
  }
  printPaperReference(
      "Section 4.1 (scale extension)",
      "the paper's density is 50 nodes/km²; at 500 nodes the mesh spans "
      "~3.2 km × 3.2 km and multicast routes cross many more hops, so PDR "
      "below the 50-node value is expected — it must stay well above zero; "
      "the multi-channel rows must show channels=3 delivering measurably "
      "more than channels=1 at the same dense footprint");
  return 0;
}
