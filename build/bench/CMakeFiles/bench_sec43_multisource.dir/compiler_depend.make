# Empty compiler generated dependencies file for bench_sec43_multisource.
# This may be replaced when dependencies are built.
