#include "mesh/runner/result_sink.hpp"

#include <cinttypes>
#include <filesystem>
#include <stdexcept>

namespace mesh::runner {
namespace {

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendField(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.17g", key, value);
  out += buf;
}

void appendField(std::string& out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, key, value);
  out += buf;
}

}  // namespace

JsonlResultSink::JsonlResultSink(const std::string& path) {
  // Create missing parent directories up front: "--jsonl out/x.jsonl" with
  // no out/ used to die on fopen with a bare errno. Creation failures fall
  // through to the fopen error below, which names the path.
  const std::filesystem::path parent =
      std::filesystem::path{path}.parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open JSONL result file: " + path);
  }
}

JsonlResultSink::~JsonlResultSink() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string JsonlResultSink::toJson(const RunRecord& record) {
  std::string line;
  line.reserve(320);
  line += '{';
  appendField(line, "topology", static_cast<std::uint64_t>(record.topologyIndex));
  line += ',';
  appendField(line, "protocol_index",
              static_cast<std::uint64_t>(record.protocolIndex));
  line += ",\"protocol\":\"";
  appendEscaped(line, record.protocolName);
  line += "\",";
  appendField(line, "seed", record.seed);
  line += record.ok ? ",\"ok\":true," : ",\"ok\":false,";
  appendField(line, "pdr", record.results.pdr);
  line += ',';
  appendField(line, "throughput_bps", record.results.throughputBps);
  line += ',';
  appendField(line, "delay_s", record.results.meanDelayS);
  line += ',';
  appendField(line, "overhead_pct", record.results.probeOverheadPct);
  line += ',';
  appendField(line, "packets_sent", record.results.packetsSent);
  line += ',';
  appendField(line, "packets_delivered", record.results.packetsDelivered);
  line += ',';
  appendField(line, "control_bytes", record.results.controlBytesReceived);
  line += ',';
  appendField(line, "events", record.eventsExecuted);
  line += ',';
  appendField(line, "wall_s", record.wallSeconds);
  line += ',';
  // End-to-end engine throughput, so trajectory files track simulator
  // speed alongside protocol metrics. 0 when the clock saw no time pass.
  appendField(line, "events_per_sec",
              record.wallSeconds > 0.0
                  ? static_cast<double>(record.eventsExecuted) / record.wallSeconds
                  : 0.0);
  // Topology-snapshot telemetry (DESIGN §14): world-construction time and
  // whether this run built, reused, or bypassed the shared snapshot.
  line += ',';
  appendField(line, "setup_seconds", record.setupSeconds);
  line += ",\"snapshot\":\"";
  appendEscaped(line, record.snapshot);
  line += '"';
  // Churn metrics (all zero on fault-free runs). Always present so every
  // trajectory row of a failure-rate sweep has the same schema.
  line += ',';
  appendField(line, "faults", record.results.faultsApplied);
  line += ',';
  appendField(line, "faults_cleared", record.results.faultsCleared);
  line += ',';
  appendField(line, "fault_window_s", record.results.faultWindowS);
  line += ',';
  appendField(line, "pdr_in_window", record.results.inWindowPdr);
  line += ',';
  appendField(line, "pdr_out_window", record.results.outWindowPdr);
  line += ',';
  appendField(line, "overhead_inflation", record.results.overheadInflation);
  line += ',';
  appendField(line, "ttr_s", record.results.meanTimeToRepairS);
  line += ',';
  appendField(line, "repairs", record.results.repairsObserved);
  line += ',';
  appendField(line, "repairs_unresolved", record.results.repairsUnresolved);
  // Per-collision-domain counters, present only on multi-channel runs.
  // Flat ch<k>_* keys so the line stays a one-level object for the
  // flat-JSON scanners (`meshtrace verify` cross-checks these against the
  // trace's channel-tagged records).
  if (!record.results.channelFrames.empty()) {
    line += ',';
    appendField(line, "channels",
                static_cast<std::uint64_t>(record.results.channelFrames.size()));
    for (std::size_t k = 0; k < record.results.channelFrames.size(); ++k) {
      char key[48];
      std::snprintf(key, sizeof key, "ch%zu_frames", k);
      line += ',';
      appendField(line, key, record.results.channelFrames[k]);
      std::snprintf(key, sizeof key, "ch%zu_delivered", k);
      line += ',';
      appendField(line, key,
                  k < record.results.channelDelivered.size()
                      ? record.results.channelDelivered[k]
                      : std::uint64_t{0});
    }
  }
  // Gateway relay totals, present only when the run configured gateways.
  // Same flat-key convention as ch<k>_*: per-gateway handoff counts plus
  // the residual frames still staged when the run ended (`meshtrace
  // verify` cross-checks handoff_frames against gateway_handoff records).
  if (record.results.gatewayCount > 0) {
    line += ',';
    appendField(line, "gateways", record.results.gatewayCount);
    line += ',';
    appendField(line, "handoff_frames", record.results.handoffFrames);
    for (const auto& gw : record.results.gatewayStats) {
      char key[48];
      std::snprintf(key, sizeof key, "gw%u_handoff",
                    static_cast<unsigned>(gw.node));
      line += ',';
      appendField(line, key, gw.injected);
      std::snprintf(key, sizeof key, "gw%u_residual",
                    static_cast<unsigned>(gw.node));
      line += ',';
      appendField(line, key, gw.residual);
    }
  }
  if (!record.tracePath.empty()) {
    line += ",\"trace\":\"";
    appendEscaped(line, record.tracePath);
    line += '"';
  }
  if (!record.error.empty()) {
    line += ",\"error\":\"";
    appendEscaped(line, record.error);
    line += '"';
  }
  line += '}';
  return line;
}

void JsonlResultSink::write(const RunRecord& record) {
  std::string line = toJson(record);
  if (!extra_.empty()) {
    // Splice the caller's raw fields before the closing brace.
    line.back() = ',';
    line += extra_;
    line += '}';
  }
  line += '\n';
  std::lock_guard<std::mutex> lock{mutex_};
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);  // trajectory files are tailed while sweeps run
}

}  // namespace mesh::runner
