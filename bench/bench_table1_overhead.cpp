// Table 1 — comparative probing overhead.
//
// "Percentage of bytes from probe packets out of the total number of data
// bytes received", measured over the Throughput-simulations scenario.
//
// Paper: ETT 3.03, ETX 0.66, METX 0.61, PP 2.54, SPP 0.53.
//
// The ~5x gap between the packet-pair metrics (PP, ETT) and the
// single-probe metrics (ETX, METX, SPP) follows from the probe schedule:
// (137+1137) B / 10 s versus 137 B / 5 s.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::bench;

  const harness::BenchOptions options =
      benchOptions(argc, argv, kQuickTopologies, kQuickDurationS);

  const auto rows = harness::runProtocolComparison(
      harness::figure2Protocols(),
      [](std::uint64_t seed) { return simulationScenario(seed); }, options);

  harness::printOverheadTable("Table 1 — probing overhead (%)", rows);
  printPaperReference("Table 1",
                      "ETT 3.03  ETX 0.66  METX 0.61  PP 2.54  SPP 0.53");
  return 0;
}
