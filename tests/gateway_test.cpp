// Cross-domain gateway subsystem (robustness tier).
//
// Pins the gateway contracts:
//  * selection strategies are pure functions (RNG-free) with the documented
//    shapes — every-k striping, explicit sort+dedup, greedy boundary cover;
//  * a multicast group spanning two collision domains delivers packets
//    *only* when gateways are configured (the tentpole acceptance);
//  * gateway runs are byte-identical across domain worker counts, handoff
//    counters agree between the relay, the trace and the JSONL row;
//  * gateways=0 keeps the multi-channel path byte-identical to the
//    gateway-less simulator, and channels=1 ignores gateways entirely.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/channelplan/channel_plan.hpp"
#include "mesh/gateway/gateway_set.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/trace/replay.hpp"
#include "mesh/trace/trace_reader.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// GatewaySet selection

TEST(GatewaySet, SelectNamesRoundTrip) {
  gateway::GatewaySelect select;
  EXPECT_TRUE(gateway::gatewaySelectFromString("every-k", select));
  EXPECT_EQ(select, gateway::GatewaySelect::EveryK);
  EXPECT_TRUE(gateway::gatewaySelectFromString("boundary", select));
  EXPECT_EQ(select, gateway::GatewaySelect::Boundary);
  EXPECT_TRUE(gateway::gatewaySelectFromString("explicit", select));
  EXPECT_EQ(select, gateway::GatewaySelect::Explicit);
  EXPECT_FALSE(gateway::gatewaySelectFromString("bogus", select));
  EXPECT_STREQ(gateway::toString(gateway::GatewaySelect::Boundary), "boundary");
}

TEST(GatewaySet, EveryKStripesTheIdSpace) {
  const std::vector<Vec2> positions(10, Vec2{0.0, 0.0});
  const channelplan::ChannelPlan plan = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::Static, 2, positions, 250.0);
  const gateway::GatewaySet set = gateway::makeGatewaySet(
      gateway::GatewaySelect::EveryK, 4, {}, plan, positions, 250.0);
  EXPECT_EQ(set.nodes, (std::vector<net::NodeId>{0, 2, 5, 7}));
}

TEST(GatewaySet, ExplicitSortsAndDeduplicates) {
  const std::vector<Vec2> positions(10, Vec2{0.0, 0.0});
  const channelplan::ChannelPlan plan = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::Static, 2, positions, 250.0);
  const gateway::GatewaySet set = gateway::makeGatewaySet(
      gateway::GatewaySelect::Explicit, 0, {7, 3, 7, 1}, plan, positions,
      250.0);
  EXPECT_EQ(set.select, gateway::GatewaySelect::Explicit);
  EXPECT_EQ(set.nodes, (std::vector<net::NodeId>{1, 3, 7}));
}

TEST(GatewaySet, BoundaryPicksNodesWhereDomainsMeet) {
  // Two clusters 600 m apart, one bridge node between them. Static (id%2)
  // assignment interleaves channels inside each cluster, so every node has
  // cross-channel neighbors — but node 8 sits mid-gap and bridges both
  // clusters, giving it the largest cross-domain neighborhood.
  std::vector<Vec2> positions;
  for (int i = 0; i < 4; ++i) {
    positions.push_back(Vec2{static_cast<double>(i) * 30.0, 0.0});  // 0..3
  }
  for (int i = 0; i < 4; ++i) {
    positions.push_back(Vec2{700.0 + static_cast<double>(i) * 30.0, 0.0});
  }
  positions.push_back(Vec2{395.0, 0.0});  // node 8: within 250 m of no one?
  // Move the clusters so node 8 reaches the nearest member of each.
  positions[3] = Vec2{200.0, 0.0};
  positions[4] = Vec2{590.0, 0.0};
  const channelplan::ChannelPlan plan = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::Static, 2, positions, 250.0);
  const gateway::GatewaySet a = gateway::makeGatewaySet(
      gateway::GatewaySelect::Boundary, 3, {}, plan, positions, 250.0);
  const gateway::GatewaySet b = gateway::makeGatewaySet(
      gateway::GatewaySelect::Boundary, 3, {}, plan, positions, 250.0);
  // Pure function of geometry: identical across invocations.
  EXPECT_EQ(a.nodes, b.nodes);
  ASSERT_EQ(a.nodes.size(), 3u);
  // Ascending and in range.
  for (std::size_t i = 1; i < a.nodes.size(); ++i) {
    EXPECT_LT(a.nodes[i - 1], a.nodes[i]);
  }
  // Every selected gateway actually has a cross-channel neighbor.
  for (const net::NodeId g : a.nodes) {
    bool cross = false;
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (j == g) continue;
      if (plan.channelOf(static_cast<net::NodeId>(j)) == plan.channelOf(g)) {
        continue;
      }
      if (positions[g].distanceSquaredTo(positions[j]) <= 250.0 * 250.0) {
        cross = true;
        break;
      }
    }
    EXPECT_TRUE(cross) << "gateway " << g << " bridges nothing";
  }
}

// ---------------------------------------------------------------------------
// Spanning-group delivery: the tentpole acceptance.

// A small two-channel mesh with one group whose source sits on channel 0
// and whose members all sit on channel 1. Without gateways the domains are
// hermetically sealed and PDR is exactly zero; with gateways the JOIN
// flood, the replies and the data all cross at the epoch barriers.
harness::ScenarioConfig spanningScenario(std::uint64_t seed) {
  harness::ScenarioConfig config = harness::scaledSimulationScenario(60);
  // Keep each domain's subgraph at the paper's density (see the
  // multichannel tests for the same adjustment).
  config.areaWidthM /= std::sqrt(2.0);
  config.areaHeightM /= std::sqrt(2.0);
  config.seed = seed;
  config.channels = 2;
  config.duration = 20_s;
  config.traffic.payloadBytes = 256;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 2_s;
  config.traffic.stop = 20_s;
  config.protocol = harness::ProtocolSpec::original();
  harness::GroupSpec group;
  group.group = 1;
  group.sources = {0};  // channel 0 under the Static (id mod 2) plan
  group.members = {1, 3, 5, 7, 9, 11, 13, 15};  // all channel 1
  config.groups = {group};
  return config;
}

TEST(GatewayDelivery, SpanningGroupDeliversOnlyWithGateways) {
  harness::ScenarioConfig sealed = spanningScenario(71);
  ASSERT_EQ(sealed.gateways, 0u);
  harness::Simulation sealedSim{sealed};
  const harness::RunResults without = sealedSim.run();
  EXPECT_GT(without.packetsSent, 0u);
  EXPECT_EQ(without.packetsDelivered, 0u);
  EXPECT_EQ(without.pdr, 0.0);
  EXPECT_EQ(without.gatewayCount, 0u);
  EXPECT_EQ(without.handoffFrames, 0u);

  harness::ScenarioConfig bridged = spanningScenario(71);
  bridged.gateways = 6;
  bridged.gatewaySelect = gateway::GatewaySelect::Boundary;
  harness::Simulation bridgedSim{bridged};
  EXPECT_EQ(bridgedSim.gatewaySet().nodes.size(), 6u);
  const harness::RunResults with = bridgedSim.run();
  EXPECT_EQ(with.gatewayCount, 6u);
  EXPECT_GT(with.handoffFrames, 0u);
  EXPECT_GT(with.packetsDelivered, 0u);
  EXPECT_GT(with.pdr, 0.0);
  // Per-gateway counters are consistent: injected sums to the total.
  std::uint64_t injected = 0;
  for (const gateway::GatewayCounters& gw : with.gatewayStats) {
    injected += gw.injected;
  }
  EXPECT_EQ(injected, with.handoffFrames);
}

TEST(GatewayDelivery, SingleChannelIgnoresGateways) {
  harness::ScenarioConfig config = spanningScenario(72);
  config.channels = 1;
  config.gateways = 4;
  harness::Simulation sim{config};
  const harness::RunResults results = sim.run();
  EXPECT_EQ(results.gatewayCount, 0u);
  EXPECT_EQ(results.handoffFrames, 0u);
  EXPECT_EQ(sim.gatewayRelay(), nullptr);
  EXPECT_GT(results.packetsDelivered, 0u);  // one domain: no seal
}

// ---------------------------------------------------------------------------
// Determinism

harness::ScenarioConfig gatewayDeterminismScenario(std::uint64_t seed) {
  harness::ScenarioConfig config = harness::scaledSimulationScenario(90);
  config.areaWidthM /= std::sqrt(3.0);
  config.areaHeightM /= std::sqrt(3.0);
  config.seed = seed;
  config.channels = 3;
  config.duration = 8_s;
  config.traffic.payloadBytes = 256;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 2_s;
  config.traffic.stop = 8_s;
  config.protocol = harness::ProtocolSpec::with(metrics::MetricKind::Spp);
  // Spanning groups: drawn over the whole id space, so membership crosses
  // the Static (id mod 3) domains and traffic must ride the gateways.
  Rng groupRng = Rng{seed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 2, 8, 1, groupRng);
  config.gateways = 6;
  config.gatewaySelect = gateway::GatewaySelect::Boundary;
  return config;
}

TEST(GatewayDeterminism, WorkerCountDoesNotChangeRunBytes) {
  const std::string dir = ::testing::TempDir();
  const auto runWith = [&](std::size_t workers, const std::string& tracePath) {
    harness::ScenarioConfig config = gatewayDeterminismScenario(9500);
    config.domainWorkers = workers;
    config.tracePath = tracePath;
    harness::Simulation sim{config};
    return sim.run();
  };

  const std::string trace1 = dir + "/gw_w1.trace.jsonl";
  const std::string trace2 = dir + "/gw_w2.trace.jsonl";
  const std::string trace4 = dir + "/gw_w4.trace.jsonl";
  const harness::RunResults w1 = runWith(1, trace1);
  const harness::RunResults w2 = runWith(2, trace2);
  const harness::RunResults w4 = runWith(4, trace4);

  EXPECT_GT(w1.handoffFrames, 0u);
  for (const harness::RunResults* r : {&w2, &w4}) {
    EXPECT_EQ(w1.packetsSent, r->packetsSent);
    EXPECT_EQ(w1.packetsDelivered, r->packetsDelivered);
    EXPECT_EQ(w1.pdr, r->pdr);
    EXPECT_EQ(w1.meanDelayS, r->meanDelayS);
    EXPECT_EQ(w1.eventsExecuted, r->eventsExecuted);
    EXPECT_EQ(w1.handoffFrames, r->handoffFrames);
    ASSERT_EQ(w1.gatewayStats.size(), r->gatewayStats.size());
    for (std::size_t i = 0; i < w1.gatewayStats.size(); ++i) {
      EXPECT_EQ(w1.gatewayStats[i].node, r->gatewayStats[i].node);
      EXPECT_EQ(w1.gatewayStats[i].captured, r->gatewayStats[i].captured);
      EXPECT_EQ(w1.gatewayStats[i].injected, r->gatewayStats[i].injected);
      EXPECT_EQ(w1.gatewayStats[i].residual, r->gatewayStats[i].residual);
    }
  }

  const std::string bytes1 = slurp(trace1);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_TRUE(bytes1 == slurp(trace2)) << "workers=2 gateway trace diverged";
  EXPECT_TRUE(bytes1 == slurp(trace4)) << "workers=4 gateway trace diverged";
  EXPECT_NE(bytes1.find("\"ev\":\"gateway_handoff\""), std::string::npos);

  // The trace replay agrees with the relay's own accounting, total and per
  // gateway — the `meshtrace summary` path.
  trace::TraceReadResult read = trace::readTraceFile(trace1);
  ASSERT_TRUE(read.trace) << read.error;
  const trace::TraceSummary summary = trace::summarizeTrace(*read.trace);
  EXPECT_EQ(summary.handoffFrames, w1.handoffFrames);
  EXPECT_EQ(summary.deliversWithoutBirth, 0u);
  for (const gateway::GatewayCounters& gw : w1.gatewayStats) {
    const auto it = summary.handoffPerGateway.find(gw.node);
    const std::uint64_t traced =
        it != summary.handoffPerGateway.end() ? it->second : 0;
    EXPECT_EQ(traced, gw.injected) << "gateway " << gw.node;
  }

  std::remove(trace1.c_str());
  std::remove(trace2.c_str());
  std::remove(trace4.c_str());
}

TEST(GatewayDeterminism, ZeroGatewaysIsByteIdenticalToGatewaylessPath) {
  const std::string dir = ::testing::TempDir();
  const auto runWith = [&](std::size_t gateways, const std::string& tracePath) {
    harness::ScenarioConfig config = gatewayDeterminismScenario(9600);
    config.gateways = gateways;
    config.tracePath = tracePath;
    harness::Simulation sim{config};
    return sim.run();
  };
  const std::string traceOff = dir + "/gw_off.trace.jsonl";
  const std::string traceOff2 = dir + "/gw_off2.trace.jsonl";
  const harness::RunResults off = runWith(0, traceOff);
  const harness::RunResults off2 = runWith(0, traceOff2);
  EXPECT_EQ(off.gatewayCount, 0u);
  EXPECT_EQ(off.handoffFrames, 0u);
  EXPECT_EQ(off.packetsDelivered, off2.packetsDelivered);
  const std::string bytes = slurp(traceOff);
  ASSERT_FALSE(bytes.empty());
  EXPECT_TRUE(bytes == slurp(traceOff2));
  // No gateway machinery leaks into the trace.
  EXPECT_EQ(bytes.find("gateway_handoff"), std::string::npos);
  std::remove(traceOff.c_str());
  std::remove(traceOff2.c_str());
}

}  // namespace
}  // namespace mesh
