// Quickstart: simulate a small wireless mesh running multicast with a
// high-throughput routing metric, in ~30 lines of API use.
//
//   $ ./quickstart
//
// Builds a 20-node random mesh (TwoRay propagation + Rayleigh fading, the
// paper's Section 4.1 radio model), joins five members to one multicast
// group, attaches a CBR source, and runs ODMRP enhanced with the SPP
// metric for 120 simulated seconds.

#include <cstdio>

#include "mesh/harness/scenario.hpp"

int main() {
  using namespace mesh;
  using namespace mesh::harness;

  ScenarioConfig config;
  config.nodeCount = 20;
  config.areaWidthM = 600.0;
  config.areaHeightM = 600.0;
  config.rayleighFading = true;
  config.duration = SimTime::seconds(std::int64_t{120});
  config.seed = 7;

  // One multicast group: node 0 streams, nodes 10..14 listen.
  GroupSpec group;
  group.group = 1;
  group.sources = {0};
  group.members = {10, 11, 12, 13, 14};
  config.groups = {group};

  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 20.0;
  config.traffic.start = SimTime::seconds(std::int64_t{20});
  config.traffic.stop = SimTime::seconds(std::int64_t{120});

  // Pick the routing metric: SPP (Success Probability Product) chooses the
  // path a broadcast packet is most likely to survive end-to-end.
  config.protocol = ProtocolSpec::with(metrics::MetricKind::Spp);

  Simulation sim{config};
  const RunResults results = sim.run();

  std::printf("quickstart: 20-node mesh, 1 group, ODMRP_SPP\n");
  std::printf("  packets sent        : %llu\n",
              static_cast<unsigned long long>(results.packetsSent));
  std::printf("  deliveries expected : %llu\n",
              static_cast<unsigned long long>(results.expectedDeliveries));
  std::printf("  deliveries observed : %llu\n",
              static_cast<unsigned long long>(results.packetsDelivered));
  std::printf("  packet delivery     : %.1f%%\n", results.pdr * 100.0);
  std::printf("  goodput             : %.1f kbps\n", results.throughputBps / 1e3);
  std::printf("  mean delay          : %.2f ms\n", results.meanDelayS * 1e3);
  std::printf("  probe overhead      : %.2f%% of data bytes\n",
              results.probeOverheadPct);

  std::printf("\nper-receiver view:\n");
  for (const net::NodeId member : group.members) {
    const auto& sink = sim.node(member).sink();
    std::printf("  node %-2u received %llu packets (mean delay %.2f ms)\n",
                member,
                static_cast<unsigned long long>(sink.packetsReceived()),
                sink.delayStats().mean() * 1e3);
  }
  return 0;
}
