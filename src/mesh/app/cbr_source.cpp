#include "mesh/app/cbr_source.hpp"

#include "mesh/common/assert.hpp"

namespace mesh::app {

CbrSource::CbrSource(sim::Simulator& simulator,
                     net::MulticastProtocol& protocol, CbrConfig config,
                     Rng rng)
    : simulator_{simulator},
      protocol_{protocol},
      config_{config},
      rng_{rng},
      startTimer_{simulator},
      sendTimer_{simulator} {
  MESH_REQUIRE(config_.packetsPerSecond > 0.0);
  MESH_REQUIRE(config_.stop > config_.start);
  payload_.assign(config_.payloadBytes, 0xC5);
}

void CbrSource::start() {
  const SimTime queryStart =
      config_.start > config_.routeWarmup ? config_.start - config_.routeWarmup
                                          : SimTime::zero();
  // The ODMRP source role begins with the warmup so the first data packets
  // find a forwarding group in place.
  simulator_.schedule(queryStart - simulator_.now(),
                      [this] { protocol_.startSource(config_.group); });

  const SimTime period = SimTime::seconds(1.0 / config_.packetsPerSecond);
  // Small random phase so multiple sources interleave rather than slam the
  // medium in lockstep.
  const SimTime phase = period.scaled(rng_.uniform(0.0, 1.0));
  startTimer_.start(config_.start + phase - simulator_.now(), [this, period] {
    sendOne();
    sendTimer_.startFixed(period, period, [this] {
      if (simulator_.now() > config_.stop) {
        sendTimer_.stop();
        return;
      }
      sendOne();
    });
  });
}

void CbrSource::sendOne() {
  protocol_.sendData(config_.group, payload_);
  ++packetsSent_;
  bytesSent_ += config_.payloadBytes;
}

}  // namespace mesh::app
