#include "mesh/gateway/gateway_relay.hpp"

#include <algorithm>
#include <utility>

#include "mesh/common/assert.hpp"

namespace mesh::gateway {

GatewayRelay::GatewayRelay(std::vector<DomainContext> domains)
    : domains_{std::move(domains)},
      staged_(domains_.size()),
      seq_(domains_.size(), 0) {
  MESH_REQUIRE(domains_.size() >= 2);
  for (const DomainContext& ctx : domains_) {
    MESH_REQUIRE(ctx.sim != nullptr && ctx.channel != nullptr);
  }
}

std::size_t GatewayRelay::addGateway(net::NodeId node, std::size_t home,
                                     const phy::PhyParams& phyParams,
                                     const mac::MacParams& macParams, Rng rng,
                                     InjectFn inject) {
  MESH_REQUIRE(home < domains_.size());
  const std::size_t index = gateways_.size();
  gateways_.emplace_back();
  Gateway& gw = gateways_.back();
  gw.node = node;
  gw.home = home;
  gw.inject = std::move(inject);
  gw.counters.node = node;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    if (d == home) continue;
    Port port;
    port.domain = d;
    port.radio =
        std::make_unique<phy::Radio>(*domains_[d].sim, node, phyParams);
    port.radio->setTrace(domains_[d].trace);
    domains_[d].channel->attach(*port.radio);
    port.mac = std::make_unique<mac::Mac80211>(*domains_[d].sim, *port.radio,
                                               macParams, rng.fork("port", d));
    port.mac->setTrace(domains_[d].trace);
    port.mac->setReceiveCallback(
        [this, index, d](const net::PacketPtr& payload, net::NodeId from) {
          captureInbound(index, d, payload, from);
        });
    gw.ports.push_back(std::move(port));
  }
  return index;
}

void GatewayRelay::captureOutbound(std::size_t gatewayIndex,
                                   const net::PacketPtr& packet) {
  Gateway& gw = gateways_[gatewayIndex];
  if (gw.ports.empty() || packet == nullptr) return;
  const std::size_t src = gw.home;
  Staged staged;
  staged.at = domains_[src].sim->now();
  staged.seq = seq_[src]++;
  staged.gateway = static_cast<std::uint32_t>(gatewayIndex);
  staged.srcDomain = static_cast<std::uint32_t>(src);
  staged.inbound = false;
  staged.packet = packet;
  staged_[src].push_back(std::move(staged));
}

void GatewayRelay::captureInbound(std::size_t gatewayIndex, std::size_t domain,
                                  const net::PacketPtr& packet,
                                  net::NodeId from) {
  Gateway& gw = gateways_[gatewayIndex];
  if (packet == nullptr) return;
  Staged staged;
  staged.at = domains_[domain].sim->now();
  staged.seq = seq_[domain]++;
  staged.gateway = static_cast<std::uint32_t>(gatewayIndex);
  staged.srcDomain = static_cast<std::uint32_t>(domain);
  staged.inbound = true;
  staged.from = from;
  staged.packet = packet;
  staged_[domain].push_back(std::move(staged));
}

void GatewayRelay::drainAtBarrier() {
  drain_.clear();
  for (std::vector<Staged>& lane : staged_) {
    for (Staged& staged : lane) drain_.push_back(std::move(staged));
    lane.clear();
  }
  if (drain_.empty()) return;
  // Per-gateway capture counts are tallied here rather than in the capture
  // callbacks: a gateway's home tap and its foreign-domain ports run on
  // different domain worker threads, so incrementing the shared counter at
  // capture time would race. The barrier thread sees every staged frame
  // exactly once (frames never drained show up as residual in counters()),
  // so the totals are identical.
  for (const Staged& staged : drain_) {
    ++gateways_[staged.gateway].counters.captured;
  }
  // Each lane is already (at, seq)-sorted (domain clocks are monotone);
  // the global order is the documented (time, domain, seq) merge.
  std::sort(drain_.begin(), drain_.end(),
            [](const Staged& a, const Staged& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.srcDomain != b.srcDomain) return a.srcDomain < b.srcDomain;
              return a.seq < b.seq;
            });
  for (const Staged& staged : drain_) injectStaged(staged);
  // Injections may have re-staged frames (a relayed packet the home stack
  // forwards on); those stay queued for the next barrier. Release the
  // drained packets back to their source pools now, on the barrier thread
  // (workers joined, so the non-atomic refcounts are safe).
  drain_.clear();
}

void GatewayRelay::injectStaged(const Staged& staged) {
  Gateway& gw = gateways_[staged.gateway];
  const DomainContext& src = domains_[staged.srcDomain];
  const std::uint32_t srcPid =
      src.trace != nullptr ? src.trace->pidFor(*staged.packet) : 0;
  if (staged.inbound) {
    injectInto(gw, gw.home, staged, srcPid, nullptr);
  } else {
    for (Port& port : gw.ports) {
      injectInto(gw, port.domain, staged, srcPid, &port);
    }
  }
}

void GatewayRelay::injectInto(Gateway& gateway, std::size_t dst,
                              const Staged& staged, std::uint32_t srcPid,
                              Port* port) {
  const DomainContext& ctx = domains_[dst];
  // Barrier callbacks run outside any Simulator run scope, so install the
  // destination pool explicitly: the rebuild below and anything the
  // injection triggers synchronously (a MAC with immediate channel access
  // serializes a PHY frame; the home stack may forward) must allocate from
  // the destination domain's slabs.
  net::PacketPool* prev = nullptr;
  if (ctx.pool != nullptr) prev = net::PacketPool::setCurrent(ctx.pool);
  {
    const net::Packet& pkt = *staged.packet;
    net::PacketPtr rebuilt = net::Packet::make(
        pkt.kind(), pkt.origin(), pkt.bytes(), pkt.createdAt(), pkt.rateHint());
    if (ctx.trace != nullptr) {
      ctx.trace->gatewayHandoff(ctx.sim->now(), gateway.node, *rebuilt,
                                static_cast<std::uint8_t>(staged.srcDomain),
                                srcPid);
    }
    if (port != nullptr) {
      port->mac->send(std::move(rebuilt), net::kBroadcastNode);
    } else {
      gateway.inject(rebuilt, staged.from);
    }
    ++gateway.counters.injected;
  }
  if (ctx.pool != nullptr) net::PacketPool::setCurrent(prev);
}

void GatewayRelay::registerPortCounters(std::size_t domain,
                                        trace::CounterRegistry& registry,
                                        bool rateAware) const {
  for (const Gateway& gw : gateways_) {
    for (const Port& port : gw.ports) {
      if (port.domain != domain) continue;
      const phy::RadioStats& phy = port.radio->stats();
      registry.add("phy.frames_sent", &phy.framesSent);
      registry.add("phy.frames_delivered", &phy.framesDelivered);
      registry.add("phy.frames_corrupted", &phy.framesCorrupted);
      registry.add("phy.frames_below_threshold", &phy.framesBelowThreshold);
      registry.add("phy.frames_missed_busy", &phy.framesMissedBusy);
      registry.add("phy.bytes_sent", &phy.bytesSent);
      registry.add("phy.bytes_delivered", &phy.bytesDelivered);
      if (rateAware) {
        registry.add("phy.frames_rate_corrupted", &phy.framesRateCorrupted);
      }
      const mac::MacStats& mac = port.mac->stats();
      registry.add("mac.enqueued", &mac.enqueued);
      registry.add("mac.queue_tail_drops", &mac.queueDrops);
      registry.add("mac.queue_tail_drops.data", &mac.queueDropsData);
      registry.add("mac.queue_tail_drops.probe", &mac.queueDropsProbe);
      registry.add("mac.queue_tail_drops.control", &mac.queueDropsControl);
      registry.add("mac.broadcast_sent", &mac.broadcastSent);
      registry.add("mac.unicast_sent", &mac.unicastSent);
      registry.add("mac.retries", &mac.retries);
      registry.add("mac.retry_drops", &mac.retryDrops);
      registry.add("mac.cts_timeouts", &mac.ctsTimeouts);
      registry.add("mac.ack_timeouts", &mac.ackTimeouts);
      registry.add("mac.delivered", &mac.delivered);
      registry.add("mac.dup_suppressed", &mac.dupSuppressed);
    }
  }
}

std::uint64_t GatewayRelay::totalInjected() const {
  std::uint64_t total = 0;
  for (const Gateway& gw : gateways_) total += gw.counters.injected;
  return total;
}

std::vector<GatewayCounters> GatewayRelay::counters() const {
  std::vector<GatewayCounters> out;
  out.reserve(gateways_.size());
  for (const Gateway& gw : gateways_) out.push_back(gw.counters);
  for (const std::vector<Staged>& lane : staged_) {
    for (const Staged& staged : lane) {
      // Still-staged frames were captured but never drained, so they are
      // counted into both totals here (drained frames were counted at the
      // barrier).
      ++out[staged.gateway].captured;
      ++out[staged.gateway].residual;
    }
  }
  return out;
}

}  // namespace mesh::gateway
