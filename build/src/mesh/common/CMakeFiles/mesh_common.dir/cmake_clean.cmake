file(REMOVE_RECURSE
  "CMakeFiles/mesh_common.dir/log.cpp.o"
  "CMakeFiles/mesh_common.dir/log.cpp.o.d"
  "CMakeFiles/mesh_common.dir/simtime.cpp.o"
  "CMakeFiles/mesh_common.dir/simtime.cpp.o.d"
  "libmesh_common.a"
  "libmesh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
