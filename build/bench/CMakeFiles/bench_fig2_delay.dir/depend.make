# Empty dependencies file for bench_fig2_delay.
# This may be replaced when dependencies are built.
