// §4.1 — sensitivity to the δ (member best-query window) and α (duplicate
// forwarding window) parameters.
//
// The paper: "we found using much higher values of α and δ can yield an
// additional 3-4% throughput improvement. However, the optimal values of
// α and δ are functions of the network size, and automatically determining
// such values is part of our future work."
//
// Larger windows buy the member more path diversity to choose from (more
// duplicate queries arrive in time) at the cost of query-processing
// overhead and route-setup latency.

#include "bench_common.hpp"

int main() {
  using namespace mesh;
  using namespace mesh::bench;

  const harness::BenchOptions options =
      harness::BenchOptions::fromEnvironment(kQuickTopologies, kQuickDurationS);

  struct Window {
    std::int64_t deltaMs;
    std::int64_t alphaMs;
  };
  const Window windows[] = {{30, 20}, {100, 70}, {300, 200}};

  // One shared baseline (original ODMRP ignores δ/α).
  const auto baseline = harness::runProtocolComparison(
      {harness::ProtocolSpec::original()},
      [](std::uint64_t seed) { return simulationScenario(seed); }, options);
  const double odmrpPdr = baseline[0].pdr.mean();

  std::printf("Section 4.1 — δ/α window sweep (ODMRP_SPP, normalized to ODMRP)\n");
  std::printf("%-18s  %10s  %12s  %14s\n", "delta/alpha", "PDR", "normalized",
              "dup queries fwd");
  for (const Window w : windows) {
    const auto rows = harness::runProtocolComparison(
        {harness::ProtocolSpec::with(metrics::MetricKind::Spp)},
        [w](std::uint64_t seed) {
          harness::ScenarioConfig config = simulationScenario(seed);
          config.node.odmrp.memberWindowDelta = SimTime::milliseconds(w.deltaMs);
          config.node.odmrp.dupForwardAlpha = SimTime::milliseconds(w.alphaMs);
          return config;
        },
        options);
    std::printf("%5lld ms / %3lld ms  %10.4f  %12.3f  %14s\n",
                static_cast<long long>(w.deltaMs),
                static_cast<long long>(w.alphaMs), rows[0].pdr.mean(),
                odmrpPdr > 0 ? rows[0].pdr.mean() / odmrpPdr : 0.0, "-");
  }
  printPaperReference("Section 4.1",
                      "much higher alpha/delta yield an additional ~3-4% throughput");
  return 0;
}
