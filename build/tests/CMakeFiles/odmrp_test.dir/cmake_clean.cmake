file(REMOVE_RECURSE
  "CMakeFiles/odmrp_test.dir/odmrp_test.cpp.o"
  "CMakeFiles/odmrp_test.dir/odmrp_test.cpp.o.d"
  "odmrp_test"
  "odmrp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odmrp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
