#pragma once
// TreeMulticast: a tree-based on-demand multicast protocol (MAODV-
// inspired), used to validate the paper's Section 4.3 claim that the
// high-throughput metrics "continue to be effective in multicast
// protocols that are tree-based such as MAODV".
//
// Like MAODV, the protocol maintains a source-rooted delivery tree and
// has *no* forwarding redundancy: a node forwards a source's data only if
// it lies on the currently selected reply path for that (group, source),
// and the role expires after a single refresh round unless renewed. This
// is the structural opposite of ODMRP's forwarding-group mesh (which
// aggregates per *group* and persists for three rounds) — and exactly the
// regime where bad path choices cannot be papered over by redundancy, so
// link-quality metrics matter most.
//
// The on-demand machinery reuses ODMRP's wire formats (TREE QUERY =
// JOIN QUERY, TREE REPLY = JOIN REPLY): both protocols flood a cost-
// accumulating query and return a reply along the chosen upstream, so the
// formats coincide; only the forwarding-state semantics differ. Full
// MAODV (group leaders, group hellos, tree pruning/grafting for mobility)
// is out of scope: nodes here are static, which is the mesh-network
// premise of the paper.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/metrics/neighbor_table.hpp"
#include "mesh/net/multicast_protocol.hpp"
#include "mesh/odmrp/dup_cache.hpp"
#include "mesh/odmrp/messages.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/sim/timer.hpp"
#include "mesh/trace/trace_event.hpp"

namespace mesh::trace {
class TraceCollector;
}

namespace mesh::maodv {

struct TreeParams {
  SimTime queryInterval{SimTime::seconds(std::int64_t{3})};
  // Tree membership lives one round (+ slack for the refresh jitter).
  SimTime forwarderTimeout{SimTime::seconds(std::int64_t{4})};
  SimTime memberWindowDelta{SimTime::milliseconds(30)};
  SimTime dupForwardAlpha{SimTime::milliseconds(20)};
  SimTime queryJitterMax{SimTime::milliseconds(10)};
  SimTime replyJitterMax{SimTime::milliseconds(4)};
  SimTime dataJitterMax{SimTime::milliseconds(1)};
  std::uint8_t maxHops{32};
};

class TreeMulticast final : public net::MulticastProtocol {
 public:
  TreeMulticast(sim::Simulator& simulator, net::NodeId self, TreeParams params,
                const metrics::Metric* metric,
                const metrics::NeighborTable* neighbors, SendFn send, Rng rng);

  TreeMulticast(const TreeMulticast&) = delete;
  TreeMulticast& operator=(const TreeMulticast&) = delete;

  net::NodeId nodeId() const override { return self_; }

  void joinGroup(net::GroupId group) override;
  void leaveGroup(net::GroupId group) override { members_.erase(group); }
  bool isMember(net::GroupId group) const override {
    return members_.contains(group);
  }

  void startSource(net::GroupId group) override;
  void stopSource(net::GroupId group) override;

  void sendData(net::GroupId group, std::span<const std::uint8_t> payload) override;
  void setDeliverCallback(DeliverFn cb) override { deliver_ = std::move(cb); }

  void onPacket(const net::PacketPtr& packet, net::NodeId from) override;

  void setTrace(trace::TraceCollector* collector) override {
    trace_ = collector;
  }

  // True if on the tree of *any* source of the group right now.
  bool isForwarder(net::GroupId group) const override;
  bool isTreeForwarder(net::GroupId group, net::NodeId source) const;

  const net::ProtocolStats& stats() const override { return stats_; }
  const std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash>&
  dataEdgeCounts() const override {
    return dataEdges_;
  }

 private:
  struct RoundState {
    std::uint32_t seq{0};
    bool valid{false};
    double bestCost{0.0};
    net::NodeId upstream{net::kInvalidNode};
    SimTime alphaDeadline{SimTime::zero()};
    bool treeReplySent{false};
    bool memberReplySent{false};
  };

  static std::uint32_t key(net::GroupId group, net::NodeId source) {
    return (static_cast<std::uint32_t>(group) << 16) | source;
  }

  void originateQuery(net::GroupId group);
  void handleQuery(const odmrp::JoinQuery& query, const net::PacketPtr& packet,
                   net::NodeId from);
  void handleReply(const odmrp::JoinReply& reply, net::NodeId from);
  void handleData(const net::PacketPtr& packet, net::NodeId from);
  void forwardQuery(const odmrp::JoinQuery& received, double newCost,
                    bool duplicate);
  void sendMemberReply(net::GroupId group, net::NodeId source);
  void sendControl(net::PacketPtr packet, SimTime jitterMax);
  void traceDrop(const net::PacketPtr& packet, trace::DropReason reason);

  sim::Simulator& simulator_;
  net::NodeId self_;
  TreeParams params_;
  const metrics::Metric* metric_;
  const metrics::NeighborTable* neighbors_;
  SendFn send_;
  DeliverFn deliver_;
  trace::TraceCollector* trace_{nullptr};
  Rng rng_;

  std::unordered_set<net::GroupId> members_;
  // Tree membership is per (group, source) — the tree-vs-mesh distinction.
  std::unordered_map<std::uint32_t, SimTime> treeExpiry_;
  std::unordered_map<std::uint32_t, RoundState> rounds_;
  odmrp::DupCache dataDupCache_;
  std::unordered_map<net::GroupId, std::uint32_t> dataSeq_;
  std::unordered_map<net::GroupId, std::uint32_t> querySeq_;
  std::unordered_map<net::GroupId, std::unique_ptr<sim::PeriodicTimer>> queryTimers_;
  std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash> dataEdges_;

  net::ProtocolStats stats_;
};

}  // namespace mesh::maodv
