// Extension — Figure 2 under multi-rate PHY + rate adaptation.
//
// The paper's premise for ETT/PP/METX is that links run at *different*
// bandwidths, yet its own evaluation pins every radio at 2 Mbps — where
// bandwidth-aware metrics cannot separate from ETX. This bench re-runs the
// Figure 2 / Table 1 protocol comparison once per rate-control policy:
//
//   fixed     the paper's single-rate baseline (bit-identical to fig2)
//   minstrel  Minstrel-style sampling over the 802.11b/g ladder
//   genie     the SNR oracle — the rate-adaptation upper bound
//
// Under minstrel/genie, short links carry frames at up to 54 Mbps while
// long links stay near the basic rate, so per-link airtime finally varies
// — the regime ETT and PP were designed for. Expect the metric ranking to
// diverge from the single-rate ETX ordering. One JSONL record per run when
// --jsonl is given; every row carries a `rate_control` tag.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "mesh/common/stats.hpp"
#include "mesh/rate/rate_controller.hpp"
#include "mesh/rate/rate_table.hpp"
#include "mesh/runner/result_sink.hpp"
#include "mesh/runner/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::bench;

  harness::BenchOptions options =
      benchOptions(argc, argv, kQuickTopologies, kQuickDurationS);

  // One sink across the whole sweep: the constructor truncates, so opening
  // it per policy would keep only the last policy's rows.
  std::unique_ptr<runner::JsonlResultSink> sink;
  if (!options.jsonlPath.empty()) {
    sink = std::make_unique<runner::JsonlResultSink>(options.jsonlPath);
    options.jsonlPath.clear();
  }
  const std::string traceRoot = options.traceDir;

  const rate::ControlKind policies[] = {
      rate::ControlKind::Fixed, rate::ControlKind::Minstrel,
      rate::ControlKind::Genie};
  const std::vector<harness::ProtocolSpec> protocols =
      harness::figure2Protocols();

  std::printf("Extension — Figure 2 per rate-control policy (802.11b/g)\n");
  std::printf("%-10s  %-8s  %8s  %12s  %8s  %8s\n", "protocol", "policy",
              "pdr", "tput_bps", "delay_s", "ovh_pct");
  for (const rate::ControlKind policy : policies) {
    if (sink != nullptr) {
      char extra[48];
      std::snprintf(extra, sizeof extra, "\"rate_control\":\"%s\"",
                    rate::toString(policy));
      sink->setExtra(extra);
    }
    if (!traceRoot.empty()) {
      // Per-policy subdirectory: trace names are keyed by (topology,
      // protocol, seed) only, identical across policies.
      options.traceDir = traceRoot + "/" + rate::toString(policy);
    }

    const runner::SweepReport report = runner::runComparisonSweep(
        protocols,
        [policy](std::uint64_t seed) {
          harness::ScenarioConfig config = simulationScenario(seed);
          config.rateControl = policy;
          // `fixed` keeps the Basic set: the untouched single-rate
          // baseline. The adaptive policies get the full b/g ladder.
          if (policy != rate::ControlKind::Fixed) {
            config.rateSet = rate::RateSetKind::DsssOfdm;
          }
          return config;
        },
        options, sink.get());

    for (std::size_t p = 0; p < protocols.size(); ++p) {
      OnlineStats pdr, tput, delay, overhead;
      for (const runner::RunRecord& record : report.records) {
        if (!record.ok || record.protocolIndex != p) continue;
        pdr.add(record.results.pdr);
        tput.add(record.results.throughputBps);
        delay.add(record.results.meanDelayS);
        overhead.add(record.results.probeOverheadPct);
      }
      std::printf("%-10s  %-8s  %8.4f  %12.0f  %8.4f  %8.2f\n",
                  protocols[p].name().c_str(), rate::toString(policy),
                  pdr.mean(), tput.mean(), delay.mean(), overhead.mean());
    }
  }
  printPaperReference(
      "Figure 2 / Section 6 (multi-rate motivation)",
      "with rate adaptation on, per-link bandwidth varies, so the "
      "bandwidth-aware metrics (ETT, PP, METX) should reorder relative to "
      "ETX; under `fixed` the table must reproduce Figure 2 exactly");
  return 0;
}
