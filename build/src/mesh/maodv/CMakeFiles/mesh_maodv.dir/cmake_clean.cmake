file(REMOVE_RECURSE
  "CMakeFiles/mesh_maodv.dir/tree_multicast.cpp.o"
  "CMakeFiles/mesh_maodv.dir/tree_multicast.cpp.o.d"
  "libmesh_maodv.a"
  "libmesh_maodv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_maodv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
