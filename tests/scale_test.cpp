// 500-node determinism (robustness tier).
//
// The spatial channel index exists so the simulator can run 10× past the
// paper's 50-node scale; this file pins down that the scale path is still
// deterministic end to end:
//  * the same 500-node scenario run twice in-process produces identical
//    aggregates, event counts, and trace bytes;
//  * a comparison sweep over 500-node topologies yields bit-identical
//    aggregates and trace bytes at --jobs 1 and --jobs 4.
//
// Durations are short (a few simulated seconds) — the point is draw-order
// and fold determinism at scale, not protocol performance. These tests run
// under the `robustness` ctest label (minutes-scale budget).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/harness/experiment.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/runner/sweep.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A 500-node scenario kept short enough for a test: the paper's density
// (area side scales with sqrt(n)), two groups, light traffic.
harness::ScenarioConfig scaleScenario(std::uint64_t topologySeed) {
  harness::ScenarioConfig config = harness::scaledSimulationScenario(500);
  config.seed = topologySeed;
  config.duration = 8_s;
  config.traffic.payloadBytes = 256;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 2_s;
  config.traffic.stop = 8_s;
  Rng groupRng = Rng{topologySeed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 2, 10, 1, groupRng);
  return config;
}

TEST(ScaleDeterminism, SameScenarioTwiceIsBitIdentical) {
  const std::string dir = ::testing::TempDir();
  const auto runOnce = [&](const std::string& tracePath) {
    harness::ScenarioConfig config = scaleScenario(9001);
    config.protocol = harness::ProtocolSpec::with(metrics::MetricKind::Spp);
    config.tracePath = tracePath;
    harness::Simulation sim{config};
    const harness::RunResults results = sim.run();
    EXPECT_TRUE(sim.channel().spatialIndexActive());
    return results;
  };

  const std::string traceA = dir + "/scale_run_a.trace.jsonl";
  const std::string traceB = dir + "/scale_run_b.trace.jsonl";
  const harness::RunResults a = runOnce(traceA);
  const harness::RunResults b = runOnce(traceB);

  EXPECT_EQ(a.packetsSent, b.packetsSent);
  EXPECT_EQ(a.expectedDeliveries, b.expectedDeliveries);
  EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
  EXPECT_EQ(a.pdr, b.pdr);
  EXPECT_EQ(a.throughputBps, b.throughputBps);
  EXPECT_EQ(a.meanDelayS, b.meanDelayS);
  EXPECT_EQ(a.probeBytesReceived, b.probeBytesReceived);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);

  const std::string bytesA = slurp(traceA);
  ASSERT_FALSE(bytesA.empty());
  EXPECT_TRUE(bytesA == slurp(traceB)) << "500-node traces diverged";
  std::remove(traceA.c_str());
  std::remove(traceB.c_str());

  // The run exercised real traffic at scale.
  EXPECT_GT(a.packetsSent, 50u);
  EXPECT_GT(a.packetsDelivered, 0u);
}

TEST(ScaleDeterminism, SweepAggregatesAndTracesMatchAcrossJobCounts) {
  const std::vector<harness::ProtocolSpec> protocols = {
      harness::ProtocolSpec::original(),
      harness::ProtocolSpec::with(metrics::MetricKind::Spp)};

  const auto optionsFor = [](std::size_t jobs, const std::string& traceDir) {
    harness::BenchOptions options;
    options.topologies = 2;
    options.duration = SimTime::zero();  // keep the scenario's 8 s
    options.baseSeed = 9100;
    options.verbose = false;
    options.jobs = jobs;
    options.traceDir = traceDir;
    return options;
  };

  const std::string dirSerial = ::testing::TempDir() + "scale_jobs1";
  const std::string dirParallel = ::testing::TempDir() + "scale_jobs4";
  const runner::SweepReport serial = runner::runComparisonSweep(
      protocols, scaleScenario, optionsFor(1, dirSerial), nullptr);
  const runner::SweepReport parallel = runner::runComparisonSweep(
      protocols, scaleScenario, optionsFor(4, dirParallel), nullptr);

  ASSERT_EQ(serial.failures, 0u);
  ASSERT_EQ(parallel.failures, 0u);
  ASSERT_EQ(serial.records.size(), 4u);
  ASSERT_EQ(parallel.records.size(), 4u);

  // Aggregates fold bit-identically regardless of completion order.
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].name, parallel.rows[i].name);
    EXPECT_EQ(serial.rows[i].pdr.mean(), parallel.rows[i].pdr.mean());
    EXPECT_EQ(serial.rows[i].throughputBps.mean(),
              parallel.rows[i].throughputBps.mean());
    EXPECT_EQ(serial.rows[i].delayS.mean(), parallel.rows[i].delayS.mean());
  }

  // Per-run records line up cell by cell...
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const runner::RunRecord& s = serial.records[i];
    const runner::RunRecord& p = parallel.records[i];
    EXPECT_EQ(s.seed, p.seed);
    EXPECT_EQ(s.protocolName, p.protocolName);
    EXPECT_EQ(s.results.pdr, p.results.pdr);
    EXPECT_EQ(s.results.packetsDelivered, p.results.packetsDelivered);
    EXPECT_EQ(s.eventsExecuted, p.eventsExecuted);

    // ...and the exported traces are byte-identical.
    ASSERT_FALSE(s.tracePath.empty());
    const std::string name =
        s.tracePath.substr(s.tracePath.find_last_of('/') + 1);
    const std::string serialBytes = slurp(dirSerial + "/" + name);
    EXPECT_FALSE(serialBytes.empty());
    EXPECT_TRUE(serialBytes == slurp(dirParallel + "/" + name))
        << "trace " << name << " diverged between --jobs 1 and --jobs 4";
    std::remove((dirSerial + "/" + name).c_str());
    std::remove((dirParallel + "/" + name).c_str());
  }
}

}  // namespace
}  // namespace mesh
