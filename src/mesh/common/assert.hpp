#pragma once
// Assertion macros.
//
// MESH_ASSERT   — internal invariant; active in all build types (the
//                 simulator is a research tool: silent corruption is worse
//                 than a small constant cost).
// MESH_REQUIRE  — precondition on a public API; always active.
// Both print the failing expression with file:line and abort.

#include <cstdio>
#include <cstdlib>

namespace mesh::detail {
[[noreturn]] inline void assertFail(const char* kind, const char* expr,
                                    const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}
}  // namespace mesh::detail

#define MESH_ASSERT(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                           \
          : ::mesh::detail::assertFail("MESH_ASSERT", #expr, __FILE__, __LINE__))

#define MESH_REQUIRE(expr)                                                 \
  ((expr) ? static_cast<void>(0)                                           \
          : ::mesh::detail::assertFail("MESH_REQUIRE", #expr, __FILE__, __LINE__))
