#pragma once
// Pending-event set for the discrete-event engine.
//
// A binary min-heap ordered by (time, insertion sequence). The secondary
// key makes event ordering fully deterministic: two events scheduled for
// the same instant fire in the order they were scheduled. Cancellation is
// lazy — cancelled entries stay in the heap and are skipped on pop — which
// keeps both schedule and cancel O(log n) amortized without an indexed heap.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "mesh/common/assert.hpp"
#include "mesh/common/simtime.hpp"

namespace mesh::sim {

// Opaque handle to a scheduled event. Default-constructed handles are null.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return id_ != 0; }
  constexpr std::uint64_t raw() const { return id_; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t id) : id_{id} {}
  std::uint64_t id_{0};
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventId push(SimTime time, Callback cb) {
    MESH_ASSERT(cb != nullptr);
    const std::uint64_t id = ++nextId_;
    heap_.push(Entry{time, id, std::move(cb)});
    ++live_;
    return EventId{id};
  }

  // Cancel a pending event. Returns false if the handle is null, already
  // fired, or already cancelled.
  bool cancel(EventId id) {
    if (!id.valid()) return false;
    if (id.raw() > nextId_) return false;
    // Only mark if it could still be pending; popped events are forgotten.
    const auto [_, inserted] = cancelled_.insert(id.raw());
    if (!inserted) return false;
    if (live_ > 0) --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Earliest pending (non-cancelled) event time. Queue must not be empty.
  SimTime nextTime() {
    skipCancelled();
    MESH_REQUIRE(!heap_.empty());
    return heap_.top().time;
  }

  // Pop and return the earliest pending event. Queue must not be empty.
  struct Popped {
    SimTime time;
    Callback callback;
  };
  Popped pop() {
    skipCancelled();
    MESH_REQUIRE(!heap_.empty());
    // priority_queue::top() is const; the callback must be moved out, so we
    // cast away constness of the entry we are about to pop. This is the
    // standard idiom for move-out-of-priority_queue and is safe because the
    // entry is removed immediately afterwards.
    auto& top = const_cast<Entry&>(heap_.top());
    Popped out{top.time, std::move(top.callback)};
    heap_.pop();
    MESH_ASSERT(live_ > 0);
    --live_;
    return out;
  }

  void clear() {
    heap_ = {};
    cancelled_.clear();
    live_ = 0;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback callback;
    // Min-heap: priority_queue keeps the *largest* on top, so invert.
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void skipCancelled() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().seq);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t nextId_{0};
  std::size_t live_{0};
};

}  // namespace mesh::sim
