#pragma once
// Odmrp: the On-Demand Multicast Routing Protocol daemon, in both the
// original flavor and the metric-enhanced flavor of Section 3.1.
//
// Protocol recap (Lee, Gerla, Chiang):
//  * A source periodically floods a JOIN QUERY for its group. Every node
//    remembers the upstream neighbor the query came through.
//  * A group member answers with a JOIN REPLY naming, per source, the
//    upstream neighbor (its JOIN TABLE). A node that hears a reply naming
//    itself becomes a *forwarding group* (FG) node for the group, and
//    re-broadcasts its own reply naming its own upstream — until the
//    replies reach the source.
//  * Data is broadcast; FG nodes (and only they) rebroadcast it. FG
//    membership expires unless refreshed by later rounds.
//
// Metric enhancement (this paper):
//  * Queries accumulate a path cost. Each node charges the incoming link
//    using its NEIGHBOR_TABLE (forward direction, as measured by probes).
//  * A member buffers duplicate queries for δ and answers the best one.
//  * An intermediate node re-forwards a *duplicate* query only if it
//    improves on the best cost seen so far this round, and only within α
//    (α < δ) of the round's first query — bounded path diversity.
//
// Original ODMRP is the metric == nullptr configuration: first query wins,
// members reply immediately, duplicates are never forwarded.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/metrics/neighbor_table.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/multicast_protocol.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/odmrp/dup_cache.hpp"
#include "mesh/odmrp/messages.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/sim/timer.hpp"
#include "mesh/trace/trace_event.hpp"

namespace mesh::trace {
class TraceCollector;
}

namespace mesh::odmrp {

struct OdmrpParams {
  SimTime queryInterval{SimTime::seconds(std::int64_t{3})};
  // FG_TIMEOUT: forwarding-group flags persist 3 refresh rounds.
  SimTime fgTimeout{SimTime::seconds(std::int64_t{9})};
  // Member best-query window (δ) and duplicate-forwarding window (α < δ),
  // Section 4.1: δ = 30 ms, α = 20 ms.
  SimTime memberWindowDelta{SimTime::milliseconds(30)};
  SimTime dupForwardAlpha{SimTime::milliseconds(20)};
  // Rebroadcast jitters decorrelate neighbors beyond MAC backoff.
  SimTime queryJitterMax{SimTime::milliseconds(10)};
  SimTime replyJitterMax{SimTime::milliseconds(4)};
  SimTime dataJitterMax{SimTime::milliseconds(1)};
  std::uint8_t maxHops{32};
};

// The protocol-wide counter block (shared across implementations).
using OdmrpStats = net::ProtocolStats;

class Odmrp final : public net::MulticastProtocol {
 public:
  using SendFn = net::MulticastProtocol::SendFn;
  using DeliverFn = net::MulticastProtocol::DeliverFn;

  // `metric` null -> original ODMRP. When `metric` is set, `neighbors`
  // must be the node's probe-fed NEIGHBOR_TABLE.
  Odmrp(sim::Simulator& simulator, net::NodeId self, OdmrpParams params,
        const metrics::Metric* metric, const metrics::NeighborTable* neighbors,
        SendFn send, Rng rng);

  Odmrp(const Odmrp&) = delete;
  Odmrp& operator=(const Odmrp&) = delete;

  net::NodeId nodeId() const override { return self_; }

  // --- roles ---------------------------------------------------------------
  void joinGroup(net::GroupId group) override;
  void leaveGroup(net::GroupId group) override;
  bool isMember(net::GroupId group) const override {
    return members_.contains(group);
  }

  // Start the periodic JOIN QUERY flood for a group this node sources.
  void startSource(net::GroupId group) override;
  void stopSource(net::GroupId group) override;

  // --- data path -------------------------------------------------------
  void sendData(net::GroupId group, std::span<const std::uint8_t> payload) override;
  void setDeliverCallback(DeliverFn cb) override { deliver_ = std::move(cb); }

  // Feed every received ODMRP packet (kinds Control and Data).
  void onPacket(const net::PacketPtr& packet, net::NodeId from) override;

  void setTrace(trace::TraceCollector* collector) override {
    trace_ = collector;
  }

  // --- introspection -----------------------------------------------------
  bool isForwarder(net::GroupId group) const override;
  const OdmrpStats& stats() const override { return stats_; }
  // Directed data-edge usage (transmitter -> this node) over accepted,
  // non-duplicate data packets; the Figure 5 tree dump reads this.
  const std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash>&
  dataEdgeCounts() const override {
    return dataEdges_;
  }

 private:
  struct RoundState {
    std::uint32_t seq{0};
    bool valid{false};
    double bestCost{0.0};
    net::NodeId upstream{net::kInvalidNode};
    std::uint8_t hopCount{0};
    SimTime alphaDeadline{SimTime::zero()};
    bool fgReplySent{false};
    bool memberReplyArmed{false};
    bool memberReplySent{false};
  };

  static std::uint32_t key(net::GroupId group, net::NodeId source) {
    return (static_cast<std::uint32_t>(group) << 16) | source;
  }

  // `packet` is the received wire packet the query rode in — drop records
  // need its identity and size.
  void handleQuery(const JoinQuery& query, const net::PacketPtr& packet,
                   net::NodeId from);
  void handleReply(const JoinReply& reply, net::NodeId from);
  void handleData(const net::PacketPtr& packet, net::NodeId from);
  void traceDrop(const net::PacketPtr& packet, trace::DropReason reason);

  void originateQuery(net::GroupId group);
  void forwardQuery(const JoinQuery& received, double newCost, bool duplicate);
  void sendMemberReply(net::GroupId group, net::NodeId source);
  void setForwardingFlag(net::GroupId group);
  void sendControl(net::PacketPtr packet, SimTime jitterMax);

  double chargeIncomingLink(const JoinQuery& query, net::NodeId from) const;

  sim::Simulator& simulator_;
  net::NodeId self_;
  OdmrpParams params_;
  const metrics::Metric* metric_;               // nullable
  const metrics::NeighborTable* neighbors_;     // nullable
  SendFn send_;
  DeliverFn deliver_;
  trace::TraceCollector* trace_{nullptr};
  Rng rng_;

  std::unordered_set<net::GroupId> members_;
  std::unordered_map<net::GroupId, SimTime> fgExpiry_;
  std::unordered_map<std::uint32_t, RoundState> rounds_;  // per (group, source)
  DupCache dataDupCache_;
  std::unordered_map<net::GroupId, std::uint32_t> dataSeq_;
  std::unordered_map<net::GroupId, std::uint32_t> querySeq_;
  std::unordered_map<net::GroupId, std::unique_ptr<sim::PeriodicTimer>> queryTimers_;
  std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash> dataEdges_;

  OdmrpStats stats_;
};

}  // namespace mesh::odmrp
