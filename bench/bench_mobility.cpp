// Extension — the static-mesh premise, quantified.
//
// The paper's introduction: mesh routers are static, which is what makes
// link-quality routing metrics viable (measurements stay valid long
// enough to route on). This bench sweeps random-waypoint node speed and
// compares ODMRP vs ODMRP_SPP: as speed grows, probe windows go stale,
// the metric's edge erodes, and the original ODMRP (built for MANETs —
// freshest-flood-wins needs no history) closes the gap.

#include "bench_common.hpp"

int main() {
  using namespace mesh;
  using namespace mesh::bench;

  const harness::BenchOptions options =
      harness::BenchOptions::fromEnvironment(kQuickTopologies, kQuickDurationS);

  const double speeds[] = {0.0, 2.0, 10.0};

  std::printf("Extension — metric advantage vs node mobility (random waypoint)\n");
  std::printf("%-12s  %10s  %10s  %12s\n", "max speed", "ODMRP", "SPP",
              "SPP gain");
  for (const double speed : speeds) {
    const auto rows = harness::runProtocolComparison(
        {harness::ProtocolSpec::original(),
         harness::ProtocolSpec::with(metrics::MetricKind::Spp)},
        [speed](std::uint64_t seed) {
          harness::ScenarioConfig config = simulationScenario(seed);
          config.mobilityMaxSpeedMps = speed;
          return config;
        },
        options);
    const double gain = rows[1].pdr.mean() / rows[0].pdr.mean() - 1.0;
    std::printf("%8.0f m/s  %10.4f  %10.4f  %+10.1f%%\n", speed,
                rows[0].pdr.mean(), rows[1].pdr.mean(), gain * 100.0);
  }
  printPaperReference(
      "Section 1 (premise)",
      "static routers are what make link-quality metrics viable; expect the "
      "SPP gain to shrink as speed rises");
  return 0;
}
