#pragma once
// The five multicast link-quality metrics (plus hop count), Section 2.2.
//
// A metric is a policy triple:
//
//   linkCost(measurement)      — scalar cost of one directed link, computed
//                                by the *receiver* from its measurements of
//                                the forward direction only;
//   accumulate(path, link)     — how a JOIN QUERY's path cost grows as it
//                                crosses that link;
//   better(a, b)               — the ordering used when a group member
//                                compares buffered duplicate queries.
//
// Path costs are a single double so they serialize into the JOIN QUERY
// unchanged for every metric.
//
//   ETX   link = 1/df               path = Σ link           minimize
//   ETT   link = (1/df)·(S/B)       path = Σ link           minimize
//   PP    link = EWMA pair delay    path = Σ link           minimize
//   METX  link = df                 path' = (path+1)/df     minimize
//   SPP   link = df                 path' = path·df         MAXIMIZE
//   HOP   link = 1                  path = Σ link           minimize
//
// The METX recurrence reproduces Eq. (2) exactly: with links 1..n and
// success probabilities p_i, unrolling path' = (path+1)/p_k from k=1..n
// yields Σ_{i=1..n} 1/Π_{j=i..n} p_j — the expected total number of
// transmissions by all nodes on the path until the receiver holds the
// packet, under a broadcast (no-retransmission) link layer where upstream
// must resend whenever any downstream link fails.
//
// SPP is the probability that a packet released by the source crosses the
// whole path in one go; maximizing it (equivalently minimizing 1/SPP, the
// expected number of *source* transmissions) avoids any path containing
// even one bad link, since a single low df collapses the product.

#include <memory>
#include <string>

#include "mesh/common/simtime.hpp"

namespace mesh::metrics {

enum class MetricKind : std::uint8_t {
  Hop = 0,
  Etx = 1,
  Ett = 2,
  Pp = 3,
  Metx = 4,
  Spp = 5,
  // Unicast-style bidirectional ETX (1 / (df · dr)). NOT one of the
  // paper's multicast metrics: it exists to demonstrate Section 2.1's
  // point that charging the reverse direction distorts broadcast routing.
  BiEtx = 6,
};

const char* toString(MetricKind kind);

// What the probing subsystem has learned about one directed link
// (neighbor -> this node), at query time.
struct LinkMeasurement {
  double df{0.0};             // forward delivery ratio in [0, 1]
  bool hasDelay{false};
  double delayS{0.0};         // EWMA packet-pair delay, seconds (PP)
  bool hasBandwidth{false};
  double bandwidthBps{0.0};   // packet-pair bandwidth estimate (ETT)
  bool hasReverse{false};
  double reverseDf{0.0};      // reverse delivery ratio (neighbor report)
};

enum class ProbeMode : std::uint8_t { None = 0, Single = 1, Pair = 2 };

struct ProbeConfig {
  ProbeMode mode{ProbeMode::None};
  SimTime interval{SimTime::zero()};
  std::uint32_t lossWindow{10};
  // Attach a De Couto-style neighbor report (df per heard neighbor) to
  // every probe, enabling reverse-direction measurement. Costs probe
  // bytes; only BiETX turns it on.
  bool neighborReports{false};
};

class Metric {
 public:
  virtual ~Metric() = default;

  virtual MetricKind kind() const = 0;
  const char* name() const { return toString(kind()); }

  // Path cost of the empty path (at the source).
  virtual double initialPathCost() const = 0;

  // Cost of one link given the receiver's measurements. May be +inf
  // (unusable / unmeasured link); never NaN.
  virtual double linkCost(const LinkMeasurement& m) const = 0;

  // Path cost after extending `pathCost` over a link of cost `linkCost`.
  virtual double accumulate(double pathCost, double linkCost) const = 0;

  // Strict "a is a better path than b".
  virtual bool better(double a, double b) const { return a < b; }

  // Worst possible path cost (used as the sentinel before any query is
  // buffered). better(x, worst) holds for every reachable x.
  virtual double worstPathCost() const;

  // How this metric probes. The harness may scale the interval to study
  // the probing-rate tradeoff (Section 4.2.2).
  virtual ProbeConfig probeConfig() const = 0;
};

// Factory. `nominalPayloadBytes` parameterizes ETT's S/B term (the paper
// uses the CBR payload size).
std::unique_ptr<Metric> makeMetric(MetricKind kind,
                                   std::size_t nominalPayloadBytes = 512);

// All kinds in the order the paper's Figure 2 lists them.
inline constexpr MetricKind kAllMetricKinds[] = {
    MetricKind::Ett, MetricKind::Etx, MetricKind::Metx,
    MetricKind::Pp, MetricKind::Spp};

}  // namespace mesh::metrics
