// Multi-channel collision domains (robustness tier).
//
// The channelplan subsystem promises two identities and pins both here:
//  * channels=1 through the multi-domain machinery (forceChannelPlan) is
//    byte-identical — results and trace bytes — to the legacy
//    single-simulator path;
//  * a channels>1 run is byte-identical no matter how many domain worker
//    threads drive it (1 = the sequential reference order) and no matter
//    the sweep's --jobs count.
// Plus the plan/scheduler unit contracts and the end-to-end per-channel
// counter cross-check (`meshtrace verify` machinery).
//
// Durations are short: the point is determinism, not protocol performance.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/channelplan/channel_plan.hpp"
#include "mesh/channelplan/domain_scheduler.hpp"
#include "mesh/gateway/gateway_set.hpp"
#include "mesh/harness/experiment.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/runner/result_sink.hpp"
#include "mesh/runner/sweep.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/trace/replay.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// ChannelPlan

TEST(ChannelPlan, StaticStripesByNodeId) {
  const std::vector<Vec2> positions(10, Vec2{0.0, 0.0});
  const channelplan::ChannelPlan plan = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::Static, 3, positions, 250.0);
  ASSERT_EQ(plan.assignment.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(plan.channelOf(static_cast<net::NodeId>(i)), i % 3);
  }
  EXPECT_EQ(plan.domainSizes, (std::vector<std::uint32_t>{4, 3, 3}));
  EXPECT_EQ(plan.domainNodes(1), (std::vector<net::NodeId>{1, 4, 7}));
}

TEST(ChannelPlan, LeastCongestedBalancesACluster) {
  // Ten nodes within one contention disk: the greedy pass must deal them
  // round-robin-like across the channels instead of stacking one.
  std::vector<Vec2> positions;
  for (int i = 0; i < 10; ++i) {
    positions.push_back(Vec2{static_cast<double>(i) * 10.0, 0.0});
  }
  const channelplan::ChannelPlan plan = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::LeastCongested, 2, positions, 250.0);
  EXPECT_EQ(plan.domainSizes[0], 5u);
  EXPECT_EQ(plan.domainSizes[1], 5u);
  // Every node sees every other, so the worst same-channel degree is the
  // domain population minus one.
  EXPECT_EQ(plan.maxSameChannelNeighbors, 4u);
}

TEST(ChannelPlan, LeastCongestedIsAPureFunctionOfGeometry) {
  harness::ScenarioConfig config = harness::scaledSimulationScenario(200);
  config.seed = 7;
  Rng rng{config.seed};
  // Positions via a throwaway simulation-free draw: the grid generator is
  // exercised end to end by the harness tests below; here any spread-out
  // geometry will do.
  std::vector<Vec2> positions;
  for (std::size_t i = 0; i < 200; ++i) {
    positions.push_back(Vec2{rng.uniform(0.0, config.areaWidthM),
                             rng.uniform(0.0, config.areaHeightM)});
  }
  const channelplan::ChannelPlan a = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::LeastCongested, 3, positions, 250.0);
  const channelplan::ChannelPlan b = channelplan::makeChannelPlan(
      channelplan::AssignStrategy::LeastCongested, 3, positions, 250.0);
  EXPECT_EQ(a.assignment, b.assignment);
  const std::uint32_t total =
      std::accumulate(a.domainSizes.begin(), a.domainSizes.end(), 0u);
  EXPECT_EQ(total, 200u);
}

TEST(ChannelPlan, StrategyNamesRoundTrip) {
  channelplan::AssignStrategy strategy;
  EXPECT_TRUE(channelplan::assignStrategyFromString("static", strategy));
  EXPECT_EQ(strategy, channelplan::AssignStrategy::Static);
  EXPECT_TRUE(channelplan::assignStrategyFromString("least-congested", strategy));
  EXPECT_EQ(strategy, channelplan::AssignStrategy::LeastCongested);
  EXPECT_TRUE(channelplan::assignStrategyFromString("least_congested", strategy));
  EXPECT_FALSE(channelplan::assignStrategyFromString("bogus", strategy));
  EXPECT_STREQ(channelplan::toString(channelplan::AssignStrategy::Static),
               "static");
}

// ---------------------------------------------------------------------------
// DomainScheduler

TEST(DomainScheduler, BarriersSyncAllDomains) {
  sim::Simulator a, b;
  std::vector<int> order;
  a.schedule(1_s, [&] { order.push_back(1); });
  b.schedule(2_s, [&] { order.push_back(2); });
  a.schedule(3_s, [&] { order.push_back(3); });

  channelplan::DomainScheduler scheduler{{&a, &b}, 1};
  scheduler.addBarrier(2_s + 500_ms, [&] {
    // Both clocks sit exactly at the barrier instant; the 3 s event has
    // not run yet.
    EXPECT_EQ(a.now(), 2_s + 500_ms);
    EXPECT_EQ(b.now(), 2_s + 500_ms);
    order.push_back(99);
  });
  const std::uint64_t executed = scheduler.run(4_s);
  EXPECT_EQ(executed, 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99, 3}));
  EXPECT_EQ(scheduler.epochsRun(), 2u);
  EXPECT_EQ(a.now(), 4_s);
  EXPECT_EQ(b.now(), 4_s);
}

TEST(DomainScheduler, WorkerCountDoesNotChangeEventTotals) {
  const auto runWith = [](std::size_t workers) {
    std::vector<std::unique_ptr<sim::Simulator>> sims;
    std::vector<sim::Simulator*> raw;
    std::vector<std::uint64_t> fired(4, 0);
    for (std::size_t d = 0; d < 4; ++d) {
      sims.push_back(std::make_unique<sim::Simulator>());
      raw.push_back(sims.back().get());
      // A little self-rescheduling cascade per domain.
      for (int i = 1; i <= 8; ++i) {
        sims[d]->schedule(SimTime::milliseconds(i * 10 + static_cast<int>(d)),
                          [&fired, d] { ++fired[d]; });
      }
    }
    channelplan::DomainScheduler scheduler{std::move(raw), workers};
    const std::uint64_t executed = scheduler.run(1_s);
    return std::pair{executed, fired};
  };
  const auto [serialExec, serialFired] = runWith(1);
  const auto [parallelExec, parallelFired] = runWith(4);
  EXPECT_EQ(serialExec, 32u);
  EXPECT_EQ(parallelExec, serialExec);
  EXPECT_EQ(serialFired, parallelFired);
}

// ---------------------------------------------------------------------------
// Harness identities

harness::ScenarioConfig smallScenario(std::uint64_t seed) {
  harness::ScenarioConfig config = harness::paperSimulationScenario();
  config.seed = seed;
  config.duration = 12_s;
  config.traffic.payloadBytes = 256;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 2_s;
  config.traffic.stop = 12_s;
  config.protocol = harness::ProtocolSpec::with(metrics::MetricKind::Spp);
  Rng groupRng = Rng{seed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 2, 8, 1, groupRng);
  return config;
}

TEST(MultiChannel, OneChannelPlanIsByteIdenticalToLegacyPath) {
  const std::string dir = ::testing::TempDir();
  const auto runOnce = [&](bool forcePlan, const std::string& tracePath) {
    harness::ScenarioConfig config = smallScenario(4242);
    config.forceChannelPlan = forcePlan;
    config.tracePath = tracePath;
    harness::Simulation sim{config};
    EXPECT_EQ(sim.channelCount(), 1u);
    EXPECT_EQ(sim.plan() != nullptr, forcePlan);
    return sim.run();
  };

  const std::string traceLegacy = dir + "/mc_legacy.trace.jsonl";
  const std::string tracePlan = dir + "/mc_plan.trace.jsonl";
  const harness::RunResults legacy = runOnce(false, traceLegacy);
  const harness::RunResults plan = runOnce(true, tracePlan);

  EXPECT_EQ(legacy.packetsSent, plan.packetsSent);
  EXPECT_EQ(legacy.packetsDelivered, plan.packetsDelivered);
  EXPECT_EQ(legacy.pdr, plan.pdr);
  EXPECT_EQ(legacy.throughputBps, plan.throughputBps);
  EXPECT_EQ(legacy.meanDelayS, plan.meanDelayS);
  EXPECT_EQ(legacy.probeOverheadPct, plan.probeOverheadPct);
  EXPECT_EQ(legacy.eventsExecuted, plan.eventsExecuted);
  EXPECT_TRUE(plan.channelFrames.empty());  // only channels > 1 reports

  const std::string legacyBytes = slurp(traceLegacy);
  ASSERT_FALSE(legacyBytes.empty());
  EXPECT_TRUE(legacyBytes == slurp(tracePlan))
      << "channels=1 trace diverged between legacy and channelplan paths";
  EXPECT_GT(legacy.packetsDelivered, 0u);
  std::remove(traceLegacy.c_str());
  std::remove(tracePlan.c_str());
}

// 500 nodes, 3 channels, channel-local groups — the multi-channel scale
// scenario shared by the worker-count and jobs-count identity tests.
harness::ScenarioConfig multiScenario(std::uint64_t seed) {
  harness::ScenarioConfig config = harness::scaledSimulationScenario(500);
  // Shrink the area by the channel count: each collision domain holds a
  // third of the nodes, and this keeps every domain's subgraph at the
  // paper's 50 nodes/km² (a 1/3-density subsample is disconnected).
  config.areaWidthM /= std::sqrt(3.0);
  config.areaHeightM /= std::sqrt(3.0);
  config.seed = seed;
  config.duration = 6_s;
  config.traffic.payloadBytes = 256;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 2_s;
  config.traffic.stop = 6_s;
  config.channels = 3;
  config.protocol = harness::ProtocolSpec::with(metrics::MetricKind::Spp);
  Rng groupRng = Rng{seed}.fork("groups");
  config.groups =
      harness::makeStripedGroups(config.nodeCount, 3, 1, 8, 1, groupRng);
  return config;
}

TEST(MultiChannel, WorkerCountDoesNotChangeRunBytes) {
  const std::string dir = ::testing::TempDir();
  const auto runWith = [&](std::size_t workers, const std::string& tracePath) {
    harness::ScenarioConfig config = multiScenario(9300);
    config.domainWorkers = workers;
    config.tracePath = tracePath;
    harness::Simulation sim{config};
    EXPECT_EQ(sim.channelCount(), 3u);
    return sim.run();
  };

  const std::string trace1 = dir + "/mc_w1.trace.jsonl";
  const std::string trace2 = dir + "/mc_w2.trace.jsonl";
  const std::string trace4 = dir + "/mc_w4.trace.jsonl";
  const harness::RunResults w1 = runWith(1, trace1);
  const harness::RunResults w2 = runWith(2, trace2);
  const harness::RunResults w4 = runWith(4, trace4);

  for (const harness::RunResults* r : {&w2, &w4}) {
    EXPECT_EQ(w1.packetsSent, r->packetsSent);
    EXPECT_EQ(w1.packetsDelivered, r->packetsDelivered);
    EXPECT_EQ(w1.pdr, r->pdr);
    EXPECT_EQ(w1.throughputBps, r->throughputBps);
    EXPECT_EQ(w1.meanDelayS, r->meanDelayS);
    EXPECT_EQ(w1.eventsExecuted, r->eventsExecuted);
    EXPECT_EQ(w1.channelFrames, r->channelFrames);
    EXPECT_EQ(w1.channelDelivered, r->channelDelivered);
  }

  // Per-channel counters are present and live: every domain transmitted.
  ASSERT_EQ(w1.channelFrames.size(), 3u);
  for (const std::uint64_t frames : w1.channelFrames) EXPECT_GT(frames, 0u);
  const std::uint64_t deliveredSum = std::accumulate(
      w1.channelDelivered.begin(), w1.channelDelivered.end(), std::uint64_t{0});
  EXPECT_EQ(deliveredSum, w1.packetsDelivered);
  EXPECT_GT(w1.packetsDelivered, 0u);

  const std::string bytes1 = slurp(trace1);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_TRUE(bytes1 == slurp(trace2)) << "workers=2 trace diverged";
  EXPECT_TRUE(bytes1 == slurp(trace4)) << "workers=4 trace diverged";
  // The merged trace is channel-tagged.
  EXPECT_NE(bytes1.find("\"channel\":0"), std::string::npos);
  EXPECT_NE(bytes1.find("\"channel\":2"), std::string::npos);
  std::remove(trace1.c_str());
  std::remove(trace2.c_str());
  std::remove(trace4.c_str());
}

TEST(MultiChannel, SweepBytesMatchAcrossJobCountsAndVerifyCrossChecks) {
  const std::vector<harness::ProtocolSpec> protocols = {
      harness::ProtocolSpec::with(metrics::MetricKind::Spp)};

  const auto optionsFor = [](std::size_t jobs, const std::string& dir) {
    harness::BenchOptions options;
    options.topologies = 2;
    options.duration = SimTime::zero();  // keep the scenario's 6 s
    options.baseSeed = 9400;
    options.verbose = false;
    options.jobs = jobs;
    options.traceDir = dir;
    options.jsonlPath = dir + "/results.jsonl";
    return options;
  };

  const std::string dirSerial = ::testing::TempDir() + "mc_jobs1";
  const std::string dirParallel = ::testing::TempDir() + "mc_jobs4";
  const auto runSweep = [&](std::size_t jobs, const std::string& dir) {
    const harness::BenchOptions options = optionsFor(jobs, dir);
    runner::JsonlResultSink sink{options.jsonlPath};
    return runner::runComparisonSweep(protocols, multiScenario, options, &sink);
  };
  const runner::SweepReport serial = runSweep(1, dirSerial);
  const runner::SweepReport parallel = runSweep(4, dirParallel);

  ASSERT_EQ(serial.failures, 0u);
  ASSERT_EQ(parallel.failures, 0u);
  ASSERT_EQ(serial.records.size(), 2u);
  ASSERT_EQ(parallel.records.size(), 2u);

  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const runner::RunRecord& s = serial.records[i];
    const runner::RunRecord& p = parallel.records[i];
    EXPECT_EQ(s.seed, p.seed);
    EXPECT_EQ(s.results.pdr, p.results.pdr);
    EXPECT_EQ(s.results.channelFrames, p.results.channelFrames);
    EXPECT_EQ(s.eventsExecuted, p.eventsExecuted);

    ASSERT_FALSE(s.tracePath.empty());
    const std::string name =
        s.tracePath.substr(s.tracePath.find_last_of('/') + 1);
    const std::string serialBytes = slurp(dirSerial + "/" + name);
    EXPECT_FALSE(serialBytes.empty());
    EXPECT_TRUE(serialBytes == slurp(dirParallel + "/" + name))
        << "trace " << name << " diverged between --jobs 1 and --jobs 4";
  }

  // The per-channel counters written to the results JSONL agree exactly
  // with the channel-tagged trace records — the `meshtrace verify` path.
  const trace::VerifyReport report =
      trace::verifyAgainstResults(dirSerial + "/results.jsonl");
  EXPECT_TRUE(report.ok()) << "file error: " << report.error << ", runs: "
                           << report.runs.size();
  for (const auto& run : report.runs) {
    EXPECT_TRUE(run.ok) << run.tracePath << ": " << run.error;
    EXPECT_TRUE(run.mismatches.empty());
  }

  for (const auto& record : serial.records) {
    const std::string name =
        record.tracePath.substr(record.tracePath.find_last_of('/') + 1);
    std::remove((dirSerial + "/" + name).c_str());
    std::remove((dirParallel + "/" + name).c_str());
  }
  std::remove((dirSerial + "/results.jsonl").c_str());
  std::remove((dirParallel + "/results.jsonl").c_str());
}

// ---------------------------------------------------------------------------
// Gateways at scale: the 500-node acceptance scenario. Same mesh as
// multiScenario but with *spanning* groups (drawn over the whole id space,
// so membership crosses the Static id-mod-3 domains) and boundary-selected
// gateways carrying the traffic between domains.

harness::ScenarioConfig gatewayScenario(std::uint64_t seed) {
  harness::ScenarioConfig config = multiScenario(seed);
  Rng groupRng = Rng{seed}.fork("gwgroups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 3, 8, 1, groupRng);
  config.gateways = 9;
  config.gatewaySelect = gateway::GatewaySelect::Boundary;
  return config;
}

TEST(MultiChannelGateway, WorkerCountDoesNotChangeRunBytes) {
  const std::string dir = ::testing::TempDir();
  const auto runWith = [&](std::size_t workers, const std::string& tracePath) {
    harness::ScenarioConfig config = gatewayScenario(9700);
    config.domainWorkers = workers;
    config.tracePath = tracePath;
    harness::Simulation sim{config};
    EXPECT_EQ(sim.channelCount(), 3u);
    EXPECT_EQ(sim.gatewaySet().nodes.size(), 9u);
    return sim.run();
  };

  const std::string trace1 = dir + "/mcgw_w1.trace.jsonl";
  const std::string trace2 = dir + "/mcgw_w2.trace.jsonl";
  const std::string trace4 = dir + "/mcgw_w4.trace.jsonl";
  const harness::RunResults w1 = runWith(1, trace1);
  const harness::RunResults w2 = runWith(2, trace2);
  const harness::RunResults w4 = runWith(4, trace4);

  EXPECT_EQ(w1.gatewayCount, 9u);
  EXPECT_GT(w1.handoffFrames, 0u);
  EXPECT_GT(w1.packetsDelivered, 0u);
  for (const harness::RunResults* r : {&w2, &w4}) {
    EXPECT_EQ(w1.packetsSent, r->packetsSent);
    EXPECT_EQ(w1.packetsDelivered, r->packetsDelivered);
    EXPECT_EQ(w1.pdr, r->pdr);
    EXPECT_EQ(w1.throughputBps, r->throughputBps);
    EXPECT_EQ(w1.meanDelayS, r->meanDelayS);
    EXPECT_EQ(w1.eventsExecuted, r->eventsExecuted);
    EXPECT_EQ(w1.channelFrames, r->channelFrames);
    EXPECT_EQ(w1.channelDelivered, r->channelDelivered);
    EXPECT_EQ(w1.handoffFrames, r->handoffFrames);
  }

  const std::string bytes1 = slurp(trace1);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_TRUE(bytes1 == slurp(trace2)) << "workers=2 gateway trace diverged";
  EXPECT_TRUE(bytes1 == slurp(trace4)) << "workers=4 gateway trace diverged";
  EXPECT_NE(bytes1.find("\"ev\":\"gateway_handoff\""), std::string::npos);
  std::remove(trace1.c_str());
  std::remove(trace2.c_str());
  std::remove(trace4.c_str());
}

TEST(MultiChannelGateway, SweepBytesMatchAcrossJobCountsAndVerifyCrossChecks) {
  const std::vector<harness::ProtocolSpec> protocols = {
      harness::ProtocolSpec::with(metrics::MetricKind::Spp)};

  const auto optionsFor = [](std::size_t jobs, const std::string& dir) {
    harness::BenchOptions options;
    options.topologies = 2;
    options.duration = SimTime::zero();  // keep the scenario's 6 s
    options.baseSeed = 9800;
    options.verbose = false;
    options.jobs = jobs;
    options.traceDir = dir;
    options.jsonlPath = dir + "/results.jsonl";
    return options;
  };

  const std::string dirSerial = ::testing::TempDir() + "mcgw_jobs1";
  const std::string dirParallel = ::testing::TempDir() + "mcgw_jobs4";
  const auto runSweep = [&](std::size_t jobs, const std::string& dir) {
    const harness::BenchOptions options = optionsFor(jobs, dir);
    runner::JsonlResultSink sink{options.jsonlPath};
    return runner::runComparisonSweep(protocols, gatewayScenario, options,
                                      &sink);
  };
  const runner::SweepReport serial = runSweep(1, dirSerial);
  const runner::SweepReport parallel = runSweep(4, dirParallel);

  ASSERT_EQ(serial.failures, 0u);
  ASSERT_EQ(parallel.failures, 0u);
  ASSERT_EQ(serial.records.size(), 2u);
  ASSERT_EQ(parallel.records.size(), 2u);

  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const runner::RunRecord& s = serial.records[i];
    const runner::RunRecord& p = parallel.records[i];
    EXPECT_EQ(s.seed, p.seed);
    EXPECT_EQ(s.results.pdr, p.results.pdr);
    EXPECT_EQ(s.results.handoffFrames, p.results.handoffFrames);
    EXPECT_GT(s.results.handoffFrames, 0u);
    EXPECT_EQ(s.eventsExecuted, p.eventsExecuted);

    ASSERT_FALSE(s.tracePath.empty());
    const std::string name =
        s.tracePath.substr(s.tracePath.find_last_of('/') + 1);
    const std::string serialBytes = slurp(dirSerial + "/" + name);
    EXPECT_FALSE(serialBytes.empty());
    EXPECT_TRUE(serialBytes == slurp(dirParallel + "/" + name))
        << "gateway trace " << name << " diverged between --jobs 1 and 4";
  }

  // The JSONL rows carry gateways / handoff_frames / per-gateway counters;
  // `meshtrace verify` cross-checks them against the gateway_handoff trace
  // records, total and per gateway.
  const trace::VerifyReport report =
      trace::verifyAgainstResults(dirSerial + "/results.jsonl");
  EXPECT_TRUE(report.ok()) << "file error: " << report.error << ", runs: "
                           << report.runs.size();
  for (const auto& run : report.runs) {
    EXPECT_TRUE(run.ok) << run.tracePath << ": " << run.error;
    for (const auto& diff : run.mismatches) {
      ADD_FAILURE() << diff.field << " trace=" << diff.traceValue
                    << " harness=" << diff.harnessValue;
    }
  }
  const std::string jsonl = slurp(dirSerial + "/results.jsonl");
  EXPECT_NE(jsonl.find("\"gateways\":9"), std::string::npos);
  EXPECT_NE(jsonl.find("\"handoff_frames\":"), std::string::npos);

  for (const auto& record : serial.records) {
    const std::string name =
        record.tracePath.substr(record.tracePath.find_last_of('/') + 1);
    std::remove((dirSerial + "/" + name).c_str());
    std::remove((dirParallel + "/" + name).c_str());
  }
  std::remove((dirSerial + "/results.jsonl").c_str());
  std::remove((dirParallel + "/results.jsonl").c_str());
}

}  // namespace
}  // namespace mesh
