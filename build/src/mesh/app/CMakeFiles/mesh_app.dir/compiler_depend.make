# Empty compiler generated dependencies file for mesh_app.
# This may be replaced when dependencies are built.
