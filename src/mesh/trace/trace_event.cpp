#include "mesh/trace/trace_event.hpp"

#include <cstring>

namespace mesh::trace {
namespace {

constexpr const char* kEventNames[] = {
    "pkt_birth", "enqueue", "tx_start", "tx_end",   "rx_ok",       "drop",
    "forward",   "deliver", "probe_tx", "probe_rx", "member_join",
    "fault_inject", "fault_clear", "gateway_handoff",
};

constexpr const char* kDropNames[] = {
    "unknown",
    "mac_queue_tail",
    "mac_retry_exhausted",
    "mac_cts_timeout",
    "phy_collision",
    "phy_below_sensitivity",
    "phy_radio_busy",
    "route_dup_suppress",
    "route_ttl_expired",
    "route_stale_round",
    "route_alpha_expired",
    "route_worse_cost",
    "route_no_route",
    "fault_node_down",
    "fault_link_down",
    "fault_probe_blackhole",
    "phy_rate_decode",
    "fault_mac_queue_drop",
};

constexpr const char* kFaultNames[] = {
    "crash", "blackout", "loss", "burst", "blackhole", "queue_drop",
};

constexpr std::size_t kEventCount = sizeof(kEventNames) / sizeof(kEventNames[0]);
constexpr std::size_t kDropCount = sizeof(kDropNames) / sizeof(kDropNames[0]);
constexpr std::size_t kFaultCount = sizeof(kFaultNames) / sizeof(kFaultNames[0]);

}  // namespace

const char* toString(EventType type) {
  const auto index = static_cast<std::size_t>(type);
  return index < kEventCount ? kEventNames[index] : "invalid";
}

const char* toString(DropReason reason) {
  const auto index = static_cast<std::size_t>(reason);
  return index < kDropCount ? kDropNames[index] : "invalid";
}

const char* toString(FaultKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kFaultCount ? kFaultNames[index] : "invalid";
}

bool eventTypeFromString(const char* text, EventType& out) {
  for (std::size_t i = 0; i < kEventCount; ++i) {
    if (std::strcmp(text, kEventNames[i]) == 0) {
      out = static_cast<EventType>(i);
      return true;
    }
  }
  return false;
}

bool dropReasonFromString(const char* text, DropReason& out) {
  for (std::size_t i = 0; i < kDropCount; ++i) {
    if (std::strcmp(text, kDropNames[i]) == 0) {
      out = static_cast<DropReason>(i);
      return true;
    }
  }
  return false;
}

bool faultKindFromString(const char* text, FaultKind& out) {
  for (std::size_t i = 0; i < kFaultCount; ++i) {
    if (std::strcmp(text, kFaultNames[i]) == 0) {
      out = static_cast<FaultKind>(i);
      return true;
    }
  }
  return false;
}

}  // namespace mesh::trace
