#include "mesh/metrics/probe_service.hpp"

#include <algorithm>
#include <utility>

#include "mesh/common/assert.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::metrics {

ProbeService::ProbeService(sim::Simulator& simulator, net::NodeId self,
                           ProbeConfig config, double rateScale,
                           NeighborTable& table, SendFn send, Rng rng,
                           AdaptiveProbing adaptive,
                           std::function<SimTime()> busyTime)
    : simulator_{simulator},
      self_{self},
      config_{config},
      table_{table},
      send_{std::move(send)},
      rng_{rng},
      timer_{simulator},
      adaptive_{adaptive},
      busyTime_{std::move(busyTime)} {
  MESH_REQUIRE(rateScale > 0.0);
  if (adaptive_.enabled) MESH_REQUIRE(busyTime_ != nullptr);
  if (config_.mode != ProbeMode::None) {
    MESH_REQUIRE(config_.interval > SimTime::zero());
    interval_ = config_.interval.scaled(1.0 / rateScale);
  }
}

void ProbeService::adjustSlowdown() {
  if (!adaptive_.enabled) return;
  const SimTime now = simulator_.now();
  const SimTime busyNow = busyTime_();
  if (lastCycleAt_ > SimTime::zero() && now > lastCycleAt_) {
    const double busyFraction =
        (busyNow - lastBusyTotal_).ratio(now - lastCycleAt_);
    if (busyFraction > adaptive_.busyHi) {
      slowdown_ = std::min(slowdown_ * adaptive_.step, adaptive_.maxSlowdown);
    } else if (busyFraction < adaptive_.busyLo) {
      slowdown_ = std::max(slowdown_ / adaptive_.step, 1.0);
    }
  }
  lastCycleAt_ = now;
  lastBusyTotal_ = busyNow;
}

void ProbeService::start() {
  if (config_.mode == ProbeMode::None) return;
  const SimTime initial = interval_.scaled(rng_.uniform(0.05, 1.0));
  timer_.stop();
  // ±10% jitter per cycle keeps the fleet desynchronized forever.
  timer_.start(
      [this, initial, first = true]() mutable -> SimTime {
        if (first) {
          first = false;
          return initial;
        }
        return interval_.scaled(slowdown_ * rng_.uniform(0.9, 1.1));
      },
      [this] { sendProbes(); });
}

void ProbeService::stop() { timer_.stop(); }

void ProbeService::sendProbes() {
  const SimTime now = simulator_.now();
  adjustSlowdown();
  if (config_.mode == ProbeMode::Pair) {
    // Our probing tick doubles as the receiver-side pair timeout: any pair
    // whose large probe is more than half an interval late is written off.
    table_.finalizeStalePairs(now, interval_ / 2);
  }
  const std::uint32_t seq = seq_++;
  // Rate adaptation: one rate decision per cycle (every probe of the cycle
  // flies at it, so per-rate sequence gaps are attributable to that rate).
  std::uint8_t txCode = 0;
  if (rateController_ != nullptr) txCode = rateController_->probeVector().code;
  const auto stampRate = [&](ProbeMessage& m, bool withReport) {
    if (txCode == 0) return;
    m.txCode = txCode;
    m.perRateSeq = rateController_->noteProbeSent(txCode);
    if (withReport) rateController_->buildRateReport(m.rateReport, 16);
  };
  if (config_.mode == ProbeMode::Single) {
    ProbeMessage m{ProbeType::Single, self_, seq};
    if (config_.neighborReports) {
      for (const auto& [neighbor, df] : table_.snapshotDf(now)) {
        if (m.report.size() >= 255) break;
        m.report.push_back(ReportEntry{neighbor, ReportEntry::quantize(df)});
      }
    }
    stampRate(m, /*withReport=*/true);
    auto packet = m.toPacket(now);
    stats_.probesSent += 1;
    stats_.probeBytesSent += packet->sizeBytes();
    if (trace_ != nullptr) trace_->probeTx(now, self_, *packet);
    send_(std::move(packet));
  } else {
    // Packet pair: small immediately followed by large; both enter the
    // MAC queue back-to-back so the receiver-side dispersion measures the
    // channel (airtime + contention), which is the packet-pair principle.
    ProbeMessage small{ProbeType::PairSmall, self_, seq};
    ProbeMessage large{ProbeType::PairLarge, self_, seq};
    // The feedback report rides the small probe only; the large one still
    // counts in the per-rate delivery windows via its own sequence number.
    stampRate(small, /*withReport=*/true);
    stampRate(large, /*withReport=*/false);
    auto smallPacket = small.toPacket(now);
    auto largePacket = large.toPacket(now);
    stats_.probesSent += 2;
    stats_.probeBytesSent += smallPacket->sizeBytes() + largePacket->sizeBytes();
    if (trace_ != nullptr) {
      trace_->probeTx(now, self_, *smallPacket);
      trace_->probeTx(now, self_, *largePacket);
    }
    send_(std::move(smallPacket));
    send_(std::move(largePacket));
  }
}

void ProbeService::onPacket(const net::PacketPtr& packet, SimTime now) {
  // Decode-once: the k receivers of one probe broadcast share this parse.
  const ProbeMessage* probe = ProbeMessage::decode(*packet);
  if (probe == nullptr) return;
  if (probe->sender == self_) return;  // own probe echoed back — impossible
                                       // on a radio, defensive anyway
  ++stats_.probesReceived;
  stats_.probeBytesReceived += packet->sizeBytes();
  table_.onProbe(*probe, now, self_);
  if (rateController_ != nullptr && probe->txCode != 0) {
    rateController_->onProbeHeard(probe->sender, probe->txCode,
                                  probe->perRateSeq);
    for (const rate::RateFeedbackEntry& entry : probe->rateReport) {
      if (entry.neighbor == self_) {
        rateController_->onRateFeedback(probe->sender, entry.code,
                                        entry.dfQ / 255.0);
      }
    }
  }
}

}  // namespace mesh::metrics
