// Figure 3 — SPP vs ETX on the paper's 5-node example.
//
// ETX sums per-link expected transmission counts, which under a broadcast
// link layer (no retransmissions!) understates the damage of a single
// very lossy link. SPP's product form makes one bad link poison the whole
// path. The bench prints the metric table and then validates the claim
// end-to-end: the same topology is simulated through the full stack with
// both metrics and the delivered fractions compared.

#include <cstdio>

#include "bench_common.hpp"
#include "mesh/phy/static_link_model.hpp"

namespace {

double pathCost(const mesh::metrics::Metric& metric,
                std::initializer_list<double> dfs) {
  double cost = metric.initialPathCost();
  for (double df : dfs) {
    mesh::metrics::LinkMeasurement m;
    m.df = df;
    cost = metric.accumulate(cost, metric.linkCost(m));
  }
  return cost;
}

mesh::harness::ScenarioConfig figure3Scenario(std::uint64_t seed) {
  using namespace mesh;
  // Nodes: A=0, B=1, C=2, D=3, E=4. Path A-B-C-D: 0.8 each; A-E-D: 0.9, 0.4.
  harness::ScenarioConfig config;
  config.nodeCount = 5;
  config.seed = seed;
  config.duration = SimTime::seconds(std::int64_t{400});
  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 20.0;
  config.traffic.start = SimTime::seconds(std::int64_t{60});
  config.traffic.stop = SimTime::seconds(std::int64_t{400});
  config.groups = {harness::GroupSpec{1, {0}, {3}}};
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(5);
    const double kPower = 1e-8;
    auto link = [&](net::NodeId a, net::NodeId b, double df) {
      model->setSymmetric(a, b, kPower);
      model->setSymmetricLossRate(a, b, 1.0 - df);
    };
    link(0, 1, 0.8);
    link(1, 2, 0.8);
    link(2, 3, 0.8);
    link(0, 4, 0.9);
    link(4, 3, 0.4);
    return model;
  };
  return config;
}

}  // namespace

int main() {
  using namespace mesh;
  using namespace mesh::bench;

  const auto etx = metrics::makeMetric(metrics::MetricKind::Etx);
  const auto spp = metrics::makeMetric(metrics::MetricKind::Spp);

  const double etxLong = pathCost(*etx, {0.8, 0.8, 0.8});
  const double etxShort = pathCost(*etx, {0.9, 0.4});
  const double sppLong = pathCost(*spp, {0.8, 0.8, 0.8});
  const double sppShort = pathCost(*spp, {0.9, 0.4});

  std::printf("Figure 3 — ETX vs SPP path choice\n");
  std::printf("%-10s  %8s  %8s\n", "path", "ETX", "SPP");
  std::printf("%-10s  %8.2f  %8.3f\n", "A-B-C-D", etxLong, sppLong);
  std::printf("%-10s  %8.2f  %8.3f\n", "A-E-D", etxShort, sppShort);
  std::printf("ETX picks %s; SPP picks %s\n",
              etx->better(etxShort, etxLong) ? "A-E-D" : "A-B-C-D",
              spp->better(sppLong, sppShort) ? "A-B-C-D" : "A-E-D");

  std::printf("\nfull-stack simulation on the same topology (source A, member D):\n");
  for (const auto kind : {metrics::MetricKind::Etx, metrics::MetricKind::Spp}) {
    harness::ScenarioConfig config = figure3Scenario(11);
    config.protocol = harness::ProtocolSpec::with(kind);
    harness::Simulation sim{std::move(config)};
    const auto results = sim.run();
    std::printf("  ODMRP_%-5s PDR %.4f\n", metrics::toString(kind), results.pdr);
  }
  printPaperReference("Figure 3",
                      "ETX: 3.75 vs 3.61 (picks lossy A-E-D); SPP: 0.512 vs 0.36 (avoids it)");
  return 0;
}
