#include "mesh/testbed/loss_link_model.hpp"

#include <algorithm>

namespace mesh::testbed {

TimeVaryingLossModel::TimeVaryingLossModel(const sim::Simulator& simulator,
                                           std::size_t nodeCount,
                                           const std::vector<FloorLink>& links,
                                           const LossModelParams& params,
                                           Rng rng)
    : StaticLinkModel{nodeCount},
      simulator_{simulator},
      params_{params} {
  setLostPowerW(params_.lostPowerW);
  setDistanceM(params_.distanceM);

  const auto steps = static_cast<std::size_t>(
      params_.horizon.ns() / params_.stepInterval.ns()) + 2;

  for (const FloorLink& link : links) {
    setSymmetric(link.a, link.b, params_.goodPowerW);

    Rng linkRng = rng.fork("link", (static_cast<std::uint64_t>(link.a) << 16) | link.b);
    std::vector<double> schedule(steps);
    const double stepS = params_.stepInterval.toSeconds();

    if (!link.lossy) {
      // Solid link: gentle mean-reverting walk inside its class.
      const double base = linkRng.uniform(params_.solidLossLo, params_.solidLossHi);
      double rate = base;
      for (std::size_t s = 0; s < steps; ++s) {
        schedule[s] = rate;
        rate += params_.meanReversion * (base - rate) +
                linkRng.normal(0.0, params_.wanderSigma);
        rate = std::clamp(rate, 0.0, params_.solidLossHi + 0.05);
      }
    } else {
      // Dashed link: alternate bad and good episodes; each episode draws
      // its own loss level and exp-distributed length.
      bool good = false;  // start bad — that is what the ping survey saw
      double level = linkRng.uniform(params_.dashedLossLo, params_.dashedLossHi);
      double remainingS =
          params_.badEpisodeMean.toSeconds() * linkRng.uniform(0.5, 1.5);
      for (std::size_t s = 0; s < steps; ++s) {
        schedule[s] = std::clamp(level + linkRng.normal(0.0, params_.wanderSigma),
                                 0.0, 1.0);
        remainingS -= stepS;
        if (remainingS <= 0.0) {
          good = !good;
          if (good) {
            level = linkRng.uniform(params_.goodEpisodeLossLo,
                                    params_.goodEpisodeLossHi);
            remainingS =
                params_.goodEpisodeMean.toSeconds() * linkRng.uniform(0.5, 1.5);
          } else {
            level = linkRng.uniform(params_.dashedLossLo, params_.dashedLossHi);
            remainingS =
                params_.badEpisodeMean.toSeconds() * linkRng.uniform(0.5, 1.5);
          }
        }
      }
    }
    const std::size_t index = schedules_.size();
    schedules_.push_back(std::move(schedule));
    scheduleOf_[net::LinkKey{link.a, link.b}] = index;
    scheduleOf_[net::LinkKey{link.b, link.a}] = index;
  }
}

double TimeVaryingLossModel::lossRateNow(net::NodeId from, net::NodeId to) const {
  const auto it = scheduleOf_.find(net::LinkKey{from, to});
  if (it == scheduleOf_.end()) return 1.0;  // non-adjacent: nothing arrives
  return scheduledRate(from, to, simulator_.now());
}

double TimeVaryingLossModel::scheduledRate(net::NodeId a, net::NodeId b,
                                           SimTime at) const {
  const auto it = scheduleOf_.find(net::LinkKey{a, b});
  MESH_REQUIRE(it != scheduleOf_.end());
  const auto& schedule = schedules_[it->second];
  auto step = static_cast<std::size_t>(at.ns() / params_.stepInterval.ns());
  step = std::min(step, schedule.size() - 1);
  return schedule[step];
}

std::unique_ptr<TimeVaryingLossModel> makePurdueFloorModel(
    const sim::Simulator& simulator, const LossModelParams& params, Rng rng) {
  return std::make_unique<TimeVaryingLossModel>(
      simulator, kNodeCount, Floorplan::links(), params, rng);
}

}  // namespace mesh::testbed
