#pragma once
// SmallCallback: a move-only `void()` callable with small-buffer storage.
//
// The event queue runs tens of millions of callbacks per simulation; with
// std::function every scheduled event whose capture exceeds libstdc++'s
// 16-byte inline buffer costs a heap round trip on the hottest path in the
// system. SmallCallback stores captures of up to kInlineBytes (48 — sized
// for the channel's delivery lambda, the largest hot-path capture) inline
// in the event slab; only oversized or throwing-move captures fall back to
// a single heap allocation. Unlike std::function it also accepts move-only
// captures (e.g. a unique_ptr riding along in a deferred action).

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mesh::sim {

class SmallCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  // True when F is stored in the inline buffer (no heap allocation).
  // Exposed so tests can pin the inline/heap split per capture size.
  template <typename F>
  static constexpr bool storedInline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    emplace(std::forward<F>(f));
  }

  // Assign a new callable directly into this object's storage — one
  // construction of the capture instead of the construct-then-relocate a
  // temporary SmallCallback would cost. The event queue's push path builds
  // every hot callback in its slot through this.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

 private:
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (storedInline<F>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      manage_ = [](Op op, void* self, void* other) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
        if (op == Op::RelocateTo) ::new (other) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
      manage_ = [](Op op, void* self, void* other) {
        Fn** slot = std::launder(reinterpret_cast<Fn**>(self));
        if (op == Op::RelocateTo) {
          ::new (other) Fn*(*slot);  // steal the pointer, nothing to free
        } else {
          delete *slot;
        }
      };
    }
  }

 public:
  SmallCallback(SmallCallback&& o) noexcept
      : invoke_{o.invoke_}, manage_{o.manage_} {
    if (manage_ != nullptr) o.manage_(Op::RelocateTo, o.storage_, storage_);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  SmallCallback& operator=(SmallCallback&& o) noexcept {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      if (manage_ != nullptr) o.manage_(Op::RelocateTo, o.storage_, storage_);
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void reset() {
    if (manage_ != nullptr) {
      manage_(Op::Destroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  enum class Op : std::uint8_t { RelocateTo, Destroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* other);

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  InvokeFn invoke_{nullptr};
  ManageFn manage_{nullptr};
};

}  // namespace mesh::sim
