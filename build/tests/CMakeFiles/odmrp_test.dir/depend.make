# Empty dependencies file for odmrp_test.
# This may be replaced when dependencies are built.
