#include "mesh/testbed/floorplan.hpp"

namespace mesh::testbed {

const std::array<int, kNodeCount>& Floorplan::labels() {
  static const std::array<int, kNodeCount> kLabels{1, 2, 3, 4, 5, 7, 9, 10};
  return kLabels;
}

net::NodeId Floorplan::idForLabel(int label) {
  const auto& all = labels();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i] == label) return static_cast<net::NodeId>(i);
  }
  MESH_REQUIRE(false);
  return net::kInvalidNode;
}

std::vector<Vec2> Floorplan::positions() {
  // Floor is ~73 m × 26 m; coordinates eyeballed from Figure 4.
  const auto id = [](int label) { return Floorplan::idForLabel(label); };
  std::vector<Vec2> p(kNodeCount);
  p[id(5)] = {6.0, 20.0};
  p[id(4)] = {9.0, 5.0};
  p[id(9)] = {22.0, 7.0};
  p[id(7)] = {33.0, 18.0};
  p[id(3)] = {45.0, 11.0};
  p[id(2)] = {58.0, 20.0};
  p[id(1)] = {64.0, 9.0};
  p[id(10)] = {68.0, 22.0};
  return p;
}

const std::vector<FloorLink>& Floorplan::links() {
  const auto id = [](int label) { return Floorplan::idForLabel(label); };
  static const std::vector<FloorLink> kLinks{
      // Dashed (lossy) links.
      {id(2), id(5), true},
      {id(4), id(7), true},
      {id(1), id(3), true},
      {id(9), id(3), true},
      // Solid (low-loss) links.
      {id(2), id(10), false},
      {id(10), id(5), false},
      {id(4), id(9), false},
      {id(9), id(7), false},
      {id(2), id(7), false},
      {id(2), id(1), false},
      {id(7), id(3), false},
      {id(4), id(10), false},
  };
  return kLinks;
}

std::vector<Floorplan::GroupDef> Floorplan::paperGroups() {
  return {
      GroupDef{1, {idForLabel(2)}, {idForLabel(3), idForLabel(5)}},
      GroupDef{2, {idForLabel(4)}, {idForLabel(1), idForLabel(7)}},
  };
}

}  // namespace mesh::testbed
