#pragma once
// Small-scale fading models.
//
// Fading multiplies the mean received power by a random per-packet gain.
// The paper uses Rayleigh fading ("appropriate for environments with many
// large reflectors ... where the sender and the receiver are not in
// Line-of-Sight"): for a Rayleigh channel the power gain |h|² is Exp(1),
// so a link whose mean power sits exactly at the reception threshold
// succeeds with probability e⁻¹ ≈ 37% — this is what makes long links
// lossy and drives every throughput result in Section 4.

#include <cmath>

#include "mesh/common/assert.hpp"
#include "mesh/common/rng.hpp"

namespace mesh::phy {

class FadingModel {
 public:
  virtual ~FadingModel() = default;
  // Multiplicative power gain for one packet on one link. Must have unit
  // mean so that fading does not change average link budget.
  virtual double powerGain(Rng& rng) const = 0;
};

class NoFading final : public FadingModel {
 public:
  double powerGain(Rng&) const override { return 1.0; }
};

class RayleighFading final : public FadingModel {
 public:
  double powerGain(Rng& rng) const override { return rng.rayleighPowerGain(); }

  // Closed-form packet success probability for a link whose mean power is
  // `margin` times the threshold: P(gain >= 1/margin) = exp(-1/margin).
  // Used by tests to validate the sampled behaviour.
  static double successProbability(double margin) {
    MESH_REQUIRE(margin > 0.0);
    return std::exp(-1.0 / margin);
  }
};

// Ricean fading with K-factor (ratio of line-of-sight to scattered power);
// K = 0 degenerates to Rayleigh. Gain is |h|² of h = LOS + CN(0, σ²),
// normalized to unit mean.
class RiceanFading final : public FadingModel {
 public:
  explicit RiceanFading(double kFactor) : k_{kFactor} { MESH_REQUIRE(kFactor >= 0.0); }

  double powerGain(Rng& rng) const override {
    // h = sqrt(K/(K+1)) + CN(0, 1/(K+1)); E[|h|²] = 1.
    const double sigma = std::sqrt(1.0 / (2.0 * (k_ + 1.0)));
    const double losAmp = std::sqrt(k_ / (k_ + 1.0));
    const double re = losAmp + rng.normal(0.0, sigma);
    const double im = rng.normal(0.0, sigma);
    return re * re + im * im;
  }

  double kFactor() const { return k_; }

 private:
  double k_;
};

}  // namespace mesh::phy
