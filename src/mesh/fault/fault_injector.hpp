#pragma once
// FaultInjector: executes a FaultSchedule against a running simulation.
//
// The injector hooks the simulator clock (one scheduled event per fault
// boundary) and mutates PHY state through the narrow interfaces built for
// it — Radio::setFailed / Radio::injectNoise / Channel::overrideLinkLoss —
// never by reaching into protocol internals: everything above the PHY
// (MAC retries, ODMRP forwarding-group refresh, probe decay) reacts to a
// fault exactly as it would to real silence. Every application and
// clearance is recorded through the TraceCollector as FaultInject /
// FaultClear records, so traces are self-describing and the determinism
// contract (same seed + schedule => byte-identical trace) covers faults.

#include <cstdint>
#include <functional>

#include "mesh/fault/fault_schedule.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::fault {

struct FaultInjectorStats {
  std::uint64_t applied{0};
  std::uint64_t cleared{0};
  std::uint64_t crashes{0};
  std::uint64_t blackouts{0};
  std::uint64_t lossRamps{0};
  std::uint64_t bursts{0};
  std::uint64_t blackholes{0};
  std::uint64_t queueDrops{0};  // MacQueueDrop applications
};

class FaultInjector {
 public:
  // Called with (victim, active) when a ProbeBlackhole begins/ends; the
  // harness wires this to MeshNode::setProbeBlackhole. Unset: blackholes
  // are counted but have no effect (pure-PHY rigs).
  using BlackholeHook = std::function<void(net::NodeId, bool)>;
  // Same shape for MacQueueDrop faults; the harness wires it to
  // MeshNode::setQueueDropFault (which forwards to the MAC).
  using QueueDropHook = std::function<void(net::NodeId, bool)>;

  FaultInjector(sim::Simulator& simulator, phy::Channel& channel,
                FaultSchedule schedule);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void setTrace(trace::TraceCollector* collector) { trace_ = collector; }
  void setBlackholeHook(BlackholeHook hook) { blackhole_ = std::move(hook); }
  void setQueueDropHook(QueueDropHook hook) { queueDrop_ = std::move(hook); }

  // Schedules apply/clear callbacks for every event in the schedule. Call
  // once, before the run; events already in the past are rejected.
  void arm();

  // Immediate application/clearance at the current sim time — tests drive
  // the injector directly without a schedule.
  void applyNow(const FaultEvent& event) { apply(event); }
  void clearNow(const FaultEvent& event) { clear(event); }

  const FaultSchedule& schedule() const { return schedule_; }
  const FaultInjectorStats& stats() const { return stats_; }

 private:
  void apply(const FaultEvent& event);
  void clear(const FaultEvent& event);
  void rampStep(const FaultEvent& event, int step);
  void traceFault(trace::EventType type, const FaultEvent& event);

  sim::Simulator& simulator_;
  phy::Channel& channel_;
  FaultSchedule schedule_;
  trace::TraceCollector* trace_{nullptr};
  BlackholeHook blackhole_;
  QueueDropHook queueDrop_;
  bool armed_{false};
  FaultInjectorStats stats_;
};

}  // namespace mesh::fault
