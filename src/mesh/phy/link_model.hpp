#pragma once
// LinkModel: how the channel decides per-frame received power on a link.
//
// Two implementations exist:
//  * GeometricLinkModel — positions + propagation model + fading; the
//    simulation substrate (Glomosim replacement).
//  * testbed::LossLinkModel (in mesh/testbed) — a measured-loss emulation
//    of the 8-node Purdue deployment, where link quality is defined by
//    time-varying loss rates rather than geometry.
//
// Keeping this behind one interface lets the whole stack above the channel
// (radio, MAC, ODMRP, metrics) run unchanged on either substrate, exactly
// as the paper runs the same protocol code in Glomosim and on the testbed.

#include <memory>
#include <utility>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/phy/mobility.hpp"
#include "mesh/phy/propagation.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::phy {

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  // Mean (fading-free) received power on the directed link. Used to build
  // the channel's neighbor cache: receivers whose mean power is negligible
  // even with fading headroom are skipped entirely.
  virtual double meanRxPowerW(net::NodeId from, net::NodeId to) const = 0;

  // Per-frame received power sample (mean × fading draw).
  virtual double sampleRxPowerW(net::NodeId from, net::NodeId to, Rng& rng) const = 0;

  // Distance used for propagation delay; may be zero for emulated links.
  virtual double distanceM(net::NodeId from, net::NodeId to) const = 0;
};

class GeometricLinkModel final : public LinkModel {
 public:
  GeometricLinkModel(PhyParams params, std::vector<Vec2> positions,
                     std::unique_ptr<PropagationModel> propagation,
                     std::unique_ptr<FadingModel> fading)
      : params_{params},
        positions_{std::move(positions)},
        propagation_{std::move(propagation)},
        fading_{std::move(fading)} {
    MESH_REQUIRE(propagation_ != nullptr);
    MESH_REQUIRE(fading_ != nullptr);
  }

  double meanRxPowerW(net::NodeId from, net::NodeId to) const override {
    return propagation_->rxPowerW(params_, position(from), position(to));
  }

  double sampleRxPowerW(net::NodeId from, net::NodeId to, Rng& rng) const override {
    return meanRxPowerW(from, to) * fading_->powerGain(rng);
  }

  double distanceM(net::NodeId from, net::NodeId to) const override {
    return position(from).distanceTo(position(to));
  }

  std::size_t nodeCount() const { return positions_.size(); }
  Vec2 position(net::NodeId id) const {
    MESH_REQUIRE(id < positions_.size());
    return positions_[id];
  }
  const PhyParams& params() const { return params_; }

 private:
  PhyParams params_;
  std::vector<Vec2> positions_;
  std::unique_ptr<PropagationModel> propagation_;
  std::unique_ptr<FadingModel> fading_;
};

// Geometry + mobility: positions are functions of the simulation clock.
// Used with Channel::enableReachabilityRefresh so the neighbor cache
// follows the nodes around.
class MobileGeometricLinkModel final : public LinkModel {
 public:
  MobileGeometricLinkModel(const sim::Simulator& simulator, PhyParams params,
                           std::unique_ptr<MobilityModel> mobility,
                           std::unique_ptr<PropagationModel> propagation,
                           std::unique_ptr<FadingModel> fading)
      : simulator_{simulator},
        params_{params},
        mobility_{std::move(mobility)},
        propagation_{std::move(propagation)},
        fading_{std::move(fading)} {
    MESH_REQUIRE(mobility_ != nullptr);
    MESH_REQUIRE(propagation_ != nullptr);
    MESH_REQUIRE(fading_ != nullptr);
  }

  double meanRxPowerW(net::NodeId from, net::NodeId to) const override {
    const SimTime now = simulator_.now();
    return propagation_->rxPowerW(params_, mobility_->positionAt(from, now),
                                  mobility_->positionAt(to, now));
  }

  double sampleRxPowerW(net::NodeId from, net::NodeId to, Rng& rng) const override {
    return meanRxPowerW(from, to) * fading_->powerGain(rng);
  }

  double distanceM(net::NodeId from, net::NodeId to) const override {
    const SimTime now = simulator_.now();
    return mobility_->positionAt(from, now)
        .distanceTo(mobility_->positionAt(to, now));
  }

  const MobilityModel& mobility() const { return *mobility_; }

 private:
  const sim::Simulator& simulator_;
  PhyParams params_;
  std::unique_ptr<MobilityModel> mobility_;
  std::unique_ptr<PropagationModel> propagation_;
  std::unique_ptr<FadingModel> fading_;
};

}  // namespace mesh::phy
