#pragma once
// GatewaySet: which nodes bridge collision domains, and how they are chosen.
//
// PR 7's channel plan partitions the PHY into orthogonal collision domains,
// which makes multicast groups channel-local: a JOIN QUERY flooded on
// channel 0 never reaches a member on channel 1. A gateway is a node with
// one radio per channel — its home stack lives in its plan-assigned domain
// and an extra Radio+Mac pair per foreign domain gives it a presence in
// every channel (see gateway_relay.hpp for the handoff protocol).
//
// Selection is pluggable and, like the channel plan itself, strictly
// RNG-free: the set must be a pure function of (plan, positions, config) so
// gateway runs stay byte-identical across worker counts and job shardings.

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/channelplan/channel_plan.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/net/addr.hpp"

namespace mesh::gateway {

enum class GatewaySelect : std::uint8_t {
  EveryK = 0,    // ids floor(i·n/g): even striping over the id space
  Boundary = 1,  // greedy domain-boundary cover over the spatial grid
  Explicit = 2,  // caller-provided node list (gateway_nodes config key)
};

const char* toString(GatewaySelect select);
// Returns false when `text` names no known strategy.
bool gatewaySelectFromString(const std::string& text, GatewaySelect& out);

struct GatewaySet {
  GatewaySelect select{GatewaySelect::EveryK};
  std::vector<net::NodeId> nodes;  // ascending, deduplicated
};

// Builds the gateway set. `count` is the requested number of gateways
// (ignored for Explicit, where `explicitNodes` is the set verbatim).
// Boundary scores each node by the set of distinct (domainA, domainB)
// boundary pairs it can bridge — nodes of OTHER domains within `radiusM` —
// and greedily picks cover-maximizing nodes (ties: more cross-domain
// neighbors, then lowest id), so gateways land where domains actually meet
// instead of striping blindly over the id space.
GatewaySet makeGatewaySet(GatewaySelect select, std::size_t count,
                          const std::vector<net::NodeId>& explicitNodes,
                          const channelplan::ChannelPlan& plan,
                          const std::vector<Vec2>& positions, double radiusM);

}  // namespace mesh::gateway
