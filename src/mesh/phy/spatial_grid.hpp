#pragma once
// SpatialGrid: a uniform grid over radio positions for O(k) range queries.
//
// The channel's reachability build used to test every ordered pair of
// radios — O(n²) mean-power evaluations per rebuild — which caps the
// simulator near the paper's 50-node scale. The grid buckets radios by
// position so a rebuild enumerates, per transmitter, only the radios that
// could possibly lie within the model's maximum reach radius.
//
// The grid is a *pruning* structure, never an oracle: `candidatesWithin`
// must return a superset of all radios within `radiusM` of the query
// center (false positives are fine — every candidate still goes through
// the channel's exact mean-power predicate), and it must never miss a
// radio inside the radius. That superset contract is what keeps the
// grid-built receiver sets bit-identical to the full O(n²) scan.
//
// Layout: CSR buckets (one flat index array + per-cell offsets), built
// with a counting sort that preserves radio-index order within each cell.
// Cells whose closest point to the query center is farther than the query
// radius are skipped, so fine cells (cell size < radius) prune close to
// the ideal disk instead of a bounding box.

#include <cstdint>
#include <vector>

#include "mesh/common/assert.hpp"
#include "mesh/common/vec2.hpp"

namespace mesh::phy {

class SpatialGrid {
 public:
  // Rebuilds the grid over `positions` (indexed by radio index) with
  // square cells of `cellSizeM`. The grid covers the positions' bounding
  // box; all positions are valid, including duplicates and points on cell
  // boundaries (a boundary point lands in exactly one cell via floor()).
  void build(const std::vector<Vec2>& positions, double cellSizeM);

  // Appends to `out` the index of every radio whose position may lie
  // within `radiusM` of `center` — a conservative superset (cell-level
  // pruning only; no per-radio distance test). Indices arrive grouped by
  // cell, NOT globally sorted; callers that need deterministic order must
  // sort. `center` need not be inside the grid.
  void candidatesWithin(Vec2 center, double radiusM,
                        std::vector<std::uint32_t>& out) const;

  bool built() const { return cellSizeM_ > 0.0; }
  double cellSizeM() const { return cellSizeM_; }
  std::size_t cellCount() const { return cols_ * rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }
  std::size_t radioCount() const {
    return built() ? cellOf_.size() : 0;
  }

  // Resident size estimate for cache accounting (the snapshot cache's
  // memory budget, DESIGN §14). Counts the CSR arrays, not sizeof(*this).
  std::size_t approxBytes() const {
    return (cellOf_.capacity() + cellStart_.capacity() +
            bucketed_.capacity() + next_.capacity()) *
           sizeof(std::uint32_t);
  }

 private:
  std::size_t cellIndexOf(Vec2 p) const;

  double cellSizeM_{0.0};
  Vec2 origin_{};             // bounding-box min corner
  std::size_t cols_{0};
  std::size_t rows_{0};
  std::vector<std::uint32_t> cellOf_;      // radio index -> cell index
  std::vector<std::uint32_t> cellStart_;   // CSR offsets, size cells+1
  std::vector<std::uint32_t> bucketed_;    // radio indices, cell-major,
                                           // ascending within each cell
  std::vector<std::uint32_t> next_;        // counting-sort cursor scratch
};

}  // namespace mesh::phy
