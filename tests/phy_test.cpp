// Unit tests for the PHY: propagation models, fading, radio + channel
// reception/interference behaviour.

#include <gtest/gtest.h>

#include <memory>

#include "mesh/common/rng.hpp"
#include "mesh/common/stats.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/phy/frame.hpp"
#include "mesh/phy/link_model.hpp"
#include "mesh/phy/propagation.hpp"
#include "mesh/phy/radio.hpp"
#include "mesh/phy/static_link_model.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::phy {
namespace {

using namespace mesh::time_literals;

PhyParams defaultParams() { return PhyParams{}; }

// ------------------------------------------------------------ propagation

TEST(Propagation, FriisMatchesClosedForm) {
  const PhyParams p = defaultParams();
  const double lambda = p.wavelengthM();
  const double d = 100.0;
  const double expected =
      p.txPowerW * lambda * lambda / (16.0 * 9.869604401089358 * d * d);
  FriisModel friis;
  EXPECT_NEAR(friis.rxPowerW(p, {0, 0}, {d, 0}), expected, expected * 1e-9);
}

TEST(Propagation, FriisInverseSquare) {
  const PhyParams p = defaultParams();
  const double p100 = FriisModel::atDistance(p, 100.0);
  const double p200 = FriisModel::atDistance(p, 200.0);
  EXPECT_NEAR(p100 / p200, 4.0, 1e-9);
}

TEST(Propagation, TwoRayCrossoverIsContinuous) {
  const PhyParams p = defaultParams();
  const double dc = TwoRayGroundModel::crossoverDistanceM(p);
  EXPECT_GT(dc, 50.0);
  EXPECT_LT(dc, 120.0);  // ~86 m for 914 MHz, h=1.5 m
  const double below = TwoRayGroundModel::atDistance(p, dc * 0.9999);
  const double above = TwoRayGroundModel::atDistance(p, dc * 1.0001);
  EXPECT_NEAR(below / above, 1.0, 0.01);
}

TEST(Propagation, TwoRayInverseFourthBeyondCrossover) {
  const PhyParams p = defaultParams();
  const double p200 = TwoRayGroundModel::atDistance(p, 200.0);
  const double p400 = TwoRayGroundModel::atDistance(p, 400.0);
  EXPECT_NEAR(p200 / p400, 16.0, 1e-6);
}

TEST(Propagation, WaveLanConstantsGive250mRange) {
  // The classic ns-2/Glomosim calibration: mean power at 250 m equals the
  // reception threshold, at 550 m the carrier-sense threshold.
  const PhyParams p = defaultParams();
  EXPECT_NEAR(TwoRayGroundModel::atDistance(p, 250.0) / p.rxThresholdW, 1.0, 0.02);
  EXPECT_NEAR(TwoRayGroundModel::atDistance(p, 550.0) / p.csThresholdW, 1.0, 0.02);
}

TEST(Propagation, LogDistanceExponent) {
  const PhyParams p = defaultParams();
  LogDistanceModel model{3.0, 1.0};
  const double p10 = model.rxPowerW(p, {0, 0}, {10.0, 0});
  const double p20 = model.rxPowerW(p, {0, 0}, {20.0, 0});
  EXPECT_NEAR(p10 / p20, 8.0, 1e-9);
}

TEST(Propagation, ZeroDistanceIsFinite) {
  const PhyParams p = defaultParams();
  EXPECT_TRUE(std::isfinite(FriisModel::atDistance(p, 0.0)));
  EXPECT_TRUE(std::isfinite(TwoRayGroundModel::atDistance(p, 0.0)));
}

// ----------------------------------------------------------------- fading

TEST(Fading, NoFadingIsUnity) {
  Rng rng{1};
  NoFading f;
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(f.powerGain(rng), 1.0);
}

TEST(Fading, RayleighUnitMeanAndTailProbability) {
  Rng rng{2};
  RayleighFading f;
  OnlineStats s;
  int above1 = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double g = f.powerGain(rng);
    s.add(g);
    above1 += (g >= 1.0);
  }
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
  EXPECT_NEAR(static_cast<double>(above1) / kN, std::exp(-1.0), 0.01);
}

TEST(Fading, RayleighSuccessProbabilityClosedForm) {
  EXPECT_NEAR(RayleighFading::successProbability(1.0), std::exp(-1.0), 1e-12);
  // Strong link (margin 39x, ~100 m in the two-ray regime): ~97.5%.
  EXPECT_GT(RayleighFading::successProbability(39.0), 0.97);
  // Weak link (margin 0.5): very lossy.
  EXPECT_LT(RayleighFading::successProbability(0.5), 0.2);
}

TEST(Fading, RiceanUnitMeanForAllK) {
  for (double k : {0.0, 1.0, 5.0, 20.0}) {
    Rng rng{3};
    RiceanFading f{k};
    OnlineStats s;
    for (int i = 0; i < 100'000; ++i) s.add(f.powerGain(rng));
    EXPECT_NEAR(s.mean(), 1.0, 0.03) << "K=" << k;
  }
}

TEST(Fading, RiceanVarianceShrinksWithK) {
  auto varianceFor = [](double k) {
    Rng rng{4};
    RiceanFading f{k};
    OnlineStats s;
    for (int i = 0; i < 50'000; ++i) s.add(f.powerGain(rng));
    return s.variance();
  };
  EXPECT_GT(varianceFor(0.0), varianceFor(5.0));
  EXPECT_GT(varianceFor(5.0), varianceFor(20.0));
}

// --------------------------------------------------- radio + channel rig

struct Rig {
  sim::Simulator simulator;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Radio>> radios;

  // Builds a geometric rig with the given positions.
  explicit Rig(std::vector<Vec2> positions, bool rayleigh = false,
               std::uint64_t seed = 99) {
    PhyParams params;
    std::unique_ptr<FadingModel> fading;
    if (rayleigh) {
      fading = std::make_unique<RayleighFading>();
    } else {
      fading = std::make_unique<NoFading>();
    }
    auto model = std::make_unique<GeometricLinkModel>(
        params, positions, std::make_unique<TwoRayGroundModel>(),
        std::move(fading));
    channel = std::make_unique<Channel>(simulator, std::move(model),
                                        Rng{seed}.fork("channel"));
    for (std::size_t i = 0; i < positions.size(); ++i) {
      radios.push_back(std::make_unique<Radio>(
          simulator, static_cast<net::NodeId>(i), params));
      channel->attach(*radios.back());
    }
  }

  // Builds a rig over an explicit link model.
  Rig(std::unique_ptr<LinkModel> model, std::size_t n, std::uint64_t seed = 99) {
    PhyParams params;
    channel = std::make_unique<Channel>(simulator, std::move(model),
                                        Rng{seed}.fork("channel"));
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<Radio>(
          simulator, static_cast<net::NodeId>(i), params));
      channel->attach(*radios.back());
    }
  }

  PhyFramePtr frame(std::size_t bytes = 100) {
    return makeFrame(std::vector<std::uint8_t>(bytes, 0xAB), nullptr);
  }

  SimTime airtime(std::size_t bytes = 100) {
    return radios[0]->params().frameAirtime(bytes);
  }
};

TEST(Radio, DeliversFrameWithinRange) {
  Rig rig{{{0, 0}, {100, 0}}};
  int delivered = 0;
  rig.radios[1]->setReceiveCallback(
      [&](const PhyFramePtr& f, const RxInfo& info) {
        ++delivered;
        EXPECT_EQ(f->sizeBytes(), 100u);
        EXPECT_EQ(info.transmitter, 0);
        EXPECT_GT(info.sinr, 10.0);
      });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rig.radios[1]->stats().framesDelivered, 1u);
}

TEST(Radio, NoDeliveryBeyondReceptionRange) {
  // 400 m: above CS significance is possible but below RX threshold.
  Rig rig{{{0, 0}, {400, 0}}};
  int delivered = 0;
  rig.radios[1]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.radios[1]->stats().framesBelowThreshold, 1u);
}

TEST(Radio, CarrierSenseWithoutDelivery) {
  // At 400 m (between 250 m RX and 550 m CS range) the medium must read
  // busy during the frame even though nothing is decodable.
  Rig rig{{{0, 0}, {400, 0}}};
  bool sensedBusy = false;
  rig.radios[1]->setMediumCallback([&](bool busy) { sensedBusy |= busy; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_TRUE(sensedBusy);
  EXPECT_FALSE(rig.radios[1]->mediumBusy());  // back to idle afterwards
}

TEST(Radio, OutOfSensingRangeIsSilent) {
  Rig rig{{{0, 0}, {1400, 0}}};
  bool sensedBusy = false;
  rig.radios[1]->setMediumCallback([&](bool busy) { sensedBusy |= busy; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_FALSE(sensedBusy);
}

TEST(Radio, SimultaneousTransmissionsCollide) {
  // Two equidistant transmitters, one receiver in the middle: neither
  // frame survives the SINR check (equal power => SINR ~ 1 << 10).
  Rig rig{{{0, 0}, {200, 0}, {100, 0}}};
  int delivered = 0;
  rig.radios[2]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.radios[1]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.radios[2]->stats().framesCorrupted, 1u);
}

TEST(Radio, CaptureStrongFrameSurvivesWeakInterference) {
  // Interferer far away (weak at receiver), desired sender close: the
  // locked frame's SINR stays above 10 dB and it is delivered.
  Rig rig{{{0, 0}, {500, 100}, {50, 0}}};
  int delivered = 0;
  rig.radios[2]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.radios[1]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Radio, LateInterferenceCorruptsLockedFrame) {
  // The receiver locks onto a clean frame; halfway through, a same-power
  // transmitter starts — SINR dips, corruption is latched.
  Rig rig{{{0, 0}, {200, 0}, {100, 0}}};
  int delivered = 0;
  rig.radios[2]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.schedule(rig.airtime() / 2, [&] {
    rig.radios[1]->transmit(rig.frame(), rig.airtime());
  });
  rig.simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.radios[2]->stats().framesCorrupted, 1u);
}

TEST(Radio, HalfDuplexCannotReceiveWhileTransmitting) {
  Rig rig{{{0, 0}, {100, 0}}};
  int delivered = 0;
  rig.radios[1]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  // Radio 1 transmits for the whole window radio 0's frame arrives in.
  rig.radios[1]->transmit(rig.frame(1000), rig.airtime(1000));
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_GE(rig.radios[1]->stats().framesMissedBusy, 1u);
}

TEST(Radio, SecondDecodableFrameWhileLockedIsMissed) {
  Rig rig{{{0, 0}, {40, 150}, {40, 0}}};
  int delivered = 0;
  rig.radios[2]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  // Radio 1 is at 150 m from the receiver: decodable in isolation
  // (~7.7x the threshold) but ~16 dB below radio 0's 40 m frame, so it
  // cannot steal the lock and does not corrupt it either.
  rig.simulator.schedule(10_us, [&] {
    rig.radios[1]->transmit(rig.frame(), rig.airtime());
  });
  rig.simulator.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(rig.radios[2]->stats().framesMissedBusy, 1u);
}

TEST(Radio, TxStatsAccumulate) {
  Rig rig{{{0, 0}, {100, 0}}};
  rig.radios[0]->transmit(rig.frame(200), rig.airtime(200));
  rig.simulator.run();
  EXPECT_EQ(rig.radios[0]->stats().framesSent, 1u);
  EXPECT_EQ(rig.radios[0]->stats().bytesSent, 200u);
  EXPECT_EQ(rig.radios[0]->stats().airtimeTx, rig.airtime(200));
}

TEST(Radio, RayleighLinkAtNominalRangeLosesAboutSixtyPercent) {
  // A 250 m link under Rayleigh fading succeeds with probability ~ e^-1.
  // This is the "long links are lossy" regime of Section 4.2.1.
  Rig rig{{{0, 0}, {250, 0}}, /*rayleigh=*/true};
  int delivered = 0;
  rig.radios[1]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  constexpr int kFrames = 4000;
  for (int i = 0; i < kFrames; ++i) {
    rig.simulator.schedule(SimTime::milliseconds(i * 10),
                           [&] { rig.radios[0]->transmit(rig.frame(), rig.airtime()); });
  }
  rig.simulator.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kFrames, std::exp(-1.0), 0.03);
}

TEST(Radio, RayleighShortLinkIsReliable) {
  Rig rig{{{0, 0}, {100, 0}}, /*rayleigh=*/true};
  int delivered = 0;
  rig.radios[1]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    rig.simulator.schedule(SimTime::milliseconds(i * 10),
                           [&] { rig.radios[0]->transmit(rig.frame(), rig.airtime()); });
  }
  rig.simulator.run();
  EXPECT_GT(static_cast<double>(delivered) / kFrames, 0.95);
}

// ------------------------------------------------------- StaticLinkModel

TEST(StaticLinkModel, DirectedLinks) {
  auto model = std::make_unique<StaticLinkModel>(2);
  model->setLink(0, 1, 1e-9);
  // Reverse direction left at zero: the link is unidirectional.
  EXPECT_DOUBLE_EQ(model->meanRxPowerW(0, 1), 1e-9);
  EXPECT_DOUBLE_EQ(model->meanRxPowerW(1, 0), 0.0);

  Rig rig{std::move(model), 2};
  int forward = 0, backward = 0;
  rig.radios[1]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++forward; });
  rig.radios[0]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++backward; });
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.schedule(100_ms, [&] {
    rig.radios[1]->transmit(rig.frame(), rig.airtime());
  });
  rig.simulator.run();
  EXPECT_EQ(forward, 1);
  EXPECT_EQ(backward, 0);
}

TEST(StaticLinkModel, BernoulliLossRate) {
  auto model = std::make_unique<StaticLinkModel>(2);
  model->setSymmetric(0, 1, 1e-9);
  model->setLossRate(0, 1, 0.4);
  Rig rig{std::move(model), 2, /*seed=*/7};
  int delivered = 0;
  rig.radios[1]->setReceiveCallback(
      [&](const PhyFramePtr&, const RxInfo&) { ++delivered; });
  constexpr int kFrames = 5000;
  for (int i = 0; i < kFrames; ++i) {
    rig.simulator.schedule(SimTime::milliseconds(i * 5),
                           [&] { rig.radios[0]->transmit(rig.frame(), rig.airtime()); });
  }
  rig.simulator.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kFrames, 0.6, 0.03);
}

TEST(Channel, ReachabilityCacheSkipsFarNodes) {
  Rig rig{{{0, 0}, {100, 0}, {5000, 5000}}};
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.run();
  // Only one delivery was scheduled (to the 100 m neighbor).
  EXPECT_EQ(rig.channel->stats().deliveriesScheduled, 1u);
}

TEST(Channel, StatsCountTransmissions) {
  Rig rig{{{0, 0}, {100, 0}}};
  rig.radios[0]->transmit(rig.frame(), rig.airtime());
  rig.simulator.schedule(50_ms, [&] {
    rig.radios[1]->transmit(rig.frame(), rig.airtime());
  });
  rig.simulator.run();
  EXPECT_EQ(rig.channel->stats().transmissions, 2u);
}

}  // namespace
}  // namespace mesh::phy
