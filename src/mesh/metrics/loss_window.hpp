#pragma once
// LossWindow: forward delivery-ratio estimator over the last W probes.
//
// This is the De Couto-style ETX estimator restricted to the *forward*
// direction, as Section 2.2 prescribes for broadcast: the receiver counts
// how many of the sender's last W periodic probes it heard. Because the
// receiver only observes arrivals, silence has to be accounted for at
// query time: when `df()` is asked for, probes that *should* have arrived
// since the last one (gauged by the probe interval) count as lost. Without
// this, a link that dies keeps its last ratio forever.

#include <cstdint>

#include "mesh/common/assert.hpp"
#include "mesh/common/simtime.hpp"

namespace mesh::metrics {

class LossWindow {
 public:
  explicit LossWindow(std::uint32_t windowSize = 10)
      : windowSize_{windowSize} {
    MESH_REQUIRE(windowSize >= 1 && windowSize <= 64);
  }

  // Record reception of probe `seq` at time `now`. Sequence numbers start
  // at 0 and increase by 1 per probe; reordering cannot happen on a
  // broadcast channel, but stale duplicates are ignored defensively.
  void onProbe(std::uint32_t seq, SimTime now) {
    if (!any_) {
      any_ = true;
      bits_ = 1;
      hiSeq_ = seq;
    } else if (seq > hiSeq_) {
      const std::uint32_t shift = seq - hiSeq_;
      bits_ = shift >= 64 ? 0 : bits_ << shift;
      bits_ |= 1;
      hiSeq_ = seq;
    } else if (hiSeq_ - seq < 64) {
      bits_ |= (std::uint64_t{1} << (hiSeq_ - seq));
    }
    lastArrival_ = now;
  }

  bool hasSamples() const { return any_; }
  SimTime lastArrival() const { return lastArrival_; }

  // Forward delivery ratio at time `now`, assuming the sender probes every
  // `interval`. Returns 0 when no probe was ever heard.
  double df(SimTime now, SimTime interval) const {
    if (!any_) return 0.0;
    // Probes expected but unheard since the last arrival. The first one is
    // only "due" a full interval after the last arrival.
    std::uint32_t overdue = 0;
    if (interval > SimTime::zero() && now > lastArrival_) {
      // A probe is counted lost only once a *full* interval has elapsed
      // past its due time (strictly-greater at the boundary): the sender
      // jitters its schedule, so "due exactly now" is not yet a loss.
      overdue = static_cast<std::uint32_t>(
          ((now - lastArrival_).ns() - 1) / interval.ns());
    }
    if (overdue >= windowSize_) return 0.0;

    // Window covers the last (windowSize - overdue) actual probes plus the
    // `overdue` phantom losses.
    const std::uint32_t visible = windowSize_ - overdue;
    std::uint32_t received = 0;
    for (std::uint32_t i = 0; i < visible && i <= hiSeq_; ++i) {
      if (i < 64 && (bits_ >> i) & 1) ++received;
    }
    // During warm-up fewer than windowSize probes have ever been sent;
    // the denominator is what the sender actually emitted (hiSeq_+1),
    // plus the overdue ones.
    const std::uint64_t everSent = static_cast<std::uint64_t>(hiSeq_) + 1 + overdue;
    const std::uint32_t denominator =
        everSent < windowSize_ ? static_cast<std::uint32_t>(everSent) : windowSize_;
    MESH_ASSERT(denominator >= 1);
    return static_cast<double>(received) / denominator;
  }

 private:
  std::uint32_t windowSize_;
  std::uint64_t bits_{0};     // bit i: probe (hiSeq_ - i) received
  std::uint32_t hiSeq_{0};
  bool any_{false};
  SimTime lastArrival_{SimTime::zero()};
};

}  // namespace mesh::metrics
