#include "mesh/odmrp/odmrp.hpp"

#include <utility>

#include "mesh/common/assert.hpp"
#include "mesh/common/log.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::odmrp {

Odmrp::Odmrp(sim::Simulator& simulator, net::NodeId self, OdmrpParams params,
             const metrics::Metric* metric,
             const metrics::NeighborTable* neighbors, SendFn send, Rng rng)
    : simulator_{simulator},
      self_{self},
      params_{params},
      metric_{metric},
      neighbors_{neighbors},
      send_{std::move(send)},
      rng_{rng} {
  MESH_REQUIRE(send_ != nullptr);
  if (metric_ != nullptr) MESH_REQUIRE(neighbors_ != nullptr);
  MESH_REQUIRE(params_.dupForwardAlpha <= params_.memberWindowDelta);
}

// ------------------------------------------------------------------ roles

void Odmrp::joinGroup(net::GroupId group) {
  members_.insert(group);
  if (trace_ != nullptr) {
    trace_->memberJoin(simulator_.now(), self_, group);
  }
}

void Odmrp::traceDrop(const net::PacketPtr& packet, trace::DropReason reason) {
  trace_->drop(simulator_.now(), self_, packet.get(), packet->kind(),
               static_cast<std::uint32_t>(packet->sizeBytes()), reason);
}

void Odmrp::leaveGroup(net::GroupId group) { members_.erase(group); }

void Odmrp::startSource(net::GroupId group) {
  if (queryTimers_.contains(group)) return;
  auto timer = std::make_unique<sim::PeriodicTimer>(simulator_);
  // First query after a random fraction of the interval (desynchronizes
  // multiple sources), then the refresh cycle with small jitter.
  timer->start(
      [this, first = true]() mutable -> SimTime {
        if (first) {
          first = false;
          return params_.queryInterval.scaled(rng_.uniform(0.01, 0.2));
        }
        return params_.queryInterval.scaled(rng_.uniform(0.95, 1.05));
      },
      [this, group] { originateQuery(group); });
  queryTimers_.emplace(group, std::move(timer));
}

void Odmrp::stopSource(net::GroupId group) { queryTimers_.erase(group); }

// ------------------------------------------------------------------ query

void Odmrp::originateQuery(net::GroupId group) {
  const std::uint32_t seq = querySeq_[group]++;
  JoinQuery q;
  q.group = group;
  q.source = self_;
  q.seq = seq;
  q.hopCount = 0;
  q.metricKind = metric_ ? static_cast<std::uint8_t>(metric_->kind()) : 0;
  q.prevHop = self_;
  q.pathCost = metric_ ? metric_->initialPathCost() : 0.0;

  // Swallow echoes of our own query.
  RoundState& rs = rounds_[key(group, self_)];
  rs = RoundState{};
  rs.valid = true;
  rs.seq = seq;
  rs.fgReplySent = true;
  rs.memberReplySent = true;

  ++stats_.queriesOriginated;
  auto packet = q.toPacket(simulator_.now());
  stats_.controlBytesSent += packet->sizeBytes();
  send_(std::move(packet));
}

double Odmrp::chargeIncomingLink(const JoinQuery& query, net::NodeId from) const {
  MESH_ASSERT(metric_ != nullptr);
  const metrics::LinkMeasurement m = neighbors_->measure(from, simulator_.now());
  return metric_->accumulate(query.pathCost, metric_->linkCost(m));
}

void Odmrp::handleQuery(const JoinQuery& query, const net::PacketPtr& packet,
                        net::NodeId from) {
  if (query.source == self_) return;  // our own flood echoed back
  if (query.hopCount >= params_.maxHops) {
    ++stats_.queriesDropped;
    if (trace_ != nullptr) {
      traceDrop(packet, trace::DropReason::RouteTtlExpired);
    }
    return;
  }

  const double cost = metric_ ? chargeIncomingLink(query, from) : 0.0;
  RoundState& rs = rounds_[key(query.group, query.source)];

  if (rs.valid && query.seq < rs.seq) {
    ++stats_.queriesDropped;  // stale round
    if (trace_ != nullptr) {
      traceDrop(packet, trace::DropReason::RouteStaleRound);
    }
    return;
  }
  const bool newRound = !rs.valid || query.seq > rs.seq;

  if (newRound) {
    rs = RoundState{};
    rs.valid = true;
    rs.seq = query.seq;
    rs.bestCost = cost;
    rs.upstream = from;
    rs.hopCount = static_cast<std::uint8_t>(query.hopCount + 1);
    rs.alphaDeadline = simulator_.now() + params_.dupForwardAlpha;
    forwardQuery(query, cost, /*duplicate=*/false);

    if (members_.contains(query.group)) {
      if (metric_ != nullptr) {
        // δ window: buffer duplicates, answer the best at expiry.
        rs.memberReplyArmed = true;
        const net::GroupId group = query.group;
        const net::NodeId source = query.source;
        const std::uint32_t seq = query.seq;
        simulator_.schedule(params_.memberWindowDelta, [this, group, source, seq] {
          auto it = rounds_.find(key(group, source));
          if (it == rounds_.end() || !it->second.valid || it->second.seq != seq) return;
          if (it->second.memberReplySent) return;
          sendMemberReply(group, source);
        });
      } else {
        // Original ODMRP: reply to the first query immediately.
        sendMemberReply(query.group, query.source);
      }
    }
    return;
  }

  // Duplicate of the current round.
  if (metric_ != nullptr && metric_->better(cost, rs.bestCost)) {
    rs.bestCost = cost;
    rs.upstream = from;
    rs.hopCount = static_cast<std::uint8_t>(query.hopCount + 1);
    if (simulator_.now() <= rs.alphaDeadline) {
      forwardQuery(query, cost, /*duplicate=*/true);
    } else {
      ++stats_.queriesDropped;  // improving, but the α window has closed
      if (trace_ != nullptr) {
        traceDrop(packet, trace::DropReason::RouteAlphaExpired);
      }
    }
  } else {
    ++stats_.queriesDropped;
    if (trace_ != nullptr) {
      // Metric runs suppress non-improving duplicates; the original
      // protocol suppresses every duplicate (first query wins).
      traceDrop(packet, metric_ != nullptr
                            ? trace::DropReason::RouteWorseCost
                            : trace::DropReason::RouteDupSuppress);
    }
  }
}

void Odmrp::forwardQuery(const JoinQuery& received, double newCost, bool duplicate) {
  JoinQuery out = received;
  out.hopCount = static_cast<std::uint8_t>(received.hopCount + 1);
  out.prevHop = self_;
  if (metric_ != nullptr) out.pathCost = newCost;

  if (duplicate) {
    ++stats_.duplicateQueriesForwarded;
  } else {
    ++stats_.queriesForwarded;
  }
  auto packet = out.toPacket(simulator_.now());
  stats_.controlBytesSent += packet->sizeBytes();
  sendControl(std::move(packet), params_.queryJitterMax);
}

// ------------------------------------------------------------------ reply

void Odmrp::sendMemberReply(net::GroupId group, net::NodeId source) {
  RoundState& rs = rounds_[key(group, source)];
  MESH_ASSERT(rs.valid);
  if (rs.upstream == net::kInvalidNode) {
    // A member heard the query round but has no upstream to answer
    // through — no route back toward the source this round.
    if (trace_ != nullptr) {
      trace_->drop(simulator_.now(), self_, nullptr, net::PacketKind::Control,
                   0, trace::DropReason::RouteNoRoute);
    }
    return;
  }
  rs.memberReplySent = true;

  JoinReply reply;
  reply.group = group;
  reply.sender = self_;
  reply.seq = rs.seq;
  reply.entries.push_back(JoinReplyEntry{source, rs.upstream});

  ++stats_.repliesOriginated;
  auto packet = reply.toPacket(simulator_.now());
  stats_.controlBytesSent += packet->sizeBytes();
  sendControl(std::move(packet), params_.replyJitterMax);
}

void Odmrp::handleReply(const JoinReply& reply, net::NodeId from) {
  (void)from;
  JoinReply out;
  out.group = reply.group;
  out.sender = self_;
  out.seq = reply.seq;

  for (const JoinReplyEntry& entry : reply.entries) {
    if (entry.nextHop != self_) continue;
    if (entry.source == self_) {
      // The reply chain reached the source: the route is up.
      ++stats_.routeEstablished;
      continue;
    }
    auto it = rounds_.find(key(reply.group, entry.source));
    if (it == rounds_.end() || !it->second.valid || it->second.seq != reply.seq) {
      continue;  // stale round — ignore
    }
    RoundState& rs = it->second;
    setForwardingFlag(reply.group);
    if (!rs.fgReplySent && rs.upstream != net::kInvalidNode) {
      rs.fgReplySent = true;
      out.entries.push_back(JoinReplyEntry{entry.source, rs.upstream});
    }
  }

  if (!out.entries.empty()) {
    ++stats_.repliesForwarded;
    auto packet = out.toPacket(simulator_.now());
    stats_.controlBytesSent += packet->sizeBytes();
    sendControl(std::move(packet), params_.replyJitterMax);
  }
}

void Odmrp::setForwardingFlag(net::GroupId group) {
  fgExpiry_[group] = simulator_.now() + params_.fgTimeout;
}

bool Odmrp::isForwarder(net::GroupId group) const {
  const auto it = fgExpiry_.find(group);
  return it != fgExpiry_.end() && it->second > simulator_.now();
}

// ------------------------------------------------------------------- data

void Odmrp::sendData(net::GroupId group, std::span<const std::uint8_t> payload) {
  DataHeader header;
  header.group = group;
  header.source = self_;
  header.seq = dataSeq_[group]++;

  // Mark our own packet as seen so a forwarded copy is not re-processed.
  dataDupCache_.checkAndInsert(group, self_, header.seq);

  // Header and payload go straight into the pooled packet buffer.
  auto packet = net::Packet::build(
      net::PacketKind::Data, self_, kDataHeaderBytes + payload.size(),
      simulator_.now(), 0, [&](net::ByteWriter& w) {
        header.writeTo(w);
        w.bytes(payload);
      });
  ++stats_.dataOriginated;
  stats_.dataBytesSent += packet->sizeBytes();
  if (trace_ != nullptr) {
    trace_->packetBirth(simulator_.now(), self_, *packet, group);
  }
  send_(packet);
}

void Odmrp::handleData(const net::PacketPtr& packet, net::NodeId from) {
  // Decode-once: every receiver of this broadcast shares one cached parse.
  const DataHeader* header = DataHeader::decode(*packet);
  if (header == nullptr) return;
  if (header->source == self_) return;  // echo of our own data

  if (!dataDupCache_.checkAndInsert(header->group, header->source, header->seq)) {
    ++stats_.dataDuplicates;
    if (trace_ != nullptr) {
      traceDrop(packet, trace::DropReason::RouteDupSuppress);
    }
    return;
  }
  ++dataEdges_[net::LinkKey{from, self_}];

  if (members_.contains(header->group)) {
    ++stats_.dataDelivered;
    if (deliver_) {
      deliver_(header->group, header->source, header->seq, packet,
               packet->bytes().subspan(kDataHeaderBytes));
    }
  }

  if (isForwarder(header->group)) {
    ++stats_.dataForwarded;
    stats_.dataBytesSent += packet->sizeBytes();
    if (trace_ != nullptr) {
      trace_->forward(simulator_.now(), self_, *packet);
    }
    if (params_.dataJitterMax.isZero()) {
      send_(packet);
    } else {
      const SimTime jitter =
          params_.dataJitterMax.scaled(rng_.uniform(0.0, 1.0));
      simulator_.schedule(jitter, [this, packet] { send_(packet); });
    }
  }
}

// --------------------------------------------------------------- dispatch

void Odmrp::onPacket(const net::PacketPtr& packet, net::NodeId from) {
  const auto type = peekType(packet->bytes());
  if (!type) return;
  switch (*type) {
    case MessageType::JoinQuery: {
      const JoinQuery* query = JoinQuery::decode(*packet);
      if (query != nullptr) handleQuery(*query, packet, from);
      break;
    }
    case MessageType::JoinReply: {
      const JoinReply* reply = JoinReply::decode(*packet);
      if (reply != nullptr) handleReply(*reply, from);
      break;
    }
    case MessageType::Data:
      handleData(packet, from);
      break;
  }
}

void Odmrp::sendControl(net::PacketPtr packet, SimTime jitterMax) {
  if (jitterMax.isZero()) {
    send_(std::move(packet));
    return;
  }
  const SimTime jitter = jitterMax.scaled(rng_.uniform(0.0, 1.0));
  simulator_.schedule(jitter, [this, packet = std::move(packet)] { send_(packet); });
}

}  // namespace mesh::odmrp
