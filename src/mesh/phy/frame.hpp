#pragma once
// PhyFrame: what actually travels over the channel.
//
// `bytes` is the serialized MAC frame — its length defines airtime, so it
// must be exact. `payload` is the upper-layer packet riding inside the
// frame; carrying the pointer alongside the bytes preserves simulation
// metadata (creation time for delay measurement, kind for byte accounting)
// without inflating the on-air size. Receivers still *parse* the MAC
// header from `bytes`; the pointer only spares them re-deserializing the
// payload they themselves serialized.

#include <memory>
#include <vector>

#include "mesh/net/packet.hpp"
#include "mesh/rate/tx_vector.hpp"

namespace mesh::phy {

struct PhyFrame {
  std::vector<std::uint8_t> bytes;
  net::PacketPtr payload;  // null for MAC control frames (RTS/CTS/ACK)
  rate::TxVector tx;       // code 0 = legacy fixed-rate path

  std::size_t sizeBytes() const { return bytes.size(); }
};

using PhyFramePtr = std::shared_ptr<const PhyFrame>;

inline PhyFramePtr makeFrame(std::vector<std::uint8_t> bytes,
                             net::PacketPtr payload,
                             rate::TxVector tx = {}) {
  return std::make_shared<const PhyFrame>(
      PhyFrame{std::move(bytes), std::move(payload), tx});
}

}  // namespace mesh::phy
