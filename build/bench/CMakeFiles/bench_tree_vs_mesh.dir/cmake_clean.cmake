file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_vs_mesh.dir/bench_tree_vs_mesh.cpp.o"
  "CMakeFiles/bench_tree_vs_mesh.dir/bench_tree_vs_mesh.cpp.o.d"
  "bench_tree_vs_mesh"
  "bench_tree_vs_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_vs_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
