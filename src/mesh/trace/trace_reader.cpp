#include "mesh/trace/trace_reader.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mesh::trace {
namespace {

// Locates the first character of the value for `"key":`. Our lines are
// flat objects whose keys never appear inside string values, so a plain
// substring scan is sound.
bool findValue(std::string_view line, std::string_view key,
               std::string_view& value) {
  std::string pattern;
  pattern.reserve(key.size() + 3);
  pattern.push_back('"');
  pattern.append(key);
  pattern.append("\":");
  const std::size_t at = line.find(pattern);
  if (at == std::string_view::npos) return false;
  value = line.substr(at + pattern.size());
  return !value.empty();
}

bool kindFromString(const std::string& text, net::PacketKind& out) {
  for (int i = 0; i <= static_cast<int>(net::PacketKind::MacControl); ++i) {
    const auto kind = static_cast<net::PacketKind>(i);
    if (text == net::toString(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

bool jsonFindInt(std::string_view line, std::string_view key,
                 std::int64_t& out) {
  std::string_view value;
  if (!findValue(line, key, value)) return false;
  const std::string token{value.substr(0, value.find_first_of(",}"))};
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str()) return false;
  out = v;
  return true;
}

bool jsonFindUint(std::string_view line, std::string_view key,
                  std::uint64_t& out) {
  std::int64_t v = 0;
  if (!jsonFindInt(line, key, v) || v < 0) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool jsonFindDouble(std::string_view line, std::string_view key, double& out) {
  std::string_view value;
  if (!findValue(line, key, value)) return false;
  const std::string token{value.substr(0, value.find_first_of(",}"))};
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end == token.c_str()) return false;
  out = v;
  return true;
}

bool jsonFindBool(std::string_view line, std::string_view key, bool& out) {
  std::string_view value;
  if (!findValue(line, key, value)) return false;
  if (value.substr(0, 4) == "true") {
    out = true;
    return true;
  }
  if (value.substr(0, 5) == "false") {
    out = false;
    return true;
  }
  return false;
}

bool jsonFindString(std::string_view line, std::string_view key,
                    std::string& out) {
  std::string_view value;
  if (!findValue(line, key, value)) return false;
  if (value.front() != '"') return false;
  out.clear();
  for (std::size_t i = 1; i < value.size(); ++i) {
    const char c = value[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < value.size()) {
      const char next = value[++i];
      switch (next) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: out.push_back(next); break;  // \" \\ \/ and anything else
      }
    } else {
      out.push_back(c);
    }
  }
  return false;  // unterminated string
}

TraceReadResult readTraceFile(const std::string& path) {
  TraceReadResult result;
  std::FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) {
    result.error = "cannot open trace file: " + path;
    return result;
  }
  ParsedTrace trace;
  bool sawMeta = false;
  std::string line;
  char buf[1024];
  std::size_t lineNo = 0;
  auto fail = [&](const std::string& what) {
    result.error = path + ":" + std::to_string(lineNo) + ": " + what;
    std::fclose(in);
    return result;
  };
  while (true) {
    line.clear();
    // fgets loop so over-long lines (none expected) still parse.
    bool eof = true;
    while (std::fgets(buf, sizeof(buf), in) != nullptr) {
      eof = false;
      line.append(buf);
      if (!line.empty() && line.back() == '\n') {
        line.pop_back();
        break;
      }
    }
    if (eof && line.empty()) break;
    ++lineNo;
    if (line.empty()) continue;

    std::string text;
    std::uint64_t u = 0;
    if (!sawMeta) {
      // First line is the meta object.
      if (!jsonFindUint(line, "seed", trace.seed) ||
          !jsonFindString(line, "protocol", trace.protocol) ||
          !jsonFindUint(line, "nodes", trace.nodes) ||
          !jsonFindDouble(line, "active_s", trace.activeS)) {
        return fail("malformed meta line");
      }
      sawMeta = true;
      continue;
    }
    if (jsonFindString(line, "counter", text)) {
      if (!jsonFindUint(line, "value", u)) return fail("counter without value");
      trace.counters.emplace_back(text, u);
      continue;
    }
    ParsedRecord record;
    if (!jsonFindInt(line, "t", record.timeNs) ||
        !jsonFindString(line, "ev", text)) {
      return fail("malformed record line");
    }
    if (!eventTypeFromString(text.c_str(), record.type)) {
      return fail("unknown event type: " + text);
    }
    if (!jsonFindUint(line, "node", u)) return fail("record without node");
    record.node = static_cast<net::NodeId>(u);
    if (jsonFindUint(line, "pid", u)) record.pid = static_cast<std::uint32_t>(u);
    if (jsonFindUint(line, "bytes", u)) {
      record.bytes = static_cast<std::uint32_t>(u);
    }
    if (jsonFindString(line, "kind", text) &&
        !kindFromString(text, record.kind)) {
      return fail("unknown packet kind: " + text);
    }
    if (jsonFindUint(line, "origin", u)) {
      record.origin = static_cast<net::NodeId>(u);
    }
    if (jsonFindUint(line, "group", u)) {
      record.group = static_cast<net::GroupId>(u);
    }
    if (record.type == EventType::Drop) {
      if (!jsonFindString(line, "reason", text) ||
          !dropReasonFromString(text.c_str(), record.reason)) {
        return fail("drop record without a known reason");
      }
    }
    if (record.type == EventType::FaultInject ||
        record.type == EventType::FaultClear) {
      if (!jsonFindString(line, "fault", text) ||
          !faultKindFromString(text.c_str(), record.fault)) {
        return fail("fault record without a known kind");
      }
      if (jsonFindUint(line, "peer", u)) {
        record.peer = static_cast<net::NodeId>(u);
      }
      jsonFindDouble(line, "loss", record.loss);
      jsonFindDouble(line, "dbm", record.dbm);
    }
    if (record.type == EventType::GatewayHandoff) {
      if (!jsonFindUint(line, "src_ch", u)) {
        return fail("gateway_handoff record without src_ch");
      }
      record.srcChannel = static_cast<std::int16_t>(u);
    }
    if (jsonFindUint(line, "rate", u)) {
      record.rate = static_cast<std::uint8_t>(u);
    }
    if (jsonFindUint(line, "channel", u)) {
      record.channel = static_cast<std::int16_t>(u);
    }
    trace.records.push_back(record);
  }
  std::fclose(in);
  if (!sawMeta) {
    result.error = path + ": empty trace (no meta line)";
    return result;
  }
  result.trace = std::move(trace);
  return result;
}

namespace {

// Nanoseconds -> the shortest decimal-seconds string that parses back to
// the same instant ("12", "12.5", "0.0305"). The config grammar takes
// seconds, so this is what makes the emitted section round-trip exactly.
std::string secondsString(std::int64_t ns) {
  char buf[40];
  const std::int64_t whole = ns / 1000000000;
  const std::int64_t frac = ns % 1000000000;
  if (frac == 0) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(whole));
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%lld.%09lld", static_cast<long long>(whole),
                static_cast<long long>(frac));
  std::string out{buf};
  while (out.back() == '0') out.pop_back();
  return out;
}

}  // namespace

std::string faultSectionFromTrace(const ParsedTrace& trace) {
  std::string out = "[faults]\n";
  std::vector<bool> claimed(trace.records.size(), false);
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const ParsedRecord& r = trace.records[i];
    if (r.type != EventType::FaultInject) continue;
    // Pair with the first later unclaimed clear of the same fault identity;
    // first-match is correct because the injector never overlaps two
    // instances of the identical (kind, node, peer) fault.
    std::int64_t clearNs = -1;
    for (std::size_t j = i + 1; j < trace.records.size(); ++j) {
      const ParsedRecord& c = trace.records[j];
      if (claimed[j] || c.type != EventType::FaultClear) continue;
      if (c.fault != r.fault || c.node != r.node || c.peer != r.peer) continue;
      claimed[j] = true;
      clearNs = c.timeNs;
      break;
    }
    std::string line = "event = ";
    line += toString(r.fault);
    char mid[64];
    switch (r.fault) {
      case FaultKind::LinkBlackout:
        std::snprintf(mid, sizeof(mid), " %u-%u", r.node, r.peer);
        break;
      case FaultKind::LossRamp:
        std::snprintf(mid, sizeof(mid), " %u-%u %.6g", r.node, r.peer, r.loss);
        break;
      case FaultKind::InterferenceBurst:
        std::snprintf(mid, sizeof(mid), " %u %.6g", r.node, r.dbm);
        break;
      default:  // NodeCrash, ProbeBlackhole: just the victim
        std::snprintf(mid, sizeof(mid), " %u", r.node);
        break;
    }
    line += mid;
    line += " @ ";
    line += secondsString(r.timeNs);
    if (clearNs >= 0) {
      line += " +";
      line += secondsString(clearNs - r.timeNs);
    }
    line += '\n';
    out += line;
  }
  return out;
}

}  // namespace mesh::trace
