#include "mesh/trace/replay.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <unordered_map>

#include "mesh/common/stats.hpp"

namespace mesh::trace {
namespace {

std::uint32_t packKey(net::GroupId group, net::NodeId origin) {
  return (static_cast<std::uint32_t>(group) << 16) | origin;
}

}  // namespace

TraceSummary summarizeTrace(const ParsedTrace& trace) {
  TraceSummary summary;

  std::map<net::GroupId, std::set<net::NodeId>> members;
  std::unordered_map<std::uint32_t, std::uint64_t> birthsPerFlow;
  std::unordered_map<std::uint32_t, std::int64_t> birthTimeNs;  // by pid
  // Per-node delay accumulators, merged in ascending node order below —
  // the exact shape of Simulation::run()'s per-sink merge.
  std::map<net::NodeId, OnlineStats> delayPerNode;
  std::uint64_t payloadBytesDelivered = 0;

  for (const ParsedRecord& record : trace.records) {
    switch (record.type) {
      case EventType::MemberJoin:
        members[record.group].insert(record.node);
        break;
      case EventType::PktBirth:
        ++summary.packetsSent;
        ++birthsPerFlow[packKey(record.group, record.origin)];
        birthTimeNs.emplace(record.pid, record.timeNs);
        break;
      case EventType::Deliver: {
        ++summary.packetsDelivered;
        payloadBytesDelivered += record.bytes;
        if (record.channel >= 0) {
          ++summary.perChannel[record.channel].delivered;
        }
        const auto born = birthTimeNs.find(record.pid);
        if (born == birthTimeNs.end()) {
          ++summary.deliversWithoutBirth;
        } else {
          delayPerNode[record.node].add(
              static_cast<double>(record.timeNs - born->second) * 1e-9);
        }
        break;
      }
      case EventType::RxOk:
        if (record.kind == net::PacketKind::Data) {
          summary.dataBytesReceived += record.bytes;
        } else if (record.kind == net::PacketKind::Control) {
          summary.controlBytesReceived += record.bytes;
        }
        break;
      case EventType::ProbeRx:
        summary.probeBytesReceived += record.bytes;
        break;
      case EventType::Drop:
        ++summary.dropCount;
        ++summary.dropsByReason[toString(record.reason)];
        if (record.reason == DropReason::Unknown) ++summary.unknownReasonDrops;
        if (record.channel >= 0) ++summary.perChannel[record.channel].drops;
        break;
      case EventType::TxStart:
        if (record.channel >= 0) {
          auto& ch = summary.perChannel[record.channel];
          ++ch.frames;
          // DSSS PLCP preamble+header (192 us) plus payload bits at the
          // 2 Mb/s base rate: 4000 ns per byte. A share estimate — the
          // multi-rate PHY sends some frames faster, but the cross-channel
          // ratio is what the breakdown is for.
          ch.busyTimeNs +=
              192'000 + static_cast<std::int64_t>(record.bytes) * 4'000;
        }
        break;
      case EventType::FaultInject:
        ++summary.faultsInjected;
        break;
      case EventType::FaultClear:
        ++summary.faultsCleared;
        break;
      case EventType::GatewayHandoff:
        ++summary.handoffFrames;
        ++summary.handoffPerGateway[record.node];
        break;
      default:
        break;
    }
  }

  for (const auto& [flow, births] : birthsPerFlow) {
    const auto group = static_cast<net::GroupId>(flow >> 16);
    const auto origin = static_cast<net::NodeId>(flow & 0xFFFF);
    std::uint64_t fanout = 0;
    const auto it = members.find(group);
    if (it != members.end()) {
      fanout = it->second.size();
      if (it->second.contains(origin)) --fanout;
    }
    summary.expectedDeliveries += births * fanout;
  }

  OnlineStats delay;
  for (const auto& [node, stats] : delayPerNode) delay.merge(stats);

  summary.pdr = summary.expectedDeliveries > 0
                    ? static_cast<double>(summary.packetsDelivered) /
                          static_cast<double>(summary.expectedDeliveries)
                    : 0.0;
  summary.meanDelayS = delay.mean();
  summary.throughputBps =
      trace.activeS > 0.0
          ? static_cast<double>(payloadBytesDelivered * 8) / trace.activeS
          : 0.0;
  summary.probeOverheadPct =
      summary.dataBytesReceived > 0
          ? 100.0 * static_cast<double>(summary.probeBytesReceived) /
                static_cast<double>(summary.dataBytesReceived)
          : 0.0;
  return summary;
}

namespace {

bool closeEnough(double a, double b, double relTolerance) {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= relTolerance * scale;
}

void diffField(VerifyRunResult& run, const char* field, double traceValue,
               double harnessValue, double relTolerance) {
  if (!closeEnough(traceValue, harnessValue, relTolerance)) {
    run.mismatches.push_back(FieldDiff{field, traceValue, harnessValue});
  }
}

}  // namespace

VerifyReport verifyAgainstResults(const std::string& resultsJsonlPath,
                                  const std::string& traceDirOverride,
                                  double relTolerance) {
  VerifyReport report;
  std::FILE* in = std::fopen(resultsJsonlPath.c_str(), "r");
  if (in == nullptr) {
    report.error = "cannot open results file: " + resultsJsonlPath;
    return report;
  }

  std::string line;
  char buf[4096];
  while (true) {
    line.clear();
    bool eof = true;
    while (std::fgets(buf, sizeof(buf), in) != nullptr) {
      eof = false;
      line.append(buf);
      if (!line.empty() && line.back() == '\n') {
        line.pop_back();
        break;
      }
    }
    if (eof && line.empty()) break;
    if (line.empty()) continue;

    std::string tracePath;
    if (!jsonFindString(line, "trace", tracePath) || tracePath.empty()) {
      ++report.skipped;  // run recorded without tracing
      continue;
    }
    VerifyRunResult run;
    run.tracePath = tracePath;
    jsonFindString(line, "protocol", run.protocol);
    jsonFindUint(line, "seed", run.seed);

    bool rowOk = false;
    if (!jsonFindBool(line, "ok", rowOk) || !rowOk) {
      run.error = "harness run failed; nothing to verify";
      report.runs.push_back(std::move(run));
      continue;
    }

    if (!traceDirOverride.empty()) {
      run.tracePath =
          (std::filesystem::path{traceDirOverride} /
           std::filesystem::path{tracePath}.filename()).string();
    }
    TraceReadResult read = readTraceFile(run.tracePath);
    if (!read.trace) {
      run.error = read.error;
      report.runs.push_back(std::move(run));
      continue;
    }
    const ParsedTrace& trace = *read.trace;
    if (trace.seed != run.seed ||
        (!run.protocol.empty() && trace.protocol != run.protocol)) {
      run.error = "trace meta (seed/protocol) does not match the result row";
      report.runs.push_back(std::move(run));
      continue;
    }

    const TraceSummary summary = summarizeTrace(trace);
    run.records = trace.records.size();
    run.unknownReasonDrops = summary.unknownReasonDrops;

    double pdr = 0.0, delayS = 0.0, overheadPct = 0.0, throughputBps = 0.0;
    std::uint64_t sent = 0, delivered = 0, controlBytes = 0;
    jsonFindDouble(line, "pdr", pdr);
    jsonFindDouble(line, "delay_s", delayS);
    jsonFindDouble(line, "overhead_pct", overheadPct);
    jsonFindDouble(line, "throughput_bps", throughputBps);
    jsonFindUint(line, "packets_sent", sent);
    jsonFindUint(line, "packets_delivered", delivered);
    jsonFindUint(line, "control_bytes", controlBytes);

    diffField(run, "pdr", summary.pdr, pdr, relTolerance);
    diffField(run, "delay_s", summary.meanDelayS, delayS, relTolerance);
    diffField(run, "overhead_pct", summary.probeOverheadPct, overheadPct,
              relTolerance);
    diffField(run, "throughput_bps", summary.throughputBps, throughputBps,
              relTolerance);
    diffField(run, "packets_sent", static_cast<double>(summary.packetsSent),
              static_cast<double>(sent), 0.0);
    diffField(run, "packets_delivered",
              static_cast<double>(summary.packetsDelivered),
              static_cast<double>(delivered), 0.0);
    diffField(run, "control_bytes",
              static_cast<double>(summary.controlBytesReceived),
              static_cast<double>(controlBytes), 0.0);
    // Multi-channel rows record per-domain counters (ch<k>_frames /
    // ch<k>_delivered, from that domain's counter registry); cross-check
    // them exactly against the channel-tagged trace records.
    std::uint64_t channels = 0;
    if (jsonFindUint(line, "channels", channels) && channels > 1) {
      for (std::uint64_t k = 0; k < channels; ++k) {
        const auto it = summary.perChannel.find(static_cast<int>(k));
        const std::uint64_t traceFrames =
            it != summary.perChannel.end() ? it->second.frames : 0;
        const std::uint64_t traceDelivered =
            it != summary.perChannel.end() ? it->second.delivered : 0;
        char key[48];
        std::uint64_t v = 0;
        std::snprintf(key, sizeof(key), "ch%llu_frames",
                      static_cast<unsigned long long>(k));
        if (jsonFindUint(line, key, v)) {
          diffField(run, key, static_cast<double>(traceFrames),
                    static_cast<double>(v), 0.0);
        }
        std::snprintf(key, sizeof(key), "ch%llu_delivered",
                      static_cast<unsigned long long>(k));
        if (jsonFindUint(line, key, v)) {
          diffField(run, key, static_cast<double>(traceDelivered),
                    static_cast<double>(v), 0.0);
        }
      }
    }
    // Gateway rows record relay totals; cross-check them exactly against
    // the trace's gateway_handoff records, total and per gateway.
    std::uint64_t handoffFrames = 0;
    if (jsonFindUint(line, "handoff_frames", handoffFrames)) {
      diffField(run, "handoff_frames",
                static_cast<double>(summary.handoffFrames),
                static_cast<double>(handoffFrames), 0.0);
      for (std::uint64_t id = 0; id < trace.nodes; ++id) {
        char key[48];
        std::snprintf(key, sizeof(key), "gw%llu_handoff",
                      static_cast<unsigned long long>(id));
        std::uint64_t v = 0;
        if (!jsonFindUint(line, key, v)) continue;
        const auto it =
            summary.handoffPerGateway.find(static_cast<net::NodeId>(id));
        const std::uint64_t traceCount =
            it != summary.handoffPerGateway.end() ? it->second : 0;
        diffField(run, key, static_cast<double>(traceCount),
                  static_cast<double>(v), 0.0);
      }
    }
    if (summary.unknownReasonDrops > 0) {
      run.error = "trace contains drops with reason=unknown";
    }
    if (summary.deliversWithoutBirth > 0) {
      run.error = "trace contains deliveries with no matching birth";
    }
    run.ok = run.error.empty() && run.mismatches.empty();
    report.runs.push_back(std::move(run));
  }
  std::fclose(in);
  return report;
}

}  // namespace mesh::trace
