#pragma once
// MulticastSink: per-member delivery accounting.
//
// Records every packet ODMRP delivers to this member: count, bytes, and
// end-to-end delay (delivery time minus the packet's creation time at the
// source). These feed the paper's three measures: throughput (Figure 2
// columns 1, 2, 4), delay (column 3), and — via the per-kind byte counts
// kept by the node — probing overhead (Table 1).

#include <cstdint>
#include <unordered_map>

#include "mesh/common/simtime.hpp"
#include "mesh/common/stats.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::app {

class MulticastSink {
 public:
  explicit MulticastSink(sim::Simulator& simulator) : simulator_{simulator} {}

  // Wire as the Odmrp deliver callback.
  void onDeliver(net::GroupId group, net::NodeId source, std::uint32_t seq,
                 const net::PacketPtr& packet,
                 std::span<const std::uint8_t> payload) {
    (void)group;
    (void)source;
    (void)seq;
    ++packetsReceived_;
    payloadBytesReceived_ += payload.size();
    delayS_.add((simulator_.now() - packet->createdAt()).toSeconds());
  }

  std::uint64_t packetsReceived() const { return packetsReceived_; }
  std::uint64_t payloadBytesReceived() const { return payloadBytesReceived_; }
  const OnlineStats& delayStats() const { return delayS_; }

 private:
  sim::Simulator& simulator_;
  std::uint64_t packetsReceived_{0};
  std::uint64_t payloadBytesReceived_{0};
  OnlineStats delayS_;
};

}  // namespace mesh::app
