# Empty compiler generated dependencies file for mesh_net.
# This may be replaced when dependencies are built.
