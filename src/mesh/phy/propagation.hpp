#pragma once
// Deterministic (large-scale) radio propagation models.
//
// These compute *mean* received power as a function of geometry; small-
// scale fading (Rayleigh/Ricean) multiplies on top per packet. The TwoRay
// ground model is the paper's setting; Friis and log-distance are provided
// for completeness and ablations.

#include <memory>

#include "mesh/common/assert.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/phy/phy_params.hpp"

namespace mesh::phy {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;
  // Mean received power (W) for a transmitter at `tx` and receiver at `rx`.
  virtual double rxPowerW(const PhyParams& params, Vec2 tx, Vec2 rx) const = 0;
};

// Friis free-space: Pr = Pt Gt Gr λ² / ((4π d)² L).
class FriisModel final : public PropagationModel {
 public:
  double rxPowerW(const PhyParams& params, Vec2 tx, Vec2 rx) const override;

  static double atDistance(const PhyParams& params, double distanceM);
};

// TwoRay ground reflection with Friis below the crossover distance
// dc = 4π ht hr / λ, as in ns-2/Glomosim:
//   d <  dc : Friis
//   d >= dc : Pr = Pt Gt Gr ht² hr² / (d⁴ L)
class TwoRayGroundModel final : public PropagationModel {
 public:
  double rxPowerW(const PhyParams& params, Vec2 tx, Vec2 rx) const override;

  static double crossoverDistanceM(const PhyParams& params);
  static double atDistance(const PhyParams& params, double distanceM);
};

// Largest distance at which `model` can still deliver mean power >=
// `minPowerW`. All provided models are monotone non-increasing in
// distance, so a doubling search plus bisection brackets the cutoff; the
// returned value is the bracket's *upper* bound (mean power strictly
// below `minPowerW` there), which makes it safe to use as a pruning
// radius: every pair at or above the power floor is strictly closer.
// Returns +infinity when the floor is never crossed within `maxM`
// (pruning impossible; callers fall back to exhaustive scans).
double maxRangeForMeanPowerM(const PropagationModel& model,
                             const PhyParams& params, double minPowerW,
                             double maxM = 1e7);

// Log-distance path loss: Friis at reference distance d0, then d^-n.
class LogDistanceModel final : public PropagationModel {
 public:
  explicit LogDistanceModel(double exponent = 3.0, double referenceDistanceM = 1.0)
      : exponent_{exponent}, referenceDistanceM_{referenceDistanceM} {
    MESH_REQUIRE(exponent > 0.0);
    MESH_REQUIRE(referenceDistanceM > 0.0);
  }

  double rxPowerW(const PhyParams& params, Vec2 tx, Vec2 rx) const override;

 private:
  double exponent_;
  double referenceDistanceM_;
};

}  // namespace mesh::phy
