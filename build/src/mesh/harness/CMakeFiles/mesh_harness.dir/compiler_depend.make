# Empty compiler generated dependencies file for mesh_harness.
# This may be replaced when dependencies are built.
