file(REMOVE_RECURSE
  "CMakeFiles/app_harness_test.dir/app_harness_test.cpp.o"
  "CMakeFiles/app_harness_test.dir/app_harness_test.cpp.o.d"
  "app_harness_test"
  "app_harness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
