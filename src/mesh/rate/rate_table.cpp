#include "mesh/rate/rate_table.hpp"

#include <cmath>
#include <cstring>

#include "mesh/common/assert.hpp"

namespace mesh::rate {
namespace {

// Logistic BER slope (dB). Shared by both families: the curves differ by
// midpoint, not steepness — enough structure for rate adaptation without
// pretending to be a demodulator.
constexpr double kBerSlopeDb = 2.0;

// The b/g ladder, ascending by bitrate. Midpoints: 2 Mbps anchored at
// 25 dB (the legacy rate stays clean across the full 250 m lock range),
// others offset by their 802.11 receiver-sensitivity deltas.
constexpr RateInfo kDsssRates[] = {
    {1e6, Modulation::Dsss, 22.0, "1M"},
    {2e6, Modulation::Dsss, 25.0, "2M"},
    {5.5e6, Modulation::Dsss, 29.0, "5.5M"},
    {11e6, Modulation::Dsss, 31.0, "11M"},
};
constexpr RateInfo kBgRates[] = {
    {1e6, Modulation::Dsss, 22.0, "1M"},
    {2e6, Modulation::Dsss, 25.0, "2M"},
    {5.5e6, Modulation::Dsss, 29.0, "5.5M"},
    {6e6, Modulation::Ofdm, 28.0, "6M"},
    {9e6, Modulation::Ofdm, 29.0, "9M"},
    {11e6, Modulation::Dsss, 31.0, "11M"},
    {12e6, Modulation::Ofdm, 31.0, "12M"},
    {18e6, Modulation::Ofdm, 33.0, "18M"},
    {24e6, Modulation::Ofdm, 36.0, "24M"},
    {36e6, Modulation::Ofdm, 40.0, "36M"},
    {48e6, Modulation::Ofdm, 45.0, "48M"},
    {54e6, Modulation::Ofdm, 46.0, "54M"},
};

}  // namespace

const char* toString(RateSetKind set) {
  switch (set) {
    case RateSetKind::Basic: return "basic";
    case RateSetKind::Dsss: return "11b";
    case RateSetKind::DsssOfdm: return "11bg";
  }
  return "?";
}

bool rateSetFromString(const char* text, RateSetKind& out) {
  if (std::strcmp(text, "basic") == 0 || std::strcmp(text, "2mbps") == 0) {
    out = RateSetKind::Basic;
    return true;
  }
  if (std::strcmp(text, "b") == 0 || std::strcmp(text, "11b") == 0) {
    out = RateSetKind::Dsss;
    return true;
  }
  if (std::strcmp(text, "bg") == 0 || std::strcmp(text, "g") == 0 ||
      std::strcmp(text, "11bg") == 0) {
    out = RateSetKind::DsssOfdm;
    return true;
  }
  return false;
}

RateTable RateTable::forSet(RateSetKind set, double basicRateBps) {
  RateTable table;
  switch (set) {
    case RateSetKind::Basic:
      for (const RateInfo& info : kDsssRates) {
        if (info.bitRateBps == basicRateBps) table.entries_.push_back(info);
      }
      break;
    case RateSetKind::Dsss:
      table.entries_.assign(std::begin(kDsssRates), std::end(kDsssRates));
      break;
    case RateSetKind::DsssOfdm:
      table.entries_.assign(std::begin(kBgRates), std::end(kBgRates));
      break;
  }
  MESH_REQUIRE(!table.entries_.empty());
  table.basic_ = 0;
  for (std::size_t i = 0; i < table.entries_.size(); ++i) {
    if (table.entries_[i].bitRateBps == basicRateBps) {
      table.basic_ = static_cast<std::uint8_t>(i + 1);
      break;
    }
  }
  MESH_REQUIRE(table.basic_ != 0);
  return table;
}

const RateInfo& RateTable::info(std::uint8_t code) const {
  MESH_REQUIRE(code >= 1 && code <= size());
  return entries_[code - 1];
}

SimTime RateTable::frameAirtime(std::size_t bytes, std::uint8_t code) const {
  const RateInfo& rate = info(code);
  const SimTime plcp = rate.modulation == Modulation::Dsss
                           ? kDsssPlcpOverhead
                           : kOfdmPlcpOverhead;
  return frameAirtimeAt(bytes, rate.bitRateBps, plcp);
}

double RateTable::per(std::uint8_t code, double snrDb,
                      std::size_t bytes) const {
  const RateInfo& rate = info(code);
  const double ber =
      0.5 * std::erfc((snrDb - rate.berMidDb) / kBerSlopeDb);
  if (ber <= 0.0) return 0.0;
  const double bits = static_cast<double>(bytes) * 8.0;
  // log1p keeps precision when ber is tiny (the common case in range).
  const double per = -std::expm1(bits * std::log1p(-ber));
  return per < 0.0 ? 0.0 : (per > 1.0 ? 1.0 : per);
}

}  // namespace mesh::rate
