#pragma once
// Time-varying Bernoulli loss channel for the testbed emulation.
//
// The paper never reports numeric per-link loss rates ("these values
// change fairly quickly") — only the classification: dashed links lose
// 40–60% of frames, solid links little or nothing. We encode exactly
// that: each link draws a base loss rate from its class's range and
// wanders around it with a mean-reverting random walk, re-sampled on a
// fixed step. The wandering is what exercises the history-length
// difference between PP (long EWMA memory — once a link's cost explodes
// it is never chosen again) and the windowed metrics (which re-try a
// dashed link whenever it temporarily improves) — the mechanism behind
// PP's testbed win in Section 5.3.
//
// A "lost" frame is delivered at `lostPowerW`, above carrier sense but
// below the reception threshold: a deeply attenuated frame that still
// occupies the medium, as on the real floor.

#include <memory>
#include <unordered_map>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/phy/static_link_model.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/testbed/floorplan.hpp"

namespace mesh::testbed {

struct LossModelParams {
  double goodPowerW{1e-8};    // well above the reception threshold
  double lostPowerW{5e-11};   // between CS (1.56e-11) and RX (3.65e-10)
  double solidLossLo{0.0};
  double solidLossHi{0.05};
  double dashedLossLo{0.40};
  double dashedLossHi{0.60};
  // Solid links: gentle mean-reverting random walk.
  SimTime stepInterval{SimTime::seconds(std::int64_t{5})};
  double wanderSigma{0.03};
  double meanReversion{0.15};
  // Dashed links: a two-state episode process. They spend most of their
  // time in their 40-60% class, but occasionally turn good for a stretch
  // comparable to the metrics' measurement windows ("when such links
  // become relatively less lossy due to random temporal variations, they
  // are chosen again" — Section 5.3). A window-based metric detects the
  // improvement with ~half-window latency and hops on just as the episode
  // ends; PP's exploded, long-memory cost never takes the bait. This
  // timing trap is what gives PP its testbed edge in the paper.
  double goodEpisodeLossLo{0.00};
  double goodEpisodeLossHi{0.05};
  // Episode lengths are uniform in [0.5, 1.5] x mean — bounded, so a good
  // episode reliably ends shortly after a windowed metric has had time to
  // notice it (an exponential length would be memoryless and spring no
  // trap).
  SimTime badEpisodeMean{SimTime::seconds(std::int64_t{90})};
  SimTime goodEpisodeMean{SimTime::seconds(std::int64_t{40})};
  // Schedules are precomputed up to this horizon (runs must fit in it).
  SimTime horizon{SimTime::seconds(std::int64_t{600})};
  double distanceM{15.0};
};

class TimeVaryingLossModel final : public phy::StaticLinkModel {
 public:
  // Builds the model for an arbitrary link set. Each undirected link gets
  // one shared loss schedule (link quality is a property of the link, as
  // in the paper's Figure 4 classification).
  TimeVaryingLossModel(const sim::Simulator& simulator,
                       std::size_t nodeCount,
                       const std::vector<FloorLink>& links,
                       const LossModelParams& params, Rng rng);

  // Loss rate of the (from, to) link right now; 1.0 for non-links.
  double lossRateNow(net::NodeId from, net::NodeId to) const override;

  // Introspection for tests / the Figure 5 bench.
  double scheduledRate(net::NodeId a, net::NodeId b, SimTime at) const;
  const LossModelParams& params() const { return params_; }

 private:
  const sim::Simulator& simulator_;
  LossModelParams params_;
  // Directed link -> schedule index; both directions share a schedule.
  std::unordered_map<net::LinkKey, std::size_t, net::LinkKeyHash> scheduleOf_;
  std::vector<std::vector<double>> schedules_;  // [link][step]
};

// Builds the full Purdue floor model.
std::unique_ptr<TimeVaryingLossModel> makePurdueFloorModel(
    const sim::Simulator& simulator, const LossModelParams& params, Rng rng);

}  // namespace mesh::testbed
