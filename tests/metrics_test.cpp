// Tests for the routing metrics, the measurement estimators, and the
// probing subsystem — including the paper's Figure 1 and Figure 3 worked
// examples as exact-value tests and the METX closed form as a property
// test over random paths.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/mac/mac80211.hpp"
#include "mesh/metrics/loss_window.hpp"
#include "mesh/metrics/metric.hpp"
#include "mesh/metrics/neighbor_table.hpp"
#include "mesh/metrics/probe_messages.hpp"
#include "mesh/metrics/probe_service.hpp"
#include "mesh/phy/channel.hpp"
#include "mesh/phy/static_link_model.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::metrics {
namespace {

using namespace mesh::time_literals;

LinkMeasurement withDf(double df) {
  LinkMeasurement m;
  m.df = df;
  return m;
}

// Path cost of a chain of forward delivery ratios under `metric`.
double pathCost(const Metric& metric, const std::vector<double>& dfs) {
  double cost = metric.initialPathCost();
  for (double df : dfs) cost = metric.accumulate(cost, metric.linkCost(withDf(df)));
  return cost;
}

// ------------------------------------------------------------ link costs

TEST(Metric, EtxIsForwardOnlyReciprocal) {
  auto etx = makeMetric(MetricKind::Etx);
  EXPECT_DOUBLE_EQ(etx->linkCost(withDf(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(etx->linkCost(withDf(0.5)), 2.0);
  EXPECT_DOUBLE_EQ(etx->linkCost(withDf(0.25)), 4.0);
  EXPECT_TRUE(std::isinf(etx->linkCost(withDf(0.0))));
}

TEST(Metric, SppLinkCostIsTheProbabilityItself) {
  auto spp = makeMetric(MetricKind::Spp);
  EXPECT_DOUBLE_EQ(spp->linkCost(withDf(0.7)), 0.7);
  EXPECT_DOUBLE_EQ(spp->initialPathCost(), 1.0);
}

TEST(Metric, PpUsesDelayEwma) {
  auto pp = makeMetric(MetricKind::Pp);
  LinkMeasurement m;
  m.df = 0.9;
  EXPECT_TRUE(std::isinf(pp->linkCost(m)));  // no delay sample yet
  m.hasDelay = true;
  m.delayS = 0.005;
  EXPECT_DOUBLE_EQ(pp->linkCost(m), 0.005);
}

TEST(Metric, EttCombinesLossAndBandwidth) {
  auto ett = makeMetric(MetricKind::Ett, 512);
  LinkMeasurement m;
  m.df = 0.5;
  m.hasBandwidth = true;
  m.bandwidthBps = 1e6;
  // ETX(2) * 512*8 bits / 1 Mbps = 2 * 4.096 ms.
  EXPECT_NEAR(ett->linkCost(m), 2.0 * 512.0 * 8.0 / 1e6, 1e-12);
  m.hasBandwidth = false;
  EXPECT_TRUE(std::isinf(ett->linkCost(m)));
}

TEST(Metric, HopIgnoresMeasurements) {
  auto hop = makeMetric(MetricKind::Hop);
  EXPECT_DOUBLE_EQ(hop->linkCost(withDf(0.01)), 1.0);
  EXPECT_DOUBLE_EQ(pathCost(*hop, {0.1, 0.9, 0.5}), 3.0);
}

TEST(Metric, NamesAndFactoryAgree) {
  for (MetricKind kind : {MetricKind::Hop, MetricKind::Etx, MetricKind::Ett,
                          MetricKind::Pp, MetricKind::Metx, MetricKind::Spp}) {
    auto m = makeMetric(kind);
    EXPECT_EQ(m->kind(), kind);
    EXPECT_STREQ(m->name(), toString(kind));
  }
}

// ------------------------------------------------- METX closed form (Eq 2)

double metxClosedForm(const std::vector<double>& p) {
  // METX = Σ_{i=1..n} 1 / Π_{j=i..n} p_j
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    double prod = 1.0;
    for (std::size_t j = i; j < p.size(); ++j) prod *= p[j];
    total += 1.0 / prod;
  }
  return total;
}

TEST(Metric, MetxSingleLink) {
  auto metx = makeMetric(MetricKind::Metx);
  EXPECT_DOUBLE_EQ(pathCost(*metx, {0.5}), 2.0);
  EXPECT_DOUBLE_EQ(pathCost(*metx, {1.0}), 1.0);
}

TEST(Metric, MetxRecurrenceMatchesClosedFormTwoLinks) {
  auto metx = makeMetric(MetricKind::Metx);
  // p = {0.5, 0.5}: 1/(0.25) + 1/0.5 = 6.
  EXPECT_NEAR(pathCost(*metx, {0.5, 0.5}), 6.0, 1e-12);
}

class MetxPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetxPropertyTest, RecurrenceEqualsClosedFormOnRandomPaths) {
  Rng rng{GetParam()};
  auto metx = makeMetric(MetricKind::Metx);
  const auto n = static_cast<std::size_t>(rng.uniformInt(1, 8));
  std::vector<double> p;
  for (std::size_t i = 0; i < n; ++i) p.push_back(rng.uniform(0.05, 1.0));
  const double viaRecurrence = pathCost(*metx, p);
  const double viaClosedForm = metxClosedForm(p);
  EXPECT_NEAR(viaRecurrence, viaClosedForm,
              1e-9 * std::max(1.0, viaClosedForm));
}

INSTANTIATE_TEST_SUITE_P(RandomPaths, MetxPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

class SppPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SppPropertyTest, PathValueIsProductOfLinkProbabilities) {
  Rng rng{GetParam() * 977};
  auto spp = makeMetric(MetricKind::Spp);
  const auto n = static_cast<std::size_t>(rng.uniformInt(1, 10));
  std::vector<double> p;
  double expected = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(rng.uniform(0.0, 1.0));
    expected *= p.back();
  }
  EXPECT_NEAR(pathCost(*spp, p), expected, 1e-12);
  // SPP of any path is a probability.
  EXPECT_GE(pathCost(*spp, p), 0.0);
  EXPECT_LE(pathCost(*spp, p), 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomPaths, SppPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

// -------------------------------------------------- Figure 1 and Figure 3

TEST(PaperExamples, Figure1SppBeatsMetx) {
  // Figure 1: A–C–D has links with df {1, 1/3}; A–B–D has {0.25, 1}.
  // METX: A–C–D = 6, A–B–D = 5  -> METX picks A–B–D.
  // 1/SPP: A–C–D = 3, A–B–D = 4 -> SPP picks A–C–D, the higher-throughput
  // path (fewer expected transmissions at the source).
  auto metx = makeMetric(MetricKind::Metx);
  auto spp = makeMetric(MetricKind::Spp);
  const std::vector<double> acd{1.0, 1.0 / 3.0};
  const std::vector<double> abd{0.25, 1.0};

  EXPECT_NEAR(pathCost(*metx, acd), 6.0, 1e-9);
  EXPECT_NEAR(pathCost(*metx, abd), 5.0, 1e-9);
  EXPECT_NEAR(1.0 / pathCost(*spp, acd), 3.0, 1e-9);
  EXPECT_NEAR(1.0 / pathCost(*spp, abd), 4.0, 1e-9);

  // METX chooses A–B–D; SPP chooses A–C–D.
  EXPECT_TRUE(metx->better(pathCost(*metx, abd), pathCost(*metx, acd)));
  EXPECT_TRUE(spp->better(pathCost(*spp, acd), pathCost(*spp, abd)));
}

TEST(PaperExamples, Figure3SppAvoidsSingleLossyLink) {
  // Figure 3: A–B–C–D with df {0.8, 0.8, 0.8} vs A–E–D with {0.9, 0.4}.
  // ETX: 3.75 vs 3.61 -> ETX picks the short path with the 40% link.
  // SPP: 0.512 vs 0.36 -> SPP picks the longer, higher-throughput path.
  auto etx = makeMetric(MetricKind::Etx);
  auto spp = makeMetric(MetricKind::Spp);
  const std::vector<double> abcd{0.8, 0.8, 0.8};
  const std::vector<double> aed{0.9, 0.4};

  EXPECT_NEAR(pathCost(*etx, abcd), 3.75, 1e-9);
  EXPECT_NEAR(pathCost(*etx, aed), 1.0 / 0.9 + 1.0 / 0.4, 1e-9);
  EXPECT_NEAR(pathCost(*spp, abcd), 0.512, 1e-9);
  EXPECT_NEAR(pathCost(*spp, aed), 0.36, 1e-9);

  EXPECT_TRUE(etx->better(pathCost(*etx, aed), pathCost(*etx, abcd)));
  EXPECT_TRUE(spp->better(pathCost(*spp, abcd), pathCost(*spp, aed)));
}

TEST(PaperExamples, WorstPathCostLosesToAnyRealPath) {
  for (MetricKind kind : kAllMetricKinds) {
    auto m = makeMetric(kind);
    LinkMeasurement good;
    good.df = 0.9;
    good.hasDelay = true;
    good.delayS = 0.004;
    good.hasBandwidth = true;
    good.bandwidthBps = 1.5e6;
    const double real =
        m->accumulate(m->initialPathCost(), m->linkCost(good));
    EXPECT_TRUE(m->better(real, m->worstPathCost())) << m->name();
    EXPECT_FALSE(m->better(m->worstPathCost(), real)) << m->name();
  }
}

// ------------------------------------------------------------ LossWindow

TEST(LossWindow, PerfectStream) {
  LossWindow w{10};
  SimTime t = SimTime::zero();
  for (std::uint32_t s = 0; s < 20; ++s) {
    w.onProbe(s, t);
    t += 5_s;
  }
  EXPECT_DOUBLE_EQ(w.df(t, 5_s), 1.0);
}

TEST(LossWindow, HalfLossStream) {
  LossWindow w{10};
  SimTime t = SimTime::zero();
  for (std::uint32_t s = 0; s < 40; s += 2) {  // every other probe lost
    w.onProbe(s, t);
    t += 10_s;
  }
  EXPECT_NEAR(w.df(t - 10_s + 1_s, 5_s), 0.5, 0.11);
}

TEST(LossWindow, WarmupUsesActualCount) {
  LossWindow w{10};
  w.onProbe(0, 1_s);
  EXPECT_DOUBLE_EQ(w.df(1_s, 5_s), 1.0);
  w.onProbe(1, 6_s);
  EXPECT_DOUBLE_EQ(w.df(6_s, 5_s), 1.0);
  // Probe 2 lost, probe 3 received.
  w.onProbe(3, 16_s);
  EXPECT_DOUBLE_EQ(w.df(16_s, 5_s), 0.75);
}

TEST(LossWindow, SilenceDecaysToZero) {
  LossWindow w{10};
  SimTime t = SimTime::zero();
  for (std::uint32_t s = 0; s < 10; ++s) {
    w.onProbe(s, t);
    t += 5_s;
  }
  const SimTime last = t - 5_s;
  EXPECT_DOUBLE_EQ(w.df(last, 5_s), 1.0);
  // After 5 fully-elapsed silent intervals df should have decayed to 0.5
  // (the boundary grace means the 5th counts only past 25 s + 1 interval).
  EXPECT_NEAR(w.df(last + 26_s, 5_s), 0.5, 1e-9);
  // After >= window-size fully-elapsed silent intervals: dead link.
  EXPECT_DOUBLE_EQ(w.df(last + 51_s, 5_s), 0.0);
}

TEST(LossWindow, NeverHeardIsZero) {
  LossWindow w{10};
  EXPECT_DOUBLE_EQ(w.df(100_s, 5_s), 0.0);
  EXPECT_FALSE(w.hasSamples());
}

TEST(LossWindow, DuplicateSeqIgnoredGracefully) {
  LossWindow w{10};
  w.onProbe(5, 1_s);
  w.onProbe(5, 2_s);
  EXPECT_GT(w.df(2_s, 5_s), 0.0);
}

// --------------------------------------------------------- NeighborTable

TEST(NeighborTable, UnknownNeighborIsUnusable) {
  NeighborTable table{5_s};
  const LinkMeasurement m = table.measure(42, 10_s);
  EXPECT_DOUBLE_EQ(m.df, 0.0);
  EXPECT_FALSE(m.hasDelay);
  EXPECT_FALSE(m.hasBandwidth);
}

TEST(NeighborTable, SingleProbesBuildDf) {
  NeighborTable table{5_s};
  SimTime t = SimTime::zero();
  for (std::uint32_t s = 0; s < 10; ++s) {
    table.onProbe({ProbeType::Single, 7, s}, t);
    t += 5_s;
  }
  EXPECT_DOUBLE_EQ(table.measure(7, t - 5_s).df, 1.0);
  EXPECT_TRUE(table.knows(7));
  EXPECT_EQ(table.size(), 1u);
}

TEST(NeighborTable, CompletePairYieldsDelayAndBandwidth) {
  NeighborTable table{10_s};
  table.onProbe({ProbeType::PairSmall, 3, 0}, 100_ms);
  table.onProbe({ProbeType::PairLarge, 3, 0}, 105_ms);
  const LinkMeasurement m = table.measure(3, 200_ms);
  ASSERT_TRUE(m.hasDelay);
  EXPECT_NEAR(m.delayS, 0.005, 1e-12);
  ASSERT_TRUE(m.hasBandwidth);
  EXPECT_NEAR(m.bandwidthBps, kLargeProbeBytes * 8.0 / 0.005, 1e-6);
  EXPECT_EQ(table.stats().pairsCompleted, 1u);
}

TEST(NeighborTable, PairEwmaUsesPaperWeights) {
  NeighborTable table{10_s};
  table.onProbe({ProbeType::PairSmall, 3, 0}, 100_ms);
  table.onProbe({ProbeType::PairLarge, 3, 0}, 110_ms);  // 10 ms
  table.onProbe({ProbeType::PairSmall, 3, 1}, SimTime::seconds(10.1));
  table.onProbe({ProbeType::PairLarge, 3, 1}, SimTime::seconds(10.12));  // 20 ms
  const LinkMeasurement m = table.measure(3, 11_s);
  EXPECT_NEAR(m.delayS, 0.9 * 0.010 + 0.1 * 0.020, 1e-12);
}

TEST(NeighborTable, LostLargeProbePenalizesOnNextPair) {
  NeighborTable table{10_s};
  table.onProbe({ProbeType::PairSmall, 3, 0}, 100_ms);
  table.onProbe({ProbeType::PairLarge, 3, 0}, 110_ms);  // EWMA = 10 ms
  table.onProbe({ProbeType::PairSmall, 3, 1}, 10_s);    // large of pair 1 lost
  table.onProbe({ProbeType::PairSmall, 3, 2}, 20_s);    // supersedes pair 1
  const LinkMeasurement m = table.measure(3, 21_s);
  EXPECT_NEAR(m.delayS, 0.010 * 1.2, 1e-12);
  EXPECT_EQ(table.stats().pairPenalties, 1u);
}

TEST(NeighborTable, LostSmallProbePenalizesImmediately) {
  NeighborTable table{10_s};
  table.onProbe({ProbeType::PairSmall, 3, 0}, 100_ms);
  table.onProbe({ProbeType::PairLarge, 3, 0}, 110_ms);
  table.onProbe({ProbeType::PairLarge, 3, 1}, 10_s);  // small of pair 1 lost
  const LinkMeasurement m = table.measure(3, 11_s);
  EXPECT_NEAR(m.delayS, 0.010 * 1.2, 1e-12);
  EXPECT_EQ(table.stats().pairPenalties, 1u);
}

TEST(NeighborTable, RepeatedLossGrowsCostExponentially) {
  // Section 4.2.1/5.3: under persistent loss the PP cost explodes — each
  // incomplete pair multiplies the EWMA by 1.2.
  NeighborTable table{10_s};
  table.onProbe({ProbeType::PairSmall, 9, 0}, 0_ms);
  table.onProbe({ProbeType::PairLarge, 9, 0}, 10_ms);
  for (std::uint32_t s = 1; s <= 20; ++s) {
    table.onProbe({ProbeType::PairLarge, 9, s},
                  SimTime::seconds(static_cast<std::int64_t>(10 * s)));
  }
  const LinkMeasurement m = table.measure(9, 210_s);
  EXPECT_NEAR(m.delayS, 0.010 * std::pow(1.2, 20), 1e-9);
}

// --------------------------------------------------------- probe framing

TEST(ProbeMessages, SizesMatchPacketPairConvention) {
  ProbeMessage single{ProbeType::Single, 1, 0};
  ProbeMessage small{ProbeType::PairSmall, 1, 0};
  ProbeMessage large{ProbeType::PairLarge, 1, 0};
  EXPECT_EQ(single.serialize().size(), kSmallProbeBytes);
  EXPECT_EQ(small.serialize().size(), kSmallProbeBytes);
  EXPECT_EQ(large.serialize().size(), kLargeProbeBytes);
}

TEST(ProbeMessages, RoundTrip) {
  ProbeMessage m{ProbeType::PairLarge, 321, 0xDEADBEEF};
  const auto parsed = ProbeMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, ProbeType::PairLarge);
  EXPECT_EQ(parsed->sender, 321);
  EXPECT_EQ(parsed->seq, 0xDEADBEEF);
}

TEST(ProbeMessages, ParseRejectsShortOrUnknown) {
  EXPECT_FALSE(ProbeMessage::parse(std::vector<std::uint8_t>(3, 0)).has_value());
  std::vector<std::uint8_t> bad(16, 0);
  bad[0] = 9;
  EXPECT_FALSE(ProbeMessage::parse(bad).has_value());
}

// ----------------------------------------- probing end-to-end over the MAC

struct ProbeRig {
  sim::Simulator simulator;
  phy::StaticLinkModel* links{nullptr};
  std::unique_ptr<phy::Channel> channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::Mac80211>> macs;
  std::vector<std::unique_ptr<NeighborTable>> tables;
  std::vector<std::unique_ptr<ProbeService>> services;

  ProbeRig(std::size_t n, const ProbeConfig& config, double rateScale = 1.0,
           std::uint64_t seed = 17) {
    auto model = std::make_unique<phy::StaticLinkModel>(n);
    links = model.get();
    channel = std::make_unique<phy::Channel>(simulator, std::move(model),
                                             Rng{seed}.fork("channel"));
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(
          simulator, static_cast<net::NodeId>(i), phy::PhyParams{}));
      channel->attach(*radios.back());
      macs.push_back(std::make_unique<mac::Mac80211>(
          simulator, *radios.back(), mac::MacParams{}, Rng{seed}.fork("mac", i)));
      tables.push_back(std::make_unique<NeighborTable>(
          config.interval.scaled(1.0 / rateScale), config.lossWindow));
      services.push_back(std::make_unique<ProbeService>(
          simulator, static_cast<net::NodeId>(i), config, rateScale,
          *tables.back(),
          [this, i](net::PacketPtr p) {
            macs[i]->send(std::move(p), net::kBroadcastNode);
          },
          Rng{seed}.fork("probe", i)));
      macs.back()->setReceiveCallback(
          [this, i](const net::PacketPtr& p, net::NodeId) {
            if (p->kind() == net::PacketKind::Probe) {
              services[i]->onPacket(p, simulator.now());
            }
          });
    }
  }

  void startAll() {
    for (auto& s : services) s->start();
  }
};

TEST(ProbeService, SingleProbesPopulateTablesOnCleanLink) {
  ProbeConfig config{ProbeMode::Single, 5_s, 10};
  ProbeRig rig{2, config};
  rig.links->setSymmetric(0, 1, 1e-8);
  rig.startAll();
  rig.simulator.run(120_s);
  EXPECT_NEAR(rig.tables[1]->measure(0, 120_s).df, 1.0, 1e-9);
  EXPECT_NEAR(rig.tables[0]->measure(1, 120_s).df, 1.0, 1e-9);
  // ~24 probes in 120 s at 5 s interval (jittered).
  EXPECT_NEAR(static_cast<double>(rig.services[0]->stats().probesSent), 24.0, 4.0);
}

TEST(ProbeService, LossyLinkMeasuredAccurately) {
  ProbeConfig config{ProbeMode::Single, 5_s, 10};
  ProbeRig rig{2, config, 1.0, /*seed=*/23};
  rig.links->setSymmetric(0, 1, 1e-8);
  rig.links->setLossRate(0, 1, 0.45);
  rig.startAll();
  rig.simulator.run(600_s);
  EXPECT_NEAR(rig.tables[1]->measure(0, 600_s).df, 0.55, 0.17);
  // Reverse direction unaffected.
  EXPECT_NEAR(rig.tables[0]->measure(1, 600_s).df, 1.0, 1e-9);
}

TEST(ProbeService, PairProbesYieldBandwidthNearChannelRate) {
  ProbeConfig config{ProbeMode::Pair, 10_s, 10};
  ProbeRig rig{2, config};
  rig.links->setSymmetric(0, 1, 1e-8);
  rig.startAll();
  rig.simulator.run(200_s);
  const LinkMeasurement m = rig.tables[1]->measure(0, 200_s);
  ASSERT_TRUE(m.hasDelay);
  ASSERT_TRUE(m.hasBandwidth);
  // Dispersion on an idle 2 Mbps channel = preamble + 1137 B / 2 Mbps plus
  // DIFS/backoff gap: delay ~= 4.8-5.5 ms, bandwidth estimate a bit under
  // 2 Mbps.
  EXPECT_GT(m.bandwidthBps, 1.2e6);
  EXPECT_LT(m.bandwidthBps, 2.0e6);
  EXPECT_GT(m.delayS, 0.004);
  EXPECT_LT(m.delayS, 0.008);
}

TEST(ProbeService, RateScaleMultipliesProbeTraffic) {
  ProbeConfig config{ProbeMode::Single, 5_s, 10};
  ProbeRig normal{2, config, 1.0};
  ProbeRig fast{2, config, 5.0};
  normal.links->setSymmetric(0, 1, 1e-8);
  fast.links->setSymmetric(0, 1, 1e-8);
  normal.startAll();
  fast.startAll();
  normal.simulator.run(300_s);
  fast.simulator.run(300_s);
  const double ratio =
      static_cast<double>(fast.services[0]->stats().probesSent) /
      static_cast<double>(normal.services[0]->stats().probesSent);
  EXPECT_NEAR(ratio, 5.0, 0.6);
}

TEST(ProbeService, NoneModeSendsNothing) {
  ProbeConfig config{};  // ProbeMode::None
  ProbeRig rig{2, config};
  rig.links->setSymmetric(0, 1, 1e-8);
  rig.startAll();
  rig.simulator.run(100_s);
  EXPECT_EQ(rig.services[0]->stats().probesSent, 0u);
  EXPECT_FALSE(rig.simulator.hasPendingEvents());
}

TEST(ProbeService, DeadLinkDecaysAfterProbingStops) {
  ProbeConfig config{ProbeMode::Single, 5_s, 10};
  ProbeRig rig{2, config};
  rig.links->setSymmetric(0, 1, 1e-8);
  rig.startAll();
  rig.simulator.run(100_s);
  ASSERT_GE(rig.tables[1]->measure(0, 100_s).df, 0.9);
  rig.services[0]->stop();
  rig.simulator.run(200_s);
  EXPECT_DOUBLE_EQ(rig.tables[1]->measure(0, 200_s).df, 0.0);
}

}  // namespace
}  // namespace mesh::metrics
