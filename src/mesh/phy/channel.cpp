#include "mesh/phy/channel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "mesh/common/log.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::phy {
namespace {
constexpr double kSpeedOfLight = 299'792'458.0;  // m/s

// Grid cells at half the reach radius: a disk query then touches ~pi*(R/c+1)²
// ≈ 28 cells whose union hugs the disk, instead of a 3×3 box with ~2.9× the
// disk's area. Finer cells prune better but cost more bucket iteration.
constexpr double kCellsPerReachRadius = 2.0;

std::optional<bool> parseSpatialIndexEnv() {
  const char* raw = std::getenv("MESH_SPATIAL_INDEX");
  if (raw == nullptr) return std::nullopt;
  const std::string_view v{raw};
  if (v == "off" || v == "0" || v == "false") return false;
  if (v == "on" || v == "1" || v == "true") return true;
  MESH_WARN("phy", "ignoring unrecognized MESH_SPATIAL_INDEX value '%s'", raw);
  return std::nullopt;
}
}  // namespace

Channel::Channel(sim::Simulator& simulator, std::unique_ptr<LinkModel> linkModel,
                 Rng rng, double fadingHeadroom)
    : simulator_{simulator},
      linkModel_{std::move(linkModel)},
      rng_{rng},
      fadingHeadroom_{fadingHeadroom},
      cacheMeans_{linkModel_ != nullptr && linkModel_->meansCacheable()},
      spatialEnvOverride_{parseSpatialIndexEnv()} {
  MESH_REQUIRE(linkModel_ != nullptr);
  MESH_REQUIRE(fadingHeadroom_ >= 1.0);
  scaledFading_ = linkModel_->meanScaledFading();
  if (scaledFading_ == nullptr) {
    fadingPath_ = FadingPath::Generic;
  } else if (dynamic_cast<const RayleighFading*>(scaledFading_) != nullptr) {
    fadingPath_ = FadingPath::Rayleigh;
  } else if (dynamic_cast<const NoFading*>(scaledFading_) != nullptr) {
    fadingPath_ = FadingPath::Unity;  // powerGain() == 1.0, draw-free
  } else {
    fadingPath_ = FadingPath::Virtual;
  }
}

void Channel::attach(Radio& radio) {
  MESH_REQUIRE(!attachClosed_);
  const auto [it, inserted] = nodeIndex_.emplace(
      radio.nodeId(), static_cast<std::uint32_t>(radios_.size()));
  MESH_REQUIRE(inserted);  // one radio per node id
  (void)it;
  radios_.push_back(&radio);
  radio.attachChannel(this, radios_.size() - 1);
}

void Channel::overrideLinkLoss(net::NodeId a, net::NodeId b, double loss) {
  MESH_REQUIRE(a != b);
  MESH_REQUIRE(loss >= 0.0 && loss <= 1.0);
  linkLoss_[net::LinkKey{a, b}] = loss;
  linkLoss_[net::LinkKey{b, a}] = loss;
}

void Channel::clearLinkLoss(net::NodeId a, net::NodeId b) {
  linkLoss_.erase(net::LinkKey{a, b});
  linkLoss_.erase(net::LinkKey{b, a});
}

Radio* Channel::findRadio(net::NodeId node) const {
  const auto it = nodeIndex_.find(node);
  return it == nodeIndex_.end() ? nullptr : radios_[it->second];
}

void Channel::invalidateReachability() {
  if (!reachabilityBuilt_) {
    // A full rebuild is already pending; this invalidation rides along.
    ++stats_.coalescedInvalidations;
    return;
  }
  reachabilityBuilt_ = false;
  // A full rebuild re-derives every row, so pending per-radio work is
  // absorbed rather than coalesced (it still happens — just all at once).
  dirtyRadios_.clear();
  std::fill(dirtyMask_.begin(), dirtyMask_.end(), std::uint64_t{0});
}

void Channel::invalidateRadio(net::NodeId node) {
  if (!reachabilityBuilt_) {
    ++stats_.coalescedInvalidations;
    return;
  }
  // Incremental row rebuilds are exact only when build-time positions are
  // still authoritative: static geometry (cacheMeans_) indexed by the grid.
  // Mobility and non-geometric models fall back to a full rebuild (their
  // periodic refresh / full scan already bounds the cost).
  const auto it = nodeIndex_.find(node);
  if (!spatialActive_ || !cacheMeans_ || it == nodeIndex_.end()) {
    invalidateReachability();
    return;
  }
  // O(1) membership test via the dirty bitmap (sized at build time, and
  // attach is closed after the first build) — a linear scan of
  // dirtyRadios_ would go quadratic under heavy churn at n >= 2000.
  const std::uint32_t index = it->second;
  const std::size_t word = index >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (index & 63);
  MESH_ASSERT(word < dirtyMask_.size());
  if ((dirtyMask_[word] & bit) != 0) {
    ++stats_.coalescedInvalidations;  // already dirty: same rows, one pass
    return;
  }
  dirtyMask_[word] |= bit;
  dirtyRadios_.push_back(index);
}

void Channel::prepareSpatialIndex() {
  spatialActive_ = false;
  // A full (re)build derives its own grid over live model positions; any
  // adopted snapshot's frozen pair stops being authoritative here.
  activeGrid_ = &grid_;
  activePositions_ = &gridPositions_;
  const bool wanted =
      spatialEnvOverride_.has_value() ? *spatialEnvOverride_ : spatialKnob_;
  if (!wanted || !linkModel_->spatiallyIndexable()) return;

  // The pruning power floor must be valid for every transmitter: use the
  // smallest carrier-sense threshold across radios (they are uniform in
  // practice) divided by the fading headroom — exactly the weakest mean
  // power buildRow's predicate can accept.
  double minCs = std::numeric_limits<double>::infinity();
  for (const Radio* radio : radios_) {
    minCs = std::min(minCs, radio->params().csThresholdW);
  }
  const double floorW = minCs / fadingHeadroom_;
  if (!(floorW > 0.0) || !std::isfinite(floorW)) return;
  const double reach = linkModel_->maxReachRadiusM(floorW);
  if (!std::isfinite(reach) || reach <= 0.0) return;

  reachRadiusM_ = reach;
  gridPositions_.resize(radios_.size());
  for (std::size_t i = 0; i < radios_.size(); ++i) {
    gridPositions_[i] = linkModel_->nodePosition(radios_[i]->nodeId());
  }
  grid_.build(gridPositions_, reach / kCellsPerReachRadius);
  spatialActive_ = true;
}

void Channel::buildRow(std::size_t tx) {
  // Copy-on-write: the rebuilt row always lands in channel-local storage
  // and the view is repointed — a shared snapshot row is never written.
  auto& row = reachable_[tx];
  rowView_[tx] = &row;
  row.clear();
  // A failed radio keeps an empty receiver set (it cannot radiate) and
  // never appears in anyone else's set (it cannot hear). Radio::setFailed
  // invalidates the affected rows so this stays current.
  if (radios_[tx]->failed()) return;
  const double csThreshold = radios_[tx]->params().csThresholdW;
  const net::NodeId txNode = radios_[tx]->nodeId();

  const auto consider = [&](std::size_t rx) {
    if (rx == tx || radios_[rx]->failed()) return;
    const double mean = linkModel_->meanRxPowerW(txNode, radios_[rx]->nodeId());
    if (mean * fadingHeadroom_ < csThreshold) return;
    if (cacheMeans_) {
      const double distance =
          linkModel_->distanceM(txNode, radios_[rx]->nodeId());
      row.push_back(CachedLink{static_cast<std::uint32_t>(rx), mean,
                               SimTime::seconds(distance / kSpeedOfLight)});
    } else {
      // Mobility: the per-transmission loop re-queries power and distance
      // live, so deriving them here would be dead work — record only the
      // receiver index.
      row.push_back(
          CachedLink{static_cast<std::uint32_t>(rx), 0.0, SimTime::zero()});
    }
  };

  if (spatialActive_) {
    // Grid candidates are a conservative superset of everything the exact
    // predicate can accept. Scattering them into a bitmap and walking its
    // set bits restores global ascending index order in O(k + n/64) —
    // measurably cheaper than a per-row sort — so the row, and every
    // downstream RNG draw, is bit-identical to the full scan below.
    const SpatialGrid& grid = *activeGrid_;
    const std::vector<Vec2>& positions = *activePositions_;
    rowScratch_.clear();
    grid.candidatesWithin(positions[tx], reachRadiusM_, rowScratch_);
    rowMask_.assign((radios_.size() + 63) / 64, 0);
    for (const std::uint32_t rx : rowScratch_) {
      rowMask_[rx >> 6] |= std::uint64_t{1} << (rx & 63);
    }
    // Cell-level pruning leaves corner slop; the conservative-radius
    // contract (mean >= floor implies distance <= reach) makes a squared-
    // distance precheck exact, so those candidates cost one multiply
    // instead of a virtual propagation evaluation.
    const Vec2 txPos = positions[tx];
    const double reach2 = reachRadiusM_ * reachRadiusM_;
    for (std::size_t w = 0; w < rowMask_.size(); ++w) {
      for (std::uint64_t bits = rowMask_[w]; bits != 0; bits &= bits - 1) {
        const auto rx =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        if (txPos.distanceSquaredTo(positions[rx]) > reach2) continue;
        consider(rx);
      }
    }
  } else {
    for (std::size_t rx = 0; rx < radios_.size(); ++rx) consider(rx);
  }
}

void Channel::buildReachability() {
  prepareSpatialIndex();
  reachable_.resize(radios_.size());
  rowView_.resize(radios_.size());
  for (std::size_t tx = 0; tx < radios_.size(); ++tx) buildRow(tx);
  // Every row now lives in channel-local storage; a previously adopted
  // snapshot has nothing left to contribute.
  shared_.reset();
  dirtyRadios_.clear();  // a full build supersedes any pending row work
  dirtyMask_.assign((radios_.size() + 63) / 64, 0);
  reachabilityBuilt_ = true;
  attachClosed_ = true;
  reachabilityBuiltAt_ = simulator_.now();
  ++stats_.reachabilityRebuilds;
  if (cacheMeans_) {
    ++stats_.cachedRebuilds;
  } else {
    ++stats_.liveRebuilds;
  }
}

void Channel::applyDirtyRadios() {
  MESH_ASSERT(spatialActive_ && cacheMeans_);
  // The affected rows are exactly: each dirty radio's own row, plus every
  // row whose transmitter lies within the reach radius of a dirty radio —
  // no other row can gain or lose the dirty radio (pairs beyond the reach
  // radius always fail the mean-power predicate). Positions are the
  // build-time snapshot, which static geometry keeps authoritative.
  std::vector<std::uint32_t>& affected = dirtyScratch_;
  affected.clear();
  for (const std::uint32_t dirty : dirtyRadios_) {
    affected.push_back(dirty);
    activeGrid_->candidatesWithin((*activePositions_)[dirty], reachRadiusM_,
                                  affected);
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (const std::uint32_t row : affected) buildRow(row);
  for (const std::uint32_t dirty : dirtyRadios_) {
    dirtyMask_[dirty >> 6] &= ~(std::uint64_t{1} << (dirty & 63));
  }
  dirtyRadios_.clear();
  ++stats_.incrementalRebuilds;
  stats_.rowsRebuilt += affected.size();
}

std::size_t Channel::ReachSnapshot::approxBytes() const {
  std::size_t bytes = sizeof(ReachSnapshot);
  bytes += rows.capacity() * sizeof(rows[0]);
  for (const auto& row : rows) bytes += row.capacity() * sizeof(CachedLink);
  bytes += positions.capacity() * sizeof(Vec2);
  bytes += grid.approxBytes();
  return bytes;
}

std::shared_ptr<const Channel::ReachSnapshot> Channel::freezeAndShare() {
  MESH_REQUIRE(cacheMeans_);
  MESH_REQUIRE(refreshInterval_.isZero());
  MESH_REQUIRE(shared_ == nullptr);
  // Freeze the settled state: force the first build or flush pending
  // per-row work, exactly what the next transmission would have done.
  if (!reachabilityBuilt_) {
    buildReachability();
  } else if (!dirtyRadios_.empty()) {
    applyDirtyRadios();
  }
  auto snapshot = std::make_shared<ReachSnapshot>();
  snapshot->rows = std::move(reachable_);
  snapshot->grid = std::move(grid_);
  snapshot->positions = std::move(gridPositions_);
  snapshot->reachRadiusM = reachRadiusM_;
  snapshot->spatialActive = spatialActive_;
  // Adopt the frozen state ourselves: the builder run reads the same rows
  // through the same shared path every adopter uses, at zero copy cost.
  reachable_.assign(snapshot->rows.size(), {});
  gridPositions_.clear();
  grid_ = SpatialGrid{};
  shared_ = snapshot;
  rowView_.resize(snapshot->rows.size());
  for (std::size_t i = 0; i < snapshot->rows.size(); ++i) {
    rowView_[i] = &snapshot->rows[i];
  }
  activeGrid_ = &snapshot->grid;
  activePositions_ = &snapshot->positions;
  return snapshot;
}

void Channel::adoptReachability(
    std::shared_ptr<const ReachSnapshot> snapshot) {
  MESH_REQUIRE(snapshot != nullptr);
  MESH_REQUIRE(!reachabilityBuilt_ && shared_ == nullptr);
  MESH_REQUIRE(cacheMeans_);
  MESH_REQUIRE(refreshInterval_.isZero());
  MESH_REQUIRE(snapshot->rows.size() == radios_.size());
  shared_ = std::move(snapshot);
  const std::size_t n = radios_.size();
  reachable_.assign(n, {});
  rowView_.resize(n);
  for (std::size_t i = 0; i < n; ++i) rowView_[i] = &shared_->rows[i];
  activeGrid_ = &shared_->grid;
  activePositions_ = &shared_->positions;
  reachRadiusM_ = shared_->reachRadiusM;
  spatialActive_ = shared_->spatialActive;
  dirtyRadios_.clear();
  dirtyMask_.assign((n + 63) / 64, 0);
  reachabilityBuilt_ = true;
  attachClosed_ = true;
  reachabilityBuiltAt_ = simulator_.now();
  ++stats_.snapshotAdopts;
}

bool Channel::lossSuppressed(net::NodeId tx, net::NodeId rx,
                             const PhyFramePtr& frame) {
  const auto it = linkLoss_.find(net::LinkKey{tx, rx});
  if (it == linkLoss_.end()) return false;
  // A full blackout consumes no RNG draw: the pre- and post-fault segments
  // of the run keep their draw sequence aligned with a fault-free run.
  const bool suppressed = it->second >= 1.0 || rng_.bernoulli(it->second);
  if (!suppressed) return false;
  ++stats_.faultSuppressedDeliveries;
  if (trace_ != nullptr) {
    trace_->drop(simulator_.now(), rx, frame->payload.get(),
                 frame->payload != nullptr ? frame->payload->kind()
                                           : net::PacketKind::MacControl,
                 static_cast<std::uint32_t>(frame->sizeBytes()),
                 trace::DropReason::FaultLinkDown);
  }
  return true;
}

void Channel::transmit(Radio& sender, const PhyFramePtr& frame,
                       SimTime airtime) {
  // Staleness first, before anything can consult the cache — and inclusive
  // (>=), so a refresh interval of exactly the elapsed delta rebuilds
  // instead of sliding one transmission past its deadline.
  if (reachabilityBuilt_ && !refreshInterval_.isZero() &&
      simulator_.now() - reachabilityBuiltAt_ >= refreshInterval_) {
    reachabilityBuilt_ = false;  // stale under mobility: rebuild below
  }
  if (!reachabilityBuilt_) {
    buildReachability();
  } else if (!dirtyRadios_.empty()) {
    applyDirtyRadios();
  }
  ++stats_.transmissions;

  const std::size_t txIndex = sender.channelIndex();
  MESH_ASSERT(txIndex < radios_.size() && radios_[txIndex] == &sender);
  const net::NodeId txNode = sender.nodeId();
  // Per-transmission invariants, hoisted out of the per-delivery loops:
  // fault-free runs have no loss table, and legacy (code-0) frames never
  // take a PER draw — the checks inside perCorrupted stay as a backstop
  // but the fan-out no longer pays them per receiver.
  const bool checkLoss = !linkLoss_.empty();
  const bool ratePath = rateTable_ != nullptr && frame->tx.rateAware();

  if (cacheMeans_) {
    // Hot path: flat slab of precomputed (receiver, mean, delay); with a
    // mean-scaled fading model even the per-frame sampling draw is inlined
    // (fadingPath_, classified at construction — same draws, same bits).
    const FadingPath fp = fadingPath_;
    std::uint64_t scheduled = 0;
    for (const CachedLink& link : *rowView_[txIndex]) {
      Radio& receiver = *radios_[link.rxIndex];
      if (checkLoss && lossSuppressed(txNode, receiver.nodeId(), frame)) {
        continue;
      }
      double powerW;
      if (fp == FadingPath::Rayleigh) {
        powerW = link.meanPowerW * rng_.rayleighPowerGain();
      } else if (fp == FadingPath::Unity) {
        powerW = link.meanPowerW;
      } else if (fp == FadingPath::Virtual) {
        powerW = link.meanPowerW * scaledFading_->powerGain(rng_);
      } else {
        powerW = linkModel_->samplePowerGivenMeanW(
            txNode, receiver.nodeId(), link.meanPowerW, rng_);
      }
      // Signals with no carrier-sense significance are not worth an event.
      if (powerW < receiver.params().csThresholdW * 1e-3) continue;
      const bool corrupted = ratePath && perCorrupted(receiver, frame, powerW);
      ++scheduled;
      simulator_.schedule(
          link.propagation,
          [&receiver, frame, txNode, powerW, airtime, corrupted] {
            receiver.beginArrival(frame, txNode, powerW, airtime, corrupted);
          });
    }
    stats_.deliveriesScheduled += scheduled;
    return;
  }

  // Mobility: positions change between rebuilds, so power and delay are
  // queried live (the cache still bounds the fan-out via its headroom).
  for (const CachedLink& link : *rowView_[txIndex]) {
    Radio& receiver = *radios_[link.rxIndex];
    if (checkLoss && lossSuppressed(txNode, receiver.nodeId(), frame)) {
      continue;
    }
    const double powerW =
        linkModel_->sampleRxPowerW(txNode, receiver.nodeId(), rng_);
    if (powerW < receiver.params().csThresholdW * 1e-3) continue;

    const double distance = linkModel_->distanceM(txNode, receiver.nodeId());
    const SimTime propagation = SimTime::seconds(distance / kSpeedOfLight);
    const bool corrupted = ratePath && perCorrupted(receiver, frame, powerW);
    ++stats_.deliveriesScheduled;
    simulator_.schedule(
        propagation, [&receiver, frame, txNode, powerW, airtime, corrupted] {
          receiver.beginArrival(frame, txNode, powerW, airtime, corrupted);
        });
  }
}

bool Channel::perCorrupted(const Radio& receiver, const PhyFramePtr& frame,
                           double powerW) {
  // Legacy frames (code 0) and runs without a rate table take no draw at
  // all — the RNG stream stays bit-identical to the pre-rate simulator.
  if (rateTable_ == nullptr || !frame->tx.rateAware()) return false;
  // Below the lock threshold the frame is undecodable regardless; spare
  // the draw.
  if (powerW < receiver.params().rxThresholdW) return false;
  const double snrDb = linearToDb(powerW / receiver.params().noiseFloorW);
  const double per =
      rateTable_->per(frame->tx.code, snrDb, frame->sizeBytes());
  return rng_.bernoulli(per);
}

}  // namespace mesh::phy
