# Empty dependencies file for mesh_mac.
# This may be replaced when dependencies are built.
