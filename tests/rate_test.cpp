// Rate subsystem: the RateTable's airtime/PER curves, the three
// controllers, config/env plumbing, and — the load-bearing checks —
// rate_control=fixed staying byte-identical to the legacy single-rate
// simulator (including across sweep job counts), Minstrel determinism
// under a fixed seed, and the Genie ≥ Minstrel ≥ Fixed goodput ordering
// on a saturated short link.
//
// Also home of the fault-replay round trip: a [faults] config section
// drives a traced run, `faultSectionFromTrace` regenerates the section
// from the trace, and re-parsing it yields the original schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/harness/config_file.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/phy/phy_params.hpp"
#include "mesh/rate/rate_controller.hpp"
#include "mesh/rate/rate_table.hpp"
#include "mesh/runner/sweep.hpp"
#include "mesh/trace/trace_reader.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;
using harness::BenchOptions;
using harness::ProtocolSpec;
using harness::ScenarioConfig;
using rate::ControlKind;
using rate::RateSetKind;
using rate::RateTable;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------ rate table

TEST(RateTable, BasicSetMatchesLegacyPhyAirtime) {
  const RateTable table = RateTable::forSet(RateSetKind::Basic);
  ASSERT_EQ(table.size(), 1);
  EXPECT_EQ(table.basicCode(), 1);
  const phy::PhyParams params{};
  for (const std::size_t bytes : {std::size_t{1}, std::size_t{60},
                                  std::size_t{540}, std::size_t{1500}}) {
    EXPECT_EQ(table.frameAirtime(bytes, table.basicCode()),
              params.frameAirtime(bytes))
        << bytes << " bytes";
  }
}

TEST(RateTable, AirtimeShrinksWithBitrateWithinAFamily) {
  const RateTable table = RateTable::forSet(RateSetKind::DsssOfdm);
  ASSERT_GE(table.size(), 8);
  for (std::uint8_t a = 1; a <= table.size(); ++a) {
    for (std::uint8_t b = 1; b <= table.size(); ++b) {
      if (table.info(a).modulation != table.info(b).modulation) continue;
      if (table.info(a).bitRateBps >= table.info(b).bitRateBps) continue;
      EXPECT_GT(table.frameAirtime(540, a), table.frameAirtime(540, b))
          << table.info(a).name << " vs " << table.info(b).name;
    }
  }
}

TEST(RateTable, PerIsMonotoneInSnrAndInRate) {
  const RateTable table = RateTable::forSet(RateSetKind::DsssOfdm);
  // More SNR never hurts any rate.
  for (std::uint8_t code = 1; code <= table.size(); ++code) {
    double prev = 1.0;
    for (double snr = 0.0; snr <= 70.0; snr += 0.5) {
      const double per = table.per(code, snr, 540);
      EXPECT_GE(per, 0.0);
      EXPECT_LE(per, 1.0);
      EXPECT_LE(per, prev + 1e-12) << table.info(code).name << " @ " << snr;
      prev = per;
    }
    // Saturates cleanly at both ends.
    EXPECT_GT(table.per(code, 0.0, 540), 0.999);
    EXPECT_LT(table.per(code, 70.0, 540), 1e-6);
  }
  // At any fixed SNR a faster rate of the same modulation is never easier
  // to decode (strictly increasing berMid anchors).
  for (double snr = 5.0; snr <= 65.0; snr += 5.0) {
    for (std::uint8_t a = 1; a <= table.size(); ++a) {
      for (std::uint8_t b = 1; b <= table.size(); ++b) {
        if (table.info(a).modulation != table.info(b).modulation) continue;
        if (table.info(a).bitRateBps >= table.info(b).bitRateBps) continue;
        EXPECT_LE(table.per(a, snr, 540), table.per(b, snr, 540) + 1e-12)
            << table.info(a).name << " vs " << table.info(b).name << " @ "
            << snr;
      }
    }
  }
}

TEST(RateTable, TwoMbpsStaysLosslessAcrossThePapersRange) {
  // The legacy PHY delivers every locked frame; the 2 Mbps PER curve must
  // not undercut that anywhere in the paper's 250 m reception range
  // (≈36.6 dB SNR at the lock threshold).
  const RateTable table = RateTable::forSet(RateSetKind::DsssOfdm);
  std::uint8_t twoMbps = 0;
  for (std::uint8_t code = 1; code <= table.size(); ++code) {
    if (table.info(code).bitRateBps == 2e6) twoMbps = code;
  }
  ASSERT_NE(twoMbps, 0);
  EXPECT_EQ(table.basicCode(), twoMbps);
  EXPECT_LT(table.per(twoMbps, 36.6, 540), 1e-9);
}

TEST(RateStrings, KindAndSetRoundTrip) {
  ControlKind kind{};
  EXPECT_TRUE(rate::controlKindFromString("minstrel", kind));
  EXPECT_EQ(kind, ControlKind::Minstrel);
  EXPECT_TRUE(rate::controlKindFromString("genie", kind));
  EXPECT_EQ(kind, ControlKind::Genie);
  EXPECT_FALSE(rate::controlKindFromString("arf", kind));

  RateSetKind set{};
  EXPECT_TRUE(rate::rateSetFromString("11bg", set));
  EXPECT_EQ(set, RateSetKind::DsssOfdm);
  EXPECT_TRUE(rate::rateSetFromString("basic", set));
  EXPECT_EQ(set, RateSetKind::Basic);
  EXPECT_FALSE(rate::rateSetFromString("11n", set));
}

// ------------------------------------------------------------ controllers

TEST(MinstrelController, FollowsFeedbackUpAndDownTheLadder) {
  const RateTable table = RateTable::forSet(RateSetKind::DsssOfdm);
  rate::MinstrelController minstrel{table};
  // No feedback yet: broadcast sits at the basic rate.
  EXPECT_EQ(minstrel.dataVector().code, table.basicCode());

  // One neighbor hears the top rate perfectly -> jump to it.
  const std::uint8_t top = table.size();
  minstrel.onRateFeedback(7, top, 1.0);
  EXPECT_EQ(minstrel.dataVector().code, top);

  // The link collapses at that rate: repeated zero-delivery feedback drives
  // the EWMA below minProb and the controller falls back.
  for (int i = 0; i < 24; ++i) minstrel.onRateFeedback(7, top, 0.0);
  EXPECT_LT(minstrel.successProb(7, top), 0.10);
  EXPECT_EQ(minstrel.dataVector().code, table.basicCode());
}

TEST(MinstrelController, RxWindowsTurnSeqGapsIntoReports) {
  const RateTable table = RateTable::forSet(RateSetKind::DsssOfdm);
  rate::MinstrelController minstrel{table};
  // Hear seq 1..4, then 8: three losses in the gap.
  for (std::uint32_t seq : {1u, 2u, 3u, 4u, 8u}) {
    minstrel.onProbeHeard(3, 2, seq);
  }
  std::vector<rate::RateFeedbackEntry> report;
  minstrel.buildRateReport(report, 16);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].neighbor, 3);
  EXPECT_EQ(report[0].code, 2);
  // 5 of 8 slots delivered.
  EXPECT_EQ(report[0].dfQ, static_cast<std::uint8_t>(std::lround(5.0 / 8.0 * 255.0)));
}

TEST(GenieController, PicksTheFastestRateTheSnrSupports) {
  const RateTable table = RateTable::forSet(RateSetKind::DsssOfdm);
  const auto neighbors = [] {
    return std::vector<std::pair<net::NodeId, double>>{{1, 60.0}, {2, 58.0}};
  };
  const auto snrTo = [](net::NodeId node) {
    return node == 1 ? 60.0 : 20.0;
  };
  rate::GenieController genie{table, neighbors, snrTo};
  // 60 dB clears every curve: broadcast and the strong unicast link run at
  // the top rate; the weak link stays at basic; late retries fall back.
  EXPECT_EQ(genie.dataVector().code, table.size());
  EXPECT_EQ(genie.unicastVector(1, 0).code, table.size());
  EXPECT_EQ(genie.unicastVector(2, 0).code, table.basicCode());
  EXPECT_EQ(genie.unicastVector(1, 2).code, table.basicCode());
}

// ------------------------------------------------------------ config & env

TEST(RateConfig, ScenarioKeysParse) {
  const char* text =
      "[scenario]\n"
      "nodes = 4\n"
      "rate_control = minstrel\n"
      "rate_set = 11bg\n"
      "[group 1]\n"
      "sources = 0\n"
      "members = 1\n";
  const harness::ConfigParseResult result = harness::parseScenarioConfig(text);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.config->rateControl, ControlKind::Minstrel);
  EXPECT_EQ(result.config->rateSet, RateSetKind::DsssOfdm);

  const harness::ConfigParseResult bad = harness::parseScenarioConfig(
      "[scenario]\nrate_control = arf\n[group 1]\nsources = 0\nmembers = 1\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("rate_control"), std::string::npos) << bad.error;
}

ScenarioConfig tinyScenario() {
  ScenarioConfig config;
  config.nodeCount = 4;
  config.areaWidthM = 200.0;
  config.areaHeightM = 200.0;
  config.rayleighFading = false;
  config.duration = 2_s;
  config.protocol = ProtocolSpec::with(metrics::MetricKind::Etx);
  config.traffic.payloadBytes = 64;
  config.traffic.packetsPerSecond = 2.0;
  config.traffic.start = 1_s;
  config.traffic.stop = 2_s;
  config.groups.push_back(harness::GroupSpec{1, {0}, {1}});
  return config;
}

TEST(RateConfig, EnvVarOverridesTheControlKind) {
  ASSERT_EQ(setenv("MESH_RATE_CONTROL", "minstrel", 1), 0);
  harness::Simulation sim{tinyScenario()};
  unsetenv("MESH_RATE_CONTROL");
  ASSERT_NE(sim.node(0).rateController(), nullptr);
  EXPECT_EQ(sim.node(0).rateController()->kind(), ControlKind::Minstrel);

  // Without the env var the default config stays on the legacy path: no
  // controller is even built.
  harness::Simulation legacy{tinyScenario()};
  EXPECT_EQ(legacy.node(0).rateController(), nullptr);
}

// ------------------------------------------------------ determinism anchors

// The runner_test/trace_test sweep scenario: small but lossy and real.
ScenarioConfig smallScenario(std::uint64_t topologySeed) {
  ScenarioConfig config;
  config.nodeCount = 10;
  config.areaWidthM = 300.0;
  config.areaHeightM = 300.0;
  config.rayleighFading = true;
  config.duration = 6_s;
  config.traffic.payloadBytes = 128;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 1_s;
  config.traffic.stop = 6_s;
  Rng groupRng = Rng{topologySeed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 1, 3, 1, groupRng);
  return config;
}

ScenarioConfig smallScenarioFixedRate(std::uint64_t topologySeed) {
  ScenarioConfig config = smallScenario(topologySeed);
  // Full plumbing armed — table built, channel PER hook installed,
  // controllers constructed — but every frame still carries code 0.
  config.rateControl = ControlKind::Fixed;
  config.rateSet = RateSetKind::DsssOfdm;
  return config;
}

BenchOptions sweepOptions(std::size_t jobs, const std::string& traceDir) {
  BenchOptions options;
  options.topologies = 2;
  options.duration = SimTime::zero();  // keep the scenario's 6 s
  options.baseSeed = 1000;
  options.verbose = false;
  options.jobs = jobs;
  options.traceDir = traceDir;
  return options;
}

TEST(RateDeterminism, FixedModeIsByteIdenticalToTheLegacyPathAcrossJobs) {
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::with(metrics::MetricKind::Etx)};
  const std::string dirLegacy = testing::TempDir() + "rate_legacy";
  const std::string dirFixed1 = testing::TempDir() + "rate_fixed_jobs1";
  const std::string dirFixed3 = testing::TempDir() + "rate_fixed_jobs3";

  const runner::SweepReport legacy = runner::runComparisonSweep(
      protocols, smallScenario, sweepOptions(1, dirLegacy), nullptr);
  const runner::SweepReport fixed1 = runner::runComparisonSweep(
      protocols, smallScenarioFixedRate, sweepOptions(1, dirFixed1), nullptr);
  const runner::SweepReport fixed3 = runner::runComparisonSweep(
      protocols, smallScenarioFixedRate, sweepOptions(3, dirFixed3), nullptr);
  ASSERT_EQ(legacy.failures, 0u);
  ASSERT_EQ(fixed1.failures, 0u);
  ASSERT_EQ(fixed3.failures, 0u);
  ASSERT_EQ(legacy.records.size(), 2u);

  for (const runner::RunRecord& record : legacy.records) {
    ASSERT_FALSE(record.tracePath.empty());
    const std::string name =
        record.tracePath.substr(record.tracePath.find_last_of('/') + 1);
    const std::string legacyBytes = slurp(dirLegacy + "/" + name);
    ASSERT_FALSE(legacyBytes.empty());
    // rate_control=fixed cannot disturb a single byte of the trace — not
    // an RNG draw, not a counter, not a JSONL field — serial or parallel.
    EXPECT_EQ(legacyBytes, slurp(dirFixed1 + "/" + name)) << name;
    EXPECT_EQ(legacyBytes, slurp(dirFixed3 + "/" + name)) << name;
    for (const std::string& dir : {dirLegacy, dirFixed1, dirFixed3}) {
      std::remove((dir + "/" + name).c_str());
    }
  }
}

TEST(RateDeterminism, MinstrelIsBitReproducibleUnderAFixedSeed) {
  const auto runOnce = [](const std::string& path) {
    ScenarioConfig config = smallScenario(11);
    config.rateControl = ControlKind::Minstrel;
    config.rateSet = RateSetKind::DsssOfdm;
    config.seed = 11;
    config.tracePath = path;
    harness::Simulation sim{config};
    return sim.run();
  };
  const std::string pathA = testing::TempDir() + "rate_minstrel_a.jsonl";
  const std::string pathB = testing::TempDir() + "rate_minstrel_b.jsonl";
  const harness::RunResults a = runOnce(pathA);
  const harness::RunResults b = runOnce(pathB);
  EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  const std::string bytesA = slurp(pathA);
  EXPECT_FALSE(bytesA.empty());
  EXPECT_EQ(bytesA, slurp(pathB));
  // A rate-aware run actually exercises the multi-rate path: some frame in
  // the trace carries a non-zero rate code.
  EXPECT_NE(bytesA.find("\"rate\":"), std::string::npos);
  std::remove(pathA.c_str());
  std::remove(pathB.c_str());
}

// ------------------------------------------------------------ goodput order

// Two nodes a short hop apart, CBR pushed past the 2 Mbps air capacity:
// the basic rate saturates, the faster codes don't. The oracle bounds the
// sampler, the sampler beats the anchor.
harness::RunResults runTwoNodeSweep(ControlKind control) {
  ScenarioConfig config;
  config.nodeCount = 2;
  config.areaWidthM = 60.0;
  config.areaHeightM = 60.0;
  config.rayleighFading = false;
  config.duration = SimTime::seconds(std::int64_t{60});
  config.protocol = ProtocolSpec::with(metrics::MetricKind::Etx);
  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 600.0;
  config.traffic.start = 1_s;
  config.traffic.stop = SimTime::seconds(std::int64_t{60});
  config.groups.push_back(harness::GroupSpec{1, {0}, {1}});
  config.seed = 5;
  config.rateControl = control;
  config.rateSet = RateSetKind::DsssOfdm;
  return harness::Simulation{config}.run();
}

TEST(RateGoodput, GenieBoundsMinstrelBoundsFixed) {
  const harness::RunResults fixed = runTwoNodeSweep(ControlKind::Fixed);
  const harness::RunResults minstrel = runTwoNodeSweep(ControlKind::Minstrel);
  const harness::RunResults genie = runTwoNodeSweep(ControlKind::Genie);

  // The anchor really is saturated, or the comparison means nothing.
  ASSERT_GT(fixed.packetsSent, 0u);
  ASSERT_LT(fixed.pdr, 0.95);

  EXPECT_GE(genie.packetsDelivered, minstrel.packetsDelivered);
  EXPECT_GE(minstrel.packetsDelivered, fixed.packetsDelivered);
  // And the separation is structural, not noise: the oracle at 60 m runs
  // frames an order of magnitude faster than 2 Mbps.
  EXPECT_GT(genie.packetsDelivered, fixed.packetsDelivered * 5 / 4);
}

// ------------------------------------------------------------ fault replay

TEST(FaultReplay, TraceRoundTripsBackIntoTheConfigGrammar) {
  const char* base =
      "[scenario]\n"
      "nodes = 6\n"
      "area = 300x300\n"
      "duration_s = 20\n"
      "fading = none\n"
      "seed = 3\n"
      "[protocol]\n"
      "metric = ETX\n"
      "[traffic]\n"
      "payload = 128\n"
      "rate_pps = 2\n"
      "start_s = 1\n"
      "stop_s = 20\n"
      "[group 1]\n"
      "sources = 0\n"
      "members = 3 4\n";
  const char* faults =
      "[faults]\n"
      "event = crash 2 @ 5 +4\n"
      "event = blackout 0-3 @ 6.5 +2.25\n"
      "event = loss 1-4 0.35 @ 8 +5\n"
      "event = burst 5 -57.5 @ 10 +0.5\n"
      "event = blackhole 3 @ 12 +6\n";

  const harness::ConfigParseResult original =
      harness::parseScenarioConfig(std::string{base} + faults);
  ASSERT_TRUE(original.ok()) << original.error;
  ASSERT_EQ(original.config->faults.size(), 5u);

  const std::string path = testing::TempDir() + "fault_replay.jsonl";
  ScenarioConfig config = *original.config;
  config.tracePath = path;
  harness::Simulation sim{config};
  sim.run();

  const trace::TraceReadResult read = trace::readTraceFile(path);
  ASSERT_TRUE(read.trace.has_value()) << read.error;
  const std::string section = trace::faultSectionFromTrace(*read.trace);

  // The regenerated section drops into a config file as-is...
  const harness::ConfigParseResult replayed =
      harness::parseScenarioConfig(std::string{base} + section);
  ASSERT_TRUE(replayed.ok()) << replayed.error << "\n" << section;

  // ...and reproduces the original schedule event-for-event (both sides
  // come out of FaultSchedule::add, so ordering matches too).
  const std::vector<fault::FaultEvent>& want = original.config->faults.events();
  const std::vector<fault::FaultEvent>& got = replayed.config->faults.events();
  ASSERT_EQ(got.size(), want.size()) << section;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].node, want[i].node) << i;
    EXPECT_EQ(got[i].peer, want[i].peer) << i;
    EXPECT_EQ(got[i].start, want[i].start) << i;
    EXPECT_EQ(got[i].duration, want[i].duration) << i;
    if (want[i].kind == trace::FaultKind::LossRamp) {
      EXPECT_DOUBLE_EQ(got[i].lossRate, want[i].lossRate) << i;
    }
    if (want[i].kind == trace::FaultKind::InterferenceBurst) {
      EXPECT_DOUBLE_EQ(got[i].powerDbm, want[i].powerDbm) << i;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mesh
