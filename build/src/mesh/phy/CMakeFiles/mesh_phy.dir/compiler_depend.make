# Empty compiler generated dependencies file for mesh_phy.
# This may be replaced when dependencies are built.
