#include "mesh/odmrp/messages.hpp"

#include "mesh/common/assert.hpp"

namespace mesh::odmrp {

std::optional<MessageType> peekType(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return std::nullopt;
  const std::uint8_t raw = bytes[0];
  if (raw < 1 || raw > 3) return std::nullopt;
  return static_cast<MessageType>(raw);
}

void JoinQuery::writeTo(net::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(MessageType::JoinQuery));
  w.u16(group);
  w.u16(source);
  w.u32(seq);
  w.u8(hopCount);
  w.u8(metricKind);
  w.u16(prevHop);
  w.f64(pathCost);
  MESH_ASSERT(w.size() <= kJoinQueryBytes);
  w.zeros(kJoinQueryBytes - w.size());
}

std::vector<std::uint8_t> JoinQuery::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kJoinQueryBytes);
  net::ByteWriter w{out};
  writeTo(w);
  return out;
}

std::optional<JoinQuery> JoinQuery::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 21 || bytes[0] != static_cast<std::uint8_t>(MessageType::JoinQuery)) {
    return std::nullopt;
  }
  net::ByteReader r{bytes};
  r.u8();
  JoinQuery q;
  q.group = r.u16();
  q.source = r.u16();
  q.seq = r.u32();
  q.hopCount = r.u8();
  q.metricKind = r.u8();
  q.prevHop = r.u16();
  q.pathCost = r.f64();
  return q;
}

void JoinReply::writeTo(net::ByteWriter& w) const {
  MESH_REQUIRE(entries.size() <= 255);
  w.u8(static_cast<std::uint8_t>(MessageType::JoinReply));
  w.u16(group);
  w.u16(sender);
  w.u32(seq);
  w.u8(static_cast<std::uint8_t>(entries.size()));
  for (const JoinReplyEntry& e : entries) {
    w.u16(e.source);
    w.u16(e.nextHop);
  }
  MESH_ASSERT(w.size() <= wireBytes());
  w.zeros(wireBytes() - w.size());
}

std::vector<std::uint8_t> JoinReply::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wireBytes());
  net::ByteWriter w{out};
  writeTo(w);
  return out;
}

std::optional<JoinReply> JoinReply::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 10 || bytes[0] != static_cast<std::uint8_t>(MessageType::JoinReply)) {
    return std::nullopt;
  }
  net::ByteReader r{bytes};
  r.u8();
  JoinReply reply;
  reply.group = r.u16();
  reply.sender = r.u16();
  reply.seq = r.u32();
  const std::uint8_t count = r.u8();
  if (r.remaining() < count * kJoinReplyEntryBytes) return std::nullopt;
  reply.entries.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    JoinReplyEntry e;
    e.source = r.u16();
    e.nextHop = r.u16();
    reply.entries.push_back(e);
  }
  return reply;
}

void DataHeader::writeTo(net::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(MessageType::Data));
  w.u16(group);
  w.u16(source);
  w.u32(seq);
  MESH_ASSERT(w.size() <= kDataHeaderBytes);
  w.zeros(kDataHeaderBytes - w.size());
}

std::vector<std::uint8_t> DataHeader::serializeWith(
    std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> out;
  out.reserve(kDataHeaderBytes + payload.size());
  net::ByteWriter w{out};
  writeTo(w);
  w.bytes(payload);
  return out;
}

std::optional<DataHeader> DataHeader::parse(
    std::span<const std::uint8_t> bytes,
    std::span<const std::uint8_t>* payloadBytes) {
  if (bytes.size() < kDataHeaderBytes ||
      bytes[0] != static_cast<std::uint8_t>(MessageType::Data)) {
    return std::nullopt;
  }
  net::ByteReader r{bytes};
  r.u8();
  DataHeader h;
  h.group = r.u16();
  h.source = r.u16();
  h.seq = r.u32();
  if (payloadBytes != nullptr) {
    *payloadBytes = bytes.subspan(kDataHeaderBytes);
  }
  return h;
}

}  // namespace mesh::odmrp
