#include "mesh/common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

namespace mesh::log {
namespace {

std::atomic<Level> g_level{Level::Warn};

// Thread-local: each worker thread of a parallel sweep runs its own
// Simulator, and every Simulator installs itself as the time source.
// Thread-locality keeps concurrent simulations from clobbering each
// other's clocks (and keeps installation race-free).
thread_local std::function<SimTime()> g_timeSource;

// Serializes sink writes so worker log lines never interleave mid-line.
std::mutex g_sinkMutex;

const char* levelName(Level level) {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void setLevel(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void initFromEnvironment() {
  const char* env = std::getenv("MESH_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "trace") == 0) setLevel(Level::Trace);
  else if (std::strcmp(env, "debug") == 0) setLevel(Level::Debug);
  else if (std::strcmp(env, "info") == 0) setLevel(Level::Info);
  else if (std::strcmp(env, "warn") == 0) setLevel(Level::Warn);
  else if (std::strcmp(env, "error") == 0) setLevel(Level::Error);
  else if (std::strcmp(env, "off") == 0) setLevel(Level::Off);
}

void setTimeSource(std::function<SimTime()> source) { g_timeSource = std::move(source); }
void clearTimeSource() { g_timeSource = nullptr; }

bool enabled(Level lvl) {
  return static_cast<int>(lvl) >=
         static_cast<int>(g_level.load(std::memory_order_relaxed));
}

void vwrite(Level lvl, const char* component, const char* fmt, std::va_list args) {
  char msg[1024];
  std::vsnprintf(msg, sizeof msg, fmt, args);
  // Compose the full line first, then emit it with one buffered write
  // under the sink mutex: concurrent workers stay line-atomic.
  char line[1200];
  int len;
  if (g_timeSource) {
    len = std::snprintf(line, sizeof line, "[%s] %s %-10s %s\n",
                        g_timeSource().str().c_str(), levelName(lvl),
                        component, msg);
  } else {
    len = std::snprintf(line, sizeof line, "%s %-10s %s\n", levelName(lvl),
                        component, msg);
  }
  if (len < 0) return;
  const auto count = std::min(static_cast<std::size_t>(len), sizeof line - 1);
  std::lock_guard<std::mutex> lock{g_sinkMutex};
  std::fwrite(line, 1, count, stderr);
}

void write(Level lvl, const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vwrite(lvl, component, fmt, args);
  va_end(args);
}

}  // namespace mesh::log
