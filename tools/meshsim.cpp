// meshsim: run a multicast mesh scenario described by a config file.
//
//   $ meshsim scenario.ini [--repeat N] [--jobs N] [--jsonl FILE]
//             [--trace DIR] [--csv]
//
// Prints the run's headline numbers; with --repeat, runs N seeds
// (seed, seed+1, ...) and reports mean ± 95% CI. --csv emits one
// machine-readable row per run instead. --jobs shards the repeats across
// worker threads (results are bit-identical to --jobs 1); --jsonl appends
// one structured record per run to FILE; --trace writes one
// packet-lifecycle trace per run into DIR (see tools/meshtrace.cpp).
// Missing parent directories for --jsonl/--trace are created on demand.
//
// See src/mesh/harness/config_file.hpp for the file format, and
// tools/examples/*.ini for ready-made scenarios.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "mesh/common/stats.hpp"
#include "mesh/harness/config_file.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/runner/sweep.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario.ini> [--repeat N] [--jobs N] [--jsonl FILE]"
               " [--trace DIR] [--csv]\n"
               "  --repeat N   run N seeds (seed, seed+1, ...); N >= 1\n"
               "  --jobs N     worker threads (default 1; 0 = all hardware threads)\n"
               "  --jsonl F    append one JSON record per run to F\n"
               "  --trace D    write one packet-lifecycle trace per run into D\n"
               "  --csv        one machine-readable row per run\n"
               "see src/mesh/harness/config_file.hpp for the file format\n",
               argv0);
}

// Strict integer parse: whole string, base 10, no trailing garbage.
bool parseLong(const char* text, long minValue, long& out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < minValue) return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::harness;

  const char* path = nullptr;
  long repeat = 1;
  long jobs = 1;
  bool csv = false;
  std::string jsonlPath;
  std::string traceDir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat") == 0) {
      if (i + 1 >= argc || !parseLong(argv[++i], 1, repeat)) {
        std::fprintf(stderr, "--repeat needs a positive integer count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc || !parseLong(argv[++i], 0, jobs)) {
        std::fprintf(stderr, "--jobs needs a non-negative integer (0 = auto)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--jsonl") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::fprintf(stderr, "--jsonl needs a file path\n");
        return 2;
      }
      jsonlPath = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::fprintf(stderr, "--trace needs a directory path\n");
        return 2;
      }
      traceDir = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected positional argument: %s (scenario is %s)\n",
                   argv[i], path);
      usage(argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    usage(argv[0]);
    return 2;
  }

  const ConfigParseResult parsed = loadScenarioConfig(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, parsed.error.c_str());
    return 1;
  }

  // One protocol, `repeat` seeds: a 1-protocol comparison sweep. The
  // runner shards the seeds across workers and folds deterministically.
  BenchOptions options;
  options.topologies = static_cast<std::size_t>(repeat);
  options.baseSeed = parsed.config->seed;
  options.duration = SimTime::zero();  // keep the scenario's own duration
  options.verbose = false;
  options.jobs = static_cast<std::size_t>(jobs);
  options.traceDir = traceDir;

  std::unique_ptr<runner::JsonlResultSink> sink;
  if (!jsonlPath.empty()) {
    try {
      sink = std::make_unique<runner::JsonlResultSink>(jsonlPath);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  const runner::SweepReport report = runner::runComparisonSweep(
      {parsed.config->protocol},
      [&parsed](std::uint64_t) { return *parsed.config; }, options,
      sink.get());

  if (csv) {
    std::printf("seed,protocol,pdr,throughput_kbps,delay_ms,probe_overhead_pct\n");
    for (const runner::RunRecord& record : report.records) {
      if (!record.ok) continue;
      std::printf("%llu,%s,%.6f,%.2f,%.3f,%.3f\n",
                  static_cast<unsigned long long>(record.seed),
                  record.protocolName.c_str(), record.results.pdr,
                  record.results.throughputBps / 1e3,
                  record.results.meanDelayS * 1e3,
                  record.results.probeOverheadPct);
    }
  } else {
    const ComparisonRow& row = report.rows.front();
    std::printf("%s — %zu nodes, protocol %s, %ld run%s\n", path,
                parsed.config->nodeCount, parsed.config->protocol.name().c_str(),
                repeat, repeat == 1 ? "" : "s");
    std::printf("  delivery    %.2f%% ± %.2f\n", row.pdr.mean() * 100.0,
                row.pdr.ci95HalfWidth() * 100.0);
    std::printf("  goodput     %.1f kbps\n", row.throughputBps.mean() / 1e3);
    std::printf("  mean delay  %.2f ms\n", row.delayS.mean() * 1e3);
    std::printf("  probe cost  %.2f%% of data bytes\n", row.overheadPct.mean());
    if (report.jobs > 1) {
      std::printf("  wall clock  %.1f s on %zu workers\n", report.wallSeconds,
                  report.jobs);
    }
  }

  for (const runner::RunRecord& record : report.records) {
    if (record.ok) continue;
    std::fprintf(stderr, "run seed=%llu FAILED: %s\n",
                 static_cast<unsigned long long>(record.seed),
                 record.error.c_str());
  }
  return report.failures == 0 ? 0 : 1;
}
