#include "mesh/harness/mesh_node.hpp"

#include <cmath>

namespace mesh::harness {
namespace {

metrics::ProbeConfig probeConfigFor(const metrics::Metric* metric) {
  return metric != nullptr ? metric->probeConfig() : metrics::ProbeConfig{};
}

SimTime effectiveProbeInterval(const metrics::Metric* metric, double rateScale) {
  const metrics::ProbeConfig config = probeConfigFor(metric);
  if (config.mode == metrics::ProbeMode::None) {
    return SimTime::seconds(std::int64_t{5});  // placeholder; table unused
  }
  return config.interval.scaled(1.0 / rateScale);
}

}  // namespace

MeshNode::MeshNode(sim::Simulator& simulator, phy::Channel& channel,
                   net::NodeId id, const MeshNodeConfig& config,
                   const metrics::Metric* metric, Rng rng,
                   trace::TraceCollector* trace)
    : simulator_{simulator},
      metric_{metric},
      trace_{trace},
      radio_{simulator, id, config.phy},
      mac_{simulator, radio_, config.mac, rng.fork("mac")},
      table_{effectiveProbeInterval(metric, config.probeRateScale),
             probeConfigFor(metric).lossWindow == 0
                 ? 10
                 : probeConfigFor(metric).lossWindow},
      sink_{simulator} {
  const auto send = [this](net::PacketPtr packet) {
    if (gatewayTap_) gatewayTap_(packet);
    mac_.send(std::move(packet), net::kBroadcastNode);
  };
  const metrics::NeighborTable* neighbors = metric != nullptr ? &table_ : nullptr;
  if (config.treeRouting) {
    protocol_ = std::make_unique<maodv::TreeMulticast>(
        simulator, id, config.tree, metric, neighbors, send, rng.fork("tree"));
  } else {
    protocol_ = std::make_unique<odmrp::Odmrp>(
        simulator, id, config.odmrp, metric, neighbors, send, rng.fork("odmrp"));
  }
  channel.attach(radio_);
  if (config.rateTable != nullptr) {
    switch (config.rateControl) {
      case rate::ControlKind::Fixed:
        rateController_ =
            std::make_unique<rate::FixedRateController>(*config.rateTable);
        break;
      case rate::ControlKind::Minstrel:
        rateController_ =
            std::make_unique<rate::MinstrelController>(*config.rateTable);
        break;
      case rate::ControlKind::Genie: {
        // The oracle reads mean SNR straight from the channel's propagation
        // model. Lazy (called at first rate decision, after every radio has
        // attached), and never on the per-frame path.
        phy::Channel* ch = &channel;
        const net::NodeId self = id;
        const auto snrDbTo = [ch, self](net::NodeId to) {
          const phy::Radio* rx = ch->findRadio(to);
          if (rx == nullptr) return -300.0;
          const double meanW = ch->linkModel().meanRxPowerW(self, to);
          if (meanW <= 0.0) return -300.0;
          return 10.0 * std::log10(meanW / rx->params().noiseFloorW);
        };
        const auto neighborSnrs = [ch, self, snrDbTo] {
          std::vector<std::pair<net::NodeId, double>> out;
          for (const phy::Radio* rx : ch->radios()) {
            if (rx->nodeId() == self) continue;
            const double meanW =
                ch->linkModel().meanRxPowerW(self, rx->nodeId());
            if (meanW < rx->params().rxThresholdW) continue;
            out.emplace_back(rx->nodeId(), snrDbTo(rx->nodeId()));
          }
          return out;
        };
        rateController_ = std::make_unique<rate::GenieController>(
            *config.rateTable, neighborSnrs, snrDbTo);
        break;
      }
    }
    rateAware_ = config.rateControl != rate::ControlKind::Fixed;
    mac_.setRateControl(rateController_.get(), config.rateTable);
  }
  probes_ = std::make_unique<metrics::ProbeService>(
      simulator, id, probeConfigFor(metric), config.probeRateScale, table_,
      [this](net::PacketPtr packet) {
        if (gatewayTap_) gatewayTap_(packet);
        mac_.send(std::move(packet), net::kBroadcastNode);
      },
      rng.fork("probes"), config.adaptiveProbing,
      [this] { return radio_.busyTime(); });
  // Only adaptive controllers ride the probe stream; Fixed stamps nothing,
  // which keeps fixed-mode probe bytes identical to the legacy format.
  if (rateController_ != nullptr && rateAware_) {
    probes_->setRateController(rateController_.get());
  }
  mac_.setReceiveCallback(
      [this](const net::PacketPtr& packet, net::NodeId from) {
        dispatch(packet, from);
      });
  protocol_->setDeliverCallback(
      [this](net::GroupId group, net::NodeId source, std::uint32_t seq,
             const net::PacketPtr& packet, std::span<const std::uint8_t> payload) {
        sink_.onDeliver(group, source, seq, packet, payload);
      });
  if (trace_ != nullptr) {
    radio_.setTrace(trace_);
    mac_.setTrace(trace_);
    protocol_->setTrace(trace_);
    probes_->setTrace(trace_);
    sink_.setTrace(trace_, id);
  }
}

void MeshNode::start() { probes_->start(); }

void MeshNode::joinGroup(net::GroupId group) { protocol_->joinGroup(group); }

void MeshNode::addCbrSource(const app::CbrConfig& config) {
  MESH_REQUIRE(cbr_ == nullptr);  // one CBR flow per node, like the paper
  cbr_ = std::make_unique<app::CbrSource>(simulator_, *protocol_, config,
                                          Rng{radio_.nodeId()}.fork("cbr"));
  cbr_->start();
}

void MeshNode::dispatch(const net::PacketPtr& packet, net::NodeId from) {
  switch (packet->kind()) {
    case net::PacketKind::Probe:
      if (probeBlackhole_) {
        ++bytes_.probesBlackholed;
        if (trace_ != nullptr) {
          trace_->drop(simulator_.now(), id(), packet.get(), packet->kind(),
                       static_cast<std::uint32_t>(packet->sizeBytes()),
                       trace::DropReason::FaultProbeBlackhole);
        }
        break;
      }
      bytes_.probeBytesReceived += packet->sizeBytes();
      if (trace_ != nullptr) {
        trace_->probeRx(simulator_.now(), id(), *packet);
      }
      probes_->onPacket(packet, simulator_.now());
      break;
    case net::PacketKind::Control:
      bytes_.controlBytesReceived += packet->sizeBytes();
      if (trace_ != nullptr) trace_->rxOk(simulator_.now(), id(), *packet);
      protocol_->onPacket(packet, from);
      break;
    case net::PacketKind::Data:
      bytes_.dataBytesReceived += packet->sizeBytes();
      if (trace_ != nullptr) trace_->rxOk(simulator_.now(), id(), *packet);
      protocol_->onPacket(packet, from);
      break;
    case net::PacketKind::MacControl:
      break;  // never reaches the dispatch layer
  }
}

void MeshNode::registerCounters(trace::CounterRegistry& registry) const {
  // One taxonomy shared by every protocol/metric variant: the registry sums
  // each name across all registered nodes, so per-run totals come out of a
  // single snapshot() regardless of which protocol produced them.
  const phy::RadioStats& phy = radio_.stats();
  registry.add("phy.frames_sent", &phy.framesSent);
  registry.add("phy.frames_delivered", &phy.framesDelivered);
  registry.add("phy.frames_corrupted", &phy.framesCorrupted);
  registry.add("phy.frames_below_threshold", &phy.framesBelowThreshold);
  registry.add("phy.frames_missed_busy", &phy.framesMissedBusy);
  registry.add("phy.bytes_sent", &phy.bytesSent);
  registry.add("phy.bytes_delivered", &phy.bytesDelivered);
  // Registered only on rate-aware runs so fixed-mode counter exports stay
  // byte-identical to the pre-rate simulator.
  if (rateAware_) {
    registry.add("phy.frames_rate_corrupted", &phy.framesRateCorrupted);
  }

  const mac::MacStats& mac = mac_.stats();
  registry.add("mac.enqueued", &mac.enqueued);
  registry.add("mac.queue_tail_drops", &mac.queueDrops);
  registry.add("mac.queue_tail_drops.data", &mac.queueDropsData);
  registry.add("mac.queue_tail_drops.probe", &mac.queueDropsProbe);
  registry.add("mac.queue_tail_drops.control", &mac.queueDropsControl);
  registry.add("mac.broadcast_sent", &mac.broadcastSent);
  registry.add("mac.unicast_sent", &mac.unicastSent);
  registry.add("mac.retries", &mac.retries);
  registry.add("mac.retry_drops", &mac.retryDrops);
  registry.add("mac.cts_timeouts", &mac.ctsTimeouts);
  registry.add("mac.ack_timeouts", &mac.ackTimeouts);
  registry.add("mac.delivered", &mac.delivered);
  registry.add("mac.dup_suppressed", &mac.dupSuppressed);

  const net::ProtocolStats& route = protocol_->stats();
  registry.add("route.queries_originated", &route.queriesOriginated);
  registry.add("route.queries_forwarded", &route.queriesForwarded);
  registry.add("route.duplicate_queries_forwarded",
               &route.duplicateQueriesForwarded);
  registry.add("route.queries_dropped", &route.queriesDropped);
  registry.add("route.replies_originated", &route.repliesOriginated);
  registry.add("route.replies_forwarded", &route.repliesForwarded);
  registry.add("route.route_established", &route.routeEstablished);
  registry.add("route.data_originated", &route.dataOriginated);
  registry.add("route.data_forwarded", &route.dataForwarded);
  registry.add("route.data_delivered", &route.dataDelivered);
  registry.add("route.data_duplicates", &route.dataDuplicates);
  registry.add("route.control_bytes_sent", &route.controlBytesSent);
  registry.add("route.data_bytes_sent", &route.dataBytesSent);

  const metrics::ProbeServiceStats& probe = probes_->stats();
  registry.add("probe.sent", &probe.probesSent);
  registry.add("probe.bytes_sent", &probe.probeBytesSent);
  registry.add("probe.received", &probe.probesReceived);
  registry.add("probe.bytes_received", &probe.probeBytesReceived);

  registry.add("app.probes_blackholed", &bytes_.probesBlackholed);
  registry.add("app.rx_bytes.probe", &bytes_.probeBytesReceived);
  registry.add("app.rx_bytes.control", &bytes_.controlBytesReceived);
  registry.add("app.rx_bytes.data", &bytes_.dataBytesReceived);
  registry.add("app.packets_delivered", sink_.packetsReceivedSlot());
  registry.add("app.payload_bytes_delivered", sink_.payloadBytesReceivedSlot());
}

}  // namespace mesh::harness
