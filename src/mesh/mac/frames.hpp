#pragma once
// 802.11 MAC frame wire format.
//
// Frames are serialized to bytes whose *lengths* match the real standard
// (data header 24 B + FCS 4 B, RTS 20 B, CTS/ACK 14 B) so that airtime —
// and therefore contention and overhead percentages — is accurate. Field
// layout inside the header is our own compact encoding padded to the
// standard length; nothing parses the padding.

#include <cstdint>
#include <optional>
#include <vector>

#include "mesh/net/addr.hpp"
#include "mesh/net/buffer.hpp"
#include "mesh/net/packet.hpp"

namespace mesh::mac {

enum class FrameType : std::uint8_t { Data = 0, Rts = 1, Cts = 2, Ack = 3 };

const char* toString(FrameType type);

inline constexpr std::size_t kDataHeaderBytes = 28;  // 24 hdr + 4 FCS
inline constexpr std::size_t kRtsBytes = 20;
inline constexpr std::size_t kCtsBytes = 14;
inline constexpr std::size_t kAckBytes = 14;

struct FrameHeader {
  FrameType type{FrameType::Data};
  bool retry{false};
  // Remaining medium reservation after this frame, in microseconds (the
  // NAV field). Saturates at u16 like the real standard.
  std::uint16_t durationUs{0};
  net::NodeId dst{net::kBroadcastNode};
  net::NodeId src{net::kInvalidNode};
  std::uint16_t seq{0};

  bool isBroadcast() const { return dst == net::kBroadcastNode; }
};

// Serialized MAC frame = header bytes (padded to standard length) followed
// by the payload bytes (empty for control frames).
struct Frame {
  FrameHeader header;
  net::PacketPtr payload;  // null for RTS/CTS/ACK

  // Total on-air MAC size in bytes.
  std::size_t sizeBytes() const;

  // Writes the padded on-air header (everything except the payload bytes)
  // into `out` — which must hold at least headerBytes(type) — and returns
  // that length. The hot path: the MAC serializes into a stack buffer and
  // the payload rides in the frame as a pooled pointer, so no vector is
  // ever built per transmission.
  std::size_t serializeHeader(std::span<std::uint8_t> out) const;
  std::vector<std::uint8_t> serialize() const;
  // Parses header + recovers the payload span. Returns nullopt on a
  // malformed buffer (too short / unknown type).
  static std::optional<FrameHeader> parseHeader(
      std::span<const std::uint8_t> bytes);
  static std::size_t headerBytes(FrameType type);
};

std::size_t dataFrameBytes(std::size_t payloadBytes);

}  // namespace mesh::mac
