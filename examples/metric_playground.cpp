// Metric playground: compare all routing metrics on paths you type in.
//
//   $ ./metric_playground 0.8 0.8 0.8 -- 0.9 0.4
//
// Each argument is a link's forward delivery ratio df in (0, 1]; "--"
// separates two candidate paths. Prints every metric's path cost for both
// paths and which path each metric selects. With no arguments, replays
// the paper's Figure 1 and Figure 3 examples.
//
// For the delay-based metrics (PP, ETT) the playground derives a
// plausible measurement from df: a pair-delay EWMA that has absorbed the
// 20% penalties a link with that loss rate would accrue in steady state,
// and a 2 Mbps-channel bandwidth estimate.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "mesh/metrics/metric.hpp"

namespace {

using mesh::metrics::LinkMeasurement;
using mesh::metrics::Metric;
using mesh::metrics::MetricKind;

LinkMeasurement measurementFor(double df) {
  LinkMeasurement m;
  m.df = df;
  // Steady-state PP delay on a link losing (1-df) of its probes: the base
  // pair dispersion (~5 ms at 2 Mbps) times the equilibrium of the 20%
  // penalty / 10% EWMA-pull dynamics (see metrics/neighbor_table.hpp).
  const double loss = 1.0 - df;
  const double penaltyRatePerPair = 1.0 - df * df;   // either probe lost
  const double completeRate = df * df;
  const double base = 0.005;
  if (completeRate > 1e-6) {
    m.hasDelay = true;
    m.delayS = base * std::exp(penaltyRatePerPair * std::log(1.2) /
                               (0.1 * completeRate));
  } else {
    m.hasDelay = true;
    m.delayS = 1e6;  // effectively dead
  }
  m.hasBandwidth = true;
  m.bandwidthBps = 1.6e6;  // idle-channel packet-pair estimate at 2 Mbps
  (void)loss;
  return m;
}

double pathCost(const Metric& metric, const std::vector<double>& dfs) {
  double cost = metric.initialPathCost();
  for (const double df : dfs) {
    cost = metric.accumulate(cost, metric.linkCost(measurementFor(df)));
  }
  return cost;
}

void comparePaths(const std::vector<double>& a, const std::vector<double>& b) {
  auto show = [](const std::vector<double>& p) {
    std::printf("[");
    for (std::size_t i = 0; i < p.size(); ++i) {
      std::printf("%s%.3f", i ? " " : "", p[i]);
    }
    std::printf("]");
  };
  std::printf("path A = ");
  show(a);
  std::printf("   path B = ");
  show(b);
  std::printf("\n\n%-6s  %14s  %14s  %s\n", "metric", "cost(A)", "cost(B)",
              "choice");
  for (const MetricKind kind :
       {MetricKind::Hop, MetricKind::Etx, MetricKind::Ett, MetricKind::Pp,
        MetricKind::Metx, MetricKind::Spp}) {
    const auto metric = mesh::metrics::makeMetric(kind);
    const double ca = pathCost(*metric, a);
    const double cb = pathCost(*metric, b);
    const char* choice = metric->better(ca, cb)   ? "A"
                         : metric->better(cb, ca) ? "B"
                                                  : "tie";
    std::printf("%-6s  %14.6g  %14.6g  %s%s\n", metric->name(), ca, cb, choice,
                kind == MetricKind::Spp ? "   (higher is better)" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> a, b;
  std::vector<double>* current = &a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      current = &b;
      continue;
    }
    const double df = std::atof(argv[i]);
    if (df <= 0.0 || df > 1.0) {
      std::fprintf(stderr, "df values must be in (0, 1]: got '%s'\n", argv[i]);
      return 1;
    }
    current->push_back(df);
  }

  if (!a.empty() && !b.empty()) {
    comparePaths(a, b);
    return 0;
  }

  std::printf("no paths given — replaying the paper's examples\n\n");
  std::printf("=== Figure 1: A-C-D {1, 1/3} vs A-B-D {0.25, 1} ===\n");
  comparePaths({1.0, 1.0 / 3.0}, {0.25, 1.0});
  std::printf("\n=== Figure 3: A-B-C-D {0.8 x3} vs A-E-D {0.9, 0.4} ===\n");
  comparePaths({0.8, 0.8, 0.8}, {0.9, 0.4});
  std::printf("\nusage: ./metric_playground <df...> -- <df...>\n");
  return 0;
}
