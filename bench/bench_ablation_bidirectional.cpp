// Ablation (Section 2.1): why multicast metrics must ignore the reverse
// link direction.
//
// Topology: source 0 -> member 3 with two 2-hop detours.
//   path A (via 1): forward-perfect links whose *reverse* direction drops
//                   75% — useless for unicast, ideal for broadcast;
//   path B (via 2): symmetric links with df 0.7 each.
//
// Forward-only ETX ranks A (cost 2.0) over B (cost ~2.9) and delivers
// ~100%. Unicast-style bidirectional ETX (BiETX = 1/(df·dr), learned via
// De Couto neighbor reports) ranks A at cost 8 and routes over B — losing
// a third of the traffic on a network that could deliver everything.
// Exactly the distortion Section 2.1 warns about.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "mesh/phy/static_link_model.hpp"

namespace {

mesh::harness::ScenarioConfig ablationScenario(std::uint64_t seed) {
  using namespace mesh;
  harness::ScenarioConfig config;
  config.nodeCount = 4;
  config.seed = seed;
  config.duration = SimTime::seconds(std::int64_t{300});
  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 20.0;
  config.traffic.start = SimTime::seconds(std::int64_t{60});
  config.traffic.stop = SimTime::seconds(std::int64_t{300});
  config.groups = {harness::GroupSpec{1, {0}, {3}}};
  // JOIN REPLIES cross the *reverse* direction, so path A's bad reverse
  // links also slow route establishment — a control-plane effect that
  // would confound the data-plane comparison this ablation is about. A
  // long FG lifetime lets a route survive several lost replies, isolating
  // the metric's path choice.
  config.node.odmrp.fgTimeout = SimTime::seconds(std::int64_t{30});
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<mesh::phy::StaticLinkModel>(4);
    const double kPower = 1e-8;
    // Path A via node 1: perfect forward, terrible reverse.
    model->setSymmetric(0, 1, kPower);
    model->setSymmetric(1, 3, kPower);
    model->setLossRate(1, 0, 0.75);
    model->setLossRate(3, 1, 0.75);
    // Path B via node 2: symmetric 30% loss.
    model->setSymmetric(0, 2, kPower);
    model->setSymmetric(2, 3, kPower);
    model->setSymmetricLossRate(0, 2, 0.3);
    model->setSymmetricLossRate(2, 3, 0.3);
    // Relays hear each other (plain CSMA, no hidden terminals).
    model->setSymmetric(1, 2, kPower);
    return model;
  };
  return config;
}

}  // namespace

int main() {
  using namespace mesh;
  using namespace mesh::bench;

  std::printf("Section 2.1 ablation — forward-only vs bidirectional ETX\n");
  std::printf("path A: forward-perfect links, 75%% reverse loss\n");
  std::printf("path B: symmetric links, 30%% loss each direction\n\n");

  std::printf("%-8s  %8s  %10s  %s\n", "metric", "PDR", "overhead%", "route taken (data share via node 1 / node 2)");
  for (const auto kind : {metrics::MetricKind::Etx, metrics::MetricKind::BiEtx}) {
    OnlineStats pdr;
    double via1 = 0.0, via2 = 0.0, overhead = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      harness::ScenarioConfig config = ablationScenario(seed);
      config.protocol = harness::ProtocolSpec::with(kind);
      harness::Simulation sim{std::move(config)};
      const auto results = sim.run();
      pdr.add(results.pdr);
      overhead += results.probeOverheadPct / 5.0;
      const auto edges = sim.dataEdgeCounts();
      const auto at = [&](net::LinkKey k) -> double {
        const auto it = edges.find(k);
        return it == edges.end() ? 0.0 : static_cast<double>(it->second);
      };
      const double total = at({1, 3}) + at({2, 3});
      if (total > 0) {
        via1 += at({1, 3}) / total / 5.0;
        via2 += at({2, 3}) / total / 5.0;
      }
    }
    std::printf("%-8s  %8.4f  %10.2f  %4.0f%% / %.0f%%\n",
                metrics::toString(kind), pdr.mean(), overhead, via1 * 100.0,
                via2 * 100.0);
  }
  std::printf(
      "\nreading: forward-only ETX keeps the broadcast traffic on the\n"
      "forward-perfect path; BiETX is scared off by reverse loss that\n"
      "broadcast never uses (no ACKs), and pays with real packet loss.\n");
  return 0;
}
