#pragma once
// Pluggable per-node rate control.
//
// A RateController picks the TxVector for every frame a node originates:
// broadcast data, metric probes (with a lookaround hook so samplers can
// spend a fraction of probes exploring other rates), and unicast attempts
// (with a retry chain). Three implementations:
//
//   FixedRate    — always returns the legacy code 0: airtime and channel
//                  behavior are bit-identical to the pre-rate simulator.
//                  This is the determinism anchor and the default.
//   Minstrel     — samples every rate via lookaround probes, learns an
//                  EWMA success probability per (neighbor, rate) from
//                  probe-carried feedback, and broadcasts at the rate
//                  maximizing bitrate × coverage-quantile success. Unicast
//                  uses the classic max-throughput retry chain.
//   Genie        — an oracle that reads mean link SNR straight from the
//                  channel's propagation model and picks the highest rate
//                  whose expected PER clears a threshold: the upper bound
//                  a real sampler is judged against.
//
// Every controller is deterministic: no controller draws randomness, so
// adding one perturbs no existing RNG stream.
//
// Feedback plumbing (Minstrel): probes are stamped with (tx rate code,
// per-rate sequence number). Receivers maintain a short per-(neighbor,
// rate) delivery window from the sequence gaps and echo the measured
// delivery fractions inside their own probes; the original sender folds
// entries about itself into its EWMA. All of it rides the existing probe
// stream — no new packet type.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mesh/common/simtime.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/rate/rate_table.hpp"
#include "mesh/rate/tx_vector.hpp"

namespace mesh::rate {

enum class ControlKind : std::uint8_t { Fixed = 0, Minstrel = 1, Genie = 2 };

const char* toString(ControlKind kind);
bool controlKindFromString(const char* text, ControlKind& out);

// One probe-carried feedback datum: "I see `neighbor`'s frames at rate
// `code` with delivery fraction dfQ/255".
struct RateFeedbackEntry {
  net::NodeId neighbor{0};
  std::uint8_t code{0};
  std::uint8_t dfQ{0};
};

class RateController {
 public:
  explicit RateController(const RateTable& table);
  virtual ~RateController() = default;

  const RateTable& rates() const { return table_; }
  virtual ControlKind kind() const = 0;

  // Rate for broadcast data frames.
  virtual TxVector dataVector() = 0;
  // Rate for unicast attempt number `attempt` (0 = first transmission).
  virtual TxVector unicastVector(net::NodeId dst, int attempt) = 0;
  // Rate for the next metric probe (lookaround hook); default = data rate.
  virtual TxVector probeVector() { return dataVector(); }

  // Stamps an outgoing probe at `code`: returns this node's running count
  // of probes transmitted at that rate (1-based). Receivers detect losses
  // from gaps in this per-rate sequence.
  std::uint32_t noteProbeSent(std::uint8_t code);

  // Receiver side: a probe from `from`, transmitted at `code` with
  // per-rate sequence `seq`, arrived.
  virtual void onProbeHeard(net::NodeId from, std::uint8_t code,
                            std::uint32_t seq) {
    (void)from; (void)code; (void)seq;
  }
  // Sender side: `from` reports seeing our frames at `code` with delivery
  // fraction `df`.
  virtual void onRateFeedback(net::NodeId from, std::uint8_t code,
                              double df) {
    (void)from; (void)code; (void)df;
  }
  // Fills up to `maxEntries` feedback entries about our neighbors for the
  // next outgoing probe. Successive calls rotate through the full state so
  // small probes eventually cover every (neighbor, rate).
  virtual void buildRateReport(std::vector<RateFeedbackEntry>& out,
                               std::size_t maxEntries) {
    (void)out; (void)maxEntries;
  }

 protected:
  const RateTable& table_;

 private:
  std::vector<std::uint32_t> probeSeq_;  // indexed by code, [0] unused
};

// The determinism anchor: everything at legacy code 0.
class FixedRateController final : public RateController {
 public:
  explicit FixedRateController(const RateTable& table)
      : RateController{table} {}
  ControlKind kind() const override { return ControlKind::Fixed; }
  TxVector dataVector() override { return {}; }
  TxVector unicastVector(net::NodeId, int) override { return {}; }
  TxVector probeVector() override { return {}; }
};

struct MinstrelConfig {
  double ewmaWeight{0.75};      // weight of history on feedback updates
  int lookaroundPeriod{4};      // every Nth probe samples a non-data rate
  double coverageQuantile{0.25};// broadcast covers this neighbor quantile
  double minProb{0.10};         // rates below this success prob are skipped
};

class MinstrelController final : public RateController {
 public:
  explicit MinstrelController(const RateTable& table,
                              MinstrelConfig config = {});

  ControlKind kind() const override { return ControlKind::Minstrel; }
  TxVector dataVector() override;
  TxVector unicastVector(net::NodeId dst, int attempt) override;
  TxVector probeVector() override;

  void onProbeHeard(net::NodeId from, std::uint8_t code,
                    std::uint32_t seq) override;
  void onRateFeedback(net::NodeId from, std::uint8_t code,
                      double df) override;
  void buildRateReport(std::vector<RateFeedbackEntry>& out,
                       std::size_t maxEntries) override;

  // Observability: learned EWMA success prob for (neighbor, code);
  // negative when no feedback has arrived yet.
  double successProb(net::NodeId neighbor, std::uint8_t code) const;

 private:
  // 16-deep shift-register delivery window keyed by per-rate seq gaps.
  struct RxWindow {
    std::uint32_t lastSeq{0};
    std::uint16_t history{0};
    std::uint8_t filled{0};
    bool started{false};
    double df() const;
    void onProbe(std::uint32_t seq);
  };

  void recompute();

  MinstrelConfig config_;
  // Receiver side: delivery window per (neighbor, rate code).
  std::map<std::pair<net::NodeId, std::uint8_t>, RxWindow> rxWindows_;
  // Sender side: EWMA success prob per neighbor, indexed by code
  // (entries < 0 mean "no feedback yet").
  std::map<net::NodeId, std::vector<double>> txProb_;
  std::uint32_t probeCount_{0};
  std::uint8_t lookaroundNext_{1};
  std::size_t reportCursor_{0};
  bool dirty_{true};
  TxVector cached_{};
};

struct GenieConfig {
  double perThreshold{0.10};    // highest rate with PER <= this wins
  std::size_t nominalBytes{540};// 512 B CBR payload + 28 B MAC header
  double coverageQuantile{0.25};// broadcast protects this neighbor quantile
};

class GenieController final : public RateController {
 public:
  // `neighborSnrsDb` returns (node, mean SNR dB) for every in-range
  // neighbor; `snrDbTo` the mean SNR toward one node. Both read the
  // channel's propagation model (the oracle part).
  using NeighborSnrFn =
      std::function<std::vector<std::pair<net::NodeId, double>>()>;
  using SnrToFn = std::function<double(net::NodeId)>;

  GenieController(const RateTable& table, NeighborSnrFn neighborSnrsDb,
                  SnrToFn snrDbTo, GenieConfig config = {});

  ControlKind kind() const override { return ControlKind::Genie; }
  TxVector dataVector() override;
  TxVector unicastVector(net::NodeId dst, int attempt) override;

 private:
  std::uint8_t pickForSnr(double snrDb) const;

  GenieConfig config_;
  NeighborSnrFn neighborSnrsDb_;
  SnrToFn snrDbTo_;
  // Static topologies: the oracle answer never changes, cache it.
  bool haveBroadcast_{false};
  TxVector broadcast_{};
  std::map<net::NodeId, std::uint8_t> unicast_;
};

}  // namespace mesh::rate
