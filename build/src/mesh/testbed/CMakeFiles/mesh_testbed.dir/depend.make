# Empty dependencies file for mesh_testbed.
# This may be replaced when dependencies are built.
