// ODMRP protocol tests: message formats, duplicate caches, and end-to-end
// behaviour of the original and metric-enhanced variants on controlled
// topologies (StaticLinkModel rigs through the full radio/MAC stack).

#include <gtest/gtest.h>

#include <memory>

#include "mesh/harness/scenario.hpp"
#include "mesh/odmrp/dup_cache.hpp"
#include "mesh/odmrp/messages.hpp"
#include "mesh/phy/static_link_model.hpp"

namespace mesh::odmrp {
namespace {

using namespace mesh::time_literals;
using harness::GroupSpec;
using harness::ProtocolSpec;
using harness::ScenarioConfig;
using harness::Simulation;

constexpr double kGoodPower = 1e-8;

// --------------------------------------------------------------- messages

TEST(OdmrpMessages, JoinQueryRoundTrip) {
  JoinQuery q;
  q.group = 3;
  q.source = 17;
  q.seq = 123456;
  q.hopCount = 4;
  q.metricKind = static_cast<std::uint8_t>(metrics::MetricKind::Spp);
  q.prevHop = 9;
  q.pathCost = 0.123456789;
  const auto bytes = q.serialize();
  EXPECT_EQ(bytes.size(), kJoinQueryBytes);
  EXPECT_EQ(peekType(bytes), MessageType::JoinQuery);
  const auto parsed = JoinQuery::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->group, 3);
  EXPECT_EQ(parsed->source, 17);
  EXPECT_EQ(parsed->seq, 123456u);
  EXPECT_EQ(parsed->hopCount, 4);
  EXPECT_EQ(parsed->prevHop, 9);
  EXPECT_DOUBLE_EQ(parsed->pathCost, 0.123456789);
}

TEST(OdmrpMessages, JoinReplyRoundTrip) {
  JoinReply r;
  r.group = 2;
  r.sender = 5;
  r.seq = 42;
  r.entries = {{10, 11}, {12, 13}, {14, 15}};
  const auto bytes = r.serialize();
  EXPECT_EQ(bytes.size(), kJoinReplyBaseBytes + 3 * kJoinReplyEntryBytes);
  const auto parsed = JoinReply::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sender, 5);
  ASSERT_EQ(parsed->entries.size(), 3u);
  EXPECT_EQ(parsed->entries[1].source, 12);
  EXPECT_EQ(parsed->entries[1].nextHop, 13);
}

TEST(OdmrpMessages, DataHeaderRoundTripWithPayload) {
  DataHeader h;
  h.group = 7;
  h.source = 1;
  h.seq = 99;
  const std::vector<std::uint8_t> payload(512, 0xEE);
  const auto bytes = h.serializeWith(payload);
  EXPECT_EQ(bytes.size(), kDataHeaderBytes + 512);
  std::span<const std::uint8_t> parsedPayload;
  const auto parsed = DataHeader::parse(bytes, &parsedPayload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->group, 7);
  EXPECT_EQ(parsed->seq, 99u);
  EXPECT_EQ(parsedPayload.size(), 512u);
  EXPECT_EQ(parsedPayload[0], 0xEE);
}

TEST(OdmrpMessages, PeekRejectsGarbage) {
  EXPECT_FALSE(peekType({}).has_value());
  std::vector<std::uint8_t> bad{0x77};
  EXPECT_FALSE(peekType(bad).has_value());
}

// --------------------------------------------------------------- DupCache

TEST(SeqWindowTest, DetectsDuplicatesAndAccepts) {
  SeqWindow w;
  EXPECT_TRUE(w.checkAndInsert(0));
  EXPECT_FALSE(w.checkAndInsert(0));
  EXPECT_TRUE(w.checkAndInsert(1));
  EXPECT_TRUE(w.checkAndInsert(5));
  EXPECT_FALSE(w.checkAndInsert(5));
  EXPECT_TRUE(w.checkAndInsert(3));  // out of order but new
  EXPECT_FALSE(w.checkAndInsert(3));
  EXPECT_TRUE(w.seen(1));
  EXPECT_FALSE(w.seen(4));
}

TEST(SeqWindowTest, VeryOldSeqTreatedAsDuplicate) {
  SeqWindow w;
  EXPECT_TRUE(w.checkAndInsert(100));
  EXPECT_FALSE(w.checkAndInsert(10));  // outside the 64-wide window
  EXPECT_TRUE(w.seen(10));
}

TEST(DupCacheTest, StreamsAreIndependent) {
  DupCache cache;
  EXPECT_TRUE(cache.checkAndInsert(1, 2, 0));
  EXPECT_TRUE(cache.checkAndInsert(1, 3, 0));  // different source
  EXPECT_TRUE(cache.checkAndInsert(2, 2, 0));  // different group
  EXPECT_FALSE(cache.checkAndInsert(1, 2, 0));
}

// ----------------------------------------------------------- end-to-end

// Builds a Simulation over an explicit topology. `edges` are symmetric
// good links; `lossy` are symmetric links with the given loss rate.
struct TopoSpec {
  std::size_t nodes;
  std::vector<std::pair<net::NodeId, net::NodeId>> edges;
  std::vector<std::tuple<net::NodeId, net::NodeId, double>> lossy;
};

ScenarioConfig staticScenario(const TopoSpec& topo, ProtocolSpec protocol,
                              std::uint64_t seed = 7) {
  ScenarioConfig config;
  config.nodeCount = topo.nodes;
  config.protocol = protocol;
  config.seed = seed;
  config.duration = 120_s;
  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 20.0;
  config.traffic.start = 40_s;  // let probes warm up
  config.traffic.stop = 110_s;
  config.linkModelFactory = [topo](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(topo.nodes);
    for (const auto& [a, b] : topo.edges) model->setSymmetric(a, b, kGoodPower);
    for (const auto& [a, b, rate] : topo.lossy) {
      model->setSymmetric(a, b, kGoodPower);
      model->setSymmetricLossRate(a, b, rate);
    }
    return model;
  };
  return config;
}

TEST(OdmrpEndToEnd, TwoNodeDelivery) {
  TopoSpec topo{2, {{0, 1}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {1}}};
  Simulation sim{config};
  const auto results = sim.run();
  EXPECT_GT(results.packetsSent, 1000u);
  EXPECT_GT(results.pdr, 0.99);
  EXPECT_GT(results.throughputBps, 0.0);
  EXPECT_LT(results.meanDelayS, 0.01);
}

TEST(OdmrpEndToEnd, ChainReliesOnForwardingGroup) {
  // 0 - 1 - 2: node 1 must become a forwarder for data to reach node 2.
  TopoSpec topo{3, {{0, 1}, {1, 2}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {2}}};
  Simulation sim{config};
  const auto results = sim.run();
  EXPECT_GT(results.pdr, 0.99);
  EXPECT_TRUE(sim.node(1).odmrp().isForwarder(1));
  EXPECT_GT(sim.node(1).odmrp().stats().dataForwarded, 1000u);
  // The member's accepted data came over the 1 -> 2 edge.
  const auto edges = sim.dataEdgeCounts();
  EXPECT_TRUE(edges.contains(net::LinkKey{1, 2}));
}

TEST(OdmrpEndToEnd, NonForwarderStaysQuiet) {
  // Node 3 hangs off the chain but is neither member nor on any path.
  TopoSpec topo{4, {{0, 1}, {1, 2}, {0, 3}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {2}}};
  Simulation sim{config};
  sim.run();
  EXPECT_FALSE(sim.node(3).odmrp().isForwarder(1));
  EXPECT_EQ(sim.node(3).odmrp().stats().dataForwarded, 0u);
  // It still participated in the query flood (ODMRP floods everywhere).
  EXPECT_GT(sim.node(3).odmrp().stats().queriesForwarded, 0u);
}

TEST(OdmrpEndToEnd, FiveHopChain) {
  TopoSpec topo{6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {5}}};
  Simulation sim{config};
  const auto results = sim.run();
  EXPECT_GT(results.pdr, 0.98);
  for (net::NodeId n = 1; n <= 4; ++n) {
    EXPECT_TRUE(sim.node(n).odmrp().isForwarder(1)) << "node " << n;
  }
}

TEST(OdmrpEndToEnd, MultipleReceiversShareForwarders) {
  //      2
  // 0 -- 1 <
  //      3
  TopoSpec topo{4, {{0, 1}, {1, 2}, {1, 3}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {2, 3}}};
  Simulation sim{config};
  const auto results = sim.run();
  EXPECT_GT(results.pdr, 0.99);
  // Both members delivered every packet; node 1 forwarded each once.
  EXPECT_EQ(sim.node(2).sink().packetsReceived(),
            sim.node(3).sink().packetsReceived());
}

TEST(OdmrpEndToEnd, GroupsAreIsolated) {
  TopoSpec topo{4, {{0, 1}, {1, 2}, {1, 3}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {2}}, GroupSpec{2, {3}, {0}}};
  Simulation sim{config};
  sim.run();
  // Node 3 is not a member of group 1 and must deliver nothing from it.
  EXPECT_EQ(sim.node(3).sink().packetsReceived(),
            sim.node(0).sink().packetsReceived() > 0
                ? sim.node(3).sink().packetsReceived()
                : 0u);
  EXPECT_GT(sim.node(2).sink().packetsReceived(), 1000u);
  EXPECT_GT(sim.node(0).sink().packetsReceived(), 1000u);
}

TEST(OdmrpEndToEnd, DuplicateSuppressionBoundsDeliveries) {
  // Diamond: 0 -> {1,2} -> 3. Both relays may forward; the member must
  // still deliver each packet exactly once.
  TopoSpec topo{4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 2}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {3}}};
  Simulation sim{config};
  const auto results = sim.run();
  EXPECT_LE(results.packetsDelivered, results.packetsSent);
  EXPECT_GT(results.pdr, 0.99);
}

TEST(OdmrpEndToEnd, MetricVariantAvoidsLossyShortcut) {
  // Source 0, member 2. Direct link 0-2 drops 60% of frames; the detour
  // 0-1-2 is clean. With the default 3-round FG timeout, ODMRP's own mesh
  // redundancy keeps both paths warm and masks the bad route choice (the
  // Section 4.3 effect), so this test pins the FG lifetime to one refresh
  // round: the protocol lives or dies by the path it actually selected.
  TopoSpec topo{3, {{0, 1}, {1, 2}}, {{0, 2, 0.6}}};

  ScenarioConfig original = staticScenario(topo, ProtocolSpec::original());
  original.groups = {GroupSpec{1, {0}, {2}}};
  original.node.odmrp.fgTimeout = 3_s;  // = queryInterval
  Simulation simOriginal{original};
  const auto resultsOriginal = simOriginal.run();

  ScenarioConfig spp =
      staticScenario(topo, ProtocolSpec::with(metrics::MetricKind::Spp));
  spp.groups = {GroupSpec{1, {0}, {2}}};
  spp.node.odmrp.fgTimeout = 3_s;
  Simulation simSpp{spp};
  const auto resultsSpp = simSpp.run();

  // Original: when the direct JOIN QUERY survives (~40% of rounds) the
  // one-hop lossy path is chosen and ~60% of that round's data dies.
  EXPECT_LT(resultsOriginal.pdr, 0.90);
  // SPP measures df(0->2) ~ 0.4 and pins the route through the relay.
  EXPECT_GT(resultsSpp.pdr, 0.93);
  EXPECT_GT(resultsSpp.pdr, resultsOriginal.pdr + 0.05);

  // The relay carries the traffic under SPP: most accepted packets arrive
  // at the member over the 1 -> 2 edge.
  EXPECT_TRUE(simSpp.node(1).odmrp().isForwarder(1));
  const auto sppEdges = simSpp.dataEdgeCounts();
  const auto at = [](const auto& m, net::LinkKey k) -> std::uint64_t {
    const auto it = m.find(k);
    return it == m.end() ? 0 : it->second;
  };
  EXPECT_GT(at(sppEdges, {1, 2}), at(sppEdges, {0, 2}));
}

TEST(OdmrpEndToEnd, AllMetricsDeliverOnCleanChain) {
  TopoSpec topo{3, {{0, 1}, {1, 2}}, {}};
  for (const metrics::MetricKind kind : metrics::kAllMetricKinds) {
    ScenarioConfig config = staticScenario(topo, ProtocolSpec::with(kind));
    config.groups = {GroupSpec{1, {0}, {2}}};
    Simulation sim{config};
    const auto results = sim.run();
    EXPECT_GT(results.pdr, 0.98) << metrics::toString(kind);
  }
}

TEST(OdmrpEndToEnd, ProbeTrafficOnlyForMetricVariants) {
  TopoSpec topo{2, {{0, 1}}, {}};
  ScenarioConfig original = staticScenario(topo, ProtocolSpec::original());
  original.groups = {GroupSpec{1, {0}, {1}}};
  Simulation simOriginal{original};
  const auto ro = simOriginal.run();
  EXPECT_EQ(ro.probeBytesReceived, 0u);
  EXPECT_DOUBLE_EQ(ro.probeOverheadPct, 0.0);

  ScenarioConfig etx = staticScenario(topo, ProtocolSpec::with(metrics::MetricKind::Etx));
  etx.groups = {GroupSpec{1, {0}, {1}}};
  Simulation simEtx{etx};
  const auto re = simEtx.run();
  EXPECT_GT(re.probeBytesReceived, 0u);
  EXPECT_GT(re.probeOverheadPct, 0.0);
  EXPECT_LT(re.probeOverheadPct, 5.0);
}

TEST(OdmrpEndToEnd, ForwardingFlagExpiresAfterSourceStops) {
  TopoSpec topo{3, {{0, 1}, {1, 2}}, {}};
  ScenarioConfig config = staticScenario(topo, ProtocolSpec::original());
  config.groups = {GroupSpec{1, {0}, {2}}};
  config.traffic.stop = 60_s;
  config.duration = 120_s;
  Simulation sim{config};
  // Stop the query refresh when traffic stops (the harness keeps sources
  // querying forever; emulate an on-demand shutdown).
  sim.simulator().schedule(60_s, [&] { sim.node(0).odmrp().stopSource(1); });
  sim.run();
  // FG timeout (9 s) has long expired by t = 120 s.
  EXPECT_FALSE(sim.node(1).odmrp().isForwarder(1));
}

TEST(OdmrpEndToEnd, DeterministicForSameSeed) {
  TopoSpec topo{4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {{0, 3, 0.4}}};
  auto runOnce = [&] {
    ScenarioConfig config =
        staticScenario(topo, ProtocolSpec::with(metrics::MetricKind::Spp), 99);
    config.groups = {GroupSpec{1, {0}, {3}}};
    Simulation sim{config};
    const auto r = sim.run();
    return std::make_tuple(r.packetsDelivered, r.probeBytesReceived,
                           r.eventsExecuted);
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(OdmrpEndToEnd, DifferentSeedsDiffer) {
  TopoSpec topo{3, {{0, 1}, {1, 2}}, {{0, 2, 0.5}}};
  auto runWithSeed = [&](std::uint64_t seed) {
    ScenarioConfig config =
        staticScenario(topo, ProtocolSpec::with(metrics::MetricKind::Etx), seed);
    config.groups = {GroupSpec{1, {0}, {2}}};
    Simulation sim{config};
    return sim.run().eventsExecuted;
  };
  EXPECT_NE(runWithSeed(1), runWithSeed(2));
}

}  // namespace
}  // namespace mesh::odmrp
