file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_testbed.dir/bench_fig2_testbed.cpp.o"
  "CMakeFiles/bench_fig2_testbed.dir/bench_fig2_testbed.cpp.o.d"
  "bench_fig2_testbed"
  "bench_fig2_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
