file(REMOVE_RECURSE
  "CMakeFiles/campus_webcast.dir/campus_webcast.cpp.o"
  "CMakeFiles/campus_webcast.dir/campus_webcast.cpp.o.d"
  "campus_webcast"
  "campus_webcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_webcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
