// Section 4.3 — multiple sources per group.
//
// ODMRP builds forwarding groups per *group*, not per source, so extra
// sources thicken the mesh; the added path redundancy compensates for the
// original ODMRP's poor path choices and shrinks the metrics' relative
// gain. Paper: with multiple sources the relative throughput gain drops
// by around 10-15% (e.g. a +18% gain becomes roughly +3..8%).
//
// This bench runs the simulation scenario with 1 source and with 3
// sources per group and prints the gains side by side.

#include "bench_common.hpp"

int main() {
  using namespace mesh;
  using namespace mesh::bench;

  const harness::BenchOptions options =
      harness::BenchOptions::fromEnvironment(kQuickTopologies, kQuickDurationS);

  // 3 sources/group at 20 pkt/s each would overload a 2 Mbps broadcast
  // channel (the paper notes the effective load is already ~7x the source
  // rate); the per-source rate is split so the offered load matches the
  // single-source columns and only the *mesh redundancy* changes.
  const auto single = harness::runProtocolComparison(
      harness::figure2Protocols(),
      [](std::uint64_t seed) { return simulationScenario(seed, 1); }, options);

  const auto multi = harness::runProtocolComparison(
      harness::figure2Protocols(),
      [](std::uint64_t seed) {
        harness::ScenarioConfig config = simulationScenario(seed, 3);
        config.traffic.packetsPerSecond = 20.0 / 3.0;
        return config;
      },
      options);

  harness::printNormalizedThroughput("1 source per group", single);
  harness::printNormalizedThroughput("3 sources per group", multi);

  std::printf("\nrelative gain shrinkage (gain_multi - gain_single, percentage points)\n");
  for (std::size_t i = 1; i < single.size(); ++i) {
    const double gainSingle =
        (single[i].pdr.mean() / single[0].pdr.mean() - 1.0) * 100.0;
    const double gainMulti =
        (multi[i].pdr.mean() / multi[0].pdr.mean() - 1.0) * 100.0;
    std::printf("  %-6s  %+5.1f%% -> %+5.1f%%   (%+.1f pp)\n",
                single[i].name.c_str(), gainSingle, gainMulti,
                gainMulti - gainSingle);
  }
  printPaperReference("Section 4.3",
                      "relative throughput gain reduced by ~10-15 percentage points");
  return 0;
}
