// Section 4.3 follow-through — tree-based multicast (MAODV-inspired).
//
// The paper argues that high-throughput metrics "continue to be effective
// in multicast protocols that are tree-based such as MAODV" even though
// ODMRP's mesh redundancy dilutes their gain. This bench runs the
// Section 4.1 scenario under both the ODMRP mesh and the TreeMulticast
// protocol, original vs SPP, and compares the relative gains.
//
// Expected shape: the tree's absolute throughput is below the mesh's (no
// redundancy), but its *relative* gain from the metric is larger.

#include "bench_common.hpp"

int main() {
  using namespace mesh;
  using namespace mesh::bench;

  const harness::BenchOptions options =
      harness::BenchOptions::fromEnvironment(kQuickTopologies, kQuickDurationS);

  const std::vector<harness::ProtocolSpec> protocols = {
      harness::ProtocolSpec::original(),
      harness::ProtocolSpec::with(metrics::MetricKind::Spp),
      harness::ProtocolSpec::treeOriginal(),
      harness::ProtocolSpec::tree(metrics::MetricKind::Spp),
  };

  const auto rows = harness::runProtocolComparison(
      protocols, [](std::uint64_t seed) { return simulationScenario(seed); },
      options);

  harness::printAbsolute("mesh (ODMRP) vs tree (MAODV-inspired), original vs SPP",
                         rows);

  const double meshGain = rows[1].pdr.mean() / rows[0].pdr.mean() - 1.0;
  const double treeGain = rows[3].pdr.mean() / rows[2].pdr.mean() - 1.0;
  std::printf("\nrelative SPP gain:  mesh %+.1f%%   tree %+.1f%%\n",
              meshGain * 100.0, treeGain * 100.0);
  std::printf("tree/mesh absolute throughput (original): %.2f\n",
              rows[2].pdr.mean() / rows[0].pdr.mean());
  printPaperReference(
      "Section 4.3",
      "metrics stay effective for tree-based protocols; mesh redundancy is what dilutes gains");
  return 0;
}
