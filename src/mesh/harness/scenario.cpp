#include "mesh/harness/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "mesh/channelplan/domain_scheduler.hpp"
#include "mesh/common/assert.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/phy/propagation.hpp"

namespace mesh::harness {

ScenarioConfig paperSimulationScenario() {
  ScenarioConfig config;
  config.nodeCount = 50;
  config.areaWidthM = 1000.0;
  config.areaHeightM = 1000.0;
  config.rayleighFading = true;
  config.duration = SimTime::seconds(std::int64_t{400});
  config.traffic.payloadBytes = 512;
  config.traffic.packetsPerSecond = 20.0;
  config.traffic.start = SimTime::seconds(std::int64_t{30});
  config.traffic.stop = SimTime::seconds(std::int64_t{400});
  return config;
}

ScenarioConfig scaledSimulationScenario(std::size_t nodeCount) {
  MESH_REQUIRE(nodeCount > 0);
  ScenarioConfig config = paperSimulationScenario();
  config.nodeCount = nodeCount;
  // Constant density (50 nodes per km²): area grows linearly with n.
  const double side =
      1000.0 * std::sqrt(static_cast<double>(nodeCount) / 50.0);
  config.areaWidthM = side;
  config.areaHeightM = side;
  // Rejection sampling is O(n²) per attempt with a vanishing acceptance
  // rate at scale; the grid generator is O(n) and connected by
  // construction at this (constant) density.
  config.placement = Placement::Grid;
  return config;
}

std::vector<GroupSpec> makeRandomGroups(std::size_t nodeCount,
                                        std::size_t groupCount,
                                        std::size_t membersPerGroup,
                                        std::size_t sourcesPerGroup, Rng& rng) {
  MESH_REQUIRE(groupCount * (membersPerGroup + sourcesPerGroup) <= nodeCount);
  std::vector<net::NodeId> ids(nodeCount);
  std::iota(ids.begin(), ids.end(), net::NodeId{0});
  // Fisher-Yates with our deterministic Rng.
  for (std::size_t i = nodeCount - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniformInt(std::uint64_t{i + 1}));
    std::swap(ids[i], ids[j]);
  }
  std::vector<GroupSpec> groups;
  std::size_t next = 0;
  for (std::size_t g = 0; g < groupCount; ++g) {
    GroupSpec spec;
    spec.group = static_cast<net::GroupId>(g + 1);
    for (std::size_t s = 0; s < sourcesPerGroup; ++s) spec.sources.push_back(ids[next++]);
    for (std::size_t m = 0; m < membersPerGroup; ++m) spec.members.push_back(ids[next++]);
    groups.push_back(std::move(spec));
  }
  return groups;
}

std::vector<GroupSpec> makeStripedGroups(std::size_t nodeCount,
                                         std::size_t channels,
                                         std::size_t groupsPerChannel,
                                         std::size_t membersPerGroup,
                                         std::size_t sourcesPerGroup,
                                         Rng& rng) {
  MESH_REQUIRE(channels >= 1);
  std::vector<GroupSpec> groups;
  for (std::size_t c = 0; c < channels; ++c) {
    // This residue class is exactly the node set of channel c under the
    // Static (id mod C) assignment; shuffle it independently per channel.
    std::vector<net::NodeId> ids;
    for (std::size_t i = c; i < nodeCount; i += channels) {
      ids.push_back(static_cast<net::NodeId>(i));
    }
    MESH_REQUIRE(groupsPerChannel * (membersPerGroup + sourcesPerGroup) <=
                 ids.size());
    for (std::size_t i = ids.size() - 1; i > 0; --i) {
      const auto j =
          static_cast<std::size_t>(rng.uniformInt(std::uint64_t{i + 1}));
      std::swap(ids[i], ids[j]);
    }
    std::size_t next = 0;
    for (std::size_t g = 0; g < groupsPerChannel; ++g) {
      GroupSpec spec;
      spec.group = static_cast<net::GroupId>(g * channels + c + 1);
      for (std::size_t s = 0; s < sourcesPerGroup; ++s) {
        spec.sources.push_back(ids[next++]);
      }
      for (std::size_t m = 0; m < membersPerGroup; ++m) {
        spec.members.push_back(ids[next++]);
      }
      groups.push_back(std::move(spec));
    }
  }
  return groups;
}

bool snapshotEligible(const ScenarioConfig& config) {
  // The static-geometry subset: placement, reachability rows, channel plan
  // and gateway roster are all decided once at build time and never move.
  // Mobility rebuilds rows from live positions (a t=0 freeze would diverge
  // from the lazy first-transmission build) and custom link-model
  // factories own their geometry — both build from scratch.
  return !config.linkModelFactory && config.mobilityMaxSpeedMps == 0.0;
}

Simulation::Simulation(ScenarioConfig config) : config_{std::move(config)} {
  build();
}

Simulation::Simulation(ScenarioConfig config, TopologySnapshotPtr snapshot)
    : config_{std::move(config)}, adopted_{std::move(snapshot)} {
  MESH_REQUIRE(adopted_ != nullptr);
  MESH_REQUIRE(snapshotEligible(config_));
  build();
}

std::vector<Vec2> Simulation::placeNodes(Rng& rng) const {
  std::vector<Vec2> positions;
  positions.reserve(config_.nodeCount);
  for (std::size_t i = 0; i < config_.nodeCount; ++i) {
    positions.push_back(Vec2{rng.uniform(0.0, config_.areaWidthM),
                             rng.uniform(0.0, config_.areaHeightM)});
  }
  return positions;
}

std::vector<Vec2> Simulation::placeNodesGrid(Rng& rng) const {
  const std::size_t n = config_.nodeCount;
  MESH_REQUIRE(n > 0);
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  const double cellW = config_.areaWidthM / static_cast<double>(cols);
  const double cellH = config_.areaHeightM / static_cast<double>(rows);
  // One node per cell of the row-major prefix 0..n-1 (a connected region
  // of the grid). The node -> cell map is shuffled so node ids carry no
  // spatial information: id-striped channel plans and group picks then
  // sample space uniformly, like the rejection path they replace.
  std::vector<std::size_t> cells(n);
  std::iota(cells.begin(), cells.end(), std::size_t{0});
  for (std::size_t i = n - 1; i > 0; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniformInt(std::uint64_t{i + 1}));
    std::swap(cells[i], cells[j]);
  }
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cell = cells[i];
    const double cx = (static_cast<double>(cell % cols) + 0.5) * cellW;
    const double cy = (static_cast<double>(cell / cols) + 0.5) * cellH;
    // Jitter keeps each node inside the central half of its cell, so two
    // nodes in adjacent occupied cells sit at most
    // hypot(1.5·cell, 0.5·cell) apart — ~224 m at the paper's density,
    // inside the 250 m disk range. Connectivity needs no rejection loop.
    positions.push_back(Vec2{cx + rng.uniform(-cellW / 4.0, cellW / 4.0),
                             cy + rng.uniform(-cellH / 4.0, cellH / 4.0)});
  }
  return positions;
}

std::vector<Vec2> Simulation::placePositions(Rng& rng) const {
  if (config_.placement == Placement::Grid) return placeNodesGrid(rng);
  std::vector<Vec2> positions = placeNodes(rng);
  if (config_.ensureConnected) {
    // 250 m is the nominal (fading-free) reception range.
    int attempts = 0;
    while (!diskGraphConnected(positions, 250.0)) {
      positions = placeNodes(rng);
      MESH_REQUIRE(++attempts < 1000);
    }
  }
  return positions;
}

bool Simulation::diskGraphConnected(const std::vector<Vec2>& positions,
                                    double rangeM) {
  if (positions.empty()) return true;
  std::vector<std::size_t> parent(positions.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const double range2 = rangeM * rangeM;
  for (std::size_t a = 0; a < positions.size(); ++a) {
    for (std::size_t b = a + 1; b < positions.size(); ++b) {
      if (positions[a].distanceSquaredTo(positions[b]) <= range2) {
        parent[find(a)] = find(b);
      }
    }
  }
  const std::size_t root = find(0);
  for (std::size_t i = 1; i < positions.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

void Simulation::installPool(sim::Simulator& sim) {
  pools_.push_back(std::make_unique<net::PacketPool>());
  net::PacketPool* pool = pools_.back().get();
  // Save/restore the previous active pool so nested run() scopes (a test
  // driving one simulation from inside another's event) stay balanced.
  auto prev = std::make_shared<net::PacketPool*>(nullptr);
  sim.setRunScope(
      [pool, prev] { *prev = net::PacketPool::setCurrent(pool); },
      [prev] { net::PacketPool::setCurrent(*prev); });
}

void Simulation::build() {
  Rng rng{config_.seed};

  // MESH_RATE_CONTROL overrides the configured controller — the same
  // escape hatch pattern as MESH_SPATIAL_INDEX, for A/B runs without
  // touching configs.
  if (const char* env = std::getenv("MESH_RATE_CONTROL");
      env != nullptr && *env != '\0') {
    rate::ControlKind parsed;
    if (rate::controlKindFromString(env, parsed)) {
      config_.rateControl = parsed;
    } else {
      std::fprintf(stderr,
                   "MESH_RATE_CONTROL=%s ignored (fixed/minstrel/genie)\n",
                   env);
    }
  }

  // MESH_CHANNELS / MESH_DOMAIN_WORKERS: the channel plan's A/B escape
  // hatches, same pattern.
  if (const char* env = std::getenv("MESH_CHANNELS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 255) {
      config_.channels = static_cast<std::size_t>(v);
    } else {
      std::fprintf(stderr, "MESH_CHANNELS=%s ignored (want 1..255)\n", env);
    }
  }
  if (const char* env = std::getenv("MESH_DOMAIN_WORKERS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      config_.domainWorkers = static_cast<std::size_t>(v);
    } else {
      std::fprintf(stderr, "MESH_DOMAIN_WORKERS=%s ignored (want >= 1)\n", env);
    }
  }
  // MESH_GATEWAYS: gateway-count escape hatch (0 disables the relay even
  // when the config asks for gateways).
  if (const char* env = std::getenv("MESH_GATEWAYS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      config_.gateways = static_cast<std::size_t>(v);
      if (v == 0) config_.gatewayNodes.clear();
    } else {
      std::fprintf(stderr, "MESH_GATEWAYS=%s ignored (want a count)\n", env);
    }
  }

  if (config_.channels > 1 || config_.forceChannelPlan) {
    buildMultiChannel(rng);
    return;
  }

  installPool(simulator_);

  if (!config_.tracePath.empty()) {
    trace_ = std::make_unique<trace::TraceCollector>(config_.tracePath +
                                                     ".spill");
  }

  if (config_.protocol.metric) {
    metric_ = metrics::makeMetric(*config_.protocol.metric,
                                  config_.traffic.payloadBytes);
  }

  std::unique_ptr<phy::LinkModel> linkModel;
  if (config_.linkModelFactory) {
    Rng modelRng = rng.fork("linkmodel");
    linkModel = config_.linkModelFactory(simulator_, modelRng);
    positions_ = config_.fixedPositions;
    if (config_.nodeCount == 0 && !positions_.empty()) {
      config_.nodeCount = positions_.size();
    }
  } else if (config_.mobilityMaxSpeedMps > 0.0) {
    phy::RandomWaypointMobility::Params mobilityParams;
    mobilityParams.areaWidthM = config_.areaWidthM;
    mobilityParams.areaHeightM = config_.areaHeightM;
    mobilityParams.minSpeedMps = config_.mobilityMaxSpeedMps / 2.0;
    mobilityParams.maxSpeedMps = config_.mobilityMaxSpeedMps;
    mobilityParams.maxPause = SimTime::seconds(std::int64_t{5});
    mobilityParams.horizon = config_.duration + SimTime::seconds(std::int64_t{10});
    auto mobility = std::make_unique<phy::RandomWaypointMobility>(
        config_.nodeCount, mobilityParams, rng.fork("mobility"));
    positions_ = mobility->initialPositions();
    std::unique_ptr<phy::FadingModel> fading;
    if (config_.rayleighFading) {
      fading = std::make_unique<phy::RayleighFading>();
    } else {
      fading = std::make_unique<phy::NoFading>();
    }
    linkModel = std::make_unique<phy::MobileGeometricLinkModel>(
        simulator_, config_.node.phy, std::move(mobility),
        std::make_unique<phy::TwoRayGroundModel>(), std::move(fading));
  } else {
    if (adopted_ != nullptr) {
      // The placement draws come from rng.fork("placement"), a const fork:
      // skipping them cannot perturb any other stream.
      MESH_REQUIRE(adopted_->positions.size() == config_.nodeCount);
      positions_ = adopted_->positions;
    } else {
      Rng placeRng = rng.fork("placement");
      positions_ = placePositions(placeRng);
    }
    std::unique_ptr<phy::FadingModel> fading;
    if (config_.rayleighFading) {
      fading = std::make_unique<phy::RayleighFading>();
    } else {
      fading = std::make_unique<phy::NoFading>();
    }
    linkModel = std::make_unique<phy::GeometricLinkModel>(
        config_.node.phy, positions_, std::make_unique<phy::TwoRayGroundModel>(),
        std::move(fading));
  }

  channel_ = std::make_unique<phy::Channel>(simulator_, std::move(linkModel),
                                            rng.fork("channel"));
  channel_->setSpatialIndex(config_.spatialIndex);
  if (trace_ != nullptr) channel_->setTrace(trace_.get());
  // Rate subsystem: build the shared table when anything rate-aware is
  // configured. The basic rate tracks the PHY bitrate so code-0 and
  // basic-code airtimes agree.
  if (config_.rateControl != rate::ControlKind::Fixed ||
      config_.rateSet != rate::RateSetKind::Basic) {
    rateTable_ = std::make_unique<rate::RateTable>(rate::RateTable::forSet(
        config_.rateSet, config_.node.phy.bitRateBps));
    channel_->setRateTable(rateTable_.get());
  }
  if (config_.mobilityMaxSpeedMps > 0.0) {
    // Fading headroom gives the cache ~3.4x distance slack over the CS
    // range (~1.3 km); refresh every 2 s so even 30 m/s nodes cannot
    // outrun it.
    channel_->enableReachabilityRefresh(SimTime::seconds(std::int64_t{2}));
  }

  MeshNodeConfig nodeConfig = config_.node;
  nodeConfig.probeRateScale = config_.protocol.probeRateScale;
  nodeConfig.treeRouting = config_.protocol.routing == Routing::Tree;
  nodeConfig.adaptiveProbing.enabled = config_.protocol.adaptiveProbing;
  nodeConfig.rateControl = config_.rateControl;
  nodeConfig.rateTable = rateTable_.get();
  nodes_.reserve(config_.nodeCount);
  registry_.hintSlotsPerSeries(config_.nodeCount + 1);
  for (std::size_t i = 0; i < config_.nodeCount; ++i) {
    nodes_.push_back(std::make_unique<MeshNode>(
        simulator_, *channel_, static_cast<net::NodeId>(i), nodeConfig,
        metric_.get(), rng.fork("node", i), trace_.get()));
    nodes_.back()->registerCounters(registry_);
  }

  for (const GroupSpec& spec : config_.groups) {
    for (const net::NodeId member : spec.members) {
      nodes_.at(member)->joinGroup(spec.group);
    }
    for (const net::NodeId source : spec.sources) {
      app::CbrConfig cbr = config_.traffic;
      cbr.group = spec.group;
      nodes_.at(source)->addCbrSource(cbr);
    }
  }

  for (auto& node : nodes_) node->start();

  // Faults last: the schedule is merged (explicit + generated churn) and
  // armed against the fully built simulation.
  fault::FaultSchedule schedule = config_.faults;
  if (config_.churn) {
    std::vector<net::NodeId> eligible;
    if (!config_.churnVictims.empty()) {
      // Explicit victim roster (the on-route churn figure crashes actual
      // forwarding-group members discovered in a pilot run).
      eligible = config_.churnVictims;
    } else {
      // Default churn victims: every node that is neither a source nor a
      // member.
      std::vector<bool> excluded(config_.nodeCount, false);
      for (const GroupSpec& spec : config_.groups) {
        for (const net::NodeId s : spec.sources) excluded.at(s) = true;
        for (const net::NodeId m : spec.members) excluded.at(m) = true;
      }
      for (std::size_t i = 0; i < config_.nodeCount; ++i) {
        if (!excluded[i]) eligible.push_back(static_cast<net::NodeId>(i));
      }
    }
    const fault::FaultSchedule generated = fault::FaultSchedule::generate(
        *config_.churn, config_.duration, eligible, rng.fork("faults"));
    for (const fault::FaultEvent& event : generated.events()) {
      schedule.add(event);
    }
  }
  if (!schedule.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(simulator_, *channel_,
                                                       std::move(schedule));
    injector_->setTrace(trace_.get());
    injector_->setBlackholeHook([this](net::NodeId node, bool active) {
      nodes_.at(node)->setProbeBlackhole(active);
    });
    injector_->setQueueDropHook([this](net::NodeId node, bool active) {
      nodes_.at(node)->setQueueDropFault(active);
    });
    injector_->arm();

    // Mean fan-out per originated data packet: the factor that turns the
    // analyzer's originated-counter deltas into expected deliveries.
    double fanout = 0.0;
    std::size_t sources = 0;
    for (const GroupSpec& spec : config_.groups) {
      for (const net::NodeId source : spec.sources) {
        std::uint64_t f = 0;
        for (const net::NodeId member : spec.members) {
          if (member != source) ++f;
        }
        fanout += static_cast<double>(f);
        ++sources;
      }
    }
    if (sources > 0) fanout /= static_cast<double>(sources);
    recovery_ = std::make_unique<fault::RecoveryAnalyzer>(
        simulator_, registry_, injector_->schedule(), config_.duration,
        fanout);
    recovery_->arm();
  }

  // Snapshot-eligible worlds force the reachability build at construction
  // (DESIGN §14). Builds draw no RNG and static positions make t=0 rows
  // identical to the lazy first-transmission build, so results cannot
  // change — and construction cost lands in setup_seconds whether the
  // snapshot cache is on or off, keeping the amortization A/B honest.
  // Adopting runs splice the frozen rows in instead of rebuilding.
  if (snapshotEligible(config_)) {
    if (adopted_ != nullptr) {
      MESH_REQUIRE(adopted_->reach.size() == 1);
      channel_->adoptReachability(adopted_->reach[0]);
    } else {
      channel_->rebuildReachabilityNow();
    }
  }
}

void Simulation::buildMultiChannel(Rng& rng) {
  // Orthogonal collision domains need static geometry: the plan is decided
  // once from positions, and a custom or mobile link model would move
  // state across domains mid-run.
  MESH_REQUIRE(!config_.linkModelFactory);
  MESH_REQUIRE(config_.mobilityMaxSpeedMps == 0.0);
  MESH_REQUIRE(config_.channels >= 1 && config_.channels <= 255);
  multiChannel_ = true;
  const std::size_t domains = config_.channels;

  if (config_.protocol.metric) {
    metric_ = metrics::makeMetric(*config_.protocol.metric,
                                  config_.traffic.payloadBytes);
  }

  if (adopted_ != nullptr) {
    MESH_REQUIRE(adopted_->positions.size() == config_.nodeCount);
    MESH_REQUIRE(adopted_->plan.channels == domains);
    positions_ = adopted_->positions;
    plan_ = adopted_->plan;
  } else {
    {
      // Same fork label and draw sequence as the legacy static path, so a
      // one-domain plan reproduces its topology bit-for-bit.
      Rng placeRng = rng.fork("placement");
      positions_ = placePositions(placeRng);
    }
    // 250 m: the nominal reception range — the radius inside which two
    // same-channel nodes contend.
    plan_ = channelplan::makeChannelPlan(config_.channelAssign, domains,
                                         positions_, 250.0);
  }

  if (config_.rateControl != rate::ControlKind::Fixed ||
      config_.rateSet != rate::RateSetKind::Basic) {
    rateTable_ = std::make_unique<rate::RateTable>(rate::RateTable::forSet(
        config_.rateSet, config_.node.phy.bitRateBps));
  }

  for (std::size_t d = 0; d < domains; ++d) {
    if (!config_.tracePath.empty()) {
      auto collector = std::make_unique<trace::TraceCollector>(
          config_.tracePath + ".spill." + std::to_string(d));
      // Tag 0 on one-domain plans keeps record bytes legacy-identical.
      if (domains > 1) {
        collector->setChannelTag(static_cast<std::uint8_t>(d + 1));
      }
      domainTraces_.push_back(std::move(collector));
    }
    domainSims_.push_back(std::make_unique<sim::Simulator>());
    installPool(*domainSims_[d]);
    domainRegistries_.push_back(std::make_unique<trace::CounterRegistry>());
    std::unique_ptr<phy::FadingModel> fading;
    if (config_.rayleighFading) {
      fading = std::make_unique<phy::RayleighFading>();
    } else {
      fading = std::make_unique<phy::NoFading>();
    }
    // Every domain's model indexes the full position vector by global node
    // id; a Channel only consults radios attached to it, so carrier sense,
    // NAV, busy power and reachability are per-domain state for free.
    auto linkModel = std::make_unique<phy::GeometricLinkModel>(
        config_.node.phy, positions_,
        std::make_unique<phy::TwoRayGroundModel>(), std::move(fading));
    // fork("channel", 0) == fork("channel"): domain 0 draws the legacy
    // channel stream, the anchor of the one-domain identity.
    channels_.push_back(std::make_unique<phy::Channel>(
        *domainSims_[d], std::move(linkModel), rng.fork("channel", d)));
    channels_[d]->setSpatialIndex(config_.spatialIndex);
    if (!domainTraces_.empty()) channels_[d]->setTrace(domainTraces_[d].get());
    if (rateTable_ != nullptr) channels_[d]->setRateTable(rateTable_.get());
  }

  MeshNodeConfig nodeConfig = config_.node;
  nodeConfig.probeRateScale = config_.protocol.probeRateScale;
  nodeConfig.treeRouting = config_.protocol.routing == Routing::Tree;
  nodeConfig.adaptiveProbing.enabled = config_.protocol.adaptiveProbing;
  nodeConfig.rateControl = config_.rateControl;
  nodeConfig.rateTable = rateTable_.get();
  nodes_.reserve(config_.nodeCount);
  registry_.hintSlotsPerSeries(config_.nodeCount + 1);
  for (auto& domainRegistry : domainRegistries_) {
    domainRegistry->hintSlotsPerSeries(config_.nodeCount / plan_.channels + 2);
  }
  for (std::size_t i = 0; i < config_.nodeCount; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    const std::size_t d = plan_.channelOf(id);
    trace::TraceCollector* collector =
        domainTraces_.empty() ? nullptr : domainTraces_[d].get();
    nodes_.push_back(std::make_unique<MeshNode>(
        *domainSims_[d], *channels_[d], id, nodeConfig, metric_.get(),
        rng.fork("node", i), collector));
    // Nodes register into their domain registry only — what per-channel
    // results and the recovery analyzers read. The run-level taxonomy in
    // registry_ absorbs every domain registry after the loop: same shared
    // slots, one bulk map walk instead of a second per-node registration.
    nodes_.back()->registerCounters(*domainRegistries_[d]);
  }

  for (const auto& domainRegistry : domainRegistries_) {
    registry_.absorb(*domainRegistry);
  }

  for (const GroupSpec& spec : config_.groups) {
    for (const net::NodeId member : spec.members) {
      nodes_.at(member)->joinGroup(spec.group);
    }
    for (const net::NodeId source : spec.sources) {
      app::CbrConfig cbr = config_.traffic;
      cbr.group = spec.group;
      nodes_.at(source)->addCbrSource(cbr);
    }
  }

  for (auto& node : nodes_) node->start();

  // Cross-domain gateways: the roster is deterministic (RNG-free given the
  // plan and positions), then the relay wires one port Radio + MAC per
  // foreign domain onto each gateway and the node's outbound broadcasts
  // are tapped for staging. gateways == 0 builds none of this — the
  // multi-channel path stays byte-identical to the gateway-less simulator.
  if (domains > 1 && (config_.gateways > 0 || !config_.gatewayNodes.empty())) {
    if (adopted_ != nullptr) {
      gatewaySet_ = adopted_->gatewaySet;
    } else {
      gateway::GatewaySelect select = config_.gatewaySelect;
      if (!config_.gatewayNodes.empty()) {
        select = gateway::GatewaySelect::Explicit;
      }
      // 250 m: the same nominal reception range the channel plan scores
      // boundary candidates against.
      gatewaySet_ = gateway::makeGatewaySet(select, config_.gateways,
                                            config_.gatewayNodes, plan_,
                                            positions_, 250.0);
    }
    std::vector<gateway::GatewayRelay::DomainContext> contexts;
    contexts.reserve(domains);
    for (std::size_t d = 0; d < domains; ++d) {
      contexts.push_back(gateway::GatewayRelay::DomainContext{
          domainSims_[d].get(), channels_[d].get(), pools_[d].get(),
          domainTraces_.empty() ? nullptr : domainTraces_[d].get()});
    }
    relay_ = std::make_unique<gateway::GatewayRelay>(std::move(contexts));
    for (const net::NodeId g : gatewaySet_.nodes) {
      MESH_REQUIRE(static_cast<std::size_t>(g) < nodes_.size());
      const std::size_t idx = relay_->addGateway(
          g, plan_.channelOf(g), config_.node.phy, config_.node.mac,
          rng.fork("gwport", g),
          [this, g](const net::PacketPtr& packet, net::NodeId from) {
            nodes_.at(g)->injectFromGateway(packet, from);
          });
      nodes_.at(g)->setGatewayTap([this, idx](const net::PacketPtr& packet) {
        relay_->captureOutbound(idx, packet);
      });
    }
    // Port radios transmit on their channel like any node radio, so their
    // counters join both registries — otherwise the per-channel frame
    // counts disagree with the channel-tagged trace records.
    const bool rateAware = config_.rateControl != rate::ControlKind::Fixed;
    for (std::size_t d = 0; d < domains; ++d) {
      relay_->registerPortCounters(d, registry_, rateAware);
      relay_->registerPortCounters(d, *domainRegistries_[d], rateAware);
    }
  }

  // Faults: churn is generated globally with the legacy fork/draws, then
  // the merged schedule is scoped per domain so each injector only ever
  // touches its own domain's simulator, channel and nodes (the invariant
  // the parallel scheduler relies on).
  fault::FaultSchedule schedule = config_.faults;
  if (config_.churn) {
    std::vector<net::NodeId> eligible;
    if (!config_.churnVictims.empty()) {
      eligible = config_.churnVictims;
    } else {
      std::vector<bool> excluded(config_.nodeCount, false);
      for (const GroupSpec& spec : config_.groups) {
        for (const net::NodeId s : spec.sources) excluded.at(s) = true;
        for (const net::NodeId m : spec.members) excluded.at(m) = true;
      }
      for (std::size_t i = 0; i < config_.nodeCount; ++i) {
        if (!excluded[i]) eligible.push_back(static_cast<net::NodeId>(i));
      }
    }
    const fault::FaultSchedule generated = fault::FaultSchedule::generate(
        *config_.churn, config_.duration, eligible, rng.fork("faults"));
    for (const fault::FaultEvent& event : generated.events()) {
      schedule.add(event);
    }
  }
  if (!schedule.empty()) {
    // A gateway owns a radio in every domain, so radio-level faults
    // (crash, blackout, loss ramp, interference) scope to each domain
    // where the victim — and for link faults the peer too — has a radio:
    // crashing a gateway takes down its home stack and every port.
    // Node-level faults (probe blackhole, MAC queue drop) act on the
    // node's single protocol stack and stay home-domain-only, which also
    // keeps their hooks inside the home domain's worker thread. Exactly
    // one scoped copy per configured fault keeps traced=true, so the
    // merged trace carries each fault timeline once.
    std::vector<bool> isGateway(config_.nodeCount, false);
    for (const net::NodeId g : gatewaySet_.nodes) isGateway.at(g) = true;
    const auto hasRadioIn = [&](net::NodeId node, std::size_t d) {
      return plan_.channelOf(node) == d || isGateway.at(node);
    };
    domainInjectors_.resize(domains);
    domainRecovery_.resize(domains);
    std::vector<bool> tracedCopyEmitted(schedule.size(), false);
    for (std::size_t d = 0; d < domains; ++d) {
      std::vector<fault::FaultEvent> scoped;
      for (std::size_t e = 0; e < schedule.events().size(); ++e) {
        const fault::FaultEvent& event = schedule.events()[e];
        const bool nodeLevel =
            event.kind == trace::FaultKind::ProbeBlackhole ||
            event.kind == trace::FaultKind::MacQueueDrop;
        if (nodeLevel) {
          if (plan_.channelOf(event.node) != d) continue;
        } else {
          if (!hasRadioIn(event.node, d)) continue;
          // A link fault needs both endpoints in this domain; a pair with
          // no shared domain names a link that cannot exist, so that copy
          // is dropped.
          if (event.peer != net::kInvalidNode &&
              !hasRadioIn(event.peer, d)) {
            continue;
          }
        }
        fault::FaultEvent copy = event;
        copy.traced = !tracedCopyEmitted[e];
        tracedCopyEmitted[e] = true;
        scoped.push_back(copy);
      }
      if (scoped.empty()) continue;
      domainInjectors_[d] = std::make_unique<fault::FaultInjector>(
          *domainSims_[d], *channels_[d],
          fault::FaultSchedule::fromEvents(std::move(scoped)));
      if (!domainTraces_.empty()) {
        domainInjectors_[d]->setTrace(domainTraces_[d].get());
      }
      // Node-level victims are always same-domain (see scoping above), so
      // these hooks stay inside this domain's worker thread.
      domainInjectors_[d]->setBlackholeHook([this](net::NodeId node,
                                                   bool active) {
        nodes_.at(node)->setProbeBlackhole(active);
      });
      domainInjectors_[d]->setQueueDropHook([this](net::NodeId node,
                                                   bool active) {
        nodes_.at(node)->setQueueDropFault(active);
      });
      domainInjectors_[d]->arm();

      // Per-domain fan-out: a source only reaches members sharing its
      // channel. One domain: identical to the legacy factor.
      double fanout = 0.0;
      std::size_t sources = 0;
      for (const GroupSpec& spec : config_.groups) {
        for (const net::NodeId source : spec.sources) {
          if (plan_.channelOf(source) != d) continue;
          std::uint64_t f = 0;
          for (const net::NodeId member : spec.members) {
            if (member != source && plan_.channelOf(member) == d) ++f;
          }
          fanout += static_cast<double>(f);
          ++sources;
        }
      }
      if (sources > 0) fanout /= static_cast<double>(sources);
      domainRecovery_[d] = std::make_unique<fault::RecoveryAnalyzer>(
          *domainSims_[d], *domainRegistries_[d],
          domainInjectors_[d]->schedule(), config_.duration, fanout);
      domainRecovery_[d]->arm();
    }
  }

  // Forced reachability builds at construction (see build() — the
  // multi-channel path is always snapshot-eligible: it REQUIREs static
  // geometry above). Runs after gateway wiring so the rows cover the
  // relay's port radios, which attach after each domain's own nodes.
  for (std::size_t d = 0; d < domains; ++d) {
    if (adopted_ != nullptr) {
      channels_[d]->adoptReachability(adopted_->reach.at(d));
    } else {
      channels_[d]->rebuildReachabilityNow();
    }
  }
}

namespace {

void applyRecovery(RunResults& results, const fault::RecoveryReport& report) {
  results.faultsApplied = report.faultsApplied;
  results.faultsCleared = report.faultsCleared;
  results.faultWindowS = report.faultWindowS;
  results.inWindowPdr = report.inWindowPdr;
  results.outWindowPdr = report.outWindowPdr;
  results.overheadInflation = report.overheadInflation;
  results.meanTimeToRepairS = report.meanTimeToRepairS;
  results.repairsObserved = report.repairsObserved;
  results.repairsUnresolved = report.repairsUnresolved;
}

// Folds per-domain recovery reports into one run-level report. Counts sum;
// ratio metrics are weighted means over the windows they were measured in
// (fault-window seconds for in-window PDR and overhead inflation, the
// remaining horizon for out-of-window PDR, resolved repairs for the mean
// time-to-repair). A single report passes through unchanged, so the one-
// domain path matches the legacy analyzer exactly.
fault::RecoveryReport mergeRecoveryReports(
    const std::vector<fault::RecoveryReport>& reports, SimTime horizon) {
  if (reports.size() == 1) return reports.front();
  fault::RecoveryReport merged;
  const double horizonS = horizon.toSeconds();
  double inWeight = 0.0, outWeight = 0.0, repairWeight = 0.0;
  for (const fault::RecoveryReport& r : reports) {
    merged.faultsApplied += r.faultsApplied;
    merged.faultsCleared += r.faultsCleared;
    merged.faultWindowS += r.faultWindowS;
    merged.repairsObserved += r.repairsObserved;
    merged.repairsUnresolved += r.repairsUnresolved;
    merged.inWindowPdr += r.inWindowPdr * r.faultWindowS;
    merged.overheadInflation += r.overheadInflation * r.faultWindowS;
    merged.inWindowControlBps += r.inWindowControlBps * r.faultWindowS;
    inWeight += r.faultWindowS;
    const double outS = horizonS > r.faultWindowS ? horizonS - r.faultWindowS : 0.0;
    merged.outWindowPdr += r.outWindowPdr * outS;
    merged.outWindowControlBps += r.outWindowControlBps * outS;
    outWeight += outS;
    merged.meanTimeToRepairS +=
        r.meanTimeToRepairS * static_cast<double>(r.repairsObserved);
    repairWeight += static_cast<double>(r.repairsObserved);
  }
  if (inWeight > 0.0) {
    merged.inWindowPdr /= inWeight;
    merged.overheadInflation /= inWeight;
    merged.inWindowControlBps /= inWeight;
  }
  if (outWeight > 0.0) {
    merged.outWindowPdr /= outWeight;
    merged.outWindowControlBps /= outWeight;
  }
  if (repairWeight > 0.0) merged.meanTimeToRepairS /= repairWeight;
  return merged;
}

}  // namespace

TopologySnapshotPtr Simulation::captureSnapshot() {
  if (!snapshotEligible(config_)) return nullptr;
  // An adopting run has nothing new to freeze — the cache already holds
  // this world.
  MESH_REQUIRE(adopted_ == nullptr);
  auto snapshot = std::make_shared<TopologySnapshot>();
  snapshot->positions = positions_;
  if (multiChannel_) {
    snapshot->plan = plan_;
    snapshot->gatewaySet = gatewaySet_;
    snapshot->reach.reserve(channels_.size());
    for (auto& channel : channels_) {
      snapshot->reach.push_back(channel->freezeAndShare());
    }
  } else {
    snapshot->reach.push_back(channel_->freezeAndShare());
  }
  return snapshot;
}

std::string Simulation::traceMetaLine() const {
  const double activeS =
      (config_.traffic.stop - config_.traffic.start).toSeconds();
  char meta[256];
  std::snprintf(meta, sizeof(meta),
                "{\"seed\":%llu,\"protocol\":\"%s\",\"nodes\":%zu,"
                "\"active_s\":%.17g}",
                static_cast<unsigned long long>(config_.seed),
                config_.protocol.name().c_str(), nodes_.size(), activeS);
  return meta;
}

RunResults Simulation::run() {
  if (multiChannel_) return runMultiChannel();

  // A short drain window lets in-flight frames land before accounting.
  simulator_.run(config_.duration + SimTime::seconds(std::int64_t{1}));

  RunResults results;
  results.eventsExecuted = simulator_.eventsExecuted();
  aggregateTraffic(results);

  if (recovery_ != nullptr) applyRecovery(results, recovery_->report());

  if (trace_ != nullptr) {
    if (!trace_->exportJsonl(config_.tracePath, traceMetaLine(),
                             registry_.snapshot())) {
      throw std::runtime_error("trace export failed: cannot write " +
                               config_.tracePath);
    }
  }
  return results;
}

RunResults Simulation::runMultiChannel() {
  std::vector<sim::Simulator*> domains;
  domains.reserve(domainSims_.size());
  for (const auto& domain : domainSims_) domains.push_back(domain.get());
  channelplan::DomainScheduler scheduler{std::move(domains),
                                         config_.domainWorkers};
  // Same drain window as the single-channel path.
  const SimTime horizon = config_.duration + SimTime::seconds(std::int64_t{1});
  if (relay_ != nullptr) {
    // Switch slots: one epoch barrier every switchSlot, plus a final one
    // at the horizon so the last partial slot still drains. Barriers run
    // alone on the caller's thread with every domain clock stopped exactly
    // at the barrier time — the property that makes the handoff order
    // independent of the worker count.
    MESH_REQUIRE(!config_.switchSlot.isZero());
    SimTime at = config_.switchSlot;
    for (; at <= horizon; at = at + config_.switchSlot) {
      scheduler.addBarrier(at, [this] { relay_->drainAtBarrier(); });
    }
    if (at - config_.switchSlot < horizon) {
      scheduler.addBarrier(horizon, [this] { relay_->drainAtBarrier(); });
    }
  }
  scheduler.run(horizon);

  RunResults results;
  for (const auto& domain : domainSims_) {
    results.eventsExecuted += domain->eventsExecuted();
  }
  aggregateTraffic(results);

  if (plan_.channels > 1) {
    for (std::size_t d = 0; d < plan_.channels; ++d) {
      results.channelFrames.push_back(
          domainRegistries_[d]->value("phy.frames_sent"));
      results.channelDelivered.push_back(
          domainRegistries_[d]->value("app.packets_delivered"));
    }
  }

  if (relay_ != nullptr) {
    results.gatewayCount = relay_->gatewayCount();
    results.handoffFrames = relay_->totalInjected();
    results.gatewayStats = relay_->counters();
  }

  std::vector<fault::RecoveryReport> reports;
  for (const auto& recovery : domainRecovery_) {
    if (recovery != nullptr) reports.push_back(recovery->report());
  }
  if (!reports.empty()) {
    applyRecovery(results, mergeRecoveryReports(reports, config_.duration));
  }

  if (!domainTraces_.empty()) {
    std::vector<trace::TraceCollector*> parts;
    parts.reserve(domainTraces_.size());
    for (const auto& collector : domainTraces_) parts.push_back(collector.get());
    if (!trace::TraceCollector::exportMergedJsonl(
            config_.tracePath, traceMetaLine(), registry_.snapshot(), parts)) {
      throw std::runtime_error("trace export failed: cannot write " +
                               config_.tracePath);
    }
  }
  return results;
}

void Simulation::aggregateTraffic(RunResults& results) {
  for (const GroupSpec& spec : config_.groups) {
    for (const net::NodeId source : spec.sources) {
      const app::CbrSource* cbr = nodes_.at(source)->cbr();
      MESH_ASSERT(cbr != nullptr);
      results.packetsSent += cbr->packetsSent();
      // Every member except the source itself (a source may be a member)
      // should receive each packet.
      std::uint64_t fanout = 0;
      for (const net::NodeId member : spec.members) {
        if (member != source) ++fanout;
      }
      results.expectedDeliveries += cbr->packetsSent() * fanout;
    }
    for (const net::NodeId member : spec.members) {
      const auto& sink = nodes_.at(member)->sink();
      results.packetsDelivered += sink.packetsReceived();
    }
  }

  // Byte/frame totals come from the counter registry — the same slots every
  // protocol variant registers under one taxonomy, so these aggregates and
  // a `meshtrace` replay read identical numbers.
  results.probeBytesReceived = registry_.value("app.rx_bytes.probe");
  results.dataBytesReceived = registry_.value("app.rx_bytes.data");
  results.controlBytesReceived = registry_.value("app.rx_bytes.control");
  results.macBroadcastsSent = registry_.value("mac.broadcast_sent");
  results.radioFramesCorrupted = registry_.value("phy.frames_corrupted");

  OnlineStats delay;
  for (const auto& node : nodes_) delay.merge(node->sink().delayStats());

  results.pdr = results.expectedDeliveries > 0
                    ? static_cast<double>(results.packetsDelivered) /
                          static_cast<double>(results.expectedDeliveries)
                    : 0.0;
  const double activeS =
      (config_.traffic.stop - config_.traffic.start).toSeconds();
  std::uint64_t payloadBits = 0;
  for (const GroupSpec& spec : config_.groups) {
    for (const net::NodeId member : spec.members) {
      payloadBits += nodes_.at(member)->sink().payloadBytesReceived() * 8;
    }
  }
  results.throughputBps =
      activeS > 0.0 ? static_cast<double>(payloadBits) / activeS : 0.0;
  results.meanDelayS = delay.mean();
  results.probeOverheadPct =
      results.dataBytesReceived > 0
          ? 100.0 * static_cast<double>(results.probeBytesReceived) /
                static_cast<double>(results.dataBytesReceived)
          : 0.0;
}

std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash>
Simulation::dataEdgeCounts() const {
  std::unordered_map<net::LinkKey, std::uint64_t, net::LinkKeyHash> edges;
  for (const auto& node : nodes_) {
    for (const auto& [edge, count] : node->odmrp().dataEdgeCounts()) {
      edges[edge] += count;
    }
  }
  return edges;
}

}  // namespace mesh::harness
