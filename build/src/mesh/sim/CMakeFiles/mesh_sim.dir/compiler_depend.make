# Empty compiler generated dependencies file for mesh_sim.
# This may be replaced when dependencies are built.
