#pragma once
// Deterministic random number generation.
//
// Every stochastic component of the simulator (fading, backoff, jitter,
// topology placement, traffic start times) draws from its own Rng stream,
// forked from a single experiment seed. Forking uses splitmix64 so streams
// are statistically independent and — crucially — adding a new consumer of
// randomness never perturbs the draws seen by existing consumers.
//
// The generator is xoshiro256** (Blackman & Vigna), implemented locally so
// results are identical on every platform; <random> distributions are
// avoided for the same reason (libstdc++/libc++ differ).

#include <cstdint>
#include <cmath>
#include <string_view>

#include "mesh/common/assert.hpp"

namespace mesh {

// splitmix64: used for seeding / stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// FNV-1a over a label, used to derive named sub-streams.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

class Rng {
 public:
  // Seed 0 is remapped internally; all-zero state is invalid for xoshiro.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  // Derive an independent stream identified by a label and an index.
  // fork("fading", 3) always yields the same stream for the same parent seed.
  Rng fork(std::string_view label, std::uint64_t index = 0) const {
    std::uint64_t mix = s_[0] ^ (s_[1] * 0x9E3779B97F4A7C15ULL);
    mix ^= fnv1a(label) + 0x165667B19E3779F9ULL * (index + 1);
    return Rng{mix};
  }

  std::uint64_t nextU64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    MESH_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n). n must be > 0. Unbiased (rejection).
  std::uint64_t uniformInt(std::uint64_t n) {
    MESH_ASSERT(n > 0);
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = nextU64();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    MESH_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Exponential with the given mean (mean = 1/rate).
  double exponential(double mean = 1.0) {
    MESH_ASSERT(mean > 0.0);
    // 1 - uniform() is in (0, 1], so log() is finite.
    return -mean * std::log(1.0 - uniform());
  }

  // Standard normal via Box-Muller (no cached second value: determinism
  // is easier to reason about when each call consumes a fixed # of draws).
  double normal(double mu = 0.0, double sigma = 1.0) {
    const double u1 = 1.0 - uniform();  // (0, 1]
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mu + sigma * mag * std::cos(6.28318530717958647692 * u2);
  }

  // Rayleigh-fading power gain: |h|^2 for a unit-mean Rayleigh channel is
  // exponentially distributed with mean 1.
  double rayleighPowerGain() { return exponential(1.0); }

 private:
  explicit Rng(std::uint64_t mixed, int) = delete;
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace mesh
