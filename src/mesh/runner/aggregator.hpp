#pragma once
// Deterministic fold of parallel run results.
//
// Workers complete runs in whatever order the scheduler produces; the
// Aggregator parks each RunRecord in its (topology, protocol) grid slot
// and only folds them into ComparisonRows — in the exact (topology-major,
// protocol-minor) order of the legacy serial loop — when asked for rows().
// Because OnlineStats::add is applied in an identical sequence, the
// aggregate means/CIs are bit-identical to a serial sweep, regardless of
// completion order.

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "mesh/harness/experiment.hpp"
#include "mesh/runner/run_plan.hpp"

namespace mesh::runner {

class Aggregator {
 public:
  Aggregator(std::vector<harness::ProtocolSpec> protocols,
             std::size_t topologies);

  // Thread-safe; each (topology, protocol) slot must be delivered at most
  // once. Failed runs (record.ok == false) are stored too — they surface
  // in records()/failures() but contribute nothing to rows().
  void deliver(RunRecord record);

  std::size_t deliveredCount() const;
  std::size_t failureCount() const;

  // All delivered records in (topology, protocol) order.
  std::vector<RunRecord> records() const;

  // Failed records only, in (topology, protocol) order.
  std::vector<RunRecord> failures() const;

  // The deterministic fold. Call after all runs were delivered.
  std::vector<harness::ComparisonRow> rows() const;

 private:
  std::size_t slot(std::size_t topology, std::size_t protocol) const {
    return topology * protocols_.size() + protocol;
  }

  std::vector<harness::ProtocolSpec> protocols_;
  std::size_t topologies_;
  mutable std::mutex mutex_;
  std::vector<std::optional<RunRecord>> grid_;
  std::size_t delivered_{0};
  std::size_t failed_{0};
};

}  // namespace mesh::runner
