#pragma once
// LinkModel: how the channel decides per-frame received power on a link.
//
// Two implementations exist:
//  * GeometricLinkModel — positions + propagation model + fading; the
//    simulation substrate (Glomosim replacement).
//  * testbed::LossLinkModel (in mesh/testbed) — a measured-loss emulation
//    of the 8-node Purdue deployment, where link quality is defined by
//    time-varying loss rates rather than geometry.
//
// Keeping this behind one interface lets the whole stack above the channel
// (radio, MAC, ODMRP, metrics) run unchanged on either substrate, exactly
// as the paper runs the same protocol code in Glomosim and on the testbed.

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/phy/fading.hpp"
#include "mesh/phy/mobility.hpp"
#include "mesh/phy/propagation.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::phy {

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  // Mean (fading-free) received power on the directed link. Used to build
  // the channel's neighbor cache: receivers whose mean power is negligible
  // even with fading headroom are skipped entirely.
  virtual double meanRxPowerW(net::NodeId from, net::NodeId to) const = 0;

  // Per-frame received power sample (mean × fading draw).
  virtual double sampleRxPowerW(net::NodeId from, net::NodeId to, Rng& rng) const = 0;

  // Distance used for propagation delay; may be zero for emulated links.
  virtual double distanceM(net::NodeId from, net::NodeId to) const = 0;

  // True when meanRxPowerW/distanceM are pure functions of the node pair
  // between reachability rebuilds. The channel then precomputes flat
  // per-pair arrays (mean power, propagation delay) at buildReachability()
  // time and the per-transmission loop makes no virtual calls except the
  // per-frame sampling hook below. Clock-dependent geometry (mobility)
  // must return false to keep live positions authoritative.
  virtual bool meansCacheable() const { return true; }

  // The per-frame stochastic part of sampleRxPowerW, given this link's
  // (cached) mean power — the "fading gain" hook of the hot-path design.
  // Contract: must draw from `rng` exactly as sampleRxPowerW does and
  // return the bit-identical power, so the channel's link cache can never
  // perturb RNG draw order or results. The default recomputes the mean via
  // sampleRxPowerW (always correct); hot models override it.
  virtual double samplePowerGivenMeanW(net::NodeId from, net::NodeId to,
                                       double meanPowerW, Rng& rng) const {
    (void)meanPowerW;
    return sampleRxPowerW(from, to, rng);
  }

  // Non-null iff samplePowerGivenMeanW is exactly
  // `meanPowerW * fading->powerGain(rng)` for every link, independent of
  // the pair. The channel then specializes its cached-means delivery loop
  // on the concrete fading model (inlining the Rayleigh draw, skipping the
  // unity draw) — same draws, same bits, no virtual dispatch per receiver.
  // Models with per-link stochastic structure (loss matrices) decline.
  virtual const FadingModel* meanScaledFading() const { return nullptr; }

  // --- spatial index support (Channel's O(k) reachability path) ----------
  // A geometric model exposes per-node positions plus a conservative
  // maximum reach radius so the channel can replace its O(n²) pair scan
  // with a uniform-grid candidate enumeration (phy/spatial_grid). The
  // contract is pruning-only and must be conservative: for ANY pair with
  // meanRxPowerW(from, to) >= minMeanPowerW, the distance between
  // nodePosition(from) and nodePosition(to) must be at most
  // maxReachRadiusM(minMeanPowerW). Candidates still pass through the
  // exact meanRxPowerW predicate, so an over-generous radius costs speed,
  // never correctness. Models without meaningful geometry (explicit loss
  // matrices, the testbed emulation) decline and the channel keeps the
  // full scan.
  virtual bool spatiallyIndexable() const { return false; }
  // Valid only when spatiallyIndexable(). For clock-dependent geometry
  // (mobility) this is the position *now* — the channel snapshots it at
  // reachability-build time, so candidate queries between rebuilds see a
  // geometry consistent with the rows they prune.
  virtual Vec2 nodePosition(net::NodeId node) const {
    (void)node;
    return {};
  }
  // May return +infinity (no pruning possible); see contract above.
  virtual double maxReachRadiusM(double minMeanPowerW) const {
    (void)minMeanPowerW;
    return std::numeric_limits<double>::infinity();
  }
};

class GeometricLinkModel final : public LinkModel {
 public:
  GeometricLinkModel(PhyParams params, std::vector<Vec2> positions,
                     std::unique_ptr<PropagationModel> propagation,
                     std::unique_ptr<FadingModel> fading)
      : params_{params},
        positions_{std::move(positions)},
        propagation_{std::move(propagation)},
        fading_{std::move(fading)} {
    MESH_REQUIRE(propagation_ != nullptr);
    MESH_REQUIRE(fading_ != nullptr);
  }

  double meanRxPowerW(net::NodeId from, net::NodeId to) const override {
    return propagation_->rxPowerW(params_, position(from), position(to));
  }

  double sampleRxPowerW(net::NodeId from, net::NodeId to, Rng& rng) const override {
    return meanRxPowerW(from, to) * sampleFadingGain(rng);
  }

  double distanceM(net::NodeId from, net::NodeId to) const override {
    return position(from).distanceTo(position(to));
  }

  // One fading draw per frame; the only stochastic part of a sample.
  double sampleFadingGain(Rng& rng) const { return fading_->powerGain(rng); }

  double samplePowerGivenMeanW(net::NodeId, net::NodeId, double meanPowerW,
                               Rng& rng) const override {
    // Same product as sampleRxPowerW with the cached mean substituted for
    // the propagation recomputation: identical draws, identical bits.
    return meanPowerW * sampleFadingGain(rng);
  }

  const FadingModel* meanScaledFading() const override {
    return fading_.get();
  }

  bool spatiallyIndexable() const override { return true; }
  Vec2 nodePosition(net::NodeId node) const override { return position(node); }
  double maxReachRadiusM(double minMeanPowerW) const override {
    return maxRangeForMeanPowerM(*propagation_, params_, minMeanPowerW);
  }

  std::size_t nodeCount() const { return positions_.size(); }
  Vec2 position(net::NodeId id) const {
    MESH_REQUIRE(id < positions_.size());
    return positions_[id];
  }
  const PhyParams& params() const { return params_; }

 private:
  PhyParams params_;
  std::vector<Vec2> positions_;
  std::unique_ptr<PropagationModel> propagation_;
  std::unique_ptr<FadingModel> fading_;
};

// Geometry + mobility: positions are functions of the simulation clock.
// Used with Channel::enableReachabilityRefresh so the neighbor cache
// follows the nodes around.
class MobileGeometricLinkModel final : public LinkModel {
 public:
  MobileGeometricLinkModel(const sim::Simulator& simulator, PhyParams params,
                           std::unique_ptr<MobilityModel> mobility,
                           std::unique_ptr<PropagationModel> propagation,
                           std::unique_ptr<FadingModel> fading)
      : simulator_{simulator},
        params_{params},
        mobility_{std::move(mobility)},
        propagation_{std::move(propagation)},
        fading_{std::move(fading)} {
    MESH_REQUIRE(mobility_ != nullptr);
    MESH_REQUIRE(propagation_ != nullptr);
    MESH_REQUIRE(fading_ != nullptr);
  }

  double meanRxPowerW(net::NodeId from, net::NodeId to) const override {
    const SimTime now = simulator_.now();
    return propagation_->rxPowerW(params_, mobility_->positionAt(from, now),
                                  mobility_->positionAt(to, now));
  }

  double sampleRxPowerW(net::NodeId from, net::NodeId to, Rng& rng) const override {
    return meanRxPowerW(from, to) * fading_->powerGain(rng);
  }

  double distanceM(net::NodeId from, net::NodeId to) const override {
    const SimTime now = simulator_.now();
    return mobility_->positionAt(from, now)
        .distanceTo(mobility_->positionAt(to, now));
  }

  // Positions move between reachability rebuilds: power and delay must be
  // sampled live per transmission, never frozen into the link cache.
  bool meansCacheable() const override { return false; }

  bool spatiallyIndexable() const override { return true; }
  Vec2 nodePosition(net::NodeId node) const override {
    return mobility_->positionAt(node, simulator_.now());
  }
  double maxReachRadiusM(double minMeanPowerW) const override {
    return maxRangeForMeanPowerM(*propagation_, params_, minMeanPowerW);
  }

  const MobilityModel& mobility() const { return *mobility_; }

 private:
  const sim::Simulator& simulator_;
  PhyParams params_;
  std::unique_ptr<MobilityModel> mobility_;
  std::unique_ptr<PropagationModel> propagation_;
  std::unique_ptr<FadingModel> fading_;
};

}  // namespace mesh::phy
