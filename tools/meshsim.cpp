// meshsim: run a multicast mesh scenario described by a config file.
//
//   $ meshsim scenario.ini [--repeat N] [--csv]
//
// Prints the run's headline numbers; with --repeat, runs N seeds
// (seed, seed+1, ...) and reports mean ± 95% CI. --csv emits one
// machine-readable row per run instead.
//
// See src/mesh/harness/config_file.hpp for the file format, and
// tools/examples/*.ini for ready-made scenarios.

#include <cstdio>
#include <cstring>
#include <string>

#include "mesh/common/stats.hpp"
#include "mesh/harness/config_file.hpp"
#include "mesh/harness/scenario.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario.ini> [--repeat N] [--csv]\n"
               "see src/mesh/harness/config_file.hpp for the file format\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::harness;

  const char* path = nullptr;
  int repeat = 1;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) {
        std::fprintf(stderr, "--repeat needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    usage(argv[0]);
    return 2;
  }

  const ConfigParseResult parsed = loadScenarioConfig(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, parsed.error.c_str());
    return 1;
  }

  if (csv) {
    std::printf("seed,protocol,pdr,throughput_kbps,delay_ms,probe_overhead_pct\n");
  }

  OnlineStats pdr, throughput, delay, overhead;
  for (int r = 0; r < repeat; ++r) {
    ScenarioConfig config = *parsed.config;
    config.seed += static_cast<std::uint64_t>(r);
    const std::string protocolName = config.protocol.name();
    Simulation sim{std::move(config)};
    const RunResults results = sim.run();
    pdr.add(results.pdr);
    throughput.add(results.throughputBps);
    delay.add(results.meanDelayS);
    overhead.add(results.probeOverheadPct);
    if (csv) {
      std::printf("%llu,%s,%.6f,%.2f,%.3f,%.3f\n",
                  static_cast<unsigned long long>(parsed.config->seed +
                                                  static_cast<std::uint64_t>(r)),
                  protocolName.c_str(), results.pdr,
                  results.throughputBps / 1e3, results.meanDelayS * 1e3,
                  results.probeOverheadPct);
    }
  }

  if (!csv) {
    std::printf("%s — %zu nodes, protocol %s, %d run%s\n", path,
                parsed.config->nodeCount, parsed.config->protocol.name().c_str(),
                repeat, repeat == 1 ? "" : "s");
    std::printf("  delivery    %.2f%% ± %.2f\n", pdr.mean() * 100.0,
                pdr.ci95HalfWidth() * 100.0);
    std::printf("  goodput     %.1f kbps\n", throughput.mean() / 1e3);
    std::printf("  mean delay  %.2f ms\n", delay.mean() * 1e3);
    std::printf("  probe cost  %.2f%% of data bytes\n", overhead.mean());
  }
  return 0;
}
