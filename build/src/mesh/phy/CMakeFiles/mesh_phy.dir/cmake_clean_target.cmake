file(REMOVE_RECURSE
  "libmesh_phy.a"
)
