// The sim module is header-only; this TU anchors the static library.
#include "mesh/sim/simulator.hpp"
#include "mesh/sim/timer.hpp"
