# Empty dependencies file for metric_playground.
# This may be replaced when dependencies are built.
