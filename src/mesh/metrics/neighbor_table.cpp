#include "mesh/metrics/neighbor_table.hpp"

namespace mesh::metrics {

NeighborTable::Entry& NeighborTable::entryFor(net::NodeId neighbor) {
  auto it = entries_.find(neighbor);
  if (it == entries_.end()) {
    it = entries_.emplace(neighbor, Entry{lossWindowSize_, historyWeight_}).first;
  }
  return it->second;
}

void NeighborTable::finalizePending(Entry& e) {
  if (e.pairPending && !e.pairComplete) {
    // The pair's large probe never showed up: 20% penalty (paper §2.2).
    e.delayEwma.scale(lossPenalty_);
    ++stats_.pairPenalties;
  }
  e.pairPending = false;
  e.pairComplete = false;
}

void NeighborTable::finalizeStalePairs(SimTime now, SimTime maxAge) {
  for (auto& [neighbor, entry] : entries_) {
    (void)neighbor;
    if (entry.pairPending && !entry.pairComplete &&
        now - entry.smallArrival > maxAge) {
      finalizePending(entry);
    }
  }
}

void NeighborTable::penalizeSequenceGap(Entry& e, std::uint32_t seq) {
  // Pairs between the last one we heard anything of and this one vanished
  // completely ("either the large or the small packet is lost" — here,
  // both). One 20% penalty per vanished pair, capped so a long radio
  // silence cannot overflow the cost into meaninglessness.
  if (e.anyPairSeen && seq > e.highestPairSeq + 1) {
    std::uint32_t missed = seq - e.highestPairSeq - 1;
    missed = std::min(missed, 10u);
    for (std::uint32_t i = 0; i < missed; ++i) {
      e.delayEwma.scale(lossPenalty_);
      ++stats_.pairPenalties;
    }
  }
  if (!e.anyPairSeen || seq > e.highestPairSeq) {
    e.anyPairSeen = true;
    e.highestPairSeq = seq;
  }
}

std::vector<std::pair<net::NodeId, double>> NeighborTable::snapshotDf(
    SimTime now) const {
  std::vector<std::pair<net::NodeId, double>> out;
  out.reserve(entries_.size());
  for (const auto& [neighbor, entry] : entries_) {
    const double df = entry.lossWindow.df(now, probeInterval_);
    if (df > 0.0) out.emplace_back(neighbor, df);
  }
  return out;
}

void NeighborTable::onProbe(const ProbeMessage& probe, SimTime now,
                            net::NodeId self) {
  Entry& e = entryFor(probe.sender);
  ++stats_.probesAccepted;
  if (self != net::kInvalidNode) {
    for (const ReportEntry& entry : probe.report) {
      if (entry.neighbor == self) {
        e.hasReverse = true;
        e.reverseDf = entry.df();
        e.reverseUpdatedAt = now;
        break;
      }
    }
  }
  if (probe.type != ProbeType::Single) penalizeSequenceGap(e, probe.seq);

  switch (probe.type) {
    case ProbeType::Single:
      e.lossWindow.onProbe(probe.seq, now);
      break;

    case ProbeType::PairSmall:
      // Smalls double as the loss stream (ETT computes its ETX from them).
      e.lossWindow.onProbe(probe.seq, now);
      if (e.pairPending && e.pairSeq < probe.seq) finalizePending(e);
      e.pairPending = true;
      e.pairComplete = false;
      e.pairSeq = probe.seq;
      e.smallArrival = now;
      break;

    case ProbeType::PairLarge:
      if (e.pairPending && e.pairSeq == probe.seq && !e.pairComplete) {
        const double delayS = (now - e.smallArrival).toSeconds();
        if (delayS > 0.0) {
          e.delayEwma.update(delayS);
          e.bandwidthEwma.update(static_cast<double>(kLargeProbeBytes) * 8.0 /
                                 delayS);
          ++stats_.pairsCompleted;
        }
        e.pairComplete = true;
      } else {
        // Large without its small: the small was lost — penalty. Any older
        // pending pair is finalized (and penalized) too.
        if (e.pairPending && e.pairSeq < probe.seq) finalizePending(e);
        e.delayEwma.scale(lossPenalty_);
        ++stats_.pairPenalties;
        // Mark this pair as consumed so a duplicate large cannot
        // double-penalize.
        e.pairPending = true;
        e.pairComplete = true;
        e.pairSeq = probe.seq;
      }
      break;
  }
}

LinkMeasurement NeighborTable::measure(net::NodeId neighbor, SimTime now) const {
  LinkMeasurement m;
  const auto it = entries_.find(neighbor);
  if (it == entries_.end()) return m;
  const Entry& e = it->second;
  m.df = e.lossWindow.df(now, probeInterval_);
  if (e.delayEwma.hasValue()) {
    m.hasDelay = true;
    m.delayS = e.delayEwma.value();
  }
  if (e.bandwidthEwma.hasValue()) {
    m.hasBandwidth = true;
    m.bandwidthBps = e.bandwidthEwma.value();
  }
  // Reverse information goes stale if the neighbor stops reporting.
  if (e.hasReverse && now - e.reverseUpdatedAt <= probeInterval_ * 4) {
    m.hasReverse = true;
    m.reverseDf = e.reverseDf;
  }
  return m;
}

}  // namespace mesh::metrics
