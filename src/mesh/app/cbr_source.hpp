#pragma once
// CbrSource: constant-bit-rate multicast traffic generator.
//
// The paper's workload: "CBR traffic, consisting of 512-byte packets sent
// at a rate of 20 packets/second" per source. The source also drives
// ODMRP's on-demand machinery: it starts the periodic JOIN QUERY flood
// when traffic starts.

#include <cstdint>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/net/multicast_protocol.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/sim/timer.hpp"

namespace mesh::app {

struct CbrConfig {
  net::GroupId group{1};
  std::size_t payloadBytes{512};
  double packetsPerSecond{20.0};
  SimTime start{SimTime::seconds(std::int64_t{30})};
  SimTime stop{SimTime::seconds(std::int64_t{400})};
  // Queries begin this much before the data so a route can form first
  // (ODMRP is on-demand; the paper's sources are long-lived).
  SimTime routeWarmup{SimTime::seconds(std::int64_t{3})};
};

class CbrSource {
 public:
  CbrSource(sim::Simulator& simulator, net::MulticastProtocol& protocol,
            CbrConfig config, Rng rng);

  // Arms the schedule; must be called once before the simulation runs.
  void start();

  std::uint64_t packetsSent() const { return packetsSent_; }
  std::uint64_t bytesSent() const { return bytesSent_; }
  const CbrConfig& config() const { return config_; }

 private:
  void sendOne();

  sim::Simulator& simulator_;
  net::MulticastProtocol& protocol_;
  CbrConfig config_;
  Rng rng_;
  sim::Timer startTimer_;
  sim::PeriodicTimer sendTimer_;
  // One payload buffer for the whole run — sendData copies it into the
  // pooled wire packet, so per-packet allocation would be pure waste.
  std::vector<std::uint8_t> payload_;
  std::uint64_t packetsSent_{0};
  std::uint64_t bytesSent_{0};
};

}  // namespace mesh::app
