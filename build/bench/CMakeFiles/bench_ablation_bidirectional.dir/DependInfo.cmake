
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_bidirectional.cpp" "bench/CMakeFiles/bench_ablation_bidirectional.dir/bench_ablation_bidirectional.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_bidirectional.dir/bench_ablation_bidirectional.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/harness/CMakeFiles/mesh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/mac/CMakeFiles/mesh_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/maodv/CMakeFiles/mesh_maodv.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/odmrp/CMakeFiles/mesh_odmrp.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/metrics/CMakeFiles/mesh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/app/CMakeFiles/mesh_app.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/testbed/CMakeFiles/mesh_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/phy/CMakeFiles/mesh_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/sim/CMakeFiles/mesh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/net/CMakeFiles/mesh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/common/CMakeFiles/mesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
