file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bidirectional.dir/bench_ablation_bidirectional.cpp.o"
  "CMakeFiles/bench_ablation_bidirectional.dir/bench_ablation_bidirectional.cpp.o.d"
  "bench_ablation_bidirectional"
  "bench_ablation_bidirectional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
