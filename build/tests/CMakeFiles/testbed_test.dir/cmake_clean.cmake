file(REMOVE_RECURSE
  "CMakeFiles/testbed_test.dir/testbed_test.cpp.o"
  "CMakeFiles/testbed_test.dir/testbed_test.cpp.o.d"
  "testbed_test"
  "testbed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
