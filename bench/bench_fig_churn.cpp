// Extension — metric robustness under churn (src/mesh/fault).
//
// The paper evaluates a healthy static mesh; this bench asks what each
// routing metric buys when the mesh is *not* healthy. For each failure
// rate, a seed-defined fault schedule (node crashes + link blackouts +
// interference bursts, victims drawn outside the source/member sets) is
// injected into the Section 4.1 scenario, and the RecoveryAnalyzer
// reports per-run churn metrics: PDR inside vs outside fault windows,
// control-overhead inflation while the protocol heals, and time-to-repair
// after forwarding-group node death. One JSONL record per (metric,
// failure-rate, topology) run when --jsonl is given; every row carries a
// `failure_rate` tag.
//
// --on-route sharpens the figure (DESIGN §9): the default victim draw
// excludes endpoints but not *bystanders* — at the paper's density most
// random crashes hit nodes no route runs through, so in-window PDR barely
// moves. The flag runs a fault-free pilot per topology, ranks nodes by
// how much data they actually forwarded (the union of per-node data-edge
// counts), and crashes the top forwarders; the topology is also drawn
// ~35% sparser and the runs go the paper's full 400 s, so crashes land
// on links routes actually use and the out-window recovery is long
// enough to measure.

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "bench_common.hpp"
#include "mesh/runner/result_sink.hpp"
#include "mesh/runner/sweep.hpp"

namespace {

// Fault-free pilot: same topology, seed, and groups; the original ODMRP
// (one victim list per topology, shared by every metric — fairer than
// letting each protocol nominate its own victims). Returns the heaviest
// data forwarders outside the source/member sets, busiest first.
std::vector<mesh::net::NodeId> onRouteVictims(
    const mesh::harness::ScenarioConfig& base, std::size_t count) {
  using namespace mesh;
  harness::ScenarioConfig pilot = base;
  pilot.churn.reset();
  pilot.churnVictims.clear();
  pilot.protocol = harness::ProtocolSpec::original();
  pilot.duration = SimTime::seconds(std::int64_t{100});
  pilot.tracePath.clear();
  harness::Simulation sim{pilot};
  sim.run();

  std::vector<std::uint64_t> forwarded(pilot.nodeCount, 0);
  for (const auto& [edge, packets] : sim.dataEdgeCounts()) {
    forwarded[edge.from] += packets;
  }
  std::vector<bool> endpoint(pilot.nodeCount, false);
  for (const harness::GroupSpec& spec : pilot.groups) {
    for (const net::NodeId s : spec.sources) endpoint.at(s) = true;
    for (const net::NodeId m : spec.members) endpoint.at(m) = true;
  }
  std::vector<net::NodeId> ranked;
  for (std::size_t i = 0; i < pilot.nodeCount; ++i) {
    if (!endpoint[i] && forwarded[i] > 0) {
      ranked.push_back(static_cast<net::NodeId>(i));
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](net::NodeId a, net::NodeId b) {
                     return forwarded[a] > forwarded[b];
                   });
  if (ranked.size() > count) ranked.resize(count);
  return ranked;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mesh;
  using namespace mesh::bench;

  bool onRoute = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--on-route") == 0) onRoute = true;
  }

  harness::BenchOptions options =
      benchOptions(argc, argv, kQuickTopologies, kQuickDurationS);
  if (onRoute) options.duration = SimTime::zero();  // keep the 400 s below

  // One sink across the whole sweep: the constructor truncates, so opening
  // it per failure rate would keep only the last rate's rows.
  std::unique_ptr<runner::JsonlResultSink> sink;
  if (!options.jsonlPath.empty()) {
    sink = std::make_unique<runner::JsonlResultSink>(options.jsonlPath);
    options.jsonlPath.clear();
  }
  const std::string traceRoot = options.traceDir;

  // Failure rate: expected fault events per minute, per category (crashes,
  // blackouts, bursts all run at this rate). 0 = the paper's fault-free
  // baseline.
  const double rates[] = {0.0, 1.0, 3.0, 6.0};
  const std::vector<harness::ProtocolSpec> protocols =
      harness::figure2Protocols();

  // Per-topology victim cache: the scenario factory runs once per
  // (protocol, rate, topology) and may run on sweep worker threads, but
  // the pilot only depends on the seed.
  std::map<std::uint64_t, std::vector<net::NodeId>> victimCache;
  std::mutex victimMutex;

  std::printf("Extension — churn robustness (faults/min per category%s)\n",
              onRoute ? ", on-route victims" : "");
  std::printf("%-10s  %6s  %8s  %8s  %8s  %8s  %8s\n", "protocol", "rate",
              "pdr", "pdr_in", "pdr_out", "ttr_s", "ovh_x");
  for (const double rate : rates) {
    if (sink != nullptr) {
      char extra[48];
      std::snprintf(extra, sizeof extra, "\"failure_rate\":%.17g", rate);
      sink->setExtra(extra);
    }
    if (!traceRoot.empty()) {
      // Per-rate subdirectory: trace names are keyed by (topology,
      // protocol, seed) only, identical across rates.
      char sub[32];
      std::snprintf(sub, sizeof sub, "/rate_%g", rate);
      options.traceDir = traceRoot + sub;
    }

    const runner::SweepReport report = runner::runComparisonSweep(
        protocols,
        [rate, onRoute, &victimCache, &victimMutex](std::uint64_t seed) {
          harness::ScenarioConfig config = simulationScenario(seed);
          if (onRoute) {
            // Sparser mesh (~37 nodes/km² instead of 50) and the paper's
            // full 400 s: fewer detours around a dead forwarder, and
            // enough post-repair runtime for out-window PDR to mean
            // something.
            config.areaWidthM *= 1.16;
            config.areaHeightM *= 1.16;
            config.duration = SimTime::seconds(std::int64_t{400});
            config.traffic.stop = config.duration;
          }
          if (rate > 0.0) {
            fault::ChurnSpec churn;
            churn.crashesPerMinute = rate;
            churn.blackoutsPerMinute = rate;
            churn.burstsPerMinute = rate;
            // Routes exist only after traffic starts at 30 s.
            churn.warmup = SimTime::seconds(std::int64_t{40});
            config.churn = churn;
            if (onRoute) {
              std::scoped_lock lock{victimMutex};
              auto [it, fresh] = victimCache.try_emplace(seed);
              if (fresh) it->second = onRouteVictims(config, 5);
              config.churnVictims = it->second;
            }
          }
          return config;
        },
        options, sink.get());

    // Fold churn metrics per protocol (the Aggregator's rows cover the
    // headline metrics only).
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      OnlineStats pdr, inPdr, outPdr, ttr, inflation;
      for (const runner::RunRecord& record : report.records) {
        if (!record.ok || record.protocolIndex != p) continue;
        pdr.add(record.results.pdr);
        inPdr.add(record.results.inWindowPdr);
        outPdr.add(record.results.outWindowPdr);
        if (record.results.repairsObserved > 0) {
          ttr.add(record.results.meanTimeToRepairS);
        }
        inflation.add(record.results.overheadInflation);
      }
      std::printf("%-10s  %6.1f  %8.4f  %8.4f  %8.4f  %8.2f  %8.2f\n",
                  protocols[p].name().c_str(), rate, pdr.mean(), inPdr.mean(),
                  outPdr.mean(), ttr.mean(), inflation.mean());
    }
  }
  printPaperReference(
      "Section 6 (future work: robustness)",
      "expect in-window PDR to fall and control overhead to inflate with "
      "failure rate; metrics with loss history (ETX/SPP) should repair onto "
      "good links faster than freshest-flood ODMRP");
  return 0;
}
