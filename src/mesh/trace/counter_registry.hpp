#pragma once
// CounterRegistry: one taxonomy of named monotonic counters per run.
//
// The simulator's stats live where they are cheap to update — plain
// uint64 fields inside RadioStats / MacStats / ProtocolStats — so the hot
// paths keep their single unconditional increment. The registry is the
// *read* side: each component registers `("mac.queue_tail_drops.data",
// &stats_.queueDropsData)` once at build time, and a snapshot sums every
// slot registered under a name (fifty radios all publish
// "phy.frames_corrupted"). That gives every protocol and layer one shared
// naming scheme for export and cross-checking without a second write path.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mesh::trace {

class CounterRegistry {
 public:
  // Registers a live counter slot. The pointee must outlive the registry
  // (slots live in component stats structs owned by the same Simulation).
  void add(std::string name, const std::uint64_t* slot) {
    slots_[std::move(name)].push_back(slot);
  }

  // Sum of every slot registered under `name`; 0 for unknown names.
  std::uint64_t value(std::string_view name) const {
    const auto it = slots_.find(name);
    if (it == slots_.end()) return 0;
    std::uint64_t total = 0;
    for (const std::uint64_t* slot : it->second) total += *slot;
    return total;
  }

  std::size_t nameCount() const { return slots_.size(); }

  // Name-sorted totals (std::map keeps the order deterministic).
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(slots_.size());
    for (const auto& [name, slots] : slots_) {
      std::uint64_t total = 0;
      for (const std::uint64_t* slot : slots) total += *slot;
      out.emplace_back(name, total);
    }
    return out;
  }

 private:
  std::map<std::string, std::vector<const std::uint64_t*>, std::less<>> slots_;
};

}  // namespace mesh::trace
