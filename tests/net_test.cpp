// Tests for the net layer: byte-order-explicit serialization and the
// Packet framework, including round-trip property tests.

#include <gtest/gtest.h>

#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/buffer.hpp"
#include "mesh/net/packet.hpp"

namespace mesh::net {
namespace {

using namespace mesh::time_literals;

// ----------------------------------------------------------------- buffer

TEST(ByteWriterReader, ScalarRoundTrip) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  EXPECT_EQ(bytes.size(), 1u + 2 + 4 + 8 + 8 + 8);

  ByteReader r{bytes};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteWriterReader, LittleEndianLayout) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u16(0x1234);
  EXPECT_EQ(bytes[0], 0x34);
  EXPECT_EQ(bytes[1], 0x12);
}

TEST(ByteWriterReader, BytesAndZeros) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  const std::vector<std::uint8_t> payload{1, 2, 3};
  w.bytes(payload);
  w.zeros(4);
  EXPECT_EQ(bytes.size(), 7u);
  EXPECT_EQ(bytes[2], 3);
  EXPECT_EQ(bytes[6], 0);

  ByteReader r{bytes};
  const auto got = r.bytes(3);
  EXPECT_EQ(got[1], 2);
  r.skip(4);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteWriterReader, SpecialDoubles) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  ByteReader r{bytes};
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_DOUBLE_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

class BufferPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferPropertyTest, RandomMixedSequencesRoundTrip) {
  Rng rng{GetParam() * 31 + 7};
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};

  std::vector<int> plan;
  std::vector<std::uint64_t> values;
  const int fields = static_cast<int>(rng.uniformInt(1, 30));
  for (int i = 0; i < fields; ++i) {
    const int kind = static_cast<int>(rng.uniformInt(0, 3));
    const std::uint64_t value = rng.nextU64();
    plan.push_back(kind);
    values.push_back(value);
    switch (kind) {
      case 0: w.u8(static_cast<std::uint8_t>(value)); break;
      case 1: w.u16(static_cast<std::uint16_t>(value)); break;
      case 2: w.u32(static_cast<std::uint32_t>(value)); break;
      case 3: w.u64(value); break;
    }
  }

  ByteReader r{bytes};
  for (int i = 0; i < fields; ++i) {
    switch (plan[static_cast<std::size_t>(i)]) {
      case 0: EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(values[static_cast<std::size_t>(i)])); break;
      case 1: EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(values[static_cast<std::size_t>(i)])); break;
      case 2: EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(values[static_cast<std::size_t>(i)])); break;
      case 3: EXPECT_EQ(r.u64(), values[static_cast<std::size_t>(i)]); break;
    }
  }
  EXPECT_TRUE(r.atEnd());
}

INSTANTIATE_TEST_SUITE_P(RandomPlans, BufferPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ----------------------------------------------------------------- packet

TEST(PacketTest, CarriesMetadataAndBytes) {
  const auto p = Packet::make(PacketKind::Data, 7, {1, 2, 3, 4}, 5_s);
  EXPECT_EQ(p->kind(), PacketKind::Data);
  EXPECT_EQ(p->origin(), 7);
  EXPECT_EQ(p->createdAt(), 5_s);
  EXPECT_EQ(p->sizeBytes(), 4u);
  EXPECT_EQ(p->bytes()[2], 3);
}

TEST(PacketTest, UidsAreUnique) {
  const auto a = Packet::make(PacketKind::Probe, 1, {}, 0_s);
  const auto b = Packet::make(PacketKind::Probe, 1, {}, 0_s);
  EXPECT_NE(a->uid(), b->uid());
}

TEST(PacketTest, KindNames) {
  EXPECT_STREQ(toString(PacketKind::Data), "data");
  EXPECT_STREQ(toString(PacketKind::Probe), "probe");
  EXPECT_STREQ(toString(PacketKind::Control), "control");
  EXPECT_STREQ(toString(PacketKind::MacControl), "mac-control");
}

TEST(LinkKeyTest, HashAndEquality) {
  const LinkKey a{1, 2}, b{1, 2}, c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  LinkKeyHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // directed
}

}  // namespace
}  // namespace mesh::net
