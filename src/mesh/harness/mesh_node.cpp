#include "mesh/harness/mesh_node.hpp"

namespace mesh::harness {
namespace {

metrics::ProbeConfig probeConfigFor(const metrics::Metric* metric) {
  return metric != nullptr ? metric->probeConfig() : metrics::ProbeConfig{};
}

SimTime effectiveProbeInterval(const metrics::Metric* metric, double rateScale) {
  const metrics::ProbeConfig config = probeConfigFor(metric);
  if (config.mode == metrics::ProbeMode::None) {
    return SimTime::seconds(std::int64_t{5});  // placeholder; table unused
  }
  return config.interval.scaled(1.0 / rateScale);
}

}  // namespace

MeshNode::MeshNode(sim::Simulator& simulator, phy::Channel& channel,
                   net::NodeId id, const MeshNodeConfig& config,
                   const metrics::Metric* metric, Rng rng)
    : simulator_{simulator},
      metric_{metric},
      radio_{simulator, id, config.phy},
      mac_{simulator, radio_, config.mac, rng.fork("mac")},
      table_{effectiveProbeInterval(metric, config.probeRateScale),
             probeConfigFor(metric).lossWindow == 0
                 ? 10
                 : probeConfigFor(metric).lossWindow},
      sink_{simulator} {
  const auto send = [this](net::PacketPtr packet) {
    mac_.send(std::move(packet), net::kBroadcastNode);
  };
  const metrics::NeighborTable* neighbors = metric != nullptr ? &table_ : nullptr;
  if (config.treeRouting) {
    protocol_ = std::make_unique<maodv::TreeMulticast>(
        simulator, id, config.tree, metric, neighbors, send, rng.fork("tree"));
  } else {
    protocol_ = std::make_unique<odmrp::Odmrp>(
        simulator, id, config.odmrp, metric, neighbors, send, rng.fork("odmrp"));
  }
  channel.attach(radio_);
  probes_ = std::make_unique<metrics::ProbeService>(
      simulator, id, probeConfigFor(metric), config.probeRateScale, table_,
      [this](net::PacketPtr packet) {
        mac_.send(std::move(packet), net::kBroadcastNode);
      },
      rng.fork("probes"), config.adaptiveProbing,
      [this] { return radio_.busyTime(); });
  mac_.setReceiveCallback(
      [this](const net::PacketPtr& packet, net::NodeId from) {
        dispatch(packet, from);
      });
  protocol_->setDeliverCallback(
      [this](net::GroupId group, net::NodeId source, std::uint32_t seq,
             const net::PacketPtr& packet, std::span<const std::uint8_t> payload) {
        sink_.onDeliver(group, source, seq, packet, payload);
      });
}

void MeshNode::start() { probes_->start(); }

void MeshNode::joinGroup(net::GroupId group) { protocol_->joinGroup(group); }

void MeshNode::addCbrSource(const app::CbrConfig& config) {
  MESH_REQUIRE(cbr_ == nullptr);  // one CBR flow per node, like the paper
  cbr_ = std::make_unique<app::CbrSource>(simulator_, *protocol_, config,
                                          Rng{radio_.nodeId()}.fork("cbr"));
  cbr_->start();
}

void MeshNode::dispatch(const net::PacketPtr& packet, net::NodeId from) {
  switch (packet->kind()) {
    case net::PacketKind::Probe:
      bytes_.probeBytesReceived += packet->sizeBytes();
      probes_->onPacket(packet, simulator_.now());
      break;
    case net::PacketKind::Control:
      bytes_.controlBytesReceived += packet->sizeBytes();
      protocol_->onPacket(packet, from);
      break;
    case net::PacketKind::Data:
      bytes_.dataBytesReceived += packet->sizeBytes();
      protocol_->onPacket(packet, from);
      break;
    case net::PacketKind::MacControl:
      break;  // never reaches the dispatch layer
  }
}

}  // namespace mesh::harness
