file(REMOVE_RECURSE
  "libmesh_maodv.a"
)
