# Empty compiler generated dependencies file for bench_mobility.
# This may be replaced when dependencies are built.
