#pragma once
// ProbeService: periodic link probing on one node.
//
// Broadcasts probes on the schedule the metric asks for (single probes or
// packet pairs), with ±10% jitter to avoid fleet-wide synchronization, and
// feeds received probes into the NeighborTable. The service sends real
// packets through the real MAC: probe traffic contends with data traffic,
// which is precisely the overhead-vs-freshness tradeoff of Section 4.2.2
// (and the reason ODMRP_ETT loses to ODMRP_ETX despite similar loss
// estimation).
//
// `rateScale` divides the probe interval: 5.0 probes five times as often
// ("Throughput-high overhead" column), 0.1 ten times less often.

#include <cstdint>
#include <functional>

#include "mesh/common/rng.hpp"
#include "mesh/metrics/neighbor_table.hpp"
#include "mesh/metrics/probe_messages.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/sim/timer.hpp"

namespace mesh::trace {
class TraceCollector;
}

namespace mesh::metrics {

struct ProbeServiceStats {
  std::uint64_t probesSent{0};
  std::uint64_t probeBytesSent{0};
  std::uint64_t probesReceived{0};
  std::uint64_t probeBytesReceived{0};
};

// Adaptive probing (the paper's Section 6 future work: "investigate more
// about the optimal probing rate"). The controller watches the fraction of
// time the medium reads busy between probe cycles and stretches the probe
// interval (up to maxSlowdown x) when the channel is loaded — probes are
// the first traffic to yield, because their benefit (fresher link state)
// is worth least exactly when they cost most (interference with data,
// Section 4.2.2).
struct AdaptiveProbing {
  bool enabled{false};
  double busyHi{0.40};       // above this: slow down
  double busyLo{0.20};       // below this: speed back up
  double step{1.25};         // multiplicative interval adjustment
  double maxSlowdown{4.0};
};

class ProbeService {
 public:
  using SendFn = std::function<void(net::PacketPtr)>;  // broadcast via MAC

  // `busyTime` (optional) returns the radio's cumulative medium-busy time;
  // required only when `adaptive.enabled`.
  ProbeService(sim::Simulator& simulator, net::NodeId self, ProbeConfig config,
               double rateScale, NeighborTable& table, SendFn send, Rng rng,
               AdaptiveProbing adaptive = {},
               std::function<SimTime()> busyTime = nullptr);

  // Begin the periodic schedule (no-op for ProbeMode::None). The first
  // probe goes out after a random fraction of the interval so nodes
  // desynchronize from simulation start.
  void start();
  void stop();

  // Feed a received packet of kind Probe.
  void onPacket(const net::PacketPtr& packet, SimTime now);

  const ProbeServiceStats& stats() const { return stats_; }
  SimTime effectiveInterval() const { return interval_.scaled(slowdown_); }
  double currentSlowdown() const { return slowdown_; }

  // Observability: ProbeTx records for every probe handed to the MAC.
  void setTrace(trace::TraceCollector* collector) { trace_ = collector; }

  // Attach a rate controller (null = legacy probes, byte-identical wire
  // format). Probes then carry the controller's per-rate sequence numbers
  // and echo delivery feedback — the measurement channel Minstrel rides,
  // reusing the probe schedule instead of adding traffic.
  void setRateController(rate::RateController* controller) {
    rateController_ = controller;
  }

 private:
  void sendProbes();
  void adjustSlowdown();

  sim::Simulator& simulator_;
  net::NodeId self_;
  ProbeConfig config_;
  SimTime interval_{SimTime::zero()};
  NeighborTable& table_;
  SendFn send_;
  trace::TraceCollector* trace_{nullptr};
  rate::RateController* rateController_{nullptr};
  Rng rng_;
  sim::PeriodicTimer timer_;
  std::uint32_t seq_{0};
  ProbeServiceStats stats_;

  AdaptiveProbing adaptive_;
  std::function<SimTime()> busyTime_;
  double slowdown_{1.0};
  SimTime lastCycleAt_{SimTime::zero()};
  SimTime lastBusyTotal_{SimTime::zero()};
};

}  // namespace mesh::metrics
