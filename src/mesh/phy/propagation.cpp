#include "mesh/phy/propagation.hpp"

#include <cmath>

namespace mesh::phy {
namespace {
constexpr double kPi = 3.14159265358979323846;
// Co-located radios would yield infinite Friis power; clamp distance.
constexpr double kMinDistanceM = 0.1;
}  // namespace

double FriisModel::atDistance(const PhyParams& p, double d) {
  d = std::max(d, kMinDistanceM);
  const double lambda = p.wavelengthM();
  const double denom = 4.0 * kPi * d;
  return p.txPowerW * p.antennaGainTx * p.antennaGainRx * lambda * lambda /
         (denom * denom * p.systemLoss);
}

double FriisModel::rxPowerW(const PhyParams& p, Vec2 tx, Vec2 rx) const {
  return atDistance(p, tx.distanceTo(rx));
}

double TwoRayGroundModel::crossoverDistanceM(const PhyParams& p) {
  return 4.0 * kPi * p.antennaHeightM * p.antennaHeightM / p.wavelengthM();
}

double TwoRayGroundModel::atDistance(const PhyParams& p, double d) {
  d = std::max(d, kMinDistanceM);
  if (d < crossoverDistanceM(p)) return FriisModel::atDistance(p, d);
  const double ht = p.antennaHeightM;
  const double hr = p.antennaHeightM;
  return p.txPowerW * p.antennaGainTx * p.antennaGainRx * ht * ht * hr * hr /
         (d * d * d * d * p.systemLoss);
}

double TwoRayGroundModel::rxPowerW(const PhyParams& p, Vec2 tx, Vec2 rx) const {
  return atDistance(p, tx.distanceTo(rx));
}

double LogDistanceModel::rxPowerW(const PhyParams& p, Vec2 tx, Vec2 rx) const {
  const double d = std::max(tx.distanceTo(rx), kMinDistanceM);
  const double pr0 = FriisModel::atDistance(p, referenceDistanceM_);
  if (d <= referenceDistanceM_) return pr0;
  return pr0 / std::pow(d / referenceDistanceM_, exponent_);
}

}  // namespace mesh::phy
