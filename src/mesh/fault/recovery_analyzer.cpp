#include "mesh/fault/recovery_analyzer.hpp"

#include "mesh/common/assert.hpp"

namespace mesh::fault {
namespace {

constexpr SimTime kRepairPollInterval = SimTime::milliseconds(100);
// A crash with no delivery after this long counts as unresolved rather
// than skewing the mean with an arbitrarily large tail.
constexpr SimTime kRepairCap = SimTime::seconds(std::int64_t{30});

constexpr const char* kOriginated = "route.data_originated";
constexpr const char* kDelivered = "app.packets_delivered";
constexpr const char* kControlBytes = "route.control_bytes_sent";

}  // namespace

RecoveryAnalyzer::RecoveryAnalyzer(sim::Simulator& simulator,
                                   const trace::CounterRegistry& counters,
                                   const FaultSchedule& schedule,
                                   SimTime horizon, double fanout)
    : simulator_{simulator},
      counters_{counters},
      schedule_{schedule},
      horizon_{horizon},
      fanout_{fanout} {
  MESH_REQUIRE(horizon_ > SimTime::zero());
  MESH_REQUIRE(fanout_ >= 0.0);
}

RecoveryAnalyzer::Snapshot RecoveryAnalyzer::take() const {
  return Snapshot{counters_.value(kOriginated), counters_.value(kDelivered),
                  counters_.value(kControlBytes)};
}

void RecoveryAnalyzer::arm() {
  MESH_REQUIRE(!armed_);
  armed_ = true;
  if (schedule_.empty()) return;

  windows_ = schedule_.mergedWindows(horizon_);
  windowStarts_.resize(windows_.size());
  windowEnds_.resize(windows_.size());
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    simulator_.scheduleAt(windows_[i].first,
                          [this, i] { windowStarts_[i] = take(); });
    simulator_.scheduleAt(windows_[i].second,
                          [this, i] { windowEnds_[i] = take(); });
  }

  for (const FaultEvent& event : schedule_.events()) {
    if (event.kind != trace::FaultKind::NodeCrash) continue;
    if (event.start >= horizon_) continue;
    const std::size_t index = probes_.size();
    probes_.push_back(RepairProbe{});
    simulator_.scheduleAt(event.start,
                          [this, index] { beginRepairProbe(index); });
  }
}

void RecoveryAnalyzer::beginRepairProbe(std::size_t index) {
  RepairProbe& probe = probes_[index];
  probe.crashAt = simulator_.now();
  probe.baseDelivered = counters_.value(kDelivered);
  simulator_.schedule(kRepairPollInterval, [this, index] { pollRepair(index); });
}

void RecoveryAnalyzer::pollRepair(std::size_t index) {
  RepairProbe& probe = probes_[index];
  if (probe.resolved) return;
  if (counters_.value(kDelivered) > probe.baseDelivered) {
    probe.resolved = true;
    probe.repairedAt = simulator_.now();
    return;
  }
  const SimTime now = simulator_.now();
  if (now - probe.crashAt >= kRepairCap || now >= horizon_) return;
  simulator_.schedule(kRepairPollInterval, [this, index] { pollRepair(index); });
}

RecoveryReport RecoveryAnalyzer::report() const {
  RecoveryReport report;
  for (const FaultEvent& event : schedule_.events()) {
    if (event.start >= horizon_) continue;
    ++report.faultsApplied;
    if (!event.duration.isZero() &&
        event.start + event.duration <= horizon_) {
      ++report.faultsCleared;
    }
  }
  const SimTime window = schedule_.faultWindow(horizon_);
  report.faultWindowS = window.toSeconds();
  if (!armed_ || windows_.empty()) {
    // Fault-free run (or never armed): everything is "outside".
    const Snapshot total = take();
    const double expected = static_cast<double>(total.originated) * fanout_;
    report.outWindowPdr =
        expected > 0.0 ? static_cast<double>(total.delivered) / expected : 0.0;
    const double runS = horizon_.toSeconds();
    report.outWindowControlBps =
        runS > 0.0 ? static_cast<double>(total.controlBytes) / runS : 0.0;
    return report;
  }

  Snapshot in;  // deltas summed across all merged windows
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    in.originated += windowEnds_[i].originated - windowStarts_[i].originated;
    in.delivered += windowEnds_[i].delivered - windowStarts_[i].delivered;
    in.controlBytes +=
        windowEnds_[i].controlBytes - windowStarts_[i].controlBytes;
  }
  const Snapshot total = take();
  const Snapshot out{total.originated - in.originated,
                     total.delivered - in.delivered,
                     total.controlBytes - in.controlBytes};

  const double inExpected = static_cast<double>(in.originated) * fanout_;
  const double outExpected = static_cast<double>(out.originated) * fanout_;
  report.inWindowPdr =
      inExpected > 0.0 ? static_cast<double>(in.delivered) / inExpected : 0.0;
  report.outWindowPdr = outExpected > 0.0
                            ? static_cast<double>(out.delivered) / outExpected
                            : 0.0;

  const double inS = window.toSeconds();
  const double outS = (horizon_ - window).toSeconds();
  report.inWindowControlBps =
      inS > 0.0 ? static_cast<double>(in.controlBytes) / inS : 0.0;
  report.outWindowControlBps =
      outS > 0.0 ? static_cast<double>(out.controlBytes) / outS : 0.0;
  report.overheadInflation = report.outWindowControlBps > 0.0
                                 ? report.inWindowControlBps /
                                       report.outWindowControlBps
                                 : 0.0;

  double repairSum = 0.0;
  for (const RepairProbe& probe : probes_) {
    if (probe.resolved) {
      ++report.repairsObserved;
      repairSum += (probe.repairedAt - probe.crashAt).toSeconds();
    } else {
      ++report.repairsUnresolved;
    }
  }
  report.meanTimeToRepairS =
      report.repairsObserved > 0
          ? repairSum / static_cast<double>(report.repairsObserved)
          : 0.0;
  return report;
}

}  // namespace mesh::fault
