// Tests for the library's extensions beyond the paper's core:
//  * TreeMulticast (MAODV-inspired tree-based protocol, Section 4.3),
//  * neighbor reports + bidirectional ETX (the Section 2.1 ablation),
//  * adaptive probing (Section 6 future work).

#include <gtest/gtest.h>

#include <memory>

#include "mesh/harness/scenario.hpp"
#include "mesh/maodv/tree_multicast.hpp"
#include "mesh/phy/static_link_model.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;
using harness::GroupSpec;
using harness::ProtocolSpec;
using harness::ScenarioConfig;
using harness::Simulation;

constexpr double kGoodPower = 1e-8;

ScenarioConfig chainScenario(ProtocolSpec protocol, std::uint64_t seed = 13) {
  ScenarioConfig config;
  config.nodeCount = 3;
  config.protocol = protocol;
  config.seed = seed;
  config.duration = 120_s;
  config.traffic.start = 40_s;
  config.traffic.stop = 110_s;
  config.groups = {GroupSpec{1, {0}, {2}}};
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(3);
    model->setSymmetric(0, 1, kGoodPower);
    model->setSymmetric(1, 2, kGoodPower);
    return model;
  };
  return config;
}

// ---------------------------------------------------------- TreeMulticast

TEST(TreeMulticast, DeliversOverChain) {
  Simulation sim{chainScenario(ProtocolSpec::treeOriginal())};
  const auto results = sim.run();
  // A tree has no redundancy: one collided JOIN REPLY (nodes 0 and 2 are
  // hidden from each other at node 1) lapses the relay's flag for a whole
  // round, so some single-digit loss is structural — ODMRP's 3-round FG
  // masks the same collisions.
  EXPECT_GT(results.pdr, 0.85);
  EXPECT_TRUE(sim.node(1).protocol().isForwarder(1));
}

TEST(TreeMulticast, MetricVariantDeliversOverChain) {
  for (const auto kind : {metrics::MetricKind::Etx, metrics::MetricKind::Spp}) {
    Simulation sim{chainScenario(ProtocolSpec::tree(kind))};
    const auto results = sim.run();
    EXPECT_GT(results.pdr, 0.85) << metrics::toString(kind);
  }
}

TEST(TreeMulticast, ForwarderStateIsPerSource) {
  // Two sources in one group; the relay serves only one of them, so its
  // per-source tree flag must distinguish them (ODMRP's per-group FG
  // would not).
  //    0 — 1 — 2(member)      3 — 2: second source adjacent to the member
  ScenarioConfig config;
  config.nodeCount = 4;
  config.protocol = ProtocolSpec::treeOriginal();
  config.seed = 3;
  config.duration = 90_s;
  config.traffic.start = 30_s;
  config.traffic.stop = 80_s;
  config.groups = {GroupSpec{1, {0, 3}, {2}}};
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(4);
    model->setSymmetric(0, 1, kGoodPower);
    model->setSymmetric(1, 2, kGoodPower);
    model->setSymmetric(3, 2, kGoodPower);
    return model;
  };
  Simulation sim{std::move(config)};
  sim.run();
  auto& relay = dynamic_cast<maodv::TreeMulticast&>(sim.node(1).protocol());
  EXPECT_TRUE(relay.isTreeForwarder(1, 0));   // on source 0's tree
  EXPECT_FALSE(relay.isTreeForwarder(1, 3));  // not on source 3's tree
}

TEST(TreeMulticast, NoMeshRedundancy) {
  // Diamond with CSMA: ODMRP's per-group mesh lets both relays forward
  // (duplicates arrive); the tree keeps exactly one relay per round.
  auto build = [](ProtocolSpec protocol) {
    ScenarioConfig config;
    config.nodeCount = 4;
    config.protocol = protocol;
    config.seed = 9;
    config.duration = 120_s;
    config.traffic.start = 30_s;
    config.traffic.stop = 110_s;
    config.groups = {GroupSpec{1, {0}, {3}}};
    config.linkModelFactory = [](sim::Simulator&, Rng&) {
      auto model = std::make_unique<phy::StaticLinkModel>(4);
      model->setSymmetric(0, 1, kGoodPower);
      model->setSymmetric(0, 2, kGoodPower);
      model->setSymmetric(1, 3, kGoodPower);
      model->setSymmetric(2, 3, kGoodPower);
      model->setSymmetric(1, 2, kGoodPower);
      return model;
    };
    return config;
  };
  Simulation odmrpSim{build(ProtocolSpec::original())};
  const auto odmrpResults = odmrpSim.run();
  Simulation treeSim{build(ProtocolSpec::treeOriginal())};
  const auto treeResults = treeSim.run();

  EXPECT_GT(odmrpResults.pdr, 0.98);
  EXPECT_GT(treeResults.pdr, 0.90);
  // The mesh's persistent per-group forwarding group masks losses the
  // redundancy-free tree cannot: ODMRP ends up at least as reliable, and
  // the member sees duplicate copies under the mesh.
  EXPECT_GE(odmrpResults.pdr, treeResults.pdr);
  EXPECT_GE(odmrpSim.node(3).protocol().stats().dataDuplicates,
            treeSim.node(3).protocol().stats().dataDuplicates);
}

TEST(TreeMulticast, MetricsMatterMoreWithoutRedundancy) {
  // The Section 4.3 argument, inverted: on a lossy-shortcut topology the
  // tree-based protocol (no redundancy to mask mistakes) gains more from
  // a metric than ODMRP does.
  auto build = [](ProtocolSpec protocol) {
    ScenarioConfig config;
    config.nodeCount = 3;
    config.protocol = protocol;
    config.seed = 17;
    config.duration = 200_s;
    config.traffic.start = 60_s;
    config.traffic.stop = 190_s;
    config.groups = {GroupSpec{1, {0}, {2}}};
    config.linkModelFactory = [](sim::Simulator&, Rng&) {
      auto model = std::make_unique<phy::StaticLinkModel>(3);
      model->setSymmetric(0, 1, kGoodPower);
      model->setSymmetric(1, 2, kGoodPower);
      model->setSymmetric(0, 2, kGoodPower);
      model->setSymmetricLossRate(0, 2, 0.6);
      return model;
    };
    return config;
  };
  const auto pdrOf = [&](ProtocolSpec protocol) {
    Simulation sim{build(protocol)};
    return sim.run().pdr;
  };
  const double treePlain = pdrOf(ProtocolSpec::treeOriginal());
  const double treeSpp = pdrOf(ProtocolSpec::tree(metrics::MetricKind::Spp));
  EXPECT_GT(treeSpp, treePlain + 0.08);
}

// ------------------------------------------------- BiETX / reverse links

TEST(NeighborReports, ReverseDfLearnedFromReports) {
  ScenarioConfig config = chainScenario(
      ProtocolSpec::with(metrics::MetricKind::BiEtx), /*seed=*/23);
  Simulation sim{std::move(config)};
  sim.run();
  const auto m = sim.node(1).neighborTable().measure(0, 120_s);
  ASSERT_TRUE(m.hasReverse);
  EXPECT_NEAR(m.reverseDf, 1.0, 0.15);
}

TEST(NeighborReports, AsymmetricLinkMeasuredCorrectly) {
  // 0 -> 1 clean, 1 -> 0 drops 60%. Node 1's table must show df ~ 1 and
  // reverse ~ 0.4.
  ScenarioConfig config;
  config.nodeCount = 2;
  config.protocol = ProtocolSpec::with(metrics::MetricKind::BiEtx);
  config.seed = 29;
  config.duration = 300_s;
  config.traffic.start = 30_s;
  config.traffic.stop = 290_s;
  config.groups = {GroupSpec{1, {0}, {1}}};
  config.linkModelFactory = [](sim::Simulator&, Rng&) {
    auto model = std::make_unique<phy::StaticLinkModel>(2);
    model->setSymmetric(0, 1, kGoodPower);
    model->setLossRate(1, 0, 0.6);
    return model;
  };
  Simulation sim{std::move(config)};
  sim.run();
  const auto m = sim.node(1).neighborTable().measure(0, 300_s);
  EXPECT_NEAR(m.df, 1.0, 0.12);
  ASSERT_TRUE(m.hasReverse);
  EXPECT_NEAR(m.reverseDf, 0.4, 0.25);
}

TEST(BiEtx, PenalizesReverseDirection) {
  const auto biEtx = metrics::makeMetric(metrics::MetricKind::BiEtx);
  metrics::LinkMeasurement m;
  m.df = 1.0;
  EXPECT_TRUE(std::isinf(biEtx->linkCost(m)));  // reverse unknown
  m.hasReverse = true;
  m.reverseDf = 0.25;
  EXPECT_DOUBLE_EQ(biEtx->linkCost(m), 4.0);  // perfect forward, cost 4!
  const auto etx = metrics::makeMetric(metrics::MetricKind::Etx);
  EXPECT_DOUBLE_EQ(etx->linkCost(m), 1.0);    // forward-only is right
}

TEST(BiEtx, ProbesCarryReportsAndGrowOverhead) {
  ScenarioConfig biConfig = chainScenario(
      ProtocolSpec::with(metrics::MetricKind::BiEtx), 31);
  Simulation biSim{std::move(biConfig)};
  const auto biResults = biSim.run();
  ScenarioConfig etxConfig = chainScenario(
      ProtocolSpec::with(metrics::MetricKind::Etx), 31);
  Simulation etxSim{std::move(etxConfig)};
  const auto etxResults = etxSim.run();
  // Reports fit the 137 B padding at this scale, so overhead is equal;
  // both delivered fine on the clean chain.
  EXPECT_GT(biResults.pdr, 0.97);
  EXPECT_GE(biResults.probeBytesReceived, etxResults.probeBytesReceived);
}

// --------------------------------------------------------- adaptive rate

TEST(AdaptiveProbing, BacksOffUnderLoadAndRecovers) {
  // Probing at 1 s intervals (rateScale 5) on a loaded channel: the
  // controller must stretch the interval; with no load it must stay at 1x.
  ScenarioConfig loaded = chainScenario(
      ProtocolSpec{metrics::MetricKind::Etx, 5.0, harness::Routing::Odmrp, true},
      37);
  loaded.traffic.packetsPerSecond = 110.0;  // keep the medium busy
  Simulation loadedSim{std::move(loaded)};
  loadedSim.run();
  EXPECT_GT(loadedSim.node(1).probes().currentSlowdown(), 1.5);

  ScenarioConfig idle = chainScenario(
      ProtocolSpec{metrics::MetricKind::Etx, 5.0, harness::Routing::Odmrp, true},
      37);
  idle.traffic.packetsPerSecond = 0.5;
  Simulation idleSim{std::move(idle)};
  idleSim.run();
  EXPECT_LT(idleSim.node(1).probes().currentSlowdown(), 1.5);
}

TEST(AdaptiveProbing, ReducesProbeTrafficVsFixed) {
  auto probesSent = [](bool adaptive) {
    ScenarioConfig config = chainScenario(
        ProtocolSpec{metrics::MetricKind::Etx, 5.0, harness::Routing::Odmrp,
                     adaptive},
        41);
    config.traffic.packetsPerSecond = 110.0;
    Simulation sim{std::move(config)};
    sim.run();
    return sim.node(0).probes().stats().probesSent;
  };
  EXPECT_LT(probesSent(true), probesSent(false) * 3 / 4);
}

TEST(AdaptiveProbing, RadioBusyTimeAccumulates) {
  Simulation sim{chainScenario(ProtocolSpec::original(), 43)};
  sim.run();
  const SimTime busy = sim.node(1).radio().busyTime();
  EXPECT_GT(busy, 1_s);               // plenty of traffic heard
  EXPECT_LT(busy, 120_s);             // but not always busy
}

}  // namespace
}  // namespace mesh
