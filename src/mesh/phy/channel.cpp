#include "mesh/phy/channel.hpp"

#include "mesh/common/log.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::phy {
namespace {
constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
}

Channel::Channel(sim::Simulator& simulator, std::unique_ptr<LinkModel> linkModel,
                 Rng rng, double fadingHeadroom)
    : simulator_{simulator},
      linkModel_{std::move(linkModel)},
      rng_{rng},
      fadingHeadroom_{fadingHeadroom},
      cacheMeans_{linkModel_ != nullptr && linkModel_->meansCacheable()} {
  MESH_REQUIRE(linkModel_ != nullptr);
  MESH_REQUIRE(fadingHeadroom_ >= 1.0);
}

void Channel::attach(Radio& radio) {
  MESH_REQUIRE(!attachClosed_);
  radios_.push_back(&radio);
  radio.attachChannel(this, radios_.size() - 1);
}

void Channel::overrideLinkLoss(net::NodeId a, net::NodeId b, double loss) {
  MESH_REQUIRE(a != b);
  MESH_REQUIRE(loss >= 0.0 && loss <= 1.0);
  linkLoss_[net::LinkKey{a, b}] = loss;
  linkLoss_[net::LinkKey{b, a}] = loss;
}

void Channel::clearLinkLoss(net::NodeId a, net::NodeId b) {
  linkLoss_.erase(net::LinkKey{a, b});
  linkLoss_.erase(net::LinkKey{b, a});
}

Radio* Channel::findRadio(net::NodeId node) const {
  for (Radio* radio : radios_) {
    if (radio->nodeId() == node) return radio;
  }
  return nullptr;
}

void Channel::buildReachability() {
  reachable_.assign(radios_.size(), {});
  for (std::size_t tx = 0; tx < radios_.size(); ++tx) {
    // A failed radio keeps an empty receiver set (it cannot radiate) and
    // never appears in anyone else's set (it cannot hear). The injector
    // invalidates the cache on every fail/recover so this stays current.
    if (radios_[tx]->failed()) continue;
    const double csThreshold = radios_[tx]->params().csThresholdW;
    for (std::size_t rx = 0; rx < radios_.size(); ++rx) {
      if (rx == tx || radios_[rx]->failed()) continue;
      const double mean = linkModel_->meanRxPowerW(radios_[tx]->nodeId(),
                                                   radios_[rx]->nodeId());
      if (mean * fadingHeadroom_ < csThreshold) continue;
      if (cacheMeans_) {
        const double distance =
            linkModel_->distanceM(radios_[tx]->nodeId(), radios_[rx]->nodeId());
        reachable_[tx].push_back(
            CachedLink{static_cast<std::uint32_t>(rx), mean,
                       SimTime::seconds(distance / kSpeedOfLight)});
      } else {
        // Mobility: the per-transmission loop re-queries power and distance
        // live, so deriving them here would be dead work — record only the
        // receiver index.
        reachable_[tx].push_back(CachedLink{static_cast<std::uint32_t>(rx),
                                            0.0, SimTime::zero()});
      }
    }
  }
  reachabilityBuilt_ = true;
  attachClosed_ = true;
  reachabilityBuiltAt_ = simulator_.now();
  ++stats_.reachabilityRebuilds;
  if (cacheMeans_) {
    ++stats_.cachedRebuilds;
  } else {
    ++stats_.liveRebuilds;
  }
}

bool Channel::lossSuppressed(net::NodeId tx, net::NodeId rx,
                             const PhyFramePtr& frame) {
  const auto it = linkLoss_.find(net::LinkKey{tx, rx});
  if (it == linkLoss_.end()) return false;
  // A full blackout consumes no RNG draw: the pre- and post-fault segments
  // of the run keep their draw sequence aligned with a fault-free run.
  const bool suppressed = it->second >= 1.0 || rng_.bernoulli(it->second);
  if (!suppressed) return false;
  ++stats_.faultSuppressedDeliveries;
  if (trace_ != nullptr) {
    trace_->drop(simulator_.now(), rx, frame->payload.get(),
                 frame->payload != nullptr ? frame->payload->kind()
                                           : net::PacketKind::MacControl,
                 static_cast<std::uint32_t>(frame->sizeBytes()),
                 trace::DropReason::FaultLinkDown);
  }
  return true;
}

void Channel::transmit(Radio& sender, const PhyFramePtr& frame,
                       SimTime airtime) {
  // Staleness first, before anything can consult the cache — and inclusive
  // (>=), so a refresh interval of exactly the elapsed delta rebuilds
  // instead of sliding one transmission past its deadline.
  if (reachabilityBuilt_ && !refreshInterval_.isZero() &&
      simulator_.now() - reachabilityBuiltAt_ >= refreshInterval_) {
    reachabilityBuilt_ = false;  // stale under mobility: rebuild below
  }
  if (!reachabilityBuilt_) buildReachability();
  ++stats_.transmissions;

  const std::size_t txIndex = sender.channelIndex();
  MESH_ASSERT(txIndex < radios_.size() && radios_[txIndex] == &sender);
  const net::NodeId txNode = sender.nodeId();

  if (cacheMeans_) {
    // Hot path: flat slab of precomputed (receiver, mean, delay); the only
    // virtual call left is the per-frame sampling draw.
    for (const CachedLink& link : reachable_[txIndex]) {
      Radio& receiver = *radios_[link.rxIndex];
      if (!linkLoss_.empty() &&
          lossSuppressed(txNode, receiver.nodeId(), frame)) {
        continue;
      }
      const double powerW = linkModel_->samplePowerGivenMeanW(
          txNode, receiver.nodeId(), link.meanPowerW, rng_);
      // Signals with no carrier-sense significance are not worth an event.
      if (powerW < receiver.params().csThresholdW * 1e-3) continue;
      ++stats_.deliveriesScheduled;
      simulator_.schedule(link.propagation,
                          [&receiver, frame, txNode, powerW, airtime] {
                            receiver.beginArrival(frame, txNode, powerW, airtime);
                          });
    }
    return;
  }

  // Mobility: positions change between rebuilds, so power and delay are
  // queried live (the cache still bounds the fan-out via its headroom).
  for (const CachedLink& link : reachable_[txIndex]) {
    Radio& receiver = *radios_[link.rxIndex];
    if (!linkLoss_.empty() &&
        lossSuppressed(txNode, receiver.nodeId(), frame)) {
      continue;
    }
    const double powerW =
        linkModel_->sampleRxPowerW(txNode, receiver.nodeId(), rng_);
    if (powerW < receiver.params().csThresholdW * 1e-3) continue;

    const double distance = linkModel_->distanceM(txNode, receiver.nodeId());
    const SimTime propagation = SimTime::seconds(distance / kSpeedOfLight);
    ++stats_.deliveriesScheduled;
    simulator_.schedule(propagation,
                        [&receiver, frame, txNode, powerW, airtime] {
                          receiver.beginArrival(frame, txNode, powerW, airtime);
                        });
  }
}

}  // namespace mesh::phy
