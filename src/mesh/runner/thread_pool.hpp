#pragma once
// Work-stealing thread pool for the experiment runner.
//
// Fixed worker count. Each worker owns a deque: the owner pushes and pops
// at the front (LIFO keeps caches warm for fine jobs), and idle workers
// steal from the back of a victim's deque — the classic work-stealing
// arrangement. The deques are guarded by small per-deque mutexes: runner
// jobs are whole simulations that execute for seconds, so queue operations
// are noise and a lock-free Chase–Lev deque would buy nothing.
//
// Jobs are fire-and-forget std::function<void()>. A job that throws is
// caught and counted (`jobsThrown()`) — one bad job must never take down
// the pool or deadlock `wait()`. Callers that need the exception payload
// catch inside the job body (the sweep runner records it per run).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mesh::runner {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  // workers == 0 selects one worker per hardware thread (at least 1).
  explicit ThreadPool(std::size_t workers = 0);

  // Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a job (round-robin across the worker deques).
  void submit(Job job);

  // Block until every job submitted so far has finished executing.
  void wait();

  std::size_t workerCount() const { return workers_.size(); }
  std::uint64_t jobsExecuted() const { return executed_.load(); }
  std::uint64_t jobsThrown() const { return thrown_.load(); }

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static std::size_t defaultWorkerCount();

 private:
  struct WorkDeque {
    std::mutex mutex;
    std::deque<Job> jobs;
  };

  // Pops the next job: own deque front first, then steal from the back of
  // the other deques. Returns false when every deque is empty.
  bool takeJob(std::size_t self, Job& out);
  bool anyQueuedLocked();  // requires stateMutex_ held
  void workerLoop(std::size_t self);

  std::vector<std::unique_ptr<WorkDeque>> deques_;
  std::vector<std::thread> workers_;

  // stateMutex_ orders submissions against sleeping workers; lock order is
  // always stateMutex_ before a deque mutex, never the reverse.
  std::mutex stateMutex_;
  std::condition_variable workReady_;
  std::condition_variable allDone_;
  std::size_t pending_{0};  // submitted but not yet finished
  bool stopping_{false};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> thrown_{0};
  std::atomic<std::uint64_t> nextDeque_{0};
};

}  // namespace mesh::runner
