// Hot-path overhaul guarantees: the allocation-free event core and the
// channel link cache must be invisible except for speed.
//
//  * (time, seq) ordering contract — the 4-ary slab heap pops in exactly
//    the order the original binary heap did: time-ascending, insertion
//    order within a tie. Verified against a recorded reference pop
//    sequence (stable sort by time over insertion order).
//  * Zero per-event heap allocations for captures ≤ 48 bytes, measured
//    with a global operator-new hook over a warmed-up queue.
//  * Determinism property: a 50-node ODMRP scenario run twice produces
//    byte-identical packet-lifecycle traces and identical aggregates.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mesh/harness/scenario.hpp"
#include "mesh/sim/event_queue.hpp"
#include "mesh/sim/small_callback.hpp"

// ------------------------------------------------------ allocation hooks
// Global counting operator new/delete: this test binary owns the global
// allocator surface, so the counter sees every heap allocation made
// between two reads (including any the queue would sneak in per event).

namespace {
std::atomic<std::uint64_t> g_newCalls{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_newCalls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  ++g_newCalls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mesh {
namespace {

using namespace mesh::time_literals;

// --------------------------------------------- (time, seq) pop contract

TEST(HotPath, PopSequenceMatchesStableSortByTime) {
  // The ordering contract of the original binary-heap queue, recorded as
  // a reference model: pops are a stable sort of the pushes by time.
  sim::EventQueue q;
  Rng rng{42};
  struct Ref {
    SimTime time;
    int tag;
  };
  std::vector<Ref> reference;
  std::vector<int> popped;
  const int kEvents = 500;
  for (int i = 0; i < kEvents; ++i) {
    // Few distinct times => many ties; ties must fire in push order.
    const SimTime t = SimTime::milliseconds(
        static_cast<std::int64_t>(rng.uniformInt(std::uint64_t{16})));
    reference.push_back(Ref{t, i});
    q.push(t, [i, &popped] { popped.push_back(i); });
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Ref& a, const Ref& b) { return a.time < b.time; });
  while (!q.empty()) q.pop().callback();

  ASSERT_EQ(popped.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(popped[i], reference[i].tag) << "at pop " << i;
  }
}

TEST(HotPath, PopSequenceWithCancellationsKeepsContract) {
  sim::EventQueue q;
  Rng rng{43};
  std::vector<std::pair<SimTime, int>> reference;
  std::vector<sim::EventId> ids;
  std::vector<int> popped;
  for (int i = 0; i < 300; ++i) {
    const SimTime t = SimTime::milliseconds(
        static_cast<std::int64_t>(rng.uniformInt(std::uint64_t{8})));
    ids.push_back(q.push(t, [i, &popped] { popped.push_back(i); }));
    reference.emplace_back(t, i);
  }
  // Cancel every third push; the survivors' relative order is unchanged.
  std::vector<std::pair<SimTime, int>> survivors;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(q.cancel(ids[i]));
    } else {
      survivors.push_back(reference[i]);
    }
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  while (!q.empty()) q.pop().callback();
  ASSERT_EQ(popped.size(), survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(popped[i], survivors[i].second);
  }
}

// ------------------------------------------------- allocation-free core

TEST(HotPath, SteadyStatePushPopAllocatesNothing) {
  sim::EventQueue q;
  Rng rng{44};
  // A 48-byte capture: the size of the channel's delivery lambda, the
  // largest capture on the simulator's hot path.
  struct Payload {
    std::array<unsigned char, 40> bytes;
    double* sink;
  };

  double sink = 0.0;
  std::int64_t t = 0;
  auto pushOne = [&] {
    Payload p{};
    p.sink = &sink;
    auto cb = [p] { *p.sink += 1.0; };
    static_assert(sim::SmallCallback::storedInline<decltype(cb)>(),
                  "hot-path payload must fit the inline buffer");
    q.push(SimTime::nanoseconds(
               t + static_cast<std::int64_t>(rng.uniformInt(std::uint64_t{1000}))),
           std::move(cb));
  };

  // Warm up: grow the slab, heap, and free list to steady state.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 256; ++i) pushOne();
    while (!q.empty()) {
      auto popped = q.pop();
      t = popped.time.ns();
      popped.callback();
    }
  }

  const std::uint64_t before = g_newCalls.load();
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 256; ++i) pushOne();
    while (!q.empty()) {
      auto popped = q.pop();
      t = popped.time.ns();
      popped.callback();
    }
  }
  const std::uint64_t after = g_newCalls.load();
  EXPECT_EQ(after, before)
      << "steady-state push/pop of <=48-byte captures must not allocate";
  EXPECT_GT(sink, 0.0);
}

TEST(HotPath, OversizedCapturesFallBackToHeap) {
  sim::EventQueue q;
  std::array<char, 96> big{};
  big[0] = 1;
  int out = 0;
  const std::uint64_t before = g_newCalls.load();
  q.push(1_s, [big, &out] { out = big[0]; });
  const std::uint64_t after = g_newCalls.load();
  EXPECT_GT(after, before);  // capture went to the heap fallback...
  q.pop().callback();
  EXPECT_EQ(out, 1);  // ...and still runs correctly
}

// --------------------------------------------- determinism property test

std::string fileBytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

harness::ScenarioConfig fiftyNodeOdmrpScenario(const std::string& tracePath) {
  harness::ScenarioConfig config = harness::paperSimulationScenario();
  config.seed = 12345;
  config.duration = 40_s;
  config.traffic.start = 5_s;
  config.traffic.stop = 40_s;
  Rng groupRng = Rng{config.seed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 2, 10, 1, groupRng);
  config.protocol = harness::ProtocolSpec::with(metrics::MetricKind::Spp);
  config.tracePath = tracePath;
  return config;
}

TEST(HotPath, FiftyNodeOdmrpRunIsByteIdenticalAcrossRuns) {
  const std::string dir = ::testing::TempDir();
  const std::string traceA = dir + "/hotpath_det_a.trace.jsonl";
  const std::string traceB = dir + "/hotpath_det_b.trace.jsonl";

  harness::Simulation simA{fiftyNodeOdmrpScenario(traceA)};
  const harness::RunResults a = simA.run();
  harness::Simulation simB{fiftyNodeOdmrpScenario(traceB)};
  const harness::RunResults b = simB.run();

  // Aggregates identical to the last bit...
  EXPECT_EQ(a.packetsSent, b.packetsSent);
  EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.pdr, b.pdr);
  EXPECT_EQ(a.meanDelayS, b.meanDelayS);
  EXPECT_EQ(a.throughputBps, b.throughputBps);
  EXPECT_EQ(a.probeOverheadPct, b.probeOverheadPct);

  // ...and the full packet-lifecycle trace byte-identical.
  const std::string bytesA = fileBytes(traceA);
  const std::string bytesB = fileBytes(traceB);
  ASSERT_FALSE(bytesA.empty());
  EXPECT_TRUE(bytesA == bytesB) << "trace outputs diverged";
  // A real simulation happened (tens of thousands of events minimum).
  EXPECT_GT(a.eventsExecuted, 100000u);
}

}  // namespace
}  // namespace mesh
