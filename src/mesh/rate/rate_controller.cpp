#include "mesh/rate/rate_controller.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "mesh/common/assert.hpp"

namespace mesh::rate {

const char* toString(ControlKind kind) {
  switch (kind) {
    case ControlKind::Fixed: return "fixed";
    case ControlKind::Minstrel: return "minstrel";
    case ControlKind::Genie: return "genie";
  }
  return "?";
}

bool controlKindFromString(const char* text, ControlKind& out) {
  for (const ControlKind kind :
       {ControlKind::Fixed, ControlKind::Minstrel, ControlKind::Genie}) {
    if (std::strcmp(text, toString(kind)) == 0) {
      out = kind;
      return true;
    }
  }
  return false;
}

RateController::RateController(const RateTable& table)
    : table_{table},
      probeSeq_(static_cast<std::size_t>(table.size()) + 1, 0) {}

std::uint32_t RateController::noteProbeSent(std::uint8_t code) {
  MESH_REQUIRE(code >= 1 && code <= table_.size());
  return ++probeSeq_[code];
}

// ---------------------------------------------------------------- Minstrel

MinstrelController::MinstrelController(const RateTable& table,
                                       MinstrelConfig config)
    : RateController{table},
      config_{config},
      cached_{TxVector{table.basicCode()}} {}

void MinstrelController::RxWindow::onProbe(std::uint32_t seq) {
  if (!started || seq <= lastSeq) {
    started = true;
    lastSeq = seq;
    history = 1;
    filled = 1;
    return;
  }
  const std::uint32_t gap = seq - lastSeq;  // 1 = no loss
  const unsigned shift = gap > 16 ? 16u : static_cast<unsigned>(gap);
  history = static_cast<std::uint16_t>(
      shift >= 16 ? 1u : ((static_cast<unsigned>(history) << shift) | 1u));
  const unsigned full = static_cast<unsigned>(filled) + shift;
  filled = static_cast<std::uint8_t>(full > 16 ? 16u : full);
  lastSeq = seq;
}

double MinstrelController::RxWindow::df() const {
  if (filled == 0) return 0.0;
  const unsigned mask =
      filled >= 16 ? 0xFFFFu : ((1u << filled) - 1u);
  const int got = std::popcount(static_cast<unsigned>(history) & mask);
  return static_cast<double>(got) / static_cast<double>(filled);
}

void MinstrelController::onProbeHeard(net::NodeId from, std::uint8_t code,
                                      std::uint32_t seq) {
  if (code < 1 || code > table_.size()) return;
  rxWindows_[{from, code}].onProbe(seq);
}

void MinstrelController::onRateFeedback(net::NodeId from, std::uint8_t code,
                                        double df) {
  if (code < 1 || code > table_.size()) return;
  auto [it, inserted] = txProb_.try_emplace(
      from, std::vector<double>(static_cast<std::size_t>(table_.size()) + 1,
                                -1.0));
  double& prob = it->second[code];
  prob = prob < 0.0 ? df
                    : config_.ewmaWeight * prob +
                          (1.0 - config_.ewmaWeight) * df;
  dirty_ = true;
}

void MinstrelController::buildRateReport(std::vector<RateFeedbackEntry>& out,
                                         std::size_t maxEntries) {
  if (rxWindows_.empty() || maxEntries == 0) return;
  // Rotate a cursor across the map so successive small probes cover the
  // whole (neighbor, rate) state even when it doesn't fit in one report.
  const std::size_t total = rxWindows_.size();
  std::size_t start = reportCursor_ % total;
  auto it = rxWindows_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(start));
  const std::size_t count = std::min(maxEntries, total);
  for (std::size_t i = 0; i < count; ++i) {
    if (it == rxWindows_.end()) it = rxWindows_.begin();
    const double df = it->second.df();
    out.push_back(RateFeedbackEntry{
        it->first.first, it->first.second,
        static_cast<std::uint8_t>(std::lround(df * 255.0))});
    ++it;
  }
  reportCursor_ = (start + count) % total;
}

double MinstrelController::successProb(net::NodeId neighbor,
                                       std::uint8_t code) const {
  const auto it = txProb_.find(neighbor);
  if (it == txProb_.end() || code < 1 || code > table_.size()) return -1.0;
  return it->second[code];
}

void MinstrelController::recompute() {
  dirty_ = false;
  cached_ = TxVector{table_.basicCode()};
  if (txProb_.empty()) return;
  double bestScore = 0.0;
  std::vector<double> probs;
  for (std::uint8_t code = 1; code <= table_.size(); ++code) {
    probs.clear();
    for (const auto& [neighbor, perRate] : txProb_) {
      if (perRate[code] >= 0.0) probs.push_back(perRate[code]);
    }
    if (probs.empty()) continue;
    std::sort(probs.begin(), probs.end());
    const std::size_t idx = static_cast<std::size_t>(
        config_.coverageQuantile * static_cast<double>(probs.size() - 1));
    const double coverage = probs[idx];
    if (coverage < config_.minProb && code != table_.basicCode()) continue;
    const double score = table_.info(code).bitRateBps * coverage;
    if (score > bestScore) {
      bestScore = score;
      cached_ = TxVector{code};
    }
  }
}

TxVector MinstrelController::dataVector() {
  if (dirty_) recompute();
  return cached_;
}

TxVector MinstrelController::probeVector() {
  ++probeCount_;
  const TxVector data = dataVector();
  if (table_.size() < 2 || config_.lookaroundPeriod <= 0 ||
      probeCount_ % static_cast<std::uint32_t>(config_.lookaroundPeriod) !=
          0) {
    return data;
  }
  // Round-robin over the other rates: each lookaround probe samples the
  // next code, skipping the current data rate.
  std::uint8_t code = lookaroundNext_;
  if (code == data.code) {
    code = static_cast<std::uint8_t>(code % table_.size() + 1);
  }
  lookaroundNext_ = static_cast<std::uint8_t>(code % table_.size() + 1);
  return TxVector{code};
}

TxVector MinstrelController::unicastVector(net::NodeId dst, int attempt) {
  const auto it = txProb_.find(dst);
  if (it == txProb_.end()) return TxVector{table_.basicCode()};
  const std::vector<double>& perRate = it->second;
  std::uint8_t maxTp = 0, maxTp2 = 0, maxProb = 0;
  double tp1 = 0.0, tp2 = 0.0, bestProb = 0.0;
  for (std::uint8_t code = 1; code <= table_.size(); ++code) {
    const double p = perRate[code];
    if (p < config_.minProb) continue;
    const double tp = table_.info(code).bitRateBps * p;
    if (tp > tp1) {
      tp2 = tp1;
      maxTp2 = maxTp;
      tp1 = tp;
      maxTp = code;
    } else if (tp > tp2) {
      tp2 = tp;
      maxTp2 = code;
    }
    if (p > bestProb) {
      bestProb = p;
      maxProb = code;
    }
  }
  const std::uint8_t basic = table_.basicCode();
  const std::uint8_t chain[4] = {
      maxTp != 0 ? maxTp : basic,
      maxTp2 != 0 ? maxTp2 : (maxTp != 0 ? maxTp : basic),
      maxProb != 0 ? maxProb : basic,
      basic,
  };
  const int slot = attempt < 0 ? 0 : (attempt > 3 ? 3 : attempt);
  return TxVector{chain[slot]};
}

// ------------------------------------------------------------------- Genie

GenieController::GenieController(const RateTable& table,
                                 NeighborSnrFn neighborSnrsDb, SnrToFn snrDbTo,
                                 GenieConfig config)
    : RateController{table},
      config_{config},
      neighborSnrsDb_{std::move(neighborSnrsDb)},
      snrDbTo_{std::move(snrDbTo)} {}

std::uint8_t GenieController::pickForSnr(double snrDb) const {
  std::uint8_t best = table_.basicCode();
  double bestRate = 0.0;
  for (std::uint8_t code = 1; code <= table_.size(); ++code) {
    const RateInfo& info = table_.info(code);
    if (info.bitRateBps <= bestRate) continue;
    if (table_.per(code, snrDb, config_.nominalBytes) <=
        config_.perThreshold) {
      best = code;
      bestRate = info.bitRateBps;
    }
  }
  return best;
}

TxVector GenieController::dataVector() {
  if (haveBroadcast_) return broadcast_;
  haveBroadcast_ = true;
  broadcast_ = TxVector{table_.basicCode()};
  if (!neighborSnrsDb_) return broadcast_;
  std::vector<std::pair<net::NodeId, double>> snrs = neighborSnrsDb_();
  if (snrs.empty()) return broadcast_;
  std::sort(snrs.begin(), snrs.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  const std::size_t idx = static_cast<std::size_t>(
      config_.coverageQuantile * static_cast<double>(snrs.size() - 1));
  broadcast_ = TxVector{pickForSnr(snrs[idx].second)};
  return broadcast_;
}

TxVector GenieController::unicastVector(net::NodeId dst, int attempt) {
  // Last-resort attempts fall back to basic like every 802.11 retry chain.
  if (attempt >= 2) return TxVector{table_.basicCode()};
  const auto it = unicast_.find(dst);
  if (it != unicast_.end()) return TxVector{it->second};
  const std::uint8_t code =
      snrDbTo_ ? pickForSnr(snrDbTo_(dst)) : table_.basicCode();
  unicast_.emplace(dst, code);
  return TxVector{code};
}

}  // namespace mesh::rate
