#pragma once
// Duplicate detection for flooded/forwarded packets.
//
// ODMRP floods JOIN QUERYs and forwards data through a redundant mesh, so
// every node sees duplicates. Sequence numbers per (group, source) are
// strictly increasing, so a 64-bit sliding window over the highest seq
// seen is exact for any realistic reordering (duplicates arrive within
// milliseconds of each other; rounds are seconds apart).

#include <cstdint>
#include <unordered_map>

#include "mesh/net/addr.hpp"

namespace mesh::odmrp {

// Window over one (group, source) stream.
class SeqWindow {
 public:
  // Returns true if `seq` is new (and records it); false for a duplicate
  // or anything older than the window.
  bool checkAndInsert(std::uint32_t seq) {
    if (!any_) {
      any_ = true;
      hi_ = seq;
      bits_ = 1;
      return true;
    }
    if (seq > hi_) {
      const std::uint32_t shift = seq - hi_;
      bits_ = shift >= 64 ? 0 : bits_ << shift;
      bits_ |= 1;
      hi_ = seq;
      return true;
    }
    const std::uint32_t age = hi_ - seq;
    if (age >= 64) return false;  // too old to tell: treat as duplicate
    const std::uint64_t mask = std::uint64_t{1} << age;
    if (bits_ & mask) return false;
    bits_ |= mask;
    return true;
  }

  bool seen(std::uint32_t seq) const {
    if (!any_) return false;
    if (seq > hi_) return false;
    const std::uint32_t age = hi_ - seq;
    if (age >= 64) return true;
    return (bits_ >> age) & 1;
  }

 private:
  bool any_{false};
  std::uint32_t hi_{0};
  std::uint64_t bits_{0};
};

// Keyed collection of windows, one per (group, source).
class DupCache {
 public:
  bool checkAndInsert(net::GroupId group, net::NodeId source, std::uint32_t seq) {
    return windows_[key(group, source)].checkAndInsert(seq);
  }
  bool seen(net::GroupId group, net::NodeId source, std::uint32_t seq) const {
    const auto it = windows_.find(key(group, source));
    return it != windows_.end() && it->second.seen(seq);
  }

 private:
  static std::uint32_t key(net::GroupId group, net::NodeId source) {
    return (static_cast<std::uint32_t>(group) << 16) | source;
  }
  std::unordered_map<std::uint32_t, SeqWindow> windows_;
};

}  // namespace mesh::odmrp
