file(REMOVE_RECURSE
  "libmesh_common.a"
)
