#include "mesh/harness/report.hpp"

#include <cstdio>

namespace mesh::harness {
namespace {

void printHeader(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  for (std::size_t i = 0; i < title.size(); ++i) std::printf("=");
  std::printf("\n");
}

}  // namespace

void printNormalizedThroughput(const std::string& title,
                               std::span<const ComparisonRow> rows) {
  printHeader(title);
  MESH_REQUIRE(!rows.empty());
  const double base = rows[0].pdr.mean();
  std::printf("%-8s  %-12s  %-10s  %s\n", "protocol", "normalized", "PDR",
              "gain vs ODMRP");
  for (const ComparisonRow& row : rows) {
    const double normalized = base > 0.0 ? row.pdr.mean() / base : 0.0;
    std::printf("%-8s  %8.3f      %6.4f      %+6.1f%%\n", row.name.c_str(),
                normalized, row.pdr.mean(), (normalized - 1.0) * 100.0);
  }
}

void printNormalizedDelay(const std::string& title,
                          std::span<const ComparisonRow> rows) {
  printHeader(title);
  MESH_REQUIRE(!rows.empty());
  const double base = rows[0].delayS.mean();
  std::printf("%-8s  %-12s  %s\n", "protocol", "normalized", "mean delay");
  for (const ComparisonRow& row : rows) {
    const double normalized = base > 0.0 ? row.delayS.mean() / base : 0.0;
    std::printf("%-8s  %8.3f      %8.2f ms\n", row.name.c_str(), normalized,
                row.delayS.mean() * 1e3);
  }
}

void printOverheadTable(const std::string& title,
                        std::span<const ComparisonRow> rows) {
  printHeader(title);
  std::printf("%-8s  %s\n", "metric", "% overhead (probe bytes / data bytes received)");
  for (const ComparisonRow& row : rows) {
    if (!row.protocol.metric) continue;  // ODMRP has no probes
    std::printf("%-8s  %6.2f\n", row.name.c_str(), row.overheadPct.mean());
  }
}

void printAbsolute(const std::string& title, std::span<const ComparisonRow> rows) {
  printHeader(title);
  std::printf("%-8s  %10s  %14s  %12s  %10s  (over %zu topologies, ±95%% CI)\n",
              "protocol", "PDR", "throughput", "delay", "overhead",
              rows.empty() ? 0 : rows[0].pdr.count());
  for (const ComparisonRow& row : rows) {
    std::printf("%-8s  %6.4f±%.3f  %9.1f kbps  %8.2f ms  %7.2f %%\n",
                row.name.c_str(), row.pdr.mean(), row.pdr.ci95HalfWidth(),
                row.throughputBps.mean() / 1e3, row.delayS.mean() * 1e3,
                row.overheadPct.mean());
  }
}

}  // namespace mesh::harness
