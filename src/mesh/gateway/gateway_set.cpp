#include "mesh/gateway/gateway_set.hpp"

#include <algorithm>

#include "mesh/common/assert.hpp"
#include "mesh/phy/spatial_grid.hpp"

namespace mesh::gateway {
namespace {

constexpr const char* kSelectNames[] = {"every-k", "boundary", "explicit"};
constexpr std::size_t kSelectCount =
    sizeof(kSelectNames) / sizeof(kSelectNames[0]);

GatewaySet selectEveryK(std::size_t count, std::size_t nodeCount) {
  GatewaySet set;
  set.select = GatewaySelect::EveryK;
  if (nodeCount == 0) return set;
  if (count > nodeCount) count = nodeCount;
  for (std::size_t i = 0; i < count; ++i) {
    set.nodes.push_back(static_cast<net::NodeId>(i * nodeCount / count));
  }
  // floor(i·n/g) is strictly increasing for g <= n, so the ids are already
  // ascending and distinct.
  return set;
}

GatewaySet selectBoundary(std::size_t count,
                          const channelplan::ChannelPlan& plan,
                          const std::vector<Vec2>& positions, double radiusM) {
  GatewaySet set;
  set.select = GatewaySelect::Boundary;
  const std::size_t n = positions.size();
  if (n == 0 || count == 0) return set;
  if (count > n) count = n;

  // One pass over the grid: for every node, the set of boundary pairs
  // (homeDomain, foreignDomain) it could bridge, encoded as
  // min·256 + max, plus its raw cross-domain neighbor count. The grid is a
  // superset filter; the exact distance test keeps the result identical to
  // the O(n²) scan.
  phy::SpatialGrid grid;
  grid.build(positions, radiusM);
  std::vector<std::vector<std::uint32_t>> pairsOf(n);
  std::vector<std::uint32_t> crossNeighbors(n, 0);
  std::vector<std::uint32_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t home = plan.channelOf(static_cast<net::NodeId>(i));
    candidates.clear();
    grid.candidatesWithin(positions[i], radiusM, candidates);
    auto& pairs = pairsOf[i];
    for (const std::uint32_t j : candidates) {
      if (j == i) continue;
      const std::size_t other = plan.channelOf(static_cast<net::NodeId>(j));
      if (other == home) continue;
      if (positions[i].distanceSquaredTo(positions[j]) > radiusM * radiusM) {
        continue;
      }
      ++crossNeighbors[i];
      const std::size_t lo = home < other ? home : other;
      const std::size_t hi = home < other ? other : home;
      pairs.push_back(static_cast<std::uint32_t>(lo * 256 + hi));
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  }

  // Greedy cover: each round picks the node bridging the most not-yet
  // covered boundary pairs (ties: more cross-domain neighbors, then lowest
  // id). Once every reachable pair is covered the tie-breaks alone rank
  // the remaining picks, spreading extra gateways onto the busiest
  // boundaries.
  std::vector<bool> chosen(n, false);
  std::vector<bool> covered(256 * 256, false);
  for (std::size_t round = 0; round < count; ++round) {
    std::size_t best = n;
    std::size_t bestGain = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (chosen[i]) continue;
      std::size_t gain = 0;
      for (const std::uint32_t p : pairsOf[i]) {
        if (!covered[p]) ++gain;
      }
      if (best == n || gain > bestGain ||
          (gain == bestGain && crossNeighbors[i] > crossNeighbors[best])) {
        best = i;
        bestGain = gain;
      }
    }
    if (best == n) break;
    chosen[best] = true;
    for (const std::uint32_t p : pairsOf[best]) covered[p] = true;
    set.nodes.push_back(static_cast<net::NodeId>(best));
  }
  std::sort(set.nodes.begin(), set.nodes.end());
  return set;
}

}  // namespace

const char* toString(GatewaySelect select) {
  const auto index = static_cast<std::size_t>(select);
  return index < kSelectCount ? kSelectNames[index] : "invalid";
}

bool gatewaySelectFromString(const std::string& text, GatewaySelect& out) {
  for (std::size_t i = 0; i < kSelectCount; ++i) {
    if (text == kSelectNames[i]) {
      out = static_cast<GatewaySelect>(i);
      return true;
    }
  }
  return false;
}

GatewaySet makeGatewaySet(GatewaySelect select, std::size_t count,
                          const std::vector<net::NodeId>& explicitNodes,
                          const channelplan::ChannelPlan& plan,
                          const std::vector<Vec2>& positions, double radiusM) {
  MESH_REQUIRE(plan.channels < 256);  // boundary pair encoding caps domains
  switch (select) {
    case GatewaySelect::Explicit: {
      GatewaySet set;
      set.select = GatewaySelect::Explicit;
      set.nodes = explicitNodes;
      std::sort(set.nodes.begin(), set.nodes.end());
      set.nodes.erase(std::unique(set.nodes.begin(), set.nodes.end()),
                      set.nodes.end());
      return set;
    }
    case GatewaySelect::EveryK:
      return selectEveryK(count, positions.size());
    case GatewaySelect::Boundary:
      return selectBoundary(count, plan, positions, radiusM);
  }
  MESH_ASSERT(false);
  return {};
}

}  // namespace mesh::gateway
