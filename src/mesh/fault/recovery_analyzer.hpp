#pragma once
// RecoveryAnalyzer: per-run churn metrics from counter snapshots.
//
// The analyzer never touches protocol state. It schedules counter-registry
// snapshots at the boundaries of the schedule's merged fault windows and a
// bounded 100 ms delivery poll after every node crash, all through the
// ordinary event queue — so its measurements are deterministic and cost
// nothing on fault-free runs. After the run, report() folds the snapshots
// into the three quantities the churn experiment sweeps:
//
//   * PDR inside vs. outside fault windows (delivery degradation),
//   * control-byte rate inside vs. outside (overhead inflation as the
//     protocol re-floods queries to heal the forwarding group),
//   * time-to-repair: first delivery after each crash instant.

#include <cstdint>
#include <vector>

#include "mesh/fault/fault_schedule.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/trace/counter_registry.hpp"

namespace mesh::fault {

struct RecoveryReport {
  std::uint64_t faultsApplied{0};
  std::uint64_t faultsCleared{0};
  double faultWindowS{0.0};  // union of fault windows, clamped to the run

  double inWindowPdr{0.0};
  double outWindowPdr{0.0};
  double inWindowControlBps{0.0};   // control bytes originated per second
  double outWindowControlBps{0.0};
  // inWindowControlBps / outWindowControlBps (0 when the baseline is 0).
  double overheadInflation{0.0};

  double meanTimeToRepairS{0.0};  // over resolved crashes
  std::uint64_t repairsObserved{0};
  std::uint64_t repairsUnresolved{0};  // no delivery within cap / run end
};

class RecoveryAnalyzer {
 public:
  // `fanout` is the expected deliveries per originated data packet (group
  // members minus the source when it is also a member) — the same factor
  // Simulation::run() uses, so in+out PDR decompose the headline PDR.
  // `horizon` is the run duration; counters/schedule must outlive this.
  RecoveryAnalyzer(sim::Simulator& simulator,
                   const trace::CounterRegistry& counters,
                   const FaultSchedule& schedule, SimTime horizon,
                   double fanout);

  RecoveryAnalyzer(const RecoveryAnalyzer&) = delete;
  RecoveryAnalyzer& operator=(const RecoveryAnalyzer&) = delete;

  // Schedules the window snapshots and crash pollers. Call once before the
  // run (no-op on an empty schedule).
  void arm();

  // Call after the run has finished.
  RecoveryReport report() const;

 private:
  struct Snapshot {
    std::uint64_t originated{0};
    std::uint64_t delivered{0};
    std::uint64_t controlBytes{0};
  };
  // One crash's delivery poll: resolved when app.packets_delivered first
  // rises above its value at the crash instant.
  struct RepairProbe {
    SimTime crashAt{SimTime::zero()};
    std::uint64_t baseDelivered{0};
    bool resolved{false};
    SimTime repairedAt{SimTime::zero()};
  };

  Snapshot take() const;
  void beginRepairProbe(std::size_t index);
  void pollRepair(std::size_t index);

  sim::Simulator& simulator_;
  const trace::CounterRegistry& counters_;
  const FaultSchedule& schedule_;
  SimTime horizon_;
  double fanout_;

  // Snapshot pairs per merged window, filled in as the run crosses each
  // boundary (windowStarts_[i]/windowEnds_[i] for mergedWindows()[i]).
  std::vector<std::pair<SimTime, SimTime>> windows_;
  std::vector<Snapshot> windowStarts_;
  std::vector<Snapshot> windowEnds_;
  std::vector<RepairProbe> probes_;
  bool armed_{false};
};

}  // namespace mesh::fault
