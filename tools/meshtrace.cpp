// meshtrace: replay packet-lifecycle traces and cross-check the harness.
//
//   $ meshtrace summary <trace.jsonl>...
//   $ meshtrace verify <results.jsonl> [--trace-dir DIR] [--tol X]
//   $ meshtrace faults <trace.jsonl>
//
// `summary` recomputes PDR, mean end-to-end delay, throughput, and probe
// overhead from a trace alone — an accounting path fully independent of
// the harness counters — and prints them with the drop-reason breakdown.
//
// `faults` extracts the fault timeline (fault_inject / fault_clear
// records) from one trace and re-emits it as a ready-to-paste `[faults]`
// config section, so any faulty run can be replayed from its trace alone.
//
// `verify` joins every trace referenced by a runner results file (the
// "trace" field written when a sweep runs with --trace DIR) against the
// recorded metrics. The two paths replicate the same arithmetic, so the
// expected tolerance is zero: any diff means one of the accounting paths
// is wrong. --trace-dir re-roots trace paths when the results file moved;
// --tol X accepts a relative tolerance for double-valued fields.
//
// Exit status: 0 when everything checked out, 1 on any mismatch or
// unreadable input, 2 on usage errors.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mesh/trace/replay.hpp"
#include "mesh/trace/trace_reader.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summary <trace.jsonl>...\n"
               "       %s verify <results.jsonl> [--trace-dir DIR] [--tol X]\n"
               "       %s faults <trace.jsonl>\n"
               "  summary      recompute PDR/delay/throughput/overhead from "
               "traces\n"
               "  verify       diff trace-derived metrics against the runner's "
               "results\n"
               "  faults       re-emit the trace's fault timeline as a "
               "[faults] config section\n"
               "  --trace-dir  re-root the \"trace\" paths found in the "
               "results file\n"
               "  --tol X      relative tolerance for double fields "
               "(default 0 = bit-exact)\n",
               argv0, argv0, argv0);
}

int runSummary(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "summary needs at least one trace file\n");
    return 2;
  }
  bool failed = false;
  for (int i = 0; i < argc; ++i) {
    const std::string path = argv[i];
    const mesh::trace::TraceReadResult read = mesh::trace::readTraceFile(path);
    if (!read.trace) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), read.error.c_str());
      failed = true;
      continue;
    }
    const mesh::trace::TraceSummary s = mesh::trace::summarizeTrace(*read.trace);
    std::printf("%s\n", path.c_str());
    std::printf("  protocol %s  seed %" PRIu64 "  nodes %" PRIu64
                "  records %zu\n",
                read.trace->protocol.c_str(), read.trace->seed,
                read.trace->nodes, read.trace->records.size());
    std::printf("  pdr          %.6f  (%" PRIu64 " delivered / %" PRIu64
                " expected, %" PRIu64 " sent)\n",
                s.pdr, s.packetsDelivered, s.expectedDeliveries, s.packetsSent);
    std::printf("  mean delay   %.3f ms\n", s.meanDelayS * 1e3);
    std::printf("  throughput   %.1f kbps\n", s.throughputBps / 1e3);
    std::printf("  probe cost   %.3f%% of data bytes (%" PRIu64 " / %" PRIu64
                ")\n",
                s.probeOverheadPct, s.probeBytesReceived, s.dataBytesReceived);
    std::printf("  drops        %" PRIu64 "\n", s.dropCount);
    for (const auto& [reason, count] : s.dropsByReason) {
      std::printf("    %-22s %" PRIu64 "\n", reason.c_str(), count);
    }
    if (!s.perChannel.empty()) {
      // Multi-channel trace: per-collision-domain breakdown. Busy share is
      // each channel's share of the summed airtime estimate.
      std::int64_t totalBusyNs = 0;
      for (const auto& [ch, stats] : s.perChannel) totalBusyNs += stats.busyTimeNs;
      std::printf("  channels     %zu\n", s.perChannel.size());
      for (const auto& [ch, stats] : s.perChannel) {
        const double share =
            totalBusyNs > 0 ? 100.0 * static_cast<double>(stats.busyTimeNs) /
                                  static_cast<double>(totalBusyNs)
                            : 0.0;
        std::printf("    ch%-2d frames %-8" PRIu64 " drops %-8" PRIu64
                    " delivered %-8" PRIu64 " busy %5.1f%%\n",
                    ch, stats.frames, stats.drops, stats.delivered, share);
      }
    }
    if (s.handoffFrames > 0) {
      // Gateway trace: per-gateway handoff breakdown (frames the relay
      // rebuilt and injected across a domain boundary at this gateway).
      std::printf("  handoffs     %" PRIu64 " across %zu gateway%s\n",
                  s.handoffFrames, s.handoffPerGateway.size(),
                  s.handoffPerGateway.size() == 1 ? "" : "s");
      for (const auto& [gateway, count] : s.handoffPerGateway) {
        std::printf("    gw%-4u handoffs %" PRIu64 "\n", gateway, count);
      }
    }
    if (s.unknownReasonDrops > 0) {
      std::printf("  WARNING: %" PRIu64 " drops carry reason \"unknown\"\n",
                  s.unknownReasonDrops);
      failed = true;
    }
    if (s.deliversWithoutBirth > 0) {
      std::printf("  WARNING: %" PRIu64 " delivers without a pkt_birth\n",
                  s.deliversWithoutBirth);
      failed = true;
    }
  }
  return failed ? 1 : 0;
}

int runFaults(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr, "faults needs exactly one trace file\n");
    return 2;
  }
  const std::string path = argv[0];
  const mesh::trace::TraceReadResult read = mesh::trace::readTraceFile(path);
  if (!read.trace) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), read.error.c_str());
    return 1;
  }
  std::fputs(mesh::trace::faultSectionFromTrace(*read.trace).c_str(), stdout);
  return 0;
}

int runVerify(int argc, char** argv) {
  const char* resultsPath = nullptr;
  std::string traceDir;
  double tolerance = 0.0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      traceDir = argv[++i];
    } else if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      char* end = nullptr;
      tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || tolerance < 0.0) {
        std::fprintf(stderr, "--tol needs a non-negative number\n");
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    } else if (resultsPath == nullptr) {
      resultsPath = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (resultsPath == nullptr) {
    std::fprintf(stderr, "verify needs a results JSONL path\n");
    return 2;
  }

  const mesh::trace::VerifyReport report =
      mesh::trace::verifyAgainstResults(resultsPath, traceDir, tolerance);
  if (!report.error.empty()) {
    std::fprintf(stderr, "%s: %s\n", resultsPath, report.error.c_str());
    return 1;
  }
  for (const mesh::trace::VerifyRunResult& run : report.runs) {
    if (run.ok) {
      std::printf("OK    %-10s seed %" PRIu64 "  %" PRIu64
                  " records  (%s)\n",
                  run.protocol.c_str(), run.seed, run.records,
                  run.tracePath.c_str());
      continue;
    }
    std::printf("FAIL  %-10s seed %" PRIu64 "  (%s)\n", run.protocol.c_str(),
                run.seed, run.tracePath.c_str());
    if (!run.error.empty()) std::printf("      %s\n", run.error.c_str());
    for (const mesh::trace::FieldDiff& diff : run.mismatches) {
      std::printf("      %-18s trace=%.17g harness=%.17g\n",
                  diff.field.c_str(), diff.traceValue, diff.harnessValue);
    }
    if (run.unknownReasonDrops > 0) {
      std::printf("      %" PRIu64 " drops carry reason \"unknown\"\n",
                  run.unknownReasonDrops);
    }
  }
  if (report.skipped > 0) {
    std::printf("(%zu result rows had no trace field)\n", report.skipped);
  }
  if (report.runs.empty()) {
    std::fprintf(stderr, "no result rows referenced a trace — run the sweep "
                         "with --trace DIR\n");
    return 1;
  }
  std::printf("%zu run%s verified: %s\n", report.runs.size(),
              report.runs.size() == 1 ? "" : "s",
              report.ok() ? "all match" : "MISMATCH");
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    usage(argv[0]);
    return 0;
  }
  if (std::strcmp(argv[1], "summary") == 0) {
    return runSummary(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "verify") == 0) {
    return runVerify(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "faults") == 0) {
    return runFaults(argc - 2, argv + 2);
  }
  std::fprintf(stderr, "unknown subcommand: %s\n", argv[1]);
  usage(argv[0]);
  return 2;
}
