// Tests for the net layer: byte-order-explicit serialization and the
// Packet framework, including round-trip property tests.

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/buffer.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/net/pool.hpp"

namespace mesh::net {
namespace {

using namespace mesh::time_literals;

// ----------------------------------------------------------------- buffer

TEST(ByteWriterReader, ScalarRoundTrip) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  EXPECT_EQ(bytes.size(), 1u + 2 + 4 + 8 + 8 + 8);

  ByteReader r{bytes};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteWriterReader, LittleEndianLayout) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u16(0x1234);
  EXPECT_EQ(bytes[0], 0x34);
  EXPECT_EQ(bytes[1], 0x12);
}

TEST(ByteWriterReader, BytesAndZeros) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  const std::vector<std::uint8_t> payload{1, 2, 3};
  w.bytes(payload);
  w.zeros(4);
  EXPECT_EQ(bytes.size(), 7u);
  EXPECT_EQ(bytes[2], 3);
  EXPECT_EQ(bytes[6], 0);

  ByteReader r{bytes};
  const auto got = r.bytes(3);
  EXPECT_EQ(got[1], 2);
  r.skip(4);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteWriterReader, SpecialDoubles) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  ByteReader r{bytes};
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_DOUBLE_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

class BufferPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferPropertyTest, RandomMixedSequencesRoundTrip) {
  Rng rng{GetParam() * 31 + 7};
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};

  std::vector<int> plan;
  std::vector<std::uint64_t> values;
  const int fields = static_cast<int>(rng.uniformInt(1, 30));
  for (int i = 0; i < fields; ++i) {
    const int kind = static_cast<int>(rng.uniformInt(0, 3));
    const std::uint64_t value = rng.nextU64();
    plan.push_back(kind);
    values.push_back(value);
    switch (kind) {
      case 0: w.u8(static_cast<std::uint8_t>(value)); break;
      case 1: w.u16(static_cast<std::uint16_t>(value)); break;
      case 2: w.u32(static_cast<std::uint32_t>(value)); break;
      case 3: w.u64(value); break;
    }
  }

  ByteReader r{bytes};
  for (int i = 0; i < fields; ++i) {
    switch (plan[static_cast<std::size_t>(i)]) {
      case 0: EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(values[static_cast<std::size_t>(i)])); break;
      case 1: EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(values[static_cast<std::size_t>(i)])); break;
      case 2: EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(values[static_cast<std::size_t>(i)])); break;
      case 3: EXPECT_EQ(r.u64(), values[static_cast<std::size_t>(i)]); break;
    }
  }
  EXPECT_TRUE(r.atEnd());
}

INSTANTIATE_TEST_SUITE_P(RandomPlans, BufferPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ----------------------------------------------------------------- packet

TEST(PacketTest, CarriesMetadataAndBytes) {
  const auto p = Packet::make(PacketKind::Data, 7, {1, 2, 3, 4}, 5_s);
  EXPECT_EQ(p->kind(), PacketKind::Data);
  EXPECT_EQ(p->origin(), 7);
  EXPECT_EQ(p->createdAt(), 5_s);
  EXPECT_EQ(p->sizeBytes(), 4u);
  EXPECT_EQ(p->bytes()[2], 3);
}

TEST(PacketTest, UidsAreUnique) {
  const auto a = Packet::make(PacketKind::Probe, 1, std::vector<std::uint8_t>{}, 0_s);
  const auto b = Packet::make(PacketKind::Probe, 1, std::vector<std::uint8_t>{}, 0_s);
  EXPECT_NE(a->uid(), b->uid());
}

TEST(PacketTest, KindNames) {
  EXPECT_STREQ(toString(PacketKind::Data), "data");
  EXPECT_STREQ(toString(PacketKind::Probe), "probe");
  EXPECT_STREQ(toString(PacketKind::Control), "control");
  EXPECT_STREQ(toString(PacketKind::MacControl), "mac-control");
}

// ------------------------------------------------------------------- pool

TEST(PacketPoolTest, RecyclesSlotsThroughFreeList) {
  PacketPool pool;
  PacketPool* prev = PacketPool::setCurrent(&pool);
  {
    auto p = Packet::make(PacketKind::Data, 1,
                          std::vector<std::uint8_t>(512, 0x11), 0_s);
    EXPECT_GE(pool.stats().liveSlots, 1u);
  }
  const std::uint64_t carved = pool.stats().slotsCarved;
  ASSERT_GT(carved, 0u);
  // Steady-state churn: every allocation is served from the free list.
  for (int i = 0; i < 1000; ++i) {
    auto p = Packet::make(PacketKind::Data, 1,
                          std::vector<std::uint8_t>(512, 0x11), 0_s);
  }
  EXPECT_EQ(pool.stats().slotsCarved, carved);
  EXPECT_EQ(pool.stats().liveSlots, 0u);
  PacketPool::setCurrent(prev);
}

TEST(PacketPoolTest, PerPoolUidSequencesAreIndependent) {
  PacketPool a, b;
  PacketPool* prev = PacketPool::setCurrent(&a);
  const auto a1 = Packet::make(PacketKind::Data, 1, {1}, 0_s);
  const auto a2 = Packet::make(PacketKind::Data, 1, {2}, 0_s);
  PacketPool::setCurrent(&b);
  const auto b1 = Packet::make(PacketKind::Data, 1, {3}, 0_s);
  PacketPool::setCurrent(prev);
  // Deterministic per-pool counters: both domains start at 1, so uids only
  // identify packets within a domain (trace pids are renumbered anyway).
  EXPECT_EQ(a2->uid(), a1->uid() + 1);
  EXPECT_EQ(b1->uid(), a1->uid());
}

TEST(PacketPoolTest, PacketsOutliveTheirPool) {
  PacketPtr survivor;
  {
    PacketPool pool;
    PacketPool* prev = PacketPool::setCurrent(&pool);
    survivor = Packet::make(PacketKind::Data, 3, {9, 8, 7}, 1_s);
    PacketPool::setCurrent(prev);
  }
  // The pool handle is gone; its Impl stays alive until the last slot is
  // released, so the packet remains fully usable.
  EXPECT_EQ(survivor->bytes()[0], 9);
  EXPECT_EQ(survivor->origin(), 3);
  survivor.reset();  // frees the slot and, with it, the orphaned Impl
}

TEST(PacketPoolTest, ReleaseRoutesToTheOwningPoolAcrossDomains) {
  // The gateway relay rebuilds every frame into the destination domain's
  // pool, but refcounts of the *source* copy can still drop while another
  // domain's pool is current (barrier callbacks run under the destination
  // pool). Release must route through the slot header to the owning pool —
  // never into whichever pool happens to be current.
  PacketPool home, foreign;
  PacketPool* prev = PacketPool::setCurrent(&home);
  PacketPtr p = Packet::make(PacketKind::Data, 1,
                             std::vector<std::uint8_t>(64, 0x5A), 0_s);
  const std::uint64_t homeCarved = home.stats().slotsCarved;
  EXPECT_EQ(home.stats().liveSlots, 1u);

  PacketPool::setCurrent(&foreign);
  p.reset();  // final release under the wrong current pool
  EXPECT_EQ(home.stats().liveSlots, 0u);
  EXPECT_EQ(foreign.stats().liveSlots, 0u);
  EXPECT_EQ(foreign.stats().slotsCarved, 0u);  // foreign never touched

  // The slot went back onto home's free list: the next home allocation
  // recycles it without carving a new one.
  PacketPool::setCurrent(&home);
  PacketPtr q = Packet::make(PacketKind::Data, 2,
                             std::vector<std::uint8_t>(64, 0xA5), 0_s);
  EXPECT_EQ(home.stats().slotsCarved, homeCarved);
  EXPECT_EQ(home.stats().liveSlots, 1u);
  q.reset();
  PacketPool::setCurrent(prev);
}

TEST(PacketPoolTest, OversizedAllocationsBypassTheSlabs) {
  PacketPool pool;
  PacketPool* prev = PacketPool::setCurrent(&pool);
  const auto before = pool.stats().oversized;
  auto p = Packet::make(PacketKind::Data, 1,
                        std::vector<std::uint8_t>(8000, 0xEE), 0_s);
  EXPECT_EQ(pool.stats().oversized, before + 1);
  EXPECT_EQ(p->sizeBytes(), 8000u);
  EXPECT_EQ(p->bytes()[7999], 0xEE);
  PacketPool::setCurrent(prev);
}

TEST(RefPtrTest, CopyAndMoveDriveTheSlotLifetime) {
  PacketPool pool;
  PacketPool* prev = PacketPool::setCurrent(&pool);
  PacketPtr a = Packet::make(PacketKind::Data, 1, {42}, 0_s);
  EXPECT_EQ(pool.stats().liveSlots, 1u);
  PacketPtr b = a;          // copy retains
  PacketPtr c = std::move(a);  // move transfers, no extra reference
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b, c);
  b.reset();
  EXPECT_EQ(pool.stats().liveSlots, 1u);  // c still holds the slot
  c.reset();
  EXPECT_EQ(pool.stats().liveSlots, 0u);
  PacketPool::setCurrent(prev);
}

// ------------------------------------------------------- decode-once view

TEST(PacketViewTest, ParsesAtMostOncePerPacket) {
  const auto p = Packet::make(PacketKind::Data, 1, {5, 6, 7}, 0_s);
  struct Header {
    std::uint8_t first;
  };
  int calls = 0;
  auto parse = [&calls](std::span<const std::uint8_t> b) {
    ++calls;
    return std::optional<Header>{Header{b[0]}};
  };
  const Header* v1 = p->view<Header>(parse);
  const Header* v2 = p->view<Header>(parse);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->first, 5);
  EXPECT_EQ(v1, v2);  // same cached object
  EXPECT_EQ(calls, 1);
}

TEST(PacketViewTest, FailedParseIsCachedToo) {
  const auto p = Packet::make(PacketKind::Data, 1, {0xFF}, 0_s);
  struct Never {
    int x;
  };
  int calls = 0;
  auto parse = [&calls](std::span<const std::uint8_t>) {
    ++calls;
    return std::optional<Never>{};
  };
  EXPECT_EQ(p->view<Never>(parse), nullptr);
  EXPECT_EQ(p->view<Never>(parse), nullptr);
  EXPECT_EQ(calls, 1);  // a malformed packet is not re-parsed per receiver
}

TEST(PacketViewTest, NonTrivialViewsAreDestroyedOnRetag) {
  // The cache holds one view type at a time (a packet is only ever decoded
  // as its own message type on the hot path); switching types destroys the
  // previous view and re-parses.
  const auto p = Packet::make(PacketKind::Data, 1, {1, 2, 3, 4}, 0_s);
  struct VecView {
    std::vector<std::uint8_t> copy;
  };
  struct SumView {
    int sum;
  };
  const VecView* v = p->view<VecView>([](std::span<const std::uint8_t> b) {
    return std::optional<VecView>{
        VecView{std::vector<std::uint8_t>(b.begin(), b.end())}};
  });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->copy.size(), 4u);
  const SumView* s = p->view<SumView>([](std::span<const std::uint8_t> b) {
    int sum = 0;
    for (auto x : b) sum += x;
    return std::optional<SumView>{SumView{sum}};
  });
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->sum, 10);
}

TEST(PacketBuildTest, SerializesExactlyIntoTheSlab) {
  const auto p = Packet::build(PacketKind::Control, 4, 6, 2_s, 0,
                               [](ByteWriter& w) {
                                 w.u16(0xBEEF);
                                 w.u32(0xDEADBEEF);
                               });
  EXPECT_EQ(p->sizeBytes(), 6u);
  ByteReader r{p->bytes()};
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_TRUE(r.atEnd());
}

TEST(LinkKeyTest, HashAndEquality) {
  const LinkKey a{1, 2}, b{1, 2}, c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  LinkKeyHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // directed
}

}  // namespace
}  // namespace mesh::net
