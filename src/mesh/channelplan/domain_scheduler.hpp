#pragma once
// DomainScheduler: deterministic intra-run parallelism over collision
// domains.
//
// With a ChannelPlan in force, the run decomposes into one sim::Simulator
// (event sub-queue) per collision domain — frames only interact within a
// domain, so between cross-domain events the domains share no mutable
// state whatsoever. The scheduler exploits exactly that:
//
//   epoch 0          barrier        epoch 1            barrier   ...
//   [d0 ─ run(t1)]                  [d0 ─ run(t2)]
//   [d1 ─ run(t1)]   callbacks on   [d1 ─ run(t2)]     ...
//   [d2 ─ run(t1)]   one thread     [d2 ─ run(t2)]
//
// Epoch boundaries are the registered cross-domain events (channel
// switches, future gateway hops) plus the final horizon. Inside an epoch
// every domain advances its own clock with its own queue; with
// `workers > 1` the domains of one epoch run on a small thread pool.
// Because domains are independent inside an epoch, the per-domain event
// sequence — and therefore every RNG draw, trace record, and counter —
// is identical no matter how many workers run or how the OS schedules
// them. Cross-domain callbacks execute on the calling thread after all
// workers have joined the barrier (in registration order for equal
// timestamps), so they may touch any domain safely.
//
// The merged global order used by trace export is (time, domain, per-
// domain emission seq) — the multi-queue generalization of the event
// queue's (time, insertion seq) contract. Sequential execution (workers
// == 1) walks domains in ascending index inside each epoch, which is
// byte-identical to any parallel execution by construction; tests pin
// this.

#include <cstdint>
#include <functional>
#include <vector>

#include "mesh/common/simtime.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::channelplan {

class DomainScheduler {
 public:
  // `domains` are borrowed; they must outlive the scheduler. `workers` is
  // clamped to [1, domains.size()]; 1 means run on the calling thread.
  DomainScheduler(std::vector<sim::Simulator*> domains, std::size_t workers);

  DomainScheduler(const DomainScheduler&) = delete;
  DomainScheduler& operator=(const DomainScheduler&) = delete;

  // Register a cross-domain event: all domains are barrier-synced at `at`
  // (every domain clock reaches exactly `at`, no domain has passed it),
  // then `callback` runs alone on the run() caller's thread. Callbacks at
  // equal times run in registration order. Must be called before run().
  void addBarrier(SimTime at, std::function<void()> callback);

  // Drives every domain to `until` (inclusive, like Simulator::run),
  // pausing at each registered barrier. Returns the total number of
  // events executed across all domains during this call.
  std::uint64_t run(SimTime until);

  std::size_t workerCount() const { return workers_; }
  std::size_t domainCount() const { return domains_.size(); }
  // Number of epochs executed so far (barriers crossed + final segments).
  std::uint64_t epochsRun() const { return epochsRun_; }

 private:
  struct Barrier {
    SimTime at;
    std::function<void()> callback;
  };

  // Advances every domain to `horizon`, parallel when workers_ > 1.
  std::uint64_t runEpoch(SimTime horizon);

  std::vector<sim::Simulator*> domains_;
  std::size_t workers_;
  std::vector<Barrier> barriers_;  // sorted by (at, registration order)
  std::uint64_t epochsRun_{0};
};

}  // namespace mesh::channelplan
