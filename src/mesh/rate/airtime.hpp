#pragma once
// Single source of truth for 802.11 frame-airtime math.
//
// Before the rate subsystem existed, the PLCP overhead and the DCF slot
// timing lived as duplicated literals in phy_params.hpp and mac_params.hpp
// — two places that must agree for NAV reservations to cover real airtime.
// Every airtime formula now routes through here: PhyParams::frameAirtime,
// the MAC's per-frame timing, and the multi-rate RateTable all call
// frameAirtimeAt with a PLCP constant defined once.

#include <cstddef>
#include <cstdint>

#include "mesh/common/simtime.hpp"
#include "mesh/common/units.hpp"

namespace mesh::rate {

// 802.11 DSSS long preamble + PLCP header, sent at 1 Mbps: 144 + 48 bits.
inline constexpr SimTime kDsssPlcpOverhead =
    SimTime::microseconds(std::int64_t{192});
// ERP-OFDM (802.11g): 16 µs preamble + 4 µs SIGNAL + 6 µs signal extension.
inline constexpr SimTime kOfdmPlcpOverhead =
    SimTime::microseconds(std::int64_t{26});

// DSSS PHY characteristics that parameterize the DCF (802.11-1999 §15.3.3).
inline constexpr SimTime kDsssSlotTime =
    SimTime::microseconds(std::int64_t{20});
inline constexpr SimTime kDsssSifs = SimTime::microseconds(std::int64_t{10});
// DIFS is derived, not free: SIFS + 2·slot = 50 µs for DSSS.
inline constexpr SimTime kDsssDifs = kDsssSifs + kDsssSlotTime * 2;

// Airtime of `bytes` of MAC frame at `bitRateBps` behind a `plcp` preamble.
inline SimTime frameAirtimeAt(std::size_t bytes, double bitRateBps,
                              SimTime plcp) {
  return plcp + transmissionTime(bytes, bitRateBps);
}

}  // namespace mesh::rate
