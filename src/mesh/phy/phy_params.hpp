#pragma once
// Radio and channel parameters.
//
// Defaults reproduce the classic 914 MHz WaveLAN profile that Glomosim and
// ns-2 ship with: 250 m nominal reception range and 550 m carrier-sense
// range under TwoRay ground propagation — the exact regime of the paper's
// simulation setup ("radio propagation range was 250m and the channel
// capacity was 2 Mbps").

#include <cstddef>

#include "mesh/common/simtime.hpp"
#include "mesh/common/units.hpp"
#include "mesh/rate/airtime.hpp"

namespace mesh::phy {

struct PhyParams {
  // Transmit power: 0.28183815 W ≈ 24.5 dBm (WaveLAN).
  double txPowerW{0.28183815};
  // Antenna gains (linear) and system loss.
  double antennaGainTx{1.0};
  double antennaGainRx{1.0};
  double systemLoss{1.0};
  // Antenna height above ground (m), used by TwoRay.
  double antennaHeightM{1.5};
  // Carrier frequency (Hz).
  double frequencyHz{914e6};
  // Reception threshold: mean received power for a 250 m TwoRay link.
  double rxThresholdW{3.652e-10};
  // Carrier-sense threshold: 550 m TwoRay link.
  double csThresholdW{1.559e-11};
  // Minimum SINR (linear) for a locked frame to survive interference.
  // 10 dB is the ns-2/Glomosim capture threshold.
  double sinrCaptureThreshold{10.0};
  // Receiver noise floor (W). ~2 MHz bandwidth, 10 dB noise figure.
  double noiseFloorW{thermalNoiseWatts(2e6, 10.0)};
  // Payload bit rate. 2 Mbps = the 802.11 broadcast basic rate the paper
  // uses for both data and control.
  double bitRateBps{2e6};
  // PLCP preamble + header: 802.11 DSSS long preamble, sent at 1 Mbps.
  // Single-sourced from mesh/rate/airtime.hpp — the same constant the
  // multi-rate table uses for its DSSS entries.
  SimTime plcpOverhead{rate::kDsssPlcpOverhead};

  double wavelengthM() const { return 299'792'458.0 / frequencyHz; }

  // Airtime of a frame of `bytes` total MAC-layer size at the basic rate.
  SimTime frameAirtime(std::size_t bytes) const {
    return rate::frameAirtimeAt(bytes, bitRateBps, plcpOverhead);
  }
};

}  // namespace mesh::phy
