#pragma once
// CounterRegistry: one taxonomy of named monotonic counters per run.
//
// The simulator's stats live where they are cheap to update — plain
// uint64 fields inside RadioStats / MacStats / ProtocolStats — so the hot
// paths keep their single unconditional increment. The registry is the
// *read* side: each component registers `("mac.queue_tail_drops.data",
// &stats_.queueDropsData)` once at build time, and a snapshot sums every
// slot registered under a name (fifty radios all publish
// "phy.frames_corrupted"). That gives every protocol and layer one shared
// naming scheme for export and cross-checking without a second write path.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mesh::trace {

class CounterRegistry {
 public:
  CounterRegistry() = default;
  // The pattern memo holds pointers into slots_'s nodes: rebuild lazily in
  // the copy rather than aliasing the source's map.
  CounterRegistry(const CounterRegistry& other)
      : slots_(other.slots_), slotHint_(other.slotHint_) {}
  CounterRegistry& operator=(const CounterRegistry& other) {
    slots_ = other.slots_;
    pattern_.clear();
    cursor_ = 0;
    slotHint_ = other.slotHint_;
    return *this;
  }
  // Map nodes are pointer-stable across moves, so the memo transfers.
  CounterRegistry(CounterRegistry&&) = default;
  CounterRegistry& operator=(CounterRegistry&&) = default;

  // Registers a live counter slot. The pointee must outlive the registry
  // (slots live in component stats structs owned by the same Simulation).
  //
  // Registration is dominated by thousands of components replaying the
  // same name sequence (every MeshNode registers the identical ~45
  // counters in the same order), so the registry memoizes the sequence of
  // map entries it resolved: while the incoming names replay the learned
  // pattern — including wrapping back to its start for the next component
  // — each add is one string compare plus a push_back instead of a map
  // lookup. Any divergence falls back to the map and relearns from there,
  // so interleaved registrants (gateways, ad-hoc counters) stay correct,
  // merely slower.
  void add(std::string_view name, const std::uint64_t* slot) {
    if (cursor_ < pattern_.size()) {
      Entry& entry = pattern_[cursor_];
      // Callers pass string literals, so a replayed sequence usually
      // presents the exact same data pointer — one compare beats the
      // memcmp, and the memcmp beats the map walk.
      if ((entry.literal == name.data() && entry.name->size() == name.size()) ||
          *entry.name == name) {
        entry.literal = name.data();
        entry.series->push_back(slot);
        ++cursor_;
        return;
      }
      pattern_.resize(cursor_);
    } else if (!pattern_.empty() &&
               ((pattern_.front().literal == name.data() &&
                 pattern_.front().name->size() == name.size()) ||
                *pattern_.front().name == name)) {
      pattern_.front().literal = name.data();
      pattern_.front().series->push_back(slot);
      cursor_ = 1;
      return;
    }
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      it = slots_.emplace(std::string{name}, std::vector<const std::uint64_t*>{})
               .first;
    }
    if (slotHint_ > 0 && it->second.empty()) it->second.reserve(slotHint_);
    it->second.push_back(slot);
    pattern_.push_back(Entry{&it->first, &it->second, name.data()});
    cursor_ = pattern_.size();
  }

  // Capacity hint: the caller expects about `count` slots per series
  // (e.g. one per node). Applied to existing and future series; purely an
  // allocation optimization, over-estimates just waste a few pointers.
  void hintSlotsPerSeries(std::size_t count) {
    slotHint_ = count;
    for (auto& [name, series] : slots_) series.reserve(count);
  }

  // Bulk-appends every series of `other` into this registry. The slot
  // pointers are shared, not copied — both registries then read the same
  // live counters. One map walk per name instead of one per (component,
  // name) pair, so a run-level registry can absorb per-domain registries
  // far cheaper than registering every component twice.
  void absorb(const CounterRegistry& other) {
    for (const auto& [name, series] : other.slots_) {
      auto& mine = slots_[name];
      mine.insert(mine.end(), series.begin(), series.end());
    }
  }

  // Sum of every slot registered under `name`; 0 for unknown names.
  std::uint64_t value(std::string_view name) const {
    const auto it = slots_.find(name);
    if (it == slots_.end()) return 0;
    std::uint64_t total = 0;
    for (const std::uint64_t* slot : it->second) total += *slot;
    return total;
  }

  std::size_t nameCount() const { return slots_.size(); }

  // Name-sorted totals (std::map keeps the order deterministic).
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(slots_.size());
    for (const auto& [name, slots] : slots_) {
      std::uint64_t total = 0;
      for (const std::uint64_t* slot : slots) total += *slot;
      out.emplace_back(name, total);
    }
    return out;
  }

 private:
  struct Entry {
    const std::string* name;
    std::vector<const std::uint64_t*>* series;
    // Data pointer of the last string that matched this position — a
    // cheap identity shortcut for string literals, never dereferenced.
    const char* literal;
  };

  std::map<std::string, std::vector<const std::uint64_t*>, std::less<>> slots_;
  // Learned registration sequence (pointers into slots_ nodes, which are
  // stable under insert and move) and the replay position within it.
  std::vector<Entry> pattern_;
  std::size_t cursor_{0};
  std::size_t slotHint_{0};
};

}  // namespace mesh::trace
