#pragma once
// The Purdue 8-node mesh testbed (Section 5, Figure 4), emulated.
//
// The paper deploys eight mesh routers on one floor of an office building
// (~240 ft × 86 ft ≈ 73 m × 26 m) and reports connectivity qualitatively:
// solid links (low/no loss), dashed links (lossy, 40–60% loss measured by
// ping), and no line at all for pairs that cannot communicate. Loss rates
// "change fairly quickly" over time.
//
// Node labels follow the paper's figure: {1, 2, 3, 4, 5, 7, 9, 10}. The
// link set is reconstructed from Figure 4 and the path discussion of
// Section 5.3 (e.g. "node 4 can reach 1 via 10 and 2, or 7 and 2, or
// 7 and 3, or 9 and 3"):
//
//   lossy (dashed): 2–5, 4–7, 1–3, 9–3
//   solid         : 2–10, 10–5, 4–9, 9–7, 2–7, 2–1, 7–3, 4–10
//
// Groups (Section 5.3): group 1 has source 2 and receivers {3, 5};
// group 2 has source 4 and receivers {1, 7}.

#include <array>
#include <vector>

#include "mesh/common/assert.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/net/addr.hpp"

namespace mesh::testbed {

inline constexpr std::size_t kNodeCount = 8;

struct FloorLink {
  net::NodeId a;
  net::NodeId b;
  bool lossy;
};

class Floorplan {
 public:
  // Paper label of each dense node id (index = NodeId).
  static const std::array<int, kNodeCount>& labels();
  static net::NodeId idForLabel(int label);
  static int labelFor(net::NodeId id) { return labels()[id]; }

  // Approximate office positions (meters), for display only — the link
  // model is loss-based, not geometric.
  static std::vector<Vec2> positions();

  static const std::vector<FloorLink>& links();

  // Group setup of Section 5.3, in dense node ids.
  struct GroupDef {
    net::GroupId group;
    std::vector<net::NodeId> sources;
    std::vector<net::NodeId> members;
  };
  static std::vector<GroupDef> paperGroups();
};

}  // namespace mesh::testbed
