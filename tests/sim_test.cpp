// Unit tests for the discrete-event engine: EventQueue, Simulator, Timer.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "mesh/sim/event_queue.hpp"
#include "mesh/sim/small_callback.hpp"
#include "mesh/sim/simulator.hpp"
#include "mesh/sim/timer.hpp"

namespace mesh::sim {
namespace {

using namespace mesh::time_literals;

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3_s, [&] { order.push_back(3); });
  q.push(1_s, [&] { order.push_back(1); });
  q.push(2_s, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5_s, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.push(1_s, [&] { ++fired; });
  const EventId id = q.push(2_s, [&] { fired += 10; });
  q.push(3_s, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1_s, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelNullHandle) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.push(1_s, [] {});
  q.push(2_s, [] {});
  q.cancel(id);
  EXPECT_EQ(q.nextTime(), 2_s);
}

// Regression: the lazy-cancel design recorded a cancel of an already-fired
// event forever (unbounded cancelled-set growth) and decremented live_,
// corrupting empty()/size(). Generation-tagged ids must reject fired
// handles outright.
TEST(EventQueue, CancelAfterFireIsRejected) {
  EventQueue q;
  const EventId id = q.push(1_s, [] {});
  q.push(2_s, [] {});
  q.pop().callback();  // fires the 1_s event
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);  // bookkeeping intact
  EXPECT_FALSE(q.empty());
  q.pop();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // still rejected on an empty queue
}

TEST(EventQueue, StaleHandleCannotCancelReusedSlot) {
  EventQueue q;
  const EventId stale = q.push(1_s, [] {});
  q.pop();  // slot returns to the free list
  int fired = 0;
  q.push(1_s, [&] { ++fired; });  // reuses the slot, new generation
  EXPECT_FALSE(q.cancel(stale));
  q.pop().callback();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelledHandleStaysDeadAfterSlotReuse) {
  EventQueue q;
  const EventId id = q.push(1_s, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  int fired = 0;
  q.push(1_s, [&] { ++fired; });
  EXPECT_FALSE(q.cancel(id));
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, MoveOnlyCapture) {
  EventQueue q;
  auto box = std::make_unique<int>(41);
  int seen = 0;
  q.push(1_s, [box = std::move(box), &seen] { seen = *box + 1; });
  q.pop().callback();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  q.push(1_s, [] {});
  q.push(2_s, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------- SmallCallback

TEST(SmallCallback, InlineVsHeapStorageBySize) {
  // The hot-path captures must stay inline; oversized ones fall to heap.
  struct Fits {
    std::array<char, SmallCallback::kInlineBytes> pad;
    void operator()() const {}
  };
  struct Oversized {
    std::array<char, SmallCallback::kInlineBytes + 1> pad;
    void operator()() const {}
  };
  static_assert(SmallCallback::storedInline<Fits>());
  static_assert(!SmallCallback::storedInline<Oversized>());

  SmallCallback inlineCb{Fits{}};
  SmallCallback heapCb{Oversized{}};
  EXPECT_TRUE(static_cast<bool>(inlineCb));
  EXPECT_TRUE(static_cast<bool>(heapCb));
  inlineCb();
  heapCb();
}

TEST(SmallCallback, InvokesAndMoves) {
  int count = 0;
  SmallCallback a{[&count] { ++count; }};
  a();
  EXPECT_EQ(count, 1);
  SmallCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(count, 2);
  SmallCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(count, 3);
}

TEST(SmallCallback, MoveOnlyCaptureInlineAndHeap) {
  // unique_ptr capture: rejected by std::function, required here. Test
  // both storage classes so the heap manager's pointer-steal is covered.
  int seen = 0;
  SmallCallback small{[p = std::make_unique<int>(7), &seen] { seen = *p; }};
  SmallCallback moved{std::move(small)};
  moved();
  EXPECT_EQ(seen, 7);

  std::array<char, 64> pad{};
  pad[0] = 3;
  auto bigLambda = [p = std::make_unique<int>(4), pad, &seen] {
    seen = *p + pad[0];
  };
  static_assert(!SmallCallback::storedInline<decltype(bigLambda)>());
  SmallCallback big{std::move(bigLambda)};
  SmallCallback bigMoved{std::move(big)};
  bigMoved();
  EXPECT_EQ(seen, 7);
}

TEST(SmallCallback, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    SmallCallback cb{[counter] { }};
    EXPECT_EQ(counter.use_count(), 2);
    SmallCallback moved{std::move(cb)};
    EXPECT_EQ(counter.use_count(), 2);  // relocation, not duplication
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// -------------------------------------------------------------- Simulator

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  SimTime seen = SimTime::zero();
  s.schedule(5_s, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 5_s);
  EXPECT_EQ(s.now(), 5_s);
}

TEST(Simulator, RelativeSchedulingComposes) {
  Simulator s;
  std::vector<std::int64_t> times;
  s.schedule(1_s, [&] {
    times.push_back(s.now().ns());
    s.schedule(2_s, [&] { times.push_back(s.now().ns()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{1'000'000'000, 3'000'000'000}));
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule(1_s, [&] { ++fired; });
  s.schedule(10_s, [&] { ++fired; });
  const auto executed = s.run(5_s);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 5_s);   // clock parked at horizon
  EXPECT_TRUE(s.hasPendingEvents());
  s.run();                   // resume
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 10_s);
}

TEST(Simulator, EventAtHorizonStillFires) {
  Simulator s;
  int fired = 0;
  s.schedule(5_s, [&] { ++fired; });
  s.run(5_s);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.schedule(1_s, [&] { ++fired; s.stop(); });
  s.schedule(2_s, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.hasPendingEvents());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule(1_s, [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  SimTime seen = SimTime::max();
  s.schedule(2_s, [&] {
    s.schedule(SimTime::seconds(-1.0), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 2_s);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(SimTime::milliseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.eventsExecuted(), 7u);
}

TEST(Simulator, DeterministicInterleaving) {
  // Two simulators fed identically must execute identically.
  auto trace = [] {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      s.schedule(SimTime::milliseconds(i % 7), [&order, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(trace(), trace());
}

// ------------------------------------------------------------------ Timer

TEST(Timer, FiresOnce) {
  Simulator s;
  Timer t{s};
  int fired = 0;
  t.start(1_s, [&] { ++fired; });
  EXPECT_TRUE(t.isRunning());
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.isRunning());
}

TEST(Timer, RestartReplacesPrevious) {
  Simulator s;
  Timer t{s};
  int which = 0;
  t.start(1_s, [&] { which = 1; });
  t.start(2_s, [&] { which = 2; });
  s.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(s.now(), 2_s);
}

TEST(Timer, CancelPreventsFiring) {
  Simulator s;
  Timer t{s};
  int fired = 0;
  t.start(1_s, [&] { ++fired; });
  t.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, DestructionCancels) {
  Simulator s;
  int fired = 0;
  {
    Timer t{s};
    t.start(1_s, [&] { ++fired; });
  }
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RestartableFromInsideCallback) {
  Simulator s;
  Timer t{s};
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 3) t.start(1_s, tick);
  };
  t.start(1_s, tick);
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now(), 3_s);
}

TEST(Timer, RemainingAndExpiry) {
  Simulator s;
  Timer t{s};
  t.start(3_s, [] {});
  EXPECT_EQ(t.expiry(), 3_s);
  EXPECT_EQ(t.remaining(), 3_s);
  s.schedule(1_s, [&] { EXPECT_EQ(t.remaining(), 2_s); });
  s.run();
}

TEST(Timer, MoveTransfersOwnership) {
  Simulator s;
  int fired = 0;
  Timer a{s};
  a.start(1_s, [&] { ++fired; });
  Timer b{std::move(a)};
  EXPECT_TRUE(b.isRunning());
  s.run();
  EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------- PeriodicTimer

TEST(PeriodicTimer, FixedPeriodFiresRepeatedly) {
  Simulator s;
  PeriodicTimer t{s};
  std::vector<std::int64_t> at;
  t.startFixed(500_ms, 1_s, [&] { at.push_back(s.now().ns()); });
  s.run(3_s);
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 500'000'000);
  EXPECT_EQ(at[1], 1'500'000'000);
  EXPECT_EQ(at[2], 2'500'000'000);
}

TEST(PeriodicTimer, StopHaltsCycle) {
  Simulator s;
  PeriodicTimer t{s};
  int count = 0;
  t.startFixed(1_s, 1_s, [&] {
    if (++count == 2) t.stop();
  });
  s.run(10_s);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, CustomDelayFunction) {
  Simulator s;
  PeriodicTimer t{s};
  std::vector<std::int64_t> at;
  std::int64_t step = 0;
  t.start(
      [&]() -> SimTime {
        ++step;
        if (step > 3) return SimTime::seconds(std::int64_t{-1});  // stop
        return SimTime::seconds(step);  // 1s, 2s, 3s gaps
      },
      [&] { at.push_back(s.now().ns()); });
  s.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 1'000'000'000);
  EXPECT_EQ(at[1], 3'000'000'000);
  EXPECT_EQ(at[2], 6'000'000'000);
}

}  // namespace
}  // namespace mesh::sim
