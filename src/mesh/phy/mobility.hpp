#pragma once
// Node mobility models.
//
// The paper's premise is a *static* mesh ("the routers in mesh networks
// are static, and thus dynamic topology changes are much less of a
// concern"). Mobility support exists to probe that premise: the
// bench_mobility extension shows how the metrics' advantage erodes as
// nodes move and probe-measured link state goes stale — the regime the
// original MANET multicast protocols were designed for.
//
// Trajectories are precomputed analytically (waypoint segments), so
// position queries are pure functions of time: no movement events, no
// perturbation of the event stream, and bit-exact reproducibility.

#include <vector>

#include "mesh/common/rng.hpp"
#include "mesh/common/simtime.hpp"
#include "mesh/common/vec2.hpp"
#include "mesh/net/addr.hpp"

namespace mesh::phy {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 positionAt(net::NodeId node, SimTime at) const = 0;
  virtual std::size_t nodeCount() const = 0;
  // Upper bound on node speed; the channel uses it to budget reachability
  // slack between cache refreshes.
  virtual double maxSpeedMps() const = 0;
};

// No movement: positions fixed forever.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(std::vector<Vec2> positions)
      : positions_{std::move(positions)} {}

  Vec2 positionAt(net::NodeId node, SimTime) const override {
    MESH_REQUIRE(node < positions_.size());
    return positions_[node];
  }
  std::size_t nodeCount() const override { return positions_.size(); }
  double maxSpeedMps() const override { return 0.0; }

 private:
  std::vector<Vec2> positions_;
};

// Random waypoint: each node repeatedly picks a uniform destination in the
// area, walks there at a uniform-random speed, pauses, repeats. The
// canonical MANET mobility model.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Params {
    double areaWidthM{1000.0};
    double areaHeightM{1000.0};
    double minSpeedMps{1.0};
    double maxSpeedMps{5.0};
    SimTime minPause{SimTime::zero()};
    SimTime maxPause{SimTime::seconds(std::int64_t{10})};
    // Trajectories are generated up to this horizon; beyond it nodes
    // freeze at their last waypoint (runs must fit the horizon).
    SimTime horizon{SimTime::seconds(std::int64_t{600})};
  };

  RandomWaypointMobility(std::size_t nodeCount, Params params, Rng rng);

  Vec2 positionAt(net::NodeId node, SimTime at) const override;
  std::size_t nodeCount() const override { return legs_.size(); }
  double maxSpeedMps() const override { return params_.maxSpeedMps; }

  // Initial placement (t = 0), e.g. for connectivity checks.
  std::vector<Vec2> initialPositions() const;

 private:
  struct Leg {
    SimTime start;       // departure time from `from`
    SimTime arrive;      // arrival time at `to`
    SimTime departNext;  // arrive + pause
    Vec2 from;
    Vec2 to;
  };

  Params params_;
  std::vector<std::vector<Leg>> legs_;  // per node, time-ordered
};

}  // namespace mesh::phy
