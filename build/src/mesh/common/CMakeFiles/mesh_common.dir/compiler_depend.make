# Empty compiler generated dependencies file for mesh_common.
# This may be replaced when dependencies are built.
