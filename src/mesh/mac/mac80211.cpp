#include "mesh/mac/mac80211.hpp"

#include <algorithm>

#include "mesh/common/log.hpp"
#include "mesh/trace/trace_collector.hpp"

namespace mesh::mac {

Mac80211::Mac80211(sim::Simulator& simulator, phy::Radio& radio,
                   MacParams params, Rng rng)
    : simulator_{simulator},
      radio_{radio},
      params_{params},
      rng_{rng},
      cw_{params.cwMin},
      accessTimer_{simulator},
      navTimer_{simulator},
      responseTimer_{simulator},
      txDoneTimer_{simulator},
      sifsTimer_{simulator} {
  MESH_REQUIRE(params_.cwMin > 0 && params_.cwMax >= params_.cwMin);
  radio_.setReceiveCallback(
      [this](const phy::PhyFramePtr& frame, const phy::RxInfo& info) {
        onRadioReceive(frame, info);
      });
  radio_.setMediumCallback([this](bool busy) { onPhysicalMedium(busy); });
  dupCache_.assign(params_.dupCacheSize, {net::kInvalidNode, 0});
  queue_.init(params_.queueLimit);
}

// --------------------------------------------------------------- medium

bool Mac80211::effectiveBusy() const {
  return physBusy_ || simulator_.now() < navUntil_;
}

void Mac80211::onPhysicalMedium(bool busy) {
  physBusy_ = busy;
  updateMediumState();
}

void Mac80211::setNav(SimTime until) {
  if (until <= navUntil_) return;
  navUntil_ = until;
  navTimer_.start(until - simulator_.now(), [this] { updateMediumState(); });
  updateMediumState();
}

void Mac80211::updateMediumState() {
  const bool busy = effectiveBusy();
  if (busy == lastEffectiveBusy_) return;
  lastEffectiveBusy_ = busy;
  if (busy) {
    onBusyEdge();
  } else {
    onIdleEdge();
  }
}

void Mac80211::onBusyEdge() { pauseCountdown(); }

void Mac80211::onIdleEdge() {
  idleSince_ = simulator_.now();
  if (contending_) resumeCountdown();
}

// ----------------------------------------------------------------- access

void Mac80211::send(net::PacketPtr payload, net::NodeId dst) {
  MESH_REQUIRE(payload != nullptr);
  if (queueDropFault_) {
    // Injected MAC-layer fault (FaultKind::MacQueueDrop): the queue
    // silently swallows every payload while active — the upper layers see
    // neither an error nor a tx-status report, exactly like a firmware
    // queue stall.
    ++stats_.faultQueueDrops;
    if (trace_ != nullptr) {
      trace_->drop(simulator_.now(), nodeId(), payload.get(), payload->kind(),
                   static_cast<std::uint32_t>(payload->sizeBytes()),
                   trace::DropReason::FaultMacQueueDrop);
    }
    return;
  }
  if (queue_.size() >= params_.queueLimit) {
    ++stats_.queueDrops;
    switch (payload->kind()) {
      case net::PacketKind::Data: ++stats_.queueDropsData; break;
      case net::PacketKind::Probe: ++stats_.queueDropsProbe; break;
      default: ++stats_.queueDropsControl; break;
    }
    if (trace_ != nullptr) {
      trace_->drop(simulator_.now(), nodeId(), payload.get(), payload->kind(),
                   static_cast<std::uint32_t>(payload->sizeBytes()),
                   trace::DropReason::MacQueueTail);
    }
    return;
  }
  TxJob job;
  job.payload = std::move(payload);
  job.dst = dst;
  job.seq = ++seqCounter_;
  job.usesRts = dst != net::kBroadcastNode &&
                job.payload->sizeBytes() > params_.rtsThresholdBytes;
  queue_.push(std::move(job));
  ++stats_.enqueued;
  if (trace_ != nullptr) {
    trace_->enqueue(simulator_.now(), nodeId(), *queue_.back().payload);
  }
  startJobIfIdle();
}

void Mac80211::startJobIfIdle() {
  if (current_ || queue_.empty()) return;
  if (waitState_ != WaitState::None) return;
  current_ = queue_.pop();
  const bool force = needBackoff_;
  needBackoff_ = false;
  beginContention(force);
}

void Mac80211::beginContention(bool forceBackoff) {
  contending_ = true;
  if (backoffSlots_ < 0) {
    // Immediate access: medium idle for at least DIFS and no post-tx
    // backoff pending.
    if (!forceBackoff && !effectiveBusy() &&
        simulator_.now() - idleSince_ >= params_.difs) {
      backoffSlots_ = 0;
      accessGranted();
      return;
    }
    backoffSlots_ = static_cast<int>(
        rng_.uniformInt(0, static_cast<std::int64_t>(cw_)));
  }
  resumeCountdown();
}

void Mac80211::resumeCountdown() {
  MESH_ASSERT(contending_);
  if (effectiveBusy()) return;  // the idle edge will resume us
  const SimTime idleFor = simulator_.now() - idleSince_;
  const SimTime remainingDifs =
      idleFor >= params_.difs ? SimTime::zero() : params_.difs - idleFor;
  countdownStart_ = simulator_.now();
  countdownDifs_ = remainingDifs;
  accessTimer_.start(remainingDifs + params_.slotTime * backoffSlots_,
                     [this] { accessGranted(); });
}

void Mac80211::pauseCountdown() {
  if (!accessTimer_.isRunning()) return;
  accessTimer_.cancel();
  // Credit fully elapsed slots.
  const SimTime elapsed = simulator_.now() - countdownStart_;
  if (elapsed > countdownDifs_) {
    const std::int64_t consumed =
        (elapsed - countdownDifs_).ns() / params_.slotTime.ns();
    backoffSlots_ = std::max(0, backoffSlots_ - static_cast<int>(consumed));
  }
}

void Mac80211::accessGranted() {
  MESH_ASSERT(current_.has_value());
  backoffSlots_ = -1;
  contending_ = false;
  if (current_->usesRts) {
    transmitRts();
  } else {
    transmitData();
  }
}

// ------------------------------------------------------------ transmission

SimTime Mac80211::airtime(std::size_t frameBytes) const {
  return radio_.params().frameAirtime(frameBytes);
}

SimTime Mac80211::airtime(std::size_t frameBytes, rate::TxVector v) const {
  if (v.rateAware() && rateTable_ != nullptr) {
    return rateTable_->frameAirtime(frameBytes, v.code);
  }
  return airtime(frameBytes);
}

rate::TxVector Mac80211::vectorFor(const TxJob& job) {
  if (rateController_ == nullptr) return {};
  // A rate hint pins the choice (probe stamping: the embedded code must
  // match the actual transmit rate).
  if (job.payload->rateHint() != 0) {
    return rate::TxVector{job.payload->rateHint()};
  }
  if (job.dst == net::kBroadcastNode) {
    // Broadcast DATA rides the controller's multicast rate; control floods
    // stay at the basic rate so route discovery is comparable across
    // policies (and reaches every neighbor the metrics can see).
    return job.payload->kind() == net::PacketKind::Data
               ? rateController_->dataVector()
               : rate::TxVector{};
  }
  return rateController_->unicastVector(job.dst, job.retries);
}

void Mac80211::transmitFrame(const Frame& frame, rate::TxVector v) {
  // Serialize the padded header into a stack buffer; the payload bytes stay
  // in the pooled packet the frame carries. Zero heap traffic per frame.
  std::uint8_t header[kDataHeaderBytes];
  const std::size_t headerLen = frame.serializeHeader(header);
  auto phyFrame =
      phy::makeFrame(std::span<const std::uint8_t>{header, headerLen},
                     frame.sizeBytes(), frame.payload, v);
  radio_.transmit(phyFrame, airtime(phyFrame->sizeBytes(), v));
}

namespace {
std::uint16_t saturateUs(SimTime t) {
  const auto us = t.ns() / 1000;
  return us > 0xFFFF ? 0xFFFF : static_cast<std::uint16_t>(us);
}
}  // namespace

void Mac80211::transmitRts() {
  MESH_ASSERT(current_.has_value());
  // The RTS itself goes at the basic rate, but its NAV reservation must
  // cover the DATA frame at the rate it will actually use.
  const rate::TxVector dataVec = vectorFor(*current_);
  const SimTime ctsAt = airtime(kCtsBytes);
  const SimTime dataAt =
      airtime(dataFrameBytes(current_->payload->sizeBytes()), dataVec);
  const SimTime ackAt = airtime(kAckBytes);
  const SimTime reservation =
      params_.sifs * 3 + ctsAt + dataAt + ackAt;

  Frame rts;
  rts.header.type = FrameType::Rts;
  rts.header.retry = current_->retries > 0;
  rts.header.durationUs = saturateUs(reservation);
  rts.header.dst = current_->dst;
  rts.header.src = nodeId();
  rts.header.seq = current_->seq;

  ++stats_.rtsSent;
  transmitFrame(rts);
  const SimTime rtsAt = airtime(kRtsBytes);
  txDoneTimer_.start(rtsAt, [this, ctsAt] {
    waitState_ = WaitState::Cts;
    responseTimer_.start(params_.sifs + ctsAt + params_.slotTime * 2,
                         [this] { onCtsTimeout(); });
  });
}

void Mac80211::transmitData() {
  MESH_ASSERT(current_.has_value());
  const bool broadcast = current_->dst == net::kBroadcastNode;
  const rate::TxVector dataVec = vectorFor(*current_);
  const SimTime dataAt =
      airtime(dataFrameBytes(current_->payload->sizeBytes()), dataVec);
  const SimTime ackAt = airtime(kAckBytes);

  Frame data;
  data.header.type = FrameType::Data;
  data.header.retry = current_->retries > 0;
  data.header.durationUs =
      broadcast ? 0 : saturateUs(params_.sifs + ackAt);
  data.header.dst = current_->dst;
  data.header.src = nodeId();
  data.header.seq = current_->seq;
  data.payload = current_->payload;

  if (broadcast) {
    ++stats_.broadcastSent;
  } else {
    ++stats_.unicastSent;
  }
  transmitFrame(data, dataVec);
  txDoneTimer_.start(dataAt, [this] { onDataTxComplete(); });
}

void Mac80211::onDataTxComplete() {
  MESH_ASSERT(current_.has_value());
  if (current_->dst == net::kBroadcastNode) {
    // Broadcast: fire and forget — this is the whole point of Section 2.1.
    finishJob(true);
    return;
  }
  const SimTime ackAt = airtime(kAckBytes);
  waitState_ = WaitState::Ack;
  responseTimer_.start(params_.sifs + ackAt + params_.slotTime * 2,
                       [this] { onAckTimeout(); });
}

void Mac80211::onCtsTimeout() {
  ++stats_.ctsTimeouts;
  waitState_ = WaitState::None;
  retryFailure(/*rtsStage=*/true);
}

void Mac80211::onAckTimeout() {
  ++stats_.ackTimeouts;
  waitState_ = WaitState::None;
  retryFailure(/*rtsStage=*/false);
}

void Mac80211::retryFailure(bool rtsStage) {
  MESH_ASSERT(current_.has_value());
  ++current_->retries;
  ++stats_.retries;
  const int limit = rtsStage ? params_.shortRetryLimit
                             : (current_->usesRts ? params_.longRetryLimit
                                                  : params_.shortRetryLimit);
  if (current_->retries > limit) {
    ++stats_.retryDrops;
    if (trace_ != nullptr) {
      trace_->drop(simulator_.now(), nodeId(), current_->payload.get(),
                   current_->payload->kind(),
                   static_cast<std::uint32_t>(current_->payload->sizeBytes()),
                   rtsStage ? trace::DropReason::MacCtsTimeout
                            : trace::DropReason::MacRetryExhausted);
    }
    if (txStatusCallback_) {
      txStatusCallback_(current_->payload, current_->dst, false);
    }
    cw_ = params_.cwMin;
    current_.reset();
    needBackoff_ = true;
    startJobIfIdle();
    return;
  }
  cw_ = std::min(cw_ * 2 + 1, params_.cwMax);
  beginContention(/*forceBackoff=*/true);
}

void Mac80211::finishJob(bool success) {
  MESH_ASSERT(current_.has_value());
  if (success && current_->dst != net::kBroadcastNode && txStatusCallback_) {
    txStatusCallback_(current_->payload, current_->dst, true);
  }
  cw_ = params_.cwMin;
  current_.reset();
  needBackoff_ = true;
  startJobIfIdle();
}

// --------------------------------------------------------------- reception

void Mac80211::onRadioReceive(const phy::PhyFramePtr& frame,
                              const phy::RxInfo& info) {
  (void)info;
  const auto header = Frame::parseHeader(frame->headerBytes());
  if (!header) return;
  const FrameHeader& h = *header;

  // Virtual carrier sense: any decodable frame not addressed to us
  // reserves the medium for its advertised duration.
  if (h.dst != nodeId() && h.durationUs > 0) {
    setNav(simulator_.now() +
           SimTime::microseconds(static_cast<std::int64_t>(h.durationUs)));
  }

  switch (h.type) {
    case FrameType::Rts:
      if (h.dst == nodeId()) handleRts(h);
      break;
    case FrameType::Cts:
      if (h.dst == nodeId()) handleCts(h);
      break;
    case FrameType::Data:
      handleData(h, frame->payload);
      break;
    case FrameType::Ack:
      if (h.dst == nodeId()) handleAck(h);
      break;
  }
}

void Mac80211::handleRts(const FrameHeader& h) {
  // Respond only if our own NAV allows it (802.11 rule: an RTS is ignored
  // when virtual carrier sense says the medium is reserved).
  if (simulator_.now() < navUntil_) {
    ++stats_.responsesSkipped;
    return;
  }
  const SimTime ctsAt = airtime(kCtsBytes);
  Frame cts;
  cts.header.type = FrameType::Cts;
  const SimTime rtsReservation =
      SimTime::microseconds(static_cast<std::int64_t>(h.durationUs));
  const SimTime remaining = rtsReservation - params_.sifs - ctsAt;
  cts.header.durationUs = saturateUs(remaining.isNegative() ? SimTime::zero() : remaining);
  cts.header.dst = h.src;
  cts.header.src = nodeId();
  cts.header.seq = h.seq;
  scheduleResponse(cts);
}

void Mac80211::handleCts(const FrameHeader& h) {
  (void)h;
  if (waitState_ != WaitState::Cts) return;
  responseTimer_.cancel();
  waitState_ = WaitState::None;
  // DATA follows SIFS after the CTS. responseTimer_ is free until the DATA
  // transmission completes, so it can carry the SIFS gap.
  responseTimer_.start(params_.sifs, [this] { transmitData(); });
}

void Mac80211::handleData(const FrameHeader& h, const net::PacketPtr& payload) {
  if (h.dst == nodeId()) {
    // Always ACK a correctly received unicast frame, even a duplicate —
    // the sender retransmitted because it missed our previous ACK.
    Frame ack;
    ack.header.type = FrameType::Ack;
    ack.header.durationUs = 0;
    ack.header.dst = h.src;
    ack.header.src = nodeId();
    ack.header.seq = h.seq;
    scheduleResponse(ack);
    if (isDuplicate(h.src, h.seq)) {
      ++stats_.dupSuppressed;
      return;
    }
    ++stats_.delivered;
    if (rxCallback_ && payload) rxCallback_(payload, h.src);
  } else if (h.dst == net::kBroadcastNode) {
    // Broadcast: no ACK, no MAC-level dedup (there are no retransmissions).
    ++stats_.delivered;
    if (rxCallback_ && payload) rxCallback_(payload, h.src);
  }
  // Unicast overheard for someone else: NAV already handled.
}

void Mac80211::handleAck(const FrameHeader& h) {
  (void)h;
  if (waitState_ != WaitState::Ack) return;
  responseTimer_.cancel();
  waitState_ = WaitState::None;
  finishJob(true);
}

void Mac80211::scheduleResponse(Frame response) {
  if (sifsTimer_.isRunning()) {
    // A response is already pending; real hardware would be in its SIFS
    // turnaround. Rare — count and drop the older one.
    ++stats_.responsesSkipped;
  }
  sifsTimer_.start(params_.sifs, [this, response = std::move(response)] {
    if (radio_.isTransmitting()) {
      ++stats_.responsesSkipped;
      return;
    }
    if (response.header.type == FrameType::Cts) ++stats_.ctsSent;
    if (response.header.type == FrameType::Ack) ++stats_.ackSent;
    transmitFrame(response);
  });
}

bool Mac80211::isDuplicate(net::NodeId src, std::uint16_t seq) {
  const std::pair<net::NodeId, std::uint16_t> key{src, seq};
  for (const auto& entry : dupCache_) {
    if (entry == key) return true;
  }
  if (!dupCache_.empty()) {
    dupCache_[dupCacheNext_] = key;
    dupCacheNext_ = (dupCacheNext_ + 1) % dupCache_.size();
  }
  return false;
}

}  // namespace mesh::mac
