file(REMOVE_RECURSE
  "CMakeFiles/mesh_testbed.dir/floorplan.cpp.o"
  "CMakeFiles/mesh_testbed.dir/floorplan.cpp.o.d"
  "CMakeFiles/mesh_testbed.dir/loss_link_model.cpp.o"
  "CMakeFiles/mesh_testbed.dir/loss_link_model.cpp.o.d"
  "libmesh_testbed.a"
  "libmesh_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
