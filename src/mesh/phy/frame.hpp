#pragma once
// PhyFrame: what actually travels over the channel.
//
// The MAC serializes its header into the frame's inline byte buffer (the
// payload bytes stay in the pooled Packet — duplicating them on air would
// only burn memory; `totalBytes_` carries the true on-air size, so airtime
// is still exact). `payload` is the upper-layer packet riding inside the
// frame; carrying the pointer preserves simulation metadata (creation time
// for delay measurement, kind for byte accounting). Receivers parse the MAC
// header from headerBytes(); the pointer spares them re-deserializing the
// payload they themselves serialized.
//
// PhyFrames are pooled and intrusively refcounted exactly like Packets
// (PacketPool slots, RefPtr) — a broadcast fanning out to k receivers
// bumps one plain counter per delivery and allocates nothing.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "mesh/common/assert.hpp"
#include "mesh/net/packet.hpp"
#include "mesh/net/pool.hpp"
#include "mesh/rate/tx_vector.hpp"

namespace mesh::phy {

class PhyFrame;
using PhyFramePtr = net::RefPtr<const PhyFrame>;

PhyFramePtr makeFrame(std::span<const std::uint8_t> header,
                      std::size_t totalBytes, net::PacketPtr payload,
                      rate::TxVector tx = {});

class PhyFrame {
 public:
  // Large enough for the biggest MAC header (kDataHeaderBytes = 28).
  static constexpr std::size_t kMaxHeaderBytes = 32;

  net::PacketPtr payload;  // null for MAC control frames (RTS/CTS/ACK)
  rate::TxVector tx;       // code 0 = legacy fixed-rate path

  // True on-air size (header + payload): defines airtime.
  std::size_t sizeBytes() const { return totalBytes_; }
  // The serialized MAC header only — all any receiver ever parses.
  std::span<const std::uint8_t> headerBytes() const {
    return {header_, headerLen_};
  }

  void retain() const noexcept { ++refs_; }
  void release() const noexcept {
    if (--refs_ == 0) {
      PhyFrame* self = const_cast<PhyFrame*>(this);
      self->~PhyFrame();
      net::PacketPool::release(self);
    }
  }

 private:
  friend PhyFramePtr makeFrame(std::span<const std::uint8_t>, std::size_t,
                               net::PacketPtr, rate::TxVector);
  PhyFrame(std::span<const std::uint8_t> header, std::size_t totalBytes,
           net::PacketPtr pl, rate::TxVector txv)
      : payload{std::move(pl)},
        tx{txv},
        refs_{1},
        totalBytes_{static_cast<std::uint32_t>(totalBytes)},
        headerLen_{static_cast<std::uint8_t>(header.size())} {
    if (!header.empty()) std::memcpy(header_, header.data(), header.size());
  }
  ~PhyFrame() = default;

  mutable std::uint32_t refs_;
  std::uint32_t totalBytes_;
  std::uint8_t headerLen_;
  std::uint8_t header_[kMaxHeaderBytes];
};

inline PhyFramePtr makeFrame(std::span<const std::uint8_t> header,
                             std::size_t totalBytes, net::PacketPtr payload,
                             rate::TxVector tx) {
  MESH_ASSERT(header.size() <= PhyFrame::kMaxHeaderBytes);
  void* slot = net::PacketPool::active().allocate(sizeof(PhyFrame));
  auto* f = new (slot) PhyFrame{header, totalBytes, std::move(payload), tx};
  return PhyFramePtr::adopt(f);
}

// Legacy factory: keeps pre-pool call sites (tests/benches building junk
// frames for airtime math) compiling. Only the header prefix is retained;
// the vector's full size still defines the on-air bytes.
inline PhyFramePtr makeFrame(std::vector<std::uint8_t> bytes,
                             net::PacketPtr payload, rate::TxVector tx = {}) {
  const std::size_t n = std::min(bytes.size(), PhyFrame::kMaxHeaderBytes);
  return makeFrame(std::span<const std::uint8_t>{bytes.data(), n},
                   bytes.size(), std::move(payload), tx);
}

}  // namespace mesh::phy
