#pragma once
// Summary statistics used by the experiment harness and tests.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "mesh/common/assert.hpp"

namespace mesh {

// Online mean/variance (Welford). O(1) memory; numerically stable.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  // Population / sample variance and standard deviation.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double sampleVariance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sampleStddev() const { return std::sqrt(sampleVariance()); }

  // Half-width of the ~95% confidence interval of the mean (normal approx).
  double ci95HalfWidth() const {
    if (n_ < 2) return 0.0;
    return 1.96 * sampleStddev() / std::sqrt(static_cast<double>(n_));
  }

  void merge(const OnlineStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * o.mean_) / nt;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

// Stores samples; adds percentiles to what OnlineStats offers.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    online_.add(x);
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const { return online_.mean(); }
  double sum() const { return online_.sum(); }
  double min() const { return online_.min(); }
  double max() const { return online_.max(); }
  double stddev() const { return online_.stddev(); }
  double sampleStddev() const { return online_.sampleStddev(); }
  double ci95HalfWidth() const { return online_.ci95HalfWidth(); }
  const std::vector<double>& samples() const { return samples_; }

  // Linear-interpolated percentile, q in [0, 100].
  double percentile(double q) const {
    MESH_REQUIRE(!samples_.empty());
    MESH_REQUIRE(q >= 0.0 && q <= 100.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  }
  double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;
  OnlineStats online_;
};

}  // namespace mesh
