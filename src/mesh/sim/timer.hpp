#pragma once
// Timer: an owned, restartable one-shot timer.
//
// Protocol state machines (MAC backoff, ODMRP's δ and α windows, probe
// schedules) need timers that can be (re)started, cancelled, and that never
// fire after their owner is destroyed. Timer wraps an EventId and cancels
// it on destruction, so a protocol object can hold Timers by value and get
// lifetime safety for free (the callback captures `this`; the Timer dying
// with `this` guarantees the callback cannot outlive it).

#include <functional>
#include <utility>

#include "mesh/common/simtime.hpp"
#include "mesh/sim/simulator.hpp"

namespace mesh::sim {

class Timer {
 public:
  using Callback = std::function<void()>;

  // The simulator must outlive the timer.
  explicit Timer(Simulator& simulator) : simulator_{&simulator} {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& o) noexcept
      : simulator_{o.simulator_}, id_{std::exchange(o.id_, EventId{})},
        expiry_{o.expiry_} {}
  Timer& operator=(Timer&& o) noexcept {
    if (this != &o) {
      cancel();
      simulator_ = o.simulator_;
      id_ = std::exchange(o.id_, EventId{});
      expiry_ = o.expiry_;
    }
    return *this;
  }

  ~Timer() { cancel(); }

  // (Re)arm the timer `delay` from now. An already-armed timer is cancelled
  // first — the timer fires at most once per arm. The callable is forwarded
  // straight into the event slot (no intermediate std::function): captures
  // up to ~40 bytes — the MAC's Frame-carrying response lambdas — stay on
  // the scheduler's allocation-free path.
  template <typename F>
  void start(SimTime delay, F&& cb) {
    cancel();
    expiry_ = simulator_->now() + (delay.isNegative() ? SimTime::zero() : delay);
    id_ = simulator_->schedule(
        delay, [this, cb = std::forward<F>(cb)]() mutable {
          id_ = EventId{};  // mark expired before invoking, so isRunning()
                            // is false inside the callback and restart works
          cb();
        });
  }

  void cancel() {
    if (id_.valid()) {
      simulator_->cancel(id_);
      id_ = EventId{};
    }
  }

  bool isRunning() const { return id_.valid(); }

  // Absolute expiry of the last arm; meaningful only while running.
  SimTime expiry() const { return expiry_; }

  // Time remaining; zero when not running or already due.
  SimTime remaining() const {
    if (!isRunning() || expiry_ <= simulator_->now()) return SimTime::zero();
    return expiry_ - simulator_->now();
  }

 private:
  Simulator* simulator_;
  EventId id_{};
  SimTime expiry_{SimTime::zero()};
};

// PeriodicTimer: fires repeatedly with a fixed or caller-supplied period.
// Used by probe agents (fixed period + jitter) and ODMRP query refresh.
class PeriodicTimer {
 public:
  using Callback = std::function<void()>;
  // `nextDelay` is consulted after every firing; returning a negative time
  // stops the cycle. This lets probe agents add per-cycle jitter.
  using DelayFn = std::function<SimTime()>;

  explicit PeriodicTimer(Simulator& simulator) : timer_{simulator} {}

  void start(DelayFn nextDelay, Callback onFire) {
    nextDelay_ = std::move(nextDelay);
    onFire_ = std::move(onFire);
    arm();
  }

  // Convenience: fixed period, first firing after `initialDelay`.
  void startFixed(SimTime initialDelay, SimTime period, Callback onFire) {
    onFire_ = std::move(onFire);
    nextDelay_ = [period] { return period; };
    timer_.start(initialDelay, [this] { fire(); });
  }

  void stop() {
    timer_.cancel();
    nextDelay_ = nullptr;
    onFire_ = nullptr;
  }

  bool isRunning() const { return timer_.isRunning(); }

 private:
  void arm() {
    const SimTime d = nextDelay_();
    if (d.isNegative()) return;
    timer_.start(d, [this] { fire(); });
  }
  void fire() {
    onFire_();
    if (nextDelay_) arm();
  }

  Timer timer_;
  DelayFn nextDelay_;
  Callback onFire_;
};

}  // namespace mesh::sim
