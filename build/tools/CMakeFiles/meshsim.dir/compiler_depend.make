# Empty compiler generated dependencies file for meshsim.
# This may be replaced when dependencies are built.
