#pragma once
// Trace replay: recompute the paper's headline metrics from a trace alone.
//
// `summarizeTrace` walks the packet-lifecycle records and rebuilds PDR,
// mean end-to-end delay, throughput, and probe overhead using *only* the
// trace — none of the harness counters — replicating the harness
// arithmetic operation-for-operation (per-node Welford accumulators merged
// in node order, the same double expressions) so the two paths agree
// bit-for-bit on a correct simulator. `verifyAgainstResults` then joins
// each summary against the runner's results JSONL: any divergence is a bug
// in one of the two accounting paths.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mesh/trace/trace_reader.hpp"

namespace mesh::trace {

struct TraceSummary {
  std::uint64_t packetsSent{0};         // PktBirth records
  std::uint64_t expectedDeliveries{0};  // births × member fan-out
  std::uint64_t packetsDelivered{0};    // Deliver records
  double pdr{0.0};
  double meanDelayS{0.0};
  double throughputBps{0.0};
  std::uint64_t probeBytesReceived{0};
  std::uint64_t dataBytesReceived{0};
  std::uint64_t controlBytesReceived{0};
  double probeOverheadPct{0.0};

  std::uint64_t dropCount{0};
  std::uint64_t unknownReasonDrops{0};
  std::map<std::string, std::uint64_t> dropsByReason;

  // Fault-injection records (src/mesh/fault): applied/cleared faults seen
  // in the trace. Zero on fault-free runs.
  std::uint64_t faultsInjected{0};
  std::uint64_t faultsCleared{0};

  // Audit: Deliver records whose pid never appeared in a PktBirth — always
  // zero on a well-formed trace.
  std::uint64_t deliversWithoutBirth{0};

  // Per-collision-domain breakdown, keyed by channel index. Populated only
  // from records carrying a "channel" field (multi-channel runs); empty on
  // single-channel traces. busyTimeNs is the summed frame airtime estimate
  // (DSSS PLCP preamble + payload bits at the 2 Mb/s base rate) — meant
  // for cross-channel share comparison, not absolute medium occupancy.
  struct ChannelStats {
    std::uint64_t frames{0};     // TxStart records
    std::uint64_t drops{0};      // Drop records
    std::uint64_t delivered{0};  // Deliver records
    std::int64_t busyTimeNs{0};
  };
  std::map<int, ChannelStats> perChannel;

  // Cross-domain gateway relay (GatewayHandoff records): total handoffs
  // plus a per-gateway breakdown. Empty on gateway-less runs.
  std::uint64_t handoffFrames{0};
  std::map<net::NodeId, std::uint64_t> handoffPerGateway;
};

TraceSummary summarizeTrace(const ParsedTrace& trace);

// One metric that disagreed between the replayed trace and the harness row.
struct FieldDiff {
  std::string field;
  double traceValue{0.0};
  double harnessValue{0.0};
};

struct VerifyRunResult {
  std::string tracePath;
  std::string protocol;
  std::uint64_t seed{0};
  bool ok{false};
  std::string error;  // trace unreadable / meta mismatch
  std::vector<FieldDiff> mismatches;
  std::uint64_t unknownReasonDrops{0};
  std::uint64_t records{0};
};

struct VerifyReport {
  std::vector<VerifyRunResult> runs;
  std::size_t skipped{0};  // result rows without a trace field
  std::string error;       // results file unreadable
  bool ok() const {
    if (!error.empty()) return false;
    for (const auto& run : runs) {
      if (!run.ok) return false;
    }
    return !runs.empty();
  }
};

// Replays every trace referenced by `resultsJsonlPath` and diffs the
// recomputed metrics against the recorded ones. `traceDirOverride`
// non-empty re-roots trace paths (results moved between machines).
// Doubles compare within `relTolerance` (0 = bit-exact, the default
// expectation); integers always compare exactly.
VerifyReport verifyAgainstResults(const std::string& resultsJsonlPath,
                                  const std::string& traceDirOverride = {},
                                  double relTolerance = 0.0);

}  // namespace mesh::trace
