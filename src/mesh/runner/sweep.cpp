#include "mesh/runner/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "mesh/runner/aggregator.hpp"
#include "mesh/runner/thread_pool.hpp"

namespace mesh::runner {
namespace {

double elapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

// Serialized progress output: worker completion lines must not interleave
// mid-line.
class ProgressPrinter {
 public:
  ProgressPrinter(bool enabled, std::size_t total)
      : enabled_{enabled}, total_{total} {}

  void completed(const RunRecord& record) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock{mutex_};
    ++done_;
    if (record.ok) {
      const double eventsPerSec =
          record.wallSeconds > 0.0
              ? static_cast<double>(record.eventsExecuted) / record.wallSeconds
              : 0.0;
      std::fprintf(stderr,
                   "[bench] %3zu/%zu  topology %zu  protocol %-6s "
                   "pdr=%.4f delay=%.4fs overhead=%.2f%%  (%.1fs wall, "
                   "%.2fM ev/s, setup %.2fs %s)\n",
                   done_, total_, record.topologyIndex + 1,
                   record.protocolName.c_str(), record.results.pdr,
                   record.results.meanDelayS, record.results.probeOverheadPct,
                   record.wallSeconds, eventsPerSec / 1e6, record.setupSeconds,
                   record.snapshot.c_str());
    } else {
      std::fprintf(stderr,
                   "[bench] %3zu/%zu  topology %zu  protocol %-6s "
                   "FAILED: %s\n",
                   done_, total_, record.topologyIndex + 1,
                   record.protocolName.c_str(), record.error.c_str());
    }
    std::fflush(stderr);
  }

 private:
  bool enabled_;
  std::size_t total_;
  std::mutex mutex_;
  std::size_t done_{0};
};

// Protocol names ("ODMRP_ETX", "T-PP", "ODMRP_ETT*") become filename-safe
// tokens: alphanumerics pass through, everything else maps to '_'.
std::string sanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9');
    out += alnum ? c : '_';
  }
  return out;
}

// Deterministic per-run trace file name: the (topology, protocol, seed)
// cell fully identifies a run, so any job count produces the same file
// set and reruns overwrite rather than accumulate.
std::string traceFileName(const RunPlan& plan) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t%zu_p%zu_", plan.topologyIndex,
                plan.protocolIndex);
  return std::string{buf} + sanitizeName(plan.protocolName) + "_s" +
         std::to_string(plan.seed) + ".trace.jsonl";
}

}  // namespace

std::vector<RunPlan> buildComparisonPlans(
    const std::vector<harness::ProtocolSpec>& protocols,
    const std::function<harness::ScenarioConfig(std::uint64_t topologySeed)>&
        makeScenario,
    const harness::BenchOptions& options) {
  std::vector<RunPlan> plans;
  plans.reserve(options.topologies * protocols.size());
  for (std::size_t t = 0; t < options.topologies; ++t) {
    const std::uint64_t seed = options.baseSeed + t;
    // One factory call per topology: the scenario is topology-determined;
    // every per-cell difference below is stamped onto a copy.
    const harness::ScenarioConfig base = makeScenario(seed);
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      RunPlan plan;
      plan.topologyIndex = t;
      plan.protocolIndex = p;
      plan.seed = seed;
      plan.protocolName = protocols[p].name();
      plan.config = base;
      plan.config.protocol = protocols[p];
      plan.config.seed = seed;
      if (options.duration > SimTime::zero()) {
        plan.config.duration = options.duration;
        if (plan.config.traffic.stop > plan.config.duration) {
          plan.config.traffic.stop = plan.config.duration;
        }
      }
      if (!options.traceDir.empty()) {
        plan.config.tracePath = options.traceDir + "/" + traceFileName(plan);
      }
      plans.push_back(std::move(plan));
    }
  }
  return plans;
}

RunRecord executePlan(const RunPlan& plan, SnapshotCache* cache) {
  RunRecord record;
  record.topologyIndex = plan.topologyIndex;
  record.protocolIndex = plan.protocolIndex;
  record.seed = plan.seed;
  record.protocolName = plan.protocolName;
  record.tracePath = plan.config.tracePath;

  TopologySnapshotPtr snapshot;
  bool shouldBuild = false;
  std::string key;
  if (cache != nullptr && harness::snapshotEligible(plan.config)) {
    key = SnapshotCache::keyFor(plan.config);
    // May block while a sibling run builds this key's world; the wait is
    // excluded from setup_seconds (it is contention, not construction).
    snapshot = cache->acquire(key, shouldBuild);
  }

  const auto start = std::chrono::steady_clock::now();
  try {
    std::unique_ptr<harness::Simulation> sim;
    if (snapshot != nullptr) {
      sim = std::make_unique<harness::Simulation>(plan.config,
                                                  std::move(snapshot));
      record.snapshot = "reused";
    } else {
      sim = std::make_unique<harness::Simulation>(plan.config);
      if (shouldBuild) {
        cache->publish(key, sim->captureSnapshot());
        shouldBuild = false;
        record.snapshot = "built";
      }
    }
    record.setupSeconds = elapsedSeconds(start);
    record.results = sim->run();
    record.eventsExecuted = record.results.eventsExecuted;
    record.ok = true;
  } catch (const std::exception& e) {
    record.error = e.what();
  } catch (...) {
    record.error = "unknown exception";
  }
  // Release the claim if construction threw before publish: waiters on the
  // key re-claim and fail individually, like the cache-off path would.
  if (shouldBuild) cache->abandon(key);
  record.wallSeconds = elapsedSeconds(start);
  return record;
}

SweepReport runComparisonSweep(
    const std::vector<harness::ProtocolSpec>& protocols,
    const std::function<harness::ScenarioConfig(std::uint64_t topologySeed)>&
        makeScenario,
    const harness::BenchOptions& options, ResultSink* sink) {
  const auto sweepStart = std::chrono::steady_clock::now();
  const std::vector<RunPlan> plans =
      buildComparisonPlans(protocols, makeScenario, options);

  const std::size_t jobs =
      options.jobs == 0 ? ThreadPool::defaultWorkerCount() : options.jobs;

  // Topology-snapshot cache: on by default, MESH_TOPOLOGY_CACHE overrides
  // the BenchOptions knob either way. Scoped to this sweep — worlds are
  // shared across the sweep's runs, never across sweeps.
  const bool cacheEnabled = SnapshotCache::enabledFromEnvironment().value_or(
      options.topologyCache);
  std::unique_ptr<SnapshotCache> cache;
  if (cacheEnabled) cache = std::make_unique<SnapshotCache>();

  Aggregator aggregator{protocols, options.topologies};
  ProgressPrinter progress{options.verbose, plans.size()};

  const auto finishRun = [&](RunRecord record) {
    progress.completed(record);
    if (sink != nullptr) sink->write(record);
    aggregator.deliver(std::move(record));
  };

  if (jobs <= 1) {
    // Legacy serial path: everything on the calling thread, in plan order.
    for (const RunPlan& plan : plans) {
      finishRun(executePlan(plan, cache.get()));
    }
  } else {
    ThreadPool pool{jobs};
    SnapshotCache* cachePtr = cache.get();
    for (const RunPlan& plan : plans) {
      pool.submit([&plan, &finishRun, cachePtr] {
        finishRun(executePlan(plan, cachePtr));
      });
    }
    pool.wait();
  }

  SweepReport report;
  report.rows = aggregator.rows();
  report.records = aggregator.records();
  report.failures = aggregator.failureCount();
  report.wallSeconds = elapsedSeconds(sweepStart);
  report.jobs = jobs;
  for (const RunRecord& record : report.records) {
    report.setupSeconds += record.setupSeconds;
    if (record.snapshot == "built") ++report.snapshotsBuilt;
    if (record.snapshot == "reused") ++report.snapshotsReused;
  }
  return report;
}

}  // namespace mesh::runner

namespace mesh::harness {

// Declared in mesh/harness/experiment.hpp; lives here so the harness
// library stays below the runner in the dependency order (runner links
// harness, never the reverse). Any binary linking mesh::mesh gets it.
std::vector<ComparisonRow> runProtocolComparison(
    const std::vector<ProtocolSpec>& protocols,
    const std::function<ScenarioConfig(std::uint64_t topologySeed)>&
        makeScenario,
    const BenchOptions& options) {
  std::unique_ptr<runner::JsonlResultSink> sink;
  if (!options.jsonlPath.empty()) {
    sink = std::make_unique<runner::JsonlResultSink>(options.jsonlPath);
  }
  runner::SweepReport report =
      runner::runComparisonSweep(protocols, makeScenario, options, sink.get());
  if (options.verbose && report.jobs > 1) {
    std::fprintf(stderr, "[bench] sweep: %zu runs on %zu workers in %.1fs\n",
                 report.records.size(), report.jobs, report.wallSeconds);
  }
  if (options.verbose &&
      (report.snapshotsBuilt > 0 || report.snapshotsReused > 0)) {
    const std::size_t cached = report.snapshotsBuilt + report.snapshotsReused;
    const double hitRate =
        cached > 0 ? 100.0 * static_cast<double>(report.snapshotsReused) /
                         static_cast<double>(cached)
                   : 0.0;
    std::fprintf(stderr,
                 "[bench] snapshots: %zu built, %zu reused (%.0f%% hit rate), "
                 "total setup %.2fs\n",
                 report.snapshotsBuilt, report.snapshotsReused, hitRate,
                 report.setupSeconds);
  }
  // Surface failed runs even when not verbose: a diverging simulation must
  // fail loudly in the report, not vanish from the averages silently.
  for (const runner::RunRecord& record : report.records) {
    if (record.ok) continue;
    std::fprintf(stderr,
                 "[bench] run FAILED  topology %zu  protocol %s  seed %llu: %s\n",
                 record.topologyIndex + 1, record.protocolName.c_str(),
                 static_cast<unsigned long long>(record.seed),
                 record.error.c_str());
  }
  return std::move(report.rows);
}

}  // namespace mesh::harness
