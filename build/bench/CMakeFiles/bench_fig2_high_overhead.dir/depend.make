# Empty dependencies file for bench_fig2_high_overhead.
# This may be replaced when dependencies are built.
