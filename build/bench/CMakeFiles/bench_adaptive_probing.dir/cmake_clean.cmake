file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_probing.dir/bench_adaptive_probing.cpp.o"
  "CMakeFiles/bench_adaptive_probing.dir/bench_adaptive_probing.cpp.o.d"
  "bench_adaptive_probing"
  "bench_adaptive_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
