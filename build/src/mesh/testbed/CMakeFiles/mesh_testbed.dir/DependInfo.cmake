
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/testbed/floorplan.cpp" "src/mesh/testbed/CMakeFiles/mesh_testbed.dir/floorplan.cpp.o" "gcc" "src/mesh/testbed/CMakeFiles/mesh_testbed.dir/floorplan.cpp.o.d"
  "/root/repo/src/mesh/testbed/loss_link_model.cpp" "src/mesh/testbed/CMakeFiles/mesh_testbed.dir/loss_link_model.cpp.o" "gcc" "src/mesh/testbed/CMakeFiles/mesh_testbed.dir/loss_link_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/common/CMakeFiles/mesh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/sim/CMakeFiles/mesh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/net/CMakeFiles/mesh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/phy/CMakeFiles/mesh_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
