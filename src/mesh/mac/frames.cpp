#include "mesh/mac/frames.hpp"

#include "mesh/common/assert.hpp"

namespace mesh::mac {

const char* toString(FrameType type) {
  switch (type) {
    case FrameType::Data: return "DATA";
    case FrameType::Rts: return "RTS";
    case FrameType::Cts: return "CTS";
    case FrameType::Ack: return "ACK";
  }
  return "?";
}

std::size_t Frame::headerBytes(FrameType type) {
  switch (type) {
    case FrameType::Data: return kDataHeaderBytes;
    case FrameType::Rts: return kRtsBytes;
    case FrameType::Cts: return kCtsBytes;
    case FrameType::Ack: return kAckBytes;
  }
  return kDataHeaderBytes;
}

std::size_t dataFrameBytes(std::size_t payloadBytes) {
  return kDataHeaderBytes + payloadBytes;
}

std::size_t Frame::sizeBytes() const {
  return headerBytes(header.type) + (payload ? payload->sizeBytes() : 0);
}

std::size_t Frame::serializeHeader(std::span<std::uint8_t> out) const {
  const std::size_t headerLen = headerBytes(header.type);
  MESH_REQUIRE(out.size() >= headerLen);
  net::ByteWriter w{out.first(headerLen)};
  w.u8(static_cast<std::uint8_t>(header.type));
  w.u8(header.retry ? 1 : 0);
  w.u16(header.durationUs);
  w.u16(header.dst);
  w.u16(header.src);
  w.u16(header.seq);
  // Pad the header to its standard on-air length (addresses we do not
  // model, frame control subfields, FCS).
  MESH_ASSERT(w.size() <= headerLen);
  w.zeros(headerLen - w.size());
  return headerLen;
}

std::vector<std::uint8_t> Frame::serialize() const {
  std::vector<std::uint8_t> out(headerBytes(header.type));
  serializeHeader(out);
  if (payload) {
    out.insert(out.end(), payload->bytes().begin(), payload->bytes().end());
  }
  return out;
}

std::optional<FrameHeader> Frame::parseHeader(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kCtsBytes) return std::nullopt;  // smallest frame
  net::ByteReader r{bytes};
  FrameHeader h;
  const std::uint8_t rawType = r.u8();
  if (rawType > static_cast<std::uint8_t>(FrameType::Ack)) return std::nullopt;
  h.type = static_cast<FrameType>(rawType);
  h.retry = r.u8() != 0;
  h.durationUs = r.u16();
  h.dst = r.u16();
  h.src = r.u16();
  h.seq = r.u16();
  if (bytes.size() < headerBytes(h.type)) return std::nullopt;
  return h;
}

}  // namespace mesh::mac
