// Parallel experiment runner: thread pool, deterministic aggregation,
// result sinks, and per-run failure capture.
//
// The load-bearing test is ParallelIsBitIdenticalToSerial: jobs=4 must
// produce byte-for-byte the same ComparisonRow statistics as the legacy
// serial path, because each Simulation forks its Rng from the run seed and
// the Aggregator folds in (topology, protocol) order regardless of
// completion order.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mesh/harness/experiment.hpp"
#include "mesh/harness/scenario.hpp"
#include "mesh/runner/aggregator.hpp"
#include "mesh/runner/result_sink.hpp"
#include "mesh/runner/sweep.hpp"
#include "mesh/runner/thread_pool.hpp"

namespace mesh {
namespace {

using namespace mesh::time_literals;
using harness::BenchOptions;
using harness::ComparisonRow;
using harness::ProtocolSpec;
using harness::ScenarioConfig;

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, DrainsAllJobsExactlyOnce) {
  constexpr std::size_t kJobs = 500;
  std::vector<std::atomic<int>> hits(kJobs);
  runner::ThreadPool pool{4};
  EXPECT_EQ(pool.workerCount(), 4u);
  for (std::size_t i = 0; i < kJobs; ++i) {
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.wait();
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
  EXPECT_EQ(pool.jobsExecuted(), kJobs);
  EXPECT_EQ(pool.jobsThrown(), 0u);
}

TEST(ThreadPool, SurvivesThrowingJobsWithoutDeadlock) {
  std::atomic<int> ran{0};
  runner::ThreadPool pool{3};
  for (int i = 0; i < 60; ++i) {
    if (i % 3 == 0) {
      pool.submit([] { throw std::runtime_error{"boom"}; });
    } else {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  pool.wait();  // must not hang on the 20 throwing jobs
  EXPECT_EQ(ran.load(), 40);
  EXPECT_EQ(pool.jobsExecuted(), 60u);
  EXPECT_EQ(pool.jobsThrown(), 20u);
}

TEST(ThreadPool, WaitCanBeCalledRepeatedly) {
  runner::ThreadPool pool{2};
  pool.wait();  // nothing submitted yet
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

// ------------------------------------------------------------ aggregator

runner::RunRecord recordFor(std::size_t t, std::size_t p, double pdr) {
  runner::RunRecord record;
  record.topologyIndex = t;
  record.protocolIndex = p;
  record.seed = 1000 + t;
  record.ok = true;
  record.results.pdr = pdr;
  return record;
}

TEST(Aggregator, FoldsInTopologyMajorOrderRegardlessOfDeliveryOrder) {
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::original(), ProtocolSpec::with(metrics::MetricKind::Etx)};

  runner::Aggregator forward{protocols, 3};
  runner::Aggregator shuffled{protocols, 3};
  std::vector<runner::RunRecord> records;
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t p = 0; p < 2; ++p) {
      records.push_back(recordFor(t, p, 0.1 * static_cast<double>(3 * t + p)));
    }
  }
  for (const auto& r : records) forward.deliver(r);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    shuffled.deliver(*it);
  }

  const auto a = forward.rows();
  const auto b = shuffled.rows();
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(a[p].pdr.count(), 3u);
    EXPECT_EQ(a[p].pdr.mean(), b[p].pdr.mean());
    EXPECT_EQ(a[p].pdr.ci95HalfWidth(), b[p].pdr.ci95HalfWidth());
  }
  // records() comes back in deterministic (topology, protocol) order.
  const auto ordered = shuffled.records();
  ASSERT_EQ(ordered.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ordered[i].topologyIndex, i / 2);
    EXPECT_EQ(ordered[i].protocolIndex, i % 2);
  }
}

// ------------------------------------------------------------ sweeps

// A deliberately small mesh so a full sweep stays fast: 10 nodes in a
// 300 m square (well-connected at the 250 m nominal range), one group,
// a few seconds of traffic.
ScenarioConfig smallScenario(std::uint64_t topologySeed) {
  ScenarioConfig config;
  config.nodeCount = 10;
  config.areaWidthM = 300.0;
  config.areaHeightM = 300.0;
  config.rayleighFading = true;
  config.duration = 6_s;
  config.traffic.payloadBytes = 128;
  config.traffic.packetsPerSecond = 10.0;
  config.traffic.start = 1_s;
  config.traffic.stop = 6_s;
  Rng groupRng = Rng{topologySeed}.fork("groups");
  config.groups = harness::makeRandomGroups(config.nodeCount, 1, 3, 1, groupRng);
  return config;
}

BenchOptions smallOptions(std::size_t jobs) {
  BenchOptions options;
  options.topologies = 3;
  options.duration = SimTime::zero();  // keep the scenario's 6 s
  options.baseSeed = 1000;
  options.verbose = false;
  options.jobs = jobs;
  return options;
}

void expectStatsBitIdentical(const OnlineStats& a, const OnlineStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sampleVariance(), b.sampleVariance());
  EXPECT_EQ(a.ci95HalfWidth(), b.ci95HalfWidth());
}

TEST(Sweep, ParallelIsBitIdenticalToSerial) {
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::original(), ProtocolSpec::with(metrics::MetricKind::Etx),
      ProtocolSpec::with(metrics::MetricKind::Spp)};

  const std::vector<ComparisonRow> serial =
      harness::runProtocolComparison(protocols, smallScenario, smallOptions(1));
  const std::vector<ComparisonRow> parallel =
      harness::runProtocolComparison(protocols, smallScenario, smallOptions(4));

  ASSERT_EQ(serial.size(), protocols.size());
  ASSERT_EQ(parallel.size(), protocols.size());
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    EXPECT_EQ(serial[p].name, parallel[p].name);
    expectStatsBitIdentical(serial[p].pdr, parallel[p].pdr);
    expectStatsBitIdentical(serial[p].throughputBps, parallel[p].throughputBps);
    expectStatsBitIdentical(serial[p].delayS, parallel[p].delayS);
    expectStatsBitIdentical(serial[p].overheadPct, parallel[p].overheadPct);
    expectStatsBitIdentical(serial[p].controlBytes, parallel[p].controlBytes);
    EXPECT_GT(serial[p].pdr.count(), 0u);
  }
}

TEST(Sweep, ThrowingRunIsReportedWithoutAbortingTheSweep) {
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::with(metrics::MetricKind::Etx)};
  const auto makeScenario = [](std::uint64_t seed) {
    ScenarioConfig config = smallScenario(seed);
    if (seed == 1001) {
      // The factory runs inside Simulation::build() on the worker — a
      // diverging run, captured per-record instead of killing the sweep.
      config.linkModelFactory =
          [](sim::Simulator&, Rng&) -> std::unique_ptr<phy::LinkModel> {
        throw std::runtime_error{"injected divergence"};
      };
    }
    return config;
  };

  const runner::SweepReport report = runner::runComparisonSweep(
      protocols, makeScenario, smallOptions(4), nullptr);

  EXPECT_EQ(report.failures, 1u);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_TRUE(report.records[0].ok);
  EXPECT_FALSE(report.records[1].ok);
  EXPECT_NE(report.records[1].error.find("injected divergence"),
            std::string::npos);
  EXPECT_TRUE(report.records[2].ok);
  // The failed topology is excluded from the aggregates; the rest fold.
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].pdr.count(), 2u);
}

TEST(Sweep, JsonlSinkReceivesOneRecordPerRun) {
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::original(), ProtocolSpec::with(metrics::MetricKind::Spp)};
  const std::string path = testing::TempDir() + "runner_test_sweep.jsonl";

  {
    runner::JsonlResultSink sink{path};
    const runner::SweepReport report = runner::runComparisonSweep(
        protocols, smallScenario, smallOptions(2), &sink);
    EXPECT_EQ(report.records.size(), 6u);
    EXPECT_EQ(report.failures, 0u);
    EXPECT_EQ(report.jobs, 2u);
    for (const runner::RunRecord& record : report.records) {
      EXPECT_TRUE(record.ok);
      EXPECT_GT(record.eventsExecuted, 0u);
      EXPECT_GE(record.wallSeconds, 0.0);
    }
  }

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::string line;
  bool sawSeed = false, sawProtocol = false, sawWall = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"seed\":1000") != std::string::npos) sawSeed = true;
    if (line.find("\"protocol\":\"SPP\"") != std::string::npos) sawProtocol = true;
    if (line.find("\"wall_s\":") != std::string::npos) sawWall = true;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(line.find("\"pdr\":"), std::string::npos);
    EXPECT_NE(line.find("\"events\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 6u);
  EXPECT_TRUE(sawSeed);
  EXPECT_TRUE(sawProtocol);
  EXPECT_TRUE(sawWall);
  std::remove(path.c_str());
}

TEST(JsonlSink, EscapesControlAndQuoteCharacters) {
  runner::RunRecord record;
  record.protocolName = "OD\"MRP";
  record.error = "line1\nline2\ttab";
  const std::string json = runner::JsonlResultSink::toJson(record);
  EXPECT_NE(json.find("\"protocol\":\"OD\\\"MRP\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

TEST(Sweep, MeshsimStyleSingleProtocolRepeatSweep) {
  // What tools/meshsim does with --repeat 3 --jobs 2: one protocol, three
  // seeds; base seed comes from the scenario file.
  const std::vector<ProtocolSpec> protocols = {
      ProtocolSpec::with(metrics::MetricKind::Metx)};
  BenchOptions options = smallOptions(2);
  options.baseSeed = 7;
  const runner::SweepReport report =
      runner::runComparisonSweep(protocols, smallScenario, options, nullptr);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records[0].seed, 7u);
  EXPECT_EQ(report.records[1].seed, 8u);
  EXPECT_EQ(report.records[2].seed, 9u);
  EXPECT_EQ(report.rows[0].pdr.count(), 3u);
}

}  // namespace
}  // namespace mesh
