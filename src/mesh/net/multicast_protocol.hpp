#pragma once
// MulticastProtocol: the interface every multicast routing protocol in
// this library implements.
//
// The paper (Section 3): "the various link-quality metrics can easily be
// incorporated into any other routing protocol". This interface is where
// that claim is made concrete: the harness, traffic generators, and
// statistics are written against it, and both ODMRP (mesh-based) and
// TreeMulticast (MAODV-inspired, tree-based — the Section 4.3 discussion)
// plug in beneath it.

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "mesh/net/addr.hpp"
#include "mesh/net/packet.hpp"

namespace mesh::trace {
class TraceCollector;
}

namespace mesh::net {

// Counters shared by all protocol implementations.
struct ProtocolStats {
  std::uint64_t queriesOriginated{0};
  std::uint64_t queriesForwarded{0};
  std::uint64_t duplicateQueriesForwarded{0};
  std::uint64_t queriesDropped{0};
  std::uint64_t repliesOriginated{0};
  std::uint64_t repliesForwarded{0};
  std::uint64_t routeEstablished{0};
  std::uint64_t dataOriginated{0};
  std::uint64_t dataForwarded{0};
  std::uint64_t dataDelivered{0};
  std::uint64_t dataDuplicates{0};
  std::uint64_t controlBytesSent{0};
  std::uint64_t dataBytesSent{0};
};

class MulticastProtocol {
 public:
  using SendFn = std::function<void(PacketPtr)>;  // link-layer broadcast
  using DeliverFn = std::function<void(GroupId, NodeId, std::uint32_t,
                                       const PacketPtr&,
                                       std::span<const std::uint8_t>)>;

  virtual ~MulticastProtocol() = default;

  virtual NodeId nodeId() const = 0;

  // Membership and source roles.
  virtual void joinGroup(GroupId group) = 0;
  virtual void leaveGroup(GroupId group) = 0;
  virtual bool isMember(GroupId group) const = 0;
  virtual void startSource(GroupId group) = 0;
  virtual void stopSource(GroupId group) = 0;

  // Data path. The protocol copies `payload` into its (pooled) wire packet
  // before returning, so callers may reuse the buffer — the CBR source keeps
  // one payload buffer for the whole run.
  virtual void sendData(GroupId group, std::span<const std::uint8_t> payload) = 0;
  virtual void setDeliverCallback(DeliverFn cb) = 0;

  // Called for every received packet of kinds Control and Data.
  virtual void onPacket(const PacketPtr& packet, NodeId from) = 0;

  // Observability: attach a packet-lifecycle trace collector (null to
  // detach). Protocols emit PktBirth / Forward / Drop{reason} / MemberJoin
  // records through it; the default implementation ignores tracing.
  virtual void setTrace(trace::TraceCollector* collector) { (void)collector; }

  // Introspection.
  virtual bool isForwarder(GroupId group) const = 0;
  virtual const ProtocolStats& stats() const = 0;
  virtual const std::unordered_map<LinkKey, std::uint64_t, LinkKeyHash>&
  dataEdgeCounts() const = 0;
};

}  // namespace mesh::net
