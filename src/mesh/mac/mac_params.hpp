#pragma once
// IEEE 802.11 DCF timing and policy parameters.
//
// Defaults are 802.11 DSSS (the 2 Mbps PHY of the paper): slot 20 µs,
// SIFS 10 µs, DIFS = SIFS + 2·slot = 50 µs, CW 31..1023. Unicast uses
// RTS/CTS above the threshold plus ACK/retransmission; broadcast uses
// none of these — the asymmetry Section 2.1 of the paper builds on.

#include <cstddef>
#include <cstdint>

#include "mesh/common/simtime.hpp"
#include "mesh/rate/airtime.hpp"

namespace mesh::mac {

struct MacParams {
  // DSSS PHY timing, single-sourced from mesh/rate/airtime.hpp so the MAC
  // and the rate table can never drift apart.
  SimTime slotTime{rate::kDsssSlotTime};
  SimTime sifs{rate::kDsssSifs};
  SimTime difs{rate::kDsssDifs};

  // Contention window bounds (number of slots is drawn from [0, cw]).
  int cwMin{31};
  int cwMax{1023};

  // Retry limits (802.11: short counter for frames protected by RTS/CTS
  // i.e. >= threshold uses the *long* limit; we follow the common
  // simulator convention: short limit for RTS and small data, long limit
  // for RTS-protected data).
  int shortRetryLimit{7};
  int longRetryLimit{4};

  // Unicast payloads strictly larger than this are preceded by RTS/CTS.
  // The paper's description ("MAC layer unicast involves an RTS/CTS
  // exchange before sending data") corresponds to a low threshold.
  std::size_t rtsThresholdBytes{256};

  // Transmit queue bound; overflow is dropped at the tail.
  std::size_t queueLimit{64};

  // MAC-level duplicate detection cache (unicast retransmissions).
  std::size_t dupCacheSize{16};
};

}  // namespace mesh::mac
