file(REMOVE_RECURSE
  "CMakeFiles/mesh_net.dir/net.cpp.o"
  "CMakeFiles/mesh_net.dir/net.cpp.o.d"
  "libmesh_net.a"
  "libmesh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
