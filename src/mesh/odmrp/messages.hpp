#pragma once
// ODMRP wire formats: JOIN QUERY, JOIN REPLY, and the data header.
//
// The JOIN QUERY carries the accumulated path cost (Section 3.1: each node
// "updates the cost in the JOIN QUERY packet before rebroadcasting it"),
// plus the metric kind so a receiver can sanity-check that the network is
// running one consistent metric. The JOIN REPLY carries the member's JOIN
// TABLE: (source, nextHop) entries naming which neighbor should become a
// forwarding-group node for which source.
//
// Sizes approximate the real odmrpd daemon's UDP datagrams (header fields
// plus IP/UDP framing), so control traffic airtime is realistic.

#include <cstdint>
#include <optional>
#include <vector>

#include "mesh/common/simtime.hpp"
#include "mesh/net/addr.hpp"
#include "mesh/net/buffer.hpp"
#include "mesh/net/packet.hpp"

namespace mesh::odmrp {

inline constexpr std::size_t kJoinQueryBytes = 48;
inline constexpr std::size_t kJoinReplyBaseBytes = 32;
inline constexpr std::size_t kJoinReplyEntryBytes = 4;
inline constexpr std::size_t kDataHeaderBytes = 16;

enum class MessageType : std::uint8_t { JoinQuery = 1, JoinReply = 2, Data = 3 };

// Peeks the message type of a serialized ODMRP packet.
std::optional<MessageType> peekType(std::span<const std::uint8_t> bytes);

struct JoinQuery {
  net::GroupId group{0};
  net::NodeId source{net::kInvalidNode};
  std::uint32_t seq{0};
  std::uint8_t hopCount{0};
  std::uint8_t metricKind{0};
  net::NodeId prevHop{net::kInvalidNode};  // the last transmitter
  double pathCost{0.0};

  // Emits exactly kJoinQueryBytes into a fresh writer (growable or fixed).
  void writeTo(net::ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static std::optional<JoinQuery> parse(std::span<const std::uint8_t> bytes);
  // Decode-once: parses through the packet's view cache, so a query fanning
  // out to k receivers is deserialized a single time.
  static const JoinQuery* decode(const net::Packet& p) {
    return p.view<JoinQuery>(
        [](std::span<const std::uint8_t> b) { return parse(b); });
  }
  net::PacketPtr toPacket(SimTime now) const {
    return net::Packet::build(net::PacketKind::Control, source,
                              kJoinQueryBytes, now, 0,
                              [this](net::ByteWriter& w) { writeTo(w); });
  }
};

struct JoinReplyEntry {
  net::NodeId source{net::kInvalidNode};
  net::NodeId nextHop{net::kInvalidNode};
};

struct JoinReply {
  net::GroupId group{0};
  net::NodeId sender{net::kInvalidNode};
  std::uint32_t seq{0};  // the query round this reply answers
  std::vector<JoinReplyEntry> entries;

  std::size_t wireBytes() const {
    return kJoinReplyBaseBytes + entries.size() * kJoinReplyEntryBytes;
  }
  // Emits exactly wireBytes() into a fresh writer (growable or fixed).
  void writeTo(net::ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static std::optional<JoinReply> parse(std::span<const std::uint8_t> bytes);
  static const JoinReply* decode(const net::Packet& p) {
    return p.view<JoinReply>(
        [](std::span<const std::uint8_t> b) { return parse(b); });
  }
  net::PacketPtr toPacket(SimTime now) const {
    return net::Packet::build(net::PacketKind::Control, sender, wireBytes(),
                              now, 0,
                              [this](net::ByteWriter& w) { writeTo(w); });
  }
};

// Data packets: a small header in front of the application payload. The
// packet is immutable across hops (forwarders rebroadcast the same bytes).
struct DataHeader {
  net::GroupId group{0};
  net::NodeId source{net::kInvalidNode};
  std::uint32_t seq{0};

  // Emits exactly kDataHeaderBytes (header only) into a fresh writer.
  void writeTo(net::ByteWriter& w) const;
  // Serializes header followed by `payload`.
  std::vector<std::uint8_t> serializeWith(std::span<const std::uint8_t> payload) const;
  // Parses the header and returns it; `payloadBytes` receives the rest.
  static std::optional<DataHeader> parse(std::span<const std::uint8_t> bytes,
                                         std::span<const std::uint8_t>* payloadBytes);
  // Decode-once header view; the application payload is
  // p.bytes().subspan(kDataHeaderBytes).
  static const DataHeader* decode(const net::Packet& p) {
    return p.view<DataHeader>([](std::span<const std::uint8_t> b) {
      return parse(b, nullptr);
    });
  }
};

}  // namespace mesh::odmrp
