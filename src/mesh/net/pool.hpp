#pragma once
// PacketPool: slab-backed size-class allocator for the frame hot path.
//
// Every steady-state frame (data, probe, ODMRP control, MAC control and the
// PhyFrame wrapper it rides in) is carved out of per-pool slabs and recycled
// through per-size-class free lists, so the tx→MAC→channel→rx→routing round
// trip performs zero heap allocations once the pool is warm (DESIGN §12).
// Objects placed in a slot are intrusively refcounted (RefPtr below) with
// plain non-atomic counters: a pool and everything allocated from it are
// confined to one collision domain, and the DomainScheduler's per-epoch
// fork/join provides the necessary happens-before between epochs.
//
// Lifetime: slots may outlive the PacketPool handle (e.g. a test keeps a
// PacketPtr after the Simulation is torn down). The pool's Impl is therefore
// refcounted by its live-slot count and freed only when both the owner handle
// is gone and the last slot has been released — teardown order never matters.
//
// The pool also owns the deterministic packet-uid sequence: one counter per
// pool (i.e. per collision domain), replacing the old global std::atomic.
// Trace pids are renumbered per collector at record time, so per-domain uid
// sequences that all start at 1 are fine (see trace/trace_collector.cpp).
//
// Escape hatch: MESH_PACKET_POOL=off (or setPoolingEnabled(false)) routes
// slots through plain operator new/delete while keeping the uid sequence and
// refcount behavior identical — traces must stay byte-identical either way,
// which hotpath_test pins as a regression test.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "mesh/common/assert.hpp"

namespace mesh::net {

// Intrusive refcounted pointer. T must expose retain()/release() const.
// Non-atomic by design — see the domain-confinement note above.
template <typename T>
class RefPtr {
 public:
  RefPtr() noexcept = default;
  RefPtr(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)
  // Takes ownership of the caller's (single) reference — no retain.
  static RefPtr adopt(T* p) noexcept {
    RefPtr r;
    r.ptr_ = p;
    return r;
  }
  RefPtr(const RefPtr& other) noexcept : ptr_{other.ptr_} {
    if (ptr_ != nullptr) ptr_->retain();
  }
  RefPtr(RefPtr&& other) noexcept : ptr_{other.ptr_} { other.ptr_ = nullptr; }
  RefPtr& operator=(const RefPtr& other) noexcept {
    if (other.ptr_ != nullptr) other.ptr_->retain();
    T* old = ptr_;
    ptr_ = other.ptr_;
    if (old != nullptr) old->release();
    return *this;
  }
  RefPtr& operator=(RefPtr&& other) noexcept {
    if (this != &other) {
      T* old = ptr_;
      ptr_ = other.ptr_;
      other.ptr_ = nullptr;
      if (old != nullptr) old->release();
    }
    return *this;
  }
  RefPtr& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~RefPtr() {
    if (ptr_ != nullptr) ptr_->release();
  }

  void reset() noexcept {
    if (ptr_ != nullptr) {
      ptr_->release();
      ptr_ = nullptr;
    }
  }
  T* get() const noexcept { return ptr_; }
  T& operator*() const noexcept { return *ptr_; }
  T* operator->() const noexcept { return ptr_; }
  explicit operator bool() const noexcept { return ptr_ != nullptr; }
  friend bool operator==(const RefPtr& a, const RefPtr& b) noexcept {
    return a.ptr_ == b.ptr_;
  }
  friend bool operator==(const RefPtr& a, std::nullptr_t) noexcept {
    return a.ptr_ == nullptr;
  }

 private:
  T* ptr_{nullptr};
};

class PacketPool {
 public:
  // Object-area bytes per size class (the 16-byte slot header is extra).
  // Sized so one class each catches PhyFrames (~64 B), control packets
  // (JoinQuery/ACK ~200 B), probes (~300 B), 512 B CBR data (~700 B) and
  // packet-pair probes (~1.3 KiB); anything larger goes to operator new.
  static constexpr std::size_t kClassBytes[] = {128, 320, 768, 1536, 2560};
  static constexpr std::size_t kClassCount = 5;
  static constexpr std::size_t kSlabBytes = 32 * 1024;

  struct Stats {
    std::uint64_t liveSlots;    // pooled slots currently handed out
    std::uint64_t slotsCarved;  // pooled slots ever carved from slabs
    std::uint64_t slabBytes;    // total slab memory reserved
    std::uint64_t oversized;    // allocations above the largest class
  };

  PacketPool() : impl_{new Impl} {}
  ~PacketPool() {
    Impl* impl = impl_;
    impl->ownerAlive = false;
    if (impl->liveSlots == 0) delete impl;
  }
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns storage for `bytes` payload bytes, 16-byte aligned. The object
  // constructed there must expose retain()/release() driving
  // PacketPool::release(ptr) when the count hits zero.
  void* allocate(std::size_t bytes) {
    Impl& im = *impl_;
    const std::uint32_t cls = classFor(bytes);
    if (cls == kDirectClass || !poolingEnabled()) {
      auto* h = static_cast<SlotHeader*>(
          ::operator new(sizeof(SlotHeader) + bytes));
      h->impl = nullptr;
      h->cls = kDirectClass;
      if (cls == kDirectClass) ++im.oversized;
      return h + 1;
    }
    void*& head = im.freeHead[cls];
    if (head == nullptr) refill(im, cls);
    void* slot = head;
    head = *static_cast<void**>(slot);
    ++im.liveSlots;
    return slot;
  }

  // Returns a slot obtained from allocate() (any pool; the owning Impl is
  // found through the slot header). Safe after the owning pool is gone.
  static void release(void* obj) noexcept {
    auto* h = static_cast<SlotHeader*>(obj) - 1;
    Impl* im = h->impl;
    if (im == nullptr) {
      ::operator delete(h);
      return;
    }
    *static_cast<void**>(obj) = im->freeHead[h->cls];
    im->freeHead[h->cls] = obj;
    if (--im->liveSlots == 0 && !im->ownerAlive) delete im;
  }

  // Deterministic per-pool (== per collision domain) uid sequence.
  std::uint64_t nextUid() { return ++impl_->uidCounter; }

  Stats stats() const {
    return {impl_->liveSlots, impl_->slotsCarved, impl_->slabBytes,
            impl_->oversized};
  }

  // The pool new packets come from on this thread. Harness run scopes
  // (Simulator::setRunScope) install the owning Simulation's pool around
  // run(); bare tests and micro-benches fall back to a per-thread pool.
  static PacketPool& active() {
    PacketPool* cur = currentRef();
    return cur != nullptr ? *cur : fallbackPool();
  }
  // Installs `pool` (nullptr = fall back) and returns the previous value so
  // scopes can nest.
  static PacketPool* setCurrent(PacketPool* pool) noexcept {
    PacketPool*& slot = currentRef();
    PacketPool* prev = slot;
    slot = pool;
    return prev;
  }

  // Global pooling knob (see file comment). Read per allocation; only write
  // it while no simulation is running — domain workers read it unfenced.
  static bool poolingEnabled() { return enabledFlag(); }
  static void setPoolingEnabled(bool enabled) { enabledFlag() = enabled; }

 private:
  struct Impl;
  // Precedes every object area; 16 bytes so the area stays 16-aligned.
  struct SlotHeader {
    Impl* impl;         // nullptr: direct operator new allocation
    std::uint32_t cls;  // size class index (kDirectClass when direct)
    std::uint32_t pad;
  };
  static_assert(sizeof(SlotHeader) == 16);

  struct Impl {
    void* freeHead[kClassCount] = {};
    std::vector<void*> slabs;
    std::uint64_t uidCounter{0};
    std::uint64_t liveSlots{0};
    std::uint64_t slotsCarved{0};
    std::uint64_t slabBytes{0};
    std::uint64_t oversized{0};
    bool ownerAlive{true};
    ~Impl() {
      for (void* s : slabs) ::operator delete(s);
    }
  };

  static constexpr std::uint32_t kDirectClass = 0xffffffffu;

  static std::uint32_t classFor(std::size_t bytes) {
    for (std::uint32_t c = 0; c < kClassCount; ++c) {
      if (bytes <= kClassBytes[c]) return c;
    }
    return kDirectClass;
  }

  // Carves a fresh slab into free-list slots for `cls`. Out-of-line: cold.
  static void refill(Impl& im, std::uint32_t cls);

  static PacketPool*& currentRef() noexcept {
    thread_local PacketPool* current = nullptr;
    return current;
  }
  static PacketPool& fallbackPool();
  static bool& enabledFlag();

  Impl* impl_;
};

}  // namespace mesh::net
