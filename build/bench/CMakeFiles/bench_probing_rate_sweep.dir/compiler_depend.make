# Empty compiler generated dependencies file for bench_probing_rate_sweep.
# This may be replaced when dependencies are built.
