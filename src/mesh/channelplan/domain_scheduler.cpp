#include "mesh/channelplan/domain_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "mesh/common/assert.hpp"

namespace mesh::channelplan {

DomainScheduler::DomainScheduler(std::vector<sim::Simulator*> domains,
                                 std::size_t workers)
    : domains_{std::move(domains)} {
  MESH_REQUIRE(!domains_.empty());
  for (sim::Simulator* d : domains_) MESH_REQUIRE(d != nullptr);
  workers_ = std::clamp<std::size_t>(workers, 1, domains_.size());
}

void DomainScheduler::addBarrier(SimTime at, std::function<void()> callback) {
  MESH_REQUIRE(callback != nullptr);
  Barrier barrier{at, std::move(callback)};
  // Stable position: after every earlier-or-equal barrier, so callbacks at
  // one instant fire in registration order.
  const auto pos = std::upper_bound(
      barriers_.begin(), barriers_.end(), barrier,
      [](const Barrier& a, const Barrier& b) { return a.at < b.at; });
  barriers_.insert(pos, std::move(barrier));
}

std::uint64_t DomainScheduler::runEpoch(SimTime horizon) {
  ++epochsRun_;
  if (workers_ == 1 || domains_.size() == 1) {
    // Sequential reference order: ascending domain index. The parallel
    // path below must be indistinguishable from this one.
    std::uint64_t executed = 0;
    for (sim::Simulator* domain : domains_) executed += domain->run(horizon);
    return executed;
  }
  // Work-claiming: each worker pops the next unclaimed domain index. The
  // claim order is nondeterministic, but each domain is driven by exactly
  // one thread and domains share no state inside an epoch, so the events
  // each domain executes — and their per-domain order — do not depend on
  // the claiming. Per-worker event counts fold into one atomic total
  // (commutative), and the threads join before anything reads domain
  // state, so the epoch is a clean fork/join.
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> executed{0};
  const auto worker = [&] {
    std::uint64_t local = 0;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= domains_.size()) break;
      local += domains_[i]->run(horizon);
    }
    executed.fetch_add(local, std::memory_order_relaxed);
  };
  std::vector<std::thread> threads;
  threads.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return executed.load(std::memory_order_relaxed);
}

std::uint64_t DomainScheduler::run(SimTime until) {
  std::uint64_t executed = 0;
  for (const Barrier& barrier : barriers_) {
    if (barrier.at > until) break;
    executed += runEpoch(barrier.at);
    // All domain clocks now sit exactly at barrier.at (Simulator::run
    // advances the clock to the horizon even when the queue ran dry), so
    // the callback sees a globally consistent instant.
    barrier.callback();
  }
  executed += runEpoch(until);
  return executed;
}

}  // namespace mesh::channelplan
