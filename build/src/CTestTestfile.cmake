# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("mesh/common")
subdirs("mesh/sim")
subdirs("mesh/phy")
subdirs("mesh/mac")
subdirs("mesh/net")
subdirs("mesh/metrics")
subdirs("mesh/odmrp")
subdirs("mesh/maodv")
subdirs("mesh/app")
subdirs("mesh/testbed")
subdirs("mesh/harness")
