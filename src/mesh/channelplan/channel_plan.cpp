#include "mesh/channelplan/channel_plan.hpp"

#include <cstring>

#include "mesh/common/assert.hpp"
#include "mesh/phy/spatial_grid.hpp"

namespace mesh::channelplan {

const char* toString(AssignStrategy strategy) {
  switch (strategy) {
    case AssignStrategy::Static: return "static";
    case AssignStrategy::LeastCongested: return "least-congested";
  }
  return "?";
}

bool assignStrategyFromString(const char* text, AssignStrategy& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "static") == 0) {
    out = AssignStrategy::Static;
    return true;
  }
  if (std::strcmp(text, "least-congested") == 0 ||
      std::strcmp(text, "least_congested") == 0) {
    out = AssignStrategy::LeastCongested;
    return true;
  }
  return false;
}

std::vector<net::NodeId> ChannelPlan::domainNodes(std::size_t channel) const {
  std::vector<net::NodeId> nodes;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == channel) nodes.push_back(static_cast<net::NodeId>(i));
  }
  return nodes;
}

namespace {

void assignLeastCongested(ChannelPlan& plan, const std::vector<Vec2>& positions,
                          double neighborRadiusM) {
  const std::size_t n = positions.size();
  phy::SpatialGrid grid;
  grid.build(positions, neighborRadiusM);
  const double radius2 = neighborRadiusM * neighborRadiusM;

  std::vector<std::uint32_t> candidates;
  std::vector<std::uint32_t> sameChannel(plan.channels, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // Count already-assigned neighbors (ids < i) per channel. The grid is
    // a conservative superset; the exact disk test keeps the counts (and
    // the resulting plan) independent of grid cell layout.
    for (auto& c : sameChannel) c = 0;
    candidates.clear();
    grid.candidatesWithin(positions[i], neighborRadiusM, candidates);
    for (const std::uint32_t j : candidates) {
      if (j >= i) continue;
      if (positions[i].distanceSquaredTo(positions[j]) > radius2) continue;
      ++sameChannel[plan.assignment[j]];
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < plan.channels; ++c) {
      if (sameChannel[c] < sameChannel[best]) best = c;
    }
    plan.assignment[i] = static_cast<std::uint8_t>(best);
    if (sameChannel[best] > plan.maxSameChannelNeighbors) {
      plan.maxSameChannelNeighbors = sameChannel[best];
    }
  }
}

}  // namespace

ChannelPlan makeChannelPlan(AssignStrategy strategy, std::size_t channels,
                            const std::vector<Vec2>& positions,
                            double neighborRadiusM) {
  MESH_REQUIRE(channels >= 1 && channels <= 255);
  MESH_REQUIRE(neighborRadiusM > 0.0);
  ChannelPlan plan;
  plan.channels = channels;
  plan.strategy = strategy;
  plan.assignment.assign(positions.size(), 0);
  if (channels > 1) {
    if (strategy == AssignStrategy::Static) {
      for (std::size_t i = 0; i < positions.size(); ++i) {
        plan.assignment[i] = static_cast<std::uint8_t>(i % channels);
      }
    } else {
      assignLeastCongested(plan, positions, neighborRadiusM);
    }
  }
  plan.domainSizes.assign(channels, 0);
  for (const std::uint8_t c : plan.assignment) ++plan.domainSizes[c];
  return plan;
}

}  // namespace mesh::channelplan
