#include "mesh/runner/aggregator.hpp"

#include <utility>

#include "mesh/common/assert.hpp"

namespace mesh::runner {

Aggregator::Aggregator(std::vector<harness::ProtocolSpec> protocols,
                       std::size_t topologies)
    : protocols_{std::move(protocols)},
      topologies_{topologies},
      grid_{topologies_ * protocols_.size()} {
  MESH_REQUIRE(!protocols_.empty());
}

void Aggregator::deliver(RunRecord record) {
  std::lock_guard<std::mutex> lock{mutex_};
  MESH_REQUIRE(record.topologyIndex < topologies_);
  MESH_REQUIRE(record.protocolIndex < protocols_.size());
  std::optional<RunRecord>& cell =
      grid_[slot(record.topologyIndex, record.protocolIndex)];
  MESH_REQUIRE(!cell.has_value());  // exactly-once delivery
  if (!record.ok) ++failed_;
  ++delivered_;
  cell = std::move(record);
}

std::size_t Aggregator::deliveredCount() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return delivered_;
}

std::size_t Aggregator::failureCount() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return failed_;
}

std::vector<RunRecord> Aggregator::records() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<RunRecord> out;
  out.reserve(delivered_);
  for (const auto& cell : grid_) {
    if (cell.has_value()) out.push_back(*cell);
  }
  return out;
}

std::vector<RunRecord> Aggregator::failures() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<RunRecord> out;
  for (const auto& cell : grid_) {
    if (cell.has_value() && !cell->ok) out.push_back(*cell);
  }
  return out;
}

std::vector<harness::ComparisonRow> Aggregator::rows() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<harness::ComparisonRow> rows;
  rows.reserve(protocols_.size());
  for (const harness::ProtocolSpec& protocol : protocols_) {
    harness::ComparisonRow row;
    row.protocol = protocol;
    row.name = protocol.name();
    rows.push_back(std::move(row));
  }
  // Topology-major, protocol-minor: the same OnlineStats::add sequence the
  // serial loop performs, so the fold is bit-identical to it.
  for (std::size_t t = 0; t < topologies_; ++t) {
    for (std::size_t p = 0; p < protocols_.size(); ++p) {
      const std::optional<RunRecord>& cell = grid_[slot(t, p)];
      if (!cell.has_value() || !cell->ok) continue;
      const harness::RunResults& r = cell->results;
      rows[p].pdr.add(r.pdr);
      rows[p].throughputBps.add(r.throughputBps);
      rows[p].delayS.add(r.meanDelayS);
      rows[p].overheadPct.add(r.probeOverheadPct);
      rows[p].controlBytes.add(static_cast<double>(r.controlBytesReceived));
    }
  }
  return rows;
}

}  // namespace mesh::runner
