file(REMOVE_RECURSE
  "CMakeFiles/metric_playground.dir/metric_playground.cpp.o"
  "CMakeFiles/metric_playground.dir/metric_playground.cpp.o.d"
  "metric_playground"
  "metric_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
